// Golden tests for the fusing pipeline executor (src/exec/): every fused
// stage combination must bit-match the eager primitives it replaces, the
// fuser must produce the documented group structure, and the executor's
// Stats must prove the fusion actually happened (dispatch rounds, groups,
// arena reuse).
#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/primitives.hpp"
#include "src/exec/executor.hpp"
#include "test_util.hpp"

namespace scanprim::exec {
namespace {

using Sz = std::size_t;

template <class T, class F>
std::vector<T> apply_map(std::vector<T> v, F fn) {
  for (auto& x : v) x = fn(x);
  return v;
}

// --- fuser structure ---------------------------------------------------------

TEST(Fuser, SourceOnlyPipelineIsACopyGroup) {
  const std::vector<StageKind> k{StageKind::Source};
  const auto g = fuse(std::span<const StageKind>(k), FuseOptions{});
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].stages(), 0u);  // first==1 && last==0: pure copy
  EXPECT_FALSE(g[0].has_scan);
}

TEST(Fuser, MapScanMapPackFusesIntoOneGroup) {
  const std::vector<StageKind> k{StageKind::Source, StageKind::Map,
                                 StageKind::Scan, StageKind::Map,
                                 StageKind::Pack};
  const auto g = fuse(std::span<const StageKind>(k), FuseOptions{});
  ASSERT_EQ(g.size(), 1u);
  EXPECT_TRUE(g[0].has_scan);
  EXPECT_EQ(g[0].scan_at, 2u);
  EXPECT_TRUE(g[0].has_pack);
  EXPECT_EQ(g[0].stages(), 4u);
}

TEST(Fuser, SecondScanOpensANewGroup) {
  const std::vector<StageKind> k{StageKind::Source, StageKind::Scan,
                                 StageKind::Scan};
  const auto g = fuse(std::span<const StageKind>(k), FuseOptions{});
  ASSERT_EQ(g.size(), 2u);
  EXPECT_TRUE(g[0].has_scan);
  EXPECT_TRUE(g[1].has_scan);
  EXPECT_EQ(g[1].scan_at, 2u);
}

TEST(Fuser, PermuteIsASingletonBarrier) {
  const std::vector<StageKind> k{StageKind::Source, StageKind::Map,
                                 StageKind::Permute, StageKind::Map};
  const auto g = fuse(std::span<const StageKind>(k), FuseOptions{});
  ASSERT_EQ(g.size(), 3u);
  EXPECT_FALSE(g[0].is_permute);
  EXPECT_TRUE(g[1].is_permute);
  EXPECT_EQ(g[1].stages(), 1u);
  EXPECT_FALSE(g[2].is_permute);
  EXPECT_TRUE(breaks_fusion(StageKind::Permute));
  EXPECT_FALSE(breaks_fusion(StageKind::Map));
}

TEST(Fuser, PackClosesItsGroup) {
  const std::vector<StageKind> k{StageKind::Source, StageKind::Pack,
                                 StageKind::Map, StageKind::Map};
  const auto g = fuse(std::span<const StageKind>(k), FuseOptions{});
  ASSERT_EQ(g.size(), 2u);
  EXPECT_TRUE(g[0].has_pack);
  EXPECT_FALSE(g[1].has_pack);
  EXPECT_EQ(g[1].stages(), 2u);
}

TEST(Fuser, SegScanFusesLikeAScan) {
  const std::vector<StageKind> k{StageKind::Source, StageKind::Map,
                                 StageKind::SegScan, StageKind::Map};
  const auto g = fuse(std::span<const StageKind>(k), FuseOptions{});
  ASSERT_EQ(g.size(), 1u);
  EXPECT_TRUE(g[0].has_scan);
  EXPECT_EQ(g[0].scan_at, 2u);
}

TEST(Fuser, DisabledFusionGivesOneGroupPerStage) {
  const std::vector<StageKind> k{StageKind::Source, StageKind::Map,
                                 StageKind::Scan, StageKind::Map,
                                 StageKind::Pack};
  const auto g =
      fuse(std::span<const StageKind>(k), FuseOptions{.enabled = false});
  ASSERT_EQ(g.size(), 4u);  // the source loads as part of the first group
  for (const auto& grp : g) EXPECT_LE(grp.stages(), 1u);
}

// --- golden equality across the size sweep -----------------------------------

class ExecSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExecSweep, MapScanMapMatchesEager) {
  const auto in = testutil::random_vector<long>(GetParam(), 31);
  const auto dbl = [](long v) { return 2 * v; };
  const auto inc = [](long v) { return v + 1; };
  const auto fused = run(source(std::span<const long>(in)) | map(dbl) |
                         scan<Plus>() | map(inc));
  const auto staged = apply_map(
      testutil::ref_exclusive_scan(
          std::span<const long>(apply_map(in, dbl)), Plus<long>{}),
      inc);
  EXPECT_EQ(fused, staged);
}

TEST_P(ExecSweep, AllFourScanFlavoursMatchReferences) {
  const auto in = testutil::random_vector<long>(GetParam(), 32);
  const std::span<const long> s(in);
  EXPECT_EQ(run(source(s) | scan<Plus>()),
            testutil::ref_exclusive_scan(s, Plus<long>{}));
  EXPECT_EQ(run(source(s) | inclusive_scan<Plus>()),
            testutil::ref_inclusive_scan(s, Plus<long>{}));
  EXPECT_EQ(run(source(s) | backscan<Plus>()),
            testutil::ref_backward_exclusive_scan(s, Plus<long>{}));
  EXPECT_EQ(run(source(s) | back_inclusive_scan<Plus>()),
            testutil::ref_backward_inclusive_scan(s, Plus<long>{}));
}

TEST_P(ExecSweep, MaxMinOrAndOperatorsMatchReferences) {
  const auto in = testutil::random_vector<long>(GetParam(), 33);
  const std::span<const long> s(in);
  EXPECT_EQ(run(source(s) | scan<Max>()),
            testutil::ref_exclusive_scan(s, Max<long>{}));
  EXPECT_EQ(run(source(s) | scan<Min>()),
            testutil::ref_exclusive_scan(s, Min<long>{}));
  const auto bits = testutil::random_vector<std::uint8_t>(GetParam(), 34, 2);
  const std::span<const std::uint8_t> bs(bits);
  EXPECT_EQ(run(source(bs) | scan<Or>()),
            testutil::ref_exclusive_scan(bs, Or<std::uint8_t>{}));
  EXPECT_EQ(run(source(bs) | scan<And>()),
            testutil::ref_exclusive_scan(bs, And<std::uint8_t>{}));
}

TEST_P(ExecSweep, SegmentedScansMatchReferences) {
  const auto in = testutil::random_vector<long>(GetParam(), 35);
  const Flags f = testutil::random_flags(GetParam(), 36);
  const std::span<const long> s(in);
  const FlagsView fv(f);
  EXPECT_EQ(run(source(s) | seg_scan<Plus>(fv)),
            testutil::ref_seg_exclusive_scan(s, fv, Plus<long>{}));
  EXPECT_EQ(run(source(s) | seg_inclusive_scan<Plus>(fv)),
            testutil::ref_seg_inclusive_scan(s, fv, Plus<long>{}));
  EXPECT_EQ(run(source(s) | seg_backscan<Plus>(fv)),
            testutil::ref_seg_backward_exclusive_scan(s, fv, Plus<long>{}));
  EXPECT_EQ(run(source(s) | seg_back_inclusive_scan<Plus>(fv)),
            testutil::ref_seg_backward_inclusive_scan(s, fv, Plus<long>{}));
}

TEST_P(ExecSweep, SegmentedScanWithFusedMapsMatchesStaged) {
  const auto in = testutil::random_vector<long>(GetParam(), 37);
  const Flags f = testutil::random_flags(GetParam(), 38);
  const auto neg = [](long v) { return -v; };
  const auto fused = run(source(std::span<const long>(in)) | map(neg) |
                         seg_scan<Plus>(FlagsView(f)) | map(neg));
  const auto staged = apply_map(
      testutil::ref_seg_exclusive_scan(
          std::span<const long>(apply_map(in, neg)), FlagsView(f),
          Plus<long>{}),
      neg);
  EXPECT_EQ(fused, staged);
}

TEST_P(ExecSweep, PackVariantsMatchEagerPack) {
  const auto in = testutil::random_vector<long>(GetParam(), 39);
  const auto keep = testutil::random_vector<std::uint8_t>(GetParam(), 40, 2);
  const std::span<const long> s(in);
  const FlagsView kv(keep);
  // Plain pack.
  EXPECT_EQ(run(source(s) | pack(kv)), scanprim::pack(s, kv));
  // Map + scan + map + pack fused into one group.
  const auto dbl = [](long v) { return 2 * v; };
  const auto scanned = testutil::ref_exclusive_scan(
      std::span<const long>(apply_map(in, dbl)), Plus<long>{});
  EXPECT_EQ(run(source(s) | map(dbl) | scan<Plus>() | pack(kv)),
            scanprim::pack(std::span<const long>(scanned), kv));
  // Backward scan + pack (the count-then-fill serial path and the
  // top-down parallel fill).
  const auto back = testutil::ref_backward_exclusive_scan(s, Plus<long>{});
  EXPECT_EQ(run(source(s) | backscan<Plus>() | pack(kv)),
            scanprim::pack(std::span<const long>(back), kv));
}

TEST_P(ExecSweep, PermuteMatchesEagerPermute) {
  const std::size_t n = GetParam();
  const auto in = testutil::random_vector<long>(n, 41);
  std::vector<Sz> idx(n);
  std::iota(idx.begin(), idx.end(), Sz{0});
  std::mt19937_64 g(42);
  std::shuffle(idx.begin(), idx.end(), g);
  const std::span<const long> s(in);
  const std::span<const Sz> is(idx);
  EXPECT_EQ(run(source(s) | permute(is)), permuted(s, is));
  // Permute mid-chain: scan, scatter, then a map on the permuted vector.
  const auto inc = [](long v) { return v + 1; };
  const auto fused = run(source(s) | scan<Plus>() | permute(is) | map(inc));
  const auto staged = apply_map(
      permuted(std::span<const long>(
                   testutil::ref_exclusive_scan(s, Plus<long>{})),
               is),
      inc);
  EXPECT_EQ(fused, staged);
}

TEST_P(ExecSweep, MultiGroupChainsMatchStaged) {
  const auto in = testutil::random_vector<long>(GetParam(), 43);
  const std::span<const long> s(in);
  // Two scans: the second group reads the first group's arena buffer.
  const auto twice = run(source(s) | scan<Plus>() | scan<Plus>());
  const auto once = testutil::ref_exclusive_scan(s, Plus<long>{});
  EXPECT_EQ(twice, testutil::ref_exclusive_scan(std::span<const long>(once),
                                                Plus<long>{}));
  // Pack, then further stages on the shortened vector.
  const auto keep = testutil::random_vector<std::uint8_t>(GetParam(), 44, 2);
  const auto neg = [](long v) { return -v; };
  const auto fused = run(source(s) | pack(FlagsView(keep)) | map(neg));
  const auto staged = apply_map(scanprim::pack(s, FlagsView(keep)), neg);
  EXPECT_EQ(fused, staged);
}

TEST_P(ExecSweep, ZipAndGeneratedSourcesMatchStaged) {
  const std::size_t n = GetParam();
  const auto a = testutil::random_vector<long>(n, 45);
  const auto b = testutil::random_vector<long>(n, 46);
  const auto sum = [](long x, long y) { return x + y; };
  const auto fused = run(source(std::span<const long>(a)) |
                         zip(std::span<const long>(b), sum) | scan<Max>());
  std::vector<long> z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = a[i] + b[i];
  EXPECT_EQ(fused, testutil::ref_exclusive_scan(std::span<const long>(z),
                                                Max<long>{}));
  // iota through source_fn, scanned.
  const auto ones = run(source_fn<Sz>(n, [](std::size_t) -> Sz { return 1; }) |
                        scan<Plus>());
  std::vector<Sz> iota(n);
  std::iota(iota.begin(), iota.end(), Sz{0});
  EXPECT_EQ(ones, iota);
}

TEST_P(ExecSweep, UnfusedPlanMatchesFusedPlan) {
  const auto in = testutil::random_vector<long>(GetParam(), 47);
  const auto keep = testutil::random_vector<std::uint8_t>(GetParam(), 48, 2);
  const auto dbl = [](long v) { return 2 * v; };
  const auto inc = [](long v) { return v + 1; };
  const auto build = [&] {
    return source(std::span<const long>(in)) | map(dbl) | scan<Plus>() |
           map(inc) | pack(FlagsView(keep));
  };
  Executor fused_ex;
  Executor eager_ex{Executor::Options{.fuse = false}};
  const auto fused = fused_ex.run(build());
  const auto eager = eager_ex.run(build());
  EXPECT_EQ(fused, eager);
  EXPECT_LE(fused_ex.stats().groups, eager_ex.stats().groups);
}

TEST_P(ExecSweep, FusedSplitMatchesEagerSplit) {
  const std::size_t n = GetParam();
  const auto in = testutil::random_vector<long>(n, 49);
  const Flags flags = [&] {
    Flags f(n);
    auto g = testutil::rng(50);
    for (auto& x : f) x = g() % 2;
    return f;
  }();
  Executor ex;
  EXPECT_EQ(fused::split_index(ex, FlagsView(flags)),
            scanprim::split_index(FlagsView(flags)));
  EXPECT_EQ(fused::split(ex, std::span<const long>(in), FlagsView(flags)),
            scanprim::split(std::span<const long>(in), FlagsView(flags)));
  EXPECT_EQ(fused::pack(ex, std::span<const long>(in), FlagsView(flags)),
            scanprim::pack(std::span<const long>(in), FlagsView(flags)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExecSweep,
                         ::testing::ValuesIn(testutil::sweep_sizes()));

// --- stats -------------------------------------------------------------------

TEST(ExecStats, FourStageChainRunsInAtMostTwoDispatchRounds) {
  // The acceptance bar of the fusing executor: map | scan | map | map is one
  // fused group — two blocked passes (reduce + rescan) when parallel, one
  // when serial — never one dispatch per stage.
  const auto in = testutil::random_vector<long>(1 << 16, 51);
  Executor ex;
  const auto out = ex.run(source(std::span<const long>(in)) |
                          map([](long v) { return v + 3; }) | scan<Plus>() |
                          map([](long v) { return 2 * v; }) |
                          map([](long v) { return v - 1; }));
  ASSERT_EQ(out.size(), in.size());
  const Stats& s = ex.stats();
  EXPECT_EQ(s.stages_recorded, 5u);  // source + 4 stages
  EXPECT_EQ(s.groups, 1u);
  EXPECT_EQ(s.fused_groups, 1u);
  EXPECT_LE(s.pool_dispatches, 2u);
  EXPECT_GT(s.bytes_read, 0u);
  EXPECT_GT(s.bytes_written, 0u);
}

TEST(ExecStats, UnfusedPlanDispatchesPerStage) {
  const auto in = testutil::random_vector<long>(1 << 16, 52);
  Executor ex{Executor::Options{.fuse = false}};
  ex.run(source(std::span<const long>(in)) |
         map([](long v) { return v + 3; }) | scan<Plus>() |
         map([](long v) { return 2 * v; }) | map([](long v) { return v - 1; }));
  const Stats& s = ex.stats();
  EXPECT_EQ(s.groups, 4u);
  EXPECT_EQ(s.fused_groups, 0u);
  EXPECT_GE(s.pool_dispatches, 4u);
}

TEST(ExecStats, ArenaReusesBuffersAcrossGroupsAndRuns) {
  const auto in = testutil::random_vector<long>(1 << 15, 53);
  Executor ex;
  const auto p = [&] {
    return source(std::span<const long>(in)) | scan<Plus>() | scan<Plus>() |
           scan<Plus>();
  };
  ex.run(p());
  const Stats first = ex.stats();
  EXPECT_EQ(first.groups, 3u);
  // Three groups need two intermediates; the second frees before the third
  // allocates only in a longer chain, so allow misses on the first run...
  ex.run(p());
  // ...but a re-run must recycle every intermediate it acquires.
  EXPECT_EQ(ex.stats().arena_misses, 0u);
  EXPECT_GE(ex.stats().arena_hits, 1u);
  // Lifetime totals accumulate across runs.
  EXPECT_EQ(ex.total_stats().stages_recorded,
            first.stages_recorded + ex.stats().stages_recorded);
}

}  // namespace
}  // namespace scanprim::exec
