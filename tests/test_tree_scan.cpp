// The word-level two-sweep tree scan of §3.1 (Figure 13).
#include "src/circuit/tree_scan.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::circuit {
namespace {

class TreeScanSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeScanSweep, MatchesReferenceForPlus) {
  const auto in = testutil::random_vector<long>(GetParam(), 111);
  std::vector<long> out(in.size());
  tree_scan(std::span<const long>(in), std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out, testutil::ref_exclusive_scan(std::span<const long>(in),
                                              Plus<long>{}));
}

TEST_P(TreeScanSweep, MatchesReferenceForMax) {
  const auto in = testutil::random_vector<long>(GetParam(), 112);
  std::vector<long> out(in.size());
  tree_scan(std::span<const long>(in), std::span<long>(out), Max<long>{});
  EXPECT_EQ(out, testutil::ref_exclusive_scan(std::span<const long>(in),
                                              Max<long>{}));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeScanSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 63, 64, 65, 1000,
                                           65536));

TEST(TreeScan, Figure13Example) {
  // The two-sweep method on any input must match the serial scan; the trace
  // must report 2 lg n parallel steps.
  std::vector<int> in{3, 1, 7, 0, 4, 1, 6, 3};
  std::vector<int> out(8);
  const TreeScanTrace t =
      tree_scan(std::span<const int>(in), std::span<int>(out), Plus<int>{});
  EXPECT_EQ(out, (std::vector<int>{0, 3, 4, 11, 11, 15, 16, 22}));
  EXPECT_EQ(t.levels, 3u);
  EXPECT_EQ(t.parallel_steps, 6u);
}

TEST(SegTreeScan, MatchesDirectSegmentedScan) {
  // The pair-operator tree (the "little additional hardware" direct
  // implementation) against the carry-resetting kernel.
  for (const std::size_t n : {1u, 2u, 100u, 4097u, 30000u}) {
    const auto in = testutil::random_vector<long>(n, 113);
    const Flags f = testutil::random_flags(n, 114, 6);
    std::vector<long> out(n);
    seg_tree_scan(std::span<const long>(in), FlagsView(f), std::span<long>(out),
                  Plus<long>{});
    EXPECT_EQ(out, testutil::ref_seg_exclusive_scan(std::span<const long>(in),
                                                    FlagsView(f), Plus<long>{}));
    seg_tree_scan(std::span<const long>(in), FlagsView(f), std::span<long>(out),
                  Max<long>{});
    EXPECT_EQ(out, testutil::ref_seg_exclusive_scan(std::span<const long>(in),
                                                    FlagsView(f), Max<long>{}));
  }
}

TEST(SegTreeScan, StillTwoLgNSteps) {
  const std::size_t n = 1 << 12;
  const auto in = testutil::random_vector<long>(n, 115);
  const Flags f = testutil::random_flags(n, 116, 4);
  std::vector<long> out(n);
  const TreeScanTrace t = seg_tree_scan(std::span<const long>(in), FlagsView(f),
                                        std::span<long>(out), Plus<long>{});
  EXPECT_EQ(t.levels, 12u);
  EXPECT_EQ(t.parallel_steps, 24u);
}

TEST(TreeScan, WorkIsLinear) {
  std::vector<long> in(1 << 14, 1), out(1 << 14);
  const TreeScanTrace t =
      tree_scan(std::span<const long>(in), std::span<long>(out), Plus<long>{});
  // Exactly 2(n-1) operator applications for a power-of-two input.
  EXPECT_EQ(t.applications, 2u * ((1u << 14) - 1));
  EXPECT_EQ(t.levels, 14u);
}

}  // namespace
}  // namespace scanprim::circuit
