// Split radix sort (§2.2.1): correctness, stability, step complexity, and
// the float-key extension.
#include "src/algo/radix_sort.hpp"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

class RadixSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RadixSweep, SortsUniformKeys) {
  machine::Machine m;
  const auto keys = testutil::random_vector<std::uint64_t>(GetParam(), 121,
                                                           1u << 20);
  const auto sorted = split_radix_sort(m, std::span<const std::uint64_t>(keys), 20);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RadixSweep,
                         ::testing::Values(0, 1, 2, 10, 1000, 4097, 65536));

TEST(RadixSort, StepComplexityIsLinearInBits) {
  // O(1) program steps per bit in the scan model (§2.2.1): the per-bit step
  // count must not depend on n.
  const auto count_steps = [](std::size_t n, unsigned bits) {
    machine::Machine m(machine::Model::Scan);
    const auto keys =
        testutil::random_vector<std::uint64_t>(n, 122, std::uint64_t{1} << bits);
    split_radix_sort(m, std::span<const std::uint64_t>(keys), bits);
    return m.stats().steps;
  };
  const auto small = count_steps(1 << 8, 16);
  const auto large = count_steps(1 << 14, 16);
  EXPECT_EQ(small, large);
  // And doubling the bit count doubles the steps.
  EXPECT_EQ(count_steps(1 << 10, 16) * 2, count_steps(1 << 10, 32));
}

TEST(RadixSort, StableOnEqualKeys) {
  machine::Machine m;
  const std::size_t n = 20000;
  const auto keys = testutil::random_vector<std::uint64_t>(n, 123, 16);
  const SortWithOrigin r = split_radix_sort_with_origin(
      m, std::span<const std::uint64_t>(keys), 4);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    ASSERT_LE(r.keys[i], r.keys[i + 1]);
    if (r.keys[i] == r.keys[i + 1]) {
      ASSERT_LT(r.origin[i], r.origin[i + 1]) << "stability violated at " << i;
    }
  }
}

TEST(RadixSort, OriginIsAValidPermutationOfTheInput) {
  machine::Machine m;
  const auto keys = testutil::random_vector<std::uint64_t>(5000, 124, 1000);
  const SortWithOrigin r = split_radix_sort_with_origin(
      m, std::span<const std::uint64_t>(keys), 10);
  std::vector<bool> seen(keys.size(), false);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_LT(r.origin[i], keys.size());
    ASSERT_FALSE(seen[r.origin[i]]);
    seen[r.origin[i]] = true;
    ASSERT_EQ(r.keys[i], keys[r.origin[i]]);
  }
}

TEST(RadixSort, SortsDoublesIncludingNegatives) {
  machine::Machine m;
  auto keys = testutil::random_doubles(8000, 125, -1e6, 1e6);
  keys.push_back(0.0);
  keys.push_back(-1e-12);
  keys.push_back(std::numeric_limits<double>::infinity());
  keys.push_back(-std::numeric_limits<double>::infinity());
  const auto sorted =
      split_radix_sort_doubles(m, std::span<const double>(keys));
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect);
}

TEST(RadixSort, MultiDigitVariantsAgree) {
  machine::Machine m;
  const auto keys = testutil::random_vector<std::uint64_t>(20000, 126,
                                                           1u << 16);
  const auto one_bit =
      split_radix_sort(m, std::span<const std::uint64_t>(keys), 16);
  for (const unsigned r : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(split_radix_sort_digits(m, std::span<const std::uint64_t>(keys),
                                      16, r),
              one_bit)
        << "radix bits " << r;
  }
}

TEST(RadixSort, MultiDigitHandlesRaggedWidths) {
  machine::Machine m;
  // 10 bits sorted with 4-bit digits: the last pass covers a partial digit.
  const auto keys = testutil::random_vector<std::uint64_t>(5000, 127, 1u << 10);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(split_radix_sort_digits(m, std::span<const std::uint64_t>(keys),
                                    10, 4),
            expect);
}

TEST(RadixSort, SortPairsCarriesValues) {
  machine::Machine m;
  const auto keys = testutil::random_vector<std::uint64_t>(8000, 129, 256);
  std::vector<std::size_t> payload(keys.size());
  std::iota(payload.begin(), payload.end(), std::size_t{0});
  const auto [sk, sv] = sort_pairs(m, std::span<const std::uint64_t>(keys),
                                   std::span<const std::size_t>(payload), 8);
  ASSERT_TRUE(std::is_sorted(sk.begin(), sk.end()));
  // Every (key, value) pair of the input appears, with its own key, and the
  // sort is stable: equal keys keep ascending payloads.
  for (std::size_t i = 0; i < sk.size(); ++i) {
    ASSERT_EQ(keys[sv[i]], sk[i]);
    if (i > 0 && sk[i - 1] == sk[i]) {
      ASSERT_LT(sv[i - 1], sv[i]);
    }
  }
}

TEST(RadixSort, SortsStringsLexicographically) {
  machine::Machine m;
  auto g = testutil::rng(128);
  std::vector<std::string> words;
  const char* syllables[] = {"scan", "seg", "ment", "tree", "sum", "permute",
                             "pack", "", "a", "zebra"};
  for (int i = 0; i < 3000; ++i) {
    std::string w;
    const std::size_t parts = g() % 4;
    for (std::size_t p = 0; p < parts; ++p) w += syllables[g() % 10];
    words.push_back(w);
  }
  const auto sorted =
      split_radix_sort_strings(m, std::span<const std::string>(words));
  auto expect = words;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect);
}

TEST(RadixSort, StringsLongerThanOneChunk) {
  machine::Machine m;
  const std::vector<std::string> words{
      "aaaaaaaaab", "aaaaaaaaaa", "aaaaaaaaa", "b", "aaaaaaaa",
      "aaaaaaaaac", "aaaaaaaaaaaaaaaaaaZ", "aaaaaaaaaaaaaaaaaa"};
  const auto sorted =
      split_radix_sort_strings(m, std::span<const std::string>(words));
  auto expect = words;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect);
}

TEST(RadixSort, BitsFor) {
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 1u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(1024), 10u);
  EXPECT_EQ(bits_for(1025), 11u);
}

TEST(RadixSort, LowBitsOutsideRangeAreIgnored) {
  // Sorting 4-bit keys with bits=4 must order by the low 4 bits only.
  machine::Machine m;
  const std::vector<std::uint64_t> keys{7, 3, 15, 0, 9, 12, 1};
  const auto sorted = split_radix_sort(m, std::span<const std::uint64_t>(keys), 4);
  EXPECT_EQ(sorted, (std::vector<std::uint64_t>{0, 1, 3, 7, 9, 12, 15}));
}

}  // namespace
}  // namespace scanprim::algo
