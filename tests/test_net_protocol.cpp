// Protocol robustness (docs/NET.md "Robustness"): malformed and hostile
// input against the live server — truncated frames, oversized length
// prefixes, garbage magic, version skew, slowloris stalls, mid-flight
// disconnects — plus the net fault points. The invariant throughout: the
// offending connection resolves to a protocol error (or is closed), no
// request slot leaks (Stats::in_flight returns to zero), and the server
// keeps serving other connections.
#include "src/net/protocol.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/net/client.hpp"
#include "src/net/server.hpp"
#include "src/serve/service.hpp"

namespace scanprim::net {
namespace {

using namespace std::chrono_literals;

std::span<const std::uint8_t> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

std::string encoded_scan(std::uint64_t rid, std::vector<Value> data) {
  Request r;
  r.op = Op::kScan;
  r.request_id = rid;
  r.data = std::move(data);
  std::string wire;
  encode_request(wire, r);
  return wire;
}

// --- decoder hardening (no sockets) ------------------------------------------

TEST(NetProtocolDecode, TruncationAtEveryByteThrowsCleanly) {
  const std::string wire = encoded_scan(1, {1, 2, 3, 4, 5});
  // Every strict prefix either asks for more bytes (frame_size 0) or, once
  // frame_size is satisfied by a lying length, throws ProtocolError from
  // decode — never reads out of bounds, never aborts.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const std::span<const std::uint8_t> part(
        reinterpret_cast<const std::uint8_t*>(wire.data()), cut);
    EXPECT_EQ(frame_size(part, 1 << 20), 0u) << cut;
  }
  // A frame whose length prefix claims MORE than its body delivers:
  std::string lying = wire;
  lying.resize(lying.size() - 3);  // chop the tail
  lying[0] = static_cast<char>(lying.size() - 4);  // length says "complete"
  lying[1] = lying[2] = lying[3] = 0;
  EXPECT_THROW(decode_request(as_bytes(lying)), ProtocolError);
}

TEST(NetProtocolDecode, TrailingBytesAreAnError) {
  std::string wire = encoded_scan(1, {1, 2});
  wire += std::string(8, '\0');
  wire[0] = static_cast<char>(static_cast<std::uint8_t>(wire[0]) + 8);
  EXPECT_THROW(decode_request(as_bytes(wire)), ProtocolError);
}

TEST(NetProtocolDecode, OversizedLengthPrefixFailsBeforeBuffering) {
  const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0x7f};
  EXPECT_THROW(frame_size(std::span<const std::uint8_t>(huge, 4), 1 << 20),
               ProtocolError);
}

TEST(NetProtocolDecode, GarbageMagicAndVersionSkew) {
  std::string wire = encoded_scan(1, {1});
  std::string bad = wire;
  bad[4] ^= 0x5a;  // corrupt magic
  EXPECT_THROW(decode_request(as_bytes(bad)), ProtocolError);
  std::string skew = wire;
  skew[8] = 9;  // version 9
  EXPECT_THROW(
      {
        try {
          decode_request(as_bytes(skew));
        } catch (const VersionSkew& e) {
          EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
          throw;
        }
      },
      VersionSkew);
}

TEST(NetProtocolDecode, AttackerChosenCountsFailBeforeAllocation) {
  // A scan frame whose vec count claims 2^31 elements in a 30-byte body
  // must throw on the byte check, not reserve 16 GiB.
  std::string wire = encoded_scan(1, {1, 2, 3});
  // The data count sits right after the scan_op byte: 4 (length prefix) +
  // 32 (fixed header) + 1 (scan_op) = offset 37.
  wire[37] = 0x00;
  wire[38] = 0x00;
  wire[39] = 0x00;
  wire[40] = 0x40;  // count = 2^30 elements "present" in a 24-byte payload
  EXPECT_THROW(decode_request(as_bytes(wire)), ProtocolError);
}

// --- live-server robustness --------------------------------------------------

struct RobustServer {
  serve::Service svc;
  ServiceBackend backend{svc};
  Server server;
  explicit RobustServer(Server::Options o) : server(backend, std::move(o)) {
    server.start();
  }
  RobustServer() : RobustServer(defaults()) {}
  static Server::Options defaults() {
    Server::Options o;
    o.io_threads = 2;
    return o;
  }
  ~RobustServer() {
    server.stop();
    svc.shutdown();
  }
};

/// A well-behaved client must keep working while hostile ones misbehave.
void expect_still_serving(RobustServer& rs) {
  Client good("127.0.0.1", rs.server.port());
  const Response r = good.scan_sync({1, 2, 3}, ScanOp::kPlus);
  ASSERT_EQ(r.status, Status::kOk) << r.error;
  EXPECT_EQ(r.outputs.front(), (std::vector<Value>{0, 1, 3}));
}

void drain_in_flight(RobustServer& rs) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (rs.server.stats().in_flight != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(rs.server.stats().in_flight, 0u);
}

// --- fault points -------------------------------------------------------------
// Registered BEFORE the robustness suite so the ambient entry point runs
// while a SCANPRIM_FAULT armed by the CI fault matrix is still live; every
// test after it disarms the environment and arms its own points (the
// test_serve_recovery idiom).

/// With SCANPRIM_FAULT=net.frame_decode / net.accept armed from the
/// environment (the CI fault legs), whichever connection draws the injected
/// fault resolves to a protocol error (or dies outright on the accept path)
/// while the server outlives it and most traffic succeeds.
TEST(NetFaults, AmbientEnvironmentFaultsAreAbsorbed) {
  RobustServer rs;
  int ok = 0, faulted = 0;
  for (int i = 0; i < 6; ++i) {
    try {
      Client cli("127.0.0.1", rs.server.port());
      const Response r = cli.scan_sync({1, 2}, ScanOp::kPlus);
      if (r.status == Status::kOk) {
        ++ok;
      } else {
        ++faulted;
      }
    } catch (const std::exception&) {
      ++faulted;  // an accept fault can kill the connection outright
    }
  }
  // Whatever was armed, the server outlives it and most traffic succeeds.
  EXPECT_GT(ok, 0);
  drain_in_flight(rs);
}

TEST(NetFaults, FrameDecodeFaultFailsOneConnectionOthersUnaffected) {
  fault::disarm_all();
  RobustServer rs;
  fault::arm("net.frame_decode", 1, 1);  // first decode fires, once
  Client victim("127.0.0.1", rs.server.port());
  const Response r = victim.scan_sync({1, 2, 3}, ScanOp::kPlus);
  EXPECT_EQ(r.status, Status::kProtocolError);
  EXPECT_NE(r.error.find("net.frame_decode"), std::string::npos) << r.error;
  fault::disarm_all();
  expect_still_serving(rs);
  drain_in_flight(rs);
}

TEST(NetFaults, AcceptFaultDropsTheConnectionServerSurvives) {
  fault::disarm_all();
  RobustServer rs;
  fault::arm("net.accept", 1, 1);
  bool first_failed = false;
  try {
    Client dropped("127.0.0.1", rs.server.port());
    // The TCP handshake completed before the server-side close, so the
    // failure may only surface on first use.
    const Response r = dropped.scan_sync({1}, ScanOp::kPlus);
    first_failed = r.status != Status::kOk;
  } catch (const std::exception&) {
    first_failed = true;
  }
  EXPECT_TRUE(first_failed);
  fault::disarm_all();
  EXPECT_GE(fault::hits("net.accept"), 1u);
  expect_still_serving(rs);
}

// --- hostile input against the live server ------------------------------------

TEST(NetRobustness, GarbageMagicGetsProtocolErrorAndClose) {
  fault::disarm_all();
  RobustServer rs;
  Client evil("127.0.0.1", rs.server.port(), 0, /*manual=*/true);
  std::string wire = encoded_scan(77, {1, 2});
  wire[4] ^= 0xff;
  ASSERT_TRUE(evil.send_raw(wire.data(), wire.size()));
  const Response r = evil.read_response();
  EXPECT_EQ(r.status, Status::kProtocolError);
  EXPECT_EQ(r.request_id, 77u);  // peeked from the fixed header offset
  EXPECT_THROW(evil.read_response(), std::runtime_error);  // closed after
  expect_still_serving(rs);
  drain_in_flight(rs);
  EXPECT_GE(rs.server.stats().protocol_errors, 1u);
}

TEST(NetRobustness, VersionSkewGetsDistinctStatus) {
  fault::disarm_all();
  RobustServer rs;
  Client evil("127.0.0.1", rs.server.port(), 0, /*manual=*/true);
  std::string wire = encoded_scan(5, {1});
  wire[8] = 42;
  ASSERT_TRUE(evil.send_raw(wire.data(), wire.size()));
  const Response r = evil.read_response();
  EXPECT_EQ(r.status, Status::kVersionSkew);
  EXPECT_EQ(r.request_id, 5u);
  expect_still_serving(rs);
}

TEST(NetRobustness, OversizedLengthPrefixClosesImmediately) {
  fault::disarm_all();
  RobustServer rs;
  Client evil("127.0.0.1", rs.server.port(), 0, /*manual=*/true);
  const std::uint8_t huge[8] = {0xff, 0xff, 0xff, 0x7f, 'x', 'x', 'x', 'x'};
  ASSERT_TRUE(evil.send_raw(huge, sizeof huge));
  const Response r = evil.read_response();
  EXPECT_EQ(r.status, Status::kProtocolError);
  EXPECT_NE(r.error.find("exceeds limit"), std::string::npos) << r.error;
  expect_still_serving(rs);
}

TEST(NetRobustness, SlowlorisStalledFrameHitsIdleTimeout) {
  fault::disarm_all();
  Server::Options o = RobustServer::defaults();
  o.idle_ms = 300;  // fast timeout so the test is quick
  RobustServer rs(o);
  Client slow("127.0.0.1", rs.server.port(), 0, /*manual=*/true);
  // Send half a frame and stall.
  const std::string wire = encoded_scan(1, {1, 2, 3, 4, 5, 6, 7, 8});
  ASSERT_TRUE(slow.send_raw(wire.data(), wire.size() / 2));
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (rs.server.stats().idle_closed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(rs.server.stats().idle_closed, 1u);
  expect_still_serving(rs);
}

TEST(NetRobustness, IdleConnectionWithNoPartialFrameSurvives) {
  fault::disarm_all();
  Server::Options o = RobustServer::defaults();
  o.idle_ms = 200;
  RobustServer rs(o);
  Client quiet("127.0.0.1", rs.server.port());
  std::this_thread::sleep_for(700ms);  // well past idle_ms, buffer empty
  EXPECT_EQ(rs.server.stats().idle_closed, 0u);
  const Response r = quiet.scan_sync({4, 4}, ScanOp::kPlus);
  EXPECT_EQ(r.status, Status::kOk) << r.error;
}

TEST(NetRobustness, MidFlightDisconnectLeaksNothing) {
  fault::disarm_all();
  // A slow batching window guarantees requests are still in flight when the
  // client vanishes; the completion path must drop them cleanly.
  RobustServer rs;
  rs.svc.set_window_us(100000);  // 100 ms window
  {
    Client doomed("127.0.0.1", rs.server.port());
    RequestOptions bulk;
    bulk.priority = Priority::kBulk;  // bulk lane: no urgent window cut
    for (int i = 0; i < 8; ++i) {
      // Fire-and-forget: futures dropped, connection closes with requests
      // mid-window.
      (void)doomed.scan(std::vector<Value>(64, 1), ScanOp::kPlus, false,
                        false, {}, bulk);
    }
  }  // ~Client: close with requests still queued for the batcher
  drain_in_flight(rs);
  rs.svc.set_window_us(1);
  expect_still_serving(rs);
  EXPECT_EQ(rs.server.stats().open, 0u);  // every connection reaped
}

TEST(NetRobustness, PipelinedMixOfGoodAndBadFramesStopsAtTheBadOne) {
  fault::disarm_all();
  RobustServer rs;
  Client mixed("127.0.0.1", rs.server.port(), 0, /*manual=*/true);
  std::string wire = encoded_scan(1, {1, 2, 3});
  std::string bad = encoded_scan(2, {4, 5});
  bad[4] ^= 0x80;  // corrupt magic on the second frame
  wire += bad;
  wire += encoded_scan(3, {6});  // never reached: connection closes at #2
  ASSERT_TRUE(mixed.send_raw(wire.data(), wire.size()));
  // Both owed responses arrive before the close — the good frame's result
  // (batched, so possibly later) and the protocol error. The error frame can
  // legitimately hit the wire first, so match by request id, not order.
  std::map<std::uint64_t, Response> got;
  for (int i = 0; i < 2; ++i) {
    Response r = mixed.read_response();
    got.emplace(r.request_id, std::move(r));
  }
  ASSERT_TRUE(got.count(1));
  EXPECT_EQ(got[1].status, Status::kOk) << got[1].error;
  ASSERT_TRUE(got.count(2));
  EXPECT_EQ(got[2].status, Status::kProtocolError);
  // Frame #3 was never processed: the connection closes after the two owed
  // responses instead of answering it.
  EXPECT_THROW(mixed.read_response(), std::runtime_error);
  drain_in_flight(rs);
  expect_still_serving(rs);
}

}  // namespace
}  // namespace scanprim::net
