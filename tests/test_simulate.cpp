// §3.4: all the scans, built from only the two primitives (+-scan and
// max-scan). Every simulated scan must agree with its directly-implemented
// counterpart.
#include "src/core/simulate.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim {
namespace {

class SimSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SimSweep, MinScanViaInvertedMaxScan) {
  const auto in = testutil::random_vector<std::int64_t>(GetParam(), 61);
  const auto simulated = sim::min_scan(std::span<const std::int64_t>(in));
  EXPECT_EQ(simulated, testutil::ref_exclusive_scan(
                           std::span<const std::int64_t>(in), Min<std::int64_t>{}));
}

TEST_P(SimSweep, OrScanViaOneBitMaxScan) {
  const auto in = testutil::random_vector<std::uint8_t>(GetParam(), 62, 2);
  EXPECT_EQ(sim::or_scan(std::span<const std::uint8_t>(in)),
            or_scan(std::span<const std::uint8_t>(in)));
}

TEST_P(SimSweep, AndScanViaOneBitMinScan) {
  const auto in = testutil::random_vector<std::uint8_t>(GetParam(), 63, 2);
  EXPECT_EQ(sim::and_scan(std::span<const std::uint8_t>(in)),
            and_scan(std::span<const std::uint8_t>(in)));
}

TEST_P(SimSweep, FloatMaxScanViaBitFlipping) {
  auto in = testutil::random_doubles(GetParam(), 64);
  const auto simulated = sim::float_max_scan(std::span<const double>(in));
  std::vector<double> direct(in.size());
  exclusive_scan(std::span<const double>(in), std::span<double>(direct),
                 Max<double>{});
  ASSERT_EQ(simulated.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    if (i == 0) {
      EXPECT_EQ(simulated[0], -std::numeric_limits<double>::infinity());
    } else {
      ASSERT_EQ(simulated[i], direct[i]) << i;
    }
  }
}

TEST_P(SimSweep, FloatMinScanViaNegation) {
  auto in = testutil::random_doubles(GetParam(), 65);
  const auto simulated = sim::float_min_scan(std::span<const double>(in));
  std::vector<double> direct(in.size());
  exclusive_scan(std::span<const double>(in), std::span<double>(direct),
                 Min<double>{});
  for (std::size_t i = 1; i < direct.size(); ++i) {
    ASSERT_EQ(simulated[i], direct[i]) << i;
  }
}

TEST_P(SimSweep, SegMaxScanViaAppendedSegmentNumbers) {
  const auto in = testutil::random_vector<std::uint32_t>(GetParam(), 66, 1u << 30);
  const Flags f = testutil::random_flags(in.size(), 67, 5);
  const auto simulated =
      sim::seg_max_scan(std::span<const std::uint32_t>(in), FlagsView(f));
  // The direct version with unsigned-max identity 0.
  struct UMax {
    static std::uint32_t identity() { return 0; }
    std::uint32_t operator()(std::uint32_t a, std::uint32_t b) const {
      return a > b ? a : b;
    }
  };
  EXPECT_EQ(simulated, testutil::ref_seg_exclusive_scan(
                           std::span<const std::uint32_t>(in), FlagsView(f), UMax{}));
}

TEST_P(SimSweep, SegPlusScanViaUnsegmentedScanAndHeadCopy) {
  const auto in = testutil::random_vector<std::uint32_t>(GetParam(), 68, 1000);
  const Flags f = testutil::random_flags(in.size(), 69, 4);
  const auto simulated =
      sim::seg_plus_scan(std::span<const std::uint32_t>(in), FlagsView(f));
  EXPECT_EQ(simulated,
            testutil::ref_seg_exclusive_scan(std::span<const std::uint32_t>(in),
                                             FlagsView(f), Plus<std::uint32_t>{}));
}

TEST_P(SimSweep, BackwardScansViaReversedReads) {
  const auto in = testutil::random_vector<std::uint64_t>(GetParam(), 70);
  EXPECT_EQ(sim::plus_backscan(std::span<const std::uint64_t>(in)),
            testutil::ref_backward_exclusive_scan(
                std::span<const std::uint64_t>(in), Plus<std::uint64_t>{}));
  const auto ins = testutil::random_vector<std::int64_t>(GetParam(), 71);
  EXPECT_EQ(sim::max_backscan(std::span<const std::int64_t>(ins)),
            testutil::ref_backward_exclusive_scan(
                std::span<const std::int64_t>(ins), Max<std::int64_t>{}));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SimSweep,
                         ::testing::Values(1, 2, 3, 8, 100, 4097, 20000));

TEST(Simulate, PaperFigure16SegMaxScan) {
  const std::vector<std::uint32_t> a{5, 1, 3, 4, 3, 9, 2, 6};
  const Flags f{1, 0, 1, 0, 0, 0, 1, 0};
  EXPECT_EQ(sim::seg_max_scan(std::span<const std::uint32_t>(a), FlagsView(f)),
            (std::vector<std::uint32_t>{0, 5, 0, 3, 4, 4, 0, 2}));
}

TEST(Simulate, FloatPlusScanMatchesDoubleScan) {
  // §3.4: "the implementation of the floating-point +-scan is described
  // elsewhere [7]" — exponent alignment + a wide integer scan. Exact (up to
  // double rounding of the running sums) when magnitudes are within the
  // fixed-point window.
  for (const std::size_t n : {1u, 2u, 100u, 4097u, 20000u}) {
    const auto in = testutil::random_doubles(n, 74, -1000.0, 1000.0);
    const auto got = sim::float_plus_scan(std::span<const double>(in));
    double acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      // The fixed-point scan is *more* accurate than naive double
      // accumulation, so compare with a tolerance scaled to the prefix.
      ASSERT_NEAR(got[i], acc, 1e-6 * (1.0 + std::fabs(acc))) << i;
      acc += in[i];
    }
  }
}

TEST(Simulate, FloatPlusScanAllZeros) {
  const std::vector<double> in(100, 0.0);
  const auto got = sim::float_plus_scan(std::span<const double>(in));
  for (const double v : got) ASSERT_EQ(v, 0.0);
}

TEST(Simulate, FloatPlusScanFlushesTinyAddends) {
  // A value 2^-70 below the maximum vanishes in the alignment — the
  // documented behaviour of the fixed-point implementation.
  const std::vector<double> in{1e30, 1.0, 1e30};
  const auto got = sim::float_plus_scan(std::span<const double>(in));
  EXPECT_EQ(got[0], 0.0);
  EXPECT_EQ(got[1], 1e30);
  EXPECT_EQ(got[2], 1e30);  // the 1.0 flushed
}

TEST(Simulate, CopyViaScanRestoresFirstElement) {
  const auto in = testutil::random_vector<std::int64_t>(5000, 72);
  const auto out = sim::copy_via_scan(std::span<const std::int64_t>(in));
  for (std::int64_t v : out) ASSERT_EQ(v, in[0]);
}

TEST(Simulate, FloatKeyIsOrderPreserving) {
  auto vals = testutil::random_doubles(2000, 73);
  vals.push_back(0.0);
  // (-0.0 keys strictly below +0.0 — the usual radix-sort-doubles caveat —
  // so it is excluded from the strict order check.)
  vals.push_back(std::numeric_limits<double>::infinity());
  vals.push_back(-std::numeric_limits<double>::infinity());
  vals.push_back(1e-300);
  vals.push_back(-1e-300);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    ASSERT_EQ(sim::float_unkey(sim::float_key(vals[i])), vals[i]);
    for (std::size_t j = 0; j < vals.size(); ++j) {
      ASSERT_EQ(vals[i] < vals[j],
                sim::float_key(vals[i]) < sim::float_key(vals[j]));
    }
  }
}

}  // namespace
}  // namespace scanprim
