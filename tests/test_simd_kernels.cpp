// Kernel-agreement property suite for the SIMD dispatch tiers (core/simd/):
// for every available tier, the vector kernels must be bit-identical to the
// scalar reference loops across all five operators × {forward, backward} ×
// {inclusive, exclusive} × {segmented, unsegmented} × awkward sizes (0, 1,
// around the register width, around the tile) × misaligned base pointers.
// This is the invariant that lets the engines dispatch on a runtime tier
// without the result ever depending on the machine.
#include "src/core/simd/simd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <typeinfo>
#include <vector>

#include "src/core/chained_scan.hpp"
#include "src/core/ops.hpp"
#include "src/core/scan.hpp"
#include "src/core/segmented.hpp"
#include "test_util.hpp"

namespace scanprim {
namespace {

class TierGuard {
 public:
  explicit TierGuard(simd::Tier tier) : prev_(simd::active_tier()) {
    simd::set_simd_tier(tier);
  }
  ~TierGuard() { simd::set_simd_tier(prev_); }

 private:
  simd::Tier prev_;
};

std::vector<simd::Tier> available_tiers() {
  std::vector<simd::Tier> tiers{simd::Tier::kScalar};
  const simd::Tier best = simd::best_supported_tier();
  if (best >= simd::Tier::kAvx2) tiers.push_back(simd::Tier::kAvx2);
  if (best >= simd::Tier::kAvx512) tiers.push_back(simd::Tier::kAvx512);
  return tiers;
}

// Sizes around the widest register (64 bytes) and the byte-based tile for T.
template <class T>
std::vector<std::size_t> awkward_sizes() {
  const std::size_t w = 64 / sizeof(T);
  const std::size_t tile = detail::chained_tile_elements<T>();
  return {0,     1,        2,        w - 1,    w,
          w + 1, 2 * w + 3, tile - 1, tile,     tile + 1};
}

// Runs every kernel entry point under `tier` at a deliberately misaligned
// base pointer (data() + 1 of an over-allocated buffer, so vector loads
// never see a 64-byte-aligned start) and compares bit-for-bit against the
// scalar reference loops.
template <class Op>
void expect_tier_matches_scalar(simd::Tier tier) {
  using T = typename Op::value_type;
  static_assert(simd::vectorizable_v<Op, T>);
  for (const std::size_t n : awkward_sizes<T>()) {
    const auto seed = static_cast<std::uint64_t>(n + 7 * sizeof(T));
    std::vector<T> inbuf = testutil::random_vector<T>(n + 1, seed, 97);
    const Flags fbuf = testutil::random_flags(n + 1, seed + 1, 5);
    const T* in = inbuf.data() + 1;
    const std::uint8_t* flags = fbuf.data() + 1;
    const T carry = static_cast<T>(1);

    for (const std::uint8_t* f : {static_cast<const std::uint8_t*>(nullptr),
                                  flags}) {
      const char* ctx = f == nullptr ? "unsegmented" : "segmented";
      SCOPED_TRACE(::testing::Message()
                   << typeid(Op).name() << " n=" << n << " " << ctx
                   << " tier=" << simd::tier_name(tier));

      std::vector<T> want(n + 1), got(n + 1);
      const auto compare = [&](auto run) {
        std::fill(want.begin(), want.end(), T{});
        std::fill(got.begin(), got.end(), T{});
        T want_carry, got_carry;
        {
          TierGuard g(simd::Tier::kScalar);
          want_carry = run(want.data() + 1);
        }
        {
          TierGuard g(tier);
          got_carry = run(got.data() + 1);
        }
        ASSERT_EQ(want, got);
        ASSERT_EQ(want_carry, got_carry);
      };

      compare([&](T* out) {
        return simd::scan_fwd<T, Op, true>(in, f, out, n, carry);
      });
      compare([&](T* out) {
        return simd::scan_fwd<T, Op, false>(in, f, out, n, carry);
      });
      compare([&](T* out) {
        return simd::scan_bwd<T, Op, true>(in, f, out, n, carry);
      });
      compare([&](T* out) {
        return simd::scan_bwd<T, Op, false>(in, f, out, n, carry);
      });
      compare([&](T*) {
        bool saw = false;
        return simd::reduce_fwd<T, Op>(in, f, n, carry, &saw);
      });
      compare([&](T*) {
        bool saw = false;
        return simd::reduce_bwd<T, Op>(in, f, n, carry, &saw);
      });

      // The segmented saw_flag report must agree with a plain flag check.
      if (f != nullptr) {
        TierGuard g(tier);
        bool saw_f = false, saw_b = false;
        simd::reduce_fwd<T, Op>(in, f, n, Op::identity(), &saw_f);
        simd::reduce_bwd<T, Op>(in, f, n, Op::identity(), &saw_b);
        ASSERT_EQ(saw_f, simd::any_flag(f, n));
        ASSERT_EQ(saw_b, simd::any_flag(f, n));
      }
    }
  }
}

class SimdTiers : public ::testing::TestWithParam<simd::Tier> {};

TEST_P(SimdTiers, PlusKernelsMatchScalar) {
  expect_tier_matches_scalar<Plus<std::int64_t>>(GetParam());
  expect_tier_matches_scalar<Plus<std::int32_t>>(GetParam());
  expect_tier_matches_scalar<Plus<std::uint8_t>>(GetParam());
}

TEST_P(SimdTiers, MaxMinKernelsMatchScalar) {
  expect_tier_matches_scalar<Max<std::int64_t>>(GetParam());
  expect_tier_matches_scalar<Max<std::int16_t>>(GetParam());
  expect_tier_matches_scalar<Min<std::int64_t>>(GetParam());
  expect_tier_matches_scalar<Min<std::uint32_t>>(GetParam());
}

TEST_P(SimdTiers, OrAndKernelsMatchScalar) {
  expect_tier_matches_scalar<Or<std::uint8_t>>(GetParam());
  expect_tier_matches_scalar<And<std::uint8_t>>(GetParam());
  expect_tier_matches_scalar<Or<std::uint64_t>>(GetParam());
  expect_tier_matches_scalar<And<std::uint64_t>>(GetParam());
}

// The public scans must give identical bytes whatever the tier — segment
// boundaries, carries, and tails included.
TEST_P(SimdTiers, FullScansBitMatchAcrossTiers) {
  const std::size_t n = 3 * detail::chained_tile_elements<long>() + 41;
  const auto in = testutil::random_vector<long>(n, 77);
  const Flags f = testutil::random_flags(n, 78, 13);
  const std::span<const long> s(in);

  std::vector<long> scalar(n), tiered(n);
  const auto both = [&](auto run) {
    {
      TierGuard g(simd::Tier::kScalar);
      run(std::span<long>(scalar));
    }
    {
      TierGuard g(GetParam());
      run(std::span<long>(tiered));
    }
    ASSERT_EQ(scalar, tiered);
  };
  both([&](std::span<long> o) { exclusive_scan(s, o, Plus<long>{}); });
  both([&](std::span<long> o) { inclusive_scan(s, o, Max<long>{}); });
  both([&](std::span<long> o) { backward_exclusive_scan(s, o, Plus<long>{}); });
  both([&](std::span<long> o) { backward_inclusive_scan(s, o, Min<long>{}); });
  both([&](std::span<long> o) {
    seg_exclusive_scan(s, FlagsView(f), o, Plus<long>{});
  });
  both([&](std::span<long> o) {
    seg_backward_inclusive_scan(s, FlagsView(f), o, Plus<long>{});
  });

  TierGuard g(GetParam());
  std::vector<long> out(n);
  seg_inclusive_scan(s, FlagsView(f), std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out, testutil::ref_seg_inclusive_scan(s, FlagsView(f),
                                                  Plus<long>{}));
}

INSTANTIATE_TEST_SUITE_P(Available, SimdTiers,
                         ::testing::ValuesIn(available_tiers()),
                         [](const auto& info) {
                           return std::string(simd::tier_name(info.param));
                         });

TEST(SimdDispatch, SpecParsingAndClamping) {
  EXPECT_EQ(simd::sanitize_simd_spec("scalar"), simd::Tier::kScalar);
  EXPECT_EQ(simd::sanitize_simd_spec("off"), simd::Tier::kScalar);
  EXPECT_EQ(simd::sanitize_simd_spec("  SCALAR  "), simd::Tier::kScalar);
  EXPECT_EQ(simd::sanitize_simd_spec(nullptr), simd::best_supported_tier());
  EXPECT_EQ(simd::sanitize_simd_spec("auto"), simd::best_supported_tier());
  EXPECT_EQ(simd::sanitize_simd_spec("bogus"), simd::best_supported_tier());
  // Requests never exceed what the CPU has.
  EXPECT_LE(simd::sanitize_simd_spec("avx512"), simd::best_supported_tier());
  EXPECT_LE(simd::sanitize_simd_spec("avx2"), simd::best_supported_tier());

  const simd::Tier prev = simd::active_tier();
  simd::set_simd_tier(simd::Tier::kScalar);
  EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
  simd::set_simd_tier(simd::Tier::kAvx512);
  EXPECT_LE(simd::active_tier(), simd::best_supported_tier());
  simd::set_simd_tier(prev);

  EXPECT_STREQ(simd::tier_name(simd::Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::tier_name(simd::Tier::kAvx2), "avx2");
  EXPECT_STREQ(simd::tier_name(simd::Tier::kAvx512), "avx512");
}

TEST(SimdDispatch, AnyFlagFindsLoneFlagAtEveryPosition) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                              std::size_t{257}}) {
    Flags f(n, 0);
    EXPECT_FALSE(simd::any_flag(f.data(), n));
    for (std::size_t i = 0; i < n; ++i) {
      f[i] = 1;
      EXPECT_TRUE(simd::any_flag(f.data(), n)) << "flag at " << i;
      f[i] = 0;
    }
  }
  EXPECT_FALSE(simd::any_flag(nullptr, 0));
}

// Floats must never take a vector tier (re-association is not bit-exact
// there), and operators without a kernel stay scalar by construction.
TEST(SimdDispatch, VectorizabilityIsIntegralOnly) {
  static_assert(simd::vectorizable_v<Plus<std::int64_t>, std::int64_t>);
  static_assert(simd::vectorizable_v<Or<std::uint8_t>, std::uint8_t>);
  static_assert(!simd::vectorizable_v<Plus<double>, double>);
  static_assert(!simd::vectorizable_v<Max<float>, float>);
  static_assert(!simd::vectorizable_v<Times<std::int64_t>, std::int64_t>);
  static_assert(!simd::vectorizable_v<Plus<std::int64_t>, std::int32_t>);
}

}  // namespace
}  // namespace scanprim
