// The process-wide memory subsystem (src/mem, docs/MEM.md): size-class
// round-up and free-list reuse, the bounded best-fit for large blocks, the
// trim / high-water policy, live/peak/freelist accounting, the mem.alloc
// fault point, the scanprim_mem_* obs series, spec parsing for the
// SCANPRIM_HUGEPAGES / SCANPRIM_NUMA environment knobs, hugetlb graceful
// fallback, cross-thread free, and the typed helpers (ArenaArray,
// ArenaAllocator) the migrated call sites are built on. Plus the
// allocation-failure serving contract: a std::bad_alloc injected into the
// batcher's snapshot / scratch growth resolves requests kError through the
// existing recovery machinery — it never kills the batcher or strands a
// future.
#include "src/mem/mem.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "src/core/chained_scan.hpp"
#include "src/fault/fault.hpp"
#include "src/obs/registry.hpp"
#include "src/serve/service.hpp"

namespace scanprim::mem {
namespace {

// Every test starts with an empty thread-local free list, no armed faults
// (the CI fault matrix may have armed library points via SCANPRIM_FAULT),
// and the default policies regardless of the ambient environment.
class Mem : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm_all();
    set_huge_policy(HugePolicy::kThp);
    set_numa_policy(NumaPolicy::kFirstTouch);
    set_trim_high_water(std::size_t{256} << 20);
    trim_local(0);
  }
  void TearDown() override {
    fault::disarm_all();
    set_huge_policy(HugePolicy::kThp);
    set_trim_high_water(std::size_t{256} << 20);
    trim_local(0);
  }
};

// --- size classes and reuse --------------------------------------------------

TEST_F(Mem, RoundsUpToPowerOfTwoClasses) {
  struct Case {
    std::size_t ask, usable;
  };
  // 4 KiB floor, then the next power of two; above 64 MiB, 2 MiB multiples.
  const Case cases[] = {
      {1, 4096},
      {4096, 4096},
      {4097, 8192},
      {(1u << 16) - 1, 1u << 16},
      {1u << 20, 1u << 20},
      {(1u << 20) + 1, 1u << 21},
      {1u << 26, 1u << 26},
      {(1u << 26) + 1, 33 * (std::size_t{2} << 20)},  // 64 MiB + 1 -> 66 MiB
  };
  for (const Case& c : cases) {
    std::byte* p = allocate(c.ask);
    EXPECT_EQ(usable_bytes(p), c.usable) << "ask=" << c.ask;
    deallocate(p);
  }
}

TEST_F(Mem, FreeListReuseIsAHitAndReturnsTheSameBlock) {
  bool reused = true;
  std::byte* a = allocate(10'000, &reused);
  EXPECT_FALSE(reused);  // fresh list: must come from the OS
  deallocate(a);
  std::byte* b = allocate(9'000, &reused);  // same 16 KiB class
  EXPECT_TRUE(reused);
  EXPECT_EQ(a, b);
  deallocate(b);
}

TEST_F(Mem, ClassesDoNotCrossPollinate) {
  std::byte* small = allocate(4096);
  deallocate(small);
  bool reused = true;
  std::byte* big = allocate(1u << 20, &reused);
  EXPECT_FALSE(reused);  // a 4 KiB free block cannot serve a 1 MiB ask
  deallocate(big);
}

TEST_F(Mem, LargeBlocksRecycleUnderBoundedBestFit) {
  const std::size_t mib = std::size_t{1} << 20;
  // Park two oversized free blocks: 66 MiB and 128 MiB.
  std::byte* b66 = allocate(66 * mib);
  std::byte* b128 = allocate(128 * mib);
  const std::byte* id66 = b66;
  const std::byte* id128 = b128;
  deallocate(b66);
  deallocate(b128);

  // 66 MiB ask: best fit is the 66 MiB block (the 128 MiB one also fits but
  // is larger).
  bool reused = false;
  std::byte* p = allocate(66 * mib, &reused);
  EXPECT_TRUE(reused);
  EXPECT_EQ(p, id66);

  // 120 MiB ask: only the 128 MiB block fits, and 128 <= 2*120 — reused.
  std::byte* q = allocate(120 * mib, &reused);
  EXPECT_TRUE(reused);
  EXPECT_EQ(q, id128);
  deallocate(p);
  deallocate(q);

  // A 66 MiB ask must NOT pin a parked 256 MiB block (more than twice the
  // request): the bound forces a fresh allocation instead, and the giant
  // stays available for a caller its own size.
  trim_local(0);
  std::byte* giant = allocate(256 * mib);
  deallocate(giant);
  std::byte* r = allocate(66 * mib, &reused);
  EXPECT_FALSE(reused);
  deallocate(r);
  trim_local(0);
}

// --- trim / high water -------------------------------------------------------

TEST_F(Mem, TrimReleasesLargestFirstDownToKeepBytes) {
  Arena arena;  // standalone: free list observable without TLS interference
  std::byte* a = arena.allocate(4096);
  std::byte* b = arena.allocate(1u << 20);
  std::byte* c = arena.allocate(1u << 22);
  arena.deallocate(a);
  arena.deallocate(b);
  arena.deallocate(c);
  EXPECT_EQ(arena.free_bytes(), 4096u + (1u << 20) + (1u << 22));
  EXPECT_EQ(arena.free_blocks(), 3u);

  // Keep 2 MiB: the 4 MiB block (largest) goes; the 1 MiB + 4 KiB stay.
  const std::size_t released = arena.trim((std::size_t{2} << 20));
  EXPECT_EQ(released, std::size_t{1} << 22);
  EXPECT_EQ(arena.free_bytes(), 4096u + (1u << 20));
  EXPECT_EQ(arena.free_blocks(), 2u);

  EXPECT_EQ(arena.trim(0), 4096u + (1u << 20));
  EXPECT_EQ(arena.free_bytes(), 0u);
  EXPECT_EQ(arena.free_blocks(), 0u);
}

TEST_F(Mem, HighWaterCapsTheFreeListAutomatically) {
  set_trim_high_water(std::size_t{1} << 20);  // 1 MiB cap
  const Counters before = counters();
  // Free 4 MiB worth of 256 KiB blocks: each deallocate that pushes the
  // list past 1 MiB trims it back under.
  std::vector<std::byte*> blocks;
  for (int i = 0; i < 16; ++i) blocks.push_back(allocate(1u << 18));
  for (std::byte* p : blocks) deallocate(p);
  EXPECT_LE(local_arena().free_bytes(), std::size_t{1} << 20);
  const Counters after = counters();
  EXPECT_GT(after.trim_released, before.trim_released);
}

// --- counters ----------------------------------------------------------------

TEST_F(Mem, LiveBytesBalanceAndPeakIsSticky) {
  const Counters c0 = counters();
  std::byte* a = allocate(1u << 20);
  std::byte* b = allocate(1u << 20);
  const Counters c1 = counters();
  EXPECT_EQ(c1.live_bytes, c0.live_bytes + (2u << 20));
  EXPECT_GE(c1.peak_bytes, c1.live_bytes);
  deallocate(a);
  deallocate(b);
  trim_local(0);
  const Counters c2 = counters();
  // The mem-metrics smoke check: everything handed out came back.
  EXPECT_EQ(c2.live_bytes, c0.live_bytes);
  EXPECT_GE(c2.peak_bytes, c1.peak_bytes);
  EXPECT_EQ(c2.os_allocs - c0.os_allocs, c2.os_frees - c0.os_frees);
}

TEST_F(Mem, HitAndMissCountsMoveWithReuse) {
  const Counters c0 = counters();
  std::byte* p = allocate(8192);
  deallocate(p);
  p = allocate(8192);
  deallocate(p);
  const Counters c1 = counters();
  EXPECT_GE(c1.arena_misses - c0.arena_misses, 1u);
  EXPECT_GE(c1.arena_hits - c0.arena_hits, 1u);
}

TEST_F(Mem, NodeBytesAttributeSomewhere) {
  std::byte* p = allocate(1u << 20);
  const Counters c = counters();
  ASSERT_FALSE(c.node_bytes.empty());
  std::uint64_t total = 0;
  for (std::uint64_t v : c.node_bytes) total += v;
  EXPECT_GE(total, std::uint64_t{1} << 20);
  deallocate(p);
}

TEST_F(Mem, ObsRendersTheMemFamilies) {
  std::byte* p = allocate(4096);  // ensures the collector is registered
  deallocate(p);
  const std::string text = obs::render_text();
  for (const char* series :
       {"scanprim_mem_live_bytes", "scanprim_mem_peak_bytes",
        "scanprim_mem_freelist_bytes", "scanprim_mem_arena_hits_total",
        "scanprim_mem_arena_misses_total", "scanprim_mem_os_allocs_total",
        "scanprim_mem_huge_grants_total", "scanprim_mem_huge_denials_total",
        "scanprim_mem_trim_released_bytes_total",
        "scanprim_mem_node_bytes{node=\"0\"}"}) {
    EXPECT_NE(text.find(series), std::string::npos) << series;
  }
}

// --- huge pages --------------------------------------------------------------

TEST_F(Mem, HugeAdviceIsCountedForMmapSizedBlocks) {
  const Counters c0 = counters();
  std::byte* p = allocate(4u << 20);  // 4 MiB: mmap-backed, >= one huge page
  std::memset(p, 0xab, 4u << 20);     // fault the pages in
  const Counters c1 = counters();
  EXPECT_EQ((c1.huge_grants + c1.huge_denials) -
                (c0.huge_grants + c0.huge_denials),
            1u);  // exactly one verdict per eligible mapping
  deallocate(p);
  trim_local(0);
}

TEST_F(Mem, HugetlbFallsBackGracefully) {
  // Most CI containers have no hugetlb pool, so MAP_HUGETLB fails and the
  // policy's promise is the fallback: the allocation still succeeds (as a
  // THP-advised anonymous mapping) and the verdict is counted either way.
  set_huge_policy(HugePolicy::kHugetlb);
  const Counters c0 = counters();
  std::byte* p = allocate(4u << 20);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5a, 4u << 20);  // usable whichever way it was backed
  const Counters c1 = counters();
  EXPECT_GE((c1.huge_grants + c1.huge_denials) -
                (c0.huge_grants + c0.huge_denials),
            1u);
  deallocate(p);
  trim_local(0);
}

TEST_F(Mem, PolicyOffMapsPlainPages) {
  set_huge_policy(HugePolicy::kOff);
  const Counters c0 = counters();
  std::byte* p = allocate(4u << 20);
  const Counters c1 = counters();
  // kOff never consults the huge machinery: no verdicts.
  EXPECT_EQ(c1.huge_grants, c0.huge_grants);
  EXPECT_EQ(c1.huge_denials, c0.huge_denials);
  deallocate(p);
  trim_local(0);
}

// --- env spec parsing --------------------------------------------------------

TEST_F(Mem, HugeSpecParsing) {
  EXPECT_EQ(sanitize_huge_spec(nullptr), HugePolicy::kThp);
  EXPECT_EQ(sanitize_huge_spec(""), HugePolicy::kThp);
  EXPECT_EQ(sanitize_huge_spec("thp"), HugePolicy::kThp);
  EXPECT_EQ(sanitize_huge_spec("1"), HugePolicy::kThp);
  EXPECT_EQ(sanitize_huge_spec("garbage"), HugePolicy::kThp);
  EXPECT_EQ(sanitize_huge_spec("0"), HugePolicy::kOff);
  EXPECT_EQ(sanitize_huge_spec("off"), HugePolicy::kOff);
  EXPECT_EQ(sanitize_huge_spec("none"), HugePolicy::kOff);
  EXPECT_EQ(sanitize_huge_spec("FALSE"), HugePolicy::kOff);
  EXPECT_EQ(sanitize_huge_spec(" hugetlb "), HugePolicy::kHugetlb);
  EXPECT_EQ(sanitize_huge_spec("HugeTLB"), HugePolicy::kHugetlb);
}

TEST_F(Mem, NumaSpecParsing) {
  EXPECT_EQ(sanitize_numa_spec(nullptr), NumaPolicy::kFirstTouch);
  EXPECT_EQ(sanitize_numa_spec("firsttouch"), NumaPolicy::kFirstTouch);
  EXPECT_EQ(sanitize_numa_spec("garbage"), NumaPolicy::kFirstTouch);
  EXPECT_EQ(sanitize_numa_spec("interleave"), NumaPolicy::kInterleave);
  EXPECT_EQ(sanitize_numa_spec(" INTERLEAVED "), NumaPolicy::kInterleave);
}

TEST_F(Mem, NumaQueriesAreSane) {
  // With libnuma absent (or the kernel refusing) these are the stub values;
  // with it present the count must still be positive. Either way an
  // interleave request must not break allocation.
  EXPECT_GE(numa_node_count(), 1u);
  set_numa_policy(NumaPolicy::kInterleave);
  std::byte* p = allocate(4u << 20);
  ASSERT_NE(p, nullptr);
  std::memset(p, 1, 4u << 20);
  deallocate(p);
  trim_local(0);
}

TEST_F(Mem, PinThreadToCpuPinsModuloHardware) {
  // Index far beyond the core count must wrap, not fail.
  EXPECT_TRUE(pin_thread_to_cpu(1'000'003));
}

// --- cross-thread free -------------------------------------------------------

TEST_F(Mem, BlocksFreeSafelyOnAnotherThread) {
  // Allocate here, free there: the self-describing header lets the other
  // thread's arena adopt the block; its exit then releases it to the OS.
  const Counters c0 = counters();
  std::byte* p = allocate(1u << 20);
  std::memset(p, 7, 1u << 20);
  std::thread([p] { deallocate(p); }).join();
  const Counters c1 = counters();
  EXPECT_EQ(c1.live_bytes, c0.live_bytes);
}

TEST_F(Mem, ArenaOutlivesItsThreadsBlocks) {
  // A thread allocates and hands the block out; after the thread (and its
  // thread-local arena) is gone the block must still be usable and freeable.
  std::byte* p = nullptr;
  std::thread([&p] { p = allocate(1u << 20); }).join();
  ASSERT_NE(p, nullptr);
  std::memset(p, 9, 1u << 20);
  EXPECT_GE(usable_bytes(p), std::size_t{1} << 20);
  deallocate(p);
}

// --- fault injection ---------------------------------------------------------

TEST_F(Mem, AllocFaultPointThrowsInjected) {
  fault::arm("mem.alloc", 1);
  EXPECT_THROW(allocate(4096), fault::Injected);
  std::byte* p = allocate(4096);  // next hit is past the window
  deallocate(p);
  EXPECT_GE(fault::hits("mem.alloc"), 2u);
}

TEST_F(Mem, AllocFaultHandlerCanThrowBadAlloc) {
  fault::arm_handler("mem.alloc", [] { throw std::bad_alloc(); }, 2, 1);
  std::byte* p = allocate(4096);  // hit 1: clean
  EXPECT_THROW(allocate(4096), std::bad_alloc);
  deallocate(p);
}

// --- typed helpers -----------------------------------------------------------

TEST_F(Mem, ArenaArrayDefaultConstructsAndRecycles) {
  ArenaArray<std::uint64_t> a(1000);
  ASSERT_EQ(a.size(), 1000u);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], 0u);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = i;
  const std::uint64_t* old = a.data();
  a.reset(900);  // same 8 KiB class: the released block comes right back
  EXPECT_EQ(a.data(), old);
  EXPECT_EQ(a[0], 0u);  // reset re-default-constructs
  ArenaArray<std::uint64_t> b(std::move(a));
  EXPECT_EQ(b.size(), 900u);
  EXPECT_TRUE(a.empty());
}

TEST_F(Mem, ArenaArrayHoldsChainedTileStates) {
  using Tile = scanprim::detail::ChainedTileState<std::uint64_t>;
  ArenaArray<Tile> tiles(64);
  for (std::size_t i = 0; i < tiles.size(); ++i) {
    EXPECT_EQ(tiles[i].status.load(), scanprim::detail::TileStatus::kInvalid);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&tiles[i]) % 64, 0u)
        << "descriptor " << i << " not cacheline-aligned";
  }
}

TEST_F(Mem, ArenaVectorBehavesLikeVector) {
  Vector<std::uint64_t> v;
  for (std::uint64_t i = 0; i < 10'000; ++i) v.push_back(i);
  for (std::uint64_t i = 0; i < 10'000; ++i) ASSERT_EQ(v[i], i);
  Vector<std::uint64_t> w = v;
  w.resize(20'000);
  EXPECT_EQ(w[9'999], 9'999u);
  EXPECT_EQ(w[19'999], 0u);
}

// --- the serving contract under allocation failure ---------------------------

// A std::bad_alloc thrown from the batcher thread's first arena allocation —
// snapshot storage, staging growth, or the chained scratch — must be
// absorbed by the batch execution boundary: the affected jobs resolve
// Status::kError (message included), every future resolves, and the service
// survives to run the NEXT batch cleanly. This is satellite #3's scenario:
// allocation failure is recoverable, never fatal.
TEST_F(Mem, BatchAllocationFailureResolvesErrorNotCrash) {
  serve::Service::Options o;
  o.window_us = 50'000;  // coalesce all submissions into one batch
  serve::Service svc(o);

  // Arm AFTER construction so the service's own setup allocations are clean,
  // with a wide window: every arena allocation the first batch attempts on
  // the batcher thread fails, whichever call site gets there first.
  fault::arm_handler("mem.alloc", [] { throw std::bad_alloc(); }, 1,
                     1'000'000);

  std::vector<std::future<serve::Result>> futs;
  for (int i = 0; i < 8; ++i) {
    serve::ScanJob j;
    j.data.assign(4096, 1);
    j.op = serve::Op::kPlus;
    j.inclusive = true;
    futs.push_back(svc.submit(std::move(j)));
  }
  for (auto& f : futs) {
    serve::Result r = f.get();  // resolves — the batcher survived
    EXPECT_EQ(r.status, serve::Status::kError);
    EXPECT_FALSE(r.error.empty());
  }

  // Disarm; the next batch must succeed end-to-end on the same service.
  fault::disarm_all();
  serve::ScanJob j;
  j.data.assign(1024, 1);
  j.op = serve::Op::kPlus;
    j.inclusive = true;
  serve::Result r = svc.submit(std::move(j)).get();
  ASSERT_EQ(r.status, serve::Status::kOk);
  ASSERT_EQ(r.values.size(), 1024u);
  EXPECT_EQ(r.values.back(), 1024);
  svc.shutdown();
}

// A transient allocation failure — exactly ONE arena allocation on the
// batcher thread fails, everything after it succeeds. Depending on which
// call site takes the hit (snapshot growth outside the dispatch boundary,
// or scratch/staging growth inside it) the batch either fails wholesale at
// the loop boundary or recovers by bisection — but in every interleaving
// each future resolves to a coherent terminal state, any kOk result is
// bit-correct, and the same service then serves the next batch cleanly.
TEST_F(Mem, TransientAllocationFailureLeavesTheServiceServing) {
  serve::Service::Options o;
  o.window_us = 50'000;
  serve::Service svc(o);
  fault::arm_handler("mem.alloc", [] { throw std::bad_alloc(); }, 1, 1);

  std::vector<std::future<serve::Result>> futs;
  for (int i = 0; i < 8; ++i) {
    serve::ScanJob j;
    j.data.assign(2048, 1);
    j.op = serve::Op::kPlus;
    j.inclusive = true;
    futs.push_back(svc.submit(std::move(j)));
  }
  int ok = 0, errors = 0;
  for (auto& f : futs) {
    serve::Result r = f.get();
    if (r.status == serve::Status::kOk) {
      EXPECT_EQ(r.values.back(), 2048);
      ++ok;
    } else {
      ASSERT_EQ(r.status, serve::Status::kError);
      EXPECT_FALSE(r.error.empty());
      ++errors;
    }
  }
  EXPECT_EQ(ok + errors, 8);
  EXPECT_GE(fault::hits("mem.alloc"), 1u);  // the failure really happened

  fault::disarm_all();
  serve::ScanJob j;
  j.data.assign(512, 2);
  j.op = serve::Op::kPlus;
    j.inclusive = true;
  serve::Result r = svc.submit(std::move(j)).get();
  ASSERT_EQ(r.status, serve::Status::kOk);
  EXPECT_EQ(r.values.back(), 1024);
  svc.shutdown();
}

}  // namespace
}  // namespace scanprim::mem
