// Closest pair in the plane (Table 1's row) against the serial divide and
// conquer and brute force.
#include "src/algo/closest_pair.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

std::vector<Point2D> random_points(std::size_t n, std::uint64_t seed,
                                   double spread = 1e6) {
  auto g = testutil::rng(seed);
  std::vector<Point2D> pts(n);
  for (auto& p : pts) {
    p = {static_cast<double>(g() % 1000000) * spread / 1e6,
         static_cast<double>(g() % 1000000) * spread / 1e6};
  }
  return pts;
}

double brute_force(std::span<const Point2D> pts) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const double dx = pts[i].x - pts[j].x, dy = pts[i].y - pts[j].y;
      best = std::min(best, std::sqrt(dx * dx + dy * dy));
    }
  }
  return best;
}

class CpSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CpSweep, MatchesSerialDivideAndConquer) {
  machine::Machine m;
  const auto pts = random_points(GetParam(), 1001 + GetParam());
  const ClosestPairResult got =
      closest_pair(m, std::span<const Point2D>(pts));
  const ClosestPairResult ref =
      closest_pair_serial(std::span<const Point2D>(pts));
  EXPECT_DOUBLE_EQ(got.distance, ref.distance);
  // The named pair must actually realise the distance.
  const double dx = pts[got.a].x - pts[got.b].x;
  const double dy = pts[got.a].y - pts[got.b].y;
  EXPECT_NEAR(std::sqrt(dx * dx + dy * dy), got.distance, 1e-9);
  EXPECT_NE(got.a, got.b);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CpSweep,
                         ::testing::Values(2, 3, 4, 5, 8, 9, 100, 1000, 4097,
                                           20000));

TEST(ClosestPair, ManySmallBruteForceTrials) {
  machine::Machine m;
  auto g = testutil::rng(1002);
  for (int trial = 0; trial < 40; ++trial) {
    const auto pts = random_points(2 + g() % 120, g(), 100.0);  // dense: ties
    const ClosestPairResult got =
        closest_pair(m, std::span<const Point2D>(pts));
    ASSERT_DOUBLE_EQ(got.distance, brute_force(pts)) << "trial " << trial;
  }
}

TEST(ClosestPair, DuplicatePointsGiveZero) {
  machine::Machine m;
  auto pts = random_points(500, 1003);
  pts.push_back(pts[137]);
  const ClosestPairResult got = closest_pair(m, std::span<const Point2D>(pts));
  EXPECT_EQ(got.distance, 0.0);
  EXPECT_EQ(pts[got.a], pts[got.b]);
}

TEST(ClosestPair, KnownConfiguration) {
  machine::Machine m;
  // A far-flung square plus one tight pair.
  const std::vector<Point2D> pts{{0, 0},     {100, 0}, {0, 100},
                                 {100, 100}, {50, 50}, {50.3, 50.4}};
  const ClosestPairResult got = closest_pair(m, std::span<const Point2D>(pts));
  EXPECT_NEAR(got.distance, 0.5, 1e-12);
  EXPECT_EQ(got.a, 4u);
  EXPECT_EQ(got.b, 5u);
}

TEST(ClosestPair, PairStraddlingTheRootSplit) {
  machine::Machine m;
  // Two columns hugging x = 50 from both sides; everything else is spread.
  std::vector<Point2D> pts;
  for (int i = 0; i < 32; ++i) {
    pts.push_back({static_cast<double>(i), static_cast<double>(i * 7 % 97)});
    pts.push_back({100.0 - i, static_cast<double>((i * 13 + 5) % 97)});
  }
  pts.push_back({49.99, 40.0});
  pts.push_back({50.01, 40.001});
  const ClosestPairResult got = closest_pair(m, std::span<const Point2D>(pts));
  EXPECT_DOUBLE_EQ(got.distance, brute_force(pts));
  EXPECT_EQ(got.a, pts.size() - 2);
  EXPECT_EQ(got.b, pts.size() - 1);
}

TEST(ClosestPair, RejectsDegenerateInput) {
  machine::Machine m;
  const std::vector<Point2D> one{{1, 2}};
  EXPECT_THROW(closest_pair(m, std::span<const Point2D>(one)),
               std::invalid_argument);
}

TEST(ClosestPair, StepsScaleWithLgNotN) {
  const auto steps_for = [](std::size_t n) {
    machine::Machine m(machine::Model::Scan);
    const auto pts = random_points(n, 1004);
    closest_pair(m, std::span<const Point2D>(pts));
    return static_cast<double>(m.stats().steps);
  };
  // Quadrupling n adds ~2 levels; steps must grow additively, not 4x.
  const double s1 = steps_for(1 << 10);
  const double s2 = steps_for(1 << 14);
  EXPECT_LT(s2 / s1, 1.8) << s1 << " -> " << s2;
}

}  // namespace
}  // namespace scanprim::algo
