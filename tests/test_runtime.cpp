#include "src/core/runtime.hpp"

#include <string>

#include <gtest/gtest.h>

namespace scanprim {
namespace {

TEST(SanitizeWorkerSpec, NullAndEmptyFallBack) {
  EXPECT_EQ(sanitize_worker_spec(nullptr, 4), 4u);
  EXPECT_EQ(sanitize_worker_spec("", 4), 4u);
  EXPECT_EQ(sanitize_worker_spec("   ", 4), 4u);
}

TEST(SanitizeWorkerSpec, NonNumericFallsBack) {
  EXPECT_EQ(sanitize_worker_spec("abc", 4), 4u);
  EXPECT_EQ(sanitize_worker_spec("four", 4), 4u);
  EXPECT_EQ(sanitize_worker_spec("0x10", 4), 4u);  // trailing garbage
  EXPECT_EQ(sanitize_worker_spec("8 threads", 4), 4u);
  EXPECT_EQ(sanitize_worker_spec("1e9", 4), 4u);
  EXPECT_EQ(sanitize_worker_spec("3.5", 4), 4u);
}

TEST(SanitizeWorkerSpec, ZeroAndNegativeFallBack) {
  EXPECT_EQ(sanitize_worker_spec("0", 4), 4u);
  EXPECT_EQ(sanitize_worker_spec("-1", 4), 4u);
  EXPECT_EQ(sanitize_worker_spec("-300", 4), 4u);
}

TEST(SanitizeWorkerSpec, OverflowFallsBack) {
  EXPECT_EQ(sanitize_worker_spec("99999999999999999999999999", 4), 4u);
  EXPECT_EQ(sanitize_worker_spec("-99999999999999999999999999", 4), 4u);
}

TEST(SanitizeWorkerSpec, ValidValuesParse) {
  EXPECT_EQ(sanitize_worker_spec("1", 4), 1u);
  EXPECT_EQ(sanitize_worker_spec("16", 4), 16u);
  EXPECT_EQ(sanitize_worker_spec("  8  ", 4), 8u);  // surrounding whitespace
  EXPECT_EQ(sanitize_worker_spec("512", 4), 512u);
}

TEST(SanitizeWorkerSpec, AbsurdValuesClampToMax) {
  EXPECT_EQ(sanitize_worker_spec("513", 4), kMaxWorkers);
  EXPECT_EQ(sanitize_worker_spec("1000000", 4), kMaxWorkers);
  EXPECT_EQ(sanitize_worker_spec(std::to_string(kMaxWorkers).c_str(), 4),
            kMaxWorkers);
}

TEST(SanitizeWorkerSpec, DegenerateFallbackIsRepaired) {
  EXPECT_EQ(sanitize_worker_spec("junk", 0), 1u);
  EXPECT_EQ(sanitize_worker_spec(nullptr, 100000), kMaxWorkers);
}

TEST(SanitizeEngineSpec, TwoPhaseSpellings) {
  EXPECT_EQ(sanitize_engine_spec("twophase"), ScanEngine::kTwoPhase);
  EXPECT_EQ(sanitize_engine_spec("TwoPhase"), ScanEngine::kTwoPhase);
  EXPECT_EQ(sanitize_engine_spec("  two-phase "), ScanEngine::kTwoPhase);
  EXPECT_EQ(sanitize_engine_spec("2phase"), ScanEngine::kTwoPhase);
}

TEST(SanitizeEngineSpec, EverythingElseIsChained) {
  EXPECT_EQ(sanitize_engine_spec(nullptr), ScanEngine::kChained);
  EXPECT_EQ(sanitize_engine_spec(""), ScanEngine::kChained);
  EXPECT_EQ(sanitize_engine_spec("chained"), ScanEngine::kChained);
  EXPECT_EQ(sanitize_engine_spec("CHAINED"), ScanEngine::kChained);
  EXPECT_EQ(sanitize_engine_spec("junk"), ScanEngine::kChained);
}

TEST(SanitizeBoundsSpec, OptOutSpellings) {
  EXPECT_FALSE(sanitize_bounds_spec("0"));
  EXPECT_FALSE(sanitize_bounds_spec("off"));
  EXPECT_FALSE(sanitize_bounds_spec(" FALSE "));
}

TEST(SanitizeBoundsSpec, DefaultsOn) {
  EXPECT_TRUE(sanitize_bounds_spec(nullptr));
  EXPECT_TRUE(sanitize_bounds_spec(""));
  EXPECT_TRUE(sanitize_bounds_spec("1"));
  EXPECT_TRUE(sanitize_bounds_spec("on"));
  EXPECT_TRUE(sanitize_bounds_spec("junk"));
}

TEST(Runtime, BoundsCheckingRoundTrips) {
  const bool prev = bounds_checking();
  set_bounds_checking(false);
  EXPECT_FALSE(bounds_checking());
  set_bounds_checking(true);
  EXPECT_TRUE(bounds_checking());
  set_bounds_checking(prev);
}

TEST(Runtime, WorkersIsPositive) { EXPECT_GE(runtime_workers(), 1u); }

TEST(Runtime, VersionIsNonEmpty) {
  ASSERT_NE(version(), nullptr);
  EXPECT_FALSE(std::string(version()).empty());
}

}  // namespace
}  // namespace scanprim
