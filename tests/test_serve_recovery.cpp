// Fault isolation for the batching scan service (docs/FAULTS.md): injected
// faults in the mega-dispatch must be recovered by bisection so only the
// genuinely faulty job resolves kError while its batch-mates succeed with
// zero diffs against references; no fault may kill the batcher thread, hang
// shutdown()/the destructor, or poison the reused chained scratch; and the
// submit_with_retry client helper must turn transient kRejected backpressure
// into eventual success.
//
// The first test runs BEFORE any disarm_all() so a SCANPRIM_FAULT armed by
// the CI fault matrix is still live for it; every later test disarms the
// environment and arms its own points programmatically.
#include "src/serve/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/core/segmented.hpp"
#include "src/fault/fault.hpp"
#include "src/machine/machine.hpp"
#include "src/plan/plan.hpp"
#include "src/serve/retry.hpp"
#include "src/thread/thread_pool.hpp"
#include "src/vm/assembler.hpp"
#include "src/vm/interpreter.hpp"

namespace scanprim::serve {
namespace {

using namespace std::chrono_literals;

std::vector<Value> ref_scan(const ScanJob& j) {
  const std::size_t n = j.data.size();
  std::vector<Value> out(n);
  const bool seg = !j.flags.empty();
  Value acc = batch::op_identity(j.op);
  if (!j.backward) {
    for (std::size_t i = 0; i < n; ++i) {
      if (seg && j.flags[i]) acc = batch::op_identity(j.op);
      if (j.inclusive) {
        acc = batch::op_apply(j.op, acc, j.data[i]);
        out[i] = acc;
      } else {
        out[i] = acc;
        acc = batch::op_apply(j.op, acc, j.data[i]);
      }
    }
  } else {
    for (std::size_t i = n; i-- > 0;) {
      if (j.inclusive) {
        acc = batch::op_apply(j.op, acc, j.data[i]);
        out[i] = acc;
      } else {
        out[i] = acc;
        acc = batch::op_apply(j.op, acc, j.data[i]);
      }
      if (seg && j.flags[i]) acc = batch::op_identity(j.op);
    }
  }
  return out;
}

ScanJob random_scan_job(std::mt19937_64& g, std::size_t n) {
  ScanJob j;
  j.data.resize(n);
  for (auto& v : j.data) v = static_cast<Value>(g() % 100);
  j.op = static_cast<Op>(g() % batch::kOpCount);
  j.inclusive = (g() & 1) != 0;
  j.backward = (g() & 1) != 0;
  if ((g() & 1) != 0 && n > 0) {
    j.flags.assign(n, 0);
    for (auto& f : j.flags) f = g() % 5 == 0 ? 1 : 0;
  }
  return j;
}

// Coalesce everything submitted below into one batch: the window is long
// enough that single-threaded submission always beats the flush.
Service::Options one_batch_options() {
  Service::Options o;
  o.window_us = 100'000;
  return o;
}

// --- the CI fault matrix's entry point ---------------------------------------

// Must pass under ANY ambient SCANPRIM_FAULT arming (and with none): every
// future resolves to a coherent terminal state, every kOk result is
// bit-correct, the accounting balances, and shutdown drains cleanly. This is
// the test the CI matrix runs with serve.dispatch / batch.piece /
// chained.summarize / thread.worker faults armed from the environment.
TEST(ServeRecovery, AmbientEnvFaultsNeverViolateTheContract) {
  std::vector<ScanJob> jobs;
  std::vector<std::future<Result>> futs;
  {
    Service::Options o;
    o.window_us = 500;
    Service svc(o);
    std::mt19937_64 g(2026);
    for (int i = 0; i < 200; ++i) {
      jobs.push_back(random_scan_job(g, 1 + g() % 4000));
      futs.push_back(svc.submit(jobs.back()));
    }
    std::uint64_t ok = 0, errors = 0;
    for (std::size_t i = 0; i < futs.size(); ++i) {
      Result r = futs[i].get();  // resolves — no strands, no hangs
      if (r.status == Status::kOk) {
        ++ok;
        ASSERT_EQ(r.values, ref_scan(jobs[i])) << "job " << i;
      } else {
        ASSERT_EQ(r.status, Status::kError);
        EXPECT_FALSE(r.error.empty());
        ++errors;
      }
    }
    const Metrics m = svc.metrics();
    EXPECT_EQ(m.accepted, 200u);
    EXPECT_EQ(m.completed, ok);
    EXPECT_EQ(m.errors, errors);
    EXPECT_EQ(m.accepted, m.completed + m.timeouts + m.cancelled + m.errors);
    svc.shutdown();  // must not hang whatever faults fired
  }
}

// --- bisection recovery ------------------------------------------------------

// The acceptance scenario: one fault injected into a mega-dispatch of N jobs
// resolves exactly the faulty job kError — with the exception message — and
// every innocent batch-mate kOk with zero diffs against its reference.
//
// Arming: "serve.dispatch" with a huge count makes every group dispatch
// (the full batch and every bisection half) throw, forcing recovery all the
// way down to the per-job terminal serial re-runs, which deliberately skip
// that point. Those re-runs happen in job order and are the only place
// "batch.serial_job" is reached (the group dispatches throw before their
// seg_scan_jobs calls), so arming its 4th hit fails exactly the 4th job.
TEST(ServeRecovery, InjectedFaultIsolatesExactlyTheFaultyJob) {
  fault::disarm_all();
  constexpr std::size_t kJobs = 8;
  constexpr std::size_t kFaulty = 3;  // 0-based; batch.serial_job hit 4
  Service svc(one_batch_options());
  fault::arm("serve.dispatch", 1, 1'000'000'000);
  fault::arm("batch.serial_job", kFaulty + 1, 1);

  std::mt19937_64 g(41);
  std::vector<ScanJob> jobs;
  std::vector<std::future<Result>> futs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    jobs.push_back(random_scan_job(g, 64 + g() % 2000));
    futs.push_back(svc.submit(jobs.back()));
  }
  for (std::size_t i = 0; i < kJobs; ++i) {
    Result r = futs[i].get();
    if (i == kFaulty) {
      EXPECT_EQ(r.status, Status::kError) << "job " << i;
      EXPECT_NE(r.error.find("batch.serial_job"), std::string::npos)
          << r.error;
    } else {
      ASSERT_EQ(r.status, Status::kOk) << "job " << i;
      ASSERT_EQ(r.values, ref_scan(jobs[i])) << "job " << i;
    }
  }
  const Metrics m = svc.metrics();
  EXPECT_EQ(m.errors, 1u);
  EXPECT_EQ(m.completed, kJobs - 1);
  EXPECT_GE(m.recovery_batches, 1u);
  // log2(8) levels of halving plus 8 terminal re-runs.
  EXPECT_GE(m.bisection_reruns, kJobs);
  fault::disarm_all();
  svc.shutdown();
}

// A transient dispatch fault (fires once, then clears) must cost nobody:
// recovery re-runs the halves and every job still resolves kOk.
TEST(ServeRecovery, TransientDispatchFaultEveryJobStillSucceeds) {
  fault::disarm_all();
  Service svc(one_batch_options());
  fault::arm("serve.dispatch", 1, 1);

  std::mt19937_64 g(43);
  std::vector<ScanJob> jobs;
  std::vector<std::future<Result>> futs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(random_scan_job(g, 1 + g() % 3000));
    futs.push_back(svc.submit(jobs.back()));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    Result r = futs[i].get();
    ASSERT_EQ(r.status, Status::kOk) << "job " << i;
    ASSERT_EQ(r.values, ref_scan(jobs[i])) << "job " << i;
  }
  const Metrics m = svc.metrics();
  EXPECT_EQ(m.errors, 0u);
  EXPECT_EQ(m.recovery_batches, 1u);
  EXPECT_GE(m.bisection_reruns, 2u);  // at least the two halves
  fault::disarm_all();
}

// A fault that fires MID-scan, after the dispatch has already partially
// overwritten the in-place scan buffers, is the reason the snapshot exists:
// recovery must restore the pristine inputs before re-running, or the
// re-runs would scan already-scanned data. Forced-parallel mode keeps the
// batch on the chained path where "batch.piece" fires between piece kernels.
TEST(ServeRecovery, MidScanFaultRecoversFromTheSnapshot) {
  if (thread::num_workers() == 1) {
    GTEST_SKIP() << "forced-parallel dispatch needs a multi-worker pool";
  }
  fault::disarm_all();
  Service::Options o = one_batch_options();
  o.parallel = batch::JobsMode::kForceParallel;
  Service svc(o);
  fault::arm("batch.piece", 3, 1);

  std::mt19937_64 g(47);
  std::vector<ScanJob> jobs;
  std::vector<std::future<Result>> futs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(random_scan_job(g, 20'000));  // many tiles -> many pieces
    futs.push_back(svc.submit(jobs.back()));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    Result r = futs[i].get();
    ASSERT_EQ(r.status, Status::kOk) << "job " << i;
    ASSERT_EQ(r.values, ref_scan(jobs[i])) << "job " << i;
  }
  EXPECT_EQ(svc.metrics().errors, 0u);
  EXPECT_GE(svc.metrics().recovery_batches, 1u);
  fault::disarm_all();

  // The reused per-direction chained scratches went through an aborted run;
  // later batches on the same service must still be bit-correct.
  std::vector<ScanJob> again;
  std::vector<std::future<Result>> again_futs;
  for (int i = 0; i < 6; ++i) {
    again.push_back(random_scan_job(g, 20'000));
    again_futs.push_back(svc.submit(again.back()));
  }
  for (std::size_t i = 0; i < again_futs.size(); ++i) {
    Result r = again_futs[i].get();
    ASSERT_EQ(r.status, Status::kOk);
    ASSERT_EQ(r.values, ref_scan(again[i])) << "post-poison job " << i;
  }
}

// Pack and enumerate jobs ride the recovery path too: their staged 0/1 keep
// values are re-derived from the untouched flags on every re-attempt.
TEST(ServeRecovery, PackAndEnumerateSurviveRecovery) {
  fault::disarm_all();
  Service svc(one_batch_options());
  fault::arm("serve.dispatch", 1, 1'000'000'000);

  std::mt19937_64 g(53);
  PackJob p;
  p.data.resize(3000);
  p.keep.resize(3000);
  for (auto& v : p.data) v = static_cast<Value>(g() % 1000);
  for (auto& k : p.keep) k = g() % 3 == 0 ? 1 : 0;
  std::vector<Value> pack_expect;
  for (std::size_t i = 0; i < p.data.size(); ++i) {
    if (p.keep[i]) pack_expect.push_back(p.data[i]);
  }
  EnumerateJob e;
  e.keep.resize(2500);
  std::size_t kept = 0;
  for (auto& k : e.keep) {
    k = g() % 2;
    kept += k;
  }
  ScanJob s = random_scan_job(g, 1500);

  auto fp = svc.submit(std::move(p));
  auto fe = svc.submit(std::move(e));
  auto fs = svc.submit(s);
  const Result rp = fp.get(), re = fe.get(), rs = fs.get();
  ASSERT_EQ(rp.status, Status::kOk);
  EXPECT_EQ(rp.values, pack_expect);
  ASSERT_EQ(re.status, Status::kOk);
  EXPECT_EQ(re.kept, kept);
  ASSERT_EQ(rs.status, Status::kOk);
  EXPECT_EQ(rs.values, ref_scan(s));
  EXPECT_GE(svc.metrics().recovery_batches, 1u);
  fault::disarm_all();
}

// With recovery disabled there is no snapshot to restore from, so a failed
// mega-dispatch fails the whole batch — but the service itself survives and
// keeps serving once the fault clears.
TEST(ServeRecovery, RecoveryOffFailsTheWholeBatchButNotTheService) {
  fault::disarm_all();
  Service::Options o = one_batch_options();
  o.recovery = false;
  Service svc(o);
  fault::arm("serve.dispatch", 1, 1);

  std::mt19937_64 g(59);
  std::vector<std::future<Result>> futs;
  for (int i = 0; i < 4; ++i) {
    futs.push_back(svc.submit(random_scan_job(g, 256)));
  }
  for (auto& f : futs) {
    Result r = f.get();
    EXPECT_EQ(r.status, Status::kError);
    EXPECT_NE(r.error.find("serve.dispatch"), std::string::npos) << r.error;
  }
  const Metrics m = svc.metrics();
  EXPECT_EQ(m.errors, 4u);
  EXPECT_EQ(m.recovery_batches, 0u);
  EXPECT_EQ(m.bisection_reruns, 0u);

  // The fault was one-shot: the next batch is healthy.
  ScanJob j = random_scan_job(g, 512);
  Result r = svc.submit(j).get();
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.values, ref_scan(j));
  fault::disarm_all();
}

// --- the batcher's exception boundary ----------------------------------------

// A throw from OUTSIDE the dispatch machinery — here the very top of
// execute_batch, before any job has been staged — escapes to the batcher
// loop's catch-all. The whole batch resolves kError (nobody strands) and
// the loop keeps serving.
TEST(ServeRecovery, BatchBoundaryFaultResolvesEveryoneAndTheLoopSurvives) {
  fault::disarm_all();
  Service svc(one_batch_options());
  fault::arm("serve.batch", 1, 1);

  std::mt19937_64 g(61);
  std::vector<std::future<Result>> futs;
  for (int i = 0; i < 5; ++i) {
    futs.push_back(svc.submit(random_scan_job(g, 128)));
  }
  for (auto& f : futs) {
    Result r = f.get();
    EXPECT_EQ(r.status, Status::kError);
    EXPECT_NE(r.error.find("serve.batch"), std::string::npos) << r.error;
  }
  EXPECT_EQ(svc.metrics().errors, 5u);

  ScanJob j = random_scan_job(g, 777);
  Result r = svc.submit(j).get();  // the batcher thread is still alive
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.values, ref_scan(j));
  fault::disarm_all();
}

// Injected faults must never hang shutdown() or the destructor: a service
// torn down while every dispatch is throwing still drains every accepted
// future to a terminal state.
TEST(ServeRecovery, FaultsNeverHangShutdownOrDestructor) {
  fault::disarm_all();
  fault::arm("serve.dispatch", 1, 1'000'000'000);
  std::mt19937_64 g(67);
  std::vector<std::future<Result>> futs;
  {
    Service::Options o;
    o.window_us = 200;
    Service svc(o);
    for (int i = 0; i < 64; ++i) {
      futs.push_back(svc.submit(random_scan_job(g, 1 + g() % 1000)));
    }
  }  // destructor: shutdown + drain under permanent dispatch faults
  for (auto& f : futs) {
    const Result r = f.get();
    EXPECT_TRUE(r.status == Status::kOk || r.status == Status::kError)
        << status_name(r.status);
  }
  fault::disarm_all();
}

// --- fulfilment-time deadline / cancellation (satellite) ---------------------

// A cancel token set DURING batch execution (via a fault handler, so the
// moment is exact: after the queued-stage check, before fulfilment) must
// resolve kCancelled, not a stale kOk.
TEST(ServeRecovery, CancelDuringExecutionHonouredAtFulfilment) {
  fault::disarm_all();
  Service::Options o;
  o.window_us = 1;
  Service svc(o);
  auto token = make_cancel_token();
  fault::arm_handler("serve.batch",
                     [token] { token->store(true); }, 1, 1'000'000'000);
  SubmitOptions so;
  so.cancel = token;
  std::mt19937_64 g(71);
  Result r = svc.submit(random_scan_job(g, 128), so).get();
  EXPECT_EQ(r.status, Status::kCancelled);
  EXPECT_EQ(svc.metrics().cancelled, 1u);
  fault::disarm_all();
}

// A deadline that expires while the batch executes resolves kTimeout at
// fulfilment. The handler stalls execution well past the deadline.
TEST(ServeRecovery, DeadlineDuringExecutionHonouredAtFulfilment) {
  fault::disarm_all();
  Service::Options o;
  o.window_us = 1;
  Service svc(o);
  fault::arm_handler("serve.batch",
                     [] { std::this_thread::sleep_for(150ms); }, 1,
                     1'000'000'000);
  SubmitOptions so;
  so.deadline = 40ms;
  std::mt19937_64 g(73);
  Result r = svc.submit(random_scan_job(g, 128), so).get();
  EXPECT_EQ(r.status, Status::kTimeout);
  EXPECT_EQ(svc.metrics().timeouts, 1u);
  fault::disarm_all();
}

// --- submit_with_retry -------------------------------------------------------

TEST(ServeRecovery, SubmitWithRetryOutlastsTransientBackpressure) {
  fault::disarm_all();
  Service::Options o;
  o.queue_capacity = 1;
  o.window_us = 20'000;  // the parked job frees its slot after ~20 ms
  Service svc(o);
  std::mt19937_64 g(79);
  ScanJob parked = random_scan_job(g, 64);
  auto parked_fut = svc.submit(parked);

  // Direct submission is refused while the slot is taken...
  const Result probe = svc.submit(random_scan_job(g, 64)).get();
  ASSERT_EQ(probe.status, Status::kRejected);

  // ...but the retry helper rides out the backpressure.
  ScanJob j = random_scan_job(g, 64);
  RetryOptions ro;
  ro.max_attempts = 200;
  ro.initial_backoff = 1ms;
  ro.multiplier = 1.5;
  ro.max_backoff = 10ms;
  ro.seed = 42;
  const Result r = submit_with_retry(svc, j, {}, ro);
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.values, ref_scan(j));
  EXPECT_EQ(parked_fut.get().status, Status::kOk);
  EXPECT_GE(svc.metrics().rejected, 1u);
}

TEST(ServeRecovery, SubmitWithRetryGivesUpAfterMaxAttempts) {
  fault::disarm_all();
  Service::Options o;
  o.queue_capacity = 1;
  o.window_us = 10'000'000;  // the parked job never yields its slot
  Service svc(o);
  std::mt19937_64 g(83);
  auto parked_fut = svc.submit(random_scan_job(g, 64));

  RetryOptions ro;
  ro.max_attempts = 3;
  ro.initial_backoff = 500us;
  ro.seed = 7;
  const Result r = submit_with_retry(svc, random_scan_job(g, 64), {}, ro);
  EXPECT_EQ(r.status, Status::kRejected);
  EXPECT_GE(svc.metrics().rejected, 3u);
  svc.shutdown();  // drains the parked job
  EXPECT_EQ(parked_fut.get().status, Status::kOk);
}

// The retry helper is deadline-aware (satellite of the sharding PR): a
// caller deadline bounds the WHOLE retry schedule, not each attempt. With a
// 50 ms deadline and a backoff ladder that would otherwise burn ~300 ms
// across 5 attempts, the helper must give up as soon as the next wake-up
// would land past the deadline.
TEST(ServeRecovery, SubmitWithRetryHonoursTheOverallDeadline) {
  fault::disarm_all();
  Service::Options o;
  o.queue_capacity = 1;
  o.window_us = 10'000'000;  // the parked job never yields its slot
  Service svc(o);
  std::mt19937_64 g(89);
  auto parked_fut = svc.submit(random_scan_job(g, 64));

  RetryOptions ro;
  ro.max_attempts = 5;
  ro.initial_backoff = 30ms;
  ro.multiplier = 2.0;
  ro.jitter = 0.0;
  ro.seed = 3;
  SubmitOptions so;
  so.deadline = 50ms;
  const auto t0 = std::chrono::steady_clock::now();
  const Result r = submit_with_retry(svc, random_scan_job(g, 64), so, ro);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(r.status, Status::kRejected);
  // 30 + 60 + 120 + 240 ms of sleeps without the deadline; with it the
  // helper stops before any wake-up past +50 ms.
  EXPECT_LT(elapsed, 150ms);
  svc.shutdown();
  EXPECT_EQ(parked_fut.get().status, Status::kOk);
}

// --- named plans under injected faults (satellite) ---------------------------

// Plan jobs execute per job on the batcher thread through the service's
// executor, so they cross a fault surface the scan mega-batch does not: the
// fused-group runner ("exec.group"). The plan engine runs each region
// transactionally (docs/PLAN.md) — a throw from the compiled path rolls the
// region back and replays it interpreted — so an exec.group fault must
// *degrade* a plan job to interpretation, never fail it: every request
// resolves kOk, bit-identical to pure interpretation, while the armed
// point's hit counter proves the compiled path really took the fault.

vm::Program plan_program() {
  return vm::assemble("load a\ndup\n+scan\nadd\nprint\nhalt");
}

std::vector<Value> interpret_plan(const std::vector<Value>& a) {
  machine::Machine m;
  vm::Interpreter interp(m);
  interp.set_register("a", a);
  const auto saved = vm::Interpreter::run_hook();
  vm::Interpreter::set_run_hook(nullptr);  // pure interpretation
  interp.run(plan_program());
  vm::Interpreter::set_run_hook(saved);
  return interp.output().back();
}

TEST(ServeRecovery, PlanJobsSurviveExecGroupFaults) {
  fault::disarm_all();
  Service svc;
  svc.register_plan("scan_add", plan_program());
  // Every 3rd fused-group run throws, three times.
  fault::arm("exec.group", 3, 3);

  std::mt19937_64 g(97);
  std::vector<std::vector<Value>> inputs;
  // Submit serially — one job per batching window — so each job is its own
  // compiled dispatch. (Concurrent same-plan jobs would coalesce into ONE
  // merged execution and spend far fewer exec.group runs; the merged path's
  // fault recovery is covered by the PlanServe coalescing tests.)
  for (int i = 0; i < 12; ++i) {
    std::vector<Value> a(64 + i * 17);
    for (auto& v : a) v = static_cast<Value>(g() % 2000) - 1000;
    inputs.push_back(a);
    PlanJob job;
    job.plan = "scan_add";
    job.registers["a"] = std::move(a);
    Result r = svc.submit(std::move(job)).get();
    ASSERT_EQ(r.status, Status::kOk) << "plan job " << i << ": " << r.error;
    EXPECT_EQ(r.values, interpret_plan(inputs[i])) << "plan job " << i;
  }
  if (plan::enabled()) {
    // The compiled path really took (and recovered from) the armed faults.
    EXPECT_GE(fault::hits("exec.group"), 3u);
  }
  fault::disarm_all();

  // The fault budget is spent: the same plan serves cleanly again.
  PlanJob job;
  job.plan = "scan_add";
  job.registers["a"] = inputs[0];
  Result r = svc.submit(std::move(job)).get();
  ASSERT_EQ(r.status, Status::kOk) << r.error;
  EXPECT_EQ(r.values, interpret_plan(inputs[0]));
  svc.shutdown();
}

TEST(ServeRecovery, PlanJobsSurviveDispatchFaultsAlongsideScans) {
  fault::disarm_all();
  Service::Options o;
  o.window_us = 5'000;
  Service svc(o);
  svc.register_plan("scan_add", plan_program());
  // One transient dispatch fault while plan jobs and scan jobs interleave:
  // the scan batch recovers by bisection, the plan jobs are untouched by
  // the scan path, and nothing strands.
  fault::arm("serve.dispatch", 1, 1);

  std::mt19937_64 g(101);
  std::vector<ScanJob> scans;
  std::vector<std::future<Result>> scan_futs;
  std::vector<std::vector<Value>> plan_inputs;
  std::vector<std::future<Result>> plan_futs;
  for (int i = 0; i < 8; ++i) {
    scans.push_back(random_scan_job(g, 1 + g() % 1000));
    scan_futs.push_back(svc.submit(scans.back()));
    std::vector<Value> a(32 + i * 9);
    for (auto& v : a) v = static_cast<Value>(g() % 100);
    plan_inputs.push_back(a);
    PlanJob pj;
    pj.plan = "scan_add";
    pj.registers["a"] = std::move(a);
    plan_futs.push_back(svc.submit(std::move(pj)));
  }
  for (std::size_t i = 0; i < scan_futs.size(); ++i) {
    Result r = scan_futs[i].get();
    ASSERT_EQ(r.status, Status::kOk) << "scan " << i << ": " << r.error;
    EXPECT_EQ(r.values, ref_scan(scans[i]));
  }
  for (std::size_t i = 0; i < plan_futs.size(); ++i) {
    Result r = plan_futs[i].get();
    ASSERT_EQ(r.status, Status::kOk) << "plan " << i << ": " << r.error;
    EXPECT_EQ(r.values, interpret_plan(plan_inputs[i]));
  }
  fault::disarm_all();
  svc.shutdown();
}

}  // namespace
}  // namespace scanprim::serve
