// The batching scan service (src/serve): correctness of every job kind
// against references, coalescing behaviour, backpressure, deadlines,
// cancellation, and shutdown semantics.
#include "src/serve/service.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "src/core/segmented.hpp"
#include "src/exec/executor.hpp"
#include "test_util.hpp"

namespace scanprim::serve {
namespace {

using namespace std::chrono_literals;

// Obviously-correct sequential reference for a ScanJob, written directly
// against the batch:: operator semantics (not the production kernels).
std::vector<Value> ref_scan(const ScanJob& j) {
  const std::size_t n = j.data.size();
  std::vector<Value> out(n);
  const bool seg = !j.flags.empty();
  Value acc = batch::op_identity(j.op);
  if (!j.backward) {
    for (std::size_t i = 0; i < n; ++i) {
      if (seg && j.flags[i]) acc = batch::op_identity(j.op);
      if (j.inclusive) {
        acc = batch::op_apply(j.op, acc, j.data[i]);
        out[i] = acc;
      } else {
        out[i] = acc;
        acc = batch::op_apply(j.op, acc, j.data[i]);
      }
    }
  } else {
    for (std::size_t i = n; i-- > 0;) {
      if (j.inclusive) {
        acc = batch::op_apply(j.op, acc, j.data[i]);
        out[i] = acc;
      } else {
        out[i] = acc;
        acc = batch::op_apply(j.op, acc, j.data[i]);
      }
      if (seg && j.flags[i]) acc = batch::op_identity(j.op);
    }
  }
  return out;
}

ScanJob random_scan_job(std::mt19937_64& g, std::size_t n) {
  ScanJob j;
  j.data.resize(n);
  for (auto& v : j.data) v = static_cast<Value>(g() % 100);
  j.op = static_cast<Op>(g() % batch::kOpCount);
  j.inclusive = (g() & 1) != 0;
  j.backward = (g() & 1) != 0;
  if ((g() & 1) != 0 && n > 0) {
    j.flags.assign(n, 0);
    for (auto& f : j.flags) f = g() % 5 == 0 ? 1 : 0;
  }
  return j;
}

Service::Options quick_options() {
  Service::Options o;
  o.window_us = 500;  // flush fast: keeps the suite snappy
  return o;
}

// --- correctness -------------------------------------------------------------

TEST(Serve, EveryOpDirectionAndFlavourMatchesReference) {
  Service svc(quick_options());
  std::mt19937_64 g(7);
  std::vector<ScanJob> jobs;
  std::vector<std::future<Result>> futs;
  for (Op op : {Op::kPlus, Op::kMax, Op::kMin, Op::kOr, Op::kAnd}) {
    for (bool inclusive : {false, true}) {
      for (bool backward : {false, true}) {
        for (bool segmented : {false, true}) {
          ScanJob j;
          j.data.resize(257);
          for (auto& v : j.data) v = static_cast<Value>(g() % 2);
          j.op = op;
          j.inclusive = inclusive;
          j.backward = backward;
          if (segmented) {
            j.flags.assign(j.data.size(), 0);
            for (auto& f : j.flags) f = g() % 7 == 0 ? 1 : 0;
          }
          jobs.push_back(j);
          futs.push_back(svc.submit(std::move(j)));
        }
      }
    }
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    Result r = futs[i].get();
    ASSERT_EQ(r.status, Status::kOk);
    EXPECT_EQ(r.values, ref_scan(jobs[i])) << "job " << i;
  }
}

TEST(Serve, LargeMixedConcurrentBatchHasZeroDiffs) {
  // Requests big enough that the mega-vector spans many chained tiles; under
  // the _mt8 variant this drives the multi-operator lookback protocol hard.
  Service svc(quick_options());
  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 24;
  std::vector<std::thread> threads;
  std::vector<std::vector<ScanJob>> jobs(kThreads);
  std::vector<std::vector<std::future<Result>>> futs(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 g(100 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kJobsPerThread; ++i) {
        const std::size_t n = 1 + g() % 6000;
        jobs[t].push_back(random_scan_job(g, n));
        futs[t].push_back(svc.submit(jobs[t].back()));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < futs[t].size(); ++i) {
      Result r = futs[t][i].get();
      ASSERT_EQ(r.status, Status::kOk);
      ASSERT_EQ(r.values, ref_scan(jobs[t][i])) << "thread " << t << " job "
                                                << i;
    }
  }
  const Metrics m = svc.metrics();
  EXPECT_EQ(m.completed, kThreads * kJobsPerThread);
  EXPECT_EQ(m.rejected, 0u);
}

TEST(Serve, ForcedParallelAndSerialModesAgreeWithReferences) {
  // opts.parallel pins the batch execution path. On a multi-worker pool the
  // forced-parallel service runs every batch through the chained dispatch
  // even where kAuto would fall back to the sequential pass (oversubscribed
  // hosts) — both must produce identical, reference-correct results.
  for (const batch::JobsMode mode :
       {batch::JobsMode::kForceParallel, batch::JobsMode::kSerial}) {
    Service::Options o = quick_options();
    o.parallel = mode;
    Service svc(o);
    std::mt19937_64 g(77);
    std::vector<ScanJob> jobs;
    std::vector<std::future<Result>> futs;
    for (int i = 0; i < 32; ++i) {
      jobs.push_back(random_scan_job(g, 1 + g() % 5000));
      futs.push_back(svc.submit(jobs.back()));
    }
    for (std::size_t i = 0; i < futs.size(); ++i) {
      Result r = futs[i].get();
      ASSERT_EQ(r.status, Status::kOk);
      ASSERT_EQ(r.values, ref_scan(jobs[i]))
          << "job " << i << " mode " << static_cast<int>(mode);
    }
  }
}

TEST(Serve, PackMatchesReference) {
  Service svc(quick_options());
  std::mt19937_64 g(9);
  PackJob j;
  j.data.resize(5000);
  j.keep.resize(5000);
  for (auto& v : j.data) v = static_cast<Value>(g() % 1000);
  for (auto& k : j.keep) k = g() % 3 == 0 ? 1 : 0;
  std::vector<Value> expect;
  for (std::size_t i = 0; i < j.data.size(); ++i) {
    if (j.keep[i]) expect.push_back(j.data[i]);
  }
  Result r = svc.submit(std::move(j)).get();
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.kept, expect.size());
  EXPECT_EQ(r.values, expect);
}

TEST(Serve, EnumerateMatchesReference) {
  Service svc(quick_options());
  std::mt19937_64 g(11);
  EnumerateJob j;
  j.keep.resize(4200);
  for (auto& k : j.keep) k = g() % 2;
  std::vector<Value> expect(j.keep.size());
  Value c = 0;
  for (std::size_t i = 0; i < j.keep.size(); ++i) {
    expect[i] = c;
    c += j.keep[i] ? 1 : 0;
  }
  const std::size_t kept = static_cast<std::size_t>(c);
  Result r = svc.submit(std::move(j)).get();
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.values, expect);
  EXPECT_EQ(r.kept, kept);
}

TEST(Serve, EmptyJobsResolveOk) {
  Service svc(quick_options());
  Result a = svc.submit(ScanJob{}).get();
  Result b = svc.submit(PackJob{}).get();
  Result c = svc.submit(EnumerateJob{}).get();
  EXPECT_EQ(a.status, Status::kOk);
  EXPECT_TRUE(a.values.empty());
  EXPECT_EQ(b.status, Status::kOk);
  EXPECT_EQ(b.kept, 0u);
  EXPECT_EQ(c.status, Status::kOk);
  EXPECT_EQ(c.kept, 0u);
}

TEST(Serve, PipelineJobRunsThroughTheExecutor) {
  Service svc(quick_options());
  const auto in = testutil::random_vector<Value>(10000, 13);
  auto p = exec::source(std::span<const Value>(in)) |
           exec::map([](Value v) { return v + 1; }) |
           exec::inclusive_scan<Plus>();
  Result r = svc.submit(std::move(p)).get();
  ASSERT_EQ(r.status, Status::kOk);
  Value acc = 0;
  std::vector<Value> expect(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc += in[i] + 1;
    expect[i] = acc;
  }
  EXPECT_EQ(r.values, expect);
  const Metrics m = svc.metrics();
  EXPECT_GT(m.pipeline_stats.stages_recorded, 0u);
  EXPECT_GT(m.pipeline_stats.elapsed_ns, 0u);  // wall-clock satellite
}

// --- batching behaviour ------------------------------------------------------

TEST(Serve, WindowCoalescesConcurrentSubmissionsIntoFewBatches) {
  Service::Options o;
  o.window_us = 200'000;  // 200 ms: far longer than it takes to submit
  Service svc(o);
  std::mt19937_64 g(17);
  std::vector<ScanJob> jobs;
  std::vector<std::future<Result>> futs;
  for (int i = 0; i < 64; ++i) {
    jobs.push_back(random_scan_job(g, 512));
    futs.push_back(svc.submit(jobs.back()));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    Result r = futs[i].get();
    ASSERT_EQ(r.status, Status::kOk);
    ASSERT_EQ(r.values, ref_scan(jobs[i]));
    EXPECT_GT(r.batch_jobs, 1u);  // nobody rode alone
  }
  const Metrics m = svc.metrics();
  EXPECT_EQ(m.completed, 64u);
  EXPECT_LE(m.batches, 4u);  // 64 jobs in at most a handful of flushes
  EXPECT_GE(m.mean_occupancy, 16.0);
}

TEST(Serve, ByteBudgetFlushesEarlyAndSplitsBatches) {
  Service::Options o;
  o.window_us = 200'000;
  o.byte_budget = 64 * 1024;  // ~8 jobs of 1024 Values each
  Service svc(o);
  std::mt19937_64 g(19);
  std::vector<ScanJob> jobs;
  std::vector<std::future<Result>> futs;
  for (int i = 0; i < 32; ++i) {
    jobs.push_back(random_scan_job(g, 1024));
    futs.push_back(svc.submit(jobs.back()));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    Result r = futs[i].get();
    ASSERT_EQ(r.status, Status::kOk);
    ASSERT_EQ(r.values, ref_scan(jobs[i]));
  }
  const Metrics m = svc.metrics();
  EXPECT_GE(m.batches, 2u);  // the budget forced splits
  // The mean batch payload respected the budget (plus one job of slack for
  // the always-take-one rule).
  EXPECT_LE(m.mean_batch_elements * sizeof(Value),
            static_cast<double>(o.byte_budget) + 1024 * sizeof(Value));
}

// --- admission control, deadlines, cancellation ------------------------------

TEST(Serve, BackpressureRejectsBeyondQueueCapacity) {
  Service::Options o;
  o.queue_capacity = 2;
  o.window_us = 10'000'000;  // park accepted jobs so the queue stays full
  Service svc(o);
  std::mt19937_64 g(23);
  auto j0 = random_scan_job(g, 64);
  auto j1 = random_scan_job(g, 64);
  auto f0 = svc.submit(j0);
  auto f1 = svc.submit(j1);
  auto f2 = svc.submit(random_scan_job(g, 64));
  Result r2 = f2.get();  // resolved inline by the submitter
  EXPECT_EQ(r2.status, Status::kRejected);
  svc.shutdown();  // drains the two parked jobs
  Result r0 = f0.get();
  Result r1 = f1.get();
  EXPECT_EQ(r0.status, Status::kOk);
  EXPECT_EQ(r0.values, ref_scan(j0));
  EXPECT_EQ(r1.status, Status::kOk);
  EXPECT_EQ(r1.values, ref_scan(j1));
  const Metrics m = svc.metrics();
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_EQ(m.completed, 2u);
}

TEST(Serve, DeadlineExpiresQueuedJobBeforeTheWindowCloses) {
  Service::Options o;
  o.window_us = 10'000'000;  // 10 s window: only the deadline can fire first
  Service svc(o);
  std::mt19937_64 g(29);
  SubmitOptions so;
  so.deadline = 30ms;
  const auto t0 = std::chrono::steady_clock::now();
  auto fut = svc.submit(random_scan_job(g, 64), so);
  Result r = fut.get();
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(r.status, Status::kTimeout);
  EXPECT_LT(waited, 5s);  // resolved at the deadline, not at window close
  EXPECT_EQ(svc.metrics().timeouts, 1u);
}

TEST(Serve, CancelTokenAbandonsQueuedJob) {
  Service::Options o;
  o.window_us = 100'000;
  Service svc(o);
  std::mt19937_64 g(31);
  auto token = make_cancel_token();
  token->store(true);  // cancelled before it can possibly run
  SubmitOptions so;
  so.cancel = token;
  Result r = svc.submit(random_scan_job(g, 64), so).get();
  EXPECT_EQ(r.status, Status::kCancelled);
  EXPECT_EQ(svc.metrics().cancelled, 1u);
}

// --- shutdown ----------------------------------------------------------------

TEST(Serve, ShutdownDrainsAcceptedWorkThenRefuses) {
  Service::Options o;
  o.window_us = 10'000'000;  // jobs would park forever without the drain
  Service svc(o);
  std::mt19937_64 g(37);
  std::vector<ScanJob> jobs;
  std::vector<std::future<Result>> futs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(random_scan_job(g, 300));
    futs.push_back(svc.submit(jobs.back()));
  }
  svc.shutdown();
  for (std::size_t i = 0; i < futs.size(); ++i) {
    Result r = futs[i].get();
    ASSERT_EQ(r.status, Status::kOk);  // drained, not dropped
    EXPECT_EQ(r.values, ref_scan(jobs[i]));
  }
  EXPECT_FALSE(svc.accepting());
  Result late = svc.submit(random_scan_job(g, 16)).get();
  EXPECT_EQ(late.status, Status::kShutdown);
  svc.shutdown();  // idempotent
}

TEST(Serve, OptionsFromEnvParsesAndClamps) {
  // Only exercises the parser plumbing; the suite must not depend on real
  // environment state, so set and restore.
  setenv("SCANPRIM_SERVE_QUEUE_CAP", "32", 1);
  setenv("SCANPRIM_SERVE_WINDOW_US", "1234", 1);
  setenv("SCANPRIM_SERVE_BYTE_BUDGET", "65536", 1);
  const Service::Options o = Service::Options::from_env();
  EXPECT_EQ(o.queue_capacity, 32u);
  EXPECT_EQ(o.window_us, 1234u);
  EXPECT_EQ(o.byte_budget, 65536u);
  setenv("SCANPRIM_SERVE_BYTE_BUDGET", "12", 1);  // below the floor: clamped
  EXPECT_EQ(Service::Options::from_env().byte_budget, 4096u);
  setenv("SCANPRIM_SERVE_PARALLEL", "force", 1);
  EXPECT_EQ(Service::Options::from_env().parallel,
            batch::JobsMode::kForceParallel);
  setenv("SCANPRIM_SERVE_PARALLEL", "serial", 1);
  EXPECT_EQ(Service::Options::from_env().parallel, batch::JobsMode::kSerial);
  setenv("SCANPRIM_SERVE_PARALLEL", "nonsense", 1);
  EXPECT_EQ(Service::Options::from_env().parallel, batch::JobsMode::kAuto);
  unsetenv("SCANPRIM_SERVE_QUEUE_CAP");
  unsetenv("SCANPRIM_SERVE_WINDOW_US");
  unsetenv("SCANPRIM_SERVE_BYTE_BUDGET");
  unsetenv("SCANPRIM_SERVE_PARALLEL");
}

}  // namespace
}  // namespace scanprim::serve
