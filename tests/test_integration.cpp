// Cross-module integration: pipelines that chain several of the paper's
// algorithms and check mutual consistency between independent
// implementations of related quantities.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/scanprim.hpp"
#include "test_util.hpp"

namespace scanprim {
namespace {

using graph::WeightedEdge;

TEST(Integration, SortMergeSortAgree) {
  // Radix-sort two halves, halving-merge them, and compare against
  // quicksorting the whole (through the float key transform).
  machine::Machine m;
  const auto keys = testutil::random_vector<std::uint64_t>(40000, 2001,
                                                           1u << 20);
  const std::size_t half = keys.size() / 2;
  const auto a = algo::split_radix_sort(
      m, std::span<const std::uint64_t>(keys.data(), half), 20);
  const auto b = algo::split_radix_sort(
      m,
      std::span<const std::uint64_t>(keys.data() + half, keys.size() - half),
      20);
  const auto merged = algo::halving_merge(m, std::span<const std::uint64_t>(a),
                                          std::span<const std::uint64_t>(b));
  std::vector<double> dkeys(keys.begin(), keys.end());
  const auto q = algo::quicksort(m, std::span<const double>(dkeys));
  ASSERT_EQ(merged.merged.size(), q.keys.size());
  for (std::size_t i = 0; i < q.keys.size(); ++i) {
    ASSERT_EQ(static_cast<double>(merged.merged[i]), q.keys[i]) << i;
  }
}

TEST(Integration, MstWeightBoundsAndComponentConsistency) {
  machine::Machine m;
  auto g = testutil::rng(2002);
  const std::size_t n = 300;
  std::vector<WeightedEdge> edges;
  for (std::size_t v = 1; v < n; ++v) {
    edges.push_back({g() % v, v, static_cast<double>(g() % 1000)});
  }
  for (int e = 0; e < 900; ++e) {
    const std::size_t u = g() % n, v = g() % n;
    if (u != v) edges.push_back({u, v, static_cast<double>(g() % 1000)});
  }
  // The MST's edges must connect the graph: CC over just those edges = 1.
  const auto mst = algo::minimum_spanning_forest(
      m, n, std::span<const WeightedEdge>(edges), 5);
  std::vector<WeightedEdge> tree_edges;
  for (const auto e : mst.edges) tree_edges.push_back(edges[e]);
  const auto cc = algo::connected_components(
      m, n, std::span<const WeightedEdge>(tree_edges), 7);
  EXPECT_EQ(cc.num_components, 1u);
  // And rooting that tree agrees with its structure: Σ subtree sizes =
  // Σ (depth + 1).
  const auto tree = graph::build_seg_graph(
      m, n, std::span<const WeightedEdge>(tree_edges));
  const auto lbl = graph::root_tree(m, tree, n);
  std::size_t sum_subtree = 0, sum_depth = 0;
  for (std::size_t v = 0; v < n; ++v) {
    sum_subtree += lbl.subtree[v];
    sum_depth += lbl.depth[v] + 1;
  }
  EXPECT_EQ(sum_subtree, sum_depth);
}

TEST(Integration, ClosestPairIsAKdTreeNearestNeighbor) {
  machine::Machine m;
  auto g = testutil::rng(2003);
  std::vector<algo::Point2D> pts(1500);
  for (auto& p : pts) {
    p = {static_cast<double>(g() % 100000), static_cast<double>(g() % 100000)};
  }
  const auto cp = algo::closest_pair(m, std::span<const algo::Point2D>(pts));
  // Query the kd-tree with one endpoint after removing it: the nearest
  // remaining point must be exactly `distance` away.
  std::vector<algo::Point2D> rest;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i != cp.a) rest.push_back(pts[i]);
  }
  const auto t = algo::build_kd_tree(m, std::span<const algo::Point2D>(rest));
  const std::size_t nn =
      algo::kd_nearest(t, std::span<const algo::Point2D>(rest), pts[cp.a]);
  const double dx = rest[nn].x - pts[cp.a].x, dy = rest[nn].y - pts[cp.a].y;
  EXPECT_NEAR(std::sqrt(dx * dx + dy * dy), cp.distance, 1e-9);
}

TEST(Integration, HullOfHullIsHull) {
  machine::Machine m;
  auto g = testutil::rng(2004);
  std::vector<algo::Point2D> pts(3000);
  for (auto& p : pts) {
    p = {static_cast<double>(g() % 5000), static_cast<double>(g() % 5000)};
  }
  const auto h1 = algo::convex_hull(m, std::span<const algo::Point2D>(pts));
  const auto h2 =
      algo::convex_hull(m, std::span<const algo::Point2D>(h1.hull));
  EXPECT_EQ(h1.hull, h2.hull);
}

TEST(Integration, BiconnectedRefinesConnected) {
  machine::Machine m;
  auto g = testutil::rng(2005);
  const std::size_t n = 150;
  std::vector<WeightedEdge> edges;
  for (std::size_t v = 1; v < n; ++v) edges.push_back({g() % v, v, 1.0});
  for (int e = 0; e < 150; ++e) {
    const std::size_t u = g() % n, v = g() % n;
    if (u != v) edges.push_back({u, v, 1.0});
  }
  const auto bc = algo::biconnected_components(
      m, n, std::span<const WeightedEdge>(edges), 3);
  // Two edges sharing a biconnected component must share endpoints'
  // connected component (trivially true on a connected graph) and at least
  // one vertex chain; check the partition is consistent: every vertex's
  // incident components form a connected "block tree" (no vertex touches a
  // component through two disjoint edge sets — guaranteed by matching the
  // serial result, so here just cross-check with the articulation flags).
  const auto ref = algo::biconnected_components_serial(
      n, std::span<const WeightedEdge>(edges));
  EXPECT_EQ(bc.edge_component, ref.edge_component);
  // MIS on the same graph must avoid every edge, including bridges.
  const auto mis = algo::maximal_independent_set(
      m, n, std::span<const WeightedEdge>(edges), 11);
  EXPECT_TRUE(algo::is_maximal_independent_set(
      n, std::span<const WeightedEdge>(edges), mis.in_set));
}

TEST(Integration, SpmvAgreesWithDenseMatVec) {
  machine::Machine m;
  auto g = testutil::rng(2006);
  const std::size_t n = 60;
  algo::Matrix D{n, n, std::vector<double>(n * n, 0.0)};
  algo::CsrMatrix S;
  S.rows = S.cols = n;
  S.row_offsets.push_back(0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (g() % 4 == 0) {
        const double v = static_cast<double>(g() % 19) - 9;
        D.at(r, c) = v;
        S.col_index.push_back(c);
        S.values.push_back(v);
      }
    }
    S.row_offsets.push_back(S.col_index.size());
  }
  const auto x = testutil::random_doubles(n, 2007, -3, 3);
  const auto sparse = algo::spmv(m, S, std::span<const double>(x));
  // Dense path computes xᵀM; transpose to compare M x.
  algo::Matrix Dt{n, n, std::vector<double>(n * n)};
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) Dt.at(c, r) = D.at(r, c);
  }
  const auto dense = algo::vec_mat_multiply(m, std::span<const double>(x), Dt);
  for (std::size_t r = 0; r < n; ++r) {
    ASSERT_NEAR(sparse[r], dense[r], 1e-9);
  }
}

TEST(Integration, VmRunsTheLineOfSightPipeline) {
  // The VM program and the native algorithm agree on a random profile.
  machine::Machine m;
  const auto alt = testutil::random_doubles(500, 2008, 0, 1000);
  const Flags native = algo::line_of_sight(m, std::span<const double>(alt));
  // Scale to integers for the VM (the comparison is scale-invariant).
  vm::Vec valt(alt.size()), vdist(alt.size());
  for (std::size_t i = 0; i < alt.size(); ++i) {
    valt[i] = static_cast<std::int64_t>((alt[i] - alt[0]) * 1000);
    vdist[i] = static_cast<std::int64_t>(i == 0 ? 1 : i);
  }
  const auto program = vm::assemble(R"(
      load alt
      const 1 1000000
      mul
      load dist
      div
      dup
      maxscan
      gt
      print
      halt
  )");
  vm::Interpreter interp(m);
  interp.set_register("alt", valt);
  interp.set_register("dist", vdist);
  interp.run(program);
  const vm::Vec& visible = interp.output().back();
  // Integer arithmetic truncates; allow the visible sets to differ only
  // where the exact angles are near-ties. Check a strong subset property:
  std::size_t disagreements = 0;
  for (std::size_t i = 1; i < alt.size(); ++i) {
    disagreements += (visible[i] != 0) != (native[i] != 0);
  }
  EXPECT_LE(disagreements, alt.size() / 50) << "VM and native diverge";
}

TEST(Integration, TreeOpsAgreeAcrossRepresentations) {
  // Euler-tour tree ops on a RootedTree built from parents vs labels from
  // the seg-graph rooting of the same tree.
  machine::Machine m;
  auto g = testutil::rng(2009);
  const std::size_t n = 800;
  std::vector<std::size_t> parent(n);
  parent[0] = 0;
  std::vector<WeightedEdge> edges;
  for (std::size_t v = 1; v < n; ++v) {
    parent[v] = g() % v;
    edges.push_back({parent[v], v, 1.0});
  }
  const auto t = algo::tree_from_parents(parent);
  const auto depths = algo::node_depths(m, t);
  const auto sizes = algo::subtree_sizes(m, t);
  const auto sg = graph::build_seg_graph(m, n, std::span<const WeightedEdge>(edges));
  const auto lbl = graph::root_tree(m, sg, n);
  // Same root (vertex 0 owns slot 0 and is the parent-array root).
  ASSERT_EQ(lbl.root, t.root);
  for (std::size_t v = 0; v < n; ++v) {
    ASSERT_EQ(depths[v], lbl.depth[v]);
    ASSERT_EQ(sizes[v], lbl.subtree[v]);
  }
}

}  // namespace
}  // namespace scanprim
