// The §3.2 hardware: sum state machines at the bit level, the FIFO shift
// register, and the clocked bit-pipelined tree circuit against reference
// scans, including the predicted cycle counts and the hardware inventory.
#include <random>

#include <gtest/gtest.h>

#include "src/circuit/shift_register.hpp"
#include "src/circuit/state_machine.hpp"
#include "src/circuit/tree_circuit.hpp"

namespace scanprim::circuit {
namespace {

// Feeds two m-bit operands through a lone state machine and decodes the
// serial output.
std::uint64_t run_machine(ScanOpKind op, std::uint64_t a, std::uint64_t b,
                          unsigned m) {
  SumStateMachine sm(op);
  sm.clear();
  std::uint64_t out = 0;
  for (unsigned t = 0; t < m; ++t) {
    const unsigned bit = op == ScanOpKind::Add ? t : m - 1 - t;
    const bool s = sm.step((a >> bit) & 1, (b >> bit) & 1);
    out |= std::uint64_t{s} << bit;
  }
  return out;
}

TEST(SumStateMachine, AddsBitSerially) {
  std::mt19937_64 rng(101);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t a = rng() & 0xffffffff;
    const std::uint64_t b = rng() & 0xffffffff;
    EXPECT_EQ(run_machine(ScanOpKind::Add, a, b, 33), a + b);
  }
}

TEST(SumStateMachine, AddTruncatesToFieldWidth) {
  // 4-bit field: 9 + 9 = 18 -> 2 mod 16.
  EXPECT_EQ(run_machine(ScanOpKind::Add, 9, 9, 4), 2u);
}

TEST(SumStateMachine, MaxBitSerially) {
  std::mt19937_64 rng(102);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t a = rng() & 0xffff;
    const std::uint64_t b = rng() & 0xffff;
    EXPECT_EQ(run_machine(ScanOpKind::Max, a, b, 16), std::max(a, b));
  }
}

TEST(SumStateMachine, MaxLatchesFirstDivergence) {
  SumStateMachine sm(ScanOpKind::Max);
  sm.clear();
  // MSB first: A = 101..., B = 011...: A wins at the first bit.
  EXPECT_TRUE(sm.step(1, 0));
  EXPECT_TRUE(sm.q1());
  EXPECT_FALSE(sm.q2());
  // From now on the output follows A regardless of B.
  EXPECT_FALSE(sm.step(0, 1));
  EXPECT_TRUE(sm.step(1, 1));
}

TEST(SumStateMachine, ClearResetsState) {
  SumStateMachine sm(ScanOpKind::Add);
  sm.step(1, 1);  // sets the carry
  sm.clear();
  EXPECT_FALSE(sm.step(0, 0));  // no leftover carry
}

TEST(ShiftRegister, DelaysByItsLength) {
  ShiftRegister r(3);
  EXPECT_EQ(r.length(), 3u);
  std::vector<int> seen;
  const bool in[] = {1, 0, 1, 1, 0, 0, 1};
  for (bool b : in) seen.push_back(r.step(b));
  EXPECT_EQ(seen, (std::vector<int>{0, 0, 0, 1, 0, 1, 1}));
}

TEST(ShiftRegister, ZeroLengthIsAWire) {
  ShiftRegister r(0);
  EXPECT_TRUE(r.step(true));
  EXPECT_FALSE(r.step(false));
}

struct CircuitCase {
  std::size_t n;
  unsigned m;
};

class CircuitSweep : public ::testing::TestWithParam<CircuitCase> {};

TEST_P(CircuitSweep, PlusScanMatchesReference) {
  const auto [n, m] = GetParam();
  TreeScanCircuit c(n, m);
  std::mt19937_64 rng(103);
  const std::uint64_t mask = m == 64 ? ~0ull : ((1ull << m) - 1);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng() & mask;
  std::vector<std::uint64_t> expect(n);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expect[i] = acc & mask;
    acc += v[i];
  }
  EXPECT_EQ(c.scan(v, ScanOpKind::Add), expect);
  EXPECT_EQ(c.last_cycle_count(), TreeScanCircuit::predicted_cycles(n, m));
}

TEST_P(CircuitSweep, MaxScanMatchesReference) {
  const auto [n, m] = GetParam();
  TreeScanCircuit c(n, m);
  std::mt19937_64 rng(104);
  const std::uint64_t mask = m == 64 ? ~0ull : ((1ull << m) - 1);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng() & mask;
  std::vector<std::uint64_t> expect(n);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expect[i] = acc;
    acc = std::max(acc, v[i]);
  }
  EXPECT_EQ(c.scan(v, ScanOpKind::Max), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CircuitSweep,
    ::testing::Values(CircuitCase{1, 8}, CircuitCase{2, 1}, CircuitCase{2, 32},
                      CircuitCase{4, 7}, CircuitCase{8, 16},
                      CircuitCase{32, 3}, CircuitCase{128, 32},
                      CircuitCase{1024, 12}, CircuitCase{4096, 32}));

TEST(TreeScanCircuit, RejectsNonPowersOfTwo) {
  EXPECT_THROW(TreeScanCircuit(3, 8), std::invalid_argument);
  EXPECT_THROW(TreeScanCircuit(0, 8), std::invalid_argument);
  EXPECT_THROW(TreeScanCircuit(8, 0), std::invalid_argument);
  EXPECT_THROW(TreeScanCircuit(8, 65), std::invalid_argument);
}

TEST(TreeScanCircuit, CycleCountIsMPlusTwoLgN) {
  // §3.2: the down sweep can begin as soon as the first bit reaches the
  // root, for m + 2 lg n bit cycles overall.
  EXPECT_EQ(TreeScanCircuit::predicted_cycles(4096, 32), 32u + 2 * 12 - 1);
  EXPECT_EQ(TreeScanCircuit::predicted_cycles(1 << 16, 16), 16u + 2 * 16 - 1);
}

TEST(TreeScanCircuit, Section33ExampleSystem) {
  // A 4096-processor machine, 32-bit fields, 100ns clock: the paper
  // estimates ~5 microseconds per scan. Our exact count: 55 cycles = 5.5us.
  TreeScanCircuit c(4096, 32);
  std::vector<std::uint64_t> v(4096, 1);
  c.scan(v, ScanOpKind::Add);
  const double micros = static_cast<double>(c.last_cycle_count()) * 0.1;
  EXPECT_NEAR(micros, 5.0, 1.0);
}

TEST(TreeScanCircuit, HardwareInventory) {
  TreeScanCircuit c(64, 8);
  const HardwareInventory hw = c.inventory();
  EXPECT_EQ(hw.leaves, 64u);
  EXPECT_EQ(hw.units, 63u);
  EXPECT_EQ(hw.state_machines, 126u);  // the §3.3 per-board chip figure
  // Σ over levels i of 2^i units · 2i register bits.
  std::size_t bits = 0;
  for (std::size_t i = 0; i < 6; ++i) bits += (std::size_t{1} << i) * 2 * i;
  EXPECT_EQ(hw.shift_register_bits, bits);
}

TEST(TreeScanCircuit, SegmentedScanMatchesReference) {
  // The §3 / [7] claim at the logic level: segments cost two static flag
  // bits and two muxes per unit, same cycle count.
  std::mt19937_64 rng(105);
  for (const std::size_t n : {2u, 4u, 8u, 64u, 512u}) {
    for (const unsigned m : {4u, 16u, 32u}) {
      TreeScanCircuit c(n, m);
      const std::uint64_t mask = (std::uint64_t{1} << m) - 1;
      std::vector<std::uint64_t> v(n);
      std::vector<std::uint8_t> f(n, 0);
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = rng() & mask;
        f[i] = (rng() % 4) == 0;
      }
      // References.
      std::vector<std::uint64_t> ref_add(n), ref_max(n);
      std::uint64_t s = 0, mx = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (f[i]) {
          s = 0;
          mx = 0;
        }
        ref_add[i] = f[i] ? 0 : s & mask;
        ref_max[i] = f[i] ? 0 : mx;
        s += v[i];
        mx = std::max(mx, v[i]);
      }
      ASSERT_EQ(c.seg_scan(v, f, ScanOpKind::Add), ref_add)
          << "n=" << n << " m=" << m;
      ASSERT_EQ(c.last_cycle_count(), TreeScanCircuit::predicted_cycles(n, m));
      ASSERT_EQ(c.seg_scan(v, f, ScanOpKind::Max), ref_max)
          << "n=" << n << " m=" << m;
    }
  }
}

TEST(TreeScanCircuit, SegmentedWithNoFlagsEqualsUnsegmented) {
  TreeScanCircuit c(64, 16);
  std::mt19937_64 rng(106);
  std::vector<std::uint64_t> v(64);
  for (auto& x : v) x = rng() & 0xffff;
  const std::vector<std::uint8_t> none(64, 0);
  EXPECT_EQ(c.seg_scan(v, none, ScanOpKind::Add), c.scan(v, ScanOpKind::Add));
}

TEST(TreeScanCircuit, Section33ChipPartition) {
  // The example system: 4096 processors, 64-input chips -> 64 leaf chips +
  // 1 combiner = 65 chips, one wire pair leaving each, and the 126 state
  // machines / 63 shift registers per chip the paper states.
  const ChipPartition p = partition_into_chips(4096, 64);
  EXPECT_EQ(p.chips, 65u);
  EXPECT_EQ(p.off_chip_wires, 2 * 65u);
  EXPECT_EQ(p.state_machines_per_leaf_chip, 126u);
  EXPECT_EQ(p.shift_registers_per_leaf_chip, 63u);
  // A 64K machine on the same chip: 1024 + 16 + 1.
  const ChipPartition big = partition_into_chips(1 << 16, 64);
  EXPECT_EQ(big.chips, 1024u + 16u + 1u);
  EXPECT_THROW(partition_into_chips(100, 64), std::invalid_argument);
  EXPECT_THROW(partition_into_chips(64, 128), std::invalid_argument);
}

TEST(TreeScanCircuit, ReusableAcrossScans) {
  TreeScanCircuit c(16, 8);
  std::vector<std::uint64_t> a(16, 3), b(16, 200);
  const auto r1 = c.scan(a, ScanOpKind::Add);
  const auto r2 = c.scan(b, ScanOpKind::Max);
  const auto r3 = c.scan(a, ScanOpKind::Add);
  EXPECT_EQ(r1, r3);
  EXPECT_EQ(r2[0], 0u);
  EXPECT_EQ(r2[5], 200u);
  EXPECT_EQ(r1[5], 15u);
}

}  // namespace
}  // namespace scanprim::circuit
