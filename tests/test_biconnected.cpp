// Tarjan–Vishkin biconnected components against Hopcroft–Tarjan.
#include "src/algo/biconnected.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

using graph::WeightedEdge;

std::vector<WeightedEdge> random_connected(std::size_t n, std::size_t extra,
                                           std::uint64_t seed) {
  auto g = testutil::rng(seed);
  std::vector<WeightedEdge> edges;
  for (std::size_t v = 1; v < n; ++v) edges.push_back({g() % v, v, 1.0});
  for (std::size_t e = 0; e < extra; ++e) {
    const std::size_t u = g() % n, v = g() % n;
    if (u != v) edges.push_back({u, v, 1.0});
  }
  return edges;
}

struct BcCase {
  std::size_t n;
  std::size_t extra;
};

class BcSweep : public ::testing::TestWithParam<BcCase> {};

TEST_P(BcSweep, MatchesHopcroftTarjan) {
  const auto [n, extra] = GetParam();
  machine::Machine m;
  const auto edges = random_connected(n, extra, 801 + n + extra);
  const BiconnResult got = biconnected_components(
      m, n, std::span<const WeightedEdge>(edges), 5);
  const BiconnResult ref = biconnected_components_serial(
      n, std::span<const WeightedEdge>(edges));
  EXPECT_EQ(got.edge_component, ref.edge_component);
  EXPECT_EQ(got.num_components, ref.num_components);
  EXPECT_EQ(got.articulation, ref.articulation);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BcSweep,
    ::testing::Values(BcCase{2, 0}, BcCase{3, 1}, BcCase{10, 0},
                      BcCase{10, 15}, BcCase{50, 10}, BcCase{100, 300},
                      BcCase{500, 100}, BcCase{500, 2000}, BcCase{2000, 4000}));

TEST(Biconnected, ManyRandomTrials) {
  machine::Machine m;
  auto g = testutil::rng(802);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 3 + g() % 80;
    const auto edges = random_connected(n, g() % (2 * n), g());
    const BiconnResult got = biconnected_components(
        m, n, std::span<const WeightedEdge>(edges), trial);
    const BiconnResult ref = biconnected_components_serial(
        n, std::span<const WeightedEdge>(edges));
    ASSERT_EQ(got.edge_component, ref.edge_component) << "trial " << trial;
    ASSERT_EQ(got.articulation, ref.articulation) << "trial " << trial;
  }
}

TEST(Biconnected, PureTreeMakesEveryEdgeItsOwnComponent) {
  machine::Machine m;
  const auto edges = random_connected(40, 0, 803);
  const BiconnResult got = biconnected_components(
      m, 40, std::span<const WeightedEdge>(edges), 1);
  EXPECT_EQ(got.num_components, edges.size());
  // Every internal vertex is an articulation point.
  std::vector<std::size_t> degree(40, 0);
  for (const auto& e : edges) {
    ++degree[e.u];
    ++degree[e.v];
  }
  for (std::size_t v = 0; v < 40; ++v) {
    EXPECT_EQ(got.articulation[v] != 0, degree[v] > 1) << v;
  }
}

TEST(Biconnected, CycleIsOneComponent) {
  machine::Machine m;
  const std::size_t n = 20;
  std::vector<WeightedEdge> cyc;
  for (std::size_t v = 0; v < n; ++v) cyc.push_back({v, (v + 1) % n, 1.0});
  const BiconnResult got =
      biconnected_components(m, n, std::span<const WeightedEdge>(cyc), 2);
  EXPECT_EQ(got.num_components, 1u);
  for (const auto a : got.articulation) EXPECT_FALSE(a);
}

TEST(Biconnected, TwoTrianglesSharingAVertex) {
  machine::Machine m;
  // 0-1-2-0 and 2-3-4-2: vertex 2 is the articulation point.
  const std::vector<WeightedEdge> edges{{0, 1, 1}, {1, 2, 1}, {2, 0, 1},
                                        {2, 3, 1}, {3, 4, 1}, {4, 2, 1}};
  const BiconnResult got =
      biconnected_components(m, 5, std::span<const WeightedEdge>(edges), 3);
  EXPECT_EQ(got.num_components, 2u);
  EXPECT_EQ(got.edge_component[0], got.edge_component[1]);
  EXPECT_EQ(got.edge_component[1], got.edge_component[2]);
  EXPECT_EQ(got.edge_component[3], got.edge_component[4]);
  EXPECT_NE(got.edge_component[0], got.edge_component[3]);
  EXPECT_EQ(got.articulation, (Flags{0, 0, 1, 0, 0}));
}

TEST(Biconnected, ParallelEdgesFormABond) {
  machine::Machine m;
  const std::vector<WeightedEdge> edges{{0, 1, 1}, {0, 1, 1}, {1, 2, 1}};
  const BiconnResult got =
      biconnected_components(m, 3, std::span<const WeightedEdge>(edges), 4);
  EXPECT_EQ(got.edge_component[0], got.edge_component[1]);
  EXPECT_NE(got.edge_component[0], got.edge_component[2]);
  EXPECT_EQ(got.num_components, 2u);
}

TEST(Biconnected, DisconnectedGraphThrows) {
  machine::Machine m;
  const std::vector<WeightedEdge> edges{{0, 1, 1}};  // vertex 2 isolated
  EXPECT_THROW(
      biconnected_components(m, 3, std::span<const WeightedEdge>(edges), 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace scanprim::algo
