// Connected components via star merging, against a serial labelling.
#include "src/algo/connected_components.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

using graph::WeightedEdge;

std::vector<WeightedEdge> random_graph(std::size_t n, std::size_t m,
                                       std::uint64_t seed) {
  auto g = testutil::rng(seed);
  std::vector<WeightedEdge> edges;
  for (std::size_t e = 0; e < m; ++e) {
    const std::size_t u = g() % n, v = g() % n;
    if (u != v) edges.push_back({u, v, 1.0});
  }
  return edges;
}

struct CcCase {
  std::size_t n;
  std::size_t m;
};

class CcSweep : public ::testing::TestWithParam<CcCase> {};

TEST_P(CcSweep, MatchesSerialLabelling) {
  const auto [n, edge_count] = GetParam();
  machine::Machine m;
  const auto edges = random_graph(n, edge_count, 3000 + n + edge_count);
  const ComponentsResult got = connected_components(
      m, n, std::span<const WeightedEdge>(edges), 31);
  const ComponentsResult ref = connected_components_serial(
      n, std::span<const WeightedEdge>(edges));
  EXPECT_EQ(got.label, ref.label);
  EXPECT_EQ(got.num_components, ref.num_components);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CcSweep,
    ::testing::Values(CcCase{1, 0}, CcCase{10, 0}, CcCase{10, 5},
                      CcCase{50, 25},  // sparse: many components
                      CcCase{50, 200}, CcCase{300, 100}, CcCase{300, 1500},
                      CcCase{1000, 4000}));

TEST(ConnectedComponents, HookingMatchesSerialOnRandomGraphs) {
  machine::Machine m;
  auto g = testutil::rng(3501);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + g() % 400;
    const auto edges = random_graph(n, g() % (3 * n), g());
    const ComponentsResult got = connected_components_hooking(
        m, n, std::span<const WeightedEdge>(edges));
    const ComponentsResult ref = connected_components_serial(
        n, std::span<const WeightedEdge>(edges));
    ASSERT_EQ(got.label, ref.label) << "trial " << trial;
    ASSERT_EQ(got.num_components, ref.num_components);
  }
}

TEST(ConnectedComponents, HookingRoundsAreLogarithmic) {
  machine::Machine m;
  for (const std::size_t n : {256u, 2048u, 16384u}) {
    const auto edges = random_graph(n, 4 * n, n);
    const ComponentsResult got = connected_components_hooking(
        m, n, std::span<const WeightedEdge>(edges));
    std::size_t lg = 0;
    while ((std::size_t{1} << lg) < n) ++lg;
    EXPECT_LE(got.rounds, 4 * lg) << n;
  }
}

TEST(ConnectedComponents, HookingAndStarMergeAgree) {
  machine::Machine m;
  const auto edges = random_graph(500, 900, 3502);
  const auto a = connected_components(m, 500, std::span<const WeightedEdge>(edges), 9);
  const auto b = connected_components_hooking(
      m, 500, std::span<const WeightedEdge>(edges));
  EXPECT_EQ(a.label, b.label);
}

TEST(ConnectedComponents, LabelsAreComponentMinima) {
  machine::Machine m;
  // Components {0,2,4}, {1,3}, {5}.
  const std::vector<WeightedEdge> edges{{2, 4, 1}, {0, 2, 1}, {1, 3, 1}};
  const ComponentsResult got =
      connected_components(m, 6, std::span<const WeightedEdge>(edges), 5);
  EXPECT_EQ(got.label, (std::vector<std::size_t>{0, 1, 0, 1, 0, 5}));
  EXPECT_EQ(got.num_components, 3u);
}

TEST(ConnectedComponents, FullyConnectedCollapsesToOne) {
  machine::Machine m;
  const std::size_t n = 40;
  std::vector<WeightedEdge> edges;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) edges.push_back({u, v, 1.0});
  }
  const ComponentsResult got =
      connected_components(m, n, std::span<const WeightedEdge>(edges), 13);
  EXPECT_EQ(got.num_components, 1u);
  for (const std::size_t l : got.label) EXPECT_EQ(l, 0u);
}

}  // namespace
}  // namespace scanprim::algo
