// Long vectors and load balancing (§2.5, Figures 10 and 11): simulating
// more elements than processors and the resulting step charges of Table 5.
#include <gtest/gtest.h>

#include "src/machine/machine.hpp"
#include "src/thread/thread_pool.hpp"
#include "test_util.hpp"

namespace scanprim::machine {
namespace {

TEST(LongVector, Figure10BlockLayout) {
  // 12 elements on 4 processors: contiguous blocks of 3.
  for (std::size_t b = 0; b < 4; ++b) {
    const thread::Block blk = thread::block_of(12, 4, b);
    EXPECT_EQ(blk.begin, 3 * b);
    EXPECT_EQ(blk.end, 3 * (b + 1));
  }
}

TEST(LongVector, Figure10ScanDecomposition) {
  // Figure 10: per-block sums [12 7 18 15], +-scan of the sums
  // [0 12 19 37], then block-local scans with those offsets.
  const std::vector<int> v{4, 7, 1, 0, 5, 2, 6, 4, 8, 1, 9, 5};
  std::vector<int> sums(4, 0);
  for (std::size_t b = 0; b < 4; ++b) {
    const auto blk = thread::block_of(12, 4, b);
    for (std::size_t i = blk.begin; i < blk.end; ++i) sums[b] += v[i];
  }
  EXPECT_EQ(sums, (std::vector<int>{12, 7, 18, 15}));
  const auto offsets = plus_scan(std::span<const int>(sums));
  EXPECT_EQ(offsets, (std::vector<int>{0, 12, 19, 37}));
  // The full scan agrees with the figure's result row.
  const auto full = plus_scan(std::span<const int>(v));
  EXPECT_EQ(full, (std::vector<int>{0, 4, 11, 12, 12, 17, 19, 25, 29, 37, 38,
                                    47}));
}

TEST(LongVector, Figure11LoadBalancingPack) {
  // F = [T F F F T T F T T T T T]: pack keeps the flagged elements and
  // re-blocks them evenly.
  const Flags f{1, 0, 0, 0, 1, 1, 0, 1, 1, 1, 1, 1};
  std::vector<char> a(12);
  for (std::size_t i = 0; i < 12; ++i) a[i] = static_cast<char>('a' + i);
  const auto packed = pack(std::span<const char>(a), FlagsView(f));
  EXPECT_EQ(packed, (std::vector<char>{'a', 'e', 'f', 'h', 'i', 'j', 'k', 'l'}));
  // 8 remaining elements on 4 processors: 2 each.
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(thread::block_of(8, 4, b).size(), 2u);
  }
}

TEST(LongVector, ChargesScaleWithCeilNOverP) {
  Machine m(Model::Scan, 100);
  const auto v = testutil::random_vector<long>(1000, 251);
  m.map<long>(std::span<const long>(v), [](long x) { return x; });
  EXPECT_EQ(m.stats().steps, 10u);
  m.reset_stats();
  const auto w = testutil::random_vector<long>(1001, 252);
  m.map<long>(std::span<const long>(w), [](long x) { return x; });
  EXPECT_EQ(m.stats().steps, 11u);  // ⌈1001/100⌉
}

TEST(LongVector, Table5ProcessorStepTradeoff) {
  // Table 5: a geometrically shrinking workload (like the halving merge's
  // levels) costs Θ(n lg n) processor-steps with p = n but only Θ(n) with
  // p = n / lg n, because a load-balanced machine keeps its processors busy
  // on the early big levels and the late levels are cheap anyway.
  const std::size_t n = 1 << 12;
  const std::size_t lg = 12;
  Machine full(Model::Scan, n), balanced(Model::Scan, n / lg);
  for (std::size_t len = n; len >= 1; len /= 2) {
    const auto v = testutil::random_vector<long>(len, 253 + len);
    full.plus_scan(std::span<const long>(v));
    balanced.plus_scan(std::span<const long>(v));
  }
  const auto ps_full = full.stats().steps * n;
  const auto ps_balanced = balanced.stats().steps * (n / lg);
  EXPECT_LT(ps_balanced, ps_full / 3)
      << "balanced=" << ps_balanced << " full=" << ps_full;
}

TEST(LongVector, ScanStepFormulaPerModel) {
  // With p processors and n elements: Scan model ⌈n/p⌉ + 1; EREW
  // ⌈n/p⌉ - 1 + lg p local-then-tree steps.
  const std::size_t n = 4096, p = 256;
  const auto v = testutil::random_vector<long>(n, 254);
  Machine s(Model::Scan, p), e(Model::EREW, p);
  s.plus_scan(std::span<const long>(v));
  e.plus_scan(std::span<const long>(v));
  EXPECT_EQ(s.stats().steps, n / p - 1 + 1);
  EXPECT_EQ(e.stats().steps, n / p - 1 + 8);  // lg 256 = 8
}

}  // namespace
}  // namespace scanprim::machine
