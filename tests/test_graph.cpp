// The segmented graph representation (§2.3.2, Figure 6).
#include "src/graph/seg_graph.hpp"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::graph {
namespace {

std::vector<WeightedEdge> random_connected_graph(std::size_t n,
                                                 std::size_t extra,
                                                 std::uint64_t seed) {
  auto g = testutil::rng(seed);
  std::vector<WeightedEdge> edges;
  for (std::size_t v = 1; v < n; ++v) {
    edges.push_back({g() % v, v, static_cast<double>(g() % 100000)});
  }
  for (std::size_t e = 0; e < extra; ++e) {
    const std::size_t u = g() % n, v = g() % n;
    if (u != v) edges.push_back({u, v, static_cast<double>(g() % 100000)});
  }
  return edges;
}

TEST(SegGraph, Figure6Structure) {
  machine::Machine m;
  // The paper's example graph (vertices renumbered 0-based): w1=(0,1),
  // w2=(1,2), w3=(1,4), w4=(2,3), w5=(2,4), w6=(3,4).
  const std::vector<WeightedEdge> edges{{0, 1, 1}, {1, 2, 2}, {1, 4, 3},
                                        {2, 3, 4}, {2, 4, 5}, {3, 4, 6}};
  const SegGraph g = build_seg_graph(m, 5, edges);
  ASSERT_TRUE(validate(g));
  EXPECT_EQ(g.num_slots(), 12u);
  // vertex = [0 1 1 1 2 2 2 3 3 4 4 4], as in the figure (1-based there).
  EXPECT_EQ(g.vertex, (std::vector<std::size_t>{0, 1, 1, 1, 2, 2, 2, 3, 3, 4,
                                                4, 4}));
  EXPECT_EQ(g.segment_desc, (Flags{1, 1, 0, 0, 1, 0, 0, 1, 0, 1, 0, 0}));
  // Weights per slot (w_k = k+1 here): [w1 w1 w2 w3 w2 w4 w5 w4 w6 w3 w5 w6].
  EXPECT_EQ(g.weight, (std::vector<double>{1, 1, 2, 3, 2, 4, 5, 4, 6, 3, 5, 6}));
  // The figure's cross pointers exactly.
  EXPECT_EQ(g.cross, (std::vector<std::size_t>{1, 0, 4, 9, 2, 7, 10, 5, 11, 3,
                                               6, 8}));
}

TEST(SegGraph, RandomGraphInvariants) {
  machine::Machine m;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const std::size_t n = 200;
    const auto edges = random_connected_graph(n, 400, seed);
    const SegGraph g = build_seg_graph(m, n, edges);
    ASSERT_TRUE(validate(g));
    EXPECT_EQ(g.num_slots(), 2 * edges.size());
    EXPECT_EQ(num_segments(m, g), n);
    // Every edge id appears exactly twice, on slots of its two endpoints.
    std::map<std::size_t, std::multiset<std::size_t>> ends;
    for (std::size_t s = 0; s < g.num_slots(); ++s) {
      ends[g.edge_id[s]].insert(g.vertex[s]);
    }
    for (std::size_t e = 0; e < edges.size(); ++e) {
      ASSERT_EQ(ends[e],
                (std::multiset<std::size_t>{edges[e].u, edges[e].v}));
    }
    // Slots are grouped by vertex, in increasing order.
    for (std::size_t s = 1; s < g.num_slots(); ++s) {
      ASSERT_LE(g.vertex[s - 1], g.vertex[s]);
      ASSERT_EQ(g.segment_desc[s], g.vertex[s] != g.vertex[s - 1] ? 1 : 0);
    }
    // Cross pointers join the two endpoints of each edge.
    for (std::size_t s = 0; s < g.num_slots(); ++s) {
      const std::size_t t = g.cross[s];
      const WeightedEdge& e = edges[g.edge_id[s]];
      ASSERT_TRUE((g.vertex[s] == e.u && g.vertex[t] == e.v) ||
                  (g.vertex[s] == e.v && g.vertex[t] == e.u));
    }
  }
}

TEST(SegGraph, NeighborSumMatchesSerial) {
  machine::Machine m;
  const std::size_t n = 150;
  const auto edges = random_connected_graph(n, 300, 7);
  const SegGraph g = build_seg_graph(m, n, edges);
  const auto values = testutil::random_doubles(n, 8, 0, 100);
  const auto sums = neighbor_sum(m, g, std::span<const double>(values));
  std::vector<double> expect(n, 0.0);
  for (const auto& e : edges) {
    expect[e.u] += values[e.v];
    expect[e.v] += values[e.u];
  }
  ASSERT_EQ(sums.size(), n);
  for (std::size_t v = 0; v < n; ++v) {
    ASSERT_NEAR(sums[v], expect[v], 1e-9) << v;
  }
}

TEST(SegGraph, NeighborSumIsConstantSteps) {
  // The §2.3.2 claim: O(1) program steps in the scan model, independent
  // of n and of vertex degree.
  const auto steps_for = [](std::size_t n, std::uint64_t seed) {
    machine::Machine m(machine::Model::Scan);
    const auto edges = random_connected_graph(n, 2 * n, seed);
    const SegGraph g = build_seg_graph(m, n, edges);
    const auto values = testutil::random_doubles(n, seed, 0, 1);
    m.reset_stats();
    neighbor_sum(m, g, std::span<const double>(values));
    return m.stats().steps;
  };
  EXPECT_EQ(steps_for(100, 1), steps_for(3000, 2));
}

TEST(SegGraph, SlotSegmentIds) {
  machine::Machine m;
  const auto edges = random_connected_graph(60, 100, 9);
  const SegGraph g = build_seg_graph(m, 60, edges);
  const auto ids = slot_segment_ids(m, g);
  std::size_t expect = 0;
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    if (s > 0 && g.segment_desc[s]) ++expect;
    ASSERT_EQ(ids[s], expect);
  }
}

TEST(SegGraph, EmptyGraph) {
  machine::Machine m;
  const SegGraph g = build_seg_graph(m, 10, {});
  EXPECT_EQ(g.num_slots(), 0u);
  EXPECT_TRUE(validate(g));
}

}  // namespace
}  // namespace scanprim::graph
