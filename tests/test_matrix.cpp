// The Table 1 matrix operations.
#include "src/algo/matrix.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  Matrix M{r, c, {}};
  M.a = testutil::random_doubles(r * c, seed, -10, 10);
  return M;
}

TEST(VecMat, MatchesSerialOnRectangularMatrices) {
  machine::Machine m;
  for (const auto& [r, c] : {std::pair<std::size_t, std::size_t>{1, 1},
                            {3, 5}, {5, 3}, {32, 32}, {64, 17}}) {
    const Matrix M = random_matrix(r, c, 221 + r * c);
    const auto x = testutil::random_doubles(r, 222 + r, -5, 5);
    const auto y = vec_mat_multiply(m, std::span<const double>(x), M);
    ASSERT_EQ(y.size(), c);
    for (std::size_t j = 0; j < c; ++j) {
      double s = 0;
      for (std::size_t i = 0; i < r; ++i) s += x[i] * M.at(i, j);
      ASSERT_NEAR(y[j], s, 1e-9);
    }
  }
}

TEST(VecMat, ConstantStepsInTheScanModel) {
  const auto steps_for = [](std::size_t n) {
    machine::Machine m(machine::Model::Scan);
    const Matrix M = random_matrix(n, n, 223);
    const auto x = testutil::random_doubles(n, 224, -1, 1);
    vec_mat_multiply(m, std::span<const double>(x), M);
    return m.stats().steps;
  };
  EXPECT_EQ(steps_for(8), steps_for(64));  // Table 1: O(1)
}

TEST(MatMat, MatchesSerial) {
  machine::Machine m;
  const Matrix A = random_matrix(13, 7, 225);
  const Matrix B = random_matrix(7, 9, 226);
  const Matrix C = mat_mat_multiply(m, A, B);
  ASSERT_EQ(C.rows, 13u);
  ASSERT_EQ(C.cols, 9u);
  for (std::size_t i = 0; i < C.rows; ++i) {
    for (std::size_t j = 0; j < C.cols; ++j) {
      double s = 0;
      for (std::size_t k = 0; k < A.cols; ++k) s += A.at(i, k) * B.at(k, j);
      ASSERT_NEAR(C.at(i, j), s, 1e-9);
    }
  }
}

TEST(MatMat, LinearStepsInInnerDimension) {
  const auto steps_for = [](std::size_t k) {
    machine::Machine m(machine::Model::Scan);
    const Matrix A = random_matrix(4, k, 227);
    const Matrix B = random_matrix(k, 4, 228);
    mat_mat_multiply(m, A, B);
    return m.stats().steps;
  };
  EXPECT_EQ(steps_for(32), 2 * steps_for(16));  // Table 1: O(n)
}

TEST(LinearSolve, RecoversKnownSolution) {
  machine::Machine m;
  for (const std::size_t n : {1u, 2u, 5u, 20u, 60u}) {
    Matrix A = random_matrix(n, n, 229 + n);
    for (std::size_t i = 0; i < n; ++i) A.at(i, i) += 50.0;  // well-posed
    const auto x_true = testutil::random_doubles(n, 230 + n, -3, 3);
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += A.at(i, j) * x_true[j];
    }
    const auto x = linear_solve(m, A, b);
    for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(x[i], x_true[i], 1e-6);
  }
}

TEST(LinearSolve, PivotingHandlesZeroDiagonal) {
  machine::Machine m;
  // Without pivoting this matrix fails immediately (A[0][0] = 0).
  Matrix A{2, 2, {0, 1, 1, 0}};
  const std::vector<double> b{3, 4};
  const auto x = linear_solve(m, A, b);
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinearSolve, SingularMatrixThrows) {
  machine::Machine m;
  Matrix A{2, 2, {1, 2, 2, 4}};
  EXPECT_THROW(linear_solve(m, A, {1, 2}), std::runtime_error);
}

TEST(LinearSolve, ScanModelBeatsErewByLgFactor) {
  // Table 1: O(n) scan model vs O(n lg n) EREW — per-pivot step counts
  // differ by about lg n.
  const std::size_t n = 64;
  const Matrix A = [&] {
    Matrix M = random_matrix(n, n, 231);
    for (std::size_t i = 0; i < n; ++i) M.at(i, i) += 100.0;
    return M;
  }();
  const auto b = testutil::random_doubles(n, 232, -1, 1);
  machine::Machine ms(machine::Model::Scan), me(machine::Model::EREW);
  linear_solve(ms, A, b);
  linear_solve(me, A, b);
  EXPECT_GT(me.stats().steps, 2 * ms.stats().steps);
}

}  // namespace
}  // namespace scanprim::algo
