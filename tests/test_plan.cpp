// The VM-to-executor plan compiler (docs/PLAN.md): compiled dispatch must be
// observationally identical to pure interpretation — outputs, registers,
// charges, instruction counts, and error messages — across directed
// programs, the paper's control-flow sorts, and a seeded random program
// generator. Plus the cache contract (hit/miss/negative/LRU/concurrency),
// the zero-record/fuse-work guarantee on cache hits, and the plan.compile
// fault point's interpret-and-retry fallback.
#include "src/plan/plan.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <future>
#include <limits>
#include <map>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/runtime.hpp"
#include "src/fault/fault.hpp"
#include "src/plan/coalesce.hpp"
#include "src/serve/service.hpp"
#include "src/vm/assembler.hpp"
#include "test_util.hpp"

namespace scanprim {
namespace {

using vm::Vec;

/// Pure interpretation while alive: unhooks the plan engine, restores it on
/// scope exit. The reference leg of every agreement test runs under one.
struct HookGuard {
  vm::Interpreter::RunHook saved;
  HookGuard() : saved(vm::Interpreter::run_hook()) {
    vm::Interpreter::set_run_hook(nullptr);
  }
  ~HookGuard() { vm::Interpreter::set_run_hook(saved); }
};

struct Outcome {
  bool ok = true;
  std::string error;
  std::vector<Vec> output;
  std::size_t executed = 0;
  machine::StepStats stats;
};

Outcome run_vm(const vm::Program& p, const std::map<std::string, Vec>& regs,
               bool compiled, std::size_t max_instructions = 1u << 22) {
  plan::ensure_hook();
  std::optional<HookGuard> guard;
  if (!compiled) guard.emplace();
  machine::Machine m;
  vm::Interpreter interp(m);
  for (const auto& [name, v] : regs) interp.set_register(name, v);
  Outcome out;
  try {
    interp.run(p, max_instructions);
  } catch (const vm::VmError& e) {
    out.ok = false;
    out.error = e.what();
  }
  out.output = interp.output();
  out.executed = interp.instructions_executed();
  out.stats = m.stats();
  return out;
}

/// Interpreted and compiled runs of `src` must agree on everything the VM
/// can observe. Integer charge counters compare exactly; bit_cycles is a
/// double accumulated in dataflow order by compiled regions, so it gets a
/// relative tolerance.
void expect_agree(const std::string& src,
                  const std::map<std::string, Vec>& regs = {},
                  std::size_t max_instructions = 1u << 22) {
  const vm::Program p = vm::assemble(src);
  const Outcome i = run_vm(p, regs, /*compiled=*/false, max_instructions);
  const Outcome c = run_vm(p, regs, /*compiled=*/true, max_instructions);
  EXPECT_EQ(i.ok, c.ok) << src;
  EXPECT_EQ(i.error, c.error) << src;
  EXPECT_EQ(i.output, c.output) << src;
  EXPECT_EQ(i.executed, c.executed) << src;
  EXPECT_EQ(i.stats.steps, c.stats.steps) << src;
  EXPECT_EQ(i.stats.elementwise, c.stats.elementwise) << src;
  EXPECT_EQ(i.stats.permutes, c.stats.permutes) << src;
  EXPECT_EQ(i.stats.scans, c.stats.scans) << src;
  EXPECT_EQ(i.stats.broadcasts, c.stats.broadcasts) << src;
  EXPECT_EQ(i.stats.combines, c.stats.combines) << src;
  EXPECT_NEAR(i.stats.bit_cycles, c.stats.bit_cycles,
              1e-6 * std::max(1.0, std::abs(i.stats.bit_cycles)))
      << src;
}

TEST(PlanAgreement, DirectedPrograms) {
  const Vec a{2, 1, 2, 3, 5, 8, 13, 21};
  const Vec v{5, 1, 3, 4, 3, 9, 2, 6};
  const Vec f{1, 0, 1, 0, 0, 0, 1, 0};
  expect_agree("index 5\nconst 1 10\nadd\nconst 1 2\nmul\nprint\nhalt");
  expect_agree("load a\n+scan\nprint\nhalt", {{"a", a}});
  expect_agree("load v\nload f\nseg+scan\nprint\nhalt", {{"v", v}, {"f", f}});
  expect_agree("load f\nenumerate\nprint\nhalt", {{"f", f}});
  expect_agree("load v\nload f\npack\nprint\nhalt", {{"v", v}, {"f", f}});
  expect_agree("load v\nload f\nsplit\nprint\nhalt", {{"v", v}, {"f", f}});
  expect_agree("load v\nload f\nsegcopy\nprint\nhalt", {{"v", v}, {"f", f}});
  expect_agree("load v\nload f\nseg+distribute\nprint\nhalt",
               {{"v", v}, {"f", f}});
  expect_agree("load v\nload f\nseg+backscan\nprint\nhalt",
               {{"v", v}, {"f", f}});
  expect_agree("load v\ndup\n+reduce\nprint\nprint\nhalt", {{"v", v}});
  expect_agree("load v\nlength\nprint\nprint\nhalt", {{"v", v}});
  expect_agree("const 1 9\nconst 1 6\ndistribute\nprint\nhalt");
  expect_agree("load f\nload a\nload v\nselect\nprint\nhalt",
               {{"f", f}, {"a", a}, {"v", v}});
  // The line-of-sight kernel: dup + maxscan + gt in one fused region.
  expect_agree(
      "load alt\nconst 1 1000\nmul\nload dist\ndiv\ndup\nmaxscan\ngt\n"
      "print\nhalt",
      {{"alt", Vec{1, 10, 1, 2, 3, 60}}, {"dist", Vec{1, 1, 2, 3, 4, 5}}});
  // Stack shuffles and register round trips inside one region.
  expect_agree(
      "load a\nload v\nswap\nover\nstore t\nadd\nload t\nsub\nprint\nhalt",
      {{"a", a}, {"v", v}});
}

TEST(PlanAgreement, SplitRadixSortProgram) {
  const std::string src = R"(
        const 1 0
        store bit
    loop:
        load a
        load bit
        shr
        const 1 1
        band
        store flags
        load a
        load flags
        split
        store a
        load bit
        const 1 1
        add
        store bit
        load bit
        load nbits
        lt
        jnz loop
        load a
        print
        halt
  )";
  auto g = testutil::rng(901);
  Vec keys(2000);
  for (auto& k : keys) k = static_cast<std::int64_t>(g() % 4096);
  const std::map<std::string, Vec> regs{{"a", keys}, {"nbits", Vec{12}}};
  expect_agree(src, regs);
  // And the compiled leg really sorts (not just "agrees with itself").
  const Outcome c = run_vm(vm::assemble(src), regs, /*compiled=*/true);
  Vec expect = keys;
  std::sort(expect.begin(), expect.end());
  ASSERT_TRUE(c.ok) << c.error;
  EXPECT_EQ(c.output.back(), expect);
  // Control flow forces multiple regions; the loop body itself compiles.
  plan::Compiler comp;
  const auto cp = comp.compile(vm::assemble(src));
  ASSERT_TRUE(cp.has_value());
  EXPECT_GT(cp->regions.size(), 1u);
  EXPECT_GT(cp->compiled_instructions, 0u);
  EXPECT_LT(cp->compiled_instructions, cp->total_instructions);
}

TEST(PlanAgreement, SegmentedQuicksortProgram) {
  const std::size_t n = 1000;
  std::string src = R"(
        index N
        const 1 0
        eq
        store segs
    loop:
        load a
        index N
        const 1 1
        sub
        const 1 0
        max
        gather
        load a
        le
        index N
        const 1 0
        eq
        bor
        andreduce
        jnz done
        load a
        load segs
        segcopy
        store piv
        load a
        load piv
        ge
        load a
        load piv
        gt
        add
        store code
        load code
        const 1 0
        eq
        store ind0
        load code
        const 1 1
        eq
        store ind1
        load ind0
        load segs
        seg+scan
        store r0
        load ind1
        load segs
        seg+scan
        store r1
        load code
        const 1 2
        eq
        load segs
        seg+scan
        store r2
        load ind0
        load segs
        seg+distribute
        store c0
        load ind1
        load segs
        seg+distribute
        store c1
        const N 1
        load segs
        seg+scan
        store srank
        load c0
        load c1
        add
        load r2
        add
        store w2
        load ind1
        load c0
        load r1
        add
        load w2
        select
        store w12
        load ind0
        load r0
        load w12
        select
        index N
        load srank
        sub
        add
        store dest
        load a
        load dest
        permute
        store a
        load code
        load dest
        permute
        store mcode
        load mcode
        index N
        const 1 1
        sub
        const 1 0
        max
        gather
        load mcode
        ne
        load segs
        bor
        store segs
        jump loop
    done:
        load a
        print
        halt
  )";
  for (std::string::size_type p; (p = src.find("N")) != std::string::npos;) {
    src.replace(p, 1, std::to_string(n));
  }
  auto g = testutil::rng(902);
  Vec keys(n);
  for (auto& k : keys) k = static_cast<std::int64_t>(g() % 100000);
  const std::map<std::string, Vec> regs{{"a", keys}};
  expect_agree(src, regs, 1u << 24);
  const Outcome c = run_vm(vm::assemble(src), regs, /*compiled=*/true,
                           1u << 24);
  Vec expect = keys;
  std::sort(expect.begin(), expect.end());
  ASSERT_TRUE(c.ok) << c.error;
  EXPECT_EQ(c.output.back(), expect);
}

// --- seeded random program generator ---------------------------------------
// Straight-line programs over the compilable ISA subset, built from
// length-preserving snippets so applicability is decidable from a symbolic
// stack of lengths. Every generated program compiles fully (asserted), so
// the agreement it proves is about the compiled path, not the fallback.

struct GenProgram {
  std::string src;
  std::map<std::string, Vec> regs;
};

GenProgram generate(std::uint64_t seed, std::size_t L) {
  std::mt19937_64 g(seed * 2654435761u + L + 1);
  const auto pick = [&](std::uint64_t n) { return g() % n; };

  GenProgram gp;
  gp.regs["a"] = testutil::random_vector<std::int64_t>(L, seed * 5 + 1, 1000);
  gp.regs["b"] = testutil::random_vector<std::int64_t>(L, seed * 5 + 2, 1000);
  gp.regs["c"] = testutil::random_vector<std::int64_t>(L, seed * 5 + 3, 8);
  Vec f(L, 0);
  if (L > 0) f[0] = 1;
  for (std::size_t i = 1; i < L; ++i) f[i] = pick(4) == 0 ? 1 : 0;
  gp.regs["f"] = f;
  Vec d(L);
  for (auto& x : d) x = 1 + static_cast<std::int64_t>(pick(9));
  gp.regs["d"] = d;
  Vec pm(L);
  std::iota(pm.begin(), pm.end(), 0);
  std::shuffle(pm.begin(), pm.end(), g);
  gp.regs["pm"] = pm;
  Vec ix(L);
  for (auto& x : ix) x = static_cast<std::int64_t>(pick(std::max<std::size_t>(L, 1)));
  gp.regs["ix"] = ix;

  std::ostringstream out;
  const auto emit = [&](const std::string& line) { out << line << "\n"; };
  std::vector<std::size_t> stack;  // symbolic lengths
  std::map<std::string, std::size_t> temps;
  int next_temp = 0;

  static const char* kUnary[] = {"neg",     "not",        "+scan",
                                 "maxscan", "minscan",    "orscan",
                                 "andscan", "+backscan",  "maxbackscan",
                                 "minbackscan", "enumerate"};
  static const char* kBinary[] = {"add", "sub", "mul", "min", "max",
                                  "band", "bor", "bxor", "lt", "le",
                                  "eq", "ne", "ge", "gt"};
  static const char* kSeg[] = {"seg+scan",       "segmaxscan", "segminscan",
                               "seg+backscan",   "segcopy",
                               "seg+distribute", "segenumerate"};
  static const char* kReduce[] = {"+reduce", "maxreduce", "minreduce",
                                  "orreduce", "andreduce"};

  const std::size_t ops = 4 + pick(10);
  for (std::size_t s = 0; s < ops; ++s) {
    for (int attempt = 0; attempt < 16; ++attempt) {
      const std::uint64_t kind = pick(19);
      const std::size_t depth = stack.size();
      const std::size_t top = depth ? stack.back() : 0;
      if (kind == 0) {  // load an input register
        static const char* r[] = {"a", "b", "c", "f"};
        emit(std::string("load ") + r[pick(4)]);
        stack.push_back(L);
      } else if (kind == 1) {  // scalar constant
        emit("const 1 " + std::to_string(pick(50)));
        stack.push_back(1);
      } else if (kind == 2) {  // full-length constant / iota
        if (pick(2) == 0) {
          emit("const " + std::to_string(L) + " " + std::to_string(pick(20)));
        } else {
          emit("index " + std::to_string(L));
        }
        stack.push_back(L);
      } else if (kind == 3) {  // unary / scan / enumerate
        if (depth < 1) continue;
        emit(kUnary[pick(std::size(kUnary))]);
      } else if (kind == 4) {  // compatible binary
        if (depth < 2) continue;
        const std::size_t u = stack[depth - 2];
        if (!(top == u || top == 1 || u == 1)) continue;
        emit(kBinary[pick(std::size(kBinary))]);
        stack.pop_back();
        stack.back() = top == 1 ? u : top;
      } else if (kind == 5) {  // small scalar shift
        if (depth < 1) continue;
        emit("const 1 " + std::to_string(pick(5)));
        emit(pick(2) ? "shl" : "shr");
      } else if (kind == 6) {  // safe division
        if (depth < 1) continue;
        if (top == L && L > 0) {
          emit("load d");
          emit(pick(2) ? "div" : "mod");
        } else {
          emit("const 1 7");
          emit(pick(2) ? "div" : "mod");
        }
      } else if (kind == 7) {  // segmented op over the shared flags
        if (depth < 1 || top != L) continue;
        emit("load f");
        emit(kSeg[pick(std::size(kSeg))]);
      } else if (kind == 8) {
        if (depth < 1) continue;
        emit("dup");
        stack.push_back(top);
      } else if (kind == 9) {
        if (depth < 2) continue;
        emit("swap");
        std::swap(stack[depth - 1], stack[depth - 2]);
      } else if (kind == 10) {
        if (depth < 2) continue;
        emit("over");
        stack.push_back(stack[depth - 2]);
      } else if (kind == 11) {
        if (depth < 2) continue;  // keep at least one live value
        emit("pop");
        stack.pop_back();
      } else if (kind == 12) {
        if (depth < 1) continue;
        emit("length");
        stack.push_back(1);
      } else if (kind == 13) {  // store / reload temporaries
        if (depth >= 1 && (temps.empty() || pick(2) == 0)) {
          const std::string name = "t" + std::to_string(next_temp++);
          emit("store " + name);
          temps[name] = top;
          stack.pop_back();
        } else if (!temps.empty()) {
          auto it = temps.begin();
          std::advance(it, pick(temps.size()));
          emit("load " + it->first);
          stack.push_back(it->second);
        } else {
          continue;
        }
      } else if (kind == 14) {  // permute by the shared permutation
        if (depth < 1 || top != L) continue;
        emit("load pm");
        emit("permute");
      } else if (kind == 15) {  // gather by in-range indices
        if (depth < 1 || top != L) continue;
        emit("load ix");
        emit("gather");
      } else if (kind == 16) {  // select over three compatible values
        if (depth < 3) continue;
        const std::size_t l0 = stack[depth - 1], l1 = stack[depth - 2],
                          l2 = stack[depth - 3];
        const std::size_t n = std::max({l0, l1, l2});
        if ((l0 != n && l0 != 1) || (l1 != n && l1 != 1) ||
            (l2 != n && l2 != 1)) {
          continue;
        }
        emit("select");
        stack.pop_back();
        stack.pop_back();
        stack.back() = n;
      } else if (kind == 17) {  // split keeps the length
        if (depth < 1 || top != L) continue;
        emit("load f");
        emit("split");
      } else if (kind == 18) {  // distribute / reduce
        if (pick(2) == 0) {
          emit("const 1 " + std::to_string(pick(100)));
          emit("const 1 " + std::to_string(L));
          emit("distribute");
          stack.push_back(L);
        } else {
          if (depth < 1) continue;
          emit(kReduce[pick(std::size(kReduce))]);
          stack.back() = 1;
        }
      }
      break;
    }
  }
  // Optionally pack the top as the last value-producing op (pack changes
  // the length, so it only appears here, right before its print).
  if (!stack.empty() && stack.back() == L && pick(3) == 0) {
    emit("load f");
    emit("pack");
  }
  while (!stack.empty()) {
    emit("print");
    stack.pop_back();
  }
  emit("halt");
  gp.src = out.str();
  return gp;
}

TEST(PlanAgreement, RandomStraightLinePrograms) {
  plan::Compiler comp;
  for (const std::size_t L : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{1000}}) {
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
      const GenProgram gp = generate(seed, L);
      SCOPED_TRACE("L=" + std::to_string(L) + " seed=" +
                   std::to_string(seed) + "\n" + gp.src);
      // Every generated program must compile fully (one region + halt).
      const auto cp = comp.compile(vm::assemble(gp.src));
      ASSERT_TRUE(cp.has_value());
      EXPECT_GT(cp->compiled_instructions, 0u);
      expect_agree(gp.src, gp.regs);
    }
  }
}

TEST(PlanAgreement, ErrorMessagesMatch) {
  expect_agree("pop\nhalt");                              // stack underflow
  expect_agree("const 2 1\nconst 2 0\ndiv\nhalt");        // division by zero
  expect_agree("const 2 1\nconst 2 0\nmod\nhalt");        // mod by zero
  expect_agree("index 4\nconst 4 0\npermute\nprint\nhalt");  // dup indices
  expect_agree("index 4\nconst 4 9\npermute\nprint\nhalt");  // out of range
  expect_agree("index 4\nconst 4 9\ngather\nprint\nhalt");   // gather bounds
  expect_agree("load nope\nprint\nhalt");                 // missing register
  expect_agree("const 2 1\nconst 3 1\nadd\nprint\nhalt"); // length mismatch
  expect_agree("const 4 1\nconst 3 1\nseg+scan\nprint\nhalt");  // bad flags
  expect_agree("const 4 1\nconst 3 1\nsegcopy\nprint\nhalt");
  expect_agree("const 2 1\nconst 2 2\ndistribute\nprint\nhalt");  // non-scalar
  // Mid-region errors roll the region back and re-raise interpreted, so the
  // prints before the failing op still commit identically.
  expect_agree("index 4\nprint\nconst 2 1\nconst 2 0\ndiv\nprint\nhalt");
}

TEST(PlanAgreement, InstructionBudget) {
  // The budget error names the interpreter's exact pc whether it trips
  // between regions or mid-region.
  const std::string loop = R"(
        const 1 0
        store i
    loop:
        load i
        const 1 1
        add
        store i
        load i
        const 1 100
        lt
        jnz loop
        halt
  )";
  for (const std::size_t budget : {1u, 3u, 7u, 20u, 1000u}) {
    expect_agree(loop, {}, budget);
  }
  expect_agree("index 8\n+scan\nneg\nprint\nhalt", {}, 2);  // mid-region
}

// --- satellite: segmented + select edge cases -------------------------------

TEST(PlanAgreement, SegmentedEdgeCases) {
  const Vec empty{};
  // Empty vectors through every segmented form and select.
  expect_agree("load v\nload f\nsegcopy\nprint\nhalt",
               {{"v", empty}, {"f", empty}});
  expect_agree("load v\nload f\nseg+distribute\nprint\nhalt",
               {{"v", empty}, {"f", empty}});
  expect_agree("load v\nload f\nsegenumerate\nprint\nhalt",
               {{"v", empty}, {"f", empty}});
  expect_agree("load v\nload v\nload v\nselect\nprint\nhalt", {{"v", empty}});
  expect_agree("load v\nload f\nseg+scan\nprint\nhalt",
               {{"v", empty}, {"f", empty}});
  expect_agree("load v\nload f\npack\nprint\nhalt",
               {{"v", empty}, {"f", empty}});
  expect_agree("load v\nload f\nsplit\nprint\nhalt",
               {{"v", empty}, {"f", empty}});

  // Single-element segments: every position opens a segment.
  const Vec v{4, 7, 1, 9, 2};
  const Vec ones{1, 1, 1, 1, 1};
  expect_agree("load v\nload f\nsegcopy\nprint\nhalt",
               {{"v", v}, {"f", ones}});
  expect_agree("load v\nload f\nseg+distribute\nprint\nhalt",
               {{"v", v}, {"f", ones}});
  expect_agree("load v\nload f\nsegenumerate\nprint\nhalt",
               {{"v", v}, {"f", ones}});
  expect_agree("load v\nload f\nseg+scan\nprint\nhalt",
               {{"v", v}, {"f", ones}});

  // One segment spanning the whole vector.
  const Vec head{1, 0, 0, 0, 0};
  expect_agree("load v\nload f\nsegcopy\nprint\nhalt",
               {{"v", v}, {"f", head}});
  expect_agree("load v\nload f\nseg+distribute\nprint\nhalt",
               {{"v", v}, {"f", head}});

  // Scalar broadcast edges for select and binaries.
  const Vec cond{1, 0, 1, 0, 1};
  expect_agree("load c\nconst 1 7\nconst 1 9\nselect\nprint\nhalt",
               {{"c", cond}});
  expect_agree("load c\nload v\nconst 1 0\nselect\nprint\nhalt",
               {{"c", cond}, {"v", v}});
  expect_agree("const 1 1\nconst 1 5\nconst 1 9\nselect\nprint\nhalt");
  expect_agree("const 1 3\nload v\nadd\nprint\nhalt", {{"v", v}});
  expect_agree("load v\nconst 1 3\nsub\nprint\nhalt", {{"v", v}});
  expect_agree("const 1 3\nconst 1 4\nadd\nprint\nhalt");
  // Scalar-vs-empty broadcast.
  expect_agree("const 1 3\nload v\nadd\nprint\nhalt", {{"v", empty}});
  expect_agree("load v\nconst 1 3\nadd\nprint\nhalt", {{"v", empty}});
}

// --- cache contract ---------------------------------------------------------

TEST(PlanCache, MissThenHitSharesOnePlan) {
  plan::Cache cache;
  const auto p1 = vm::assemble("load a\n+scan\nprint\nhalt");
  const auto p2 = vm::assemble("load a\n+scan\nprint\nhalt");
  const auto first = cache.get(p1);
  ASSERT_NE(first, nullptr);
  const auto second = cache.get(p2);  // structurally equal, fresh assembly
  EXPECT_EQ(first.get(), second.get());
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_GT(st.bytes, 0u);
  EXPECT_GT(st.compile_ns, 0u);

  // A different fill constant is a different structure: its own miss.
  cache.get(vm::assemble("load a\nconst 1 5\nadd\nprint\nhalt"));
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(PlanCache, NegativeEntriesRememberDeclines) {
  plan::Cache cache;
  const auto p = vm::assemble("halt");  // all-control: nothing to compile
  EXPECT_EQ(cache.get(p), nullptr);
  EXPECT_EQ(cache.get(p), nullptr);
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, 1u);  // the decline was cached, not re-analysed
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.failures, 0u);
  EXPECT_EQ(st.entries, 1u);
}

TEST(PlanCache, ShapePolymorphicPlanServesEveryLength) {
  plan::Cache cache;
  const auto p = vm::assemble("load a\ndup\n+scan\nadd\nprint\nhalt");
  const auto prog = cache.get(p);
  ASSERT_NE(prog, nullptr);
  exec::Executor ex;
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                              std::size_t{777}}) {
    const Vec a = testutil::random_vector<std::int64_t>(n, 7000 + n);
    machine::Machine mc;
    vm::Interpreter compiled(mc);
    compiled.set_register("a", a);
    plan::execute(compiled, p, *prog, 1u << 22, ex);
    machine::Machine mi;
    vm::Interpreter interpreted(mi);
    interpreted.set_register("a", a);
    {
      HookGuard guard;
      interpreted.run(p);
    }
    EXPECT_EQ(compiled.output(), interpreted.output()) << "n=" << n;
    EXPECT_EQ(mc.stats().steps, mi.stats().steps) << "n=" << n;
  }
  EXPECT_EQ(cache.stats().misses, 1u);  // one plan, every shape
}

TEST(PlanCache, LruEvictionUnderByteBudget) {
  plan::Cache cache;
  cache.set_capacity_bytes(64 * 1024);
  constexpr int kPrograms = 300;
  for (int i = 0; i < kPrograms; ++i) {
    const auto p = vm::assemble("load a\nconst 1 " + std::to_string(i) +
                                "\nadd\n+scan\nprint\nhalt");
    EXPECT_NE(cache.get(p), nullptr);
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.misses, static_cast<std::uint64_t>(kPrograms));
  EXPECT_GT(st.evictions, 0u);
  EXPECT_EQ(st.entries, kPrograms - static_cast<std::size_t>(st.evictions));
  EXPECT_GE(st.entries, 1u);
  // An evicted program recompiles on demand and still works.
  const auto p0 = vm::assemble("load a\nconst 1 0\nadd\n+scan\nprint\nhalt");
  EXPECT_NE(cache.get(p0), nullptr);
}

TEST(PlanCache, ConcurrentGetsCompileOnce) {
  plan::Cache cache;
  std::vector<vm::Program> programs;
  for (int i = 0; i < 8; ++i) {
    programs.push_back(vm::assemble("load a\nconst 1 " + std::to_string(i) +
                                    "\nmul\nmaxscan\nprint\nhalt"));
  }
  constexpr int kThreads = 8, kRounds = 200;
  std::vector<std::thread> workers;
  std::atomic<int> nulls{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        if (cache.get(programs[(t + r) % programs.size()]) == nullptr) {
          nulls.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(nulls.load(), 0);
  const auto st = cache.stats();
  // Compiles happen under the shard lock, so each program compiled once.
  EXPECT_EQ(st.misses, programs.size());
  EXPECT_EQ(st.hits,
            static_cast<std::uint64_t>(kThreads) * kRounds - programs.size());
}

// --- the zero-work dispatch guarantee ---------------------------------------

TEST(PlanDispatch, CacheHitDoesZeroRecordOrFuseWork) {
  plan::Compiler comp;
  const auto p = vm::assemble("load a\ndup\n+scan\nadd\nconst 1 3\nmul\n"
                              "print\nhalt");
  const auto cp = comp.compile(p);
  ASSERT_TRUE(cp.has_value());
  const Vec a = testutil::random_vector<std::int64_t>(4096, 42);
  exec::Executor ex;
  for (int round = 0; round < 3; ++round) {
    machine::Machine m;
    vm::Interpreter interp(m);
    interp.set_register("a", a);
    exec::Stats st;
    plan::execute(interp, p, *cp, 1u << 22, ex, &st);
    // Groups were fused once, at compile time: every dispatch reuses them.
    EXPECT_EQ(st.fuse_runs, 0u) << "round " << round;
    EXPECT_GT(st.plan_reuses, 0u) << "round " << round;
  }
  EXPECT_EQ(ex.total_stats().fuse_runs, 0u);
}

// --- fault injection ---------------------------------------------------------

TEST(PlanFault, CompileFaultFallsBackAndRetries) {
  fault::disarm_all();
  plan::Cache cache;
  const auto p = vm::assemble("load a\nneg\nminscan\nprint\nhalt");
  fault::arm("plan.compile", 1);
  EXPECT_EQ(cache.get(p), nullptr);  // faulted: interpret this dispatch
  EXPECT_EQ(cache.stats().failures, 1u);
  EXPECT_GE(fault::hits("plan.compile"), 1u);
  // The failure was NOT cached as a decline: the next miss retries.
  fault::disarm("plan.compile");
  EXPECT_NE(cache.get(p), nullptr);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(PlanFault, ArmedCompileStillServesTraffic) {
  // End to end through the hook: with every compile faulting, dispatch
  // degrades to pure interpretation — same outputs, no exception escapes.
  fault::disarm_all();
  fault::arm("plan.compile", 1, 1u << 20);
  const std::uint64_t before = fault::hits("plan.compile");
  expect_agree("load a\nmaxscan\nneg\nconst 1 2\nshl\nprint\nhalt",
               {{"a", Vec{3, 1, 4, 1, 5}}});
  if (plan::enabled()) {
    EXPECT_GT(fault::hits("plan.compile"), before);
  }
  fault::disarm_all();
}

// --- named plans through the serve layer -------------------------------------

TEST(PlanServe, NamedPlansServeTraffic) {
  serve::Service svc;
  const auto p = vm::assemble("load a\ndup\n+scan\nadd\nprint\nhalt");
  const bool compiled = svc.register_plan("scan_add", p);
  EXPECT_EQ(compiled, plan::enabled());
  EXPECT_TRUE(svc.has_plan("scan_add"));
  EXPECT_FALSE(svc.has_plan("nope"));

  const Vec a = testutil::random_vector<std::int64_t>(257, 11);
  serve::PlanJob job;
  job.plan = "scan_add";
  job.registers["a"] = a;
  const serve::Result r = svc.submit(std::move(job)).get();
  ASSERT_EQ(r.status, serve::Status::kOk) << r.error;
  ASSERT_EQ(r.outputs.size(), 1u);
  machine::Machine m;
  vm::Interpreter interp(m);
  interp.set_register("a", a);
  {
    HookGuard guard;
    interp.run(p);
  }
  EXPECT_EQ(r.outputs.front(), interp.output().front());
  EXPECT_EQ(r.values, interp.output().back());

  // Unknown names resolve kError — never an exception out of the future.
  serve::PlanJob bad;
  bad.plan = "nope";
  const serve::Result rb = svc.submit(std::move(bad)).get();
  EXPECT_EQ(rb.status, serve::Status::kError);
  EXPECT_NE(rb.error.find("unknown plan"), std::string::npos) << rb.error;

  // A VM error inside the plan fails only that job, with the VM's message.
  serve::PlanJob missing;
  missing.plan = "scan_add";  // no "a" register provided
  const serve::Result rm = svc.submit(std::move(missing)).get();
  EXPECT_EQ(rm.status, serve::Status::kError);

  const serve::Metrics ms = svc.metrics();
  EXPECT_EQ(ms.plan_jobs, 1u);
  EXPECT_EQ(ms.errors, 2u);
  svc.shutdown();
}

TEST(PlanServe, RepeatedPlanTrafficReusesFusedGroups) {
  serve::Service svc;
  svc.register_plan(
      "pipe", vm::assemble("load a\nmaxscan\nconst 1 1\nadd\nprint\nhalt"));
  for (int i = 0; i < 10; ++i) {
    serve::PlanJob job;
    job.plan = "pipe";
    job.registers["a"] =
        testutil::random_vector<std::int64_t>(100 + 64 * i, 30 + i);
    const serve::Result r = svc.submit(std::move(job)).get();
    ASSERT_EQ(r.status, serve::Status::kOk) << r.error;
    EXPECT_EQ(r.values.size(), std::size_t{100} + 64 * i);
  }
  const serve::Metrics ms = svc.metrics();
  EXPECT_EQ(ms.plan_jobs, 10u);
  if (plan::enabled()) {
    // Every dispatch reused the plan's pre-fused groups: no record/fuse work
    // anywhere in the serve path (the acceptance criterion, via exec::Stats).
    EXPECT_EQ(ms.pipeline_stats.fuse_runs, 0u);
    EXPECT_GT(ms.pipeline_stats.plan_reuses, 0u);
  }
  svc.shutdown();
}

TEST(PlanServe, SamePlanJobsCoalesceIntoOneMergedDispatch) {
  // Several jobs naming the same plan inside one batching window run as ONE
  // merged segmented execution (docs/PLAN.md "Coalescing"): plan_coalesced
  // counts the jobs served that way, plan_reuses counts each chain once per
  // merged batch — not once per job — and the outputs are bit-identical to
  // per-job execution.
  serve::Service::Options so;
  so.window_us = 100000;  // 100 ms: all submissions land in one batch
  serve::Service svc(so);
  const auto prog =
      vm::assemble("load a\nload b\nadd\n+scan\nmaxscan\nprint\nhalt");
  svc.register_plan("merge_me", prog);
  const auto compiled = plan::Cache::instance().get(prog);
  const bool can_coalesce =
      compiled != nullptr && plan::coalescable(*compiled);
  EXPECT_EQ(can_coalesce, plan::enabled());

  constexpr std::size_t k = 6;
  std::vector<std::future<serve::Result>> futs;
  std::vector<Vec> as, bs;
  for (std::size_t i = 0; i < k; ++i) {
    as.push_back(testutil::random_vector<std::int64_t>(64 + 32 * i, 70 + i));
    bs.push_back(testutil::random_vector<std::int64_t>(64 + 32 * i, 90 + i));
    serve::PlanJob j;
    j.plan = "merge_me";
    j.registers["a"] = as[i];
    j.registers["b"] = bs[i];
    futs.push_back(svc.submit(std::move(j)));
  }
  for (std::size_t i = 0; i < k; ++i) {
    const serve::Result r = futs[i].get();
    ASSERT_EQ(r.status, serve::Status::kOk) << r.error;
    // Reference: max-scan(+scan(a + b)), both scans exclusive.
    Vec want(as[i].size());
    std::int64_t sum = 0;
    std::int64_t best = std::numeric_limits<std::int64_t>::min();
    for (std::size_t n = 0; n < want.size(); ++n) {
      want[n] = best;
      best = std::max(best, sum);
      sum += as[i][n] + bs[i][n];
    }
    EXPECT_EQ(r.values, want) << "job " << i;
  }
  const serve::Metrics m = svc.metrics();
  EXPECT_EQ(m.plan_jobs, k);
  if (can_coalesce) {
    EXPECT_EQ(m.plan_coalesced, k);
    // ONE merged execution: the plan's chains replayed once for the whole
    // group, not once per job.
    EXPECT_GT(m.pipeline_stats.plan_reuses, 0u);
    EXPECT_LT(m.pipeline_stats.plan_reuses, k);
    EXPECT_EQ(m.pipeline_stats.fuse_runs, 0u);
  }
  svc.shutdown();
}

TEST(PlanServe, CoalescedAndPerJobResultsAgreeOnSegmentedPlans) {
  // A plan with its own segmented scan: the merged form ORs the operand
  // flags with the job boundaries. Run the same jobs through a wide-window
  // (coalesced) and a zero-window (per-job) service and compare bit-exactly.
  const auto prog = vm::assemble("load v\nload f\nseg+scan\nprint\nhalt");
  std::vector<std::map<std::string, Vec>> jobs;
  for (std::size_t i = 0; i < 5; ++i) {
    const std::size_t n = 48 + 16 * i;
    std::map<std::string, Vec> regs;
    regs["v"] = testutil::random_vector<std::int64_t>(n, 7 + i);
    Vec flags(n, 0);
    for (std::size_t at = (i % 3); at < n; at += 5 + i) flags[at] = 1;
    regs["f"] = flags;
    jobs.push_back(std::move(regs));
  }
  auto run = [&](std::uint64_t window_us) {
    serve::Service::Options so;
    so.window_us = window_us;
    serve::Service svc(so);
    svc.register_plan("seg", prog);
    std::vector<std::future<serve::Result>> futs;
    for (const auto& regs : jobs) {
      serve::PlanJob j;
      j.plan = "seg";
      j.registers = regs;
      futs.push_back(svc.submit(std::move(j)));
    }
    std::vector<Vec> out;
    for (auto& f : futs) {
      const serve::Result r = f.get();
      EXPECT_EQ(r.status, serve::Status::kOk) << r.error;
      out.push_back(r.values);
    }
    const serve::Metrics m = svc.metrics();
    svc.shutdown();
    if (window_us > 0 && plan::enabled()) {
      EXPECT_EQ(m.plan_coalesced, jobs.size());
    }
    return out;
  };
  const auto coalesced = run(100000);
  const auto per_job = run(0);
  EXPECT_EQ(coalesced, per_job);
}

TEST(PlanServe, UncoalescablePlansFallBackPerJob) {
  // A literal operand (`const`) has one compile-time length, not one per
  // job, so the plan must decline coalescing and still serve correctly.
  serve::Service::Options so;
  so.window_us = 50000;
  serve::Service svc(so);
  const auto prog = vm::assemble("load a\nconst 1 1\nadd\nprint\nhalt");
  svc.register_plan("plus1", prog);
  const auto compiled = plan::Cache::instance().get(prog);
  if (compiled != nullptr) {
    EXPECT_FALSE(plan::coalescable(*compiled));
  }
  std::vector<std::future<serve::Result>> futs;
  for (int i = 0; i < 3; ++i) {
    serve::PlanJob j;
    j.plan = "plus1";
    j.registers["a"] = Vec{10 + i, 20 + i};
    futs.push_back(svc.submit(std::move(j)));
  }
  for (int i = 0; i < 3; ++i) {
    const serve::Result r = futs[i].get();
    ASSERT_EQ(r.status, serve::Status::kOk) << r.error;
    EXPECT_EQ(r.values, (Vec{11 + i, 21 + i}));
  }
  EXPECT_EQ(svc.metrics().plan_coalesced, 0u);
  svc.shutdown();
}

TEST(PlanServe, CoalescedGroupWithMissingRegisterFallsBackWithExactErrors) {
  // One job of the group lacks a register: the merged run bails wholesale
  // and the per-job fallback gives the good jobs their results and the bad
  // job its exact interpreter error.
  serve::Service::Options so;
  so.window_us = 50000;
  serve::Service svc(so);
  svc.register_plan("sum2", vm::assemble("load a\n+scan\nprint\nhalt"));
  std::vector<std::future<serve::Result>> futs;
  for (int i = 0; i < 3; ++i) {
    serve::PlanJob j;
    j.plan = "sum2";
    if (i != 1) j.registers["a"] = Vec{1, 2, 3};
    futs.push_back(svc.submit(std::move(j)));
  }
  const serve::Result good0 = futs[0].get();
  const serve::Result bad = futs[1].get();
  const serve::Result good2 = futs[2].get();
  ASSERT_EQ(good0.status, serve::Status::kOk) << good0.error;
  EXPECT_EQ(good0.values, (Vec{0, 1, 3}));
  EXPECT_EQ(bad.status, serve::Status::kError);
  ASSERT_EQ(good2.status, serve::Status::kOk) << good2.error;
  EXPECT_EQ(good2.values, (Vec{0, 1, 3}));
  EXPECT_EQ(svc.metrics().plan_coalesced, 0u);
  svc.shutdown();
}

TEST(PlanServe, PlanJobsMixWithScanBatches) {
  serve::Service svc;
  svc.register_plan("sum", vm::assemble("load v\n+reduce\nprint\nhalt"));
  const Vec v{1, 2, 3, 4, 5};
  serve::ScanJob scan;
  scan.data = {10, 20, 30};
  auto scan_fut = svc.submit(std::move(scan));
  serve::PlanJob pj;
  pj.plan = "sum";
  pj.registers["v"] = v;
  auto plan_fut = svc.submit(std::move(pj));
  const serve::Result rs = scan_fut.get();
  const serve::Result rp = plan_fut.get();
  ASSERT_EQ(rs.status, serve::Status::kOk) << rs.error;
  EXPECT_EQ(rs.values, (std::vector<serve::Value>{0, 10, 30}));
  ASSERT_EQ(rp.status, serve::Status::kOk) << rp.error;
  EXPECT_EQ(rp.values, (std::vector<serve::Value>{15}));
  svc.shutdown();
}

// --- environment -------------------------------------------------------------

TEST(PlanEnv, EnabledMatchesEnvironment) {
  EXPECT_EQ(plan::enabled(),
            sanitize_flag_spec(std::getenv("SCANPRIM_PLAN"), true));
}

}  // namespace
}  // namespace scanprim
