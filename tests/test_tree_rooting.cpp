// Parallel tree rooting via the Euler-tour technique on the segmented graph
// representation.
#include "src/graph/tree_rooting.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::graph {
namespace {

// Serial re-rooting reference (BFS from the chosen root).
struct SerialLabels {
  std::vector<std::size_t> parent, depth, subtree;
};

SerialLabels serial_root(std::size_t n,
                         const std::vector<WeightedEdge>& edges,
                         std::size_t root) {
  std::vector<std::vector<std::size_t>> adj(n);
  for (const auto& e : edges) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  SerialLabels s;
  s.parent.assign(n, ~std::size_t{0});
  s.depth.assign(n, 0);
  s.subtree.assign(n, 1);
  std::vector<std::size_t> order{root};
  s.parent[root] = root;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t v = order[i];
    for (const std::size_t w : adj[v]) {
      if (s.parent[w] == ~std::size_t{0} && w != root) {
        s.parent[w] = v;
        s.depth[w] = s.depth[v] + 1;
        order.push_back(w);
      }
    }
  }
  for (std::size_t i = order.size(); i-- > 1;) {
    s.subtree[s.parent[order[i]]] += s.subtree[order[i]];
  }
  return s;
}

std::vector<WeightedEdge> random_tree(std::size_t n, std::uint64_t seed) {
  auto g = testutil::rng(seed);
  std::vector<WeightedEdge> edges;
  for (std::size_t v = 1; v < n; ++v) edges.push_back({g() % v, v, 1.0});
  return edges;
}

class RootSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RootSweep, MatchesSerialReRooting) {
  machine::Machine m;
  const std::size_t n = GetParam();
  const auto edges = random_tree(n, 701 + n);
  const SegGraph tree = build_seg_graph(m, n, edges);
  const RootedLabels lbl = root_tree(m, tree, n);
  const SerialLabels ref = serial_root(n, edges, lbl.root);
  EXPECT_EQ(lbl.parent, ref.parent);
  EXPECT_EQ(lbl.depth, ref.depth);
  EXPECT_EQ(lbl.subtree, ref.subtree);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RootSweep,
                         ::testing::Values(2, 3, 4, 10, 100, 1000, 20000));

TEST(TreeRooting, PreorderIsADfsNumbering) {
  machine::Machine m;
  const std::size_t n = 500;
  const auto edges = random_tree(n, 702);
  const SegGraph tree = build_seg_graph(m, n, edges);
  const RootedLabels lbl = root_tree(m, tree, n);
  EXPECT_EQ(lbl.preorder[lbl.root], 0u);
  for (std::size_t v = 0; v < n; ++v) {
    ASSERT_EQ(lbl.by_preorder[lbl.preorder[v]], v);
    if (v == lbl.root) continue;
    const std::size_t p = lbl.parent[v];
    // A child's preorder lies inside its parent's subtree interval.
    ASSERT_GT(lbl.preorder[v], lbl.preorder[p]);
    ASSERT_LT(lbl.preorder[v], lbl.preorder[p] + lbl.subtree[p]);
    // And its own subtree interval nests within the parent's.
    ASSERT_LE(lbl.preorder[v] + lbl.subtree[v],
              lbl.preorder[p] + lbl.subtree[p]);
  }
}

TEST(TreeRooting, PathAndStar) {
  machine::Machine m;
  // Path 0-1-2-...-9.
  std::vector<WeightedEdge> path;
  for (std::size_t v = 1; v < 10; ++v) path.push_back({v - 1, v, 1.0});
  const SegGraph pg = build_seg_graph(m, 10, path);
  const RootedLabels pl = root_tree(m, pg, 10);
  EXPECT_EQ(pl.subtree[pl.root], 10u);
  // The root is the vertex owning slot 0 — vertex 0, an end of the path —
  // so depths run 0..9.
  EXPECT_EQ(pl.root, 0u);
  for (std::size_t v = 0; v < 10; ++v) ASSERT_EQ(pl.depth[v], v);
  // Star centered at 0.
  std::vector<WeightedEdge> star;
  for (std::size_t v = 1; v < 10; ++v) star.push_back({0, v, 1.0});
  const SegGraph sg = build_seg_graph(m, 10, star);
  const RootedLabels sl = root_tree(m, sg, 10);
  for (std::size_t v = 0; v < 10; ++v) {
    if (v != sl.root) {
      EXPECT_LE(sl.depth[v], 2u);
      EXPECT_GE(sl.subtree[sl.root], sl.subtree[v]);
    }
  }
}

TEST(TreeRooting, SingleVertex) {
  machine::Machine m;
  const SegGraph empty = build_seg_graph(m, 1, {});
  const RootedLabels lbl = root_tree(m, empty, 1);
  EXPECT_EQ(lbl.root, 0u);
  EXPECT_EQ(lbl.subtree, std::vector<std::size_t>{1});
}

TEST(TreeRooting, RejectsNonTrees) {
  machine::Machine m;
  // A triangle has n edges, not n-1.
  const std::vector<WeightedEdge> tri{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}};
  const SegGraph g = build_seg_graph(m, 3, tri);
  EXPECT_THROW(root_tree(m, g, 3), std::invalid_argument);
}

}  // namespace
}  // namespace scanprim::graph
