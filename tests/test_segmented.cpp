// Segmented scans (§2.3, Figure 4) against references, across sizes, flag
// densities, and operators.
#include "src/core/segmented.hpp"

#include <gtest/gtest.h>

#include <random>

#include "src/core/primitives.hpp"
#include "src/core/runtime.hpp"
#include "test_util.hpp"

namespace scanprim {
namespace {

struct SegCase {
  std::size_t n;
  std::size_t avg_len;
};

class SegSweep : public ::testing::TestWithParam<SegCase> {};

TEST_P(SegSweep, SegPlusScanMatchesReference) {
  const auto [n, len] = GetParam();
  const auto in = testutil::random_vector<long>(n, 21);
  const Flags f = testutil::random_flags(n, 22, len);
  std::vector<long> out(n);
  seg_exclusive_scan(std::span<const long>(in), FlagsView(f),
                     std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out, testutil::ref_seg_exclusive_scan(std::span<const long>(in),
                                                  FlagsView(f), Plus<long>{}));
}

TEST_P(SegSweep, SegMaxScanMatchesReference) {
  const auto [n, len] = GetParam();
  const auto in = testutil::random_vector<long>(n, 23);
  const Flags f = testutil::random_flags(n, 24, len);
  std::vector<long> out(n);
  seg_exclusive_scan(std::span<const long>(in), FlagsView(f),
                     std::span<long>(out), Max<long>{});
  EXPECT_EQ(out, testutil::ref_seg_exclusive_scan(std::span<const long>(in),
                                                  FlagsView(f), Max<long>{}));
}

TEST_P(SegSweep, SegInclusiveMatchesReference) {
  const auto [n, len] = GetParam();
  const auto in = testutil::random_vector<long>(n, 25);
  const Flags f = testutil::random_flags(n, 26, len);
  std::vector<long> out(n);
  seg_inclusive_scan(std::span<const long>(in), FlagsView(f),
                     std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out, testutil::ref_seg_inclusive_scan(std::span<const long>(in),
                                                  FlagsView(f), Plus<long>{}));
}

TEST_P(SegSweep, SegBackwardExclusiveMatchesReference) {
  const auto [n, len] = GetParam();
  const auto in = testutil::random_vector<long>(n, 27);
  const Flags f = testutil::random_flags(n, 28, len);
  std::vector<long> out(n);
  seg_backward_exclusive_scan(std::span<const long>(in), FlagsView(f),
                              std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out, testutil::ref_seg_backward_exclusive_scan(
                     std::span<const long>(in), FlagsView(f), Plus<long>{}));
}

TEST_P(SegSweep, SegBackwardInclusiveMatchesReference) {
  const auto [n, len] = GetParam();
  const auto in = testutil::random_vector<long>(n, 29);
  const Flags f = testutil::random_flags(n, 30, len);
  std::vector<long> out(n);
  seg_backward_inclusive_scan(std::span<const long>(in), FlagsView(f),
                              std::span<long>(out), Min<long>{});
  EXPECT_EQ(out, testutil::ref_seg_backward_inclusive_scan(
                     std::span<const long>(in), FlagsView(f), Min<long>{}));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SegSweep,
    ::testing::Values(SegCase{0, 5}, SegCase{1, 5}, SegCase{7, 3},
                      SegCase{100, 4}, SegCase{4095, 2}, SegCase{4096, 9},
                      SegCase{4097, 1000}, SegCase{50000, 3},
                      SegCase{50000, 5000}, SegCase{100001, 17}));

TEST(Segmented, PaperFigure4) {
  // A  = [5 1 3 4 3 9 2 6], Sb = [T F T F F F T F]
  const std::vector<int> a{5, 1, 3, 4, 3, 9, 2, 6};
  const Flags sb{1, 0, 1, 0, 0, 0, 1, 0};
  EXPECT_EQ(seg_plus_scan(std::span<const int>(a), FlagsView(sb)),
            (std::vector<int>{0, 5, 0, 3, 7, 10, 0, 2}));
  const auto mx = seg_max_scan(std::span<const int>(a), FlagsView(sb));
  // The paper prints the identity as 0 (its values are non-negative).
  const int id = std::numeric_limits<int>::lowest();
  EXPECT_EQ(mx, (std::vector<int>{id, 5, id, 3, 4, 4, id, 2}));
}

TEST(Segmented, SingleSegmentEqualsUnsegmented) {
  const auto in = testutil::random_vector<long>(30000, 31);
  Flags f(in.size(), 0);
  f[0] = 1;
  std::vector<long> seg(in.size()), plain(in.size());
  seg_exclusive_scan(std::span<const long>(in), FlagsView(f),
                     std::span<long>(seg), Plus<long>{});
  exclusive_scan(std::span<const long>(in), std::span<long>(plain),
                 Plus<long>{});
  EXPECT_EQ(seg, plain);
}

TEST(Segmented, AllFlagsMakesEverySegmentAUnit) {
  const auto in = testutil::random_vector<long>(10000, 32);
  const Flags f(in.size(), 1);
  std::vector<long> out(in.size());
  seg_exclusive_scan(std::span<const long>(in), FlagsView(f),
                     std::span<long>(out), Plus<long>{});
  for (long v : out) ASSERT_EQ(v, 0);
  seg_inclusive_scan(std::span<const long>(in), FlagsView(f),
                     std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out, in);
}

// --- degenerate segment shapes under the chained engine ----------------------
// The chained engine's flagged-tile short-circuit (a tile containing any flag
// publishes kPrefix immediately) is most stressed when flags are everywhere
// or exactly at tile seams. Sweep the five paper operators, both directions,
// both flavours, over shapes built from zero-length and single-element
// segments, at sizes that put several tiles in flight.

class ChainedEngineGuard {
 public:
  ChainedEngineGuard() : prev_(scan_engine()) {
    set_scan_engine(ScanEngine::kChained);
  }
  ~ChainedEngineGuard() { set_scan_engine(prev_); }

 private:
  ScanEngine prev_;
};

template <class Op>
void expect_all_directions_match(std::span<const long> in, FlagsView f,
                                 Op op) {
  std::vector<long> out(in.size());
  seg_exclusive_scan(in, f, std::span<long>(out), op);
  ASSERT_EQ(out, testutil::ref_seg_exclusive_scan(in, f, op));
  seg_inclusive_scan(in, f, std::span<long>(out), op);
  ASSERT_EQ(out, testutil::ref_seg_inclusive_scan(in, f, op));
  seg_backward_exclusive_scan(in, f, std::span<long>(out), op);
  ASSERT_EQ(out, testutil::ref_seg_backward_exclusive_scan(in, f, op));
  seg_backward_inclusive_scan(in, f, std::span<long>(out), op);
  ASSERT_EQ(out, testutil::ref_seg_backward_inclusive_scan(in, f, op));
}

void expect_all_ops_match(std::span<const long> in, FlagsView f) {
  expect_all_directions_match(in, f, Plus<long>{});
  expect_all_directions_match(in, f, Max<long>{});
  expect_all_directions_match(in, f, Min<long>{});
  expect_all_directions_match(in, f, Or<long>{});
  expect_all_directions_match(in, f, And<long>{});
}

class DegenerateSegments : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DegenerateSegments, AllSingleElementSegments) {
  ChainedEngineGuard g;
  const std::size_t n = GetParam();
  const auto in = testutil::random_vector<long>(n, 41, 2);
  const Flags f(n, 1);  // every element its own segment
  expect_all_ops_match(std::span<const long>(in), FlagsView(f));
}

TEST_P(DegenerateSegments, SingleElementSegmentsAtTheEnds) {
  ChainedEngineGuard g;
  const std::size_t n = GetParam();
  const auto in = testutil::random_vector<long>(n, 42, 2);
  Flags f(n, 0);
  // A single-element segment at each end (and one just past the first tile
  // seam), the rest of the vector one long middle segment.
  f[0] = 1;
  f[1] = 1;
  f[n - 1] = 1;
  if (n > 4097) f[4097] = 1;
  expect_all_ops_match(std::span<const long>(in), FlagsView(f));
}

TEST_P(DegenerateSegments, ZeroLengthSegmentsVanishFromAllocation) {
  ChainedEngineGuard g;
  const std::size_t n = GetParam();
  // Segment sizes with zero-length requests interleaved: allocate() writes
  // no flag for them, so they must not perturb their neighbours' scans.
  std::vector<std::size_t> sizes;
  std::size_t total = 0;
  std::mt19937_64 gen(43);
  while (total < n) {
    const std::size_t s = gen() % 4 == 0 ? 0 : 1 + gen() % 9;
    sizes.push_back(s);
    total += s;
  }
  const Allocation a = allocate(std::span<const std::size_t>(sizes));
  ASSERT_EQ(a.total, total);
  const auto in = testutil::random_vector<long>(total, 44, 2);
  expect_all_ops_match(std::span<const long>(in), FlagsView(a.segment_flags));
}

INSTANTIATE_TEST_SUITE_P(Shapes, DegenerateSegments,
                         ::testing::Values(std::size_t{2}, std::size_t{4096},
                                           std::size_t{4097},
                                           std::size_t{12289},
                                           std::size_t{40000}));

TEST(Segmented, InPlaceAliasingIsSupported) {
  auto v = testutil::random_vector<long>(30000, 33);
  const Flags f = testutil::random_flags(v.size(), 34, 11);
  const auto expect = testutil::ref_seg_exclusive_scan(std::span<const long>(v),
                                                       FlagsView(f), Plus<long>{});
  seg_exclusive_scan(std::span<const long>(v), FlagsView(f), std::span<long>(v),
                     Plus<long>{});
  EXPECT_EQ(v, expect);
}

// --- scatter-gather job scans (batch::seg_scan_jobs) -------------------------
// The serve batcher's entry point: a list of independent jobs, each a
// caller-owned buffer with its own operator/flavour/flags, scanned in place
// as one logical segmented mega-scan. The serial pass and the chained
// dispatch must agree with a direct per-job reference — including when tiles
// split jobs (one huge job) and when jobs split tiles (thousands of tiny
// jobs), with zero-length jobs interleaved.

struct OwnedJob {
  std::vector<batch::Value> data;
  std::vector<std::uint8_t> flags;  // empty = the job is one segment
  batch::Op op = batch::Op::kPlus;
  bool inclusive = false;
};

std::vector<batch::Value> job_reference(const OwnedJob& j, bool backward) {
  const std::size_t n = j.data.size();
  std::vector<batch::Value> out(n);
  batch::Value acc = batch::op_identity(j.op);
  if (!backward) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!j.flags.empty() && j.flags[i]) acc = batch::op_identity(j.op);
      if (j.inclusive) {
        acc = batch::op_apply(j.op, acc, j.data[i]);
        out[i] = acc;
      } else {
        out[i] = acc;
        acc = batch::op_apply(j.op, acc, j.data[i]);
      }
    }
  } else {
    for (std::size_t i = n; i-- > 0;) {
      if (j.inclusive) {
        acc = batch::op_apply(j.op, acc, j.data[i]);
        out[i] = acc;
      } else {
        out[i] = acc;
        acc = batch::op_apply(j.op, acc, j.data[i]);
      }
      if (!j.flags.empty() && j.flags[i]) acc = batch::op_identity(j.op);
    }
  }
  return out;
}

OwnedJob random_owned_job(std::mt19937_64& g, std::size_t n) {
  OwnedJob j;
  j.data.resize(n);
  for (auto& v : j.data) v = static_cast<batch::Value>(g() % 100);
  j.op = static_cast<batch::Op>(g() % batch::kOpCount);
  j.inclusive = (g() & 1) != 0;
  if ((g() & 1) != 0 && n > 0) {
    j.flags.assign(n, 0);
    for (auto& f : j.flags) f = g() % 6 == 0 ? 1 : 0;
  }
  return j;
}

void expect_jobs_match(const std::vector<OwnedJob>& jobs, bool backward,
                       batch::JobsMode mode) {
  std::vector<OwnedJob> work = jobs;
  std::vector<batch::JobSlice> slices;
  for (OwnedJob& j : work) {
    batch::JobSlice s;
    s.data = j.data.data();
    s.flags = j.flags.empty() ? nullptr : j.flags.data();
    s.n = j.data.size();
    s.op = j.op;
    s.inclusive = j.inclusive;
    slices.push_back(s);
  }
  batch::seg_scan_jobs(slices, backward, nullptr, mode);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(work[i].data, job_reference(jobs[i], backward))
        << "job " << i << " backward=" << backward
        << " mode=" << static_cast<int>(mode);
  }
}

void expect_jobs_match_all_modes(const std::vector<OwnedJob>& jobs) {
  for (const bool backward : {false, true}) {
    for (const batch::JobsMode mode :
         {batch::JobsMode::kSerial, batch::JobsMode::kForceParallel,
          batch::JobsMode::kAuto}) {
      expect_jobs_match(jobs, backward, mode);
    }
  }
}

TEST(SegScanJobs, MixedSizesOpsAndFlavoursMatchPerJobReferences) {
  std::mt19937_64 g(51);
  std::vector<OwnedJob> jobs;
  // Tile-seam sizes, zero-length jobs, and a random tail of small ones.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{4095}, std::size_t{4096},
                              std::size_t{4097}, std::size_t{9000},
                              std::size_t{0}}) {
    jobs.push_back(random_owned_job(g, n));
  }
  for (int i = 0; i < 40; ++i) jobs.push_back(random_owned_job(g, g() % 200));
  expect_jobs_match_all_modes(jobs);
}

TEST(SegScanJobs, ThousandsOfTinyJobsSplitEveryTile) {
  // Far more jobs than tiles: each chained tile spans many whole jobs, so
  // the piece walk's job binary search and zero-length skipping get no rest.
  std::mt19937_64 g(52);
  std::vector<OwnedJob> jobs;
  for (int i = 0; i < 3000; ++i) {
    jobs.push_back(random_owned_job(g, g() % 4));  // sizes 0..3
  }
  expect_jobs_match_all_modes(jobs);
}

TEST(SegScanJobs, OneJobSpansManyTiles) {
  // The inverse shape: one 40000-element segmented job split across ~10
  // tiles (carries must flow through the lookback within the job), flanked
  // by small neighbours of different operators.
  std::mt19937_64 g(53);
  std::vector<OwnedJob> jobs;
  jobs.push_back(random_owned_job(g, 17));
  OwnedJob big;
  big.data.resize(40000);
  for (auto& v : big.data) v = static_cast<batch::Value>(g() % 100);
  big.op = batch::Op::kPlus;
  big.flags.assign(big.data.size(), 0);
  for (auto& f : big.flags) f = g() % 4096 == 0 ? 1 : 0;
  jobs.push_back(big);
  big.op = batch::Op::kMax;
  big.inclusive = true;
  big.flags.clear();  // one 40000-element segment: pure cross-tile carry
  jobs.push_back(big);
  jobs.push_back(random_owned_job(g, 5));
  expect_jobs_match_all_modes(jobs);
}

}  // namespace
}  // namespace scanprim
