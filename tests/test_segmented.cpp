// Segmented scans (§2.3, Figure 4) against references, across sizes, flag
// densities, and operators.
#include "src/core/segmented.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim {
namespace {

struct SegCase {
  std::size_t n;
  std::size_t avg_len;
};

class SegSweep : public ::testing::TestWithParam<SegCase> {};

TEST_P(SegSweep, SegPlusScanMatchesReference) {
  const auto [n, len] = GetParam();
  const auto in = testutil::random_vector<long>(n, 21);
  const Flags f = testutil::random_flags(n, 22, len);
  std::vector<long> out(n);
  seg_exclusive_scan(std::span<const long>(in), FlagsView(f),
                     std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out, testutil::ref_seg_exclusive_scan(std::span<const long>(in),
                                                  FlagsView(f), Plus<long>{}));
}

TEST_P(SegSweep, SegMaxScanMatchesReference) {
  const auto [n, len] = GetParam();
  const auto in = testutil::random_vector<long>(n, 23);
  const Flags f = testutil::random_flags(n, 24, len);
  std::vector<long> out(n);
  seg_exclusive_scan(std::span<const long>(in), FlagsView(f),
                     std::span<long>(out), Max<long>{});
  EXPECT_EQ(out, testutil::ref_seg_exclusive_scan(std::span<const long>(in),
                                                  FlagsView(f), Max<long>{}));
}

TEST_P(SegSweep, SegInclusiveMatchesReference) {
  const auto [n, len] = GetParam();
  const auto in = testutil::random_vector<long>(n, 25);
  const Flags f = testutil::random_flags(n, 26, len);
  std::vector<long> out(n);
  seg_inclusive_scan(std::span<const long>(in), FlagsView(f),
                     std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out, testutil::ref_seg_inclusive_scan(std::span<const long>(in),
                                                  FlagsView(f), Plus<long>{}));
}

TEST_P(SegSweep, SegBackwardExclusiveMatchesReference) {
  const auto [n, len] = GetParam();
  const auto in = testutil::random_vector<long>(n, 27);
  const Flags f = testutil::random_flags(n, 28, len);
  std::vector<long> out(n);
  seg_backward_exclusive_scan(std::span<const long>(in), FlagsView(f),
                              std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out, testutil::ref_seg_backward_exclusive_scan(
                     std::span<const long>(in), FlagsView(f), Plus<long>{}));
}

TEST_P(SegSweep, SegBackwardInclusiveMatchesReference) {
  const auto [n, len] = GetParam();
  const auto in = testutil::random_vector<long>(n, 29);
  const Flags f = testutil::random_flags(n, 30, len);
  std::vector<long> out(n);
  seg_backward_inclusive_scan(std::span<const long>(in), FlagsView(f),
                              std::span<long>(out), Min<long>{});
  EXPECT_EQ(out, testutil::ref_seg_backward_inclusive_scan(
                     std::span<const long>(in), FlagsView(f), Min<long>{}));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SegSweep,
    ::testing::Values(SegCase{0, 5}, SegCase{1, 5}, SegCase{7, 3},
                      SegCase{100, 4}, SegCase{4095, 2}, SegCase{4096, 9},
                      SegCase{4097, 1000}, SegCase{50000, 3},
                      SegCase{50000, 5000}, SegCase{100001, 17}));

TEST(Segmented, PaperFigure4) {
  // A  = [5 1 3 4 3 9 2 6], Sb = [T F T F F F T F]
  const std::vector<int> a{5, 1, 3, 4, 3, 9, 2, 6};
  const Flags sb{1, 0, 1, 0, 0, 0, 1, 0};
  EXPECT_EQ(seg_plus_scan(std::span<const int>(a), FlagsView(sb)),
            (std::vector<int>{0, 5, 0, 3, 7, 10, 0, 2}));
  const auto mx = seg_max_scan(std::span<const int>(a), FlagsView(sb));
  // The paper prints the identity as 0 (its values are non-negative).
  const int id = std::numeric_limits<int>::lowest();
  EXPECT_EQ(mx, (std::vector<int>{id, 5, id, 3, 4, 4, id, 2}));
}

TEST(Segmented, SingleSegmentEqualsUnsegmented) {
  const auto in = testutil::random_vector<long>(30000, 31);
  Flags f(in.size(), 0);
  f[0] = 1;
  std::vector<long> seg(in.size()), plain(in.size());
  seg_exclusive_scan(std::span<const long>(in), FlagsView(f),
                     std::span<long>(seg), Plus<long>{});
  exclusive_scan(std::span<const long>(in), std::span<long>(plain),
                 Plus<long>{});
  EXPECT_EQ(seg, plain);
}

TEST(Segmented, AllFlagsMakesEverySegmentAUnit) {
  const auto in = testutil::random_vector<long>(10000, 32);
  const Flags f(in.size(), 1);
  std::vector<long> out(in.size());
  seg_exclusive_scan(std::span<const long>(in), FlagsView(f),
                     std::span<long>(out), Plus<long>{});
  for (long v : out) ASSERT_EQ(v, 0);
  seg_inclusive_scan(std::span<const long>(in), FlagsView(f),
                     std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out, in);
}

TEST(Segmented, InPlaceAliasingIsSupported) {
  auto v = testutil::random_vector<long>(30000, 33);
  const Flags f = testutil::random_flags(v.size(), 34, 11);
  const auto expect = testutil::ref_seg_exclusive_scan(std::span<const long>(v),
                                                       FlagsView(f), Plus<long>{});
  seg_exclusive_scan(std::span<const long>(v), FlagsView(f), std::span<long>(v),
                     Plus<long>{});
  EXPECT_EQ(v, expect);
}

}  // namespace
}  // namespace scanprim
