// Golden tests: the worked examples printed in the paper, reproduced
// verbatim. Each test names the figure or section it comes from.
#include <gtest/gtest.h>

#include "src/scanprim.hpp"

namespace scanprim {
namespace {

machine::Machine& scan_machine() {
  static machine::Machine m(machine::Model::Scan);
  return m;
}

TEST(PaperFigures, Section21VectorAddition) {
  // A + B with A = [5 1 3 4 3 9 2 6], B = [2 5 3 8 1 3 6 2].
  const std::vector<int> a{5, 1, 3, 4, 3, 9, 2, 6};
  const std::vector<int> b{2, 5, 3, 8, 1, 3, 6, 2};
  const auto c = zipped<int>(std::span<const int>(a), std::span<const int>(b),
                             [](int x, int y) { return x + y; });
  EXPECT_EQ(c, (std::vector<int>{7, 6, 6, 12, 4, 12, 8, 8}));
}

TEST(PaperFigures, Section21PlusScan) {
  const std::vector<int> a{2, 1, 2, 3, 5, 8, 13, 21};
  EXPECT_EQ(plus_scan(std::span<const int>(a)),
            (std::vector<int>{0, 2, 3, 5, 8, 13, 21, 34}));
}

TEST(PaperFigures, Section21Permute) {
  const std::vector<char> a{'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'};
  const std::vector<std::size_t> index{2, 5, 4, 3, 1, 6, 0, 7};
  EXPECT_EQ(permuted(std::span<const char>(a),
                     std::span<const std::size_t>(index)),
            (std::vector<char>{'g', 'e', 'a', 'd', 'c', 'b', 'f', 'h'}));
}

TEST(PaperFigures, Figure1Enumerate) {
  const Flags flag{1, 0, 0, 1, 0, 1, 1, 0};
  EXPECT_EQ(enumerate(FlagsView(flag)),
            (std::vector<std::size_t>{0, 1, 1, 1, 2, 2, 3, 4}));
}

TEST(PaperFigures, Figure1CopyAndDistribute) {
  const std::vector<int> a{5, 1, 3, 4, 3, 9, 2, 6};
  EXPECT_EQ(copy(std::span<const int>(a)), std::vector<int>(8, 5));
  const std::vector<int> b{1, 1, 2, 1, 1, 2, 1, 1};
  EXPECT_EQ(distribute(std::span<const int>(b), Plus<int>{}),
            std::vector<int>(8, 10));
}

TEST(PaperFigures, Figure2SplitRadixSortTrace) {
  machine::Machine m(machine::Model::Scan);
  // A = [5 7 3 1 4 2 7 2], three-bit keys.
  std::vector<std::uint64_t> a{5, 7, 3, 1, 4, 2, 7, 2};
  const auto bit_flags = [&](const std::vector<std::uint64_t>& v, unsigned bit) {
    Flags f(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) f[i] = (v[i] >> bit) & 1;
    return f;
  };
  a = m.split(std::span<const std::uint64_t>(a),
              FlagsView(bit_flags(a, 0)));
  EXPECT_EQ(a, (std::vector<std::uint64_t>{4, 2, 2, 5, 7, 3, 1, 7}));
  a = m.split(std::span<const std::uint64_t>(a),
              FlagsView(bit_flags(a, 1)));
  EXPECT_EQ(a, (std::vector<std::uint64_t>{4, 5, 1, 2, 2, 7, 3, 7}));
  a = m.split(std::span<const std::uint64_t>(a),
              FlagsView(bit_flags(a, 2)));
  EXPECT_EQ(a, (std::vector<std::uint64_t>{1, 2, 2, 3, 4, 5, 7, 7}));
}

TEST(PaperFigures, Figure3Split) {
  const std::vector<int> a{5, 7, 3, 1, 4, 2, 7, 2};
  const Flags flags{1, 1, 1, 1, 0, 0, 1, 0};
  const Flags not_flags{0, 0, 0, 0, 1, 1, 0, 1};
  EXPECT_EQ(enumerate(FlagsView(not_flags)),
            (std::vector<std::size_t>{0, 0, 0, 0, 0, 1, 2, 2}));
  // I-up = n - back-enumerate(Flags) - 1 = [3 4 5 6 6 6 7 7].
  const auto be = back_enumerate(FlagsView(flags));
  std::vector<std::size_t> iup(8);
  for (std::size_t i = 0; i < 8; ++i) iup[i] = 8 - be[i] - 1;
  EXPECT_EQ(iup, (std::vector<std::size_t>{3, 4, 5, 6, 6, 6, 7, 7}));
  EXPECT_EQ(split_index(FlagsView(flags)),
            (std::vector<std::size_t>{3, 4, 5, 6, 0, 1, 7, 2}));
  EXPECT_EQ(split(std::span<const int>(a), FlagsView(flags)),
            (std::vector<int>{4, 2, 2, 5, 7, 3, 1, 7}));
}

TEST(PaperFigures, Figure4SegmentedScans) {
  const std::vector<int> a{5, 1, 3, 4, 3, 9, 2, 6};
  const Flags sb{1, 0, 1, 0, 0, 0, 1, 0};
  EXPECT_EQ(seg_plus_scan(std::span<const int>(a), FlagsView(sb)),
            (std::vector<int>{0, 5, 0, 3, 7, 10, 0, 2}));
}

TEST(PaperFigures, Figure5QuicksortFirstIteration) {
  machine::Machine& m = scan_machine();
  // Key = [6.4 9.2 3.4 1.6 8.7 4.1 9.2 3.4], pivot 6.4 (first element).
  const std::vector<double> key{6.4, 9.2, 3.4, 1.6, 8.7, 4.1, 9.2, 3.4};
  Flags seg(8, 0);
  seg[0] = 1;
  const auto pivots = m.seg_copy(std::span<const double>(key), FlagsView(seg));
  EXPECT_EQ(pivots, std::vector<double>(8, 6.4));
  std::vector<std::uint8_t> codes(8);
  for (std::size_t i = 0; i < 8; ++i) {
    codes[i] = key[i] < pivots[i] ? 0 : (key[i] == pivots[i] ? 1 : 2);
  }
  const auto idx = algo::seg_split3_index(m, std::span<const std::uint8_t>(codes),
                                          FlagsView(seg));
  const auto moved =
      m.permute(std::span<const double>(key), std::span<const std::size_t>(idx));
  EXPECT_EQ(moved, (std::vector<double>{3.4, 1.6, 4.1, 3.4, 6.4, 9.2, 8.7, 9.2}));
}

TEST(PaperFigures, Figure5QuicksortFullSort) {
  machine::Machine& m = scan_machine();
  const std::vector<double> key{6.4, 9.2, 3.4, 1.6, 8.7, 4.1, 9.2, 3.4};
  const auto r = algo::quicksort(m, std::span<const double>(key),
                                 algo::PivotRule::First);
  EXPECT_EQ(r.keys, (std::vector<double>{1.6, 3.4, 3.4, 4.1, 6.4, 8.7, 9.2, 9.2}));
}

TEST(PaperFigures, Figure8Allocation) {
  const std::vector<std::size_t> a{4, 1, 3};
  const Allocation alloc = allocate(std::span<const std::size_t>(a));
  EXPECT_EQ(alloc.offsets, (std::vector<std::size_t>{0, 4, 5}));
  EXPECT_EQ(alloc.segment_flags, (Flags{1, 0, 0, 0, 1, 1, 0, 0}));
  const std::vector<std::string> v{"v1", "v2", "v3"};
  EXPECT_EQ(distribute_to_segments(std::span<const std::string>(v), alloc),
            (std::vector<std::string>{"v1", "v1", "v1", "v1", "v2", "v3", "v3",
                                      "v3"}));
}

TEST(PaperFigures, Figure12HalvingMergeTrace) {
  machine::Machine& m = scan_machine();
  // near-merge = [1 7 3 4 9 22 10 13 15 20 23 26]
  const std::vector<std::uint64_t> nm{1, 7, 3, 4, 9, 22, 10, 13, 15, 20, 23, 26};
  EXPECT_EQ(algo::x_near_merge(m, std::span<const std::uint64_t>(nm)),
            (std::vector<std::uint64_t>{1, 3, 4, 7, 9, 10, 13, 15, 20, 22, 23,
                                        26}));
  // And the full merge of A and B.
  const std::vector<std::uint64_t> a{1, 7, 10, 13, 15, 20};
  const std::vector<std::uint64_t> b{3, 4, 9, 22, 23, 26};
  const auto r = algo::halving_merge(m, std::span<const std::uint64_t>(a),
                                     std::span<const std::uint64_t>(b));
  EXPECT_EQ(r.merged, (std::vector<std::uint64_t>{1, 3, 4, 7, 9, 10, 13, 15, 20,
                                                  22, 23, 26}));
}

TEST(PaperFigures, Figure16SegMaxScanSimulation) {
  const std::vector<std::uint32_t> a{5, 1, 3, 4, 3, 9, 2, 6};
  const Flags f{1, 0, 1, 0, 0, 0, 1, 0};
  EXPECT_EQ(sim::seg_max_scan(std::span<const std::uint32_t>(a), FlagsView(f)),
            (std::vector<std::uint32_t>{0, 5, 0, 3, 4, 4, 0, 2}));
}

TEST(PaperFigures, Figure9LineDrawingPixelCounts) {
  machine::Machine& m = scan_machine();
  // Endpoints (11,2)–(23,14), (2,13)–(13,8), (16,4)–(31,4).
  const std::vector<algo::LineSegment> lines{
      {{11, 2}, {23, 14}}, {{2, 13}, {13, 8}}, {{16, 4}, {31, 4}}};
  const auto r = algo::draw_lines(m, std::span<const algo::LineSegment>(lines));
  // With both endpoints included the lines hold 13, 12 and 16 pixels (the
  // paper's caption says 12, 11 and 16 — see EXPERIMENTS.md).
  std::size_t counts[3] = {0, 0, 0};
  for (const std::size_t l : r.line_of_pixel) ++counts[l];
  EXPECT_EQ(counts[0], 13u);
  EXPECT_EQ(counts[1], 12u);
  EXPECT_EQ(counts[2], 16u);
  // Endpoints present, and the third line is horizontal at y = 4.
  EXPECT_EQ(r.pixels.front(), (algo::Point{11, 2}));
  for (std::size_t i = 0; i < r.pixels.size(); ++i) {
    if (r.line_of_pixel[i] == 2) {
      EXPECT_EQ(r.pixels[i].y, 4);
    }
  }
}

}  // namespace
}  // namespace scanprim
