// Unsegmented scans (§2.1): every flavour against the serial reference,
// across a size sweep that exercises both the sequential kernel and the
// blocked parallel kernel, plus algebraic properties.
#include "src/core/scan.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim {
namespace {

using testutil::ref_backward_exclusive_scan;
using testutil::ref_backward_inclusive_scan;
using testutil::ref_exclusive_scan;
using testutil::ref_inclusive_scan;

class ScanSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanSweep, PlusScanMatchesReference) {
  const auto in = testutil::random_vector<long>(GetParam(), 1);
  std::vector<long> out(in.size());
  exclusive_scan(std::span<const long>(in), std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out, ref_exclusive_scan(std::span<const long>(in), Plus<long>{}));
}

TEST_P(ScanSweep, MaxScanMatchesReference) {
  const auto in = testutil::random_vector<long>(GetParam(), 2);
  std::vector<long> out(in.size());
  exclusive_scan(std::span<const long>(in), std::span<long>(out), Max<long>{});
  EXPECT_EQ(out, ref_exclusive_scan(std::span<const long>(in), Max<long>{}));
}

TEST_P(ScanSweep, MinScanMatchesReference) {
  const auto in = testutil::random_vector<long>(GetParam(), 3);
  std::vector<long> out(in.size());
  exclusive_scan(std::span<const long>(in), std::span<long>(out), Min<long>{});
  EXPECT_EQ(out, ref_exclusive_scan(std::span<const long>(in), Min<long>{}));
}

TEST_P(ScanSweep, OrAndScansMatchReference) {
  const auto in = testutil::random_vector<std::uint8_t>(GetParam(), 4, 2);
  EXPECT_EQ(or_scan(std::span<const std::uint8_t>(in)),
            ref_exclusive_scan(std::span<const std::uint8_t>(in),
                               Or<std::uint8_t>{}));
  EXPECT_EQ(and_scan(std::span<const std::uint8_t>(in)),
            ref_exclusive_scan(std::span<const std::uint8_t>(in),
                               And<std::uint8_t>{}));
}

TEST_P(ScanSweep, InclusiveScanMatchesReference) {
  const auto in = testutil::random_vector<long>(GetParam(), 5);
  std::vector<long> out(in.size());
  inclusive_scan(std::span<const long>(in), std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out, ref_inclusive_scan(std::span<const long>(in), Plus<long>{}));
}

TEST_P(ScanSweep, BackwardScansMatchReference) {
  const auto in = testutil::random_vector<long>(GetParam(), 6);
  std::vector<long> out(in.size());
  backward_exclusive_scan(std::span<const long>(in), std::span<long>(out),
                          Plus<long>{});
  EXPECT_EQ(out,
            ref_backward_exclusive_scan(std::span<const long>(in), Plus<long>{}));
  backward_inclusive_scan(std::span<const long>(in), std::span<long>(out),
                          Min<long>{});
  EXPECT_EQ(out,
            ref_backward_inclusive_scan(std::span<const long>(in), Min<long>{}));
}

TEST_P(ScanSweep, ReduceMatchesAccumulate) {
  const auto in = testutil::random_vector<long>(GetParam(), 7);
  long acc = 0;
  for (long v : in) acc += v;
  EXPECT_EQ(reduce(std::span<const long>(in), Plus<long>{}), acc);
}

TEST_P(ScanSweep, InPlaceAliasingIsSupported) {
  auto v = testutil::random_vector<long>(GetParam(), 8);
  const auto expect = ref_exclusive_scan(std::span<const long>(v), Plus<long>{});
  exclusive_scan(std::span<const long>(v), std::span<long>(v), Plus<long>{});
  EXPECT_EQ(v, expect);
}

TEST_P(ScanSweep, DoubleScansMatchReference) {
  const auto in = testutil::random_doubles(GetParam(), 9);
  std::vector<double> out(in.size());
  exclusive_scan(std::span<const double>(in), std::span<double>(out),
                 Max<double>{});
  EXPECT_EQ(out,
            ref_exclusive_scan(std::span<const double>(in), Max<double>{}));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSweep,
                         ::testing::ValuesIn(testutil::sweep_sizes()));

TEST(Scan, PaperSection21Example) {
  // §2.1: +-scan of [2 1 2 3 5 8 13 21] is [0 2 3 5 8 13 21 34].
  const std::vector<int> a{2, 1, 2, 3, 5, 8, 13, 21};
  EXPECT_EQ(plus_scan(std::span<const int>(a)),
            (std::vector<int>{0, 2, 3, 5, 8, 13, 21, 34}));
}

TEST(Scan, ExclusiveScanOfOneElementIsIdentity) {
  const std::vector<int> a{42};
  EXPECT_EQ(plus_scan(std::span<const int>(a)), std::vector<int>{0});
  EXPECT_EQ(max_scan(std::span<const int>(a)),
            std::vector<int>{std::numeric_limits<int>::lowest()});
}

TEST(Scan, FloatMaxMinIdentitiesAreInfinities) {
  // max(lowest(), -inf) == lowest() != -inf: lowest() is not an identity
  // for floating-point max once inputs may contain -inf, so the float
  // identities must be the infinities themselves. Integral identities are
  // unchanged (no infinity exists there).
  EXPECT_EQ(Max<double>::identity(), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(Min<double>::identity(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(Max<float>::identity(), -std::numeric_limits<float>::infinity());
  EXPECT_EQ(Min<float>::identity(), std::numeric_limits<float>::infinity());
  EXPECT_EQ(Max<int>::identity(), std::numeric_limits<int>::lowest());
  EXPECT_EQ(Min<long>::identity(), std::numeric_limits<long>::max());
}

TEST(Scan, ScansOverInfiniteElementsMatchReference) {
  const double inf = std::numeric_limits<double>::infinity();

  // Failing-before: inclusive max over {-inf} must be {-inf}; the old
  // lowest() identity swallowed the real element (max(lowest, -inf) ==
  // lowest). Symmetric for min over {+inf}.
  const std::vector<double> minf{-inf};
  std::vector<double> one(1);
  inclusive_scan(std::span<const double>(minf), std::span<double>(one),
                 Max<double>{});
  EXPECT_EQ(one, minf);
  const std::vector<double> pinf{inf};
  inclusive_scan(std::span<const double>(pinf), std::span<double>(one),
                 Min<double>{});
  EXPECT_EQ(one, pinf);

  // The identity seeds every segment: an all-flags segmented inclusive scan
  // must return the input verbatim even where the input is ±inf.
  auto in = testutil::random_doubles(5000, 12);
  for (std::size_t i = 0; i < in.size(); i += 97) in[i] = -inf;
  in.front() = -inf;
  const Flags all(in.size(), 1);
  std::vector<double> out(in.size());
  seg_inclusive_scan(std::span<const double>(in), FlagsView(all),
                     std::span<double>(out), Max<double>{});
  EXPECT_EQ(out, in);

  // And the plain sweep flavours still match the reference with ±inf mixed
  // into the data.
  exclusive_scan(std::span<const double>(in), std::span<double>(out),
                 Max<double>{});
  EXPECT_EQ(out, ref_exclusive_scan(std::span<const double>(in),
                                    Max<double>{}));
  for (std::size_t i = 0; i < in.size(); i += 61) in[i] = inf;
  backward_inclusive_scan(std::span<const double>(in), std::span<double>(out),
                          Min<double>{});
  EXPECT_EQ(out, ref_backward_inclusive_scan(std::span<const double>(in),
                                             Min<double>{}));
}

TEST(Scan, ScanThenDifferenceRecoversInput) {
  const auto in = testutil::random_vector<long>(10000, 10);
  const auto s = plus_scan(std::span<const long>(in));
  for (std::size_t i = 0; i + 1 < in.size(); ++i) {
    ASSERT_EQ(s[i + 1] - s[i], in[i]);
  }
}

TEST(Scan, MaxScanIsMonotone) {
  const auto in = testutil::random_vector<long>(20000, 11);
  const auto s = max_scan(std::span<const long>(in));
  for (std::size_t i = 0; i + 1 < s.size(); ++i) ASSERT_LE(s[i], s[i + 1]);
}

// The sequential kernel is the building block every parallel path leans on,
// and several call sites re-scan a buffer in place (e.g. the block-summary
// scan inside parallel_scan_impl). It must stay correct when out aliases in.
template <class T, class Op>
void check_alias_safe(std::vector<T> v, Op op) {
  const std::vector<T> expected =
      ref_exclusive_scan(std::span<const T>(v), op);
  detail::sequential_exclusive_scan(std::span<const T>(v), std::span<T>(v),
                                    op, Op::identity());
  EXPECT_EQ(v, expected);
}

TEST(Scan, SequentialExclusiveScanIsAliasSafeForAllOperators) {
  for (std::size_t n : {0u, 1u, 2u, 17u, 4096u, 10000u}) {
    check_alias_safe(testutil::random_vector<long>(n, 21), Plus<long>{});
    check_alias_safe(testutil::random_vector<long>(n, 22), Max<long>{});
    check_alias_safe(testutil::random_vector<long>(n, 23), Min<long>{});
    check_alias_safe(testutil::random_vector<std::uint8_t>(n, 24, 2),
                     Or<std::uint8_t>{});
    check_alias_safe(testutil::random_vector<std::uint8_t>(n, 25, 2),
                     And<std::uint8_t>{});
  }
}

TEST(Scan, BackscanEqualsScanOfReversedInput) {
  const auto in = testutil::random_vector<long>(9999, 12);
  std::vector<long> rev(in.rbegin(), in.rend());
  auto fwd = plus_scan(std::span<const long>(rev));
  std::reverse(fwd.begin(), fwd.end());
  EXPECT_EQ(plus_backscan(std::span<const long>(in)), fwd);
}

}  // namespace
}  // namespace scanprim
