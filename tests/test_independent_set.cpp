// Luby's maximal independent set on the segmented graph representation
// (Table 1's MIS row).
#include "src/algo/independent_set.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

using graph::WeightedEdge;

std::vector<WeightedEdge> random_graph(std::size_t n, std::size_t m,
                                       std::uint64_t seed) {
  auto g = testutil::rng(seed);
  std::vector<WeightedEdge> edges;
  for (std::size_t e = 0; e < m; ++e) {
    const std::size_t u = g() % n, v = g() % n;
    if (u != v) edges.push_back({u, v, 1.0});
  }
  return edges;
}

struct MisCase {
  std::size_t n;
  std::size_t m;
};

class MisSweep : public ::testing::TestWithParam<MisCase> {};

TEST_P(MisSweep, ProducesAMaximalIndependentSet) {
  const auto [n, edge_count] = GetParam();
  machine::Machine m;
  const auto edges = random_graph(n, edge_count, 401 + n);
  const MisResult r = maximal_independent_set(
      m, n, std::span<const WeightedEdge>(edges), 7);
  EXPECT_TRUE(is_maximal_independent_set(n, std::span<const WeightedEdge>(edges),
                                         r.in_set));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MisSweep,
    ::testing::Values(MisCase{1, 0}, MisCase{5, 3}, MisCase{20, 60},
                      MisCase{100, 50}, MisCase{100, 1000},
                      MisCase{1000, 500}, MisCase{1000, 8000},
                      MisCase{4000, 20000}));

TEST(MaximalIndependentSet, IsolatedVerticesAlwaysJoin) {
  machine::Machine m;
  const std::vector<WeightedEdge> edges{{0, 1, 1}};
  const MisResult r = maximal_independent_set(
      m, 5, std::span<const WeightedEdge>(edges), 3);
  EXPECT_TRUE(r.in_set[2]);
  EXPECT_TRUE(r.in_set[3]);
  EXPECT_TRUE(r.in_set[4]);
  EXPECT_NE(r.in_set[0], r.in_set[1]);  // exactly one endpoint of the edge
}

TEST(MaximalIndependentSet, CompleteGraphPicksExactlyOne) {
  machine::Machine m;
  const std::size_t n = 30;
  std::vector<WeightedEdge> edges;
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) edges.push_back({u, v, 1.0});
  }
  const MisResult r = maximal_independent_set(
      m, n, std::span<const WeightedEdge>(edges), 9);
  std::size_t members = 0;
  for (const auto f : r.in_set) members += f;
  EXPECT_EQ(members, 1u);
}

TEST(MaximalIndependentSet, PathAlternates) {
  machine::Machine m;
  const std::size_t n = 101;
  std::vector<WeightedEdge> edges;
  for (std::size_t v = 1; v < n; ++v) edges.push_back({v - 1, v, 1.0});
  const MisResult r = maximal_independent_set(
      m, n, std::span<const WeightedEdge>(edges), 11);
  EXPECT_TRUE(is_maximal_independent_set(n, std::span<const WeightedEdge>(edges),
                                         r.in_set));
  // A maximal IS of a path has between ⌈n/3⌉ and ⌈n/2⌉ members.
  std::size_t members = 0;
  for (const auto f : r.in_set) members += f;
  EXPECT_GE(members, (n + 2) / 3);
  EXPECT_LE(members, (n + 1) / 2);
}

TEST(MaximalIndependentSet, RoundCountIsLogarithmic) {
  machine::Machine m;
  for (const std::size_t n : {256u, 2048u, 16384u}) {
    const auto edges = random_graph(n, 4 * n, n);
    const MisResult r = maximal_independent_set(
        m, n, std::span<const WeightedEdge>(edges), 13);
    EXPECT_LE(r.rounds, static_cast<std::size_t>(
                            6.0 * std::log2(static_cast<double>(n))))
        << n;
  }
}

TEST(MaximalIndependentSet, DifferentSeedsDifferentSetsSameProperty) {
  machine::Machine m;
  const std::size_t n = 200;
  const auto edges = random_graph(n, 800, 402);
  const MisResult a = maximal_independent_set(
      m, n, std::span<const WeightedEdge>(edges), 1);
  const MisResult b = maximal_independent_set(
      m, n, std::span<const WeightedEdge>(edges), 2);
  EXPECT_TRUE(is_maximal_independent_set(n, std::span<const WeightedEdge>(edges),
                                         a.in_set));
  EXPECT_TRUE(is_maximal_independent_set(n, std::span<const WeightedEdge>(edges),
                                         b.in_set));
}

}  // namespace
}  // namespace scanprim::algo
