// The consolidated SCANPRIM_* environment parser (src/core/env.hpp): every
// subsystem reads its knobs through these helpers, so the contract pinned
// here — malformed values warn ONCE with the offending text and fall back,
// out-of-range values warn and clamp, unset stays silent — holds uniformly
// across SCANPRIM_THREADS, SCANPRIM_SERVE_*, SCANPRIM_SHARD_*, and friends.
#include <gtest/gtest.h>

#include <stdlib.h>

#include "src/core/env.hpp"

namespace scanprim::env {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_warnings(); }
  void TearDown() override {
    ::unsetenv("SCANPRIM_TEST_KNOB");
    reset_warnings();
  }
};

TEST_F(EnvTest, UnsetFallsBackSilently) {
  ::unsetenv("SCANPRIM_TEST_KNOB");
  EXPECT_EQ(size_or("SCANPRIM_TEST_KNOB", 42, 1, 100), 42u);
  EXPECT_TRUE(flag_or("SCANPRIM_TEST_KNOB", true));
  EXPECT_FALSE(flag_or("SCANPRIM_TEST_KNOB", false));
  EXPECT_EQ(warning_count(), 0u);
}

TEST_F(EnvTest, SizeParsesInRange) {
  ::setenv("SCANPRIM_TEST_KNOB", "17", 1);
  EXPECT_EQ(size_or("SCANPRIM_TEST_KNOB", 42, 1, 100), 17u);
  ::setenv("SCANPRIM_TEST_KNOB", "  8 ", 1);  // whitespace tolerated
  EXPECT_EQ(size_or("SCANPRIM_TEST_KNOB", 42, 1, 100), 8u);
  EXPECT_EQ(warning_count(), 0u);
}

TEST_F(EnvTest, SizeMalformedWarnsOnceAndFallsBack) {
  ::setenv("SCANPRIM_TEST_KNOB", "banana", 1);
  EXPECT_EQ(size_or("SCANPRIM_TEST_KNOB", 42, 1, 100), 42u);
  EXPECT_EQ(warning_count(), 1u);
  // Same variable again: the warning already fired; no spam.
  EXPECT_EQ(size_or("SCANPRIM_TEST_KNOB", 42, 1, 100), 42u);
  EXPECT_EQ(warning_count(), 1u);
}

TEST_F(EnvTest, SizeTrailingGarbageIsMalformed) {
  ::setenv("SCANPRIM_TEST_KNOB", "12abc", 1);
  EXPECT_EQ(size_or("SCANPRIM_TEST_KNOB", 42, 1, 100), 42u);
  EXPECT_EQ(warning_count(), 1u);
}

TEST_F(EnvTest, SizeNonPositiveIsMalformed) {
  ::setenv("SCANPRIM_TEST_KNOB", "0", 1);
  EXPECT_EQ(size_or("SCANPRIM_TEST_KNOB", 42, 1, 100), 42u);
  ::setenv("SCANPRIM_TEST_KNOB", "-3", 1);
  reset_warnings();
  EXPECT_EQ(size_or("SCANPRIM_TEST_KNOB", 42, 1, 100), 42u);
  EXPECT_EQ(warning_count(), 1u);
}

TEST_F(EnvTest, SizeOutOfRangeWarnsAndClamps) {
  ::setenv("SCANPRIM_TEST_KNOB", "1000", 1);
  EXPECT_EQ(size_or("SCANPRIM_TEST_KNOB", 42, 1, 100), 100u);  // clamp high
  EXPECT_EQ(warning_count(), 1u);
  reset_warnings();
  ::setenv("SCANPRIM_TEST_KNOB", "2", 1);
  EXPECT_EQ(size_or("SCANPRIM_TEST_KNOB", 42, 10, 100), 10u);  // clamp low
  EXPECT_EQ(warning_count(), 1u);
}

TEST_F(EnvTest, FlagAcceptsTheDocumentedSpellings) {
  for (const char* on : {"1", "on", "true", "ON", "True"}) {
    ::setenv("SCANPRIM_TEST_KNOB", on, 1);
    EXPECT_TRUE(flag_or("SCANPRIM_TEST_KNOB", false)) << on;
  }
  for (const char* off : {"0", "off", "false", "OFF", "False"}) {
    ::setenv("SCANPRIM_TEST_KNOB", off, 1);
    EXPECT_FALSE(flag_or("SCANPRIM_TEST_KNOB", true)) << off;
  }
  EXPECT_EQ(warning_count(), 0u);
}

TEST_F(EnvTest, FlagMalformedWarnsOnceAndFallsBack) {
  ::setenv("SCANPRIM_TEST_KNOB", "maybe", 1);
  EXPECT_TRUE(flag_or("SCANPRIM_TEST_KNOB", true));
  EXPECT_FALSE(flag_or("SCANPRIM_TEST_KNOB", false));
  EXPECT_EQ(warning_count(), 1u);
}

TEST_F(EnvTest, ChoiceMatchesCaseInsensitively) {
  ::setenv("SCANPRIM_TEST_KNOB", "AVX2", 1);
  const int got = choice_or("SCANPRIM_TEST_KNOB",
                            {{"scalar", 0}, {"avx2", 1}, {"avx512", 2}}, -1);
  EXPECT_EQ(got, 1);
  EXPECT_EQ(warning_count(), 0u);
}

TEST_F(EnvTest, ChoiceUnknownTokenWarnsOnceAndFallsBack) {
  ::setenv("SCANPRIM_TEST_KNOB", "sse9", 1);
  const int got = choice_or("SCANPRIM_TEST_KNOB",
                            {{"scalar", 0}, {"avx2", 1}}, -1);
  EXPECT_EQ(got, -1);
  EXPECT_EQ(warning_count(), 1u);
  choice_or("SCANPRIM_TEST_KNOB", {{"scalar", 0}, {"avx2", 1}}, -1);
  EXPECT_EQ(warning_count(), 1u);
}

TEST_F(EnvTest, WarningsArePerVariable) {
  ::setenv("SCANPRIM_TEST_KNOB", "junk", 1);
  ::setenv("SCANPRIM_TEST_KNOB2", "junk", 1);
  size_or("SCANPRIM_TEST_KNOB", 1, 1, 10);
  size_or("SCANPRIM_TEST_KNOB2", 1, 1, 10);
  EXPECT_EQ(warning_count(), 2u);
  ::unsetenv("SCANPRIM_TEST_KNOB2");
}

// The real knobs ride the same helpers: one end-to-end spot check that a
// malformed production variable degrades to its default instead of
// crashing or silently misconfiguring.
TEST_F(EnvTest, ProductionKnobFallsBackOnGarbage) {
  ::setenv("SCANPRIM_TEST_KNOB", "not-a-number", 1);
  EXPECT_EQ(size_or("SCANPRIM_TEST_KNOB", 50, 1, 60'000), 50u);
  EXPECT_EQ(warning_count(), 1u);
}

}  // namespace
}  // namespace scanprim::env
