// The random-mate minimum-spanning-tree algorithm (§2.3.3) against Kruskal.
#include "src/algo/mst.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

using graph::WeightedEdge;

std::vector<WeightedEdge> random_connected_graph(std::size_t n,
                                                 std::size_t extra,
                                                 std::uint64_t seed,
                                                 bool distinct_weights) {
  auto g = testutil::rng(seed);
  std::vector<WeightedEdge> edges;
  const auto weight = [&](std::size_t i) {
    return distinct_weights ? static_cast<double>(i) + 0.5
                            : static_cast<double>(g() % 50);
  };
  for (std::size_t v = 1; v < n; ++v) {
    edges.push_back({g() % v, v, 0});
  }
  for (std::size_t e = 0; e < extra; ++e) {
    const std::size_t u = g() % n, v = g() % n;
    if (u != v) edges.push_back({u, v, 0});
  }
  // Assign weights after shuffling so edge index != weight order.
  std::shuffle(edges.begin(), edges.end(), g);
  for (std::size_t i = 0; i < edges.size(); ++i) edges[i].w = weight(i);
  std::shuffle(edges.begin(), edges.end(), g);
  return edges;
}

struct MstCase {
  std::size_t n;
  std::size_t extra;
};

class MstSweep : public ::testing::TestWithParam<MstCase> {};

TEST_P(MstSweep, MatchesKruskalWeightOnRandomGraphs) {
  const auto [n, extra] = GetParam();
  machine::Machine m;
  const auto edges = random_connected_graph(n, extra, 1000 + n, false);
  const MstResult got = minimum_spanning_forest(
      m, n, std::span<const WeightedEdge>(edges), 42);
  const MstResult ref = kruskal(n, std::span<const WeightedEdge>(edges));
  EXPECT_EQ(got.edges.size(), n - 1);
  EXPECT_NEAR(got.total_weight, ref.total_weight, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Cases, MstSweep,
                         ::testing::Values(MstCase{2, 0}, MstCase{3, 3},
                                           MstCase{10, 20}, MstCase{64, 200},
                                           MstCase{200, 600},
                                           MstCase{500, 2000}));

TEST(Mst, DistinctWeightsGiveTheUniqueTree) {
  machine::Machine m;
  for (std::uint64_t seed : {5u, 6u, 7u}) {
    const std::size_t n = 120;
    const auto edges = random_connected_graph(n, 500, seed, true);
    const MstResult got = minimum_spanning_forest(
        m, n, std::span<const WeightedEdge>(edges), seed * 11);
    const MstResult ref = kruskal(n, std::span<const WeightedEdge>(edges));
    std::set<std::size_t> a(got.edges.begin(), got.edges.end());
    std::set<std::size_t> b(ref.edges.begin(), ref.edges.end());
    EXPECT_EQ(a, b);
  }
}

TEST(Mst, DisconnectedGraphYieldsAForest) {
  machine::Machine m;
  // Two triangles, no edge between them.
  const std::vector<WeightedEdge> edges{{0, 1, 1}, {1, 2, 2}, {0, 2, 3},
                                        {3, 4, 4}, {4, 5, 5}, {3, 5, 6}};
  const MstResult got =
      minimum_spanning_forest(m, 6, std::span<const WeightedEdge>(edges), 3);
  EXPECT_EQ(got.edges.size(), 4u);
  EXPECT_NEAR(got.total_weight, 1 + 2 + 4 + 5, 1e-9);
}

TEST(Mst, RoundCountIsLogarithmic) {
  // Random mate merges an expected quarter of the trees per round, so the
  // number of star-merge rounds concentrates around c·lg n.
  machine::Machine m;
  for (const std::size_t n : {64u, 512u, 4096u}) {
    const auto edges = random_connected_graph(n, 3 * n, n, false);
    const MstResult got = minimum_spanning_forest(
        m, n, std::span<const WeightedEdge>(edges), 17);
    const double lg = std::log2(static_cast<double>(n));
    EXPECT_LE(got.rounds, static_cast<std::size_t>(10.0 * lg)) << n;
  }
}

TEST(Mst, StepsPerRoundAreConstantInTheScanModel) {
  const auto steps_per_round = [](std::size_t n) {
    machine::Machine m(machine::Model::Scan);
    const auto edges = random_connected_graph(n, 3 * n, n + 1, false);
    const MstResult got = minimum_spanning_forest(
        m, n, std::span<const WeightedEdge>(edges), 23);
    return static_cast<double>(m.stats().steps) /
           static_cast<double>(got.rounds);
  };
  const double small = steps_per_round(1 << 7);
  const double large = steps_per_round(1 << 11);
  EXPECT_NEAR(small, large, 0.35 * small);
}

TEST(Mst, TinyGraphs) {
  machine::Machine m;
  const std::vector<WeightedEdge> one{{0, 1, 3.5}};
  const MstResult got =
      minimum_spanning_forest(m, 2, std::span<const WeightedEdge>(one), 1);
  EXPECT_EQ(got.edges, std::vector<std::size_t>{0});
  EXPECT_EQ(got.total_weight, 3.5);
  // No edges at all.
  const MstResult empty =
      minimum_spanning_forest(m, 5, std::span<const WeightedEdge>{}, 1);
  EXPECT_TRUE(empty.edges.empty());
}

TEST(Mst, ParallelEdgesAndHighMultiplicity) {
  machine::Machine m;
  std::vector<WeightedEdge> edges;
  for (int k = 0; k < 10; ++k) {
    edges.push_back({0, 1, 10.0 - k});
    edges.push_back({1, 2, 20.0 - k});
  }
  const MstResult got =
      minimum_spanning_forest(m, 3, std::span<const WeightedEdge>(edges), 9);
  EXPECT_EQ(got.edges.size(), 2u);
  EXPECT_NEAR(got.total_weight, 1.0 + 11.0, 1e-9);
}

}  // namespace
}  // namespace scanprim::algo
