// List ranking (Table 5): Wyllie pointer jumping and the work-efficient
// random-mate contraction, against a serial walk.
#include "src/algo/list_rank.hpp"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

// A random list threaded through a shuffled permutation of [0, n).
std::vector<std::size_t> random_list(std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  auto g = testutil::rng(seed);
  std::shuffle(perm.begin(), perm.end(), g);
  std::vector<std::size_t> next(n);
  for (std::size_t i = 0; i + 1 < n; ++i) next[perm[i]] = perm[i + 1];
  if (n > 0) next[perm[n - 1]] = perm[n - 1];
  return next;
}

class RankSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RankSweep, WyllieMatchesSerial) {
  machine::Machine m;
  const auto next = random_list(GetParam(), 201);
  EXPECT_EQ(list_rank_wyllie(m, std::span<const std::size_t>(next)),
            list_rank_serial(std::span<const std::size_t>(next)));
}

TEST_P(RankSweep, ContractionMatchesSerial) {
  machine::Machine m;
  const auto next = random_list(GetParam(), 202);
  EXPECT_EQ(list_rank_contract(m, std::span<const std::size_t>(next), 7),
            list_rank_serial(std::span<const std::size_t>(next)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RankSweep,
                         ::testing::Values(1, 2, 3, 31, 32, 33, 1000, 4097,
                                           50000));

TEST(ListRank, WeightedRanking) {
  machine::Machine m;
  const std::size_t n = 5000;
  const auto next = random_list(n, 203);
  const auto w = testutil::random_vector<std::uint64_t>(n, 204, 100);
  const auto got = list_rank_weighted(m, std::span<const std::size_t>(next),
                                      std::span<const std::uint64_t>(w), true);
  // Serial reference with weights.
  std::vector<std::uint64_t> expect(n, 0);
  for (std::size_t start = 0; start < n; ++start) {
    std::uint64_t d = 0;
    std::size_t v = start;
    while (next[v] != v) {
      d += w[v];
      v = next[v];
    }
    expect[start] = d;
  }
  EXPECT_EQ(got, expect);
  // Wyllie flavour agrees.
  EXPECT_EQ(list_rank_weighted(m, std::span<const std::size_t>(next),
                               std::span<const std::uint64_t>(w), false),
            expect);
}

TEST(ListRank, MultipleIndependentLists) {
  machine::Machine m;
  // Three lists of different lengths living in one vector.
  std::vector<std::size_t> next{1, 2, 2,   // 0->1->2 (tail 2)
                                4, 4,      // 3->4 (tail 4)
                                5};        // 5 (tail)
  const auto got = list_rank_wyllie(m, std::span<const std::size_t>(next));
  EXPECT_EQ(got, (std::vector<std::uint64_t>{2, 1, 0, 1, 0, 0}));
  EXPECT_EQ(list_rank_contract(m, std::span<const std::size_t>(next), 3), got);
}

TEST(ListRank, WrappedNegativeWeightsWork) {
  // The Euler-tour computations rely on mod-2^64 arithmetic: +1 / -1
  // weights must cancel exactly.
  machine::Machine m;
  const std::vector<std::size_t> next{1, 2, 3, 3};
  const std::vector<std::uint64_t> w{1, ~std::uint64_t{0}, 1, 0};  // +1 -1 +1
  const auto got = list_rank_weighted(m, std::span<const std::size_t>(next),
                                      std::span<const std::uint64_t>(w), true);
  EXPECT_EQ(got[0], 1u);                 // +1 -1 +1
  EXPECT_EQ(got[1], 0u);                 // -1 +1
  EXPECT_EQ(got[2], 1u);
}

TEST(ListRank, WyllieCostsNLgNProcessorSteps) {
  // Table 5's first column: Wyllie with n processors takes O(lg n) steps,
  // so ~2 gathers + 1 elementwise per doubling round.
  machine::Machine m(machine::Model::Scan);
  const auto next = random_list(1 << 12, 205);
  list_rank_wyllie(m, std::span<const std::size_t>(next));
  EXPECT_LE(m.stats().steps, 3u * 12 + 4);
  EXPECT_GE(m.stats().steps, 12u);
}

TEST(ListRank, ContractionDoesLinearWork) {
  // Table 5's point: Wyllie on n processors does Θ(n lg n) work (its
  // per-element work grows with lg n), while random-mate contraction on
  // n / lg n processors does Θ(n) work (its per-element work stays flat —
  // the spliced quarter per level makes the total touched elements ~4n).
  const auto work_per_element = [](std::size_t lg, bool contraction,
                                   std::uint64_t seed) {
    const std::size_t n = std::size_t{1} << lg;
    const auto next = random_list(n, seed);
    if (contraction) {
      machine::Machine m(machine::Model::Scan, n / lg);
      list_rank_contract(m, std::span<const std::size_t>(next), 5);
      return static_cast<double>(m.stats().steps) * (n / lg) / n;
    }
    machine::Machine m(machine::Model::Scan, n);
    list_rank_wyllie(m, std::span<const std::size_t>(next));
    return static_cast<double>(m.stats().steps) * n / n;
  };
  const double wc = work_per_element(18, true, 206) /
                    work_per_element(10, true, 207);
  const double ww = work_per_element(18, false, 208) /
                    work_per_element(10, false, 209);
  EXPECT_LT(wc, 1.5) << "contraction work should stay ~linear";
  EXPECT_GT(ww, 1.6) << "Wyllie work grows with lg n";
}

}  // namespace
}  // namespace scanprim::algo
