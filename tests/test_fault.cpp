// The deterministic fault-injection registry (src/fault): arming grammar,
// exact-hit triggering, trigger windows, handler arming, disarm semantics,
// and the epoch cache that keeps disabled points cheap and correct across
// re-arming. Points here use a private "test." namespace so the suite never
// collides with the library's own instrumentation (docs/FAULTS.md).
#include "src/fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace scanprim::fault {
namespace {

// Every test starts from a clean slate: a CI matrix run may have armed
// library points through SCANPRIM_FAULT, and earlier tests leave hit
// counters behind.
class Fault : public ::testing::Test {
 protected:
  void SetUp() override { disarm_all(); }
  void TearDown() override { disarm_all(); }
};

// One pass through a named point; returns true if it fired (threw).
bool pass(const char* which) {
  try {
    if (std::string(which) == "a") {
      SCANPRIM_FAULT_POINT("test.a");
    } else {
      SCANPRIM_FAULT_POINT("test.b");
    }
  } catch (const Injected&) {
    return true;
  }
  return false;
}

TEST_F(Fault, UnarmedPointIsTransparent) {
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(pass("a"));
  EXPECT_EQ(hits("test.a"), 0u);  // hits only count while armed
}

TEST_F(Fault, FiresOnExactlyTheNthHit) {
  arm("test.a", 3);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(pass("a"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(hits("test.a"), 6u);
}

TEST_F(Fault, CountOpensAConsecutiveTriggerWindow) {
  arm("test.a", 2, 2);
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i) fired.push_back(pass("a"));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, true, false, false}));
}

TEST_F(Fault, RearmingResetsTheHitCounter) {
  arm("test.a", 2);
  EXPECT_FALSE(pass("a"));
  EXPECT_TRUE(pass("a"));
  arm("test.a", 2);  // counts from here again
  EXPECT_EQ(hits("test.a"), 0u);
  EXPECT_FALSE(pass("a"));
  EXPECT_TRUE(pass("a"));
}

TEST_F(Fault, DisarmStopsFiringAndCounting) {
  arm("test.a", 1, 1000);
  EXPECT_TRUE(pass("a"));
  disarm("test.a");
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(pass("a"));
  EXPECT_EQ(hits("test.a"), 1u);  // the count survives as a post-mortem
}

TEST_F(Fault, DisarmAllCoversEveryPoint) {
  arm("test.a", 1, 1000);
  arm("test.b", 1, 1000);
  disarm_all();
  EXPECT_FALSE(pass("a"));
  EXPECT_FALSE(pass("b"));
}

TEST_F(Fault, PointsArmIndependently) {
  arm("test.b", 1);
  EXPECT_FALSE(pass("a"));
  EXPECT_TRUE(pass("b"));
}

TEST_F(Fault, MessageNamesThePointAndHit) {
  arm("test.a", 2);
  pass("a");
  try {
    SCANPRIM_FAULT_POINT("test.a");
    FAIL() << "should have thrown";
  } catch (const Injected& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test.a"), std::string::npos) << what;
    EXPECT_NE(what.find("hit 2"), std::string::npos) << what;
  }
}

TEST_F(Fault, HandlerRunsInsteadOfThrowing) {
  int calls = 0;
  arm_handler("test.a", [&] { ++calls; }, 2, 2);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(pass("a"));
  EXPECT_EQ(calls, 2);
}

TEST_F(Fault, HandlerMayItselfThrow) {
  arm_handler("test.a", [] { throw std::runtime_error("from handler"); });
  EXPECT_THROW({ SCANPRIM_FAULT_POINT("test.a"); }, std::runtime_error);
}

TEST_F(Fault, ArmFromSpecParsesTheEnvGrammar) {
  EXPECT_TRUE(arm_from_spec("test.a:2:3"));
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i) fired.push_back(pass("a"));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, true, true, false}));

  EXPECT_TRUE(arm_from_spec("test.b"));  // bare point: nth=1, count=1
  EXPECT_TRUE(pass("b"));
  EXPECT_FALSE(pass("b"));

  EXPECT_TRUE(arm_from_spec("test.a:4"));  // nth only: count=1
  fired.clear();
  for (int i = 0; i < 5; ++i) fired.push_back(pass("a"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, false}));
}

TEST_F(Fault, ArmFromSpecRejectsMalformedSpecs) {
  for (const char* bad : {"", ":3", "test.a:", "test.a:0", "test.a:x",
                          "test.a:1:", "test.a:1:0", "test.a:1:x",
                          "test.a:-1", "test.a:1:2:3"}) {
    EXPECT_FALSE(arm_from_spec(bad)) << "spec: " << bad;
  }
  EXPECT_FALSE(pass("a"));  // nothing got armed along the way
}

TEST_F(Fault, ReachedPointsAreListed) {
  pass("a");
  pass("b");
  const std::vector<std::string> ps = points();
  EXPECT_NE(std::find(ps.begin(), ps.end(), "test.a"), ps.end());
  EXPECT_NE(std::find(ps.begin(), ps.end(), "test.b"), ps.end());
}

}  // namespace
}  // namespace scanprim::fault
