// The §2.2 / §2.4 / §2.5 vector operations: enumerate, copy, distribute,
// split, pack, allocate — unit behaviour and randomized properties.
#include "src/core/primitives.hpp"

#include <numeric>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim {
namespace {

TEST(Enumerate, PaperFigure1) {
  const Flags flag{1, 0, 0, 1, 0, 1, 1, 0};
  EXPECT_EQ(enumerate(FlagsView(flag)),
            (std::vector<std::size_t>{0, 1, 1, 1, 2, 2, 3, 4}));
}

TEST(Copy, PaperFigure1) {
  const std::vector<int> a{5, 1, 3, 4, 3, 9, 2, 6};
  EXPECT_EQ(copy(std::span<const int>(a)), std::vector<int>(8, 5));
}

TEST(Distribute, PaperFigure1) {
  const std::vector<int> b{1, 1, 2, 1, 1, 2, 1, 1};
  EXPECT_EQ(distribute(std::span<const int>(b), Plus<int>{}),
            std::vector<int>(8, 10));
}

TEST(Enumerate, CountsFlagsBeforeEachPosition) {
  const Flags f = testutil::random_flags(50000, 41, 3);
  const auto e = enumerate(FlagsView(f));
  std::size_t count = 0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    ASSERT_EQ(e[i], count);
    if (f[i]) ++count;
  }
  EXPECT_EQ(count_flags(FlagsView(f)), count);
}

TEST(BackEnumerate, CountsFlagsAboveEachPosition) {
  const Flags f = testutil::random_flags(20000, 42, 4);
  const auto e = back_enumerate(FlagsView(f));
  std::size_t count = 0;
  for (std::size_t i = f.size(); i-- > 0;) {
    ASSERT_EQ(e[i], count);
    if (f[i]) ++count;
  }
}

TEST(Permute, IsTheInverseOfItsIndexVector) {
  const std::size_t n = 30000;
  auto in = testutil::random_vector<long>(n, 43);
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::shuffle(idx.begin(), idx.end(), testutil::rng(44));
  const auto out = permuted(std::span<const long>(in),
                            std::span<const std::size_t>(idx));
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[idx[i]], in[i]);
  // gather with the same index vector undoes the permute.
  EXPECT_EQ(gathered(std::span<const long>(out),
                     std::span<const std::size_t>(idx)),
            in);
}

// The bounds checks must survive release builds: assert-only checking
// vanishes under NDEBUG and a bad index vector would silently scribble over
// memory. Out-of-range indices throw; duplicate (non-EREW) indices are
// memory-safe — some write wins, nothing lands outside the destination.
TEST(Permute, OutOfRangeIndexThrows) {
  const std::vector<long> in{1, 2, 3};
  std::vector<long> out(3);
  const std::vector<std::size_t> bad{0, 7, 2};  // 7 >= out.size()
  EXPECT_THROW(permute(std::span<const long>(in),
                       std::span<const std::size_t>(bad),
                       std::span<long>(out)),
               std::out_of_range);
  // Parallel path too: one bad index deep inside a large vector.
  const std::size_t n = 50000;
  const auto big = testutil::random_vector<long>(n, 71);
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  idx[n - 7] = n + 1000;
  std::vector<long> big_out(n);
  EXPECT_THROW(permute(std::span<const long>(big),
                       std::span<const std::size_t>(idx),
                       std::span<long>(big_out)),
               std::out_of_range);
}

TEST(Gather, OutOfRangeIndexThrows) {
  const std::vector<long> in{1, 2, 3};
  std::vector<long> out(2);
  const std::vector<std::size_t> bad{1, 3};  // 3 >= in.size()
  EXPECT_THROW(gather(std::span<const long>(in),
                      std::span<const std::size_t>(bad), std::span<long>(out)),
               std::out_of_range);
}

TEST(Permute, DuplicateIndicesAreMemorySafe) {
  const std::vector<long> in{10, 20, 30, 40};
  std::vector<long> out(4, -1);
  const std::vector<std::size_t> dup{2, 2, 2, 2};
  permute(std::span<const long>(in), std::span<const std::size_t>(dup),
          std::span<long>(out));
  EXPECT_TRUE(out[2] == 10 || out[2] == 20 || out[2] == 30 || out[2] == 40);
  EXPECT_EQ(out[0], -1);
  EXPECT_EQ(out[1], -1);
  EXPECT_EQ(out[3], -1);
}

TEST(Permute, BoundsCheckingCanBeDisabled) {
  ASSERT_TRUE(bounds_checking());  // on by default
  set_bounds_checking(false);
  EXPECT_FALSE(bounds_checking());
  // In-range traffic still works with the check compiled out of the loop.
  const std::vector<long> in{5, 6};
  std::vector<long> out(2);
  const std::vector<std::size_t> idx{1, 0};
  permute(std::span<const long>(in), std::span<const std::size_t>(idx),
          std::span<long>(out));
  EXPECT_EQ(out, (std::vector<long>{6, 5}));
  set_bounds_checking(true);
}

TEST(Split, PaperFigure3) {
  const std::vector<int> a{5, 7, 3, 1, 4, 2, 7, 2};
  const Flags flags{1, 1, 1, 1, 0, 0, 1, 0};
  const auto idx = split_index(FlagsView(flags));
  EXPECT_EQ(idx, (std::vector<std::size_t>{3, 4, 5, 6, 0, 1, 7, 2}));
  EXPECT_EQ(split(std::span<const int>(a), FlagsView(flags)),
            (std::vector<int>{4, 2, 2, 5, 7, 3, 1, 7}));
}

TEST(Split, StableAndPartitioned) {
  const std::size_t n = 40000;
  const auto in = testutil::random_vector<long>(n, 45);
  Flags f(n);
  for (std::size_t i = 0; i < n; ++i) f[i] = (in[i] % 2) != 0;
  const auto out = split(std::span<const long>(in), FlagsView(f));
  // All evens first (order kept), then all odds (order kept).
  std::vector<long> expect;
  for (long v : in) {
    if (v % 2 == 0) expect.push_back(v);
  }
  for (long v : in) {
    if (v % 2 != 0) expect.push_back(v);
  }
  EXPECT_EQ(out, expect);
}

TEST(Pack, KeepsExactlyTheFlaggedElementsInOrder) {
  const std::size_t n = 30000;
  const auto in = testutil::random_vector<long>(n, 46);
  const Flags f = testutil::random_flags(n, 47, 2);
  const auto out = pack(std::span<const long>(in), FlagsView(f));
  std::vector<long> expect;
  for (std::size_t i = 0; i < n; ++i) {
    if (f[i]) expect.push_back(in[i]);
  }
  EXPECT_EQ(out, expect);
  const auto idx = pack_index(FlagsView(f));
  ASSERT_EQ(idx.size(), expect.size());
  for (std::size_t j = 0; j < idx.size(); ++j) ASSERT_EQ(in[idx[j]], expect[j]);
}

TEST(Pack, EmptyAndBoundaryKeptCounts) {
  // `kept` comes from the enumerate scan's final carry; the edges are the
  // empty input and a set/unset last flag.
  const std::vector<long> none;
  EXPECT_TRUE(pack(std::span<const long>(none), FlagsView(Flags{})).empty());
  EXPECT_TRUE(pack_index(FlagsView(Flags{})).empty());
  EXPECT_EQ(count_flags(FlagsView(Flags{})), 0u);

  const std::vector<long> in{1, 2, 3, 4};
  EXPECT_EQ(pack(std::span<const long>(in), FlagsView(Flags{0, 1, 0, 1})),
            (std::vector<long>{2, 4}));
  EXPECT_EQ(pack(std::span<const long>(in), FlagsView(Flags{1, 0, 1, 0})),
            (std::vector<long>{1, 3}));
  EXPECT_EQ(pack(std::span<const long>(in), FlagsView(Flags{0, 0, 0, 0})),
            std::vector<long>{});
  EXPECT_EQ(pack(std::span<const long>(in), FlagsView(Flags{1, 1, 1, 1})), in);
}

TEST(CountFlags, MatchesSerialCountAcrossSizes) {
  for (const std::size_t n : {0u, 1u, 4095u, 4096u, 100001u}) {
    const Flags f = testutil::random_flags(n, 72 + n, 3);
    std::size_t expect = 0;
    for (auto v : f) expect += v ? 1 : 0;
    EXPECT_EQ(count_flags(FlagsView(f)), expect);
  }
}

TEST(SegCopy, SpreadsSegmentHeads) {
  const std::size_t n = 30000;
  const auto in = testutil::random_vector<long>(n, 48);
  const Flags f = testutil::random_flags(n, 49, 6);
  const auto out = seg_copy(std::span<const long>(in), FlagsView(f));
  long head = in[0];
  for (std::size_t i = 0; i < n; ++i) {
    if (f[i]) head = in[i];
    ASSERT_EQ(out[i], head);
  }
}

TEST(SegDistribute, SpreadsSegmentReductions) {
  const std::size_t n = 20000;
  const auto in = testutil::random_vector<long>(n, 50);
  const Flags f = testutil::random_flags(n, 51, 9);
  const auto out =
      seg_distribute(std::span<const long>(in), FlagsView(f), Plus<long>{});
  // Reference: compute per-segment sums.
  std::size_t start = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (i == n || f[i]) {
      long total = 0;
      for (std::size_t j = start; j < i; ++j) total += in[j];
      for (std::size_t j = start; j < i; ++j) ASSERT_EQ(out[j], total);
      start = i;
    }
  }
}

TEST(Allocate, PaperFigure8) {
  const std::vector<std::size_t> a{4, 1, 3};
  const Allocation alloc = allocate(std::span<const std::size_t>(a));
  EXPECT_EQ(alloc.offsets, (std::vector<std::size_t>{0, 4, 5}));
  EXPECT_EQ(alloc.total, 8u);
  EXPECT_EQ(alloc.segment_flags, (Flags{1, 0, 0, 0, 1, 1, 0, 0}));
  const std::vector<char> v{'a', 'b', 'c'};
  EXPECT_EQ(distribute_to_segments(std::span<const char>(v), alloc),
            (std::vector<char>{'a', 'a', 'a', 'a', 'b', 'c', 'c', 'c'}));
}

TEST(Allocate, ZeroSizedRequestsVanish) {
  const std::vector<std::size_t> a{2, 0, 0, 3, 0, 1};
  const Allocation alloc = allocate(std::span<const std::size_t>(a));
  EXPECT_EQ(alloc.total, 6u);
  EXPECT_EQ(alloc.segment_flags, (Flags{1, 0, 1, 0, 0, 1}));
  const std::vector<int> v{10, 20, 30, 40, 50, 60};
  EXPECT_EQ(distribute_to_segments(std::span<const int>(v), alloc),
            (std::vector<int>{10, 10, 40, 40, 40, 60}));
}

TEST(Allocate, EmptyInput) {
  const Allocation alloc = allocate(std::span<const std::size_t>{});
  EXPECT_TRUE(alloc.offsets.empty());
  EXPECT_EQ(alloc.total, 0u);
  EXPECT_TRUE(alloc.segment_flags.empty());
  EXPECT_TRUE(
      distribute_to_segments(std::span<const int>{}, alloc).empty());
}

TEST(Allocate, AllZeroSizes) {
  const std::vector<std::size_t> sizes(100, 0);
  const Allocation alloc = allocate(std::span<const std::size_t>(sizes));
  EXPECT_EQ(alloc.total, 0u);
  EXPECT_EQ(alloc.offsets, std::vector<std::size_t>(100, 0));
  EXPECT_TRUE(alloc.segment_flags.empty());
  const std::vector<int> values(100, 7);
  EXPECT_TRUE(
      distribute_to_segments(std::span<const int>(values), alloc).empty());
}

TEST(Allocate, RandomizedTotalsAndSegments) {
  const auto sizes = testutil::random_vector<std::size_t>(5000, 52, 5);
  const Allocation alloc = allocate(std::span<const std::size_t>(sizes));
  std::size_t total = 0;
  for (auto s : sizes) total += s;
  ASSERT_EQ(alloc.total, total);
  std::size_t flags = 0, nonzero = 0;
  for (auto f : alloc.segment_flags) flags += f;
  for (auto s : sizes) nonzero += s > 0;
  EXPECT_EQ(flags, nonzero);
}

TEST(MapZip, Elementwise) {
  const auto a = testutil::random_vector<long>(10000, 53);
  const auto b = testutil::random_vector<long>(10000, 54);
  const auto doubled =
      mapped<long>(std::span<const long>(a), [](long v) { return 2 * v; });
  const auto sums = zipped<long>(std::span<const long>(a),
                                 std::span<const long>(b),
                                 [](long x, long y) { return x + y; });
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(doubled[i], 2 * a[i]);
    ASSERT_EQ(sums[i], a[i] + b[i]);
  }
}

}  // namespace
}  // namespace scanprim
