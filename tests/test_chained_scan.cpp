// The single-pass chained scan engine (core/chained_scan.hpp) against the
// two-phase engine and the serial references: both engines must produce
// bit-identical output for every operator x direction x segmentation, and
// the chained engine must handle the protocol's boundary cases — empty and
// length-1 inputs, segment flags landing exactly on tile and worker-block
// boundaries, all-flags / no-flags inputs, and out == in aliasing.
#include "src/core/chained_scan.hpp"

#include <gtest/gtest.h>

#include <random>
#include <span>
#include <vector>

#include "src/core/primitives.hpp"
#include "src/core/runtime.hpp"
#include "src/core/scan.hpp"
#include "src/core/segmented.hpp"
#include "src/exec/executor.hpp"
#include "src/fault/fault.hpp"
#include "test_util.hpp"

namespace scanprim {
namespace {

// Forces an engine for a scope and restores the previous one on exit.
class EngineGuard {
 public:
  explicit EngineGuard(ScanEngine engine) : prev_(scan_engine()) {
    set_scan_engine(engine);
  }
  ~EngineGuard() { set_scan_engine(prev_); }

 private:
  ScanEngine prev_;
};

template <class T, class Op, class Scan>
void expect_engines_agree(std::span<const T> in, Op, Scan scan) {
  std::vector<T> chained(in.size()), twophase(in.size());
  {
    EngineGuard g(ScanEngine::kChained);
    scan(in, std::span<T>(chained));
  }
  {
    EngineGuard g(ScanEngine::kTwoPhase);
    scan(in, std::span<T>(twophase));
  }
  ASSERT_EQ(chained, twophase);
}

// Sizes around the serial cutoff, the tile size, and well past both, so the
// protocol runs with one tile, a partial last tile, and many tiles.
std::vector<std::size_t> engine_sizes() {
  const std::size_t tile = detail::kChainedTileElements;
  return {0,        1,        2,         tile - 1,    tile,
          tile + 1, 3 * tile, 4 * tile + 123, 100001, 1u << 17};
}

class ChainedSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChainedSweep, AllOperatorsAllDirectionsAgreeWithTwoPhase) {
  const std::size_t n = GetParam();
  const auto longs = testutil::random_vector<long>(n, 31);
  const auto bytes = testutil::random_vector<std::uint8_t>(n, 32, 2);
  const std::span<const long> ls(longs);
  const std::span<const std::uint8_t> bs(bytes);

  const auto check = [](auto in, auto op) {
    using T = typename decltype(op)::value_type;
    using OpT = decltype(op);
    expect_engines_agree(in, op, [](std::span<const T> i, std::span<T> o) {
      exclusive_scan(i, o, OpT{});
    });
    expect_engines_agree(in, op, [](std::span<const T> i, std::span<T> o) {
      inclusive_scan(i, o, OpT{});
    });
    expect_engines_agree(in, op, [](std::span<const T> i, std::span<T> o) {
      backward_exclusive_scan(i, o, OpT{});
    });
    expect_engines_agree(in, op, [](std::span<const T> i, std::span<T> o) {
      backward_inclusive_scan(i, o, OpT{});
    });
  };
  check(ls, Plus<long>{});
  check(ls, Max<long>{});
  check(ls, Min<long>{});
  check(bs, Or<std::uint8_t>{});
  check(bs, And<std::uint8_t>{});
}

TEST_P(ChainedSweep, SegmentedScansAgreeWithTwoPhaseAndReference) {
  const std::size_t n = GetParam();
  const auto in = testutil::random_vector<long>(n, 33);
  const Flags f = testutil::random_flags(n, 34, 97);
  const std::span<const long> s(in);
  const FlagsView fv(f);

  std::vector<long> chained(n), twophase(n);
  const auto both = [&](auto run) {
    {
      EngineGuard g(ScanEngine::kChained);
      run(std::span<long>(chained));
    }
    {
      EngineGuard g(ScanEngine::kTwoPhase);
      run(std::span<long>(twophase));
    }
    ASSERT_EQ(chained, twophase);
  };
  both([&](std::span<long> o) { seg_exclusive_scan(s, fv, o, Plus<long>{}); });
  ASSERT_EQ(chained, testutil::ref_seg_exclusive_scan(s, fv, Plus<long>{}));
  both([&](std::span<long> o) { seg_inclusive_scan(s, fv, o, Max<long>{}); });
  both([&](std::span<long> o) {
    seg_backward_exclusive_scan(s, fv, o, Plus<long>{});
  });
  ASSERT_EQ(chained,
            testutil::ref_seg_backward_exclusive_scan(s, fv, Plus<long>{}));
  both([&](std::span<long> o) {
    seg_backward_inclusive_scan(s, fv, o, Min<long>{});
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChainedSweep,
                         ::testing::ValuesIn(engine_sizes()));

TEST(ChainedScan, EmptyAndLengthOneEveryFlavour) {
  EngineGuard g(ScanEngine::kChained);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}}) {
    const auto in = testutil::random_vector<long>(n, 35);
    const Flags f = testutil::random_flags(n, 36);
    const std::span<const long> s(in);
    std::vector<long> out(n);
    const std::span<long> o(out);

    exclusive_scan(s, o, Plus<long>{});
    EXPECT_EQ(out, testutil::ref_exclusive_scan(s, Plus<long>{}));
    inclusive_scan(s, o, Plus<long>{});
    EXPECT_EQ(out, testutil::ref_inclusive_scan(s, Plus<long>{}));
    backward_exclusive_scan(s, o, Plus<long>{});
    EXPECT_EQ(out, testutil::ref_backward_exclusive_scan(s, Plus<long>{}));
    backward_inclusive_scan(s, o, Plus<long>{});
    EXPECT_EQ(out, testutil::ref_backward_inclusive_scan(s, Plus<long>{}));
    seg_exclusive_scan(s, FlagsView(f), o, Plus<long>{});
    EXPECT_EQ(out, testutil::ref_seg_exclusive_scan(s, FlagsView(f),
                                                    Plus<long>{}));
    seg_backward_inclusive_scan(s, FlagsView(f), o, Plus<long>{});
    EXPECT_EQ(out, testutil::ref_seg_backward_inclusive_scan(s, FlagsView(f),
                                                             Plus<long>{}));
  }
}

// Flags exactly on tile boundaries exercise the lookback short-circuit: a
// flagged tile publishes its prefix immediately, and a flag as a tile's
// first element makes the whole tile independent of its carry-in.
TEST(ChainedScan, FlagsOnTileAndWorkerBoundaries) {
  const std::size_t tile = detail::kChainedTileElements;
  const std::size_t n = 6 * tile + 17;
  const auto in = testutil::random_vector<long>(n, 37);
  const std::span<const long> s(in);

  Flags f(n, 0);
  f[0] = 1;
  for (std::size_t t = 1; t * tile < n; ++t) f[t * tile] = 1;      // tile starts
  for (std::size_t t = 1; t * tile < n; ++t) f[t * tile - 1] = 1;  // tile ends
  // Worker-block boundaries for the forced 8-worker runs (block_of splits
  // differently from tiles, so these land mid-tile).
  for (std::size_t w = 1; w < 8; ++w) {
    f[thread::block_of(n, 8, w).begin] = 1;
  }

  std::vector<long> out(n);
  EngineGuard g(ScanEngine::kChained);
  seg_exclusive_scan(s, FlagsView(f), std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out,
            testutil::ref_seg_exclusive_scan(s, FlagsView(f), Plus<long>{}));
  seg_backward_exclusive_scan(s, FlagsView(f), std::span<long>(out),
                              Plus<long>{});
  EXPECT_EQ(out, testutil::ref_seg_backward_exclusive_scan(s, FlagsView(f),
                                                           Plus<long>{}));
}

TEST(ChainedScan, AllFlagsAndNoFlags) {
  const std::size_t n = 3 * detail::kChainedTileElements + 5;
  const auto in = testutil::random_vector<long>(n, 38);
  const std::span<const long> s(in);
  std::vector<long> out(n);
  EngineGuard g(ScanEngine::kChained);

  const Flags all(n, 1);
  seg_exclusive_scan(s, FlagsView(all), std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out, std::vector<long>(n, 0));  // every element starts a segment
  seg_inclusive_scan(s, FlagsView(all), std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out, in);

  Flags none(n, 0);  // no flag at all: one segment, equals the plain scan
  seg_exclusive_scan(s, FlagsView(none), std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out, testutil::ref_exclusive_scan(s, Plus<long>{}));
  seg_backward_inclusive_scan(s, FlagsView(none), std::span<long>(out),
                              Plus<long>{});
  EXPECT_EQ(out, testutil::ref_backward_inclusive_scan(s, Plus<long>{}));
}

// A tile is only written by its owner after its own summary read, so the
// chained engine keeps the library's out-may-alias-in contract.
TEST(ChainedScan, InPlaceAliasingForwardAndBackward) {
  const std::size_t n = 5 * detail::kChainedTileElements + 321;
  EngineGuard g(ScanEngine::kChained);

  auto v = testutil::random_vector<long>(n, 39);
  const auto fwd = testutil::ref_exclusive_scan(std::span<const long>(v),
                                                Plus<long>{});
  exclusive_scan(std::span<const long>(v), std::span<long>(v), Plus<long>{});
  EXPECT_EQ(v, fwd);

  v = testutil::random_vector<long>(n, 40);
  const auto bwd = testutil::ref_backward_exclusive_scan(
      std::span<const long>(v), Plus<long>{});
  backward_exclusive_scan(std::span<const long>(v), std::span<long>(v),
                          Plus<long>{});
  EXPECT_EQ(v, bwd);

  v = testutil::random_vector<long>(n, 41);
  const Flags f = testutil::random_flags(n, 42, 53);
  const auto seg = testutil::ref_seg_inclusive_scan(std::span<const long>(v),
                                                    FlagsView(f), Plus<long>{});
  seg_inclusive_scan(std::span<const long>(v), FlagsView(f), std::span<long>(v),
                     Plus<long>{});
  EXPECT_EQ(v, seg);
}

// seg_copy scans a non-commutative "latest valid value" operator through
// inclusive_scan; the chained lookback must preserve combination order.
TEST(ChainedScan, NonCommutativeSegCopyOperator) {
  const std::size_t n = 4 * detail::kChainedTileElements + 77;
  const auto in = testutil::random_vector<int>(n, 43);
  const Flags f = testutil::random_flags(n, 44, 211);
  std::vector<int> chained, twophase;
  {
    EngineGuard g(ScanEngine::kChained);
    chained = seg_copy(std::span<const int>(in), FlagsView(f));
  }
  {
    EngineGuard g(ScanEngine::kTwoPhase);
    twophase = seg_copy(std::span<const int>(in), FlagsView(f));
  }
  EXPECT_EQ(chained, twophase);
}

// The fused executor's scan groups run the same protocol: one dispatch for a
// map | scan | map group, identical output to the two-phase plan.
TEST(ChainedScan, ExecutorScanGroupsMatchTwoPhase) {
  const std::size_t n = 200000;
  const auto in = testutil::random_vector<std::uint32_t>(n, 45, 1u << 20);
  const Flags f = testutil::random_flags(n, 46, 999);
  const std::span<const std::uint32_t> s(in);

  const auto build = [&] {
    return exec::source(s) |
           exec::map([](std::uint32_t v) { return v + 3; }) |
           exec::scan<Plus>() |
           exec::map([](std::uint32_t v) { return 2 * v; });
  };
  const auto build_seg = [&] {
    return exec::source(s) | exec::seg_scan<Plus>(FlagsView(f)) |
           exec::map([](std::uint32_t v) { return v ^ 5; });
  };
  const auto build_back = [&] {
    return exec::source(s) | exec::backscan<Plus>() |
           exec::map([](std::uint32_t v) { return v + 1; });
  };

  std::vector<std::uint32_t> c1, c2, c3, t1, t2, t3;
  exec::Stats chained_stats;
  {
    EngineGuard g(ScanEngine::kChained);
    exec::Executor ex;
    c1 = ex.run(build());
    chained_stats = ex.stats();
    c2 = ex.run(build_seg());
    c3 = ex.run(build_back());
  }
  {
    EngineGuard g(ScanEngine::kTwoPhase);
    t1 = exec::run(build());
    t2 = exec::run(build_seg());
    t3 = exec::run(build_back());
  }
  EXPECT_EQ(c1, t1);
  EXPECT_EQ(c2, t2);
  EXPECT_EQ(c3, t3);
  if (thread::num_workers() > 1) {
    EXPECT_EQ(chained_stats.pool_dispatches, 1u);  // fused group: one pass
  }
}

TEST(ChainedScan, PrimitivesBuiltOnScansWorkUnderChained) {
  EngineGuard g(ScanEngine::kChained);
  const std::size_t n = 100000;
  const auto in = testutil::random_vector<long>(n, 47);
  Flags f(n);
  for (std::size_t i = 0; i < n; ++i) f[i] = in[i] & 1;

  const auto packed = pack(std::span<const long>(in), FlagsView(f));
  EXPECT_EQ(packed.size(), count_flags(FlagsView(f)));
  for (long v : packed) EXPECT_TRUE(v & 1);

  const auto s = split(std::span<const long>(in), FlagsView(f));
  const std::size_t evens = n - packed.size();
  for (std::size_t i = 0; i < evens; ++i) EXPECT_FALSE(s[i] & 1);
  for (std::size_t i = evens; i < n; ++i) EXPECT_TRUE(s[i] & 1);
}

TEST(ChainedScan, PoisonedScratchIsRepairedAndReusable) {
  // Regression for the serve batcher's reuse pattern: a caller-owned
  // ChainedScratch whose run aborts (a tile callback threw) must be handed
  // back clean — the engine resets the tile statuses before rethrowing — so
  // the very next run on the SAME scratch is bit-correct, not poisoned by
  // stale kPrefix/kAggregate descriptors or the fabricated abort prefix.
  if (thread::num_workers() == 1) {
    GTEST_SKIP() << "the chained dispatch needs a multi-worker pool";
  }
  fault::disarm_all();
  const std::size_t n = 6 * detail::kChainedTileElements + 123;
  std::mt19937_64 g(91);
  std::vector<batch::Value> original(n);
  for (auto& v : original) v = static_cast<batch::Value>(g() % 1000);
  std::vector<batch::Value> expect(n);
  batch::Value acc = 0;
  for (std::size_t i = 0; i < n; ++i) {  // exclusive plus reference
    expect[i] = acc;
    acc += original[i];
  }

  detail::ChainedScratch<batch::BatchCarry> scratch;
  const auto run = [&](std::vector<batch::Value>& data) {
    batch::JobSlice s;  // defaults: kPlus, exclusive, single segment
    s.data = data.data();
    s.n = data.size();
    batch::seg_scan_jobs(std::span<const batch::JobSlice>(&s, 1), false,
                         &scratch, batch::JobsMode::kForceParallel);
  };

  std::vector<batch::Value> poisoned = original;
  fault::arm("chained.summarize", 2);
  EXPECT_THROW(run(poisoned), fault::Injected);
  fault::disarm_all();

  std::vector<batch::Value> again = original;
  run(again);  // same scratch, straight after the abort
  EXPECT_EQ(again, expect);

  std::vector<batch::Value> rescan_poisoned = original;
  fault::arm("chained.rescan", 3);  // abort later in the protocol too
  EXPECT_THROW(run(rescan_poisoned), fault::Injected);
  fault::disarm_all();

  std::vector<batch::Value> once_more = original;
  run(once_more);
  EXPECT_EQ(once_more, expect);
}

TEST(ChainedScan, AbortAfterPrefixPublicationDoesNotRewritePrefix) {
  // Regression for the abort-path data race: when a tile's *rescan* throws,
  // the tile has already published kPrefix with release, and a successor's
  // lookback may be reading st.prefix concurrently. The old catch block
  // unconditionally rewrote st.prefix = identity — a plain (non-atomic)
  // write racing those readers (TSan-visible under the thread-sanitize CI
  // leg, which runs this test), and a lost true prefix for any lookback
  // that had already acquired the status. The fix fabricates the identity
  // prefix only when the tile has NOT yet published kPrefix. Arming
  // chained.rescan mid-run hits the throw-after-publication window on every
  // multi-tile dispatch; the racy rewrite then shows up as a TSan report
  // and, functionally, the engine must still abort cleanly and produce
  // correct results on the very next run.
  if (thread::num_workers() == 1) {
    GTEST_SKIP() << "the chained dispatch needs a multi-worker pool";
  }
  fault::disarm_all();
  EngineGuard g(ScanEngine::kChained);
  const std::size_t n = 8 * detail::chained_tile_elements<long>() + 9;
  const auto in = testutil::random_vector<long>(n, 93);
  const std::span<const long> s(in);
  const auto expect = testutil::ref_exclusive_scan(s, Plus<long>{});
  std::vector<long> out(n);

  for (const unsigned nth : {2u, 3u, 5u}) {
    fault::arm("chained.rescan", nth);
    EXPECT_THROW(exclusive_scan(s, std::span<long>(out), Plus<long>{}),
                 fault::Injected);
    fault::disarm_all();
    exclusive_scan(s, std::span<long>(out), Plus<long>{});
    EXPECT_EQ(out, expect);
  }

  // Same window on the backward protocol (reversed logical tile order).
  fault::arm("chained.rescan", 4);
  EXPECT_THROW(
      backward_exclusive_scan(s, std::span<long>(out), Plus<long>{}),
      fault::Injected);
  fault::disarm_all();
  backward_exclusive_scan(s, std::span<long>(out), Plus<long>{});
  EXPECT_EQ(out, testutil::ref_backward_exclusive_scan(s, Plus<long>{}));
}

TEST(ChainedScan, EngineSelectionRoundTrips) {
  const ScanEngine prev = scan_engine();
  set_scan_engine(ScanEngine::kTwoPhase);
  EXPECT_EQ(scan_engine(), ScanEngine::kTwoPhase);
  set_scan_engine(ScanEngine::kChained);
  EXPECT_EQ(scan_engine(), ScanEngine::kChained);
  set_scan_engine(prev);
}

}  // namespace
}  // namespace scanprim
