// The appendix's historical uses: Ofman's carry-lookahead addition and
// Stone's polynomial evaluation.
#include "src/algo/appendix.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

std::vector<std::uint8_t> bits_of(std::uint64_t v, unsigned n) {
  std::vector<std::uint8_t> b(n);
  for (unsigned i = 0; i < n; ++i) b[i] = (v >> i) & 1;
  return b;
}

std::uint64_t value_of(const std::vector<std::uint8_t>& b) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    v |= static_cast<std::uint64_t>(b[i]) << i;
  }
  return v;
}

TEST(BinaryAdd, ExhaustiveSmall) {
  machine::Machine m;
  for (std::uint64_t a = 0; a < 64; ++a) {
    for (std::uint64_t b = 0; b < 64; ++b) {
      const auto s = binary_add(m, bits_of(a, 6), bits_of(b, 6));
      ASSERT_EQ(value_of(s), a + b) << a << "+" << b;
    }
  }
}

TEST(BinaryAdd, RandomWide) {
  machine::Machine m;
  auto g = testutil::rng(241);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t a = g() >> 1, b = g() >> 1;  // keep the sum in 64 bits
    const auto s = binary_add(m, bits_of(a, 63), bits_of(b, 63));
    ASSERT_EQ(value_of(s), a + b);
  }
}

TEST(BinaryAdd, LongCarryChain) {
  machine::Machine m;
  // 0111...1 + 1 ripples a carry through every position.
  const unsigned n = 4000;
  std::vector<std::uint8_t> a(n, 1), b(n, 0);
  b[0] = 1;
  const auto s = binary_add(m, a, b);
  for (unsigned i = 0; i < n; ++i) ASSERT_EQ(s[i], 0) << i;
  EXPECT_EQ(s[n], 1);  // the carry pops out the top
}

TEST(BinaryAdd, ConstantSteps) {
  // O(1) program steps regardless of width — the whole point of doing the
  // carries with a scan.
  const auto steps_for = [](unsigned n) {
    machine::Machine m(machine::Model::Scan);
    std::vector<std::uint8_t> a(n, 1), b(n, 1);
    binary_add(m, a, b);
    return m.stats().steps;
  };
  EXPECT_EQ(steps_for(64), steps_for(8192));
}

TEST(PolyEval, MatchesHorner) {
  machine::Machine m;
  const auto coeffs = testutil::random_doubles(30, 242, -2, 2);
  for (const double x : {0.0, 1.0, -1.0, 0.5, 1.01}) {
    double horner = 0;
    for (std::size_t i = coeffs.size(); i-- > 0;) horner = horner * x + coeffs[i];
    EXPECT_NEAR(poly_eval(m, std::span<const double>(coeffs), x), horner,
                1e-9 * (1 + std::fabs(horner)));
  }
}

TEST(PolyEval, PowersComeFromTheTimesScan) {
  machine::Machine m;
  const std::vector<double> coeffs{0, 0, 0, 1};  // x^3
  EXPECT_NEAR(poly_eval(m, std::span<const double>(coeffs), 3.0), 27.0, 1e-12);
}

}  // namespace
}  // namespace scanprim::algo
