// Randomized stress: many seeds, random sizes, random operations — every
// scan flavour and data-movement primitive against its reference in one
// sweep, plus adversarial shapes (empty, huge segments, all-flags,
// power-of-two boundaries around the parallel cutoff).
#include <gtest/gtest.h>

#include "src/core/primitives.hpp"
#include "src/core/scan.hpp"
#include "src/core/segmented.hpp"
#include "test_util.hpp"

namespace scanprim {
namespace {

class StressSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StressSeed, AllScanFlavoursAgainstReferences) {
  auto g = testutil::rng(GetParam());
  for (int round = 0; round < 6; ++round) {
    const std::size_t n = g() % 9000;
    const auto in = testutil::random_vector<long>(n, g());
    const Flags f = testutil::random_flags(n, g(), 1 + g() % 40);
    std::vector<long> out(n);

    exclusive_scan(std::span<const long>(in), std::span<long>(out), Plus<long>{});
    ASSERT_EQ(out, testutil::ref_exclusive_scan(std::span<const long>(in),
                                                Plus<long>{}));
    inclusive_scan(std::span<const long>(in), std::span<long>(out), Max<long>{});
    ASSERT_EQ(out, testutil::ref_inclusive_scan(std::span<const long>(in),
                                                Max<long>{}));
    backward_exclusive_scan(std::span<const long>(in), std::span<long>(out),
                            Min<long>{});
    ASSERT_EQ(out, testutil::ref_backward_exclusive_scan(
                       std::span<const long>(in), Min<long>{}));
    backward_inclusive_scan(std::span<const long>(in), std::span<long>(out),
                            Plus<long>{});
    ASSERT_EQ(out, testutil::ref_backward_inclusive_scan(
                       std::span<const long>(in), Plus<long>{}));

    seg_exclusive_scan(std::span<const long>(in), FlagsView(f),
                       std::span<long>(out), Plus<long>{});
    ASSERT_EQ(out, testutil::ref_seg_exclusive_scan(std::span<const long>(in),
                                                    FlagsView(f), Plus<long>{}));
    seg_inclusive_scan(std::span<const long>(in), FlagsView(f),
                       std::span<long>(out), Max<long>{});
    ASSERT_EQ(out, testutil::ref_seg_inclusive_scan(std::span<const long>(in),
                                                    FlagsView(f), Max<long>{}));
    seg_backward_exclusive_scan(std::span<const long>(in), FlagsView(f),
                                std::span<long>(out), Min<long>{});
    ASSERT_EQ(out,
              testutil::ref_seg_backward_exclusive_scan(
                  std::span<const long>(in), FlagsView(f), Min<long>{}));
    seg_backward_inclusive_scan(std::span<const long>(in), FlagsView(f),
                                std::span<long>(out), Plus<long>{});
    ASSERT_EQ(out,
              testutil::ref_seg_backward_inclusive_scan(
                  std::span<const long>(in), FlagsView(f), Plus<long>{}));
  }
}

TEST_P(StressSeed, DataMovementPrimitives) {
  auto g = testutil::rng(GetParam() ^ 0xabc);
  for (int round = 0; round < 6; ++round) {
    const std::size_t n = 1 + g() % 6000;
    const auto in = testutil::random_vector<long>(n, g());
    const Flags f = testutil::random_flags(n, g(), 1 + g() % 5);

    // split: F-part then T-part, both order-preserving.
    const auto s = split(std::span<const long>(in), FlagsView(f));
    std::vector<long> expect;
    for (std::size_t i = 0; i < n; ++i) {
      if (!f[i]) expect.push_back(in[i]);
    }
    const std::size_t zeros = expect.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (f[i]) expect.push_back(in[i]);
    }
    ASSERT_EQ(s, expect);

    // pack == the bottom of split restricted to kept elements, inverted.
    const auto p = pack(std::span<const long>(in), FlagsView(f));
    ASSERT_EQ(p, std::vector<long>(expect.begin() + zeros, expect.end()));

    // enumerate + count are consistent.
    const auto e = enumerate(FlagsView(f));
    ASSERT_EQ(e.back() + (f.back() ? 1 : 0), count_flags(FlagsView(f)));

    // seg_copy of an inclusive-scan's segment heads reproduces seg totals.
    const auto dist =
        seg_distribute(std::span<const long>(in), FlagsView(f), Plus<long>{});
    long seg_total = 0;
    std::size_t seg_start = 0;
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == n || (i > 0 && f[i])) {
        for (std::size_t j = seg_start; j < i; ++j) {
          ASSERT_EQ(dist[j], seg_total);
        }
        seg_total = 0;
        seg_start = i;
      }
      if (i < n) seg_total += in[i];
    }
  }
}

TEST_P(StressSeed, AllocationRoundTrips) {
  auto g = testutil::rng(GetParam() ^ 0xdef);
  for (int round = 0; round < 6; ++round) {
    const std::size_t k = 1 + g() % 500;
    const auto sizes = testutil::random_vector<std::size_t>(k, g(), 6);
    const Allocation a = allocate(std::span<const std::size_t>(sizes));
    const auto ids = [&] {
      std::vector<long> v(k);
      for (std::size_t i = 0; i < k; ++i) v[i] = static_cast<long>(i);
      return v;
    }();
    const auto spread = distribute_to_segments(std::span<const long>(ids), a);
    // Element j of the allocation belongs to position spread[j]; counts
    // must match the requested sizes exactly, contiguously, in order.
    std::size_t j = 0;
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t c = 0; c < sizes[i]; ++c, ++j) {
        ASSERT_EQ(spread[j], static_cast<long>(i));
      }
    }
    ASSERT_EQ(j, a.total);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSeed,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233));

TEST(Stress, CutoffBoundarySizes) {
  // The serial/parallel dispatch boundary (kSerialCutoff = 4096) gets the
  // full treatment at n = cutoff - 1, cutoff, cutoff + 1.
  for (const std::size_t n : {4095u, 4096u, 4097u}) {
    const auto in = testutil::random_vector<long>(n, 999 + n);
    const Flags f = testutil::random_flags(n, 998 + n, 3);
    std::vector<long> out(n);
    exclusive_scan(std::span<const long>(in), std::span<long>(out), Plus<long>{});
    ASSERT_EQ(out, testutil::ref_exclusive_scan(std::span<const long>(in),
                                                Plus<long>{}));
    seg_backward_inclusive_scan(std::span<const long>(in), FlagsView(f),
                                std::span<long>(out), Max<long>{});
    ASSERT_EQ(out,
              testutil::ref_seg_backward_inclusive_scan(
                  std::span<const long>(in), FlagsView(f), Max<long>{}));
  }
}

TEST(Stress, SingleGiantSegmentAndAllSingletons) {
  const std::size_t n = 100000;
  const auto in = testutil::random_vector<long>(n, 777);
  std::vector<long> out(n);
  Flags one(n, 0);
  one[0] = 1;
  seg_exclusive_scan(std::span<const long>(in), FlagsView(one),
                     std::span<long>(out), Plus<long>{});
  ASSERT_EQ(out, testutil::ref_exclusive_scan(std::span<const long>(in),
                                              Plus<long>{}));
  const Flags all(n, 1);
  seg_backward_exclusive_scan(std::span<const long>(in), FlagsView(all),
                              std::span<long>(out), Plus<long>{});
  for (const long v : out) ASSERT_EQ(v, 0);
}

}  // namespace
}  // namespace scanprim
