// Sparse matrix-vector multiplication as a segmented sum.
#include "src/algo/sparse.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

void expect_matches(const CsrMatrix& M, std::uint64_t seed) {
  machine::Machine m;
  const auto x = testutil::random_doubles(M.cols, seed, -5, 5);
  const auto got = spmv(m, M, std::span<const double>(x));
  const auto ref = spmv_serial(M, std::span<const double>(x));
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], ref[i], 1e-9) << "row " << i;
  }
}

TEST(Spmv, RandomMatrices) {
  auto g = testutil::rng(601);
  for (int trial = 0; trial < 15; ++trial) {
    expect_matches(random_csr(1 + g() % 500, 1 + g() % 300, 1.0 + g() % 8,
                              g()),
                   g());
  }
}

TEST(Spmv, EmptyRowsYieldZero) {
  CsrMatrix M;
  M.rows = 4;
  M.cols = 3;
  M.row_offsets = {0, 2, 2, 2, 3};  // rows 1 and 2 empty
  M.col_index = {0, 2, 1};
  M.values = {2.0, 3.0, 5.0};
  machine::Machine m;
  const std::vector<double> x{1, 10, 100};
  const auto y = spmv(m, M, std::span<const double>(x));
  EXPECT_EQ(y, (std::vector<double>{302, 0, 0, 50}));
}

TEST(Spmv, HighlySkewedRowLengths) {
  // One row holds almost every nonzero — the workload that defeats a
  // row-per-processor formulation and that segments shrug off.
  CsrMatrix M;
  M.rows = 100;
  M.cols = 5000;
  M.row_offsets.push_back(0);
  for (std::size_t c = 0; c < 5000; ++c) {
    M.col_index.push_back(c);
    M.values.push_back(1.0);
  }
  M.row_offsets.push_back(M.col_index.size());
  for (std::size_t r = 1; r < 100; ++r) {
    M.col_index.push_back(r);
    M.values.push_back(2.0);
    M.row_offsets.push_back(M.col_index.size());
  }
  expect_matches(M, 602);
}

TEST(Spmv, StepCountIndependentOfSkew) {
  // Same nnz, wildly different row-length distributions: identical steps.
  const auto steps_for = [](const CsrMatrix& M) {
    machine::Machine m(machine::Model::Scan);
    std::vector<double> x(M.cols, 1.0);
    spmv(m, M, std::span<const double>(x));
    return m.stats().steps;
  };
  const std::size_t rows = 256, nnz = 4096;
  CsrMatrix uniform, skewed;
  uniform.rows = skewed.rows = rows;
  uniform.cols = skewed.cols = rows;
  uniform.row_offsets.push_back(0);
  skewed.row_offsets.push_back(0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t k = 0; k < nnz / rows; ++k) {
      uniform.col_index.push_back((r + k) % rows);
      uniform.values.push_back(1.0);
    }
    uniform.row_offsets.push_back(uniform.col_index.size());
    // skewed: everything in row 0
    if (r == 0) {
      for (std::size_t k = 0; k < nnz; ++k) {
        skewed.col_index.push_back(k % rows);
        skewed.values.push_back(1.0);
      }
    }
    skewed.row_offsets.push_back(skewed.col_index.size());
  }
  EXPECT_EQ(steps_for(uniform), steps_for(skewed));
}

TEST(Spmv, EmptyMatrix) {
  CsrMatrix M;
  M.rows = 3;
  M.cols = 3;
  M.row_offsets = {0, 0, 0, 0};
  machine::Machine m;
  const std::vector<double> x{1, 2, 3};
  EXPECT_EQ(spmv(m, M, std::span<const double>(x)),
            (std::vector<double>{0, 0, 0}));
}

}  // namespace
}  // namespace scanprim::algo
