// The cost semantics of the machine model: the charges of each operation
// under EREW / CRCW / Scan, with and without the long-vector (p < n) factor.
#include "src/machine/machine.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::machine {
namespace {

TEST(CeilLg, Values) {
  EXPECT_EQ(ceil_lg(0), 0u);
  EXPECT_EQ(ceil_lg(1), 0u);
  EXPECT_EQ(ceil_lg(2), 1u);
  EXPECT_EQ(ceil_lg(3), 2u);
  EXPECT_EQ(ceil_lg(1024), 10u);
  EXPECT_EQ(ceil_lg(1025), 11u);
}

TEST(Machine, ScanModelChargesOneStepPerScan) {
  Machine m(Model::Scan);
  const auto v = testutil::random_vector<long>(4096, 81);
  m.plus_scan(std::span<const long>(v));
  EXPECT_EQ(m.stats().steps, 1u);
  EXPECT_EQ(m.stats().scans, 1u);
  m.max_scan(std::span<const long>(v));
  EXPECT_EQ(m.stats().steps, 2u);
}

TEST(Machine, ErewChargesLgNPerScan) {
  Machine m(Model::EREW);
  const auto v = testutil::random_vector<long>(4096, 82);
  m.plus_scan(std::span<const long>(v));
  EXPECT_EQ(m.stats().steps, 12u);  // lg 4096
}

TEST(Machine, CrcwScanStillCostsLgN) {
  Machine m(Model::CRCW);
  const auto v = testutil::random_vector<long>(1 << 16, 83);
  m.plus_scan(std::span<const long>(v));
  EXPECT_EQ(m.stats().steps, 16u);
}

TEST(Machine, BroadcastCosts) {
  const auto v = testutil::random_vector<long>(4096, 84);
  Machine crcw(Model::CRCW), erew(Model::EREW), scan(Model::Scan);
  crcw.copy(std::span<const long>(v));
  erew.copy(std::span<const long>(v));
  scan.copy(std::span<const long>(v));
  EXPECT_EQ(crcw.stats().steps, 1u);
  EXPECT_EQ(erew.stats().steps, 12u);
  EXPECT_EQ(scan.stats().steps, 1u);
}

TEST(Machine, CombineCosts) {
  const auto v = testutil::random_vector<long>(4096, 85);
  Machine crcw(Model::CRCW), erew(Model::EREW), scan(Model::Scan);
  crcw.reduce(std::span<const long>(v), Plus<long>{});
  erew.reduce(std::span<const long>(v), Plus<long>{});
  scan.reduce(std::span<const long>(v), Plus<long>{});
  EXPECT_EQ(crcw.stats().steps, 1u);
  EXPECT_EQ(erew.stats().steps, 12u);
  EXPECT_EQ(scan.stats().steps, 1u);
}

TEST(Machine, ElementwiseAndPermuteAreUnitInAllModels) {
  const auto v = testutil::random_vector<long>(4096, 86);
  for (const Model model : {Model::EREW, Model::CRCW, Model::Scan}) {
    Machine m(model);
    m.map<long>(std::span<const long>(v), [](long x) { return x + 1; });
    EXPECT_EQ(m.stats().steps, 1u) << to_string(model);
  }
}

TEST(Machine, LongVectorFactorScalesCharges) {
  // 1024 processors, 8192 elements: ⌈n/p⌉ = 8.
  Machine m(Model::Scan, 1024);
  const auto v = testutil::random_vector<long>(8192, 87);
  m.map<long>(std::span<const long>(v), [](long x) { return x; });
  EXPECT_EQ(m.stats().steps, 8u);
  m.reset_stats();
  m.plus_scan(std::span<const long>(v));
  EXPECT_EQ(m.stats().steps, 8u);  // 7 local + 1 scan step (Figure 10)
  Machine e(Model::EREW, 1024);
  e.plus_scan(std::span<const long>(v));
  EXPECT_EQ(e.stats().steps, 7u + 10u);  // 7 local + lg 1024 tree steps
}

TEST(Machine, ResultsAreModelIndependent) {
  const auto v = testutil::random_vector<long>(10000, 88);
  Machine a(Model::EREW), b(Model::Scan), c(Model::CRCW, 64);
  EXPECT_EQ(a.plus_scan(std::span<const long>(v)),
            b.plus_scan(std::span<const long>(v)));
  EXPECT_EQ(a.plus_scan(std::span<const long>(v)),
            c.plus_scan(std::span<const long>(v)));
}

TEST(Machine, ResetStatsClears) {
  Machine m(Model::Scan);
  const auto v = testutil::random_vector<long>(100, 89);
  m.plus_scan(std::span<const long>(v));
  EXPECT_GT(m.stats().steps, 0u);
  m.reset_stats();
  EXPECT_EQ(m.stats().steps, 0u);
  EXPECT_EQ(m.stats().scans, 0u);
}

TEST(Machine, BitCyclesAccumulate) {
  Machine m(Model::Scan);
  m.bit_cost().field_bits = 16;
  m.bit_cost().op_overhead = 0.0;  // check the raw per-op formulas
  const auto v = testutil::random_vector<std::uint64_t>(1 << 16, 90);
  m.plus_scan(std::span<const std::uint64_t>(v));
  // d + 2 lg p = 16 + 32 bit cycles for one scan on 64K processors.
  EXPECT_DOUBLE_EQ(m.stats().bit_cycles, 48.0);
  m.reset_stats();
  std::vector<std::size_t> idx(v.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  m.permute(std::span<const std::uint64_t>(v), std::span<const std::size_t>(idx));
  // router_factor · d · lg p = 3 · 16 · 16.
  EXPECT_DOUBLE_EQ(m.stats().bit_cycles, 768.0);
}

TEST(Machine, ScatterAndPermuteIntoCharges) {
  Machine m(Model::Scan);
  const auto v = testutil::random_vector<long>(1000, 93);
  std::vector<std::size_t> idx(v.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::vector<long> out(2000, -1);
  m.scatter(std::span<const long>(v), std::span<const std::size_t>(idx),
            std::span<long>(out));
  EXPECT_EQ(m.stats().permutes, 1u);
  EXPECT_EQ(out[999], v[999]);
  EXPECT_EQ(out[1000], -1);  // untouched beyond the scatter
  const auto big = m.permute_into(std::span<const long>(v),
                                  std::span<const std::size_t>(idx), 1500, 7L);
  EXPECT_EQ(big.size(), 1500u);
  EXPECT_EQ(big[1200], 7);
  EXPECT_EQ(m.stats().permutes, 2u);
}

TEST(Machine, ShiftRightIsAPermuteWithBoundary) {
  Machine m(Model::Scan);
  const std::vector<int> v{1, 2, 3};
  EXPECT_EQ(m.shift_right(std::span<const int>(v), -9),
            (std::vector<int>{-9, 1, 2}));
  EXPECT_EQ(m.stats().permutes, 1u);
}

TEST(Machine, NeighborExchangeChargesNoRouting) {
  Machine a(Model::Scan), b(Model::Scan);
  a.bit_cost().op_overhead = 0;
  b.bit_cost().op_overhead = 0;
  a.charge_neighbor_exchange(1 << 16);
  b.charge_permute(1 << 16);
  EXPECT_EQ(a.stats().steps, b.stats().steps);  // same program-step cost
  EXPECT_LT(a.stats().bit_cycles, b.stats().bit_cycles / 10);  // no router
}

TEST(Machine, ChargingIsDeterministic) {
  const auto run_once = [](Model model) {
    Machine m(model);
    const auto v = testutil::random_vector<long>(5000, 94);
    const Flags f = testutil::random_flags(5000, 95, 4);
    m.plus_scan(std::span<const long>(v));
    m.seg_distribute(std::span<const long>(v), FlagsView(f), Plus<long>{});
    m.pack(std::span<const long>(v), FlagsView(f));
    m.split(std::span<const long>(v), FlagsView(f));
    return m.stats().steps;
  };
  for (const Model model : {Model::EREW, Model::CRCW, Model::Scan}) {
    EXPECT_EQ(run_once(model), run_once(model));
  }
  // And the models order as the paper says: EREW >= CRCW >= Scan here.
  EXPECT_GE(run_once(Model::EREW), run_once(Model::CRCW));
  EXPECT_GE(run_once(Model::CRCW), run_once(Model::Scan));
}

TEST(Machine, EmptyVectorsChargeNothing) {
  Machine m(Model::Scan);
  const std::vector<long> v;
  m.plus_scan(std::span<const long>(v));
  m.map<long>(std::span<const long>(v), [](long x) { return x; });
  EXPECT_EQ(m.stats().steps, 0u);
}

TEST(Machine, SegmentedScanCostsTheSameAsUnsegmented) {
  // §3.4: segmented scans reduce to a constant number of primitive scans,
  // and the hardware supports them directly — one scan charge.
  Machine m(Model::Scan);
  const auto v = testutil::random_vector<long>(4096, 91);
  const Flags f = testutil::random_flags(v.size(), 92, 4);
  m.seg_scan(std::span<const long>(v), FlagsView(f), Plus<long>{});
  EXPECT_EQ(m.stats().steps, 1u);
}

}  // namespace
}  // namespace scanprim::machine
