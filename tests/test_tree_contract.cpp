// Tree computations via Euler tours (the Table 5 tree-contraction workload).
#include "src/algo/tree_contract.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

std::vector<std::size_t> random_parents(std::size_t n, std::uint64_t seed) {
  auto g = testutil::rng(seed);
  std::vector<std::size_t> parent(n);
  parent[0] = 0;
  for (std::size_t v = 1; v < n; ++v) parent[v] = g() % v;
  return parent;
}

class TreeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeSweep, DepthsMatchSerial) {
  machine::Machine m;
  const auto t = tree_from_parents(random_parents(GetParam(), 211));
  EXPECT_EQ(node_depths(m, t, true), node_depths_serial(t));
  EXPECT_EQ(node_depths(m, t, false), node_depths_serial(t));
}

TEST_P(TreeSweep, SubtreeSizesMatchSerial) {
  machine::Machine m;
  const auto t = tree_from_parents(random_parents(GetParam(), 212));
  EXPECT_EQ(subtree_sizes(m, t, true), subtree_sizes_serial(t));
  EXPECT_EQ(subtree_sizes(m, t, false), subtree_sizes_serial(t));
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeSweep,
                         ::testing::Values(1, 2, 3, 10, 100, 4097, 20000));

TEST(TreeContract, ChainTree) {
  machine::Machine m;
  // 0 <- 1 <- 2 <- ... <- n-1: depth v = v, size v = n - v.
  const std::size_t n = 300;
  std::vector<std::size_t> parent(n);
  parent[0] = 0;
  for (std::size_t v = 1; v < n; ++v) parent[v] = v - 1;
  const auto t = tree_from_parents(parent);
  const auto depth = node_depths(m, t);
  const auto size = subtree_sizes(m, t);
  for (std::size_t v = 0; v < n; ++v) {
    ASSERT_EQ(depth[v], v);
    ASSERT_EQ(size[v], n - v);
  }
}

TEST(TreeContract, StarTree) {
  machine::Machine m;
  const std::size_t n = 500;
  std::vector<std::size_t> parent(n, 0);
  const auto t = tree_from_parents(parent);
  const auto depth = node_depths(m, t);
  const auto size = subtree_sizes(m, t);
  EXPECT_EQ(depth[0], 0u);
  EXPECT_EQ(size[0], n);
  for (std::size_t v = 1; v < n; ++v) {
    ASSERT_EQ(depth[v], 1u);
    ASSERT_EQ(size[v], 1u);
  }
}

TEST(TreeContract, CsrConstruction) {
  // parent = [0, 0, 0, 1, 1, 2]: root 0, children {1,2} of 0, {3,4} of 1,
  // {5} of 2.
  const std::vector<std::size_t> parent{0, 0, 0, 1, 1, 2};
  const auto t = tree_from_parents(parent);
  EXPECT_EQ(t.root, 0u);
  EXPECT_EQ(t.child_offsets, (std::vector<std::size_t>{0, 2, 4, 5, 5, 5, 5}));
  EXPECT_EQ(t.children, (std::vector<std::size_t>{1, 2, 3, 4, 5}));
}

TEST(TreeContract, EulerTourVisitsEveryEdgeTwice) {
  machine::Machine m;
  const auto t = tree_from_parents(random_parents(200, 213));
  const EulerTour tour = euler_tour(m, t);
  // Walk the tour from its start; it must traverse 2(n-1) arcs and then
  // reach the self-loop tail.
  std::size_t steps = 0, a = tour.first;
  while (tour.next[a] != a) {
    a = tour.next[a];
    ++steps;
    ASSERT_LE(steps, 2 * t.num_nodes());
  }
  EXPECT_EQ(steps + 1, 2 * (t.num_nodes() - 1));
}

TEST(TreeContract, RootfixMatchesSerial) {
  machine::Machine m;
  for (const std::size_t n : {1u, 2u, 5u, 300u, 5000u}) {
    const auto t = tree_from_parents(random_parents(n, 214 + n));
    const auto values = testutil::random_vector<std::uint64_t>(n, 215, 100);
    EXPECT_EQ(rootfix_sum(m, t, std::span<const std::uint64_t>(values), true),
              rootfix_sum_serial(t, std::span<const std::uint64_t>(values)))
        << n;
    EXPECT_EQ(rootfix_sum(m, t, std::span<const std::uint64_t>(values), false),
              rootfix_sum_serial(t, std::span<const std::uint64_t>(values)));
  }
}

TEST(TreeContract, LeaffixMatchesSerial) {
  machine::Machine m;
  for (const std::size_t n : {1u, 2u, 5u, 300u, 5000u}) {
    const auto t = tree_from_parents(random_parents(n, 216 + n));
    const auto values = testutil::random_vector<std::uint64_t>(n, 217, 100);
    EXPECT_EQ(leaffix_sum(m, t, std::span<const std::uint64_t>(values), true),
              leaffix_sum_serial(t, std::span<const std::uint64_t>(values)))
        << n;
    EXPECT_EQ(leaffix_sum(m, t, std::span<const std::uint64_t>(values), false),
              leaffix_sum_serial(t, std::span<const std::uint64_t>(values)));
  }
}

TEST(TreeContract, RootfixOfOnesIsDepthPlusOne) {
  machine::Machine m;
  const auto t = tree_from_parents(random_parents(400, 218));
  const std::vector<std::uint64_t> ones(400, 1);
  const auto rf = rootfix_sum(m, t, std::span<const std::uint64_t>(ones));
  const auto depth = node_depths(m, t);
  for (std::size_t v = 0; v < 400; ++v) ASSERT_EQ(rf[v], depth[v] + 1);
}

TEST(TreeContract, LeaffixOfOnesIsSubtreeSize) {
  machine::Machine m;
  const auto t = tree_from_parents(random_parents(400, 219));
  const std::vector<std::uint64_t> ones(400, 1);
  EXPECT_EQ(leaffix_sum(m, t, std::span<const std::uint64_t>(ones)),
            subtree_sizes(m, t));
}

TEST(TreeContract, SingleNodeTree) {
  machine::Machine m;
  const auto t = tree_from_parents(std::vector<std::size_t>{0});
  EXPECT_EQ(node_depths(m, t), std::vector<std::uint64_t>{0});
  EXPECT_EQ(subtree_sizes(m, t), std::vector<std::uint64_t>{1});
}

}  // namespace
}  // namespace scanprim::algo
