// Segmented quickhull (Table 1's convex-hull row) against the serial
// monotone chain.
#include "src/algo/convex_hull.hpp"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

std::vector<Point2D> random_points(std::size_t n, std::uint64_t seed,
                                   std::uint64_t grid = 1000) {
  auto g = testutil::rng(seed);
  std::vector<Point2D> pts(n);
  for (auto& p : pts) {
    p = {static_cast<double>(g() % grid), static_cast<double>(g() % grid)};
  }
  return pts;
}

class HullSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HullSweep, MatchesMonotoneChain) {
  machine::Machine m;
  const auto pts = random_points(GetParam(), 301 + GetParam());
  const HullResult got = convex_hull(m, std::span<const Point2D>(pts));
  EXPECT_EQ(got.hull, convex_hull_serial(std::span<const Point2D>(pts)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, HullSweep,
                         ::testing::Values(1, 2, 3, 4, 10, 100, 1000, 20000));

TEST(ConvexHull, ManyRandomTrials) {
  machine::Machine m;
  auto g = testutil::rng(302);
  for (int trial = 0; trial < 30; ++trial) {
    const auto pts = random_points(3 + g() % 400, g(), 40);  // heavy ties
    const HullResult got = convex_hull(m, std::span<const Point2D>(pts));
    ASSERT_EQ(got.hull, convex_hull_serial(std::span<const Point2D>(pts)))
        << "trial " << trial;
  }
}

TEST(ConvexHull, PointsOnACircle) {
  machine::Machine m;
  const std::size_t n = 256;
  std::vector<Point2D> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = 2 * M_PI * static_cast<double>(i) / n;
    pts[i] = {std::cos(a) * 1024, std::sin(a) * 1024};
  }
  const HullResult got = convex_hull(m, std::span<const Point2D>(pts));
  // Every point is a hull vertex.
  EXPECT_EQ(got.hull.size(), n);
  EXPECT_EQ(got.hull, convex_hull_serial(std::span<const Point2D>(pts)));
}

TEST(ConvexHull, DegenerateInputs) {
  machine::Machine m;
  // All identical.
  const std::vector<Point2D> same(50, Point2D{3, 4});
  EXPECT_EQ(convex_hull(m, std::span<const Point2D>(same)).hull,
            (std::vector<Point2D>{{3, 4}}));
  // All collinear.
  std::vector<Point2D> line(40);
  for (std::size_t i = 0; i < line.size(); ++i) {
    line[i] = {static_cast<double>(i % 10), static_cast<double>(i % 10) * 2};
  }
  const auto hull = convex_hull(m, std::span<const Point2D>(line)).hull;
  EXPECT_EQ(hull, (std::vector<Point2D>{{0, 0}, {9, 18}}));
  // Empty input is rejected.
  EXPECT_THROW(convex_hull(m, std::span<const Point2D>{}),
               std::invalid_argument);
}

TEST(ConvexHull, ExpectedIterationsAreLogarithmic) {
  machine::Machine m;
  for (const std::size_t n : {1000u, 10000u, 100000u}) {
    const auto pts = random_points(n, 303, 1u << 20);
    const HullResult got = convex_hull(m, std::span<const Point2D>(pts));
    const double lg = std::log2(static_cast<double>(n));
    EXPECT_LE(got.iterations, static_cast<std::size_t>(8.0 * lg)) << n;
  }
}

TEST(ConvexHull, HullIsConvexAndContainsInput) {
  machine::Machine m;
  const auto pts = random_points(5000, 304, 1u << 16);
  const auto hull = convex_hull(m, std::span<const Point2D>(pts)).hull;
  const auto cross = [](const Point2D& a, const Point2D& b, const Point2D& c) {
    return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
  };
  const std::size_t h = hull.size();
  ASSERT_GE(h, 3u);
  for (std::size_t i = 0; i < h; ++i) {
    // Strict left turns all the way around.
    EXPECT_GT(cross(hull[i], hull[(i + 1) % h], hull[(i + 2) % h]), 0.0);
    // Every input point on or left of every hull edge.
    for (std::size_t k = 0; k < pts.size(); k += 97) {
      EXPECT_GE(cross(hull[i], hull[(i + 1) % h], pts[k]), 0.0);
    }
  }
}

}  // namespace
}  // namespace scanprim::algo
