// Segmented quicksort (§2.3.1): correctness on uniform and adversarial
// inputs, both pivot rules, the expected O(lg n) iteration count, and the
// segmented three-way split itself.
#include "src/algo/quicksort.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

void expect_sorts(std::span<const double> keys, PivotRule rule) {
  machine::Machine m;
  const QuicksortResult r = quicksort(m, keys, rule);
  std::vector<double> expect(keys.begin(), keys.end());
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(r.keys, expect);
}

class QuicksortSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuicksortSweep, SortsUniformDoubles) {
  const auto keys = testutil::random_doubles(GetParam(), 141);
  expect_sorts(keys, PivotRule::Random);
  expect_sorts(keys, PivotRule::First);
}

INSTANTIATE_TEST_SUITE_P(Sizes, QuicksortSweep,
                         ::testing::Values(0, 1, 2, 3, 100, 4096, 30000));

TEST(Quicksort, AdversarialInputs) {
  std::vector<double> asc(5000), desc(5000), equal(5000, 3.25), few(5000);
  for (std::size_t i = 0; i < asc.size(); ++i) {
    asc[i] = static_cast<double>(i);
    desc[i] = static_cast<double>(asc.size() - i);
    few[i] = static_cast<double>(i % 3);
  }
  for (const auto* v : {&asc, &desc, &equal, &few}) {
    expect_sorts(*v, PivotRule::Random);
  }
  // The First rule on pre-sorted input terminates immediately (the paper's
  // step-1 check).
  machine::Machine m;
  const QuicksortResult r = quicksort(m, asc, PivotRule::First);
  EXPECT_EQ(r.iterations, 0u);
}

TEST(Quicksort, AllEqualKeysTerminateInstantly) {
  machine::Machine m;
  const std::vector<double> keys(10000, 7.0);
  const QuicksortResult r = quicksort(m, keys);
  EXPECT_EQ(r.iterations, 0u);
}

TEST(Quicksort, ExpectedIterationsAreLogarithmic) {
  // With random pivots, iterations concentrate near c·lg n for small c.
  for (const std::size_t n : {1000u, 10000u, 100000u}) {
    machine::Machine m;
    const auto keys = testutil::random_doubles(n, 142);
    const QuicksortResult r = quicksort(m, keys, PivotRule::Random, 99);
    const double lg = std::log2(static_cast<double>(n));
    EXPECT_LE(r.iterations, static_cast<std::size_t>(6.0 * lg))
        << "n=" << n << " iterations=" << r.iterations;
    EXPECT_GE(r.iterations, static_cast<std::size_t>(lg / 2.0));
  }
}

TEST(Quicksort, StepsPerIterationAreConstant) {
  // The whole point of the scan model: each quicksort iteration costs O(1)
  // steps regardless of n.
  const auto steps_per_iter = [](std::size_t n) {
    machine::Machine m(machine::Model::Scan);
    const auto keys = testutil::random_doubles(n, 143);
    const QuicksortResult r = quicksort(m, keys, PivotRule::Random, 7);
    return static_cast<double>(m.stats().steps) /
           static_cast<double>(r.iterations);
  };
  const double small = steps_per_iter(1 << 10);
  const double large = steps_per_iter(1 << 16);
  EXPECT_NEAR(small, large, small * 0.25);
}

TEST(SegSplit3, SplitsEachSegmentIntoThreeStableGroups) {
  machine::Machine m;
  const std::size_t n = 20000;
  const auto codes = testutil::random_vector<std::uint8_t>(n, 144, 3);
  const Flags segs = testutil::random_flags(n, 145, 11);
  const auto idx =
      seg_split3_index(m, std::span<const std::uint8_t>(codes), FlagsView(segs));
  const auto moved =
      m.permute(std::span<const std::uint8_t>(codes), std::span<const std::size_t>(idx));
  // Within each segment: sorted by code.
  std::size_t start = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (i == n || segs[i]) {
      for (std::size_t j = start; j + 1 < i; ++j) {
        ASSERT_LE(moved[j], moved[j + 1]) << "segment at " << start;
      }
      start = i;
    }
  }
  // And it is a permutation that never crosses segment boundaries.
  std::vector<bool> seen(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FALSE(seen[idx[i]]);
    seen[idx[i]] = true;
  }
}

}  // namespace
}  // namespace scanprim::algo
