// Synchronous push-relabel maximum flow against Dinic. Integral capacities
// keep every push exact.
#include "src/algo/max_flow.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

std::vector<FlowEdge> random_network(std::size_t n, std::size_t m,
                                     std::uint64_t seed) {
  auto g = testutil::rng(seed);
  std::vector<FlowEdge> edges;
  // A couple of guaranteed source->...->sink paths plus random edges.
  for (std::size_t v = 1; v < n; ++v) {
    edges.push_back({g() % v, v, static_cast<double>(1 + g() % 20)});
  }
  for (std::size_t e = 0; e < m; ++e) {
    const std::size_t u = g() % n, v = g() % n;
    if (u != v) edges.push_back({u, v, static_cast<double>(1 + g() % 20)});
  }
  return edges;
}

void check_flow_validity(std::size_t n, std::span<const FlowEdge> edges,
                         const MaxFlowResult& r, std::size_t source,
                         std::size_t sink) {
  std::vector<double> net(n, 0.0);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    ASSERT_GE(r.flow[e], -1e-9);
    ASSERT_LE(r.flow[e], edges[e].capacity + 1e-9);
    net[edges[e].from] -= r.flow[e];
    net[edges[e].to] += r.flow[e];
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (v != source && v != sink) {
      ASSERT_NEAR(net[v], 0.0, 1e-9) << "conservation at " << v;
    }
  }
  ASSERT_NEAR(net[sink], r.value, 1e-9);
}

struct MfCase {
  std::size_t n;
  std::size_t m;
};

class MfSweep : public ::testing::TestWithParam<MfCase> {};

TEST_P(MfSweep, MatchesDinic) {
  const auto [n, edge_count] = GetParam();
  machine::Machine m;
  const auto edges = random_network(n, edge_count, 1100 + n);
  const MaxFlowResult got =
      max_flow(m, n, std::span<const FlowEdge>(edges), 0, n - 1);
  const double ref =
      max_flow_serial(n, std::span<const FlowEdge>(edges), 0, n - 1);
  EXPECT_NEAR(got.value, ref, 1e-9);
  check_flow_validity(n, std::span<const FlowEdge>(edges), got, 0, n - 1);
}

INSTANTIATE_TEST_SUITE_P(Cases, MfSweep,
                         ::testing::Values(MfCase{2, 1}, MfCase{4, 6},
                                           MfCase{8, 20}, MfCase{16, 60},
                                           MfCase{32, 120}, MfCase{64, 200}));

TEST(MaxFlow, ManyRandomTrials) {
  machine::Machine m;
  auto g = testutil::rng(1101);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 3 + g() % 24;
    const auto edges = random_network(n, g() % 60, g());
    const std::size_t src = g() % n;
    std::size_t dst = g() % n;
    if (dst == src) dst = (dst + 1) % n;
    const MaxFlowResult got =
        max_flow(m, n, std::span<const FlowEdge>(edges), src, dst);
    const double ref =
        max_flow_serial(n, std::span<const FlowEdge>(edges), src, dst);
    ASSERT_NEAR(got.value, ref, 1e-9) << "trial " << trial;
    check_flow_validity(n, std::span<const FlowEdge>(edges), got, src, dst);
  }
}

TEST(MaxFlow, TextbookNetwork) {
  machine::Machine m;
  // The classic CLRS example: max flow 23.
  const std::vector<FlowEdge> edges{
      {0, 1, 16}, {0, 2, 13}, {1, 2, 10}, {2, 1, 4}, {1, 3, 12},
      {3, 2, 9},  {2, 4, 14}, {4, 3, 7},  {3, 5, 20}, {4, 5, 4}};
  const MaxFlowResult got =
      max_flow(m, 6, std::span<const FlowEdge>(edges), 0, 5);
  EXPECT_NEAR(got.value, 23.0, 1e-12);
}

TEST(MaxFlow, DisconnectedSinkGivesZero) {
  machine::Machine m;
  const std::vector<FlowEdge> edges{{0, 1, 5}, {2, 3, 5}};
  const MaxFlowResult got =
      max_flow(m, 4, std::span<const FlowEdge>(edges), 0, 3);
  EXPECT_EQ(got.value, 0.0);
}

TEST(MaxFlow, ParallelAndOpposingEdges) {
  machine::Machine m;
  const std::vector<FlowEdge> edges{
      {0, 1, 3}, {0, 1, 4}, {1, 0, 9}, {1, 2, 5}, {1, 2, 1}};
  const MaxFlowResult got =
      max_flow(m, 3, std::span<const FlowEdge>(edges), 0, 2);
  EXPECT_NEAR(got.value, 6.0, 1e-12);  // limited by the 5+1 into the sink...
  const double ref = max_flow_serial(3, std::span<const FlowEdge>(edges), 0, 2);
  EXPECT_NEAR(got.value, ref, 1e-12);
}

TEST(MaxFlow, BadArgumentsThrow) {
  machine::Machine m;
  const std::vector<FlowEdge> edges{{0, 1, 1}};
  EXPECT_THROW(max_flow(m, 2, std::span<const FlowEdge>(edges), 0, 0),
               std::invalid_argument);
  EXPECT_THROW(max_flow(m, 2, std::span<const FlowEdge>(edges), 0, 7),
               std::invalid_argument);
}

}  // namespace
}  // namespace scanprim::algo
