// Kill-a-shard soak (docs/SHARD.md): submitter threads hammer a 4-shard
// coordinator while a killer thread SIGKILLs a random live worker every few
// batches. The robustness contract under test, pinned for CI's process
// fault matrix: EVERY submitted request resolves (kOk bit-correct against
// the sequential reference, or a terminal error status — never a hang,
// never a corrupted payload), the dead shards restart and serve again, and
// the final drain completes with workers still dying around it.
//
// Runs under the shard fault matrix too (SCANPRIM_FAULT=shard.*), where the
// worker-side injections stack on top of the external SIGKILLs. NOT in the
// TSan allowlist: forking a multithreaded parent is outside TSan's model.
#include <gtest/gtest.h>

#if defined(__linux__)

#include <signal.h>
#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "src/shard/shard.hpp"

namespace scanprim::shard {
namespace {

using namespace std::chrono_literals;

std::vector<Value> ref_scan(const serve::ScanJob& j) {
  const std::size_t n = j.data.size();
  std::vector<Value> out(n);
  const bool seg = !j.flags.empty();
  Value acc = batch::op_identity(j.op);
  if (!j.backward) {
    for (std::size_t i = 0; i < n; ++i) {
      if (seg && j.flags[i]) acc = batch::op_identity(j.op);
      if (j.inclusive) {
        acc = batch::op_apply(j.op, acc, j.data[i]);
        out[i] = acc;
      } else {
        out[i] = acc;
        acc = batch::op_apply(j.op, acc, j.data[i]);
      }
    }
  } else {
    for (std::size_t i = n; i-- > 0;) {
      if (j.inclusive) {
        acc = batch::op_apply(j.op, acc, j.data[i]);
        out[i] = acc;
      } else {
        out[i] = acc;
        acc = batch::op_apply(j.op, acc, j.data[i]);
      }
      if (seg && j.flags[i]) acc = batch::op_identity(j.op);
    }
  }
  return out;
}

TEST(ShardSoak, EveryRequestResolvesUnderRandomWorkerSigkill) {
  Options o;
  o.shards = 4;
  o.slots_per_shard = 16;
  o.heartbeat_ms = 10;
  o.heartbeat_misses = 3;
  o.worker_threads = 1;
  o.max_pending = 8192;
  o.restart_backoff_ms = 2;
  o.max_restarts = 1'000'000;  // the killer may strike one shard repeatedly
  Coordinator coord(o);
  coord.start();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<bool> stop_killer{false};
  std::atomic<std::uint64_t> ok{0}, failed{0}, wrong{0};

  std::thread killer([&] {
    std::mt19937 rng(99);
    std::uniform_int_distribution<std::size_t> sd(0, o.shards - 1);
    while (!stop_killer.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(10ms);
      const pid_t pid = coord.shard_pid(sd(rng));
      if (pid > 0) ::kill(pid, SIGKILL);
    }
  });

  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      std::mt19937 rng(1000 + t);
      std::uniform_int_distribution<std::size_t> nd(1, 256);
      std::uniform_int_distribution<int> vd(-100, 100);
      std::uniform_int_distribution<int> od(0, batch::kOpCount - 1);
      std::uniform_int_distribution<int> bd(0, 1);
      for (int i = 0; i < kPerThread; ++i) {
        serve::ScanJob j;
        j.data.resize(nd(rng));
        for (auto& v : j.data) v = vd(rng);
        j.op = static_cast<Op>(od(rng));
        j.inclusive = bd(rng) != 0;
        j.backward = bd(rng) != 0;
        if (bd(rng) != 0) {
          j.flags.resize(j.data.size());
          for (auto& f : j.flags) f = bd(rng) == 0 ? 0 : 1;
        }
        const serve::ScanJob copy = j;
        std::future<serve::Result> fut = coord.submit(std::move(j));
        // The contract allows a terminal error (the request may have been
        // on a killed shard with its fail-over budget spent, or found the
        // rings full) — but a resolved-wrong payload or a hang never.
        if (fut.wait_for(30s) != std::future_status::ready) {
          wrong.fetch_add(1);  // counted as a contract violation
          continue;
        }
        serve::Result r = fut.get();
        if (r.status == serve::Status::kOk) {
          if (r.values == ref_scan(copy)) {
            ok.fetch_add(1);
          } else {
            wrong.fetch_add(1);
          }
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  stop_killer.store(true);
  killer.join();

  EXPECT_EQ(wrong.load(), 0u) << "hung or corrupted requests";
  EXPECT_GT(ok.load(), 0u);
  // Backpressure rejections are legal under fire, but the recovery paths
  // must keep the overwhelming majority flowing.
  EXPECT_GE(ok.load(), static_cast<std::uint64_t>(kThreads * kPerThread) / 2);

  const Metrics m = coord.metrics();
  EXPECT_EQ(m.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(ok.load() + failed.load(), m.completed + m.errors + m.timeouts +
                                           m.cancelled + m.rejected);
  // The killer fired for the whole run, so shards died and came back.
  EXPECT_GE(m.failovers, 1u);
  EXPECT_GE(m.restarts, 1u);

  // Dead-or-alive, the service drains cleanly and every shard is reaped.
  coord.shutdown();

  // And a fresh coordinator on the same process still works (no leaked
  // global state from all the fail-overs).
  Coordinator again(Options{.shards = 2, .slots_per_shard = 8});
  again.start();
  serve::ScanJob j;
  j.data = {1, 2, 3, 4};
  j.inclusive = true;
  serve::Result r = again.submit(std::move(j)).get();
  ASSERT_EQ(r.status, serve::Status::kOk);
  EXPECT_EQ(r.values, (std::vector<Value>{1, 3, 6, 10}));
  again.shutdown();
}

}  // namespace
}  // namespace scanprim::shard

#else  // !__linux__

TEST(ShardSoak, SkippedOnNonLinux) { GTEST_SKIP(); }

#endif
