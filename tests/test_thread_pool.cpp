#include "src/thread/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/fault.hpp"

namespace scanprim::thread {
namespace {

TEST(ThreadPool, GlobalPoolHasAtLeastOneWorker) {
  EXPECT_GE(num_workers(), 1u);
}

TEST(ThreadPool, RunInvokesEveryWorkerExactlyOnce) {
  std::vector<std::atomic<int>> hits(num_workers());
  pool().run([&](std::size_t w) { hits[w]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunPropagatesTheFirstException) {
  EXPECT_THROW(
      pool().run([](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool().run([&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), static_cast<int>(num_workers()));
}

TEST(ThreadPool, DedicatedPoolRunsRequestedWidth) {
  ThreadPool p(3);
  EXPECT_EQ(p.size(), 3u);
  std::vector<std::atomic<int>> hits(3);
  p.run([&](std::size_t w) { hits[w]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkerRequestClampsToOne) {
  ThreadPool p(0);
  EXPECT_EQ(p.size(), 1u);
}

TEST(ThreadPool, NestedRunDegradesToSerialWithoutDeadlock) {
  // run() from inside a running job must not re-enter the dispatch
  // machinery; every nested invocation executes all indices on the calling
  // thread, so the grand total is workers * workers.
  std::atomic<int> inner{0};
  pool().run([&](std::size_t) {
    pool().run([&](std::size_t) { inner++; });
  });
  const int w = static_cast<int>(num_workers());
  EXPECT_EQ(inner.load(), w * w);
}

TEST(ThreadPool, NestedRunRethrowsWorkerExceptions) {
  EXPECT_THROW(pool().run([&](std::size_t) {
    pool().run([](std::size_t w) {
      if (w == 0) throw std::runtime_error("nested boom");
    });
  }),
               std::runtime_error);
  // Outer and inner dispatch paths both stay usable afterwards.
  std::atomic<int> count{0};
  pool().run([&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), static_cast<int>(num_workers()));
}

TEST(ThreadPool, SerialFallbackRunsEveryIndexBeforeRethrowing) {
  // The serial path (nested or single-worker) must match the parallel
  // path's error semantics: every index is attempted, THEN the first error
  // rethrows. A first-throw-stops-the-rest serial path would leave sibling
  // blocks unprocessed only on some hosts — the worst kind of divergence.
  ThreadPool p(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(p.run([&](std::size_t) {
    // Nested: degrades to the serial loop over all 4 indices.
    p.run([&](std::size_t w) {
      if (w == 2) throw std::runtime_error("index 2 boom");
      ran++;
    });
  }),
               std::runtime_error);
  // 4 outer workers each ran a nested serial loop that attempted all 4
  // indices and completed the 3 non-throwing ones.
  EXPECT_EQ(ran.load(), 4 * 3);
}

TEST(ThreadPool, SingleWorkerPoolRunsEveryIndexBeforeRethrowing) {
  ThreadPool p(1);
  std::atomic<int> ran{0};
  EXPECT_THROW(p.run([&](std::size_t) {
    ran++;
    throw std::runtime_error("boom");
  }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 1);
  p.run([&](std::size_t) { ran++; });  // still usable
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, InjectedWorkerFaultPropagatesAndPoolSurvives) {
  fault::disarm_all();
  fault::arm("thread.worker", 1, 1);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool().run([&](std::size_t) { ran++; }), fault::Injected);
  // Exactly one worker body was replaced by the fault; the rest ran.
  EXPECT_EQ(ran.load(), static_cast<int>(num_workers()) - 1);
  fault::disarm_all();
  ran = 0;
  pool().run([&](std::size_t) { ran++; });
  EXPECT_EQ(ran.load(), static_cast<int>(num_workers()));
}

TEST(BlockOf, PartitionsExactlyAndBalanced) {
  for (std::size_t n : {0u, 1u, 7u, 64u, 1000u, 12345u}) {
    for (std::size_t nb : {1u, 2u, 3u, 7u, 16u}) {
      std::size_t covered = 0;
      std::size_t min_sz = n + 1, max_sz = 0;
      std::size_t expected_begin = 0;
      for (std::size_t b = 0; b < nb; ++b) {
        const Block blk = block_of(n, nb, b);
        EXPECT_EQ(blk.begin, expected_begin);
        expected_begin = blk.end;
        covered += blk.size();
        min_sz = std::min(min_sz, blk.size());
        max_sz = std::max(max_sz, blk.size());
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(expected_begin, n);
      EXPECT_LE(max_sz - min_sz, 1u) << "n=" << n << " nb=" << nb;
    }
  }
}

TEST(ParallelFor, TouchesEveryIndexOnce) {
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { hits[i]++; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeIsFine) {
  bool touched = false;
  parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelBlocks, NestedCallsDegradeSerially) {
  // A parallel region that itself calls parallel_for must not deadlock.
  std::atomic<long> total{0};
  parallel_blocks(100000, [&](Block blk, std::size_t) {
    parallel_for(blk.size(), [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 100000);
}

TEST(ParallelFor, ComputesPrefixConsistentState) {
  // Data race check fodder: each index writes a pure function of i.
  const std::size_t n = 50000;
  std::vector<std::uint64_t> v(n);
  parallel_for(n, [&](std::size_t i) { v[i] = i * i; });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(v[i], i * i);
}

}  // namespace
}  // namespace scanprim::thread
