// Parallel line drawing (§2.4.1, Figure 9) against the serial DDA.
#include "src/algo/line_draw.hpp"

#include <cstdlib>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

std::vector<LineSegment> random_lines(std::size_t count, std::uint64_t seed) {
  auto g = testutil::rng(seed);
  std::vector<LineSegment> lines(count);
  for (auto& l : lines) {
    l.a = {static_cast<std::int64_t>(g() % 200),
           static_cast<std::int64_t>(g() % 200)};
    l.b = {static_cast<std::int64_t>(g() % 200),
           static_cast<std::int64_t>(g() % 200)};
  }
  return lines;
}

TEST(LineDraw, MatchesSerialDdaPixelForPixel) {
  machine::Machine m;
  const auto lines = random_lines(200, 181);
  const RasterResult r = draw_lines(m, std::span<const LineSegment>(lines));
  std::size_t off = 0;
  for (std::size_t l = 0; l < lines.size(); ++l) {
    const auto ref = dda_serial(lines[l]);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(r.pixels[off + i], ref[i]) << "line " << l << " pixel " << i;
      ASSERT_EQ(r.line_of_pixel[off + i], l);
    }
    ASSERT_TRUE(r.line_starts[off]);
    off += ref.size();
  }
  EXPECT_EQ(off, r.pixels.size());
}

TEST(LineDraw, PixelChainsAreEightConnected) {
  const auto lines = random_lines(100, 182);
  for (const auto& l : lines) {
    const auto px = dda_serial(l);
    EXPECT_EQ(px.front(), l.a);
    EXPECT_EQ(px.back(), l.b);
    for (std::size_t i = 1; i < px.size(); ++i) {
      EXPECT_LE(std::llabs(px[i].x - px[i - 1].x), 1);
      EXPECT_LE(std::llabs(px[i].y - px[i - 1].y), 1);
    }
  }
}

TEST(LineDraw, DegenerateLines) {
  machine::Machine m;
  // A point and a unit step.
  const std::vector<LineSegment> lines{{{5, 5}, {5, 5}}, {{0, 0}, {1, 0}}};
  const RasterResult r = draw_lines(m, std::span<const LineSegment>(lines));
  ASSERT_EQ(r.pixels.size(), 3u);
  EXPECT_EQ(r.pixels[0], (Point{5, 5}));
  EXPECT_EQ(r.pixels[1], (Point{0, 0}));
  EXPECT_EQ(r.pixels[2], (Point{1, 0}));
}

TEST(LineDraw, StepComplexityIsConstant) {
  // O(1) program steps regardless of line count and length (§2.4.1).
  const auto steps_for = [](std::size_t count, std::uint64_t seed) {
    machine::Machine m(machine::Model::Scan);
    const auto lines = random_lines(count, seed);
    draw_lines(m, std::span<const LineSegment>(lines));
    return m.stats().steps;
  };
  EXPECT_EQ(steps_for(10, 1), steps_for(2000, 2));
}

TEST(LineDraw, AllOrientations) {
  machine::Machine m;
  const std::vector<LineSegment> lines{
      {{0, 0}, {10, 3}},   // shallow right
      {{0, 0}, {3, 10}},   // steep up
      {{10, 3}, {0, 0}},   // shallow left (reversed)
      {{0, 10}, {0, 0}},   // vertical down
      {{0, 0}, {-7, -7}},  // diagonal into negative quadrant
  };
  const RasterResult r = draw_lines(m, std::span<const LineSegment>(lines));
  std::size_t off = 0;
  for (const auto& l : lines) {
    const auto ref = dda_serial(l);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(r.pixels[off + i], ref[i]);
    }
    off += ref.size();
  }
}

}  // namespace
}  // namespace scanprim::algo
