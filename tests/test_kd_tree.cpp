// Scan-model k-d tree construction (Table 1's row): structure, balance,
// query correctness, and the O(1)-steps-per-level claim.
#include "src/algo/kd_tree.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

std::vector<Point2D> random_points(std::size_t n, std::uint64_t seed,
                                   std::uint64_t grid = 100000) {
  auto g = testutil::rng(seed);
  std::vector<Point2D> pts(n);
  for (auto& p : pts) {
    p = {static_cast<double>(g() % grid) / 7.0,
         static_cast<double>(g() % grid) / 7.0};
  }
  return pts;
}

class KdSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KdSweep, TreeIsValid) {
  machine::Machine m;
  const auto pts = random_points(GetParam(), 501 + GetParam());
  const KdTree t = build_kd_tree(m, std::span<const Point2D>(pts));
  EXPECT_TRUE(validate_kd_tree(t, std::span<const Point2D>(pts)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, KdSweep,
                         ::testing::Values(1, 2, 3, 7, 8, 100, 1000, 4097,
                                           30000));

TEST(KdTree, NearestNeighborMatchesBruteForce) {
  machine::Machine m;
  const auto pts = random_points(2000, 502);
  const KdTree t = build_kd_tree(m, std::span<const Point2D>(pts));
  auto g = testutil::rng(503);
  for (int q = 0; q < 200; ++q) {
    const Point2D query{static_cast<double>(g() % 100000) / 7.0,
                        static_cast<double>(g() % 100000) / 7.0};
    const std::size_t got = kd_nearest(t, std::span<const Point2D>(pts), query);
    double best = std::numeric_limits<double>::infinity();
    for (const auto& p : pts) {
      const double d = (p.x - query.x) * (p.x - query.x) +
                       (p.y - query.y) * (p.y - query.y);
      best = std::min(best, d);
    }
    const double dg = (pts[got].x - query.x) * (pts[got].x - query.x) +
                      (pts[got].y - query.y) * (pts[got].y - query.y);
    ASSERT_NEAR(dg, best, 1e-9);
  }
}

TEST(KdTree, DepthIsCeilLgN) {
  machine::Machine m;
  for (const std::size_t n : {2u, 64u, 65u, 1000u, 16384u}) {
    const auto pts = random_points(n, 504 + n);
    const KdTree t = build_kd_tree(m, std::span<const Point2D>(pts));
    std::size_t lg = 0;
    while ((std::size_t{1} << lg) < n) ++lg;
    EXPECT_LE(t.levels, lg + 1) << n;
    EXPECT_GE(t.levels, lg) << n;
  }
}

TEST(KdTree, DuplicateCoordinatesAreHandled) {
  machine::Machine m;
  const auto pts = random_points(3000, 505, 10);  // heavy ties on both axes
  const KdTree t = build_kd_tree(m, std::span<const Point2D>(pts));
  EXPECT_TRUE(validate_kd_tree(t, std::span<const Point2D>(pts)));
}

TEST(KdTree, StepsPerLevelAreConstant) {
  // O(1) program steps per level in the scan model: total steps / levels
  // must not depend on n (the point of keeping both sort orders alive).
  const auto steps_per_level = [](std::size_t n) {
    machine::Machine m(machine::Model::Scan);
    const auto pts = random_points(n, 506);
    m.reset_stats();
    const KdTree t = build_kd_tree(m, std::span<const Point2D>(pts));
    return static_cast<double>(m.stats().steps) /
           static_cast<double>(t.levels);
  };
  // Subtract nothing: the initial radix sorts are amortised into the first
  // level; compare totals per level across a 16x size range.
  const double small = steps_per_level(1 << 10);
  const double large = steps_per_level(1 << 14);
  EXPECT_NEAR(small, large, 0.35 * small);
}

TEST(KdTree, RangeQueriesMatchBruteForce) {
  machine::Machine m;
  const auto pts = random_points(3000, 508);
  const KdTree t = build_kd_tree(m, std::span<const Point2D>(pts));
  auto g = testutil::rng(509);
  for (int q = 0; q < 50; ++q) {
    double xlo = static_cast<double>(g() % 100000) / 7.0;
    double xhi = static_cast<double>(g() % 100000) / 7.0;
    double ylo = static_cast<double>(g() % 100000) / 7.0;
    double yhi = static_cast<double>(g() % 100000) / 7.0;
    if (xlo > xhi) std::swap(xlo, xhi);
    if (ylo > yhi) std::swap(ylo, yhi);
    auto got = kd_range(t, std::span<const Point2D>(pts), xlo, xhi, ylo, yhi);
    std::sort(got.begin(), got.end());
    std::vector<std::size_t> expect;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (pts[i].x >= xlo && pts[i].x <= xhi && pts[i].y >= ylo &&
          pts[i].y <= yhi) {
        expect.push_back(i);
      }
    }
    ASSERT_EQ(got, expect) << "query " << q;
  }
  // Whole-plane query returns everything; empty box nothing.
  EXPECT_EQ(kd_range(t, std::span<const Point2D>(pts), -1e18, 1e18, -1e18,
                     1e18)
                .size(),
            pts.size());
  EXPECT_TRUE(kd_range(t, std::span<const Point2D>(pts), 1, 0, 1, 0).empty());
}

TEST(KdTree, NodeCountIs2NMinus1) {
  machine::Machine m;
  const auto pts = random_points(777, 507);
  const KdTree t = build_kd_tree(m, std::span<const Point2D>(pts));
  EXPECT_EQ(t.nodes.size(), 2 * pts.size() - 1);
  std::size_t leaves = 0;
  for (const auto& nd : t.nodes) leaves += nd.axis == 2;
  EXPECT_EQ(leaves, pts.size());
}

}  // namespace
}  // namespace scanprim::algo
