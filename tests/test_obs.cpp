// Tests for src/obs: the log-bucketed histogram (bucket boundaries, merge
// algebra, exact-count quantiles against a sorted oracle), the per-thread
// trace rings (overflow drops oldest and counts it; concurrent emission
// races flush safely — the TSan CI job runs this binary), the Prometheus
// registry text format, and the integrations (serve collector, fault
// instants).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/fault/fault.hpp"
#include "src/obs/histogram.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/registry.hpp"
#include "src/serve/service.hpp"

namespace scanprim {
namespace {

using obs::Histogram;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override {
    fault::disarm_all();
    if (obs::tracing()) obs::stop_tracing();
    obs::set_ring_capacity(std::size_t{1} << 15);
  }

  /// Arms tracing into a throwaway file, or skips the test when tracing is
  /// unavailable (SCANPRIM_OBS=0) or already armed from the environment
  /// (SCANPRIM_TRACE — the trace CI job owns the writer then).
  bool start_or_skip(const char* filename) {
    if (obs::tracing()) return false;
    trace_path_ = ::testing::TempDir() + filename;
    return obs::start_tracing(trace_path_);
  }

  std::string trace_path_;
};

// --- histogram ---------------------------------------------------------------

TEST_F(ObsTest, HistogramBucketBoundariesRoundTrip) {
  // Every bucket's [lower, upper] must map back to itself, and upper + 1
  // must start the next bucket; the two invariants tile uint64 exactly.
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t lo = Histogram::bucket_lower(i);
    const std::uint64_t hi = Histogram::bucket_upper(i);
    ASSERT_LE(lo, hi) << "bucket " << i;
    ASSERT_EQ(Histogram::bucket_index(lo), i) << "lower of bucket " << i;
    ASSERT_EQ(Histogram::bucket_index(hi), i) << "upper of bucket " << i;
    if (hi != ~std::uint64_t{0}) {
      ASSERT_EQ(Histogram::bucket_index(hi + 1), i + 1)
          << "upper+1 of bucket " << i;
    } else {
      ASSERT_EQ(i, Histogram::kBuckets - 1);
    }
  }
  // Values below 2*kSubCount are exact: unit-width buckets.
  for (std::uint64_t v = 0; v < 2 * Histogram::kSubCount; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lower(v), v);
    EXPECT_EQ(Histogram::bucket_upper(v), v);
  }
  // The extremes of the domain are representable.
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}),
            Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_upper(Histogram::kBuckets - 1),
            ~std::uint64_t{0});
}

TEST_F(ObsTest, HistogramRelativeQuantisationBound) {
  // Reported bucket uppers overstate a value by at most the sub-bucket
  // resolution (1/32 with kSubBits=5).
  std::mt19937_64 rng(7);
  for (int t = 0; t < 20000; ++t) {
    const std::uint64_t v = rng();
    const std::uint64_t hi = Histogram::bucket_upper(Histogram::bucket_index(v));
    ASSERT_GE(hi, v);
    ASSERT_LE(hi - v, v / Histogram::kSubCount + 1) << "v=" << v;
  }
}

TEST_F(ObsTest, HistogramMergeAssociativeAndCommutative) {
  std::mt19937_64 rng(11);
  Histogram a, b, c;
  for (int i = 0; i < 500; ++i) a.record(rng() % 1000);
  for (int i = 0; i < 300; ++i) b.record(rng() % (1u << 20));
  for (int i = 0; i < 200; ++i) c.record(rng());

  Histogram abc, cba;
  abc.merge(a);   // (a + b) + c
  abc.merge(b);
  abc.merge(c);
  cba.merge(c);   // c + (b + a)
  cba.merge(b);
  cba.merge(a);

  EXPECT_EQ(abc.count(), cba.count());
  EXPECT_EQ(abc.sum(), cba.sum());
  EXPECT_EQ(abc.min(), cba.min());
  EXPECT_EQ(abc.max(), cba.max());
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    ASSERT_EQ(abc.bucket_count(i), cba.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(abc.count(), 1000u);
}

TEST_F(ObsTest, HistogramQuantilesExactInUnitRange) {
  // Values below 2*kSubCount land in unit buckets, so quantiles must equal
  // a sorted-oracle rank selection exactly (same rank formula the histogram
  // documents: ceil-ish rank = clamp(round(q*n), 1, n)).
  std::mt19937_64 rng(3);
  Histogram h;
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng() % (2 * Histogram::kSubCount);
    h.record(v);
    vals.push_back(v);
  }
  std::sort(vals.begin(), vals.end());
  const auto oracle = [&](double q) {
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(vals.size()) + 0.5);
    rank = std::max<std::uint64_t>(1, std::min<std::uint64_t>(rank, vals.size()));
    return vals[rank - 1];
  };
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.value_at_quantile(q), oracle(q)) << "q=" << q;
  }
  EXPECT_EQ(h.min(), vals.front());
  EXPECT_EQ(h.max(), vals.back());
  EXPECT_EQ(h.count(), vals.size());
}

TEST_F(ObsTest, HistogramQuantilesWithinBucketOfOracle) {
  // For the full range the rank is still exact; the reported value may only
  // exceed the oracle by its bucket's width.
  std::mt19937_64 rng(17);
  Histogram h;
  std::vector<std::uint64_t> vals;
  for (int i = 0; i < 4000; ++i) {
    // Mix scales so every octave band gets traffic.
    const std::uint64_t v = rng() >> (rng() % 60);
    h.record(v);
    vals.push_back(v);
  }
  std::sort(vals.begin(), vals.end());
  for (const double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(vals.size()) + 0.5);
    rank = std::max<std::uint64_t>(1, std::min<std::uint64_t>(rank, vals.size()));
    const std::uint64_t o = vals[rank - 1];
    const std::uint64_t got = h.value_at_quantile(q);
    ASSERT_GE(got, o) << "q=" << q;
    // Subtract rather than add: o + o/32 overflows for oracles near 2^64.
    EXPECT_LE(got - o, o / Histogram::kSubCount + 1) << "q=" << q;
  }
}

TEST_F(ObsTest, HistogramResetAndEmpty) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.value_at_quantile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.mean(), 0u);
  h.record(42);
  h.record(7);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_EQ(h.mean(), 24u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.value_at_quantile(1.0), 0u);
}

// --- trace rings -------------------------------------------------------------

TEST_F(ObsTest, SpanPairingAndProgramOrder) {
  if (!start_or_skip("obs_spans.json")) GTEST_SKIP() << "tracing unavailable";
  {
    obs::Span outer("obs.test.outer");
    { obs::Span inner("obs.test.inner"); }
    obs::instant("obs.test.mark", 99);
  }
  obs::flush();
  std::vector<obs::TraceEvent> mine;
  for (const obs::TraceEvent& e : obs::events_snapshot()) {
    if (e.name != nullptr && std::strncmp(e.name, "obs.test.", 9) == 0) {
      mine.push_back(e);
    }
  }
  ASSERT_EQ(mine.size(), 5u);
  EXPECT_EQ(mine[0].kind, obs::EventKind::kSpanBegin);
  EXPECT_STREQ(mine[0].name, "obs.test.outer");
  EXPECT_EQ(mine[1].kind, obs::EventKind::kSpanBegin);
  EXPECT_STREQ(mine[1].name, "obs.test.inner");
  EXPECT_EQ(mine[2].kind, obs::EventKind::kSpanEnd);
  EXPECT_STREQ(mine[2].name, "obs.test.inner");
  EXPECT_EQ(mine[3].kind, obs::EventKind::kInstant);
  EXPECT_EQ(mine[3].value, 99u);
  EXPECT_EQ(mine[4].kind, obs::EventKind::kSpanEnd);
  EXPECT_STREQ(mine[4].name, "obs.test.outer");
  // Same thread, monotone timestamps.
  for (std::size_t i = 1; i < mine.size(); ++i) {
    EXPECT_EQ(mine[i].tid, mine[0].tid);
    EXPECT_GE(mine[i].ts_ns, mine[i - 1].ts_ns);
  }
  EXPECT_TRUE(obs::stop_tracing());
  // The exported file is JSON with the Chrome-trace envelope; the python
  // validator in CI checks structure, here just the envelope.
  std::ifstream f(trace_path_);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("obs.test.inner"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  std::remove(trace_path_.c_str());
}

TEST_F(ObsTest, RingOverflowDropsOldestAndCountsThem) {
  obs::set_ring_capacity(64);
  if (!start_or_skip("obs_overflow.json")) {
    GTEST_SKIP() << "tracing unavailable";
  }
  const std::uint64_t drops0 = obs::dropped_events();
  constexpr std::uint64_t kEmitted = 200;
  // A fresh thread gets a fresh ring at the reduced capacity (the capacity
  // applies to rings created after the call; this test thread may already
  // own a full-size ring).
  std::thread emitter([] {
    for (std::uint64_t i = 0; i < kEmitted; ++i) {
      obs::instant("obs.test.overflow", i);
    }
  });
  emitter.join();
  obs::set_ring_capacity(std::size_t{1} << 15);
  obs::flush();

  std::vector<std::uint64_t> values;
  for (const obs::TraceEvent& e : obs::events_snapshot()) {
    if (e.name != nullptr && std::strcmp(e.name, "obs.test.overflow") == 0) {
      values.push_back(e.value);
    }
  }
  // The ring keeps exactly the newest window and the drops are counted.
  ASSERT_EQ(values.size(), 64u);
  EXPECT_EQ(values.front(), kEmitted - 64);
  EXPECT_EQ(values.back(), kEmitted - 1);
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_EQ(values[i], values[i - 1] + 1);  // oldest dropped, no gaps
  }
  EXPECT_EQ(obs::dropped_events() - drops0, kEmitted - 64);
  EXPECT_TRUE(obs::stop_tracing());
  std::remove(trace_path_.c_str());
}

TEST_F(ObsTest, ConcurrentSpansRaceFlush) {
  // TSan coverage: four threads emit spans and instants while the main
  // thread flushes concurrently. Torn slots must be skipped-and-counted,
  // never read: total recovered + dropped == total emitted.
  if (!start_or_skip("obs_race.json")) GTEST_SKIP() << "tracing unavailable";
  const std::uint64_t drops0 = obs::dropped_events();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kIters = 4000;
  std::atomic<int> running{kThreads};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&running] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        obs::Span s("obs.test.race");
        obs::instant("obs.test.race.i", i);
      }
      running.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  while (running.load(std::memory_order_relaxed) != 0) obs::flush();
  for (auto& t : threads) t.join();
  obs::flush();

  std::uint64_t seen = 0;
  for (const obs::TraceEvent& e : obs::events_snapshot()) {
    if (e.name != nullptr && std::strncmp(e.name, "obs.test.race", 13) == 0) {
      ++seen;
    }
  }
  const std::uint64_t dropped = obs::dropped_events() - drops0;
  EXPECT_EQ(seen + dropped, kThreads * kIters * 3);  // begin + instant + end
  EXPECT_TRUE(obs::stop_tracing());
  std::remove(trace_path_.c_str());
}

// --- registry ----------------------------------------------------------------

TEST_F(ObsTest, RenderTextCountersAndHistograms) {
  obs::counter("scanprim_testonly_widgets_total{kind=\"a\"}").add(3);
  obs::counter("scanprim_testonly_widgets_total{kind=\"b\"}").inc();
  obs::Histogram& h = obs::histogram("scanprim_testonly_latency");
  h.record(5);
  h.record(100);

  const std::string text = obs::render_text();
  EXPECT_NE(text.find("# TYPE scanprim_testonly_widgets_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("scanprim_testonly_widgets_total{kind=\"a\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("scanprim_testonly_widgets_total{kind=\"b\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE scanprim_testonly_latency histogram\n"),
            std::string::npos);
  // 5 sits in a unit bucket; 100's bucket upper comes from the indexing.
  EXPECT_NE(text.find("scanprim_testonly_latency_bucket{le=\"5\"} 1\n"),
            std::string::npos);
  const std::uint64_t upper100 =
      Histogram::bucket_upper(Histogram::bucket_index(100));
  EXPECT_NE(text.find("scanprim_testonly_latency_bucket{le=\"" +
                      std::to_string(upper100) + "\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("scanprim_testonly_latency_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("scanprim_testonly_latency_sum 105\n"),
            std::string::npos);
  EXPECT_NE(text.find("scanprim_testonly_latency_count 2\n"),
            std::string::npos);
  // Pool workers registered their utilisation counters at pool creation
  // (any earlier test touching the pool suffices; creating a Service below
  // does too). Not asserted here to keep this test order-independent.
}

TEST_F(ObsTest, FindOrCreateAggregatesSameSeries) {
  obs::Counter& c1 = obs::counter("scanprim_testonly_shared_total");
  obs::Counter& c2 = obs::counter("scanprim_testonly_shared_total");
  EXPECT_EQ(&c1, &c2);
  c1.add(2);
  c2.add(3);
  EXPECT_EQ(c1.get(), 5u);
}

// --- integrations ------------------------------------------------------------

TEST_F(ObsTest, FaultFiringEmitsInstant) {
  if (!start_or_skip("obs_fault.json")) GTEST_SKIP() << "tracing unavailable";
  fault::arm_handler("obs.test.fault", [] {}, 1, 2);
  SCANPRIM_FAULT_POINT("obs.test.fault");
  SCANPRIM_FAULT_POINT("obs.test.fault");
  fault::disarm_all();
  obs::flush();

  std::vector<std::uint64_t> hits;
  for (const obs::TraceEvent& e : obs::events_snapshot()) {
    if (e.kind == obs::EventKind::kFault && e.name != nullptr &&
        std::strcmp(e.name, "obs.test.fault") == 0) {
      hits.push_back(e.value);
    }
  }
  ASSERT_EQ(hits.size(), 2u);  // one instant per triggered hit
  EXPECT_EQ(hits[0], 1u);
  EXPECT_EQ(hits[1], 2u);
  EXPECT_TRUE(obs::stop_tracing());
  std::remove(trace_path_.c_str());
}

TEST_F(ObsTest, ServiceExposesCollectorAndExactLatencies) {
  serve::Service::Options o;
  o.window_us = 1;
  auto svc = std::make_unique<serve::Service>(o);

  constexpr int kJobs = 32;
  std::vector<std::future<serve::Result>> futs;
  for (int i = 0; i < kJobs; ++i) {
    serve::ScanJob j;
    j.data.assign(256, 1);
    futs.push_back(svc->submit(std::move(j)));
  }
  for (auto& f : futs) {
    EXPECT_EQ(f.get().status, serve::Status::kOk);
  }

  const serve::Metrics m = svc->metrics();
  EXPECT_EQ(m.completed, kJobs);
  // Exact histogram population: every completed request is in the count —
  // no reservoir, no sampling window.
  EXPECT_EQ(m.latency_count, kJobs);
  EXPECT_GT(m.p50_ns, 0u);
  EXPECT_LE(m.p50_ns, m.p95_ns);
  EXPECT_LE(m.p95_ns, m.p99_ns);
  EXPECT_LE(m.p99_ns, m.max_ns);
  EXPECT_GT(m.mean_ns, 0u);
  EXPECT_LE(m.mean_ns, m.max_ns);

  // The collector mirrors the snapshot into Prometheus text, per service.
  const std::string text = obs::render_text();
  EXPECT_NE(text.find("scanprim_serve_completed_total{service="),
            std::string::npos);
  EXPECT_NE(text.find("scanprim_serve_latency_ns_bucket{service="),
            std::string::npos);
  EXPECT_NE(text.find("scanprim_serve_latency_ns_count{service="),
            std::string::npos);
  // Thread-pool utilisation counters are registered by the pool the
  // dispatches ran on.
  EXPECT_NE(text.find("scanprim_pool_tasks_total{worker=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("scanprim_pool_busy_ns_total{worker=\"0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("scanprim_pool_wakeups_total{worker=\"0\"}"),
            std::string::npos);

  // Shutdown unregisters the collector: its series disappear from renders
  // (this binary owns the only Service instances).
  svc->shutdown();
  svc.reset();
  const std::string after = obs::render_text();
  EXPECT_EQ(after.find("scanprim_serve_submitted_total{service="),
            std::string::npos);
}

}  // namespace
}  // namespace scanprim
