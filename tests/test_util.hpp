// Shared helpers for the scanprim test suite: seeded random data and slow,
// obviously-correct reference implementations to test against.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "src/core/segmented.hpp"

namespace scanprim::testutil {

inline std::mt19937_64 rng(std::uint64_t seed) { return std::mt19937_64(seed); }

template <class T>
std::vector<T> random_vector(std::size_t n, std::uint64_t seed,
                             std::uint64_t bound = 1000) {
  std::mt19937_64 g(seed);
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(g() % bound);
  return v;
}

inline std::vector<double> random_doubles(std::size_t n, std::uint64_t seed,
                                          double lo = -1000.0,
                                          double hi = 1000.0) {
  std::mt19937_64 g(seed);
  std::uniform_real_distribution<double> d(lo, hi);
  std::vector<double> v(n);
  for (auto& x : v) x = d(g);
  return v;
}

/// Random segment flags with roughly one segment per `avg_len` elements.
/// Position 0 is always flagged.
inline Flags random_flags(std::size_t n, std::uint64_t seed,
                          std::size_t avg_len = 7) {
  std::mt19937_64 g(seed);
  Flags f(n, 0);
  if (n > 0) f[0] = 1;
  for (std::size_t i = 1; i < n; ++i) f[i] = (g() % avg_len) == 0 ? 1 : 0;
  return f;
}

// --- reference scans --------------------------------------------------------

template <class T, class Op>
std::vector<T> ref_exclusive_scan(std::span<const T> in, Op op) {
  std::vector<T> out(in.size());
  T acc = Op::identity();
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc = op(acc, in[i]);
  }
  return out;
}

template <class T, class Op>
std::vector<T> ref_inclusive_scan(std::span<const T> in, Op op) {
  std::vector<T> out(in.size());
  T acc = Op::identity();
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc = op(acc, in[i]);
    out[i] = acc;
  }
  return out;
}

template <class T, class Op>
std::vector<T> ref_backward_exclusive_scan(std::span<const T> in, Op op) {
  std::vector<T> out(in.size());
  T acc = Op::identity();
  for (std::size_t i = in.size(); i-- > 0;) {
    out[i] = acc;
    acc = op(acc, in[i]);
  }
  return out;
}

template <class T, class Op>
std::vector<T> ref_backward_inclusive_scan(std::span<const T> in, Op op) {
  std::vector<T> out(in.size());
  T acc = Op::identity();
  for (std::size_t i = in.size(); i-- > 0;) {
    acc = op(acc, in[i]);
    out[i] = acc;
  }
  return out;
}

// Segmented references (segments restart at flags; direction-aware).
template <class T, class Op>
std::vector<T> ref_seg_exclusive_scan(std::span<const T> in, FlagsView f,
                                      Op op) {
  std::vector<T> out(in.size());
  T acc = Op::identity();
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (f[i]) acc = Op::identity();
    out[i] = acc;
    acc = op(acc, in[i]);
  }
  return out;
}

template <class T, class Op>
std::vector<T> ref_seg_inclusive_scan(std::span<const T> in, FlagsView f,
                                      Op op) {
  std::vector<T> out(in.size());
  T acc = Op::identity();
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (f[i]) acc = Op::identity();
    acc = op(acc, in[i]);
    out[i] = acc;
  }
  return out;
}

template <class T, class Op>
std::vector<T> ref_seg_backward_exclusive_scan(std::span<const T> in,
                                               FlagsView f, Op op) {
  std::vector<T> out(in.size());
  T acc = Op::identity();
  for (std::size_t i = in.size(); i-- > 0;) {
    out[i] = acc;
    acc = op(acc, in[i]);
    if (f[i]) acc = Op::identity();
  }
  return out;
}

template <class T, class Op>
std::vector<T> ref_seg_backward_inclusive_scan(std::span<const T> in,
                                               FlagsView f, Op op) {
  std::vector<T> out(in.size());
  T acc = Op::identity();
  for (std::size_t i = in.size(); i-- > 0;) {
    acc = op(acc, in[i]);
    out[i] = acc;
    if (f[i]) acc = Op::identity();
  }
  return out;
}

/// The sizes the parameterised suites sweep: around the serial cutoff and
/// well past it so both the sequential and the blocked parallel kernels run.
inline std::vector<std::size_t> sweep_sizes() {
  return {0, 1, 2, 3, 5, 16, 100, 1000, 4095, 4096, 4097, 20000, 100001};
}

}  // namespace scanprim::testutil
