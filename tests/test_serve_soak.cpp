// Concurrency soak for the batching scan service: 8 submitter threads
// hammer one Service with mixed job kinds, operators, directions, deadlines,
// and cancellations while the main thread shuts the service down mid-flight.
// Every future must resolve to a coherent terminal state and every kOk
// result must match its sequential reference. Run under TSan in CI (the
// short-soak job in .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "src/serve/service.hpp"
#include "test_util.hpp"

namespace scanprim::serve {
namespace {

using namespace std::chrono_literals;

std::vector<Value> ref_scan(const ScanJob& j) {
  const std::size_t n = j.data.size();
  std::vector<Value> out(n);
  const bool seg = !j.flags.empty();
  Value acc = batch::op_identity(j.op);
  if (!j.backward) {
    for (std::size_t i = 0; i < n; ++i) {
      if (seg && j.flags[i]) acc = batch::op_identity(j.op);
      if (j.inclusive) {
        acc = batch::op_apply(j.op, acc, j.data[i]);
        out[i] = acc;
      } else {
        out[i] = acc;
        acc = batch::op_apply(j.op, acc, j.data[i]);
      }
    }
  } else {
    for (std::size_t i = n; i-- > 0;) {
      if (j.inclusive) {
        acc = batch::op_apply(j.op, acc, j.data[i]);
        out[i] = acc;
      } else {
        out[i] = acc;
        acc = batch::op_apply(j.op, acc, j.data[i]);
      }
      if (seg && j.flags[i]) acc = batch::op_identity(j.op);
    }
  }
  return out;
}

struct Submitted {
  ScanJob job;  // empty data => was a pack/enumerate (checked by kind)
  std::vector<Value> pack_expect;
  std::size_t enum_kept = 0;
  int kind = 0;  // 0 scan, 1 pack, 2 enumerate
  std::future<Result> fut;
};

TEST(ServeSoak, MixedLoadWithMidFlightShutdown) {
  // from_env so CI can pin the batch execution mode (the forced-parallel
  // TSan soak step sets SCANPRIM_SERVE_PARALLEL=force).
  Service::Options o = Service::Options::from_env();
  o.window_us = 300;
  o.queue_capacity = 4096;
  Service svc(o);

  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 60;
  std::vector<std::vector<Submitted>> work(kThreads);
  std::vector<std::thread> threads;
  std::atomic<int> submitted_total{0};

  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 g(1000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kJobsPerThread; ++i) {
        Submitted s;
        SubmitOptions so;
        if (g() % 5 == 0) so.deadline = std::chrono::microseconds(g() % 400);
        if (g() % 7 == 0) {
          so.cancel = make_cancel_token();
          if (g() % 2 == 0) so.cancel->store(true);
        }
        const std::size_t n = g() % 3000;
        const int kind = static_cast<int>(g() % 3);
        s.kind = kind;
        if (kind == 0) {
          s.job.data.resize(n);
          for (auto& v : s.job.data) v = static_cast<Value>(g() % 50);
          s.job.op = static_cast<Op>(g() % batch::kOpCount);
          s.job.inclusive = (g() & 1) != 0;
          s.job.backward = (g() & 1) != 0;
          if ((g() & 1) != 0) {
            s.job.flags.assign(n, 0);
            for (auto& f : s.job.flags) f = g() % 6 == 0 ? 1 : 0;
          }
          s.fut = svc.submit(s.job, so);
        } else if (kind == 1) {
          PackJob p;
          p.data.resize(n);
          p.keep.resize(n);
          for (auto& v : p.data) v = static_cast<Value>(g() % 50);
          for (auto& k : p.keep) k = g() % 3 == 0 ? 1 : 0;
          for (std::size_t x = 0; x < n; ++x) {
            if (p.keep[x]) s.pack_expect.push_back(p.data[x]);
          }
          s.fut = svc.submit(std::move(p), so);
        } else {
          EnumerateJob e;
          e.keep.resize(n);
          std::size_t kept = 0;
          for (auto& k : e.keep) {
            k = g() % 2;
            kept += k;
          }
          s.enum_kept = kept;
          s.fut = svc.submit(std::move(e), so);
        }
        work[t].push_back(std::move(s));
        submitted_total.fetch_add(1, std::memory_order_relaxed);
        if (g() % 16 == 0) std::this_thread::yield();
      }
    });
  }

  // Shut down while submitters are still going: late submissions must
  // resolve kShutdown, everything accepted before must drain.
  while (submitted_total.load(std::memory_order_relaxed) <
         kThreads * kJobsPerThread / 2) {
    std::this_thread::yield();
  }
  svc.shutdown();
  for (auto& th : threads) th.join();

  int ok = 0, refused = 0, abandoned = 0;
  for (auto& per_thread : work) {
    for (auto& s : per_thread) {
      Result r = s.fut.get();  // every future must resolve
      switch (r.status) {
        case Status::kOk:
          ++ok;
          if (s.kind == 0) {
            ASSERT_EQ(r.values, ref_scan(s.job));
          } else if (s.kind == 1) {
            ASSERT_EQ(r.values, s.pack_expect);
            ASSERT_EQ(r.kept, s.pack_expect.size());
          } else {
            ASSERT_EQ(r.kept, s.enum_kept);
          }
          break;
        case Status::kRejected:
        case Status::kShutdown:
          ++refused;
          break;
        case Status::kTimeout:
        case Status::kCancelled:
          ++abandoned;
          break;
        case Status::kError:
          ADD_FAILURE() << "no faults are armed here: " << r.error;
          break;
      }
    }
  }
  EXPECT_EQ(ok + refused + abandoned, kThreads * kJobsPerThread);
  EXPECT_GT(ok, 0);  // the service did real work before the shutdown

  const Metrics m = svc.metrics();
  EXPECT_EQ(m.submitted, static_cast<std::uint64_t>(kThreads * kJobsPerThread));
  EXPECT_EQ(m.completed, static_cast<std::uint64_t>(ok));
  // Everything accepted was resolved exactly once.
  EXPECT_EQ(m.accepted, m.completed + m.timeouts + m.cancelled + m.errors);
}

TEST(ServeSoak, RepeatedConstructionAndTeardown) {
  // Service lifetime churn under load: catches join/drain races that a
  // single long-lived service never sees.
  std::mt19937_64 g(55);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::future<Result>> futs;
    {
      Service::Options o;
      o.window_us = 100;
      Service svc(o);
      for (int i = 0; i < 16; ++i) {
        ScanJob j;
        j.data.resize(64 + g() % 512);
        for (auto& v : j.data) v = static_cast<Value>(g() % 10);
        j.op = static_cast<Op>(g() % batch::kOpCount);
        futs.push_back(svc.submit(std::move(j)));
      }
    }  // destructor shuts down and drains
    for (auto& f : futs) {
      const Result r = f.get();
      EXPECT_EQ(r.status, Status::kOk);  // drained, not dropped
    }
  }
}

TEST(ServeSoak, ShutdownRacesInFlightSubmitters) {
  // shutdown() concurrent with a storm of submits: every future must
  // resolve exactly once to either a real terminal state (accepted before
  // the cut) or kShutdown (after), and the accounting must balance. The
  // promise itself enforces the exactly-once half — a double resolve would
  // throw std::future_error inside the service.
  std::mt19937_64 seed_gen(77);
  for (int round = 0; round < 8; ++round) {
    Service::Options o;
    o.window_us = 100;
    Service svc(o);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 40;
    std::vector<std::vector<std::future<Result>>> futs(kThreads);
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t, seed = seed_gen()] {
        std::mt19937_64 g(seed);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (int i = 0; i < kPerThread; ++i) {
          ScanJob j;
          j.data.resize(1 + g() % 300);
          for (auto& v : j.data) v = static_cast<Value>(g() % 10);
          futs[t].push_back(svc.submit(std::move(j)));
        }
      });
    }
    go.store(true, std::memory_order_release);
    // Let a random slice of the submissions land, then cut.
    std::this_thread::sleep_for(std::chrono::microseconds(seed_gen() % 800));
    svc.shutdown();
    for (auto& th : threads) th.join();
    std::uint64_t accepted_seen = 0;
    for (auto& per_thread : futs) {
      for (auto& f : per_thread) {
        const Result r = f.get();
        if (r.status == Status::kOk) ++accepted_seen;
        EXPECT_TRUE(r.status == Status::kOk ||
                    r.status == Status::kShutdown ||
                    r.status == Status::kRejected)
            << status_name(r.status);
      }
    }
    const Metrics m = svc.metrics();
    EXPECT_EQ(m.accepted, m.completed + m.timeouts + m.cancelled + m.errors);
    EXPECT_EQ(m.completed, accepted_seen);
  }
}

TEST(ServeSoak, ConcurrentDoubleShutdownIsSafe) {
  Service::Options o;
  o.window_us = 100;
  Service svc(o);
  std::mt19937_64 g(88);
  std::vector<std::future<Result>> futs;
  for (int i = 0; i < 32; ++i) {
    ScanJob j;
    j.data.resize(64 + g() % 256);
    for (auto& v : j.data) v = static_cast<Value>(g() % 10);
    futs.push_back(svc.submit(std::move(j)));
  }
  std::thread a([&] { svc.shutdown(); });
  std::thread b([&] { svc.shutdown(); });
  a.join();
  b.join();
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::kOk);
  svc.shutdown();  // and once more from the destructor's thread
}

TEST(ServeSoak, SubmitAfterShutdownResolvesImmediately) {
  Service::Options o;
  o.window_us = 100;
  Service svc(o);
  svc.shutdown();
  std::mt19937_64 g(99);
  for (int i = 0; i < 8; ++i) {
    ScanJob j;
    j.data.resize(32);
    for (auto& v : j.data) v = static_cast<Value>(g() % 10);
    const Result r = svc.submit(std::move(j)).get();
    EXPECT_EQ(r.status, Status::kShutdown);
  }
  EXPECT_EQ(svc.metrics().completed, 0u);
}

}  // namespace
}  // namespace scanprim::serve
