// Line of sight: the Table 1 O(1) scan-model geometry entry.
#include "src/algo/line_of_sight.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

class LosSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LosSweep, MatchesSerial) {
  machine::Machine m;
  const auto alt = testutil::random_doubles(GetParam(), 191, 0, 500);
  EXPECT_EQ(line_of_sight(m, std::span<const double>(alt)),
            line_of_sight_serial(std::span<const double>(alt)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LosSweep,
                         ::testing::Values(0, 1, 2, 100, 4097, 50000));

TEST(LineOfSight, MonotoneRidgeIsFullyVisible) {
  machine::Machine m;
  std::vector<double> alt(100);
  for (std::size_t i = 0; i < alt.size(); ++i) {
    alt[i] = static_cast<double>(i * i);  // convex: every point visible
  }
  const Flags v = line_of_sight(m, std::span<const double>(alt));
  for (const auto f : v) EXPECT_TRUE(f);
}

TEST(LineOfSight, ValleyBehindPeakIsHidden) {
  machine::Machine m;
  // The peak at distance 1 (angle 10) shadows everything up to the far
  // summit at distance 5, which clears it (angle 60/5 = 12 > 10).
  const std::vector<double> alt{0, 10, 1, 2, 3, 60};
  const Flags v = line_of_sight(m, std::span<const double>(alt));
  EXPECT_EQ(v, (Flags{1, 1, 0, 0, 0, 1}));
}

TEST(LineOfSight, ObserverHeightUncoversTerrain) {
  machine::Machine m;
  const std::vector<double> alt{0, 10, 1};
  EXPECT_EQ(line_of_sight(m, std::span<const double>(alt), 0.0),
            (Flags{1, 1, 0}));
  // From a 30-unit tower everything is visible (the angles now decrease
  // with distance, so the near peak no longer shadows the valley).
  EXPECT_EQ(line_of_sight(m, std::span<const double>(alt), 30.0),
            (Flags{1, 1, 1}));
}

TEST(LineOfSight, UsesExactlyOneScan) {
  machine::Machine m(machine::Model::Scan);
  const auto alt = testutil::random_doubles(10000, 192, 0, 100);
  line_of_sight(m, std::span<const double>(alt));
  EXPECT_EQ(m.stats().scans, 1u);
  EXPECT_LE(m.stats().steps, 4u);  // angle, scan, compare — O(1)
}

}  // namespace
}  // namespace scanprim::algo
