// The halving merge (§2.5.1): randomized property tests against std::merge,
// the x-near-merge repair, stability, and the step complexity claim.
#include "src/algo/halving_merge.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

void expect_merges(std::vector<std::uint64_t> a, std::vector<std::uint64_t> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  machine::Machine m;
  const HalvingMergeResult r = halving_merge(
      m, std::span<const std::uint64_t>(a), std::span<const std::uint64_t>(b));
  std::vector<std::uint64_t> expect(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), expect.begin());
  EXPECT_EQ(r.merged, expect);
}

struct MergeCase {
  std::size_t na;
  std::size_t nb;
};

class MergeSweep : public ::testing::TestWithParam<MergeCase> {};

TEST_P(MergeSweep, MatchesStdMerge) {
  const auto [na, nb] = GetParam();
  expect_merges(testutil::random_vector<std::uint64_t>(na, 151, 10000),
                testutil::random_vector<std::uint64_t>(nb, 152, 10000));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MergeSweep,
    ::testing::Values(MergeCase{0, 0}, MergeCase{0, 10}, MergeCase{10, 0},
                      MergeCase{1, 1}, MergeCase{5, 3}, MergeCase{100, 100},
                      MergeCase{1000, 999}, MergeCase{4096, 4096},
                      MergeCase{20000, 1}, MergeCase{1, 20000},
                      MergeCase{30000, 30000}));

TEST(HalvingMerge, ManyRandomShapes) {
  auto g = testutil::rng(153);
  for (int trial = 0; trial < 40; ++trial) {
    expect_merges(
        testutil::random_vector<std::uint64_t>(g() % 500, g(), 50),
        testutil::random_vector<std::uint64_t>(g() % 500, g(), 50));
  }
}

TEST(HalvingMerge, HeavilyTiedKeys) {
  expect_merges(std::vector<std::uint64_t>(5000, 7),
                std::vector<std::uint64_t>(5000, 7));
  expect_merges(testutil::random_vector<std::uint64_t>(3000, 154, 2),
                testutil::random_vector<std::uint64_t>(3000, 155, 2));
}

TEST(HalvingMerge, DoublesRoundTrip) {
  auto a = testutil::random_doubles(700, 156);
  auto b = testutil::random_doubles(900, 157);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  machine::Machine m;
  const auto merged = halving_merge_doubles(m, std::span<const double>(a),
                                            std::span<const double>(b));
  std::vector<double> expect(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), expect.begin());
  EXPECT_EQ(merged, expect);
}

TEST(HalvingMerge, XNearMergeFixesRotatedBlocks) {
  machine::Machine m;
  // Figure 12's near-merge vector.
  const std::vector<std::uint64_t> nm{1, 7, 3, 4, 9, 22, 10, 13, 15, 20, 23, 26};
  EXPECT_EQ(x_near_merge(m, std::span<const std::uint64_t>(nm)),
            (std::vector<std::uint64_t>{1, 3, 4, 7, 9, 10, 13, 15, 20, 22, 23,
                                        26}));
  // A sorted vector is a fixed point.
  const std::vector<std::uint64_t> sorted{1, 2, 3, 4, 5};
  EXPECT_EQ(x_near_merge(m, std::span<const std::uint64_t>(sorted)), sorted);
}

TEST(BinarySearchMerge, MatchesStdMerge) {
  machine::Machine m;
  auto g = testutil::rng(163);
  for (int trial = 0; trial < 25; ++trial) {
    auto a = testutil::random_vector<std::uint64_t>(g() % 800, g(), 50);
    auto b = testutil::random_vector<std::uint64_t>(g() % 800, g(), 50);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    const auto got = binary_search_merge(m, std::span<const std::uint64_t>(a),
                                         std::span<const std::uint64_t>(b));
    std::vector<std::uint64_t> expect(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(), expect.begin());
    ASSERT_EQ(got, expect) << "trial " << trial;
  }
}

TEST(BinarySearchMerge, ChargesLgRoundsWithNoScans) {
  machine::Machine m(machine::Model::Scan);
  auto a = testutil::random_vector<std::uint64_t>(1 << 12, 164, 1u << 20);
  auto b = testutil::random_vector<std::uint64_t>(1 << 12, 165, 1u << 20);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  binary_search_merge(m, std::span<const std::uint64_t>(a),
                      std::span<const std::uint64_t>(b));
  EXPECT_EQ(m.stats().scans, 0u);            // no scans anywhere
  EXPECT_LE(m.stats().steps, 2u * 2 * 13 + 2);  // ~2 steps x lg n rounds x 2
  // Identical charge under the EREW: this is the model-independent baseline
  // the scan primitives don't accelerate.
  machine::Machine e(machine::Model::EREW);
  binary_search_merge(e, std::span<const std::uint64_t>(a),
                      std::span<const std::uint64_t>(b));
  EXPECT_EQ(e.stats().steps, m.stats().steps);
}

TEST(HalvingMerge, MergeFlagsReconstructTheMerge) {
  // §2.5.1: the flag vector alone determines the interleaving. Reconstruct
  // the merged values from the flags and compare.
  machine::Machine m;
  auto g = testutil::rng(162);
  for (int trial = 0; trial < 20; ++trial) {
    auto a = testutil::random_vector<std::uint64_t>(g() % 300, g(), 100);
    auto b = testutil::random_vector<std::uint64_t>(g() % 300, g(), 100);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    const Flags flags = halving_merge_flags(
        m, std::span<const std::uint64_t>(a), std::span<const std::uint64_t>(b));
    ASSERT_EQ(flags.size(), a.size() + b.size());
    std::vector<std::uint64_t> rebuilt(flags.size());
    std::size_t ia = 0, ib = 0;
    for (std::size_t k = 0; k < flags.size(); ++k) {
      rebuilt[k] = flags[k] ? b[ib++] : a[ia++];
    }
    ASSERT_EQ(ia, a.size());
    ASSERT_EQ(ib, b.size());
    ASSERT_TRUE(std::is_sorted(rebuilt.begin(), rebuilt.end()));
    std::vector<std::uint64_t> expect(flags.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(), expect.begin());
    ASSERT_EQ(rebuilt, expect);
  }
}

TEST(HalvingMerge, PaperMergeFlagExample) {
  // §2.5.1: merge-flags of A' = [1 10 15], B' = [3 9 23] are [F T T F F T].
  machine::Machine m;
  const std::vector<std::uint64_t> a{1, 10, 15};
  const std::vector<std::uint64_t> b{3, 9, 23};
  EXPECT_EQ(halving_merge_flags(m, std::span<const std::uint64_t>(a),
                                std::span<const std::uint64_t>(b)),
            (Flags{0, 1, 1, 0, 0, 1}));
}

TEST(HalvingMerge, RecursionDepthIsLogarithmic) {
  machine::Machine m;
  auto a = testutil::random_vector<std::uint64_t>(1 << 14, 158, 1u << 20);
  auto b = testutil::random_vector<std::uint64_t>(1 << 14, 159, 1u << 20);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const HalvingMergeResult r = halving_merge(
      m, std::span<const std::uint64_t>(a), std::span<const std::uint64_t>(b));
  EXPECT_LE(r.levels, 14u);
  EXPECT_GE(r.levels, 10u);
}

TEST(HalvingMerge, StepComplexityIsNOverPPlusLgN) {
  // With p = n / lg n processors the step count stays within a constant
  // factor of lg n per level: total O(n/p + lg n) ~ O(lg n) · const. We
  // verify the scaling: quadrupling n with p = n/lg n raises steps by less
  // than ~4x the lg ratio (i.e. the algorithm is not Θ(n) steps).
  const auto steps_for = [](std::size_t n) {
    const std::size_t lg = static_cast<std::size_t>(std::log2(n));
    machine::Machine m(machine::Model::Scan, n / lg);
    auto a = testutil::random_vector<std::uint64_t>(n, 160, 1u << 30);
    auto b = testutil::random_vector<std::uint64_t>(n, 161, 1u << 30);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    halving_merge(m, std::span<const std::uint64_t>(a),
                  std::span<const std::uint64_t>(b));
    return m.stats().steps;
  };
  const auto s1 = steps_for(1 << 12);
  const auto s2 = steps_for(1 << 14);
  // Θ(n)-step behaviour would give s2/s1 ≈ 4; O(n/p + lg n) gives ≈ 7/6.
  EXPECT_LT(static_cast<double>(s2) / static_cast<double>(s1), 2.0);
}

}  // namespace
}  // namespace scanprim::algo
