// The SegVec abstraction: the paper's recursive-segment technique as a
// typed value. Includes a complete quicksort written against it.
#include "src/core/segvec.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim {
namespace {

TEST(SegVec, ConstructionAndBasics) {
  const SegVec<int> v(std::vector<int>{5, 1, 3, 4, 3, 9, 2, 6},
                      Flags{1, 0, 1, 0, 0, 0, 1, 0});
  EXPECT_EQ(v.size(), 8u);
  EXPECT_EQ(v.num_segments(), 3u);
  EXPECT_EQ(v.rank(), (std::vector<std::size_t>{0, 1, 0, 1, 2, 3, 0, 1}));
  EXPECT_EQ(v.segment_length(),
            (std::vector<std::size_t>{2, 2, 4, 4, 4, 4, 2, 2}));
  EXPECT_EQ(v.head_copy(), (std::vector<int>{5, 5, 3, 3, 3, 3, 2, 2}));
  EXPECT_EQ(v.distribute(Plus<int>{}),
            (std::vector<int>{6, 6, 19, 19, 19, 19, 8, 8}));
  EXPECT_EQ(v.scan(Plus<int>{}), (std::vector<int>{0, 5, 0, 3, 7, 10, 0, 2}));
}

TEST(SegVec, SingleSegmentConstructor) {
  const SegVec<int> v(std::vector<int>{4, 2, 7});
  EXPECT_EQ(v.num_segments(), 1u);
  EXPECT_EQ(v.flags(), (Flags{1, 0, 0}));
}

TEST(SegVec, Split3GroupsWithinSegments) {
  const SegVec<int> v(std::vector<int>{3, 1, 2, 9, 7, 8},
                      Flags{1, 0, 0, 1, 0, 0});
  const std::vector<std::uint8_t> codes{2, 0, 1, 2, 0, 1};
  const auto s = v.split3(codes);
  EXPECT_EQ(s.result.values(), (std::vector<int>{1, 2, 3, 7, 8, 9}));
  EXPECT_EQ(s.result.flags(), (Flags{1, 1, 1, 1, 1, 1}));
  // Index really is the permutation that was applied.
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(s.result.values()[s.index[i]], v.values()[i]);
  }
}

TEST(SegVec, FilterDropsElementsAndEmptySegments) {
  const SegVec<int> v(std::vector<int>{1, 2, 3, 4, 5, 6},
                      Flags{1, 0, 1, 0, 1, 0});
  const Flags keep{1, 0, 0, 0, 1, 1};  // middle segment vanishes
  const SegVec<int> f = v.filter(FlagsView(keep));
  EXPECT_EQ(f.values(), (std::vector<int>{1, 5, 6}));
  EXPECT_EQ(f.flags(), (Flags{1, 1, 0}));
  EXPECT_EQ(f.num_segments(), 2u);
}

// Quicksort in eleven lines against the abstraction — the paper's §2.3.1
// with the bookkeeping folded away.
std::vector<double> segvec_quicksort(std::vector<double> keys) {
  SegVec<double> v(std::move(keys));
  for (int guard = 0; guard < 4096; ++guard) {
    const std::vector<double> piv = v.head_copy();
    std::vector<std::uint8_t> codes(v.size());
    bool any = false;
    for (std::size_t i = 0; i < v.size(); ++i) {
      codes[i] = v.values()[i] < piv[i] ? 0 : (v.values()[i] == piv[i] ? 1 : 2);
      any |= codes[i] != 1;
    }
    if (!any) break;
    v = v.split3(codes).result;
    if (std::is_sorted(v.values().begin(), v.values().end())) break;
  }
  return v.values();
}

TEST(SegVec, QuicksortAgainstTheAbstraction) {
  auto g = testutil::rng(3001);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> keys(1 + g() % 3000);
    for (auto& k : keys) k = static_cast<double>(g() % 500);
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(segvec_quicksort(keys), expect) << "trial " << trial;
  }
}

TEST(SegVec, RandomizedConsistencyWithRawPrimitives) {
  auto g = testutil::rng(3002);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 1 + g() % 5000;
    const auto vals = testutil::random_vector<long>(n, g());
    Flags f = testutil::random_flags(n, g(), 5);
    const SegVec<long> v{std::vector<long>(vals), Flags(f)};
    ASSERT_EQ(v.head_copy(), seg_copy(std::span<const long>(vals), FlagsView(f)));
    ASSERT_EQ(v.distribute(Max<long>{}),
              seg_distribute(std::span<const long>(vals), FlagsView(f),
                             Max<long>{}));
    ASSERT_EQ(v.scan(Min<long>{}),
              seg_min_scan(std::span<const long>(vals), FlagsView(f)));
  }
}

}  // namespace
}  // namespace scanprim
