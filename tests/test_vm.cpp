// The PARIS-style vector VM: assembler round trips, instruction semantics,
// scan programs (including the paper's split radix sort written in
// assembly), error handling, and cost-model integration.
#include "src/vm/assembler.hpp"
#include "src/vm/interpreter.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::vm {
namespace {

Vec run_and_take(machine::Machine& m, const std::string& src,
                 const std::map<std::string, Vec>& regs = {}) {
  const Program p = assemble(src);
  Interpreter vm(m);
  for (const auto& [name, value] : regs) vm.set_register(name, value);
  vm.run(p);
  EXPECT_FALSE(vm.output().empty());
  return vm.output().back();
}

TEST(Assembler, LabelsCommentsAndCase) {
  const Program p = assemble(R"(
      ; a comment line
      start:  CONST 4 7   ; trailing comment
              jump done
      done:   HALT
  )");
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0].op, Op::PushConst);
  EXPECT_EQ(p[0].imm0, 4);
  EXPECT_EQ(p[0].imm1, 7);
  EXPECT_EQ(p[1].op, Op::Jump);
  EXPECT_EQ(p[1].imm0, 2);
  EXPECT_EQ(p[2].op, Op::Halt);
}

TEST(Assembler, Errors) {
  EXPECT_THROW(assemble("frobnicate"), AsmError);
  EXPECT_THROW(assemble("const 1"), AsmError);       // missing fill
  EXPECT_THROW(assemble("const -3 0"), AsmError);    // negative length
  EXPECT_THROW(assemble("jump nowhere"), AsmError);  // undefined label
  EXPECT_THROW(assemble("a:\na: halt"), AsmError);   // duplicate label
  EXPECT_THROW(assemble("add 1"), AsmError);         // stray operand
}

TEST(Assembler, ErrorsCarryLineColumnAndToken) {
  const auto message = [](const std::string& src) -> std::string {
    try {
      assemble(src);
    } catch (const AsmError& e) {
      return e.what();
    }
    return "";
  };
  // Position points at the offending token, not just the line.
  EXPECT_EQ(message("frobnicate"),
            "line 1, col 1: unknown mnemonic 'frobnicate' (at 'frobnicate')");
  EXPECT_EQ(message("const -3 0"),
            "line 1, col 7: negative length (at '-3')");
  EXPECT_EQ(message("  const x 0"),
            "line 1, col 9: 'const' expects an integer length (at 'x')");
  EXPECT_EQ(message("add 1"),
            "line 1, col 5: 'add' expects 0 operand(s), got 1 (at '1')");
  EXPECT_EQ(message("halt\njump nowhere"),
            "line 2, col 6: undefined label 'nowhere' (at 'nowhere')");
  EXPECT_EQ(message("a:\na: halt"),
            "line 2, col 1: duplicate label 'a' (at 'a:')");
}

TEST(Assembler, DisassemblyMentionsEveryInstruction) {
  const Program p = assemble("const 2 5\nindex 3\nload x\nhalt");
  const std::string listing = disassemble(p);
  EXPECT_NE(listing.find("const 2 5"), std::string::npos);
  EXPECT_NE(listing.find("index 3"), std::string::npos);
  EXPECT_NE(listing.find("load x"), std::string::npos);
}

TEST(Assembler, DisassemblyRoundTrips) {
  // assemble → disassemble → assemble is a fixed point: the synthetic
  // `l<pc>` labels the disassembler invents re-assemble to the same
  // instruction stream, for straight-line and control-flow programs alike.
  const std::string sources[] = {
      "const 2 5\nindex 3\nload x\nstore y\nhalt",
      "const 1 0\nstore bit\nloop:\nload bit\nconst 1 1\nadd\nstore bit\n"
      "load bit\nconst 1 8\nlt\njnz loop\nhalt",
      "start:\njz fwd\nfwd:\nload a\n+scan\nprint\njump start\nhalt",
      "load v\nload f\nseg+scan\nload f\nseg+distribute\npack\nprint\nhalt",
  };
  for (const std::string& src : sources) {
    const Program once = assemble(src);
    const std::string listing = disassemble(once);
    const Program twice = assemble(listing);
    ASSERT_EQ(once.size(), twice.size()) << listing;
    EXPECT_TRUE(structural_equal(once, twice)) << listing;
    EXPECT_EQ(fingerprint(once), fingerprint(twice)) << listing;
    // And the listing itself is a fixed point of the round trip.
    EXPECT_EQ(listing, disassemble(twice)) << listing;
  }
}

TEST(Interpreter, ArithmeticAndBroadcast) {
  machine::Machine m;
  // (index(5) + 10) * 2
  const Vec out = run_and_take(m, R"(
      index 5
      const 1 10
      add
      const 1 2
      mul
      print
      halt
  )");
  EXPECT_EQ(out, (Vec{20, 22, 24, 26, 28}));
}

TEST(Interpreter, ScansMatchTheLibrary) {
  machine::Machine m;
  const Vec a{2, 1, 2, 3, 5, 8, 13, 21};
  EXPECT_EQ(run_and_take(m, "load a\n+scan\nprint\nhalt", {{"a", a}}),
            (Vec{0, 2, 3, 5, 8, 13, 21, 34}));
  const Vec v{5, 1, 3, 4, 3, 9, 2, 6};
  const Vec f{1, 0, 1, 0, 0, 0, 1, 0};
  EXPECT_EQ(run_and_take(m, "load v\nload f\nseg+scan\nprint\nhalt",
                         {{"v", v}, {"f", f}}),
            (Vec{0, 5, 0, 3, 7, 10, 0, 2}));
}

TEST(Interpreter, EnumeratePackSplit) {
  machine::Machine m;
  const Vec v{10, 11, 12, 13, 14, 15};
  const Vec f{1, 0, 1, 1, 0, 1};
  EXPECT_EQ(run_and_take(m, "load f\nenumerate\nprint\nhalt", {{"f", f}}),
            (Vec{0, 1, 1, 2, 3, 3}));
  EXPECT_EQ(run_and_take(m, "load v\nload f\npack\nprint\nhalt",
                         {{"v", v}, {"f", f}}),
            (Vec{10, 12, 13, 15}));
  EXPECT_EQ(run_and_take(m, "load v\nload f\nsplit\nprint\nhalt",
                         {{"v", v}, {"f", f}}),
            (Vec{11, 14, 10, 12, 13, 15}));
}

TEST(Interpreter, SplitRadixSortProgram) {
  // The paper's §2.2.1 pseudocode, as a VM loop.
  const std::string src = R"(
        const 1 0
        store bit
    loop:
        load a
        load bit
        shr
        const 1 1
        band
        store flags
        load a
        load flags
        split
        store a
        load bit
        const 1 1
        add
        store bit
        load bit
        load nbits
        lt
        jnz loop
        load a
        print
        halt
  )";
  machine::Machine m;
  auto g = testutil::rng(901);
  Vec keys(2000);
  for (auto& k : keys) k = static_cast<std::int64_t>(g() % 4096);
  const Vec sorted = run_and_take(m, src, {{"a", keys}, {"nbits", Vec{12}}});
  Vec expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect);
}

TEST(Interpreter, SegmentedInstructions) {
  machine::Machine m;
  const Vec v{5, 1, 3, 4, 3, 9, 2, 6};
  const Vec f{1, 0, 1, 0, 0, 0, 1, 0};
  EXPECT_EQ(run_and_take(m, "load v\nload f\nsegcopy\nprint\nhalt",
                         {{"v", v}, {"f", f}}),
            (Vec{5, 5, 3, 3, 3, 3, 2, 2}));
  EXPECT_EQ(run_and_take(m, "load v\nload f\nseg+distribute\nprint\nhalt",
                         {{"v", v}, {"f", f}}),
            (Vec{6, 6, 19, 19, 19, 19, 8, 8}));
  EXPECT_EQ(run_and_take(m, "load v\nload f\nseg+backscan\nprint\nhalt",
                         {{"v", v}, {"f", f}}),
            (Vec{1, 0, 16, 12, 9, 0, 6, 0}));
  const Vec marks{1, 1, 0, 1, 0, 1, 1, 1};
  EXPECT_EQ(run_and_take(
                m, "load marks\nload f\nsegenumerate\nprint\nhalt",
                {{"marks", marks}, {"f", f}}),
            (Vec{0, 1, 0, 0, 1, 1, 0, 1}));
}

TEST(Interpreter, SegmentedQuicksortProgram) {
  // §2.3.1, verbatim in the instruction set: segmented pivots (segcopy),
  // three-way segmented split built from seg+scan / seg+distribute, and new
  // segment flags at the group boundaries. First-element pivots.
  const std::size_t n = 1500;
  std::string src = R"(
        index N
        const 1 0
        eq
        store segs
    loop:
        ; sortedness check: prev[i] = a[max(i-1, 0)]
        load a
        index N
        const 1 1
        sub
        const 1 0
        max
        gather
        load a
        le
        index N
        const 1 0
        eq
        bor
        andreduce
        jnz done
        ; pivot = first key of each segment
        load a
        load segs
        segcopy
        store piv
        ; code: 0 <, 1 =, 2 >
        load a
        load piv
        ge
        load a
        load piv
        gt
        add
        store code
        ; per-group ranks and counts within segments
        load code
        const 1 0
        eq
        store ind0
        load code
        const 1 1
        eq
        store ind1
        load ind0
        load segs
        seg+scan
        store r0
        load ind1
        load segs
        seg+scan
        store r1
        load code
        const 1 2
        eq
        load segs
        seg+scan
        store r2
        load ind0
        load segs
        seg+distribute
        store c0
        load ind1
        load segs
        seg+distribute
        store c1
        const N 1
        load segs
        seg+scan
        store srank
        ; within-segment destination by code
        load c0
        load c1
        add
        load r2
        add
        store w2
        load ind1
        load c0
        load r1
        add
        load w2
        select
        store w12
        load ind0
        load r0
        load w12
        select
        index N
        load srank
        sub
        add
        store dest
        ; move keys and codes
        load a
        load dest
        permute
        store a
        load code
        load dest
        permute
        store mcode
        ; new segment boundaries where the moved code changes
        load mcode
        index N
        const 1 1
        sub
        const 1 0
        max
        gather
        load mcode
        ne
        load segs
        bor
        store segs
        jump loop
    done:
        load a
        print
        halt
  )";
  for (std::string::size_type p; (p = src.find("N")) != std::string::npos;) {
    src.replace(p, 1, std::to_string(n));
  }
  machine::Machine m;
  auto g = testutil::rng(902);
  Vec keys(n);
  for (auto& k : keys) k = static_cast<std::int64_t>(g() % 100000);
  vm::Interpreter interp(m);
  interp.set_register("a", keys);
  interp.run(vm::assemble(src), 1u << 24);
  Vec expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(interp.output().back(), expect);
}

TEST(Interpreter, LineOfSightProgram) {
  // Visibility along a ray: angle-proxy = alt * 1000 / distance; visible
  // iff it beats the max-scan of earlier angle-proxies.
  const std::string src = R"(
      load alt
      const 1 1000
      mul
      load dist
      div
      dup
      maxscan
      gt
      print
      halt
  )";
  machine::Machine m;
  const Vec alt{1, 10, 1, 2, 3, 60};
  const Vec dist{1, 1, 2, 3, 4, 5};
  const Vec visible = run_and_take(m, src, {{"alt", alt}, {"dist", dist}});
  EXPECT_EQ(visible, (Vec{1, 1, 0, 0, 0, 1}));
}

TEST(Interpreter, RuntimeErrors) {
  machine::Machine m;
  Interpreter vm(m);
  EXPECT_THROW(vm.run(assemble("pop\nhalt")), VmError);            // underflow
  EXPECT_THROW(vm.run(assemble("const 2 1\nconst 2 0\ndiv\nhalt")), VmError);
  EXPECT_THROW(vm.run(assemble(R"(
      index 4
      const 4 0
      permute
      halt
  )")),
               VmError);  // duplicate permute indices
  EXPECT_THROW(vm.run(assemble("index 3\nindex 4\nadd\nhalt")), VmError);
  EXPECT_THROW(vm.run(assemble("loop: jump loop")), VmError);  // budget
  EXPECT_THROW(vm.run(assemble("load nothing\nhalt")), VmError);
}

TEST(Interpreter, StepChargesFollowTheModel) {
  // A program of k scans costs k steps on the scan model and k lg n on the
  // EREW — the machine integration in one assertion.
  const std::string src = R"(
      load a
      +scan
      maxscan
      minscan
      pop
      halt
  )";
  const Vec a(4096, 1);
  machine::Machine ms(machine::Model::Scan), me(machine::Model::EREW);
  {
    Interpreter vm(ms);
    vm.set_register("a", a);
    vm.run(assemble(src));
  }
  {
    Interpreter vm(me);
    vm.set_register("a", a);
    vm.run(assemble(src));
  }
  EXPECT_EQ(ms.stats().steps, 3u);
  EXPECT_EQ(me.stats().steps, 36u);  // 3 · lg 4096
}

TEST(Interpreter, StackOpsAndRegisters) {
  machine::Machine m;
  const Program p = assemble(R"(
      const 1 3
      const 1 4
      over        ; 3 4 3
      add         ; 3 7
      swap        ; 7 3
      store x
      print       ; prints 7
      load x
      print       ; prints 3
      halt
  )");
  Interpreter vm(m);
  vm.run(p);
  ASSERT_EQ(vm.output().size(), 2u);
  EXPECT_EQ(vm.output()[0], Vec{7});
  EXPECT_EQ(vm.output()[1], Vec{3});
}

}  // namespace
}  // namespace scanprim::vm
