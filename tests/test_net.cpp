// End-to-end tests of the socket front end (src/net, docs/NET.md): QoS
// unit state machines, then a live server over localhost — many concurrent
// connections bit-identical to in-process execution, every protocol op,
// per-tenant quotas, adaptive-window movement, the Prometheus endpoint,
// and the shard-coordinator backend.
#include "src/net/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "src/core/segmented.hpp"
#include "src/net/client.hpp"
#include "src/obs/registry.hpp"
#include "src/serve/service.hpp"
#include "src/shard/shard.hpp"
#include "src/vm/assembler.hpp"
#include "test_util.hpp"

namespace scanprim::net {
namespace {

using namespace std::chrono_literals;

std::vector<Value> ref_exclusive_plus(const std::vector<Value>& v) {
  std::vector<Value> out(v.size());
  Value acc = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = acc;
    acc += v[i];
  }
  return out;
}

// --- QoS state machines (pure, synthetic time) -------------------------------

TEST(NetQos, TokenBucketAdmitsRateAndBurst) {
  const std::uint64_t s = 1'000'000'000;  // 1 s in ns
  TokenBucket b(10, 0);
  // The bucket starts full: one second of burst.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(b.admit(1, 0)) << i;
  EXPECT_FALSE(b.admit(1, 0));
  // Half a second refills half the rate.
  EXPECT_TRUE(b.admit(5, s / 2));
  EXPECT_FALSE(b.admit(1, s / 2));
  // A long quiet period caps at one second of burst, never more.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(b.admit(1, 100 * s)) << i;
  EXPECT_FALSE(b.admit(1, 100 * s));
}

TEST(NetQos, TokenBucketDenialConsumesNothing) {
  TokenBucket b(4, 0);
  EXPECT_FALSE(b.admit(5, 0));  // over capacity: denied...
  EXPECT_TRUE(b.admit(4, 0));   // ...and the 4 tokens are still there
}

TEST(NetQos, ZeroRateIsUnlimited) {
  TokenBucket b(0, 0);
  EXPECT_TRUE(b.unlimited());
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(b.admit(1 << 20, 0));
}

TEST(NetQos, AdaptiveWindowShrinksOnBreachAndRegrowsWhenClear) {
  AdaptiveWindow w(200, 1, 2'000'000);  // base 200 us, SLO 2 ms
  EXPECT_EQ(w.window_us(), 200u);
  // No samples: no evidence, no move.
  EXPECT_EQ(w.tick(10'000'000, 0), AdaptiveWindow::Move::kNone);
  // Breach: halve, repeatedly, to the floor.
  EXPECT_EQ(w.tick(3'000'000, 10), AdaptiveWindow::Move::kShrink);
  EXPECT_EQ(w.window_us(), 100u);
  while (w.window_us() > 1) {
    ASSERT_EQ(w.tick(3'000'000, 10), AdaptiveWindow::Move::kShrink);
  }
  EXPECT_EQ(w.tick(3'000'000, 10), AdaptiveWindow::Move::kNone);  // at floor
  // Comfortably clear (p99 < SLO/2): 3/2-regrow back toward base, capped.
  EXPECT_EQ(w.tick(100'000, 10), AdaptiveWindow::Move::kRegrow);
  std::uint64_t prev = w.window_us();
  while (w.window_us() < 200) {
    ASSERT_EQ(w.tick(100'000, 10), AdaptiveWindow::Move::kRegrow);
    ASSERT_GT(w.window_us(), prev);
    prev = w.window_us();
  }
  EXPECT_EQ(w.window_us(), 200u);
  EXPECT_EQ(w.tick(100'000, 10), AdaptiveWindow::Move::kNone);  // at base
  // Merely meeting the SLO (between SLO/2 and SLO) holds steady.
  EXPECT_EQ(w.tick(3'000'000, 10), AdaptiveWindow::Move::kShrink);
  EXPECT_EQ(w.tick(1'500'000, 10), AdaptiveWindow::Move::kNone);
}

// --- protocol round trip -----------------------------------------------------

TEST(NetProtocol, RequestRoundTripsAllOps) {
  Request r;
  r.op = Op::kScan;
  r.flags = kFlagInclusive | kFlagSegmented;
  r.request_id = 42;
  r.tenant = 7;
  r.priority = Priority::kLatency;
  r.deadline_ns = 123456789;
  r.scan_op = ScanOp::kMax;
  r.data = {1, -2, 3};
  r.byte_flags = {1, 0, 1};
  std::string wire;
  encode_request(wire, r);
  const std::span<const std::uint8_t> sp(
      reinterpret_cast<const std::uint8_t*>(wire.data()), wire.size());
  ASSERT_EQ(frame_size(sp, 1 << 20), wire.size());
  const Request d = decode_request(sp);
  EXPECT_EQ(d.op, Op::kScan);
  EXPECT_TRUE(d.inclusive());
  EXPECT_FALSE(d.backward());
  EXPECT_TRUE(d.segmented());
  EXPECT_EQ(d.request_id, 42u);
  EXPECT_EQ(d.tenant, 7u);
  EXPECT_EQ(d.priority, Priority::kLatency);
  EXPECT_EQ(d.deadline_ns, 123456789u);
  EXPECT_EQ(d.scan_op, ScanOp::kMax);
  EXPECT_EQ(d.data, r.data);
  EXPECT_EQ(d.byte_flags, r.byte_flags);

  Request plan;
  plan.op = Op::kPlan;
  plan.plan = "p";
  plan.registers["a"] = {1, 2, 3};
  plan.registers["b"] = {};
  std::string wire2;
  encode_request(wire2, plan);
  const Request d2 = decode_request(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(wire2.data()), wire2.size()));
  EXPECT_EQ(d2.op, Op::kPlan);
  EXPECT_EQ(d2.plan, "p");
  EXPECT_EQ(d2.registers, plan.registers);

  Request pipe;
  pipe.op = Op::kPipeline;
  pipe.data = {5, 6};
  pipe.stages = {{StageOp::kAddConst, 3}, {StageOp::kScanPlus, 0}};
  std::string wire3;
  encode_request(wire3, pipe);
  const Request d3 = decode_request(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(wire3.data()), wire3.size()));
  ASSERT_EQ(d3.stages.size(), 2u);
  EXPECT_EQ(d3.stages[0].op, StageOp::kAddConst);
  EXPECT_EQ(d3.stages[0].arg, 3);
  EXPECT_EQ(d3.stages[1].op, StageOp::kScanPlus);
}

TEST(NetProtocol, ResponseRoundTrips) {
  Response r;
  r.status = Status::kError;
  r.request_id = 99;
  r.kept = 3;
  r.outputs = {{1, 2}, {}, {-7}};
  r.error = "boom";
  std::string wire;
  encode_response(wire, r);
  const Response d = decode_response(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(wire.data()), wire.size()));
  EXPECT_EQ(d.status, Status::kError);
  EXPECT_EQ(d.request_id, 99u);
  EXPECT_EQ(d.kept, 3u);
  EXPECT_EQ(d.outputs, r.outputs);
  EXPECT_EQ(d.error, "boom");
}

// --- live server helpers -----------------------------------------------------

struct LiveServer {
  serve::Service svc;
  ServiceBackend backend{svc};
  Server server;

  explicit LiveServer(Server::Options o = make_options(),
                      serve::Service::Options so = {})
      : svc(so), server(backend, std::move(o)) {
    server.start();
  }
  ~LiveServer() {
    server.stop();
    svc.shutdown();
  }
  static Server::Options make_options() {
    Server::Options o;
    o.io_threads = 2;
    return o;
  }
  std::uint16_t port() const { return server.port(); }
};

// --- end-to-end --------------------------------------------------------------

TEST(NetServer, EveryOpMatchesInProcessExecution) {
  LiveServer ls;
  ls.svc.register_plan("scan_add",
                       vm::assemble("load a\ndup\n+scan\nadd\nprint\nhalt"));
  Client cli("127.0.0.1", ls.port());

  // Scan, against the in-process service.
  const auto data = testutil::random_vector<std::int64_t>(777, 3);
  const Response rs = cli.scan_sync(data, ScanOp::kPlus);
  ASSERT_EQ(rs.status, Status::kOk) << rs.error;
  serve::ScanJob sj;
  sj.data = data;
  const serve::Result local = ls.svc.submit(std::move(sj)).get();
  ASSERT_EQ(local.status, serve::Status::kOk);
  ASSERT_EQ(rs.outputs.size(), 1u);
  EXPECT_EQ(rs.outputs.front(), local.values);

  // Segmented inclusive max.
  std::vector<std::uint8_t> flags(data.size(), 0);
  for (std::size_t i = 0; i < flags.size(); i += 97) flags[i] = 1;
  const Response rseg = cli.scan_sync(data, ScanOp::kMax, true, false, flags);
  ASSERT_EQ(rseg.status, Status::kOk) << rseg.error;
  serve::ScanJob segj;
  segj.data = data;
  segj.op = batch::Op::kMax;
  segj.inclusive = true;
  segj.flags = flags;
  EXPECT_EQ(rseg.outputs.front(), ls.svc.submit(std::move(segj)).get().values);

  // Pack + kept count.
  std::vector<std::uint8_t> keep(data.size());
  for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = i % 3 == 0;
  const Response rp = cli.pack_sync(data, keep);
  ASSERT_EQ(rp.status, Status::kOk) << rp.error;
  std::vector<Value> packed;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (keep[i]) packed.push_back(data[i]);
  }
  EXPECT_EQ(rp.outputs.front(), packed);
  EXPECT_EQ(rp.kept, packed.size());

  // Enumerate.
  const Response re = cli.enumerate(keep).get();
  ASSERT_EQ(re.status, Status::kOk) << re.error;
  std::vector<Value> ids(keep.size());
  Value run = 0;
  for (std::size_t i = 0; i < keep.size(); ++i) {
    ids[i] = run;
    run += keep[i] ? 1 : 0;
  }
  EXPECT_EQ(re.outputs.front(), ids);

  // Pipeline: (v * 3) scanned, then clamped below at 10.
  const Response rpipe =
      cli.pipeline({1, 2, 3, 4, 5}, {{StageOp::kMulConst, 3},
                                     {StageOp::kScanPlus, 0},
                                     {StageOp::kMaxConst, 10}})
          .get();
  ASSERT_EQ(rpipe.status, Status::kOk) << rpipe.error;
  EXPECT_EQ(rpipe.outputs.front(), (std::vector<Value>{10, 10, 10, 18, 30}));

  // Plan.
  const Response rplan = cli.plan_sync("scan_add", {{"a", {3, 1, 4, 1, 5}}});
  ASSERT_EQ(rplan.status, Status::kOk) << rplan.error;
  ASSERT_EQ(rplan.outputs.size(), 1u);
  // a + exclusive-plus-scan(a)
  EXPECT_EQ(rplan.outputs.front(), (std::vector<Value>{3, 4, 8, 9, 14}));

  // Unknown plan: the serve error surfaces verbatim with kError.
  const Response rbad = cli.plan_sync("nope", {});
  EXPECT_EQ(rbad.status, Status::kError);
  EXPECT_NE(rbad.error.find("unknown plan"), std::string::npos) << rbad.error;
}

TEST(NetServer, ManyConcurrentConnectionsBitIdentical) {
  LiveServer ls;
  constexpr int kConns = 32;
  constexpr int kPerConn = 8;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kConns);
  for (int t = 0; t < kConns; ++t) {
    threads.emplace_back([&, t] {
      try {
        Client cli("127.0.0.1", ls.port());
        // Pipelined: launch every request, then collect.
        std::vector<std::future<Response>> futs;
        std::vector<std::vector<Value>> inputs;
        for (int i = 0; i < kPerConn; ++i) {
          inputs.push_back(testutil::random_vector<std::int64_t>(
              128 + 64 * i, 1000 + static_cast<std::uint64_t>(t) * 100 + i));
          futs.push_back(cli.scan(inputs.back(), ScanOp::kPlus));
        }
        for (int i = 0; i < kPerConn; ++i) {
          const Response r = futs[i].get();
          if (r.status != Status::kOk) {
            failures[t] = "status " + std::string(status_name(r.status)) +
                          ": " + r.error;
            return;
          }
          if (r.outputs.size() != 1 ||
              r.outputs.front() != ref_exclusive_plus(inputs[i])) {
            failures[t] = "wrong scan result";
            return;
          }
        }
      } catch (const std::exception& e) {
        failures[t] = e.what();
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kConns; ++t) EXPECT_EQ(failures[t], "") << "conn " << t;
  const Server::Stats st = ls.server.stats();
  EXPECT_GE(st.accepted, static_cast<std::uint64_t>(kConns));
  EXPECT_EQ(st.requests, static_cast<std::uint64_t>(kConns) * kPerConn);
  EXPECT_EQ(st.responses, static_cast<std::uint64_t>(kConns) * kPerConn);
  EXPECT_EQ(st.in_flight, 0u);
}

TEST(NetServer, PerTenantQuotasRejectOnlyTheOffender) {
  Server::Options o = LiveServer::make_options();
  o.tenant_qps = 8;  // 1 s of burst = 8 requests, then dry until refill
  LiveServer ls(o);
  Client greedy("127.0.0.1", ls.port(), /*tenant=*/1);
  Client polite("127.0.0.1", ls.port(), /*tenant=*/2);

  // The greedy tenant burns its burst; extra requests come back kOverQuota
  // without ever reaching the batcher.
  int ok = 0, over = 0;
  for (int i = 0; i < 24; ++i) {
    const Response r = greedy.scan_sync({1, 2, 3}, ScanOp::kPlus);
    if (r.status == Status::kOk) ++ok;
    if (r.status == Status::kOverQuota) {
      ++over;
      EXPECT_NE(r.error.find("quota"), std::string::npos);
    }
  }
  EXPECT_GT(over, 0);
  EXPECT_GE(ok, 8);  // the burst was admitted (refill may add a few more)

  // The compliant tenant is completely unaffected.
  for (int i = 0; i < 4; ++i) {
    const Response r = polite.scan_sync({5, 5}, ScanOp::kPlus);
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_EQ(r.outputs.front(), (std::vector<Value>{0, 5}));
  }
  EXPECT_GE(ls.server.stats().quota_rejected, static_cast<std::uint64_t>(over));
}

TEST(NetServer, ByteQuotaCountsPayloadBytes) {
  Server::Options o = LiveServer::make_options();
  o.tenant_bytes = 4096;  // half a KiB of values per request burns it fast
  LiveServer ls(o);
  Client cli("127.0.0.1", ls.port(), /*tenant=*/9);
  int over = 0;
  for (int i = 0; i < 12; ++i) {
    const Response r = cli.scan_sync(std::vector<Value>(128, 1), ScanOp::kPlus);
    if (r.status == Status::kOverQuota) ++over;
  }
  EXPECT_GT(over, 0);
}

TEST(NetServer, AdaptiveWindowShrinksUnderSloBreach) {
  // A tiny SLO no real round trip can meet, and a fat serve window the
  // controller must cut: every tick with latency-lane samples shrinks.
  Server::Options o = LiveServer::make_options();
  o.slo_us = 1;  // 1 us p99 SLO: always breached
  o.qos_tick_ms = 10;
  serve::Service::Options so;
  so.window_us = 4000;
  LiveServer ls(o, so);
  ASSERT_EQ(ls.svc.window_us(), 4000u);
  Client cli("127.0.0.1", ls.port());
  RequestOptions lat;
  lat.priority = Priority::kLatency;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    const Response r = cli.scan_sync({1, 2, 3, 4}, ScanOp::kPlus, false, false,
                                     {}, lat);
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    if (ls.server.stats().window_shrinks > 0) break;
  }
  EXPECT_GT(ls.server.stats().window_shrinks, 0u);
  EXPECT_LT(ls.svc.window_us(), 4000u);  // the live serve window moved
}

TEST(NetServer, QosOffPinsEverythingToBulkLane) {
  Server::Options o = LiveServer::make_options();
  o.qos = false;
  LiveServer ls(o);
  Client cli("127.0.0.1", ls.port());
  RequestOptions lat;
  lat.priority = Priority::kLatency;  // ignored: QoS is off
  for (int i = 0; i < 4; ++i) {
    const Response r =
        cli.scan_sync({1, 1, 1}, ScanOp::kPlus, false, false, {}, lat);
    ASSERT_EQ(r.status, Status::kOk) << r.error;
  }
  const serve::Metrics m = ls.svc.metrics();
  EXPECT_EQ(m.latency_lane_jobs, 0u);
  EXPECT_EQ(ls.server.stats().window_shrinks, 0u);
}

TEST(NetServer, PrometheusScrapeOnTheSamePort) {
  LiveServer ls;
  {
    Client cli("127.0.0.1", ls.port());
    const Response r = cli.scan_sync({1, 2}, ScanOp::kPlus);
    ASSERT_EQ(r.status, Status::kOk);
  }
  Client raw("127.0.0.1", ls.port(), 0, /*manual=*/true);
  const std::string get = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_TRUE(raw.send_raw(get.data(), get.size()));
  // The scrape counter is the observable contract here; body correctness is
  // covered by test_obs. Poll briefly: the server processes the GET async.
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (ls.server.stats().http_scrapes == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(ls.server.stats().http_scrapes, 1u);
  // And the net series exist in the registry's rendering.
  const std::string rendered = obs::render_text();
  EXPECT_NE(rendered.find("scanprim_net_connections"), std::string::npos);
  EXPECT_NE(rendered.find("scanprim_net_requests_total"), std::string::npos);
}

TEST(NetServer, CoordinatorBackendServesScansAndDeclinesTheRest) {
  shard::Options so;
  so.shards = 2;
  shard::Coordinator coord(so);
  coord.start();
  CoordinatorBackend backend(coord);
  Server::Options o = LiveServer::make_options();
  Server server(backend, o);
  server.start();
  {
    Client cli("127.0.0.1", server.port());
    const auto data = testutil::random_vector<std::int64_t>(513, 21);
    const Response r = cli.scan_sync(data, ScanOp::kPlus);
    ASSERT_EQ(r.status, Status::kOk) << r.error;
    EXPECT_EQ(r.outputs.front(), ref_exclusive_plus(data));

    // Everything that is not a scan is kUnsupported on this backend.
    const Response rp = cli.pack_sync({1, 2, 3}, {1, 0, 1});
    EXPECT_EQ(rp.status, Status::kUnsupported);
    const Response rplan = cli.plan_sync("x", {});
    EXPECT_EQ(rplan.status, Status::kUnsupported);
  }
  server.stop();
  coord.shutdown();
}

TEST(NetServer, StopWithClientsConnectedIsClean) {
  auto ls = std::make_unique<LiveServer>();
  const std::uint16_t port = ls->port();
  Client cli("127.0.0.1", port);
  const Response r = cli.scan_sync({1, 2, 3}, ScanOp::kPlus);
  ASSERT_EQ(r.status, Status::kOk);
  ls.reset();  // server down with the connection open
  // The client sees the close; outstanding work fails rather than hangs.
  const Response dead = cli.scan_sync({4, 5}, ScanOp::kPlus);
  EXPECT_EQ(dead.status, Status::kError);
}

}  // namespace
}  // namespace scanprim::net
