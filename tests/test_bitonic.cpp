// Batcher's bitonic sort — the Table 4 baseline.
#include "src/algo/bitonic_sort.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::algo {
namespace {

class BitonicSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitonicSweep, SortsUniformKeys) {
  machine::Machine m;
  const auto keys = testutil::random_vector<std::uint64_t>(GetParam(), 131,
                                                           1u << 30);
  const auto sorted = bitonic_sort(m, std::span<const std::uint64_t>(keys));
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sorted, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitonicSweep,
                         ::testing::Values(0, 1, 2, 3, 100, 1024, 5000, 65536));

TEST(Bitonic, StageCount) {
  EXPECT_EQ(bitonic_stage_count(2), 1u);
  EXPECT_EQ(bitonic_stage_count(1024), 55u);       // 10·11/2
  EXPECT_EQ(bitonic_stage_count(1 << 16), 136u);   // 16·17/2
}

TEST(Bitonic, ChargesOnePermuteAndOneElementwisePerStage) {
  machine::Machine m;
  const auto keys = testutil::random_vector<std::uint64_t>(1 << 10, 132);
  bitonic_sort(m, std::span<const std::uint64_t>(keys));
  EXPECT_EQ(m.stats().permutes, bitonic_stage_count(1 << 10));
  EXPECT_EQ(m.stats().elementwise, bitonic_stage_count(1 << 10));
}

TEST(Bitonic, AlreadySortedAndReversedInputs) {
  machine::Machine m;
  std::vector<std::uint64_t> asc(4096), desc(4096);
  for (std::size_t i = 0; i < asc.size(); ++i) {
    asc[i] = i;
    desc[i] = asc.size() - i;
  }
  const auto a = bitonic_sort(m, std::span<const std::uint64_t>(asc));
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  const auto d = bitonic_sort(m, std::span<const std::uint64_t>(desc));
  EXPECT_TRUE(std::is_sorted(d.begin(), d.end()));
  EXPECT_EQ(d.front(), 1u);
  EXPECT_EQ(d.back(), 4096u);
}

}  // namespace
}  // namespace scanprim::algo
