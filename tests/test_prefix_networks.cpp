// The classical parallel-prefix networks behind Table 2's circuit rows:
// generated, structurally validated, evaluated, and measured.
#include "src/circuit/prefix_networks.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::circuit {
namespace {

using Factory = PrefixNetwork (*)(std::size_t);

struct NetCase {
  Factory make;
  const char* name;
};

class NetworkSweep
    : public ::testing::TestWithParam<std::tuple<NetCase, std::size_t>> {};

TEST_P(NetworkSweep, ValidatesAndEvaluates) {
  const auto& [factory, n] = GetParam();
  const PrefixNetwork net = factory.make(n);
  ASSERT_TRUE(validate(net)) << factory.name << " n=" << n;
  const auto in = testutil::random_vector<long>(n, 1300 + n);
  const auto got = evaluate(net, std::span<const long>(in), Plus<long>{});
  ASSERT_EQ(got, testutil::ref_inclusive_scan(std::span<const long>(in),
                                              Plus<long>{}))
      << factory.name;
  // Max works too (any associative operator).
  const auto gm = evaluate(net, std::span<const long>(in), Max<long>{});
  ASSERT_EQ(gm, testutil::ref_inclusive_scan(std::span<const long>(in),
                                             Max<long>{}));
}

INSTANTIATE_TEST_SUITE_P(
    All, NetworkSweep,
    ::testing::Combine(
        ::testing::Values(NetCase{serial_network, "serial"},
                          NetCase{sklansky_network, "sklansky"},
                          NetCase{brent_kung_network, "brent-kung"},
                          NetCase{kogge_stone_network, "kogge-stone"}),
        ::testing::Values(1, 2, 3, 7, 8, 9, 64, 100, 1024, 1337)));

TEST(PrefixNetworks, SizeAndDepthFormulas) {
  const std::size_t n = 1 << 10;
  const auto serial = serial_network(n);
  EXPECT_EQ(serial.size(), n - 1);
  EXPECT_EQ(serial.depth(), n - 1);

  const auto sk = sklansky_network(n);
  EXPECT_EQ(sk.depth(), 10u);                 // minimum depth: lg n
  EXPECT_EQ(sk.size(), (n / 2) * 10);         // (n/2) lg n gates

  const auto bk = brent_kung_network(n);
  EXPECT_EQ(bk.size(), 2 * n - 2 - 10);       // 2n - lg n - 2
  EXPECT_EQ(bk.depth(), 2 * 10 - 2);          // 2 lg n - 2

  const auto ks = kogge_stone_network(n);
  EXPECT_EQ(ks.depth(), 10u);
  EXPECT_EQ(ks.size(), 10 * n - (n - 1));     // n lg n - n + 1
  // Kogge-Stone's celebrated fanout-2 is per stage; in the flat gate graph
  // a low node feeds one gate per level, so ≤ lg n overall — still far
  // below Sklansky's Θ(n) block-boundary fanout.
  EXPECT_LE(ks.max_fanout(), 10u);
}

TEST(PrefixNetworks, SklanskyFanoutGrowsButBrentKungStaysLinearSize) {
  // The trade Table 2's "circuit size O(n)" row is about: Brent-Kung's
  // size stays ~2n while minimum-depth networks pay ~n lg n / 2.
  for (const std::size_t n : {64u, 256u, 1024u, 4096u}) {
    const auto bk = brent_kung_network(n);
    const auto sk = sklansky_network(n);
    EXPECT_LT(bk.size(), 2 * n);
    EXPECT_GT(sk.size(), bk.size());
    EXPECT_GT(sk.max_fanout(), bk.max_fanout());
    EXPECT_EQ(bk.depth(), 2 * sk.depth() - 2);
  }
}

TEST(PrefixNetworks, NonPowerOfTwoWidths) {
  for (const std::size_t n : {5u, 13u, 100u, 1000u}) {
    for (const auto factory : {sklansky_network, brent_kung_network,
                               kogge_stone_network}) {
      const auto net = factory(n);
      ASSERT_TRUE(validate(net)) << n;
    }
  }
}

}  // namespace
}  // namespace scanprim::circuit
