// Star merging (§2.3.3, Figure 7): the paper's worked example and
// structural invariants on randomized stars.
#include "src/graph/star_merge.hpp"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace scanprim::graph {
namespace {

// Multiset of weights per segment, a representation-independent fingerprint.
std::vector<std::vector<double>> segment_weights(const SegGraph& g) {
  std::vector<std::vector<double>> segs;
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    if (g.segment_desc[s]) segs.emplace_back();
    segs.back().push_back(g.weight[s]);
  }
  for (auto& v : segs) std::sort(v.begin(), v.end());
  return segs;
}

TEST(StarMerge, Figure7Example) {
  machine::Machine m;
  // The Figure 6 graph again: w_k = k+1, 0-based vertices.
  const std::vector<WeightedEdge> edges{{0, 1, 1}, {1, 2, 2}, {1, 4, 3},
                                        {2, 3, 4}, {2, 4, 5}, {3, 4, 6}};
  const SegGraph g = build_seg_graph(m, 5, edges);
  // Figure 7: parents are vertices 0, 2, 4; children 1 and 3; star edges
  // w2 = (1,2) and w4 = (2,3) (edge ids 1 and 3).
  Flags star(g.num_slots(), 0), parent(g.num_slots(), 0);
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    star[s] = (g.edge_id[s] == 1 || g.edge_id[s] == 3) ? 1 : 0;
    parent[s] =
        (g.vertex[s] == 0 || g.vertex[s] == 2 || g.vertex[s] == 4) ? 1 : 0;
  }
  const SegGraph merged = star_merge(m, g, FlagsView(star), FlagsView(parent));
  ASSERT_TRUE(validate(merged));
  // After the merge (Figure 7): 8 slots, 3 segments, weights
  // {w1}, {w1, w3, w5, w6}, {w3, w5, w6}.
  EXPECT_EQ(merged.num_slots(), 8u);
  const auto segs = segment_weights(merged);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], (std::vector<double>{1}));
  EXPECT_EQ(segs[1], (std::vector<double>{1, 3, 5, 6}));
  EXPECT_EQ(segs[2], (std::vector<double>{3, 5, 6}));
  // The merged vertex carries the parent's id (2); v0 and v4 keep theirs.
  EXPECT_EQ(merged.vertex[0], 0u);
  EXPECT_EQ(merged.vertex[1], 2u);
  EXPECT_EQ(merged.vertex.back(), 4u);
}

TEST(StarMerge, NoStarsIsANearNoOp) {
  machine::Machine m;
  const std::vector<WeightedEdge> edges{{0, 1, 5}, {1, 2, 6}, {0, 2, 7}};
  const SegGraph g = build_seg_graph(m, 3, edges);
  const Flags star(g.num_slots(), 0);
  const Flags parent(g.num_slots(), 1);
  const SegGraph merged = star_merge(m, g, FlagsView(star), FlagsView(parent));
  ASSERT_TRUE(validate(merged));
  EXPECT_EQ(merged.num_slots(), g.num_slots());
  EXPECT_EQ(segment_weights(merged), segment_weights(g));
}

TEST(StarMerge, SingleStarConsumesInternalEdges) {
  machine::Machine m;
  // A triangle where vertex 1 merges into vertex 0: the star edge (0,1)
  // disappears, the parallel paths (1,2) and (0,2) both survive as edges of
  // the merged vertex.
  const std::vector<WeightedEdge> edges{{0, 1, 1}, {1, 2, 2}, {0, 2, 3}};
  const SegGraph g = build_seg_graph(m, 3, edges);
  Flags star(g.num_slots(), 0), parent(g.num_slots(), 0);
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    star[s] = g.edge_id[s] == 0 ? 1 : 0;
    parent[s] = g.vertex[s] != 1 ? 1 : 0;  // 0 and 2 are parents
  }
  const SegGraph merged = star_merge(m, g, FlagsView(star), FlagsView(parent));
  ASSERT_TRUE(validate(merged));
  const auto segs = segment_weights(merged);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (std::vector<double>{2, 3}));  // merged {0,1}
  EXPECT_EQ(segs[1], (std::vector<double>{2, 3}));  // vertex 2
}

TEST(StarMerge, ChainOfStarsReducesToNothing) {
  machine::Machine m;
  // Two vertices, one edge; the only child merges into the only parent and
  // the edge becomes internal: the graph vanishes.
  const std::vector<WeightedEdge> edges{{0, 1, 9}};
  const SegGraph g = build_seg_graph(m, 2, edges);
  Flags star(g.num_slots(), 1), parent(g.num_slots(), 0);
  for (std::size_t s = 0; s < g.num_slots(); ++s) {
    parent[s] = g.vertex[s] == 0 ? 1 : 0;
  }
  const SegGraph merged = star_merge(m, g, FlagsView(star), FlagsView(parent));
  ASSERT_TRUE(validate(merged));
  EXPECT_EQ(merged.num_slots(), 0u);
}

TEST(StarMerge, RandomizedStarsPreserveExternalEdges) {
  machine::Machine m;
  auto rng = testutil::rng(171);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 40;
    std::vector<WeightedEdge> edges;
    for (std::size_t v = 1; v < n; ++v) {
      edges.push_back({rng() % v, v, static_cast<double>(100 + edges.size())});
    }
    for (int e = 0; e < 60; ++e) {
      const std::size_t u = rng() % n, v = rng() % n;
      if (u != v) {
        edges.push_back({u, v, static_cast<double>(100 + edges.size())});
      }
    }
    const SegGraph g = build_seg_graph(m, n, edges);
    // Random parent coins per vertex; each child picks its first edge whose
    // other end is a parent (if any) as its star edge.
    std::vector<std::uint8_t> is_parent(n);
    for (auto& p : is_parent) p = rng() & 1;
    Flags star(g.num_slots(), 0), parent(g.num_slots(), 0);
    std::map<std::size_t, std::size_t> chosen;  // child vertex -> slot
    for (std::size_t s = 0; s < g.num_slots(); ++s) {
      parent[s] = is_parent[g.vertex[s]];
      if (!is_parent[g.vertex[s]] && is_parent[g.vertex[g.cross[s]]] &&
          !chosen.count(g.vertex[s])) {
        chosen[g.vertex[s]] = s;
      }
    }
    std::size_t merged_children = 0;
    for (const auto& [child, slot] : chosen) {
      star[slot] = 1;
      star[g.cross[slot]] = 1;
      ++merged_children;
    }
    const SegGraph merged =
        star_merge(m, g, FlagsView(star), FlagsView(parent));
    ASSERT_TRUE(validate(merged));
    // Every surviving edge joins two distinct merged vertices; every edge
    // whose endpoints ended in different merged vertices survives (weights
    // are unique, so compare multisets).
    std::vector<std::size_t> rep(n);
    for (std::size_t v = 0; v < n; ++v) rep[v] = v;
    for (const auto& [child, slot] : chosen) {
      rep[child] = g.vertex[g.cross[slot]];
    }
    std::vector<double> expect;
    for (const auto& e : edges) {
      if (rep[e.u] != rep[e.v]) {
        expect.push_back(e.w);
        expect.push_back(e.w);
      }
    }
    std::sort(expect.begin(), expect.end());
    std::vector<double> got(merged.weight);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expect) << "trial " << trial;
  }
}

}  // namespace
}  // namespace scanprim::graph
