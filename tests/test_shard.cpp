// Sharded scan service (docs/SHARD.md): functional coverage for the
// coordinator's routing, fail-over, restart, cross-shard combine, and
// drain paths. Everything here forks real worker processes, so this suite
// must stay OUT of the TSan allowlist (TSan cannot follow a fork from a
// multithreaded parent); the crash-robustness load test lives in
// test_shard_soak.cpp.
#include <gtest/gtest.h>

#if defined(__linux__)

#include <signal.h>
#include <stdlib.h>
#include <sys/types.h>

#include <chrono>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/shard/shard.hpp"
#include "test_util.hpp"

namespace scanprim::shard {
namespace {

using namespace std::chrono_literals;

std::vector<Value> ref_scan(const serve::ScanJob& j) {
  const std::size_t n = j.data.size();
  std::vector<Value> out(n);
  const bool seg = !j.flags.empty();
  Value acc = batch::op_identity(j.op);
  if (!j.backward) {
    for (std::size_t i = 0; i < n; ++i) {
      if (seg && j.flags[i]) acc = batch::op_identity(j.op);
      if (j.inclusive) {
        acc = batch::op_apply(j.op, acc, j.data[i]);
        out[i] = acc;
      } else {
        out[i] = acc;
        acc = batch::op_apply(j.op, acc, j.data[i]);
      }
    }
  } else {
    for (std::size_t i = n; i-- > 0;) {
      if (j.inclusive) {
        acc = batch::op_apply(j.op, acc, j.data[i]);
        out[i] = acc;
      } else {
        out[i] = acc;
        acc = batch::op_apply(j.op, acc, j.data[i]);
      }
      if (seg && j.flags[i]) acc = batch::op_identity(j.op);
    }
  }
  return out;
}

serve::ScanJob random_job(std::mt19937& rng, std::size_t max_n = 512) {
  std::uniform_int_distribution<std::size_t> nd(1, max_n);
  std::uniform_int_distribution<int> vd(-1000, 1000);
  std::uniform_int_distribution<int> od(0, batch::kOpCount - 1);
  std::uniform_int_distribution<int> bd(0, 1);
  serve::ScanJob j;
  j.data.resize(nd(rng));
  for (auto& v : j.data) v = vd(rng);
  j.op = static_cast<Op>(od(rng));
  j.inclusive = bd(rng) != 0;
  j.backward = bd(rng) != 0;
  if (bd(rng) != 0) {
    j.flags.resize(j.data.size());
    for (auto& f : j.flags) f = bd(rng) == 0 ? 0 : 1;
  }
  return j;
}

Options small_opts(std::size_t shards = 2) {
  Options o;
  o.shards = shards;
  o.slots_per_shard = 8;
  o.heartbeat_ms = 20;
  o.worker_threads = 1;
  o.max_pending = 4096;  // the burst tests submit far ahead of the workers
  return o;
}

/// The suite must hold whatever SCANPRIM_FAULT the CI matrix armed; the
/// targeted tests below arm their own specs, so start from a clean slate.
class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::disarm_all(); }
  void TearDown() override {
    ::unsetenv("SCANPRIM_FAULT");
    fault::disarm_all();
  }
};

TEST_F(ShardTest, StartSubmitShutdown) {
  Coordinator coord(small_opts(2));
  coord.start();
  EXPECT_EQ(coord.live_shards(), 2u);

  std::mt19937 rng(7);
  std::vector<serve::ScanJob> jobs;
  std::vector<std::future<serve::Result>> futs;
  for (int i = 0; i < 64; ++i) {
    jobs.push_back(random_job(rng));
    futs.push_back(coord.submit(jobs.back()));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    serve::Result r = futs[i].get();
    ASSERT_EQ(r.status, serve::Status::kOk) << r.error;
    EXPECT_EQ(r.values, ref_scan(jobs[i])) << "job " << i;
  }
  const Metrics m = coord.metrics();
  EXPECT_EQ(m.submitted, 64u);
  EXPECT_EQ(m.completed, 64u);
  coord.shutdown();
}

TEST_F(ShardTest, RoutingSpreadsAcrossShards) {
  Coordinator coord(small_opts(4));
  coord.start();
  std::vector<std::future<serve::Result>> futs;
  for (int i = 0; i < 200; ++i) {
    serve::ScanJob j;
    j.data = {1, 2, 3};
    j.inclusive = true;
    futs.push_back(coord.submit(std::move(j)));
  }
  for (auto& f : futs) EXPECT_EQ(f.get().status, serve::Status::kOk);
  // With id-mod routing over 4 live shards, every shard must have served
  // a healthy share of the 200 requests.
  // (Indirect check: all four workers are still live and none restarted.)
  EXPECT_EQ(coord.live_shards(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(coord.shard_restarts(i), 0u);
  }
  coord.shutdown();
}

TEST_F(ShardTest, OversizeRequestRunsInline) {
  Options o = small_opts(2);
  o.slot_bytes = 8 << 10;  // ~1000-value capacity
  Coordinator coord(o);
  coord.start();
  serve::ScanJob j;
  j.data.resize(100'000, 1);
  j.inclusive = true;
  serve::ScanJob copy = j;
  serve::Result r = coord.submit(std::move(j)).get();
  ASSERT_EQ(r.status, serve::Status::kOk);
  EXPECT_EQ(r.values, ref_scan(copy));
  EXPECT_GE(coord.metrics().inline_runs, 1u);
  coord.shutdown();
}

TEST_F(ShardTest, DeadlineExpiresWhileShardStopped) {
  Options o = small_opts(1);
  o.heartbeat_ms = 2000;  // watchdog far slower than the deadline
  o.heartbeat_misses = 100;
  Coordinator coord(o);
  coord.start();
  const pid_t pid = coord.shard_pid(0);
  ASSERT_GT(pid, 0);
  ::kill(pid, SIGSTOP);  // wedge the worker without killing it
  serve::ScanJob j;
  j.data = {1, 2, 3};
  serve::SubmitOptions so;
  so.deadline = 100ms;
  serve::Result r = coord.submit(std::move(j), so).get();
  EXPECT_EQ(r.status, serve::Status::kTimeout);
  ::kill(pid, SIGCONT);
  coord.shutdown();
}

TEST_F(ShardTest, CancelBeforeExecution) {
  Options o = small_opts(1);
  Coordinator coord(o);
  coord.start();
  const pid_t pid = coord.shard_pid(0);
  ::kill(pid, SIGSTOP);
  auto token = serve::make_cancel_token();
  serve::ScanJob j;
  j.data = {4, 5, 6};
  serve::SubmitOptions so;
  so.cancel = token;
  auto fut = coord.submit(std::move(j), so);
  token->store(true);
  serve::Result r = fut.get();
  EXPECT_EQ(r.status, serve::Status::kCancelled);
  ::kill(pid, SIGCONT);
  coord.shutdown();
}

TEST_F(ShardTest, BackpressureWhenSlotsAndQueueFull) {
  Options o = small_opts(1);
  o.slots_per_shard = 2;
  o.max_pending = 1;
  o.heartbeat_ms = 2000;  // keep the watchdog out of this test
  o.heartbeat_misses = 100;
  Coordinator coord(o);
  coord.start();
  const pid_t pid = coord.shard_pid(0);
  ::kill(pid, SIGSTOP);
  // 2 slots + 1 pending seat fill; the 4th submission is turned away.
  std::vector<std::future<serve::Result>> held;
  held.push_back(coord.submit(serve::ScanJob{{1}, Op::kPlus, true, false, {}}));
  held.push_back(coord.submit(serve::ScanJob{{2}, Op::kPlus, true, false, {}}));
  held.push_back(coord.submit(serve::ScanJob{{3}, Op::kPlus, true, false, {}}));
  serve::Result r =
      coord.submit(serve::ScanJob{{4}, Op::kPlus, true, false, {}}).get();
  EXPECT_EQ(r.status, serve::Status::kRejected);
  EXPECT_GE(coord.metrics().rejected, 1u);
  ::kill(pid, SIGCONT);
  for (auto& f : held) EXPECT_EQ(f.get().status, serve::Status::kOk);
  coord.shutdown();
}

TEST_F(ShardTest, WorkerSigkillFailsOverAndRestarts) {
  Options o = small_opts(2);
  o.restart_backoff_ms = 5;
  Coordinator coord(o);
  coord.start();

  std::mt19937 rng(11);
  std::vector<serve::ScanJob> jobs;
  std::vector<std::future<serve::Result>> futs;
  for (int i = 0; i < 40; ++i) {
    jobs.push_back(random_job(rng));
    futs.push_back(coord.submit(jobs.back()));
  }
  const pid_t victim = coord.shard_pid(0);
  ASSERT_GT(victim, 0);
  ::kill(victim, SIGKILL);

  // Every request still resolves, and every success is bit-correct.
  for (std::size_t i = 0; i < futs.size(); ++i) {
    serve::Result r = futs[i].get();
    ASSERT_EQ(r.status, serve::Status::kOk) << r.error;
    EXPECT_EQ(r.values, ref_scan(jobs[i])) << "job " << i;
  }

  // The dead shard comes back and serves again.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (coord.live_shards() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(coord.live_shards(), 2u);
  EXPECT_GE(coord.shard_restarts(0), 1u);
  EXPECT_NE(coord.shard_pid(0), victim);

  serve::ScanJob after;
  after.data = {1, 1, 1, 1};
  after.inclusive = true;
  serve::Result r = coord.submit(std::move(after)).get();
  ASSERT_EQ(r.status, serve::Status::kOk);
  EXPECT_EQ(r.values, (std::vector<Value>{1, 2, 3, 4}));
  EXPECT_GE(coord.metrics().failovers, 1u);
  coord.shutdown();
}

TEST_F(ShardTest, WorkerExitFaultPointFailsOver) {
  // Arm via the environment: fault points re-arm per worker incarnation
  // (fault::reinit_after_fork), so the THIRD claim in the first worker that
  // gets traffic exits with _exit(42), exactly like a crash.
  ::setenv("SCANPRIM_FAULT", "shard.worker_exit:3", 1);
  Options o = small_opts(2);
  o.restart_backoff_ms = 5;
  Coordinator coord(o);
  coord.start();
  ::unsetenv("SCANPRIM_FAULT");

  std::mt19937 rng(13);
  std::vector<serve::ScanJob> jobs;
  std::vector<std::future<serve::Result>> futs;
  for (int i = 0; i < 30; ++i) {
    jobs.push_back(random_job(rng, 64));
    futs.push_back(coord.submit(jobs.back()));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    serve::Result r = futs[i].get();
    ASSERT_EQ(r.status, serve::Status::kOk) << r.error;
    EXPECT_EQ(r.values, ref_scan(jobs[i])) << "job " << i;
  }
  EXPECT_GE(coord.metrics().failovers, 1u);
  coord.shutdown();
}

TEST_F(ShardTest, HeartbeatStallDetectedAndReplaced) {
  // The worker's heartbeat thread hangs on its first beat; the process
  // stays alive, so only the stall detector can catch it.
  ::setenv("SCANPRIM_FAULT", "shard.heartbeat_stall:1", 1);
  Options o = small_opts(2);
  o.heartbeat_ms = 10;
  o.heartbeat_misses = 3;
  o.restart_backoff_ms = 5;
  Coordinator coord(o);
  coord.start();
  ::unsetenv("SCANPRIM_FAULT");

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (coord.metrics().heartbeat_stalls < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_GE(coord.metrics().heartbeat_stalls, 1u);

  // Replacement workers (fault long since consumed) serve normally.
  serve::ScanJob j;
  j.data = {2, 2, 2};
  j.inclusive = true;
  serve::Result r = coord.submit(std::move(j)).get();
  ASSERT_EQ(r.status, serve::Status::kOk);
  EXPECT_EQ(r.values, (std::vector<Value>{2, 4, 6}));
  coord.shutdown();
}

TEST_F(ShardTest, SegmentCorruptionDetectedByCanary) {
  ::setenv("SCANPRIM_FAULT", "shard.segment_corrupt:2", 1);
  Options o = small_opts(2);
  o.restart_backoff_ms = 5;
  Coordinator coord(o);
  coord.start();
  ::unsetenv("SCANPRIM_FAULT");

  std::mt19937 rng(17);
  std::vector<serve::ScanJob> jobs;
  std::vector<std::future<serve::Result>> futs;
  for (int i = 0; i < 24; ++i) {
    jobs.push_back(random_job(rng, 64));
    futs.push_back(coord.submit(jobs.back()));
  }
  std::size_t corrupted = 0;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    serve::Result r = futs[i].get();
    if (r.status == serve::Status::kOk) {
      EXPECT_EQ(r.values, ref_scan(jobs[i])) << "job " << i;
    } else {
      // The one request in the corrupted slot resolves kError with the
      // canary diagnosis; it must never leak a corrupted payload as kOk.
      EXPECT_EQ(r.status, serve::Status::kError);
      ++corrupted;
    }
  }
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (coord.metrics().corrupt_segments < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_GE(coord.metrics().corrupt_segments, 1u);
  EXPECT_LE(corrupted, 2u);  // only the slot(s) that tripped the canary
  coord.shutdown();
}

TEST_F(ShardTest, GlobalScanMatchesReferenceAllOps) {
  Coordinator coord(small_opts(4));
  coord.start();
  std::mt19937 rng(23);
  std::uniform_int_distribution<int> vd(-50, 50);
  for (std::size_t op = 0; op < batch::kOpCount; ++op) {
    for (const bool inclusive : {false, true}) {
      std::vector<Value> data(3000);
      for (auto& v : data) v = vd(rng);
      serve::ScanJob ref_job;
      ref_job.data = data;
      ref_job.op = static_cast<Op>(op);
      ref_job.inclusive = inclusive;
      serve::Result r =
          coord.global_scan(data, static_cast<Op>(op), inclusive);
      ASSERT_EQ(r.status, serve::Status::kOk) << r.error;
      EXPECT_EQ(r.values, ref_scan(ref_job))
          << "op " << op << " inclusive " << inclusive;
    }
  }
  EXPECT_GE(coord.metrics().global_scans, 10u);
  EXPECT_GE(coord.metrics().combine_rounds, 1u);
  coord.shutdown();
}

TEST_F(ShardTest, GlobalScanSurvivesShardDeath) {
  Options o = small_opts(4);
  o.restart_backoff_ms = 5;
  Coordinator coord(o);
  coord.start();
  std::vector<Value> data(20'000, 1);

  std::atomic<bool> stop{false};
  std::thread killer([&] {
    std::this_thread::sleep_for(3ms);
    if (stop.load()) return;
    const pid_t pid = coord.shard_pid(1);
    if (pid > 0) ::kill(pid, SIGKILL);
  });
  for (int iter = 0; iter < 5; ++iter) {
    serve::Result r = coord.global_scan(data, Op::kPlus, true);
    ASSERT_EQ(r.status, serve::Status::kOk) << r.error;
    ASSERT_EQ(r.values.size(), data.size());
    for (std::size_t i = 0; i < r.values.size(); ++i) {
      ASSERT_EQ(r.values[i], static_cast<Value>(i + 1)) << "i=" << i;
    }
  }
  stop.store(true);
  killer.join();
  coord.shutdown();
}

TEST_F(ShardTest, DrainSurvivesWorkerDeathMidDrain) {
  Options o = small_opts(2);
  Coordinator coord(o);
  coord.start();
  std::mt19937 rng(29);
  std::vector<serve::ScanJob> jobs;
  std::vector<std::future<serve::Result>> futs;
  for (int i = 0; i < 32; ++i) {
    jobs.push_back(random_job(rng));
    futs.push_back(coord.submit(jobs.back()));
  }
  // Kill one worker and immediately drain: the mid-drain fail-over path
  // must still resolve everything that was in flight.
  const pid_t victim = coord.shard_pid(1);
  ASSERT_GT(victim, 0);
  ::kill(victim, SIGKILL);
  coord.shutdown();
  for (std::size_t i = 0; i < futs.size(); ++i) {
    serve::Result r = futs[i].get();
    ASSERT_EQ(r.status, serve::Status::kOk) << r.error;
    EXPECT_EQ(r.values, ref_scan(jobs[i])) << "job " << i;
  }
}

TEST_F(ShardTest, SubmitAfterShutdownIsRejected) {
  Coordinator coord(small_opts(1));
  coord.start();
  coord.shutdown();
  serve::ScanJob j;
  j.data = {1};
  EXPECT_EQ(coord.submit(std::move(j)).get().status,
            serve::Status::kShutdown);
}

TEST_F(ShardTest, OptionsFromEnvParsesAndClamps) {
  ::setenv("SCANPRIM_SHARDS", "3", 1);
  ::setenv("SCANPRIM_SHARD_HEARTBEAT_MS", "75", 1);
  Options o = Options::from_env();
  EXPECT_EQ(o.shards, 3u);
  EXPECT_EQ(o.heartbeat_ms, 75u);
  ::setenv("SCANPRIM_SHARDS", "100000", 1);  // clamps to the region ceiling
  EXPECT_EQ(Options::from_env().shards, 64u);
  ::unsetenv("SCANPRIM_SHARDS");
  ::unsetenv("SCANPRIM_SHARD_HEARTBEAT_MS");
}

}  // namespace
}  // namespace scanprim::shard

#else  // !__linux__

TEST(ShardTest, SkippedOnNonLinux) { GTEST_SKIP(); }

#endif
