// The vector instruction set in action: assemble a program (the paper's
// split radix sort), list it, run it under the scan-model and EREW
// machines, and compare the charged steps — the paper's whole argument in
// one program run twice.
#include <algorithm>
#include <cstdio>
#include <random>

#include "src/scanprim.hpp"

using namespace scanprim;

int main() {
  const char* source = R"(
    ; split radix sort (paper, section 2.2.1)
    ; registers: a = keys, nbits = key width
        const 1 0
        store bit
    loop:
        load a          ; flags = (a >> bit) & 1
        load bit
        shr
        const 1 1
        band
        store flags
        load a          ; a = split(a, flags)
        load flags
        split
        store a
        load bit        ; bit += 1
        const 1 1
        add
        store bit
        load bit        ; while bit < nbits
        load nbits
        lt
        jnz loop
        load a
        print
        halt
  )";

  const vm::Program program = vm::assemble(source);
  std::printf("assembled %zu instructions:\n%s\n", program.size(),
              vm::disassemble(program).c_str());

  std::mt19937_64 rng(1987);
  vm::Vec keys(1 << 14);
  for (auto& k : keys) k = static_cast<std::int64_t>(rng() & 0x3fff);

  for (const auto model : {machine::Model::Scan, machine::Model::EREW}) {
    machine::Machine m(model);
    vm::Interpreter interp(m);
    interp.set_register("a", keys);
    interp.set_register("nbits", vm::Vec{14});
    interp.run(program);
    const vm::Vec& sorted = interp.output().back();
    std::printf("%s machine: %6llu program steps, %zu VM instructions, "
                "sorted: %s\n",
                machine::to_string(model).c_str(),
                static_cast<unsigned long long>(m.stats().steps),
                interp.instructions_executed(),
                std::is_sorted(sorted.begin(), sorted.end()) ? "yes" : "NO");
  }
  std::printf("\n(the EREW pays lg n = 14 per scan; the scan model pays 1 — "
              "the same\n program, the paper's gap)\n");
  return 0;
}
