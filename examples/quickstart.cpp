// Quickstart: the scan primitives and the vector operations built on them,
// on the paper's own worked examples. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/scanprim.hpp"

using namespace scanprim;

namespace {

template <class T>
void show(const char* label, const std::vector<T>& v) {
  std::printf("%-22s [", label);
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::printf("%s%lld", i ? " " : "", static_cast<long long>(v[i]));
  }
  std::printf("]\n");
}

}  // namespace

int main() {
  std::printf("scanprim %s — scans as primitive parallel operations\n",
              version());
  std::printf("running with %zu worker thread(s)\n\n", runtime_workers());

  // --- the two primitive scans (§2.1) -------------------------------------------
  const std::vector<int> a{2, 1, 2, 3, 5, 8, 13, 21};
  show("A", a);
  show("+-scan(A)", plus_scan(std::span<const int>(a)));
  show("max-scan(A)", max_scan(std::span<const int>(a)));

  // --- enumerate / copy / distribute (§2.2) --------------------------------------
  const Flags flag{1, 0, 0, 1, 0, 1, 1, 0};
  show("\nFlag", std::vector<int>(flag.begin(), flag.end()));
  show("enumerate(Flag)", enumerate(FlagsView(flag)));
  const std::vector<int> b{1, 1, 2, 1, 1, 2, 1, 1};
  show("B", b);
  show("+-distribute(B)", distribute(std::span<const int>(b), Plus<int>{}));

  // --- segmented scans (§2.3) ---------------------------------------------------
  const std::vector<int> c{5, 1, 3, 4, 3, 9, 2, 6};
  const Flags seg{1, 0, 1, 0, 0, 0, 1, 0};
  show("\nC", c);
  show("segment flags", std::vector<int>(seg.begin(), seg.end()));
  show("seg-+-scan(C)", seg_plus_scan(std::span<const int>(c), FlagsView(seg)));

  // --- split and pack (§2.2.1, §2.5) ---------------------------------------------
  const std::vector<int> d{5, 7, 3, 1, 4, 2, 7, 2};
  Flags odd(8);
  for (std::size_t i = 0; i < 8; ++i) odd[i] = d[i] & 1;
  show("\nD", d);
  show("split(D, odd?)", split(std::span<const int>(d), FlagsView(odd)));
  show("pack(D, odd?)", pack(std::span<const int>(d), FlagsView(odd)));

  // --- allocation (§2.4) ----------------------------------------------------------
  const std::vector<std::size_t> sizes{4, 1, 3};
  const Allocation alloc = allocate(std::span<const std::size_t>(sizes));
  const std::vector<int> vals{10, 20, 30};
  show("\nallocate [4 1 3] ->",
       distribute_to_segments(std::span<const int>(vals), alloc));

  // --- the instrumented machine (the paper's cost models) -------------------------
  std::printf("\nstep charges for one +-scan over 4096 elements:\n");
  const std::vector<long> big(4096, 1);
  for (const auto model : {machine::Model::EREW, machine::Model::CRCW,
                           machine::Model::Scan}) {
    machine::Machine m(model);
    m.plus_scan(std::span<const long>(big));
    std::printf("  %-5s %llu step(s)\n", machine::to_string(model).c_str(),
                static_cast<unsigned long long>(m.stats().steps));
  }

  // --- the §3.2 hardware, bit by bit ----------------------------------------------
  circuit::TreeScanCircuit hw(8, 8);
  const std::vector<std::uint64_t> ops{2, 1, 2, 3, 5, 8, 13, 21};
  const auto scanned = hw.scan(ops, circuit::ScanOpKind::Add);
  show("\ncircuit +-scan", std::vector<long long>(scanned.begin(), scanned.end()));
  std::printf("bit cycles: %zu (= field bits + 2 lg n - 1)\n",
              hw.last_cycle_count());
  return 0;
}
