// Database-style analytics with segments: GROUP BY is a radix sort, and
// every per-group aggregate is one segmented operation — the §2.3 "operate
// over many sets of data in parallel" technique on a workload people
// actually run. Synthesizes a sales table, groups by store, and computes
// count / sum / min / max / mean per store in O(1) program steps per
// aggregate, independent of how skewed the group sizes are.
#include <cstdio>
#include <random>

#include "src/scanprim.hpp"

using namespace scanprim;

int main() {
  machine::Machine m(machine::Model::Scan);
  const std::size_t rows = 200000;
  const std::size_t stores = 12;

  // A skewed synthetic table: store 0 gets ~half the traffic.
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> store(rows);
  std::vector<double> amount(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    store[i] = rng() % 2 == 0 ? 0 : 1 + rng() % (stores - 1);
    amount[i] = static_cast<double>(rng() % 50000) / 100.0;
  }

  // GROUP BY store: one split radix sort of the row ids by store key.
  const algo::SortWithOrigin sorted = algo::split_radix_sort_with_origin(
      m, std::span<const std::uint64_t>(store), algo::bits_for(stores));
  std::vector<double> amt_sorted =
      m.gather(std::span<const double>(amount),
               std::span<const std::size_t>(sorted.origin));

  // Segment flags at the store boundaries.
  Flags segs(rows);
  m.charge_elementwise(rows);
  thread::parallel_for(rows, [&](std::size_t i) {
    segs[i] = i == 0 || sorted.keys[i] != sorted.keys[i - 1];
  });
  // Aggregates: one charged segmented operation each (the SegVec wrapper in
  // core/segvec.hpp offers the same calls on the uncharged fast path).
  m.reset_stats();
  const std::vector<std::size_t> ones(rows, 1);
  const auto counts = m.seg_distribute(std::span<const std::size_t>(ones),
                                       FlagsView(segs), Plus<std::size_t>{});
  const auto sums = m.seg_distribute(std::span<const double>(amt_sorted),
                                     FlagsView(segs), Plus<double>{});
  const auto mins = m.seg_distribute(std::span<const double>(amt_sorted),
                                     FlagsView(segs), Min<double>{});
  const auto maxs = m.seg_distribute(std::span<const double>(amt_sorted),
                                     FlagsView(segs), Max<double>{});
  const auto steps = m.stats().steps;

  // Read one row per group off the segment heads.
  const std::vector<std::size_t> heads = pack_index(FlagsView(segs));
  std::printf("%8s %10s %12s %10s %10s %10s\n", "store", "rows", "sum", "min",
              "max", "mean");
  for (const std::size_t h : heads) {
    std::printf("%8llu %10zu %12.2f %10.2f %10.2f %10.2f\n",
                static_cast<unsigned long long>(sorted.keys[h]), counts[h],
                sums[h], mins[h], maxs[h], sums[h] / counts[h]);
  }
  std::printf("\nall four aggregates over %zu rows and %zu groups: "
              "%llu program steps (group skew is irrelevant — store 0 holds "
              "%zu rows)\n",
              rows, heads.size(), static_cast<unsigned long long>(steps),
              counts[heads[0]]);

  // Sanity: serial totals agree.
  double total = 0;
  for (const double a : amount) total += a;
  double seg_total = 0;
  for (const std::size_t h : heads) seg_total += sums[h];
  std::printf("serial cross-check: totals agree to %.6f\n",
              std::abs(total - seg_total));
  return std::abs(total - seg_total) < 1e-6 * total ? 0 : 1;
}
