// Line of sight over synthetic terrain (Table 1's O(1) geometry row): an
// observer scans a ridge profile; one max-scan of the view angles decides
// visibility for every sample at once. Renders the profile with visible
// samples highlighted.
#include <cmath>
#include <cstdio>
#include <random>

#include "src/scanprim.hpp"

using namespace scanprim;

int main() {
  // Rolling terrain: a few summed sinusoids plus noise.
  const std::size_t n = 96;
  std::mt19937_64 rng(3);
  std::vector<double> alt(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    alt[i] = 8.0 + 6.0 * std::sin(x / 7.0) + 4.0 * std::sin(x / 17.0 + 1.0) +
             static_cast<double>(rng() % 100) / 60.0;
  }

  machine::Machine m(machine::Model::Scan);
  const Flags visible = algo::line_of_sight(m, std::span<const double>(alt), 2.0);

  // Render: rows from high to low; visible columns drawn with '#'.
  const int height = 20;
  std::printf("observer at column 0 (2 units above ground); '#' = visible "
              "terrain, 'o' = hidden\n\n");
  for (int row = height; row >= 0; --row) {
    std::string line(n, ' ');
    for (std::size_t i = 0; i < n; ++i) {
      if (alt[i] >= row) line[i] = visible[i] ? '#' : 'o';
    }
    std::printf("  %s\n", line.c_str());
  }
  std::size_t count = 0;
  for (const auto f : visible) count += f;
  std::printf("\n%zu of %zu samples visible; decided with %llu program "
              "step(s) — one max-scan (EREW would pay lg n = %.0f)\n",
              count, n, static_cast<unsigned long long>(m.stats().steps),
              std::log2(static_cast<double>(n)));

  // Verify against the serial walk.
  const Flags serial = algo::line_of_sight_serial(std::span<const double>(alt), 2.0);
  std::printf("serial reference agrees: %s\n",
              visible == serial ? "yes" : "NO");
  return 0;
}
