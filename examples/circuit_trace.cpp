// The §3.2 hardware, opened up: run the bit-pipelined tree circuit on a tiny
// scan and print the timing table (m + 2 lg n cycles), then size the §3.3
// example system at several machine scales.
#include <cstdio>
#include <random>

#include "src/scanprim.hpp"

using namespace scanprim;
using circuit::ScanOpKind;
using circuit::TreeScanCircuit;

int main() {
  // A tiny instance, both operators.
  const std::vector<std::uint64_t> v{5, 1, 3, 4, 3, 9, 2, 6};
  TreeScanCircuit tiny(8, 4);
  std::printf("8 leaves, 4-bit fields (predicted %zu cycles):\n",
              TreeScanCircuit::predicted_cycles(8, 4));
  for (const auto op : {ScanOpKind::Add, ScanOpKind::Max}) {
    const auto r = tiny.scan(v, op);
    std::printf("  %s-scan  ->  [", op == ScanOpKind::Add ? "  +" : "max");
    for (std::size_t i = 0; i < r.size(); ++i) {
      std::printf("%s%llu", i ? " " : "", static_cast<unsigned long long>(r[i]));
    }
    std::printf("]   in %zu clock cycles\n", tiny.last_cycle_count());
  }

  // The word-level two-sweep algorithm the circuit pipelines (§3.1).
  std::vector<std::uint64_t> out(8);
  const auto trace = circuit::tree_scan(std::span<const std::uint64_t>(v),
                                        std::span<std::uint64_t>(out),
                                        Plus<std::uint64_t>{});
  std::printf("\nword-level tree scan: %zu levels, %zu parallel steps, "
              "%zu operator applications\n",
              trace.levels, trace.parallel_steps, trace.applications);

  // Scaling table: cycles and hardware for machines of growing size.
  std::printf("\n%12s %14s %14s %18s %12s\n", "processors", "cycles (32b)",
              "time @100ns", "state machines", "FIFO bits");
  for (std::size_t lg = 6; lg <= 16; lg += 2) {
    const std::size_t n = std::size_t{1} << lg;
    TreeScanCircuit c(n, 32);
    std::mt19937_64 rng(lg);
    std::vector<std::uint64_t> data(n);
    for (auto& x : data) x = rng() & 0xffffffff;
    c.scan(data, ScanOpKind::Add);
    const auto hw = c.inventory();
    std::printf("%12zu %14zu %12.1fus %18zu %12zu\n", n,
                c.last_cycle_count(), c.last_cycle_count() * 0.1,
                hw.state_machines, hw.shift_register_bits);
  }
  std::printf("\n(§3.3: the 4096-processor system scans 32-bit fields in "
              "~5us at a 100ns clock;\n two 64-input tree chips per machine "
              "— 126 state machines, 63 shift registers each)\n");
  return 0;
}
