// Figure 9, rendered: the paper's three example lines rasterised by the
// O(1)-step parallel line drawer (§2.4.1) onto an ASCII grid, plus a star
// of lines to show processor allocation scaling with total pixel count.
#include <cstdio>
#include <vector>

#include "src/scanprim.hpp"

using namespace scanprim;

namespace {

void render(const std::vector<algo::Point>& pixels,
            const std::vector<std::size_t>& owner, std::int64_t w,
            std::int64_t h) {
  std::vector<std::string> grid(h, std::string(w, '.'));
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    const auto [x, y] = pixels[i];
    if (x >= 0 && x < w && y >= 0 && y < h) {
      grid[y][x] = static_cast<char>('1' + owner[i] % 9);
    }
  }
  for (std::int64_t y = h - 1; y >= 0; --y) {
    std::printf("  %s\n", grid[y].c_str());
  }
}

}  // namespace

int main() {
  machine::Machine m(machine::Model::Scan);

  // The exact endpoints of Figure 9.
  const std::vector<algo::LineSegment> fig9{
      {{11, 2}, {23, 14}}, {{2, 13}, {13, 8}}, {{16, 4}, {31, 4}}};
  const auto r = algo::draw_lines(m, std::span<const algo::LineSegment>(fig9));
  std::printf("Figure 9 — endpoints (11,2)-(23,14), (2,13)-(13,8), "
              "(16,4)-(31,4):\n\n");
  render(r.pixels, r.line_of_pixel, 32, 16);
  std::size_t counts[3] = {0, 0, 0};
  for (const auto l : r.line_of_pixel) ++counts[l];
  std::printf("\npixels allocated per line: %zu, %zu, %zu "
              "(paper counts 12, 11, 16 — it excludes one endpoint for the\n"
              "first two lines; we include both ends uniformly)\n",
              counts[0], counts[1], counts[2]);
  std::printf("program steps for the whole raster: %llu (O(1), independent "
              "of the number of lines)\n\n",
              static_cast<unsigned long long>(m.stats().steps));

  // A 16-ray star: one allocate call rasterises everything at once.
  std::vector<algo::LineSegment> star;
  const algo::Point c{20, 10};
  const std::int64_t dirs[16][2] = {{1, 0},  {2, 1},  {1, 1},  {1, 2},
                                    {0, 1},  {-1, 2}, {-1, 1}, {-2, 1},
                                    {-1, 0}, {-2, -1}, {-1, -1}, {-1, -2},
                                    {0, -1}, {1, -2}, {1, -1}, {2, -1}};
  for (const auto& d : dirs) {
    star.push_back({c, {c.x + d[0] * 9, c.y + d[1] * 4}});
  }
  m.reset_stats();
  const auto rs = algo::draw_lines(m, std::span<const algo::LineSegment>(star));
  std::printf("a 16-ray star (%zu pixels) costs the same %llu steps:\n\n",
              rs.pixels.size(),
              static_cast<unsigned long long>(m.stats().steps));
  render(rs.pixels, rs.line_of_pixel, 42, 21);
  return 0;
}
