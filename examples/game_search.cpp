// §2.4's motivating example, made concrete: a brute-force game search that
// "dynamically decides how many next moves to generate" and allocates a
// processor for each. Full-width minimax over tic-tac-toe: each ply every
// live position counts its legal moves, one allocate call opens a segment
// per position, each child computes its board elementwise, and the values
// back up through the same segments with min/max-distributes. The whole
// 500k-node tree costs O(1) program steps per ply.
//
// Known answer: perfectly played tic-tac-toe is a draw (root value 0).
#include <cstdio>
#include <vector>

#include "src/scanprim.hpp"

using namespace scanprim;
using Board = std::uint64_t;  // 9 cells x 2 bits: 0 empty, 1 X, 2 O

namespace {

int cell(Board b, int i) { return static_cast<int>((b >> (2 * i)) & 3); }
Board with_cell(Board b, int i, int player) {
  return b | (static_cast<Board>(player) << (2 * i));
}

// +1 X has three in a row, -1 O does, 0 otherwise.
int winner(Board b) {
  static const int lines[8][3] = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {0, 3, 6},
                                  {1, 4, 7}, {2, 5, 8}, {0, 4, 8}, {2, 4, 6}};
  for (const auto& l : lines) {
    const int a = cell(b, l[0]);
    if (a != 0 && a == cell(b, l[1]) && a == cell(b, l[2])) {
      return a == 1 ? 1 : -1;
    }
  }
  return 0;
}

struct Level {
  std::vector<Board> boards;
  Flags segments;  // children grouped by parent (from the allocate)
};

struct MinMax {
  static std::int64_t identity() { return 0; }  // unused directly
};

}  // namespace

int main() {
  machine::Machine m(machine::Model::Scan);

  std::vector<Level> levels;
  levels.push_back({{Board{0}}, Flags{1}});

  // ---- expansion: one allocate per ply -------------------------------------------
  for (int ply = 0; ply < 9; ++ply) {
    const Level& cur = levels.back();
    const std::size_t n = cur.boards.size();
    const int player = ply % 2 == 0 ? 1 : 2;

    // Each live position counts its moves (terminal positions expand to 0).
    std::vector<std::size_t> moves(n);
    m.charge_elementwise(n);
    thread::parallel_for(n, [&](std::size_t i) {
      if (winner(cur.boards[i]) != 0) {
        moves[i] = 0;
        return;
      }
      std::size_t free = 0;
      for (int c = 0; c < 9; ++c) free += cell(cur.boards[i], c) == 0;
      moves[i] = free;
    });

    const Allocation alloc = m.allocate(std::span<const std::size_t>(moves));
    if (alloc.total == 0) break;
    // Children: parent board distributed across its segment, move picked by
    // rank within the segment.
    const std::vector<Board> parent = m.distribute_to_segments(
        std::span<const Board>(cur.boards), alloc);
    const std::vector<std::size_t> ones(alloc.total, 1);
    const std::vector<std::size_t> rank = m.seg_scan(
        std::span<const std::size_t>(ones), FlagsView(alloc.segment_flags),
        Plus<std::size_t>{});
    std::vector<Board> child(alloc.total);
    m.charge_elementwise(alloc.total);
    thread::parallel_for(alloc.total, [&](std::size_t i) {
      std::size_t seen = 0;
      for (int c = 0; c < 9; ++c) {
        if (cell(parent[i], c) == 0 && seen++ == rank[i]) {
          child[i] = with_cell(parent[i], c, player);
          return;
        }
      }
    });
    levels.push_back({std::move(child), alloc.segment_flags});
  }

  std::size_t total = 0;
  std::printf("positions per ply:");
  for (const Level& l : levels) {
    std::printf(" %zu", l.boards.size());
    total += l.boards.size();
  }
  std::printf("  (total %zu)\n", total);

  // ---- backup: one min/max-distribute per ply -------------------------------------
  struct MaxI {
    static std::int64_t identity() { return -2; }
    std::int64_t operator()(std::int64_t a, std::int64_t b) const {
      return a > b ? a : b;
    }
  };
  struct MinI {
    static std::int64_t identity() { return 2; }
    std::int64_t operator()(std::int64_t a, std::int64_t b) const {
      return a < b ? a : b;
    }
  };

  // Values of the deepest ply: terminal evaluations (full boards draw).
  std::vector<std::int64_t> value(levels.back().boards.size());
  m.charge_elementwise(value.size());
  thread::parallel_for(value.size(), [&](std::size_t i) {
    value[i] = winner(levels.back().boards[i]);
  });

  for (std::size_t ply = levels.size() - 1; ply-- > 0;) {
    const Level& parent_level = levels[ply];
    const Level& child_level = levels[ply + 1];
    const bool x_to_move = ply % 2 == 0;  // X maximises
    // Fold each child segment into its head...
    std::vector<std::int64_t> folded(value.size());
    if (x_to_move) {
      folded = m.seg_distribute(std::span<const std::int64_t>(value),
                                FlagsView(child_level.segments), MaxI{});
    } else {
      folded = m.seg_distribute(std::span<const std::int64_t>(value),
                                FlagsView(child_level.segments), MinI{});
    }
    const std::vector<std::size_t> heads =
        m.pack_index(FlagsView(child_level.segments));
    // ... and hand it to the parent; terminal parents keep their own value.
    std::vector<std::int64_t> up(parent_level.boards.size());
    m.charge_elementwise(up.size());
    std::vector<std::size_t> expanding(parent_level.boards.size(), 0);
    // Parents with children are exactly those that allocated a segment, in
    // order: the k-th segment belongs to the k-th expanding parent.
    std::size_t k = 0;
    for (std::size_t i = 0; i < parent_level.boards.size(); ++i) {
      const int w = winner(parent_level.boards[i]);
      bool has_children = false;
      if (w == 0) {
        for (int c = 0; c < 9 && !has_children; ++c) {
          has_children = cell(parent_level.boards[i], c) == 0;
        }
      }
      if (has_children) {
        up[i] = folded[heads[k]];
        ++k;
      } else {
        up[i] = w;  // terminal: win already decided or full-board draw
      }
    }
    value = std::move(up);
  }

  std::printf("minimax value of the empty board: %lld  (0 = draw, the known "
              "result)\n",
              static_cast<long long>(value[0]));
  std::printf("program steps for the whole search: %llu  (~%zu per ply, "
              "independent of the half-million positions)\n",
              static_cast<unsigned long long>(m.stats().steps),
              static_cast<std::size_t>(m.stats().steps / (2 * levels.size())));
  return value[0] == 0 ? 0 : 1;
}
