// Graphs in the segmented representation (§2.3.2): build a random weighted
// graph, sum over neighborhoods in O(1) program steps, and run the
// random-mate minimum-spanning-tree algorithm (§2.3.3), checking it against
// Kruskal.
#include <cmath>
#include <cstdio>
#include <random>

#include "src/scanprim.hpp"

using namespace scanprim;

int main() {
  const std::size_t n = 2000;
  std::mt19937_64 rng(7);
  std::vector<graph::WeightedEdge> edges;
  for (std::size_t v = 1; v < n; ++v) {
    edges.push_back({rng() % v, v, static_cast<double>(rng() % 100000)});
  }
  for (std::size_t e = 0; e < 4 * n; ++e) {
    const std::size_t u = rng() % n, v = rng() % n;
    if (u != v) edges.push_back({u, v, static_cast<double>(rng() % 100000)});
  }
  std::printf("random connected graph: %zu vertices, %zu edges\n", n,
              edges.size());

  machine::Machine m(machine::Model::Scan);
  const graph::SegGraph g = graph::build_seg_graph(m, n, edges);
  std::printf("segmented representation: %zu slots (2 per edge), built with "
              "%llu program steps\n",
              g.num_slots(),
              static_cast<unsigned long long>(m.stats().steps));

  // Neighbor sums in O(1) steps — the §2.3.2 showcase.
  std::vector<double> degree_probe(n, 1.0);
  m.reset_stats();
  const auto degrees =
      graph::neighbor_sum(m, g, std::span<const double>(degree_probe));
  double max_deg = 0;
  for (const double d : degrees) max_deg = std::max(max_deg, d);
  std::printf("neighbor-sum of ones = vertex degrees (max %g) in %llu steps, "
              "independent of n\n",
              max_deg, static_cast<unsigned long long>(m.stats().steps));

  // The MST, against Kruskal.
  m.reset_stats();
  const algo::MstResult mst = algo::minimum_spanning_forest(
      m, n, std::span<const graph::WeightedEdge>(edges), 99);
  const algo::MstResult ref =
      algo::kruskal(n, std::span<const graph::WeightedEdge>(edges));
  std::printf("\nrandom-mate MST: %zu edges, weight %.0f, %zu star-merge "
              "rounds (≈ lg n = %.0f), %llu program steps\n",
              mst.edges.size(), mst.total_weight, mst.rounds,
              std::log2(static_cast<double>(n)),
              static_cast<unsigned long long>(m.stats().steps));
  std::printf("Kruskal agrees: %s (weight %.0f)\n",
              std::abs(mst.total_weight - ref.total_weight) < 1e-6 ? "yes"
                                                                   : "NO",
              ref.total_weight);

  // Connected components on a deliberately fragmented graph.
  std::vector<graph::WeightedEdge> sparse(edges.begin(),
                                          edges.begin() + n / 4);
  machine::Machine m2;
  const auto cc = algo::connected_components(
      m2, n, std::span<const graph::WeightedEdge>(sparse), 5);
  std::printf("\ndropping to %zu edges fragments the graph into %zu "
              "components (%zu rounds)\n",
              sparse.size(), cc.num_components, cc.rounds);
  return 0;
}
