// Sorting with the scan primitives: the split radix sort (§2.2.1, the
// Connection Machine's production sort), the segmented quicksort (§2.3.1),
// and the bitonic baseline of Table 4 — with wall-clock timings and the
// paper's step counts side by side.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>

#include "src/scanprim.hpp"

using namespace scanprim;
using Clock = std::chrono::steady_clock;

namespace {

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  const std::size_t n = 1 << 18;
  const unsigned bits = 18;
  std::mt19937_64 rng(2026);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng() % n;

  std::printf("sorting %zu keys of %u bits\n\n", n, bits);

  {
    machine::Machine m(machine::Model::Scan);
    const auto t0 = Clock::now();
    const auto sorted =
        algo::split_radix_sort(m, std::span<const std::uint64_t>(keys), bits);
    const double ms = ms_since(t0);
    std::printf("split radix sort:  %8.1f ms   %6llu program steps   %s\n", ms,
                static_cast<unsigned long long>(m.stats().steps),
                std::is_sorted(sorted.begin(), sorted.end()) ? "sorted"
                                                             : "BROKEN");
  }
  {
    machine::Machine m(machine::Model::Scan);
    std::vector<double> dkeys(keys.begin(), keys.end());
    const auto t0 = Clock::now();
    const auto r = algo::quicksort(m, std::span<const double>(dkeys));
    const double ms = ms_since(t0);
    std::printf("quicksort:         %8.1f ms   %6llu program steps   "
                "%zu iterations (≈ lg n = %u)\n",
                ms, static_cast<unsigned long long>(m.stats().steps),
                r.iterations, bits);
  }
  {
    machine::Machine m(machine::Model::Scan);
    const auto t0 = Clock::now();
    const auto sorted =
        algo::bitonic_sort(m, std::span<const std::uint64_t>(keys));
    const double ms = ms_since(t0);
    std::printf("bitonic sort:      %8.1f ms   %6llu program steps   %s\n", ms,
                static_cast<unsigned long long>(m.stats().steps),
                std::is_sorted(sorted.begin(), sorted.end()) ? "sorted"
                                                             : "BROKEN");
  }
  {
    auto copy = keys;
    const auto t0 = Clock::now();
    std::sort(copy.begin(), copy.end());
    std::printf("std::sort:         %8.1f ms   (serial baseline)\n",
                ms_since(t0));
  }

  // Radix sorting handles floats too (§3.4's order-preserving key trick).
  {
    machine::Machine m;
    std::vector<double> mixed(1 << 14);
    std::normal_distribution<double> dist(0.0, 1e6);
    for (auto& v : mixed) v = dist(rng);
    const auto sorted =
        algo::split_radix_sort_doubles(m, std::span<const double>(mixed));
    std::printf("\nfloat radix sort over ±1e6 normals: %s\n",
                std::is_sorted(sorted.begin(), sorted.end()) ? "sorted"
                                                             : "BROKEN");
  }

  // And merging: the halving merge of §2.5.1.
  {
    machine::Machine m;
    std::vector<std::uint64_t> a(keys.begin(), keys.begin() + n / 2);
    std::vector<std::uint64_t> b(keys.begin() + n / 2, keys.end());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    const auto t0 = Clock::now();
    const auto r = algo::halving_merge(m, std::span<const std::uint64_t>(a),
                                       std::span<const std::uint64_t>(b));
    std::printf("halving merge of two %zu-element runs: %8.1f ms, "
                "%zu recursion levels, %s\n",
                a.size(), ms_since(t0), r.levels,
                std::is_sorted(r.merged.begin(), r.merged.end()) ? "sorted"
                                                                 : "BROKEN");
  }
  return 0;
}
