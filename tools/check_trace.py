#!/usr/bin/env python3
"""Validates a scanprim Chrome-trace JSON export (docs/OBS.md).

Usage: check_trace.py <trace.json>

Checks the invariants the exporter promises — the ones that make the file
load cleanly in Perfetto / chrome://tracing:

  * the file is valid JSON with a traceEvents array;
  * every event carries ph, pid, tid and a name;
  * span events are pre-paired "X" complete events with ts >= 0 and
    dur >= 0, and within each thread they nest properly (a span begun
    inside another ends inside it);
  * all events share one pid, and every tid that emits events also emits a
    thread_name metadata record;
  * instants carry a scope and counters carry an args.value.

Exits 0 when the trace is valid, 1 (with a diagnosis) when it is not.
"""

import json
import sys
from collections import defaultdict


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_trace.py <trace.json>")
    path = sys.argv[1]
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("missing traceEvents envelope")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents is empty")

    pids = set()
    named_tids = set()
    emitting_tids = set()
    spans_by_tid = defaultdict(list)
    counts = defaultdict(int)

    for i, e in enumerate(events):
        for key in ("ph", "pid", "tid", "name"):
            if key not in e:
                fail(f"event {i} missing {key!r}: {e}")
        ph = e["ph"]
        counts[ph] += 1
        pids.add(e["pid"])
        if ph == "M":
            if e["name"] == "thread_name":
                named_tids.add(e["tid"])
            continue
        emitting_tids.add(e["tid"])
        if ph == "X":
            ts, dur = e.get("ts"), e.get("dur")
            if ts is None or dur is None:
                fail(f"X event {i} missing ts/dur: {e}")
            if ts < 0 or dur < 0:
                fail(f"X event {i} has negative ts/dur: {e}")
            spans_by_tid[e["tid"]].append((ts, ts + dur, e["name"]))
        elif ph == "i":
            if "s" not in e:
                fail(f"instant {i} missing scope: {e}")
        elif ph == "C":
            if "value" not in e.get("args", {}):
                fail(f"counter {i} missing args.value: {e}")
        elif ph in ("B", "E"):
            fail(f"unpaired {ph} event {i} (exporter must emit X): {e}")
        else:
            fail(f"event {i} has unknown phase {ph!r}")

    if len(pids) != 1:
        fail(f"expected one pid, saw {sorted(pids)}")
    unnamed = emitting_tids - named_tids
    if unnamed:
        fail(f"tids without thread_name metadata: {sorted(unnamed)}")

    # Spans on one thread must nest: sorted by start, each span either
    # contains or is disjoint from the next (the exporter pairs a per-thread
    # stack, so overlap without containment means mispairing).
    for tid, spans in spans_by_tid.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []
        for start, end, name in spans:
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1]:
                fail(
                    f"tid {tid}: span {name!r} [{start}, {end}] overlaps "
                    f"{stack[-1][2]!r} [{stack[-1][0]}, {stack[-1][1]}] "
                    "without nesting"
                )
            stack.append((start, end, name))

    total_spans = sum(len(s) for s in spans_by_tid.values())
    print(
        f"check_trace: OK: {len(events)} events "
        f"({total_spans} spans, {counts['i']} instants, "
        f"{counts['C']} counters, {counts['M']} metadata) "
        f"across {len(emitting_tids)} threads"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
