// Shared helpers for the table-reproduction benches: aligned text tables,
// workload generators, and least-squares slope fits used to report empirical
// complexity exponents.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/seg_graph.hpp"

namespace scanprim::bench {

// --- wall-clock timing -------------------------------------------------------
// Every bench used to hand-roll these; keep one definition so they all report
// milliseconds from the same steady clock.

/// Milliseconds one invocation of `fn` takes.
template <class Fn>
double time_once_ms(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Best-of-`reps` milliseconds for `fn` — the standard bench protocol here
/// (minimum filters out host noise better than the mean on shared machines).
template <class Fn>
double best_of_ms(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double ms = time_once_ms(fn);
    if (ms < best) best = ms;
  }
  return best;
}

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%16s", c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

inline std::string fmt_u(std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

/// Least-squares slope of lg(y) against lg(x): the empirical growth
/// exponent. slope ~0 = constant, ~1 = linear in the x variable.
inline double loglog_slope(const std::vector<double>& x,
                           const std::vector<double>& y) {
  const std::size_t n = x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log2(x[i]);
    const double ly = std::log2(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

inline std::vector<graph::WeightedEdge> random_connected_graph(
    std::size_t n, std::size_t extra, std::uint64_t seed) {
  std::mt19937_64 g(seed);
  std::vector<graph::WeightedEdge> edges;
  for (std::size_t v = 1; v < n; ++v) {
    edges.push_back({g() % v, v, static_cast<double>(g() % 1000000)});
  }
  for (std::size_t e = 0; e < extra; ++e) {
    const std::size_t u = g() % n, v = g() % n;
    if (u != v) edges.push_back({u, v, static_cast<double>(g() % 1000000)});
  }
  return edges;
}

template <class T>
std::vector<T> random_keys(std::size_t n, std::uint64_t seed,
                           std::uint64_t bound) {
  std::mt19937_64 g(seed);
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(g() % bound);
  return v;
}

// --- minimal JSON emission ---------------------------------------------------
// Benches collect flat objects and write them as a `BENCH_<name>.json` array
// in the working directory, so runs can be diffed or plotted without parsing
// the text tables. Values are pre-rendered; strings are escaped.

class JsonLog {
 public:
  JsonLog& field(const char* k, const std::string& v) {
    return raw(k, '"' + escape(v) + '"');
  }
  JsonLog& field(const char* k, const char* v) {
    return field(k, std::string(v));
  }
  JsonLog& field(const char* k, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return raw(k, buf);
  }
  JsonLog& field(const char* k, std::uint64_t v) { return raw(k, fmt_u(v)); }
  JsonLog& field(const char* k, bool v) { return raw(k, v ? "true" : "false"); }

  /// Close the object under construction and append it to the array.
  JsonLog& end_object() {
    std::string o = "{";
    for (std::size_t i = 0; i < kv_.size(); ++i) {
      if (i) o += ", ";
      o += '"' + kv_[i].first + "\": " + kv_[i].second;
    }
    o += "}";
    objects_.push_back(std::move(o));
    kv_.clear();
    return *this;
  }

  /// Write the collected array to `path`; returns false on I/O failure.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    std::fputs("[\n", f);
    for (std::size_t i = 0; i < objects_.size(); ++i) {
      std::fprintf(f, "  %s%s\n", objects_[i].c_str(),
                   i + 1 < objects_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    return std::fclose(f) == 0;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  JsonLog& raw(const char* k, std::string v) {
    kv_.emplace_back(k, std::move(v));
    return *this;
  }
  std::vector<std::pair<std::string, std::string>> kv_;
  std::vector<std::string> objects_;
};

}  // namespace scanprim::bench
