// Shared helpers for the table-reproduction benches: aligned text tables,
// workload generators, and least-squares slope fits used to report empirical
// complexity exponents.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "src/graph/seg_graph.hpp"

namespace scanprim::bench {

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%16s", c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

inline std::string fmt_u(std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

/// Least-squares slope of lg(y) against lg(x): the empirical growth
/// exponent. slope ~0 = constant, ~1 = linear in the x variable.
inline double loglog_slope(const std::vector<double>& x,
                           const std::vector<double>& y) {
  const std::size_t n = x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lx = std::log2(x[i]);
    const double ly = std::log2(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

inline std::vector<graph::WeightedEdge> random_connected_graph(
    std::size_t n, std::size_t extra, std::uint64_t seed) {
  std::mt19937_64 g(seed);
  std::vector<graph::WeightedEdge> edges;
  for (std::size_t v = 1; v < n; ++v) {
    edges.push_back({g() % v, v, static_cast<double>(g() % 1000000)});
  }
  for (std::size_t e = 0; e < extra; ++e) {
    const std::size_t u = g() % n, v = g() % n;
    if (u != v) edges.push_back({u, v, static_cast<double>(g() % 1000000)});
  }
  return edges;
}

template <class T>
std::vector<T> random_keys(std::size_t n, std::uint64_t seed,
                           std::uint64_t bound) {
  std::mt19937_64 g(seed);
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(g() % bound);
  return v;
}

}  // namespace scanprim::bench
