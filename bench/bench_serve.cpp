// The batching scan service vs a per-request front-end (docs/SERVE.md).
//
// Workload: S concurrent submitters each issue J independent 4096-element
// scan requests (mixed operators, flavours, directions, some segmented).
//   unbatched — every request runs as its own chained-engine dispatch from
//               its submitter thread (dispatches serialize on the pool);
//   batched   — every request goes through serve::Service, which coalesces
//               the wave into a handful of segment-flagged mega-dispatches.
// Reports wall-clock throughput, pool dispatches per request, batch
// occupancy, and service latency percentiles; every batched result is
// diffed against its sequential reference. Results go to stdout and
// BENCH_serve.json.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/segmented.hpp"
#include "src/serve/service.hpp"
#include "src/thread/thread_pool.hpp"

namespace scanprim {
namespace {

using serve::Value;

struct Req {
  serve::ScanJob job;
  std::vector<std::uint8_t> meta;  // request-local meta (unbatched path)
  std::vector<Value> ref;          // sequential reference output
};

Req make_request(std::mt19937_64& g, std::size_t n) {
  Req r;
  r.job.data.resize(n);
  for (auto& v : r.job.data) v = static_cast<Value>(g() % 100);
  r.job.op = static_cast<batch::Op>(g() % batch::kOpCount);
  r.job.inclusive = (g() & 1) != 0;
  r.job.backward = g() % 4 == 0;  // a quarter backward: both directions live
  if (g() % 3 == 0) {
    r.job.flags.assign(n, 0);
    for (auto& f : r.job.flags) f = g() % 9 == 0 ? 1 : 0;
  }
  r.meta.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool flag = i == 0 || (!r.job.flags.empty() && r.job.flags[i] != 0);
    r.meta[i] = batch::make_meta(flag, r.job.op, r.job.inclusive);
  }
  // Sequential reference: the serial kernel over this one request.
  r.ref = r.job.data;
  if (r.job.backward) {
    batch::batch_backward_kernel(r.ref.data(), r.meta.data(), n,
                                 batch::BatchCarry{});
  } else {
    batch::batch_forward_kernel(r.ref.data(), r.meta.data(), n,
                                batch::BatchCarry{});
  }
  return r;
}

struct WaveResult {
  double ms = 0;
  std::uint64_t dispatches = 0;
  std::size_t diffs = 0;
};

// Every submitter thread runs its requests itself: one chained-engine
// dispatch per request, serialized on the pool — the front-end the service
// replaces. Input buffers are cloned before the clock starts (the same
// courtesy run_batched gets); each request scans its buffer in place.
WaveResult run_unbatched(const std::vector<std::vector<Req>>& per_thread) {
  WaveResult w;
  std::vector<std::vector<std::vector<Value>>> bufs(per_thread.size());
  for (std::size_t t = 0; t < per_thread.size(); ++t) {
    for (const Req& r : per_thread[t]) bufs[t].push_back(r.job.data);
  }
  const std::uint64_t d0 = thread::pool().dispatch_count();
  w.ms = bench::time_once_ms([&] {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < per_thread.size(); ++t) {
      threads.emplace_back([&, t] {
        for (std::size_t i = 0; i < per_thread[t].size(); ++i) {
          const Req& r = per_thread[t][i];
          batch::seg_scan_batch(std::span<Value>(bufs[t][i]),
                                std::span<const std::uint8_t>(r.meta),
                                r.job.backward);
        }
      });
    }
    for (auto& th : threads) th.join();
  });
  w.dispatches = thread::pool().dispatch_count() - d0;
  for (std::size_t t = 0; t < per_thread.size(); ++t) {
    for (std::size_t i = 0; i < per_thread[t].size(); ++i) {
      if (bufs[t][i] != per_thread[t][i].ref) ++w.diffs;
    }
  }
  return w;
}

// The same wave through the service: input buffers are cloned before the
// clock starts and each submission MOVES its buffer in (the zero-copy hand-
// off the in-place batch path exists for); results come back the same way.
WaveResult run_batched(serve::Service& svc,
                       const std::vector<std::vector<Req>>& per_thread) {
  WaveResult w;
  std::vector<std::vector<serve::ScanJob>> jobs(per_thread.size());
  for (std::size_t t = 0; t < per_thread.size(); ++t) {
    for (const Req& r : per_thread[t]) jobs[t].push_back(r.job);
  }
  std::vector<std::vector<std::future<serve::Result>>> futs(per_thread.size());
  const std::uint64_t before = svc.metrics().pool_dispatches;
  std::vector<std::vector<serve::Result>> results(per_thread.size());
  w.ms = bench::time_once_ms([&] {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < per_thread.size(); ++t) {
      threads.emplace_back([&, t] {
        for (serve::ScanJob& j : jobs[t]) {
          futs[t].push_back(svc.submit(std::move(j)));
        }
        for (auto& f : futs[t]) results[t].push_back(f.get());
      });
    }
    for (auto& th : threads) th.join();
  });
  w.dispatches = svc.metrics().pool_dispatches - before;
  for (std::size_t t = 0; t < per_thread.size(); ++t) {
    for (std::size_t i = 0; i < per_thread[t].size(); ++i) {
      const serve::Result& res = results[t][i];
      if (res.status != serve::Status::kOk ||
          res.values != per_thread[t][i].ref) {
        ++w.diffs;
      }
    }
  }
  return w;
}

}  // namespace
}  // namespace scanprim

int main() {
  using namespace scanprim;
  // The container may expose a single core; the dispatch-amortisation story
  // needs a real pool. Explicit SCANPRIM_THREADS still wins (overwrite=0).
  setenv("SCANPRIM_THREADS", "8", 0);

  constexpr std::size_t kReqElements = 4096;
  bench::header("serve: batched mega-dispatch vs per-request dispatch");
  bench::row({"submitters", "requests", "unbatch ms", "batch ms", "speedup",
              "disp/req u", "disp/req b", "occupancy", "diffs"});

  bench::JsonLog json;
  bool ok = true;
  const struct {
    std::size_t submitters;
    std::size_t jobs_each;
  } waves[] = {{64, 16}, {128, 8}};

  for (const auto& wave : waves) {
    std::mt19937_64 g(2024);
    std::vector<std::vector<Req>> per_thread(wave.submitters);
    for (std::size_t t = 0; t < wave.submitters; ++t) {
      for (std::size_t j = 0; j < wave.jobs_each; ++j) {
        per_thread[t].push_back(make_request(g, kReqElements));
      }
    }
    const std::size_t total = wave.submitters * wave.jobs_each;

    const WaveResult ub = run_unbatched(per_thread);

    serve::Service::Options o;
    o.window_us = 2'000;
    o.byte_budget = std::size_t{64} << 20;  // the window, not bytes, flushes
    o.queue_capacity = total;
    serve::Service svc(o);
    const WaveResult b = run_batched(svc, per_thread);
    const serve::Metrics m = svc.metrics();
    svc.shutdown();

    const double speedup = b.ms > 0 ? ub.ms / b.ms : 0;
    const double disp_u = static_cast<double>(ub.dispatches) /
                          static_cast<double>(total);
    const double disp_b = static_cast<double>(b.dispatches) /
                          static_cast<double>(total);
    bench::row({bench::fmt_u(wave.submitters), bench::fmt_u(total),
                bench::fmt(ub.ms, 1), bench::fmt(b.ms, 1),
                bench::fmt(speedup, 2), bench::fmt(disp_u, 3),
                bench::fmt(disp_b, 4), bench::fmt(m.mean_occupancy, 1),
                bench::fmt_u(ub.diffs + b.diffs)});
    json.field("submitters", static_cast<std::uint64_t>(wave.submitters))
        .field("requests", static_cast<std::uint64_t>(total))
        .field("request_elements", static_cast<std::uint64_t>(kReqElements))
        .field("unbatched_ms", ub.ms)
        .field("batched_ms", b.ms)
        .field("speedup", speedup)
        .field("unbatched_dispatches_per_request", disp_u)
        .field("batched_dispatches_per_request", disp_b)
        .field("batches", m.batches)
        .field("mean_occupancy", m.mean_occupancy)
        .field("mean_batch_elements", m.mean_batch_elements)
        .field("p50_us", static_cast<double>(m.p50_ns) / 1000.0)
        .field("p95_us", static_cast<double>(m.p95_ns) / 1000.0)
        .field("p99_us", static_cast<double>(m.p99_ns) / 1000.0)
        .field("diffs", static_cast<std::uint64_t>(ub.diffs + b.diffs))
        .end_object();
    ok = ok && ub.diffs == 0 && b.diffs == 0;
  }

  if (!json.write("BENCH_serve.json")) {
    std::fprintf(stderr, "failed to write BENCH_serve.json\n");
    return 1;
  }
  std::printf("\n(acceptance: speedup >= 3x at >= 64 submitters, batched\n"
              " dispatches/request < 0.1, diffs == 0)\n");
  return ok ? 0 : 1;
}
