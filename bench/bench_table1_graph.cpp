// Table 1, graph rows: minimum spanning tree and connected components on
// n vertices / m ≈ 4n edges with m processors.
//
//   paper:   MST / CC    EREW O(lg² n)   CRCW O(lg n)   Scan O(lg n)
//
// The same random-mate star-merge program runs under all three cost models;
// the EREW pays lg n per scan/broadcast, which multiplies the O(lg n) merge
// rounds into O(lg² n) steps. We print the raw step counts, the
// steps / lg n and steps / lg² n normalisations (the one that stays flat is
// the model's complexity), and the fitted log-log growth of steps in lg n.
#include <cmath>

#include "bench_util.hpp"
#include "src/algo/connected_components.hpp"
#include "src/algo/mst.hpp"

using namespace scanprim;
using machine::Machine;
using machine::Model;

namespace {

void run(const char* name, bool components) {
  bench::header(std::string("Table 1 / ") + name +
                " (n vertices, 4n edges, m processors)");
  bench::row({"n", "rounds", "EREW steps", "CRCW steps", "Scan steps",
              "EREW/lg^2 n", "CRCW/lg n", "Scan/lg n"});
  std::vector<double> lgs, erews, scans;
  for (std::size_t lg = 6; lg <= 12; ++lg) {
    const std::size_t n = std::size_t{1} << lg;
    const auto edges = bench::random_connected_graph(n, 3 * n, 17 * lg);
    std::uint64_t steps[3];
    std::size_t rounds = 0;
    int i = 0;
    for (const Model model : {Model::EREW, Model::CRCW, Model::Scan}) {
      Machine m(model);
      if (components) {
        rounds = algo::connected_components(
                     m, n, std::span<const graph::WeightedEdge>(edges), 5)
                     .rounds;
      } else {
        rounds = algo::minimum_spanning_forest(
                     m, n, std::span<const graph::WeightedEdge>(edges), 5)
                     .rounds;
      }
      steps[i++] = m.stats().steps;
    }
    const double l = static_cast<double>(lg);
    bench::row({bench::fmt_u(n), bench::fmt_u(rounds), bench::fmt_u(steps[0]),
                bench::fmt_u(steps[1]), bench::fmt_u(steps[2]),
                bench::fmt(steps[0] / (l * l), 1), bench::fmt(steps[1] / l, 1),
                bench::fmt(steps[2] / l, 1)});
    lgs.push_back(l);
    erews.push_back(static_cast<double>(steps[0]));
    scans.push_back(static_cast<double>(steps[2]));
  }
  std::printf("growth of steps in lg n:  EREW ~ (lg n)^%.2f   "
              "Scan ~ (lg n)^%.2f   (paper: 2 vs 1)\n",
              bench::loglog_slope(lgs, erews), bench::loglog_slope(lgs, scans));
}

}  // namespace

int main() {
  run("Minimum Spanning Tree", false);
  run("Connected Components", true);

  // The CRCW column's own algorithm: Shiloach-Vishkin hooking, whose
  // combining writes are unit-time on the extended CRCW but cost the EREW
  // (and cost the scan model one scan each).
  bench::header(
      "Table 1 / Connected Components via Shiloach-Vishkin hooking");
  bench::row({"n", "rounds", "CRCW steps", "Scan steps", "EREW steps",
              "CRCW/lg n"});
  for (std::size_t lg = 6; lg <= 13; ++lg) {
    const std::size_t n = std::size_t{1} << lg;
    const auto edges = bench::random_connected_graph(n, 3 * n, 23 * lg);
    std::uint64_t steps[3];
    std::size_t rounds = 0;
    int i = 0;
    for (const Model model : {Model::CRCW, Model::Scan, Model::EREW}) {
      Machine m(model);
      rounds = algo::connected_components_hooking(
                   m, n, std::span<const graph::WeightedEdge>(edges))
                   .rounds;
      steps[i++] = m.stats().steps;
    }
    bench::row({bench::fmt_u(n), bench::fmt_u(rounds), bench::fmt_u(steps[0]),
                bench::fmt_u(steps[1]), bench::fmt_u(steps[2]),
                bench::fmt(static_cast<double>(steps[0]) / lg, 1)});
  }
  std::printf("(the CRCW/lg n column flattens: O(lg n) on the model the\n"
              " algorithm was designed for; the scan model matches it\n"
              " within a constant because each combining write is one scan)\n");
  return 0;
}
