// Table 5: processor-step complexity with load balancing.
//
//   paper:  halving merge     O(n) procs -> O(n lg n) proc-steps,
//                             O(n/lg n) procs -> O(n)
//           list ranking      same
//           tree contraction  same
//
// Each workload runs twice on the cost-model machine: once with p = n and
// once with p = n / lg n (packed blocks, Figure 11). The processor-step
// product per element is printed: growing with lg n in the first column,
// flat in the second.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

#include "bench_util.hpp"
#include "src/algo/halving_merge.hpp"
#include "src/algo/list_rank.hpp"
#include "src/algo/tree_contract.hpp"

using namespace scanprim;
using machine::Machine;
using machine::Model;

namespace {

struct Work {
  std::uint64_t steps_full;      // with p_full processors
  std::uint64_t steps_balanced;  // with p_bal processors
  std::size_t p_full;
  std::size_t p_bal;
};

void print_rows(const char* title,
                const std::vector<std::pair<std::size_t, Work>>& rows) {
  bench::header(std::string("Table 5 / ") + title);
  bench::row({"n", "steps p=n", "steps p=n/lg", "PS/n p=n", "PS/n p=n/lg"});
  for (const auto& [n, w] : rows) {
    const double ps_full =
        static_cast<double>(w.steps_full) * w.p_full / n;
    const double ps_bal =
        static_cast<double>(w.steps_balanced) * w.p_bal / n;
    bench::row({bench::fmt_u(n), bench::fmt_u(w.steps_full),
                bench::fmt_u(w.steps_balanced), bench::fmt(ps_full, 1),
                bench::fmt(ps_bal, 1)});
  }
  const auto& first = rows.front().second;
  const auto& last = rows.back().second;
  const double grow_full =
      (static_cast<double>(last.steps_full) * last.p_full / rows.back().first) /
      (static_cast<double>(first.steps_full) * first.p_full /
       rows.front().first);
  const double grow_bal = (static_cast<double>(last.steps_balanced) *
                           last.p_bal / rows.back().first) /
                          (static_cast<double>(first.steps_balanced) *
                           first.p_bal / rows.front().first);
  std::printf("(PS/n = processor-steps per element. Across the sweep the\n"
              " p=n column grows %.2fx — tracking the lg n ratio %.2fx —\n"
              " while the load-balanced column grows only %.2fx: Θ(n lg n)\n"
              " vs ~Θ(n) total work, Table 5's claim. Constants differ, so\n"
              " the absolute crossover may lie beyond the sweep.)\n",
              grow_full,
              std::log2(static_cast<double>(rows.back().first)) /
                  std::log2(static_cast<double>(rows.front().first)),
              grow_bal);
}

}  // namespace

int main() {
  // --- halving merge -----------------------------------------------------------
  {
    std::vector<std::pair<std::size_t, Work>> rows;
    for (std::size_t lg = 10; lg <= 18; lg += 2) {
      const std::size_t n = std::size_t{1} << lg;
      auto a = bench::random_keys<std::uint64_t>(n / 2, lg, 1u << 30);
      auto b = bench::random_keys<std::uint64_t>(n / 2, lg + 1, 1u << 30);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      Machine full(Model::Scan, n), bal(Model::Scan, n / lg);
      algo::halving_merge(full, std::span<const std::uint64_t>(a),
                          std::span<const std::uint64_t>(b));
      algo::halving_merge(bal, std::span<const std::uint64_t>(a),
                          std::span<const std::uint64_t>(b));
      rows.push_back({n, {full.stats().steps, bal.stats().steps, n, n / lg}});
    }
    print_rows("Halving Merge", rows);
  }

  // --- list ranking -------------------------------------------------------------
  {
    std::vector<std::pair<std::size_t, Work>> rows;
    for (std::size_t lg = 10; lg <= 18; lg += 2) {
      const std::size_t n = std::size_t{1} << lg;
      std::vector<std::size_t> perm(n);
      std::iota(perm.begin(), perm.end(), std::size_t{0});
      std::mt19937_64 g(lg);
      std::shuffle(perm.begin(), perm.end(), g);
      std::vector<std::size_t> next(n);
      for (std::size_t i = 0; i + 1 < n; ++i) next[perm[i]] = perm[i + 1];
      next[perm[n - 1]] = perm[n - 1];
      // p = n: Wyllie (the paper's O(n)-processor algorithm); p = n/lg n:
      // the work-efficient random-mate contraction.
      Machine full(Model::Scan, n), bal(Model::Scan, n / lg);
      algo::list_rank_wyllie(full, std::span<const std::size_t>(next));
      algo::list_rank_contract(bal, std::span<const std::size_t>(next), 7);
      rows.push_back({n, {full.stats().steps, bal.stats().steps, n, n / lg}});
    }
    print_rows("List Ranking (Wyllie vs random-mate contraction)", rows);
  }

  // --- tree contraction -----------------------------------------------------------
  {
    std::vector<std::pair<std::size_t, Work>> rows;
    for (std::size_t lg = 10; lg <= 16; lg += 2) {
      const std::size_t n = std::size_t{1} << lg;
      std::mt19937_64 g(lg);
      std::vector<std::size_t> parent(n);
      parent[0] = 0;
      for (std::size_t v = 1; v < n; ++v) parent[v] = g() % v;
      const auto t = algo::tree_from_parents(parent);
      Machine full(Model::Scan, 2 * n), bal(Model::Scan, 2 * n / lg);
      algo::subtree_sizes(full, t, /*use_contraction=*/false);
      algo::subtree_sizes(bal, t, /*use_contraction=*/true);
      rows.push_back(
          {n, {full.stats().steps, bal.stats().steps, 2 * n, 2 * n / lg}});
    }
    print_rows("Tree Contraction (subtree sizes via Euler tour)", rows);
  }
  return 0;
}
