// The sharded scan service (docs/SHARD.md): throughput vs shard count, and
// the price of a crash.
//
// Part 1 — scale-out: the same wave of concurrent scan requests runs
// against coordinators with 1, 2, 4, and 8 worker processes; reports
// wall-clock throughput per shard count (every result diffed against its
// sequential reference).
//
// Part 2 — fail-over latency: under a steady request stream, one worker is
// SIGKILLed; reports how long until the coordinator has detected the death,
// re-routed the casualties, and restarted the shard (watchdog detection +
// fail-over sweep + re-fork), measured from the kill to the first completed
// request on the restarted incarnation.
#include <signal.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/shard/shard.hpp"

namespace scanprim {
namespace {

using shard::Value;
using Clock = std::chrono::steady_clock;

std::vector<Value> ref_scan(const serve::ScanJob& j) {
  const std::size_t n = j.data.size();
  std::vector<Value> out(n);
  Value acc = batch::op_identity(j.op);
  for (std::size_t i = 0; i < n; ++i) {
    if (!j.flags.empty() && j.flags[i]) acc = batch::op_identity(j.op);
    if (j.inclusive) {
      acc = batch::op_apply(j.op, acc, j.data[i]);
      out[i] = acc;
    } else {
      out[i] = acc;
      acc = batch::op_apply(j.op, acc, j.data[i]);
    }
  }
  return out;
}

serve::ScanJob make_job(std::mt19937_64& g, std::size_t n) {
  serve::ScanJob j;
  j.data.resize(n);
  for (auto& v : j.data) v = static_cast<Value>(g() % 100);
  j.op = static_cast<batch::Op>(g() % batch::kOpCount);
  j.inclusive = (g() & 1) != 0;
  return j;
}

shard::Options options_for(std::size_t shards) {
  shard::Options o;
  o.shards = shards;
  o.slots_per_shard = 32;
  o.max_pending = 1 << 16;
  o.heartbeat_ms = 20;
  o.restart_backoff_ms = 2;
  return o;
}

struct Throughput {
  double ms = 0;
  double requests_per_s = 0;
  std::size_t diffs = 0;
};

Throughput run_wave(shard::Coordinator& coord, std::size_t submitters,
                    std::size_t jobs_each, std::size_t elements) {
  std::mt19937_64 g(2026);
  std::vector<std::vector<serve::ScanJob>> jobs(submitters);
  std::vector<std::vector<std::vector<Value>>> refs(submitters);
  for (std::size_t t = 0; t < submitters; ++t) {
    for (std::size_t i = 0; i < jobs_each; ++i) {
      jobs[t].push_back(make_job(g, elements));
      refs[t].push_back(ref_scan(jobs[t].back()));
    }
  }
  Throughput r;
  std::vector<std::vector<serve::Result>> results(submitters);
  r.ms = bench::time_once_ms([&] {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < submitters; ++t) {
      threads.emplace_back([&, t] {
        std::vector<std::future<serve::Result>> futs;
        for (serve::ScanJob& j : jobs[t]) {
          futs.push_back(coord.submit(std::move(j)));
        }
        for (auto& f : futs) results[t].push_back(f.get());
      });
    }
    for (auto& th : threads) th.join();
  });
  const std::size_t total = submitters * jobs_each;
  r.requests_per_s = total / (r.ms / 1000.0);
  for (std::size_t t = 0; t < submitters; ++t) {
    for (std::size_t i = 0; i < results[t].size(); ++i) {
      if (results[t][i].status != serve::Status::kOk ||
          results[t][i].values != refs[t][i]) {
        ++r.diffs;
      }
    }
  }
  return r;
}

struct Failover {
  double detect_restart_ms = 0;  ///< kill -> dead shard live again
  double first_served_ms = 0;    ///< kill -> restarted shard completes work
  std::size_t diffs = 0;
};

Failover measure_failover(shard::Coordinator& coord, std::size_t shards) {
  // Steady background stream keeps every shard busy so the kill lands on a
  // loaded worker (the interesting case).
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> diffs{0};
  std::vector<std::thread> streamers;
  for (int t = 0; t < 2; ++t) {
    streamers.emplace_back([&, t] {
      std::mt19937_64 g(100 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        serve::ScanJob j = make_job(g, 2048);
        const std::vector<Value> ref = ref_scan(j);
        serve::Result r = coord.submit(std::move(j)).get();
        if (r.status == serve::Status::kOk && r.values != ref) {
          diffs.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  Failover f;
  const std::size_t victim = shards / 2;
  const std::uint64_t restarts_before = coord.shard_restarts(victim);
  const int pid = coord.shard_pid(victim);
  const auto t0 = Clock::now();
  ::kill(pid, SIGKILL);
  while (coord.shard_restarts(victim) == restarts_before ||
         coord.shard_pid(victim) == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  f.detect_restart_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  // First proof of life from the new incarnation: a request completes
  // after the restart (routing may bounce it across shards, so submit a
  // few and take the first completion as the recovery point).
  std::mt19937_64 g(7);
  for (;;) {
    serve::ScanJob j = make_job(g, 1024);
    const std::vector<Value> ref = ref_scan(j);
    serve::Result r = coord.submit(std::move(j)).get();
    if (r.status == serve::Status::kOk) {
      if (r.values != ref) diffs.fetch_add(1);
      break;
    }
  }
  f.first_served_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  stop.store(true);
  for (auto& t : streamers) t.join();
  f.diffs = diffs.load();
  return f;
}

}  // namespace
}  // namespace scanprim

int main() {
  using namespace scanprim;
  setenv("SCANPRIM_THREADS", "8", 0);

  constexpr std::size_t kSubmitters = 8;
  constexpr std::size_t kJobsEach = 48;
  constexpr std::size_t kElements = 16'000;  // near slot capacity: compute,
                                             // not slot copying, dominates

  bench::header("shard: throughput vs worker processes, fail-over latency");
  bench::row({"shards", "wave ms", "req/s", "failover ms", "recovered ms",
              "diffs"});

  bench::JsonLog json;
  bool ok = true;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    shard::Coordinator coord(options_for(shards));
    coord.start();
    // Warm-up wave (forks, first-touch, per-worker pools), then the clock.
    run_wave(coord, 2, 8, kElements);
    const Throughput t = run_wave(coord, kSubmitters, kJobsEach, kElements);
    const Failover f = measure_failover(coord, shards);
    const shard::Metrics m = coord.metrics();
    coord.shutdown();

    bench::row({bench::fmt_u(shards), bench::fmt(t.ms, 1),
                bench::fmt(t.requests_per_s, 0), bench::fmt(f.detect_restart_ms, 1),
                bench::fmt(f.first_served_ms, 1),
                bench::fmt_u(t.diffs + f.diffs)});
    // Scale-out only pays when the host has cores to scale onto: record
    // them so a flat (or inverted) curve on a small container reads as the
    // environment, not a regression.
    json.field("shards", static_cast<std::uint64_t>(shards))
        .field("host_cores",
               static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
        .field("submitters", static_cast<std::uint64_t>(kSubmitters))
        .field("requests", static_cast<std::uint64_t>(kSubmitters * kJobsEach))
        .field("request_elements", static_cast<std::uint64_t>(kElements))
        .field("wave_ms", t.ms)
        .field("requests_per_s", t.requests_per_s)
        .field("failover_detect_restart_ms", f.detect_restart_ms)
        .field("failover_first_served_ms", f.first_served_ms)
        .field("failovers", m.failovers)
        .field("restarts", m.restarts)
        .field("rerouted", m.rerouted)
        .field("diffs", static_cast<std::uint64_t>(t.diffs + f.diffs))
        .end_object();
    ok = ok && t.diffs == 0 && f.diffs == 0;
  }

  if (!json.write("BENCH_shard.json")) {
    std::fprintf(stderr, "failed to write BENCH_shard.json\n");
    return 1;
  }
  std::printf("\n(acceptance: diffs == 0 at every shard count; fail-over\n"
              " recovery bounded by heartbeat period x misses + backoff)\n");
  return ok ? 0 : 1;
}
