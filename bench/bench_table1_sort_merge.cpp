// Table 1, sorting and merging rows (n keys, n processors):
//
//   paper:   Sorting   EREW O(lg n)   CRCW O(lg n)   Scan O(lg n)
//            Merging   EREW O(lg n)   CRCW O(lg lg n)   Scan O(lg lg n)
//
// Sorting: the split radix sort on lg n-bit keys takes O(1) steps per bit in
// the scan model — O(lg n) total — while the same program under the EREW
// charge pays lg n per scan, i.e. O(lg² n); the EREW's own O(lg n) sorts are
// the (impractical) AKS/Cole networks the paper contrasts against.
// Quicksort shows the same shape with expected O(lg n) iterations.
// Merging: the halving merge runs in O(n/p + lg n) steps (Table 5 explores
// the p < n regime; here p = n).
#include <cmath>

#include "bench_util.hpp"
#include "src/algo/halving_merge.hpp"
#include "src/algo/quicksort.hpp"
#include "src/algo/radix_sort.hpp"

using namespace scanprim;
using machine::Machine;
using machine::Model;

int main() {
  bench::header("Table 1 / Sorting: split radix sort, lg n-bit keys");
  bench::row({"n", "EREW steps", "CRCW steps", "Scan steps", "Scan/lg n"});
  std::vector<double> lgs, scans;
  for (std::size_t lg = 8; lg <= 18; lg += 2) {
    const std::size_t n = std::size_t{1} << lg;
    const auto keys = bench::random_keys<std::uint64_t>(n, lg, n);
    std::uint64_t steps[3];
    int i = 0;
    for (const Model model : {Model::EREW, Model::CRCW, Model::Scan}) {
      Machine m(model);
      algo::split_radix_sort(m, std::span<const std::uint64_t>(keys),
                             static_cast<unsigned>(lg));
      steps[i++] = m.stats().steps;
    }
    bench::row({bench::fmt_u(n), bench::fmt_u(steps[0]), bench::fmt_u(steps[1]),
                bench::fmt_u(steps[2]),
                bench::fmt(static_cast<double>(steps[2]) / lg, 1)});
    lgs.push_back(static_cast<double>(lg));
    scans.push_back(static_cast<double>(steps[2]));
  }
  std::printf("scan-model growth: steps ~ (lg n)^%.2f   (paper: 1)\n",
              bench::loglog_slope(lgs, scans));

  bench::header("Table 1 / Sorting: quicksort, random pivots");
  bench::row({"n", "iterations", "Scan steps", "EREW steps", "Scan/lg n"});
  for (std::size_t lg = 8; lg <= 16; lg += 2) {
    const std::size_t n = std::size_t{1} << lg;
    std::vector<double> keys(n);
    std::mt19937_64 g(lg);
    for (auto& k : keys) k = static_cast<double>(g() % 1000000);
    Machine ms(Model::Scan), me(Model::EREW);
    const auto r = algo::quicksort(ms, std::span<const double>(keys));
    algo::quicksort(me, std::span<const double>(keys));
    bench::row({bench::fmt_u(n), bench::fmt_u(r.iterations),
                bench::fmt_u(ms.stats().steps), bench::fmt_u(me.stats().steps),
                bench::fmt(static_cast<double>(ms.stats().steps) / lg, 1)});
  }

  bench::header("Table 1 / Merging: halving merge (p = n)");
  bench::row({"n per side", "levels", "Scan steps", "steps/lg n"});
  for (std::size_t lg = 8; lg <= 18; lg += 2) {
    const std::size_t n = std::size_t{1} << lg;
    auto a = bench::random_keys<std::uint64_t>(n, lg, 1u << 30);
    auto b = bench::random_keys<std::uint64_t>(n, lg + 1, 1u << 30);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    Machine m(Model::Scan);
    const auto r = algo::halving_merge(m, std::span<const std::uint64_t>(a),
                                       std::span<const std::uint64_t>(b));
    bench::row({bench::fmt_u(n), bench::fmt_u(r.levels),
                bench::fmt_u(m.stats().steps),
                bench::fmt(static_cast<double>(m.stats().steps) / lg, 1)});
  }
  std::printf("(the steps/lg n column flattening = O(lg n) steps, the scan\n"
              " model's merging row)\n");

  bench::header("Table 1 / Merging: binary-search merge baseline (p = n)");
  bench::row({"n per side", "bsearch steps", "halving steps"});
  for (std::size_t lg = 8; lg <= 16; lg += 4) {
    const std::size_t n = std::size_t{1} << lg;
    auto a = bench::random_keys<std::uint64_t>(n, lg + 40, 1u << 30);
    auto b = bench::random_keys<std::uint64_t>(n, lg + 41, 1u << 30);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    Machine mb(Model::EREW), mh(Model::Scan);
    algo::binary_search_merge(mb, std::span<const std::uint64_t>(a),
                              std::span<const std::uint64_t>(b));
    algo::halving_merge(mh, std::span<const std::uint64_t>(a),
                        std::span<const std::uint64_t>(b));
    bench::row({bench::fmt_u(n), bench::fmt_u(mb.stats().steps),
                bench::fmt_u(mh.stats().steps)});
  }
  std::printf("(the binary-search merge uses no scans, so every model\n"
              " charges it O(lg n) — Table 1's EREW merging entry; the\n"
              " halving merge matches it at p = n and, unlike it, becomes\n"
              " work-optimal when p < n — Table 5)\n");
  return 0;
}
