// The memory subsystem's two headline claims, measured (docs/MEM.md):
//
//   1. Arena vs malloc on the serve batcher's snapshot path. Every batch
//      with recovery on copies its scan payload into a snapshot buffer;
//      with plain malloc that is an allocate + first-touch page faults +
//      copy + free per batch, with the arena the same class block comes
//      back off the free list already faulted in. Reported as ms per
//      snapshot cycle (allocate + memcpy + free), best of 5.
//
//   2. Transparent huge pages on vs off for first-touch + streaming read of
//      fresh mappings, ns/element over 2^20 .. 2^27 bytes. THP's win is
//      fewer page faults on the touch and fewer TLB misses on the stream;
//      both show up in the per-element figure. Policies are flipped at
//      runtime (mem::set_huge_policy) so one process measures both.
//
// Emits BENCH_mem.json rows: {bench, bytes, policy/variant, ms or
// ns_per_element}.
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/mem/mem.hpp"

namespace scanprim {
namespace {

bench::JsonLog json;

// Escape hatch: without it the compiler elides the malloc leg entirely
// (the allocation is dead, and new-expression elision is allowed).
template <class T>
inline void do_not_optimize(T const& v) {
  asm volatile("" : : "g"(v) : "memory");
}

// One snapshot cycle, arena flavour: class-recycled block, copy, free.
double arena_snapshot_ms(const std::vector<std::uint64_t>& src, int reps) {
  const std::size_t bytes = src.size() * sizeof(std::uint64_t);
  return bench::best_of_ms(reps, [&] {
    std::byte* p = mem::allocate(bytes);
    std::memcpy(p, src.data(), bytes);
    do_not_optimize(p);
    mem::deallocate(p);
  });
}

// The same cycle through the system allocator, fresh each time — what the
// snapshot path cost before the arena migration.
double malloc_snapshot_ms(const std::vector<std::uint64_t>& src, int reps) {
  const std::size_t bytes = src.size() * sizeof(std::uint64_t);
  return bench::best_of_ms(reps, [&] {
    auto p = std::make_unique<std::byte[]>(bytes);
    std::memcpy(p.get(), src.data(), bytes);
    do_not_optimize(p.get());
    // unique_ptr frees on scope exit
  });
}

void bench_snapshot_path() {
  bench::header("snapshot cycle: arena vs malloc (alloc + memcpy + free)");
  bench::row({"bytes", "malloc ms", "arena ms", "speedup"});
  for (std::size_t log = 20; log <= 27; ++log) {
    const std::size_t bytes = std::size_t{1} << log;
    std::vector<std::uint64_t> src(bytes / sizeof(std::uint64_t), 0x5a5a);
    const int reps = bytes >= (std::size_t{64} << 20) ? 5 : 9;
    // Warm the arena's free list once so the measured cycles hit it — the
    // steady state of the batcher, which snapshots every batch.
    mem::deallocate(mem::allocate(bytes));
    const double arena_ms = arena_snapshot_ms(src, reps);
    const double malloc_ms = malloc_snapshot_ms(src, reps);
    bench::row({bench::fmt_u(bytes), bench::fmt(malloc_ms, 3),
                bench::fmt(arena_ms, 3),
                bench::fmt(malloc_ms / arena_ms, 2) + "x"});
    json.field("bench", "snapshot_cycle")
        .field("bytes", static_cast<std::uint64_t>(bytes))
        .field("malloc_ms", malloc_ms)
        .field("arena_ms", arena_ms)
        .field("speedup", malloc_ms / arena_ms)
        .end_object();
    mem::trim_local(0);
  }
}

// First-touch write of every 8th word (one touch per 64-byte line), then a
// full streaming read — a fresh mapping each rep so the page-fault cost is
// IN the measurement. Returns ns per 8-byte element.
double touch_stream_ns_per_elem(std::size_t bytes, int reps) {
  const std::size_t words = bytes / sizeof(std::uint64_t);
  volatile std::uint64_t sink = 0;
  const double ms = bench::best_of_ms(reps, [&] {
    mem::trim_local(0);  // force a fresh mapping: policy applies to it
    auto* p = reinterpret_cast<std::uint64_t*>(mem::allocate(bytes));
    for (std::size_t i = 0; i < words; i += 8) p[i] = i;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < words; ++i) acc += p[i];
    sink = acc;
    mem::deallocate(reinterpret_cast<std::byte*>(p));
  });
  return ms * 1e6 / static_cast<double>(words);
}

void bench_thp_on_off() {
  bench::header("first-touch + stream read, fresh mapping: THP off vs on");
  bench::row({"bytes", "off ns/el", "thp ns/el", "off/thp"});
  for (std::size_t log = 20; log <= 27; ++log) {
    const std::size_t bytes = std::size_t{1} << log;
    const int reps = bytes >= (std::size_t{64} << 20) ? 3 : 5;
    mem::set_huge_policy(mem::HugePolicy::kOff);
    const double off_ns = touch_stream_ns_per_elem(bytes, reps);
    mem::set_huge_policy(mem::HugePolicy::kThp);
    const double thp_ns = touch_stream_ns_per_elem(bytes, reps);
    bench::row({bench::fmt_u(bytes), bench::fmt(off_ns, 3),
                bench::fmt(thp_ns, 3), bench::fmt(off_ns / thp_ns, 2) + "x"});
    const std::pair<const char*, double> rows[] = {{"off", off_ns},
                                                   {"thp", thp_ns}};
    for (const auto& [policy, ns] : rows) {
      json.field("bench", "touch_stream")
          .field("bytes", static_cast<std::uint64_t>(bytes))
          .field("policy", policy)
          .field("ns_per_element", ns)
          .end_object();
    }
  }
  mem::trim_local(0);
}

void report_counters() {
  const mem::Counters c = mem::counters();
  bench::header("mem counters after the run");
  bench::row({"hits", "misses", "os_allocs", "huge_grants", "huge_denials"});
  bench::row({bench::fmt_u(c.arena_hits), bench::fmt_u(c.arena_misses),
              bench::fmt_u(c.os_allocs), bench::fmt_u(c.huge_grants),
              bench::fmt_u(c.huge_denials)});
  json.field("bench", "counters")
      .field("arena_hits", c.arena_hits)
      .field("arena_misses", c.arena_misses)
      .field("os_allocs", c.os_allocs)
      .field("os_frees", c.os_frees)
      .field("huge_grants", c.huge_grants)
      .field("huge_denials", c.huge_denials)
      .field("peak_bytes", c.peak_bytes)
      .end_object();
}

}  // namespace
}  // namespace scanprim

int main() {
  scanprim::bench_snapshot_path();
  scanprim::bench_thp_on_off();
  scanprim::report_counters();
  if (!scanprim::json.write("BENCH_mem.json")) return 1;
  std::printf("\nwrote BENCH_mem.json\n");
  return 0;
}
