// Table 4: split radix sort vs Batcher's bitonic sort on a 64K-processor
// bit-serial machine, 16-bit keys.
//
//   paper (64K-processor CM-1): split radix ~20,000 bit cycles,
//                               bitonic     ~19,000 bit cycles
//
// Both sorts run under the machine's bit-cycle accounting (field width d,
// scans d + 2 lg p, routed permutes router_factor·d·lg p, elementwise d —
// constants documented in machine/machine.hpp). The paper's point is the
// *shape*: O(d lg n) vs O(d + lg² n) bit time, roughly equal at n = 64K,
// d = 16, with the radix sort pulling ahead as keys widen and the bitonic
// sort ahead as keys narrow.
#include "bench_util.hpp"
#include "src/algo/bitonic_sort.hpp"
#include "src/algo/radix_sort.hpp"

using namespace scanprim;
using machine::Machine;
using machine::Model;

namespace {

double radix_cycles(std::size_t n, unsigned d) {
  Machine m(Model::Scan);
  m.bit_cost().field_bits = d;
  const auto keys =
      bench::random_keys<std::uint64_t>(n, d, std::uint64_t{1} << d);
  algo::split_radix_sort(m, std::span<const std::uint64_t>(keys), d);
  return m.stats().bit_cycles;
}

double bitonic_cycles(std::size_t n, unsigned d) {
  Machine m(Model::Scan);
  m.bit_cost().field_bits = d;
  const auto keys =
      bench::random_keys<std::uint64_t>(n, d + 1, std::uint64_t{1} << d);
  algo::bitonic_sort(m, std::span<const std::uint64_t>(keys));
  return m.stats().bit_cycles;
}

}  // namespace

int main() {
  bench::header("Table 4 / the paper's point: n = 65536, d = 16");
  {
    const double r = radix_cycles(1 << 16, 16);
    const double b = bitonic_cycles(1 << 16, 16);
    bench::row({"", "split radix", "bitonic", "ratio"});
    bench::row({"bit cycles", bench::fmt(r, 0), bench::fmt(b, 0),
                bench::fmt(r / b, 2)});
    std::printf("(paper: 20,000 vs 19,000 — ratio 1.05; same order, near\n"
                " parity, exactly the comparison Table 4 reports)\n");
  }

  bench::header("Table 4 / sweep in key width d (n = 65536)");
  bench::row({"d bits", "split radix", "bitonic", "radix/bitonic"});
  for (const unsigned d : {8u, 16u, 24u, 32u, 48u}) {
    const double r = radix_cycles(1 << 16, d);
    const double b = bitonic_cycles(1 << 16, d);
    bench::row({bench::fmt_u(d), bench::fmt(r, 0), bench::fmt(b, 0),
                bench::fmt(r / b, 2)});
  }
  std::printf("(the radix sort routes its d-bit keys once per bit — cost\n"
              " grows ~quadratically in d under the store-and-forward router\n"
              " charge — while the bitonic sort's cube exchanges grow only\n"
              " linearly; narrow keys favour radix, wide keys bitonic)\n");

  bench::header("Table 4 / sweep in machine size n (d = 16)");
  bench::row({"n", "split radix", "bitonic", "radix/bitonic"});
  for (std::size_t lg = 10; lg <= 18; lg += 2) {
    const double r = radix_cycles(std::size_t{1} << lg, 16);
    const double b = bitonic_cycles(std::size_t{1} << lg, 16);
    bench::row({bench::fmt_u(std::size_t{1} << lg), bench::fmt(r, 0),
                bench::fmt(b, 0), bench::fmt(r / b, 2)});
  }
  std::printf("(the crossover moves toward the radix sort as n grows:\n"
              " lg n vs lg^2 n stages)\n");
  return 0;
}
