// Table 1, matrix rows (n×n matrices, n² processors):
//
//   paper:  Matrix × Matrix   EREW O(n)        CRCW O(n)       Scan O(n)
//           Vector × Matrix   EREW O(lg n)     CRCW O(lg n)    Scan O(1)
//           Linear solver     EREW O(n lg n)   CRCW O(n lg n)  Scan O(n)
#include <random>

#include "bench_util.hpp"
#include "src/algo/matrix.hpp"

using namespace scanprim;
using machine::Machine;
using machine::Model;

namespace {

algo::Matrix random_matrix(std::size_t n, std::uint64_t seed, double diag) {
  algo::Matrix M{n, n, std::vector<double>(n * n)};
  std::mt19937_64 g(seed);
  for (auto& v : M.a) v = static_cast<double>(g() % 100) / 10.0 - 5.0;
  for (std::size_t i = 0; i < n; ++i) M.at(i, i) += diag;
  return M;
}

}  // namespace

int main() {
  bench::header("Table 1 / Vector x Matrix (n^2 processors)");
  bench::row({"n", "EREW steps", "CRCW steps", "Scan steps"});
  for (const std::size_t n : {8u, 32u, 128u, 512u}) {
    const algo::Matrix M = random_matrix(n, n, 0);
    std::vector<double> x(n, 1.0);
    std::uint64_t steps[3];
    int i = 0;
    for (const Model model : {Model::EREW, Model::CRCW, Model::Scan}) {
      Machine m(model);
      algo::vec_mat_multiply(m, std::span<const double>(x), M);
      steps[i++] = m.stats().steps;
    }
    bench::row({bench::fmt_u(n), bench::fmt_u(steps[0]), bench::fmt_u(steps[1]),
                bench::fmt_u(steps[2])});
  }
  std::printf("(Scan constant = O(1); EREW's lg n from the broadcast/reduce)\n");

  bench::header("Table 1 / Matrix x Matrix");
  bench::row({"n", "Scan steps", "steps/n"});
  std::vector<double> ns, ss;
  for (const std::size_t n : {8u, 16u, 32u, 64u, 128u}) {
    const algo::Matrix A = random_matrix(n, n + 1, 0);
    const algo::Matrix B = random_matrix(n, n + 2, 0);
    Machine m(Model::Scan);
    algo::mat_mat_multiply(m, A, B);
    bench::row({bench::fmt_u(n), bench::fmt_u(m.stats().steps),
                bench::fmt(static_cast<double>(m.stats().steps) / n, 2)});
    ns.push_back(static_cast<double>(n));
    ss.push_back(static_cast<double>(m.stats().steps));
  }
  std::printf("growth: steps ~ n^%.2f  (paper: 1)\n",
              bench::loglog_slope(ns, ss));

  bench::header("Table 1 / Linear solver with pivoting");
  bench::row({"n", "EREW steps", "Scan steps", "EREW/(n lg n)", "Scan/n"});
  for (const std::size_t n : {8u, 32u, 128u, 256u}) {
    const algo::Matrix A = random_matrix(n, n + 3, 40.0);
    std::vector<double> b(n, 1.0);
    Machine ms(Model::Scan), me(Model::EREW);
    algo::linear_solve(ms, A, b);
    algo::linear_solve(me, A, b);
    const double lg = std::log2(static_cast<double>(n));
    bench::row({bench::fmt_u(n), bench::fmt_u(me.stats().steps),
                bench::fmt_u(ms.stats().steps),
                bench::fmt(static_cast<double>(me.stats().steps) / (n * lg), 2),
                bench::fmt(static_cast<double>(ms.stats().steps) / n, 2)});
  }
  std::printf("(flat normalised columns = the paper's O(n lg n) vs O(n))\n");
  return 0;
}
