// Table 2: a scan operation versus a parallel memory reference, in theory
// (VLSI area / circuit size and depth) and at the bit-cycle level, plus the
// §3.3 example system. The scan side is *measured* on the logic-level
// simulator of §3.2; the memory-reference side uses the butterfly-router
// cost model documented in circuit/router_model.hpp (we cannot run a CM-2;
// the table's claim — a scan is no slower and needs asymptotically less
// hardware — is what the substitution preserves; see DESIGN.md).
#include <random>

#include "bench_util.hpp"
#include "src/circuit/prefix_networks.hpp"
#include "src/circuit/router_model.hpp"
#include "src/circuit/tree_circuit.hpp"

using namespace scanprim;
using circuit::ScanOpKind;
using circuit::TreeScanCircuit;

int main() {
  bench::header("Table 2 / theoretical costs at n = 65536");
  bench::row({"quantity", "memory ref", "scan", ""});
  for (const auto& r : circuit::theoretical_costs(1 << 16)) {
    std::printf("%28s%16.0f%16.0f   %s\n", r.quantity.c_str(),
                r.memory_reference, r.scan, r.note.c_str());
  }

  bench::header("Table 2 / bit cycles, 32-bit fields (measured scan circuit)");
  bench::row({"n procs", "memref cycles", "scan cycles", "scan measured"});
  for (std::size_t lg = 8; lg <= 16; lg += 2) {
    const std::size_t n = std::size_t{1} << lg;
    const auto c = circuit::bit_serial_costs(n, 32);
    TreeScanCircuit sim(n, 32);
    std::mt19937_64 g(lg);
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = g() & 0xffffffff;
    sim.scan(v, ScanOpKind::Add);
    bench::row({bench::fmt_u(n), bench::fmt(c.memory_reference_cycles, 0),
                bench::fmt(c.scan_cycles, 0),
                bench::fmt_u(sim.last_cycle_count())});
  }
  std::printf("(paper, 64K-processor CM-2: memory reference 600 bit cycles,\n"
              " scan 550 sharing the router wires; a dedicated tree needs\n"
              " only d + 2 lg n = 63)\n");

  bench::header("Table 2 / hardware: percent of machine");
  {
    TreeScanCircuit sim(1 << 16, 32);
    const auto hw = sim.inventory();
    std::printf("  %zu leaves: %zu units, %zu sum state machines,\n"
                "  %zu shift-register bits, %zu wires\n",
                hw.leaves, hw.units, hw.state_machines,
                hw.shift_register_bits, hw.wires);
    std::printf("  ~O(1) gates/processor vs a router's O(lg n) switch\n"
                "  stages/processor (paper: scan 0%% extra hardware on the\n"
                "  CM-2 vs router ~30%% of the machine)\n");
  }

  bench::header("Table 2 / the prefix-network design space (n = 4096): exact "
                "gate counts");
  bench::row({"network", "size", "depth", "max fanout"});
  for (const auto& make :
       {circuit::serial_network, circuit::sklansky_network,
        circuit::brent_kung_network, circuit::kogge_stone_network}) {
    const auto net = make(4096);
    bench::row({net.name, bench::fmt_u(net.size()), bench::fmt_u(net.depth()),
                bench::fmt_u(net.max_fanout())});
  }
  std::printf("(the O(n)-size / O(lg n)-depth corner the table quotes from\n"
              " Ladner-Fischer/Fich is Brent-Kung's neighborhood; the tree\n"
              " circuit above is its bit-pipelined incarnation)\n");

  bench::header("Section 3.3 / example system: 4096 processors, 32-bit scan");
  {
    TreeScanCircuit sim(4096, 32);
    std::vector<std::uint64_t> v(4096, 1);
    sim.scan(v, ScanOpKind::Add);
    const double at100ns = sim.last_cycle_count() * 0.1;
    const double at10ns = sim.last_cycle_count() * 0.01;
    std::printf("  measured %zu cycles -> %.1f us at 100 ns clock (paper ~5 us),"
                "\n  %.2f us at the Monarch's 10 ns clock (paper 0.5 us)\n",
                sim.last_cycle_count(), at100ns, at10ns);
    const auto hw = sim.inventory();
    const auto chips = circuit::partition_into_chips(4096, 64);
    std::printf("  packaging with 64-input chips: %zu chips (64 leaf + 1 "
                "combiner), %zu state machines\n  and %zu shift registers "
                "per chip, one wire pair leaving each (paper: same)\n",
                chips.chips, chips.state_machines_per_leaf_chip,
                chips.shift_registers_per_leaf_chip);
    std::printf("  whole machine: %zu units, %zu state machines\n", hw.units,
                hw.state_machines);
  }
  return 0;
}
