// The plan subsystem's acceptance benchmark (docs/PLAN.md): repeated VM
// traffic through the compiled-plan path must cost about the same as the
// hand-written exec pipeline it lowers to — the interpreter's flexibility
// should be free once the plan cache is warm.
//
// Three tables:
//   1. compile/lookup: cold Compiler::compile() cost vs a warm Cache::get()
//      hit (the per-dispatch overhead repeated traffic actually pays);
//   2. dispatch: the same workload run as a VM program (through the
//      Interpreter::run hook, cache warm) and as a hand-written exec
//      pipeline, at n = 2^20 .. 2^24 — the ratio column is the headline and
//      should stay <= 1.1x on repeated dispatch;
//   3. zipf: cache hit rate under a skewed program population larger than
//      the cache, across skew exponents — the shape repeated serving
//      traffic actually has.
//
// Results go to stdout and BENCH_plan.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/primitives.hpp"
#include "src/exec/executor.hpp"
#include "src/machine/machine.hpp"
#include "src/plan/plan.hpp"
#include "src/vm/assembler.hpp"
#include "src/vm/interpreter.hpp"

namespace scanprim {
namespace {

using I64 = std::int64_t;

double once_us(int iters, const auto& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
}

}  // namespace
}  // namespace scanprim

int main() {
  using namespace scanprim;
  if (!plan::enabled() || !plan::ensure_hook()) {
    std::fprintf(stderr, "plan dispatch disabled (SCANPRIM_PLAN=off?); "
                         "bench_plan needs the compiled path\n");
    return 1;
  }
  bench::JsonLog json;
  bool ok = true;

  // --- 1. cold compile vs warm cache hit ------------------------------------
  bench::header("plan compile vs cache hit");
  bench::row({"program", "instrs", "compile us", "hit ns", "entry KiB"});
  const std::pair<const char*, const char*> cases[] = {
      {"plus_scan", "load a\n+scan\nstore r\nhalt\n"},
      {"scan_pack", "load a\n+scan\nload f\npack\nstore r\nhalt\n"},
      {"fused_mix",
       "load a\ndup\nadd\n+scan\nload f\npack\nstore r\n"
       "load a\nload f\nseg+scan\nstore s\nload a\nmaxscan\nstore m\nhalt\n"},
  };
  for (const auto& [name, src] : cases) {
    const vm::Program p = vm::assemble(src);
    const double compile_us =
        once_us(200, [&] { (void)plan::Compiler{}.compile(p); });
    plan::Cache cache;  // isolated: first get is the one real compile
    if (cache.get(p) == nullptr) {
      std::fprintf(stderr, "%s: declined compilation\n", name);
      ok = false;
      continue;
    }
    const double hit_ns = 1e3 * once_us(1 << 14, [&] { (void)cache.get(p); });
    const std::size_t entry_bytes = cache.stats().bytes;
    bench::row({name, bench::fmt_u(p.size()), bench::fmt(compile_us, 2),
                bench::fmt(hit_ns, 1), bench::fmt(entry_bytes / 1024.0, 1)});
    json.field("section", "compile")
        .field("program", name)
        .field("instructions", p.size())
        .field("compile_us", compile_us)
        .field("hit_ns", hit_ns)
        .field("entry_bytes", entry_bytes)
        .end_object();
  }

  // --- 2. VM repeated dispatch vs hand-written pipeline ---------------------
  bench::header("repeated dispatch: VM (plan cache warm) vs hand-written exec");
  bench::row({"workload", "n", "vm ms", "hand ms", "vm/hand", "match"});
  const std::size_t sizes[] = {std::size_t{1} << 20, std::size_t{1} << 22,
                               std::size_t{1} << 24};
  for (const std::size_t n : sizes) {
    const int reps = n >= (std::size_t{1} << 24) ? 3 : 5;
    std::mt19937_64 rng(7 + n);
    vm::Vec a(n), f(n);
    std::vector<std::uint8_t> f8(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<I64>(rng() & 0xffff);
      f8[i] = rng() & 1;
      f[i] = f8[i];
    }
    const std::span<const I64> s(a);
    const FlagsView fv(f8);

    struct Workload {
      const char* name;
      const char* src;
      std::vector<I64> (*hand)(exec::Executor&, std::span<const I64>,
                               FlagsView, std::span<const I64>);
    };
    const Workload workloads[] = {
        {"plus_scan", "load a\n+scan\nstore r\nhalt\n",
         [](exec::Executor& ex, std::span<const I64> v, FlagsView,
            std::span<const I64>) {
           return ex.run(exec::source(v) | exec::scan<Plus>());
         }},
        {"map_scan", "load a\ndup\nadd\n+scan\nstore r\nhalt\n",
         [](exec::Executor& ex, std::span<const I64> v, FlagsView,
            std::span<const I64>) {
           return ex.run(exec::source(v) |
                         exec::map([](I64 x) { return x + x; }) |
                         exec::scan<Plus>());
         }},
        // The hand pipeline converts the i64 flag register to Flags like
        // the VM must: both sides start from the same i64 registers, so
        // the ratio isolates plan-dispatch overhead, not input format.
        {"scan_pack", "load a\n+scan\nload f\npack\nstore r\nhalt\n",
         [](exec::Executor& ex, std::span<const I64> v, FlagsView,
            std::span<const I64> f64) {
           Flags f8(f64.size());
           for (std::size_t i = 0; i < f64.size(); ++i) f8[i] = f64[i] != 0;
           return ex.run(exec::source(v) | exec::scan<Plus>() |
                         exec::pack(FlagsView(f8)));
         }},
    };
    for (const Workload& w : workloads) {
      const vm::Program p = vm::assemble(w.src);
      machine::Machine m;
      vm::Interpreter interp(m);
      interp.set_register("a", a);
      interp.set_register("f", f);
      interp.run(p);  // warm: compiles into the process cache
      exec::Executor ex;
      const std::vector<I64> hand_out = w.hand(ex, s, fv, f);
      // Interleaved best-of so slow drift (thermal, page cache) hits both
      // sides equally.
      double vm_ms = 1e300, hand_ms = 1e300;
      for (int i = 0; i < reps; ++i) {
        vm_ms = std::min(vm_ms, bench::time_once_ms([&] { interp.run(p); }));
        hand_ms = std::min(hand_ms,
                           bench::time_once_ms([&] { w.hand(ex, s, fv, f); }));
      }

      const bool match = interp.register_value("r") == hand_out;
      ok = ok && match;
      const double ratio = hand_ms > 0 ? vm_ms / hand_ms : 0;
      bench::row({w.name, bench::fmt_u(n), bench::fmt(vm_ms, 3),
                  bench::fmt(hand_ms, 3), bench::fmt(ratio, 2),
                  match ? "yes" : "NO"});
      json.field("section", "dispatch")
          .field("workload", w.name)
          .field("n", n)
          .field("vm_ms", vm_ms)
          .field("hand_ms", hand_ms)
          .field("vm_over_hand", ratio)
          .field("match", match)
          .end_object();
    }
  }

  // --- 3. zipf traffic over a program population ----------------------------
  // 256 structurally distinct programs, cache sized to hold ~1/4 of them,
  // 100k lookups drawn zipf(s): the hot head should stay resident and the
  // hit rate should climb with skew.
  bench::header("plan cache under zipf program traffic (256 programs)");
  bench::row({"skew", "capacity", "hits %", "compiles", "evictions"});
  constexpr int kPrograms = 256;
  constexpr int kLookups = 100000;
  std::vector<vm::Program> population;
  population.reserve(kPrograms);
  for (int k = 0; k < kPrograms; ++k) {
    population.push_back(vm::assemble("const 64 " + std::to_string(k) +
                                      "\n+scan\nstore r\nhalt\n"));
  }
  std::size_t entry_bytes = 0;
  {
    plan::Cache probe;
    (void)probe.get(population[0]);
    entry_bytes = probe.stats().bytes;
  }
  for (const double skew : {0.6, 1.0, 1.4}) {
    plan::Cache cache;
    cache.set_capacity_bytes(entry_bytes * (kPrograms / 4));
    std::vector<double> weights(kPrograms);
    for (int r = 0; r < kPrograms; ++r) {
      weights[r] = 1.0 / std::pow(static_cast<double>(r + 1), skew);
    }
    std::discrete_distribution<int> pick(weights.begin(), weights.end());
    std::mt19937_64 rng(42);
    for (int i = 0; i < kLookups; ++i) (void)cache.get(population[pick(rng)]);
    const plan::Cache::Stats st = cache.stats();
    const double hit_pct =
        100.0 * static_cast<double>(st.hits) / (st.hits + st.misses);
    bench::row({bench::fmt(skew, 1), bench::fmt_u(cache.capacity_bytes()),
                bench::fmt(hit_pct, 1), bench::fmt_u(st.misses),
                bench::fmt_u(st.evictions)});
    json.field("section", "zipf")
        .field("skew", skew)
        .field("programs", static_cast<std::uint64_t>(kPrograms))
        .field("lookups", static_cast<std::uint64_t>(kLookups))
        .field("capacity_bytes", cache.capacity_bytes())
        .field("hit_rate", hit_pct / 100.0)
        .field("compiles", st.misses)
        .field("evictions", st.evictions)
        .end_object();
  }

  if (!json.write("BENCH_plan.json")) {
    std::fprintf(stderr, "failed to write BENCH_plan.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_plan.json\n");
  return ok ? 0 : 1;
}
