// The obs probe contract mirrors the fault-point one: DISARMED, a span or
// instant probe must cost a couple of relaxed loads — cheap enough to live
// at per-tile and per-dispatch granularity with tracing compiled in always
// (docs/OBS.md). This microbenchmark prices that claim: a bare loop, the
// same loop with a disarmed span / instant per element (far denser than any
// real placement), the ARMED cost of a ring write, histogram recording, and
// the shipped parallel scan with all of its probes in place.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "src/core/ops.hpp"
#include "src/core/scan.hpp"
#include "src/obs/histogram.hpp"
#include "src/obs/obs.hpp"

namespace {

using namespace scanprim;

std::vector<std::int64_t> make_input(std::size_t n) {
  std::mt19937_64 g(7);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(g() & 0xffff);
  return v;
}

// Baseline: the serial accumulation loop with nothing in its body.
void BM_BareLoop(benchmark::State& state) {
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (const auto x : in) acc += x;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.size()));
}

// A disarmed RAII span constructed and destroyed per element — the library
// never places spans denser than per-tile, so this bounds the real cost
// from far above. The per-element delta against BM_BareLoop is the span's
// disarmed price.
void BM_DisarmedSpanPerElement(benchmark::State& state) {
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (const auto x : in) {
      obs::Span span("bench.per_element");
      acc += x;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.size()));
}

// A disarmed instant probe per element: one relaxed load and a branch.
void BM_DisarmedInstantPerElement(benchmark::State& state) {
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (const auto x : in) {
      obs::instant("bench.per_element.i",
                   static_cast<std::uint64_t>(acc));
      acc += x;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.size()));
}

// ARMED span per element: two timestamped seqlock ring writes. This is the
// price of actually tracing, paid only under SCANPRIM_TRACE.
void BM_ArmedSpanPerElement(benchmark::State& state) {
  const bool armed = obs::start_tracing("/dev/null");
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (const auto x : in) {
      obs::Span span("bench.per_element.armed");
      acc += x;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.size()));
  if (armed) obs::stop_tracing();
}

// Histogram recording: the serve latency path records one value per
// completed request through exactly this call.
void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v);
    v = v * 2862933555777941757ULL + 3037000493ULL;  // cheap LCG spread
    benchmark::DoNotOptimize(&h);
  }
  state.SetItemsProcessed(state.iterations());
}

// The shipped parallel scan with its probes compiled in (as it always
// runs), tracing disabled: bench_scan_micro rates must match this.
void BM_LibraryScanWithProbes(benchmark::State& state) {
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  std::vector<std::int64_t> out(in.size());
  for (auto _ : state) {
    exclusive_scan(std::span<const std::int64_t>(in),
                   std::span<std::int64_t>(out), Plus<std::int64_t>{});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.size()));
}

BENCHMARK(BM_BareLoop)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_DisarmedSpanPerElement)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_DisarmedInstantPerElement)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_ArmedSpanPerElement)->Arg(1 << 16);
BENCHMARK(BM_HistogramRecord);
BENCHMARK(BM_LibraryScanWithProbes)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
