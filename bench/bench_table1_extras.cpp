// Table 1, the rows the paper cites to its companion papers ([7],[8]) and
// that this repository additionally implements:
//
//   paper:  Maximal Independent Set  EREW lg² n   CRCW lg² n   Scan lg n
//           Biconnected Components   EREW lg² n   CRCW lg n    Scan lg n
//           Convex Hull              EREW lg n    CRCW lg n    Scan lg n
//           Building a K-D Tree     EREW lg² n   CRCW lg² n   Scan lg n
#include <cmath>
#include <random>

#include "bench_util.hpp"
#include "src/algo/biconnected.hpp"
#include "src/algo/closest_pair.hpp"
#include "src/algo/convex_hull.hpp"
#include "src/algo/independent_set.hpp"
#include "src/algo/kd_tree.hpp"
#include "src/algo/max_flow.hpp"

using namespace scanprim;
using machine::Machine;
using machine::Model;

int main() {
  bench::header("Table 1 / Maximal Independent Set (n vertices, 4n edges)");
  bench::row({"n", "rounds", "EREW steps", "Scan steps", "Scan/lg n"});
  for (std::size_t lg = 6; lg <= 13; ++lg) {
    const std::size_t n = std::size_t{1} << lg;
    const auto edges = bench::random_connected_graph(n, 3 * n, lg);
    Machine ms(Model::Scan), me(Model::EREW);
    const auto r = algo::maximal_independent_set(
        ms, n, std::span<const graph::WeightedEdge>(edges), 3);
    algo::maximal_independent_set(
        me, n, std::span<const graph::WeightedEdge>(edges), 3);
    bench::row({bench::fmt_u(n), bench::fmt_u(r.rounds),
                bench::fmt_u(me.stats().steps), bench::fmt_u(ms.stats().steps),
                bench::fmt(static_cast<double>(ms.stats().steps) / lg, 1)});
  }

  bench::header("Table 1 / Convex Hull (n random points)");
  bench::row({"n", "hull size", "iterations", "Scan steps", "EREW steps"});
  for (std::size_t lg = 8; lg <= 17; lg += 3) {
    const std::size_t n = std::size_t{1} << lg;
    std::mt19937_64 g(lg);
    std::vector<algo::Point2D> pts(n);
    for (auto& p : pts) {
      p = {static_cast<double>(g() % (1u << 20)),
           static_cast<double>(g() % (1u << 20))};
    }
    Machine ms(Model::Scan), me(Model::EREW);
    const auto r = algo::convex_hull(ms, std::span<const algo::Point2D>(pts));
    algo::convex_hull(me, std::span<const algo::Point2D>(pts));
    bench::row({bench::fmt_u(n), bench::fmt_u(r.hull.size()),
                bench::fmt_u(r.iterations), bench::fmt_u(ms.stats().steps),
                bench::fmt_u(me.stats().steps)});
  }

  bench::header("Table 1 / Building a K-D Tree (n random points)");
  bench::row({"n", "levels", "Scan steps", "EREW steps", "Scan/lg n"});
  for (std::size_t lg = 8; lg <= 16; lg += 2) {
    const std::size_t n = std::size_t{1} << lg;
    std::mt19937_64 g(lg);
    std::vector<algo::Point2D> pts(n);
    for (auto& p : pts) {
      p = {static_cast<double>(g() % (1u << 20)),
           static_cast<double>(g() % (1u << 20))};
    }
    Machine ms(Model::Scan), me(Model::EREW);
    const auto t = algo::build_kd_tree(ms, std::span<const algo::Point2D>(pts));
    algo::build_kd_tree(me, std::span<const algo::Point2D>(pts));
    bench::row({bench::fmt_u(n), bench::fmt_u(t.levels),
                bench::fmt_u(ms.stats().steps), bench::fmt_u(me.stats().steps),
                bench::fmt(static_cast<double>(ms.stats().steps) / lg, 1)});
  }

  bench::header("Table 1 / Biconnected Components (n vertices, 3n edges)");
  bench::row({"n", "components", "Scan steps", "EREW steps", "EREW/Scan"});
  for (std::size_t lg = 6; lg <= 11; ++lg) {
    const std::size_t n = std::size_t{1} << lg;
    const auto edges = bench::random_connected_graph(n, 2 * n, 100 + lg);
    Machine ms(Model::Scan), me(Model::EREW);
    const auto r = algo::biconnected_components(
        ms, n, std::span<const graph::WeightedEdge>(edges), 5);
    algo::biconnected_components(
        me, n, std::span<const graph::WeightedEdge>(edges), 5);
    bench::row({bench::fmt_u(n), bench::fmt_u(r.num_components),
                bench::fmt_u(ms.stats().steps), bench::fmt_u(me.stats().steps),
                bench::fmt(static_cast<double>(me.stats().steps) /
                               static_cast<double>(ms.stats().steps),
                           2)});
  }
  std::printf("(the EREW/Scan ratio tracks lg n — the paper's extra lg\n"
              " factor on every scan and broadcast)\n");

  bench::header("Table 1 / Closest Pair in the Plane (n random points)");
  bench::row({"n", "levels", "Scan steps", "EREW steps", "Scan/lg n"});
  for (std::size_t lg = 8; lg <= 16; lg += 2) {
    const std::size_t n = std::size_t{1} << lg;
    std::mt19937_64 g(lg);
    std::vector<algo::Point2D> pts(n);
    for (auto& p : pts) {
      p = {static_cast<double>(g() % (1u << 24)),
           static_cast<double>(g() % (1u << 24))};
    }
    Machine ms(Model::Scan), me(Model::EREW);
    const auto r = algo::closest_pair(ms, std::span<const algo::Point2D>(pts));
    algo::closest_pair(me, std::span<const algo::Point2D>(pts));
    bench::row({bench::fmt_u(n), bench::fmt_u(r.levels),
                bench::fmt_u(ms.stats().steps), bench::fmt_u(me.stats().steps),
                bench::fmt(static_cast<double>(ms.stats().steps) / lg, 1)});
  }

  bench::header("Table 1 / Maximum Flow (n vertices, 4n arcs)");
  bench::row({"n", "phases", "Scan steps", "EREW steps", "Scan/n^2"});
  for (const std::size_t n : {16u, 32u, 64u, 128u}) {
    std::mt19937_64 g(n);
    std::vector<algo::FlowEdge> arcs;
    for (std::size_t v = 1; v < n; ++v) {
      arcs.push_back({g() % v, v, static_cast<double>(1 + g() % 30)});
    }
    for (std::size_t e = 0; e < 3 * n; ++e) {
      const std::size_t u = g() % n, v = g() % n;
      if (u != v) arcs.push_back({u, v, static_cast<double>(1 + g() % 30)});
    }
    Machine ms(Model::Scan), me(Model::EREW);
    const auto r = algo::max_flow(ms, n, std::span<const algo::FlowEdge>(arcs),
                                  0, n - 1);
    algo::max_flow(me, n, std::span<const algo::FlowEdge>(arcs), 0, n - 1);
    bench::row({bench::fmt_u(n), bench::fmt_u(r.phases),
                bench::fmt_u(ms.stats().steps), bench::fmt_u(me.stats().steps),
                bench::fmt(static_cast<double>(ms.stats().steps) / (n * n), 2)});
  }
  std::printf("(paper: O(n^2) scan model vs O(n^2 lg n) EREW — the gap is\n"
              " again the per-scan lg factor; phases here are the synchronous\n"
              " push-relabel's, well under the n^2 bound on random networks)\n");
  return 0;
}
