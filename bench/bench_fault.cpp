// The fault-point contract is "~free when disabled": a disarmed
// SCANPRIM_FAULT_POINT must cost no more than a couple of relaxed atomic
// loads, or it could not live inside per-tile and per-piece kernel code
// (docs/FAULTS.md). This microbenchmark prices the check three ways — a
// bare loop, the same loop with a disarmed point in its body, and a scan
// kernel with and without points compiled in by proxy (the shipped library
// scan already contains its points, so the delta against a hand-written
// loop bounds the real-world overhead from above).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "src/core/ops.hpp"
#include "src/core/scan.hpp"
#include "src/fault/fault.hpp"

namespace {

using namespace scanprim;

std::vector<std::int64_t> make_input(std::size_t n) {
  std::mt19937_64 g(7);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(g() & 0xffff);
  return v;
}

// Baseline: the serial accumulation loop with nothing in its body.
void BM_BareLoop(benchmark::State& state) {
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (const auto x : in) acc += x;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.size()));
}

// The same loop with a disarmed fault point checked on every element —
// far denser than any placement in the library (points sit at per-tile
// and per-job granularity, never per-element), so this is a worst case.
void BM_DisarmedPointPerElement(benchmark::State& state) {
  fault::disarm_all();
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (const auto x : in) {
      SCANPRIM_FAULT_POINT("bench.per_element");
      acc += x;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.size()));
}

// The shipped parallel scan, points compiled in (as it always runs).
// Instrumentation sits at tile/worker granularity here, so any per-element
// cost would be invisible; this documents the end-to-end price users pay.
void BM_LibraryScanWithPoints(benchmark::State& state) {
  fault::disarm_all();
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  std::vector<std::int64_t> out(in.size());
  for (auto _ : state) {
    exclusive_scan(std::span<const std::int64_t>(in),
                   std::span<std::int64_t>(out), Plus<std::int64_t>{});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.size()));
}

BENCHMARK(BM_BareLoop)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_DisarmedPointPerElement)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_LibraryScanWithPoints)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
