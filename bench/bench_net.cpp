// Open-loop load generator for the socket front end (docs/NET.md).
//
// Workload: latency clients fire small scans with Poisson arrivals while
// bulk clients push large scans at 2x the measured closed-loop capacity —
// the overload regime QoS-aware batching exists for. The same sweep runs
// with QoS on (two lanes, urgent window cuts, adaptive shrink) and off
// (everything bulk-classified); client-side end-to-end percentiles and
// goodput for both go to stdout and BENCH_net.json. A third phase arms
// per-tenant token buckets and verifies a greedy tenant is rejected with
// kOverQuota while a polite one sails through. Every kOk scan response is
// diffed against its sequential reference.
//
// --smoke: seconds-scale run for CI — asserts zero wrong results and
// nonzero quota rejections, skips the (timing-dependent) QoS win assertion.
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/net/client.hpp"
#include "src/net/server.hpp"
#include "src/serve/service.hpp"

namespace scanprim {
namespace {

using net::Client;
using net::Response;
using net::ScanOp;
using net::Status;
using net::Value;

using Clock = std::chrono::steady_clock;

std::vector<Value> make_data(std::mt19937_64& g, std::size_t n) {
  std::vector<Value> v(n);
  for (auto& x : v) x = static_cast<Value>(g() % 1000) - 500;
  return v;
}

std::vector<Value> ref_exclusive_plus(const std::vector<Value>& in) {
  std::vector<Value> out(in.size());
  Value acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc += in[i];
  }
  return out;
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// Closed-loop probe: serial bulk scans through the wire, returning the
/// sustainable bulk service rate (requests/second). The open-loop sweep
/// drives 2x this to create genuine overload.
double measure_bulk_capacity(std::uint16_t port, std::size_t bulk_elems,
                             int probes) {
  Client cli("127.0.0.1", port);
  std::mt19937_64 g(11);
  net::RequestOptions bulk;
  bulk.priority = net::Priority::kBulk;
  const auto t0 = Clock::now();
  for (int i = 0; i < probes; ++i) {
    const Response r =
        cli.scan_sync(make_data(g, bulk_elems), ScanOp::kPlus, false, false,
                      {}, bulk);
    if (r.status != Status::kOk) return 0;
  }
  const double s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  return s > 0 ? probes / s : 0;
}

struct SweepResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;  ///< backpressure/quota, not wrong answers
  std::uint64_t wrong = 0;
  double lat_p50_ms = 0, lat_p95_ms = 0, lat_p99_ms = 0;  ///< small scans
  double bulk_p99_ms = 0;
  double goodput_rps = 0;  ///< kOk responses per second over the window
  std::uint64_t window_shrinks = 0;
  std::uint64_t urgent_cuts = 0;
};

struct SweepConfig {
  std::size_t lat_conns = 4;
  std::size_t bulk_conns = 2;
  double lat_rps = 400;     ///< small-scan arrivals/s, all connections
  double bulk_rps = 40;     ///< bulk arrivals/s, all connections
  std::size_t small_elems = 256;
  std::size_t bulk_elems = 1 << 16;
  double seconds = 2.0;
  bool qos = true;
};

/// One open-loop sweep against a fresh service + server. Arrival times are
/// drawn as the sweep runs (open loop: the schedule does not react to
/// completions). Each connection pairs a sender with a waiter thread that
/// gets futures in send order as they resolve, so latency is stamped at
/// completion, not at drain. Payloads come from a small pre-generated pool
/// (references computed once) so the box's single core goes to the server,
/// not to the load generator.
SweepResult run_sweep(const SweepConfig& cfg) {
  serve::Service::Options so;
  // A bulk-friendly window: wide enough that, with QoS off, small scans
  // genuinely wait out bulk accumulation. With QoS on the latency lane cuts
  // it immediately — that delta is what the sweep measures.
  so.window_us = 5'000;
  serve::Service svc(so);
  net::ServiceBackend backend(svc);
  net::Server::Options o;
  o.io_threads = 2;
  o.qos = cfg.qos;
  net::Server server(backend, o);
  server.start();

  SweepResult out;
  std::mutex mu;  // guards the merge of per-thread tallies below
  std::vector<double> lat_ms, bulk_ms;

  auto worker = [&](std::size_t seed, bool is_bulk, double conn_rps) {
    Client cli("127.0.0.1", server.port());
    std::mt19937_64 g(seed);
    std::exponential_distribution<double> gap(conn_rps);
    net::RequestOptions ro;
    ro.priority = is_bulk ? net::Priority::kBulk : net::Priority::kAuto;
    const std::size_t elems = is_bulk ? cfg.bulk_elems : cfg.small_elems;

    const std::size_t pool_n = is_bulk ? 2 : 16;
    std::vector<std::vector<Value>> pool_data(pool_n);
    std::vector<std::vector<Value>> pool_ref(pool_n);
    for (std::size_t i = 0; i < pool_n; ++i) {
      pool_data[i] = make_data(g, elems);
      pool_ref[i] = ref_exclusive_plus(pool_data[i]);
    }

    struct Pending {
      std::future<Response> fut;
      std::size_t pool_idx;
      Clock::time_point sent_at;
    };
    std::mutex pmu;
    std::condition_variable pcv;
    std::deque<Pending> pend;
    bool sender_done = false;

    std::uint64_t ok = 0, rejected = 0, wrong = 0;
    std::vector<double> lats;
    std::thread waiter([&] {
      for (;;) {
        Pending p;
        {
          std::unique_lock<std::mutex> lk(pmu);
          pcv.wait(lk, [&] { return !pend.empty() || sender_done; });
          if (pend.empty()) return;
          p = std::move(pend.front());
          pend.pop_front();
        }
        const Response r = p.fut.get();
        const double ms = std::chrono::duration<double, std::milli>(
                              Clock::now() - p.sent_at)
                              .count();
        if (r.status == Status::kOk) {
          ++ok;
          lats.push_back(ms);
          if (r.outputs.empty() || r.outputs.front() != pool_ref[p.pool_idx]) {
            ++wrong;
          }
        } else if (r.status == Status::kRejected ||
                   r.status == Status::kOverQuota) {
          ++rejected;
        } else {
          ++wrong;  // anything else under a clean sweep is a real failure
        }
      }
    });

    std::uint64_t sent = 0;
    const auto t_end =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(cfg.seconds));
    auto next = Clock::now();
    while (next < t_end) {
      std::this_thread::sleep_until(next);
      next += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(gap(g)));
      const std::size_t idx = g() % pool_n;
      Pending p;
      p.pool_idx = idx;
      p.sent_at = Clock::now();
      p.fut = cli.scan(pool_data[idx], ScanOp::kPlus, false, false, {}, ro);
      {
        std::lock_guard<std::mutex> lk(pmu);
        pend.push_back(std::move(p));
      }
      pcv.notify_one();
      ++sent;
    }
    {
      std::lock_guard<std::mutex> lk(pmu);
      sender_done = true;
    }
    pcv.notify_one();
    waiter.join();

    std::lock_guard<std::mutex> lk(mu);
    out.sent += sent;
    out.ok += ok;
    out.rejected += rejected;
    out.wrong += wrong;
    auto& sink = is_bulk ? bulk_ms : lat_ms;
    sink.insert(sink.end(), lats.begin(), lats.end());
  };

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < cfg.lat_conns; ++c) {
    threads.emplace_back(worker, 1000 + c, false,
                         cfg.lat_rps / static_cast<double>(cfg.lat_conns));
  }
  for (std::size_t c = 0; c < cfg.bulk_conns; ++c) {
    threads.emplace_back(worker, 2000 + c, true,
                         cfg.bulk_rps / static_cast<double>(cfg.bulk_conns));
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  out.lat_p50_ms = percentile(lat_ms, 0.50);
  out.lat_p95_ms = percentile(lat_ms, 0.95);
  out.lat_p99_ms = percentile(lat_ms, 0.99);
  out.bulk_p99_ms = percentile(bulk_ms, 0.99);
  out.goodput_rps = wall_s > 0 ? static_cast<double>(out.ok) / wall_s : 0;
  out.window_shrinks = server.stats().window_shrinks;
  const serve::Metrics m = svc.metrics();
  out.urgent_cuts = m.urgent_cuts;

  server.stop();
  svc.shutdown();
  return out;
}

struct QuotaResult {
  std::uint64_t greedy_rejected = 0;
  std::uint64_t greedy_ok = 0;
  std::uint64_t polite_wrong = 0;  ///< polite tenant must see zero failures
};

/// Per-tenant admission: a greedy tenant bursts past its request bucket and
/// must eat kOverQuota; a polite tenant under the same server stays clean.
QuotaResult run_quota_phase(std::uint64_t tenant_qps, int greedy_burst,
                            int polite_requests) {
  serve::Service svc;
  net::ServiceBackend backend(svc);
  net::Server::Options o;
  o.io_threads = 2;
  o.tenant_qps = tenant_qps;
  net::Server server(backend, o);
  server.start();

  QuotaResult q;
  std::mt19937_64 g(3);
  {
    Client greedy("127.0.0.1", server.port(), /*tenant=*/7);
    std::vector<std::future<Response>> futs;
    for (int i = 0; i < greedy_burst; ++i) {
      futs.push_back(greedy.scan(make_data(g, 64), ScanOp::kPlus));
    }
    for (auto& f : futs) {
      const Response r = f.get();
      if (r.status == Status::kOverQuota) ++q.greedy_rejected;
      if (r.status == Status::kOk) ++q.greedy_ok;
    }
  }
  {
    Client polite("127.0.0.1", server.port(), /*tenant=*/8);
    for (int i = 0; i < polite_requests; ++i) {
      std::vector<Value> data = make_data(g, 64);
      const std::vector<Value> ref = ref_exclusive_plus(data);
      const Response r = polite.scan_sync(std::move(data), ScanOp::kPlus);
      if (r.status != Status::kOk || r.outputs.empty() ||
          r.outputs.front() != ref) {
        ++q.polite_wrong;
      }
    }
  }
  server.stop();
  svc.shutdown();
  return q;
}

}  // namespace
}  // namespace scanprim

int main(int argc, char** argv) {
  using namespace scanprim;
  const bool smoke =
      argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // The QoS story needs a real pool under the batcher; explicit
  // SCANPRIM_THREADS still wins (overwrite=0).
  setenv("SCANPRIM_THREADS", "4", 0);

  SweepConfig base;
  // 16Ki-element bulk frames: heavy enough that a window of them dominates
  // a batch, light enough that frame decode on the io threads is not the
  // bottleneck (QoS acts in the batcher, after decode — a sweep that drowns
  // the io threads in 512 KiB frames measures head-of-line blocking at the
  // socket, not the batching policy).
  base.bulk_elems = 1 << 14;
  if (smoke) {
    base.seconds = 0.8;
    base.lat_rps = 200;
    base.bulk_rps = 20;
  } else {
    base.seconds = 3.0;
    base.lat_rps = 400;
  }

  // Calibrate: closed-loop bulk capacity, then drive 2x (the overload
  // regime of the acceptance criterion). Floor the rate so the sweep still
  // generates load if the probe lands on a noisy moment.
  {
    serve::Service svc;
    net::ServiceBackend backend(svc);
    net::Server::Options o;
    o.io_threads = 2;
    net::Server server(backend, o);
    server.start();
    const double cap = measure_bulk_capacity(server.port(), base.bulk_elems,
                                             smoke ? 8 : 32);
    server.stop();
    svc.shutdown();
    // 2x the closed-loop rate is the overload target; the cap keeps an
    // optimistic probe (e.g. a warm cache run) from pushing the sweep into
    // io-thread saturation, where batching policy is unobservable.
    if (cap > 0) {
      base.bulk_rps = std::clamp(2.0 * cap, base.bulk_rps, 400.0);
    }
  }

  bench::header("net: QoS-aware batching under 2x bulk overload");
  bench::row({"qos", "sent", "ok", "rej", "wrong", "lat p50ms", "lat p95ms",
              "lat p99ms", "bulk p99ms", "goodput/s"});

  SweepConfig on = base;
  on.qos = true;
  const SweepResult qon = run_sweep(on);
  SweepConfig off = base;
  off.qos = false;
  const SweepResult qoff = run_sweep(off);

  const std::pair<const char*, const SweepResult*> sweeps[] = {{"on", &qon},
                                                               {"off", &qoff}};
  for (const auto& pair : sweeps) {
    const SweepResult& s = *pair.second;
    bench::row({pair.first, bench::fmt_u(s.sent), bench::fmt_u(s.ok),
                bench::fmt_u(s.rejected), bench::fmt_u(s.wrong),
                bench::fmt(s.lat_p50_ms, 2), bench::fmt(s.lat_p95_ms, 2),
                bench::fmt(s.lat_p99_ms, 2), bench::fmt(s.bulk_p99_ms, 2),
                bench::fmt(s.goodput_rps, 1)});
  }

  const QuotaResult quota =
      smoke ? run_quota_phase(8, 32, 4) : run_quota_phase(16, 96, 8);
  std::printf("\nquota: greedy ok=%llu rejected=%llu, polite wrong=%llu\n",
              static_cast<unsigned long long>(quota.greedy_ok),
              static_cast<unsigned long long>(quota.greedy_rejected),
              static_cast<unsigned long long>(quota.polite_wrong));

  bench::JsonLog json;
  for (const auto& pair : sweeps) {
    const SweepResult& s = *pair.second;
    json.field("qos", pair.first)
        .field("smoke", smoke)
        .field("sent", s.sent)
        .field("ok", s.ok)
        .field("rejected", s.rejected)
        .field("wrong", s.wrong)
        .field("bulk_overload_rps", base.bulk_rps)
        .field("latency_p50_ms", s.lat_p50_ms)
        .field("latency_p95_ms", s.lat_p95_ms)
        .field("latency_p99_ms", s.lat_p99_ms)
        .field("bulk_p99_ms", s.bulk_p99_ms)
        .field("goodput_rps", s.goodput_rps)
        .field("window_shrinks", s.window_shrinks)
        .field("urgent_cuts", s.urgent_cuts)
        .end_object();
  }
  json.field("qos", "quota-phase")
      .field("smoke", smoke)
      .field("greedy_ok", quota.greedy_ok)
      .field("greedy_rejected", quota.greedy_rejected)
      .field("polite_wrong", quota.polite_wrong)
      .end_object();
  if (!json.write("BENCH_net.json")) {
    std::fprintf(stderr, "failed to write BENCH_net.json\n");
    return 1;
  }

  // Hard gates: bit-correctness always; quota buckets must actually bite;
  // the polite tenant must be untouched. The latency win is asserted only
  // on full runs (smoke boxes are too noisy to gate CI on a percentile).
  bool ok = qon.wrong == 0 && qoff.wrong == 0 && quota.polite_wrong == 0 &&
            quota.greedy_rejected > 0;
  if (!smoke && qon.lat_p99_ms >= qoff.lat_p99_ms) {
    std::printf("\nWARNING: QoS-on latency p99 (%.2f ms) not below QoS-off "
                "(%.2f ms)\n",
                qon.lat_p99_ms, qoff.lat_p99_ms);
  }
  std::printf("\n(acceptance: wrong == 0, quota rejections > 0; full runs "
              "additionally expect\n latency-lane p99 with QoS on below QoS "
              "off under 2x bulk overload)\n");
  return ok ? 0 : 1;
}
