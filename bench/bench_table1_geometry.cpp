// Table 1, geometry rows (n points, n processors):
//
//   paper:   Line of Sight   EREW O(lg n)   CRCW O(lg n)   Scan O(1)
//
// plus the §2.4.1 line-drawing routine, whose step count is O(1) regardless
// of the number and length of the lines.
#include <random>

#include "bench_util.hpp"
#include "src/algo/line_draw.hpp"
#include "src/algo/line_of_sight.hpp"

using namespace scanprim;
using machine::Machine;
using machine::Model;

int main() {
  bench::header("Table 1 / Line of Sight (n altitudes, n processors)");
  bench::row({"n", "EREW steps", "CRCW steps", "Scan steps"});
  for (std::size_t lg = 8; lg <= 20; lg += 3) {
    const std::size_t n = std::size_t{1} << lg;
    std::vector<double> alt(n);
    std::mt19937_64 g(lg);
    for (auto& a : alt) a = static_cast<double>(g() % 2000);
    std::uint64_t steps[3];
    int i = 0;
    for (const Model model : {Model::EREW, Model::CRCW, Model::Scan}) {
      Machine m(model);
      algo::line_of_sight(m, std::span<const double>(alt));
      steps[i++] = m.stats().steps;
    }
    bench::row({bench::fmt_u(n), bench::fmt_u(steps[0]), bench::fmt_u(steps[1]),
                bench::fmt_u(steps[2])});
  }
  std::printf("(Scan column constant = the paper's O(1); EREW grows as lg n)\n");

  bench::header("Figure 9 / Line Drawing (k lines, ~60 pixels each)");
  bench::row({"lines", "pixels", "EREW steps", "Scan steps"});
  for (const std::size_t k : {16u, 256u, 4096u, 65536u}) {
    std::mt19937_64 g(k);
    std::vector<algo::LineSegment> lines(k);
    for (auto& l : lines) {
      l.a = {static_cast<std::int64_t>(g() % 1000),
             static_cast<std::int64_t>(g() % 1000)};
      l.b = {l.a.x + static_cast<std::int64_t>(g() % 60),
             l.a.y + static_cast<std::int64_t>(g() % 60)};
    }
    Machine ms(Model::Scan), me(Model::EREW);
    const auto r = algo::draw_lines(ms, std::span<const algo::LineSegment>(lines));
    algo::draw_lines(me, std::span<const algo::LineSegment>(lines));
    bench::row({bench::fmt_u(k), bench::fmt_u(r.pixels.size()),
                bench::fmt_u(me.stats().steps), bench::fmt_u(ms.stats().steps)});
  }
  std::printf("(steps independent of the number of lines: allocation is O(1))\n");
  return 0;
}
