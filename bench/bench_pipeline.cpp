// Fused vs eager pipeline execution (docs/PIPELINE.md): the same recorded
// programs run through the fusing executor and through an op-by-op plan
// (Executor::Options{.fuse = false}), at n = 2^20 .. 2^24. The fused plan
// must win by cutting passes over memory: a map | +-scan | map chain is two
// blocked passes fused (one below the serial cutoff) versus one-plus per
// stage eager. A second table compares the fused plan itself under the
// chained (single-pass) and two-phase scan engines.
//
// Results go to stdout as a table and to BENCH_pipeline.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <span>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/core/primitives.hpp"
#include "src/core/runtime.hpp"
#include "src/exec/executor.hpp"

namespace scanprim {
namespace {

using U = std::uint32_t;
using bench::best_of_ms;

struct Row {
  const char* workload;
  std::size_t n;
  double fused_ms = 0;
  double eager_ms = 0;
  std::uint64_t fused_dispatches = 0;
  std::uint64_t eager_dispatches = 0;
  bool match = false;

  double speedup() const { return fused_ms > 0 ? eager_ms / fused_ms : 0; }
};

// Time one recorded program under both plans and check the outputs agree.
template <class Build>
Row compare(const char* workload, std::size_t n, int reps, Build build) {
  Row r{workload, n};
  exec::Executor fused;
  exec::Executor eager{exec::Executor::Options{.fuse = false}};
  r.match = fused.run(build()) == eager.run(build());
  r.fused_dispatches = fused.stats().pool_dispatches;
  r.eager_dispatches = eager.stats().pool_dispatches;
  r.fused_ms = best_of_ms(reps, [&] { fused.run(build()); });
  r.eager_ms = best_of_ms(reps, [&] { eager.run(build()); });
  return r;
}

}  // namespace
}  // namespace scanprim

int main() {
  using namespace scanprim;
  bench::header("pipeline executor: fused vs eager (op-by-op) plans");
  bench::row({"workload", "n", "fused ms", "eager ms", "speedup",
              "disp f/e", "match"});

  bench::JsonLog json;
  bool all_match = true;
  const std::size_t sizes[] = {std::size_t{1} << 20, std::size_t{1} << 22,
                               std::size_t{1} << 24};
  for (const std::size_t n : sizes) {
    const int reps = n >= (std::size_t{1} << 24) ? 3 : 5;
    const auto in = bench::random_keys<U>(n, 7 + n, 1u << 20);
    const auto keep = bench::random_keys<std::uint8_t>(n, 11 + n, 2);
    const std::span<const U> s(in);
    const FlagsView kv(keep);

    std::vector<Row> rows;
    // The acceptance workload: map -> +-scan -> map.
    rows.push_back(compare("map_scan_map", n, reps, [&] {
      return exec::source(s) | exec::map([](U v) { return v + 3; }) |
             exec::scan<Plus>() | exec::map([](U v) { return 2 * v; });
    }));
    // Scan feeding a pack (quicksort's rank-then-compact shape).
    rows.push_back(compare("scan_pack", n, reps, [&] {
      return exec::source(s) | exec::scan<Plus>() | exec::pack(kv);
    }));
    // Backward scan with fused arithmetic (split's up-enumerate shape).
    rows.push_back(compare("map_backscan_map", n, reps, [&] {
      return exec::source(s) | exec::map([](U v) { return v & 1; }) |
             exec::backscan<Plus>() | exec::map([](U v) { return v ^ 5; });
    }));

    for (const Row& r : rows) {
      all_match = all_match && r.match;
      bench::row({r.workload, bench::fmt_u(r.n), bench::fmt(r.fused_ms, 3),
                  bench::fmt(r.eager_ms, 3), bench::fmt(r.speedup(), 2),
                  bench::fmt_u(r.fused_dispatches) + "/" +
                      bench::fmt_u(r.eager_dispatches),
                  r.match ? "yes" : "NO"});
      json.field("workload", r.workload)
          .field("n", r.n)
          .field("fused_ms", r.fused_ms)
          .field("eager_ms", r.eager_ms)
          .field("speedup", r.speedup())
          .field("fused_dispatches", r.fused_dispatches)
          .field("eager_dispatches", r.eager_dispatches)
          .field("match", r.match)
          .end_object();
    }
  }

  // The fused split against its eager Fig. 3 formulation (different code
  // paths end to end, so timed separately rather than via compare()).
  for (const std::size_t n : sizes) {
    const int reps = n >= (std::size_t{1} << 24) ? 3 : 5;
    const auto in = bench::random_keys<U>(n, 13 + n, 1u << 20);
    const auto flags = bench::random_keys<std::uint8_t>(n, 17 + n, 2);
    const std::span<const U> s(in);
    const FlagsView fv(flags);
    exec::Executor ex;
    const bool match = exec::fused::split(ex, s, fv) == split(s, fv);
    all_match = all_match && match;
    const double fused_ms =
        best_of_ms(reps, [&] { exec::fused::split(ex, s, fv); });
    const double eager_ms = best_of_ms(reps, [&] { split(s, fv); });
    bench::row({"split", bench::fmt_u(n), bench::fmt(fused_ms, 3),
                bench::fmt(eager_ms, 3), bench::fmt(eager_ms / fused_ms, 2),
                "-", match ? "yes" : "NO"});
    json.field("workload", "split")
        .field("n", n)
        .field("fused_ms", fused_ms)
        .field("eager_ms", eager_ms)
        .field("speedup", eager_ms / fused_ms)
        .field("match", match)
        .end_object();
  }

  // Fused scan groups under both scan engines: the chained engine turns the
  // fused map|scan|map group into one dispatch and ~2n traffic instead of two
  // dispatches and ~3n.
  bench::header("fused scan groups: chained vs two-phase engine");
  bench::row({"workload", "n", "chained ms", "twophase ms", "speedup",
              "disp c/t", "match"});
  for (const std::size_t n : sizes) {
    const int reps = n >= (std::size_t{1} << 24) ? 3 : 5;
    const auto in = bench::random_keys<U>(n, 7 + n, 1u << 20);
    const std::span<const U> s(in);
    const auto workloads = {
        std::pair{"map_scan_map", +[](std::span<const U> v) {
          return exec::source(v) | exec::map([](U x) { return x + 3; }) |
                 exec::scan<Plus>() | exec::map([](U x) { return 2 * x; });
        }},
        std::pair{"map_backscan_map", +[](std::span<const U> v) {
          return exec::source(v) | exec::map([](U x) { return x & 1; }) |
                 exec::backscan<Plus>() | exec::map([](U x) { return x ^ 5; });
        }},
    };
    for (const auto& [name, build] : workloads) {
      const ScanEngine prev = scan_engine();
      exec::Executor ex;
      set_scan_engine(ScanEngine::kChained);
      const auto chained_out = ex.run(build(s));
      const std::uint64_t chained_disp = ex.stats().pool_dispatches;
      const double chained_ms = best_of_ms(reps, [&] { ex.run(build(s)); });
      set_scan_engine(ScanEngine::kTwoPhase);
      const auto twophase_out = ex.run(build(s));
      const std::uint64_t twophase_disp = ex.stats().pool_dispatches;
      const double twophase_ms = best_of_ms(reps, [&] { ex.run(build(s)); });
      set_scan_engine(prev);
      const bool match = chained_out == twophase_out;
      all_match = all_match && match;
      bench::row({name, bench::fmt_u(n), bench::fmt(chained_ms, 3),
                  bench::fmt(twophase_ms, 3),
                  bench::fmt(chained_ms > 0 ? twophase_ms / chained_ms : 0, 2),
                  bench::fmt_u(chained_disp) + "/" + bench::fmt_u(twophase_disp),
                  match ? "yes" : "NO"});
      json.field("workload", std::string("engine_") + name)
          .field("n", n)
          .field("chained_ms", chained_ms)
          .field("twophase_ms", twophase_ms)
          .field("speedup", chained_ms > 0 ? twophase_ms / chained_ms : 0)
          .field("chained_dispatches", chained_disp)
          .field("twophase_dispatches", twophase_disp)
          .field("match", match)
          .end_object();
    }
  }

  if (!json.write("BENCH_pipeline.json")) {
    std::fprintf(stderr, "failed to write BENCH_pipeline.json\n");
    return 1;
  }
  std::printf("\nwrote BENCH_pipeline.json\n");
  return all_match ? 0 : 1;
}
