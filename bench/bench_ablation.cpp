// Ablations of the design choices DESIGN.md calls out:
//   1. segmented scans: direct carry-resetting kernels vs the §3.4
//      two-primitive simulation (the paper claims both are viable; the
//      direct form is the fast path, the simulation the portability story);
//   2. quicksort pivots: first-element vs random (the paper suggests both);
//   3. list ranking: Wyllie vs the work-efficient contraction, wall clock
//      (the serial host feels the Θ(n lg n) vs Θ(n) work directly);
//   4. scan backends: blocked two-phase vs the two-sweep tree (§3.1).
#include <algorithm>
#include <chrono>
#include <numeric>
#include <random>

#include "bench_util.hpp"
#include "src/algo/list_rank.hpp"
#include "src/algo/quicksort.hpp"
#include "src/algo/radix_sort.hpp"
#include "src/circuit/tree_scan.hpp"
#include "src/core/simulate.hpp"

using namespace scanprim;
using Clock = std::chrono::steady_clock;

namespace {

double ms_of(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main() {
  // ---- 1. direct vs simulated segmented scans ---------------------------------
  bench::header("Ablation / segmented +-scan: direct kernel vs section 3.4 "
                "simulation");
  bench::row({"n", "direct ms", "simulated ms", "ratio"});
  std::mt19937_64 rng(42);
  for (std::size_t lg = 14; lg <= 22; lg += 2) {
    const std::size_t n = std::size_t{1} << lg;
    std::vector<std::uint32_t> v(n);
    Flags f(n, 0);
    f[0] = 1;
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<std::uint32_t>(rng() % 1000);
      if (i > 0) f[i] = (rng() % 9) == 0;
    }
    std::vector<std::uint32_t> out(n);
    const auto t0 = Clock::now();
    for (int rep = 0; rep < 5; ++rep) {
      seg_exclusive_scan(std::span<const std::uint32_t>(v), FlagsView(f),
                         std::span<std::uint32_t>(out), Plus<std::uint32_t>{});
    }
    const double direct = ms_of(t0) / 5;
    const auto t1 = Clock::now();
    for (int rep = 0; rep < 5; ++rep) {
      auto sim_out = sim::seg_plus_scan(std::span<const std::uint32_t>(v),
                                        FlagsView(f));
      if (sim_out != out) return 1;  // the two must agree
    }
    const double simulated = ms_of(t1) / 5;
    bench::row({bench::fmt_u(n), bench::fmt(direct, 2),
                bench::fmt(simulated, 2), bench::fmt(simulated / direct, 1)});
  }
  std::printf("(the simulation costs a few primitive scans plus bit surgery\n"
              " per segmented scan — constant factor, as section 3.4 says)\n");

  // ---- 2. quicksort pivot rules -------------------------------------------------
  // n is kept small here: first-element pivots degenerate to Θ(#distinct
  // values) iterations on the organ-pipe input — which is the point.
  bench::header("Ablation / quicksort pivots: first element vs random");
  bench::row({"input", "first iters", "random iters"});
  {
    machine::Machine m;
    const std::size_t n = 1 << 10;
    std::vector<double> uniform(n), organ(n), sawtooth(n);
    for (std::size_t i = 0; i < n; ++i) {
      uniform[i] = static_cast<double>(rng() % 1000000);
      organ[i] = static_cast<double>(i < n / 2 ? i : n - i);
      sawtooth[i] = static_cast<double>(i % 17);
    }
    for (const auto& [name, keys] :
         {std::pair<const char*, std::vector<double>*>{"uniform", &uniform},
          {"organ pipe", &organ},
          {"sawtooth", &sawtooth}}) {
      const auto a = algo::quicksort(m, std::span<const double>(*keys),
                                     algo::PivotRule::First);
      const auto b = algo::quicksort(m, std::span<const double>(*keys),
                                     algo::PivotRule::Random);
      bench::row({name, bench::fmt_u(a.iterations), bench::fmt_u(b.iterations)});
    }
  }

  // ---- 3. list ranking work -----------------------------------------------------
  bench::header("Ablation / list ranking wall clock: Wyllie vs contraction");
  bench::row({"n", "wyllie ms", "contraction ms", "wyl/con"});
  for (std::size_t lg = 14; lg <= 20; lg += 2) {
    const std::size_t n = std::size_t{1} << lg;
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    std::shuffle(perm.begin(), perm.end(), rng);
    std::vector<std::size_t> next(n);
    for (std::size_t i = 0; i + 1 < n; ++i) next[perm[i]] = perm[i + 1];
    next[perm[n - 1]] = perm[n - 1];
    machine::Machine m;
    const auto t0 = Clock::now();
    const auto a = algo::list_rank_wyllie(m, std::span<const std::size_t>(next));
    const double tw = ms_of(t0);
    const auto t1 = Clock::now();
    const auto b =
        algo::list_rank_contract(m, std::span<const std::size_t>(next), 7);
    const double tc = ms_of(t1);
    if (a != b) return 1;
    bench::row({bench::fmt_u(n), bench::fmt(tw, 1), bench::fmt(tc, 1),
                bench::fmt(tw / tc, 2)});
  }
  std::printf("(the host executes total work: the wyllie/contract ratio\n"
              " climbs with lg n — Θ(n lg n) vs Θ(n) — though contraction's\n"
              " larger constant keeps the absolute crossover beyond this\n"
              " sweep on a serial host)\n");

  // ---- 3b. radix sort digit width ------------------------------------------------
  bench::header("Ablation / split radix sort digit width (n = 65536, 16-bit "
                "keys, bit cycles)");
  bench::row({"digit bits", "passes", "bit cycles", "vs 1-bit"});
  {
    const auto keys =
        bench::random_keys<std::uint64_t>(1 << 16, 99, std::uint64_t{1} << 16);
    double base = 0;
    for (const unsigned r : {1u, 2u, 4u, 8u}) {
      machine::Machine m;
      m.bit_cost().field_bits = 16;
      algo::split_radix_sort_digits(m, std::span<const std::uint64_t>(keys),
                                    16, r);
      if (r == 1) base = m.stats().bit_cycles;
      bench::row({bench::fmt_u(r), bench::fmt_u(16 / r),
                  bench::fmt(m.stats().bit_cycles, 0),
                  bench::fmt(m.stats().bit_cycles / base, 2)});
    }
    std::printf("(wider digits trade routed permutes — the expensive op —\n"
                " for extra scans per pass; the sweet spot sits where the\n"
                " 2^r scans cost about one route)\n");
  }

  // ---- 4. scan backends -----------------------------------------------------------
  bench::header("Ablation / scan backends: blocked two-phase vs two-sweep tree");
  bench::row({"n", "blocked ms", "tree ms", "tree/blocked"});
  for (std::size_t lg = 16; lg <= 22; lg += 2) {
    const std::size_t n = std::size_t{1} << lg;
    std::vector<long> v(n), out(n);
    for (auto& x : v) x = static_cast<long>(rng() % 1000);
    const auto t0 = Clock::now();
    for (int rep = 0; rep < 5; ++rep) {
      exclusive_scan(std::span<const long>(v), std::span<long>(out),
                     Plus<long>{});
    }
    const double blocked = ms_of(t0) / 5;
    std::vector<long> out2(n);
    const auto t1 = Clock::now();
    for (int rep = 0; rep < 5; ++rep) {
      circuit::tree_scan(std::span<const long>(v), std::span<long>(out2),
                         Plus<long>{});
    }
    const double tree = ms_of(t1) / 5;
    if (out != out2) return 1;
    bench::row({bench::fmt_u(n), bench::fmt(blocked, 2), bench::fmt(tree, 2),
                bench::fmt(tree / blocked, 1)});
  }
  std::printf("(the tree does 2n operator applications and strided traffic —\n"
              " right for hardware, wrong for a cached CPU; the blocked scan\n"
              " is the library's fast path)\n");
  return 0;
}
