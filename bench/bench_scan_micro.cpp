// Wall-clock microbenchmarks of the raw scan library on the host machine —
// the practical half of the paper's claim that scans should be treated as
// cheap as memory operations. Compares the library's scans against
// std::inclusive_scan and a plain memory pass, across sizes and flavours.
#include <benchmark/benchmark.h>

#include <cstring>
#include <numeric>
#include <random>

#include "src/core/primitives.hpp"
#include "src/core/scan.hpp"
#include "src/core/segmented.hpp"

namespace {

using namespace scanprim;

std::vector<std::int64_t> make_input(std::size_t n) {
  std::mt19937_64 g(42);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(g() & 0xffff);
  return v;
}

void BM_MemoryPass(benchmark::State& state) {
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  std::vector<std::int64_t> out(in.size());
  for (auto _ : state) {
    std::memcpy(out.data(), in.data(), in.size() * sizeof(in[0]));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * in.size() * sizeof(in[0]));
}
BENCHMARK(BM_MemoryPass)->Range(1 << 10, 1 << 22);

void BM_PlusScan(benchmark::State& state) {
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  std::vector<std::int64_t> out(in.size());
  for (auto _ : state) {
    exclusive_scan(std::span<const std::int64_t>(in),
                   std::span<std::int64_t>(out), Plus<std::int64_t>{});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * in.size() * sizeof(in[0]));
}
BENCHMARK(BM_PlusScan)->Range(1 << 10, 1 << 22);

void BM_StdInclusiveScan(benchmark::State& state) {
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  std::vector<std::int64_t> out(in.size());
  for (auto _ : state) {
    std::inclusive_scan(in.begin(), in.end(), out.begin());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * in.size() * sizeof(in[0]));
}
BENCHMARK(BM_StdInclusiveScan)->Range(1 << 10, 1 << 22);

void BM_MaxScan(benchmark::State& state) {
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  std::vector<std::int64_t> out(in.size());
  for (auto _ : state) {
    exclusive_scan(std::span<const std::int64_t>(in),
                   std::span<std::int64_t>(out), Max<std::int64_t>{});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * in.size() * sizeof(in[0]));
}
BENCHMARK(BM_MaxScan)->Range(1 << 12, 1 << 22);

void BM_SegPlusScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto in = make_input(n);
  Flags f(n, 0);
  std::mt19937_64 g(7);
  if (n > 0) f[0] = 1;
  for (std::size_t i = 1; i < n; ++i) f[i] = (g() % 16) == 0;
  std::vector<std::int64_t> out(n);
  for (auto _ : state) {
    seg_exclusive_scan(std::span<const std::int64_t>(in), FlagsView(f),
                       std::span<std::int64_t>(out), Plus<std::int64_t>{});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(in[0]));
}
BENCHMARK(BM_SegPlusScan)->Range(1 << 12, 1 << 22);

void BM_Enumerate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Flags f(n, 0);
  std::mt19937_64 g(9);
  for (auto& x : f) x = g() & 1;
  for (auto _ : state) {
    auto e = enumerate(FlagsView(f));
    benchmark::DoNotOptimize(e.data());
  }
}
BENCHMARK(BM_Enumerate)->Range(1 << 12, 1 << 20);

void BM_Permute(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto in = make_input(n);
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::mt19937_64 g(11);
  std::shuffle(idx.begin(), idx.end(), g);
  std::vector<std::int64_t> out(n);
  for (auto _ : state) {
    permute(std::span<const std::int64_t>(in),
            std::span<const std::size_t>(idx), std::span<std::int64_t>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(in[0]));
}
BENCHMARK(BM_Permute)->Range(1 << 12, 1 << 20);

void BM_Split(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto in = make_input(n);
  Flags f(n);
  for (std::size_t i = 0; i < n; ++i) f[i] = in[i] & 1;
  for (auto _ : state) {
    auto s = split(std::span<const std::int64_t>(in), FlagsView(f));
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_Split)->Range(1 << 12, 1 << 20);

}  // namespace

BENCHMARK_MAIN();
