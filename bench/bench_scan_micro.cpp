// Wall-clock microbenchmarks of the raw scan library on the host machine —
// the practical half of the paper's claim that scans should be treated as
// cheap as memory operations. Compares the library's scans against
// std::inclusive_scan and a plain memory pass, across sizes and flavours,
// and the chained engine against the two-phase engine at n = 2^20..2^26
// (results also written to BENCH_scan_engine.json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>
#include <random>

#include "bench/bench_util.hpp"
#include "src/core/primitives.hpp"
#include "src/core/runtime.hpp"
#include "src/core/scan.hpp"
#include "src/core/segmented.hpp"
#include "src/core/simd/simd.hpp"

namespace {

using namespace scanprim;

std::vector<std::int64_t> make_input(std::size_t n) {
  std::mt19937_64 g(42);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = static_cast<std::int64_t>(g() & 0xffff);
  return v;
}

void BM_MemoryPass(benchmark::State& state) {
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  std::vector<std::int64_t> out(in.size());
  for (auto _ : state) {
    std::memcpy(out.data(), in.data(), in.size() * sizeof(in[0]));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * in.size() * sizeof(in[0]));
}
BENCHMARK(BM_MemoryPass)->Range(1 << 10, 1 << 22);

void BM_PlusScan(benchmark::State& state) {
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  std::vector<std::int64_t> out(in.size());
  for (auto _ : state) {
    exclusive_scan(std::span<const std::int64_t>(in),
                   std::span<std::int64_t>(out), Plus<std::int64_t>{});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * in.size() * sizeof(in[0]));
}
BENCHMARK(BM_PlusScan)->Range(1 << 10, 1 << 22);

void BM_PlusScanTwoPhase(benchmark::State& state) {
  const ScanEngine prev = scan_engine();
  set_scan_engine(ScanEngine::kTwoPhase);
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  std::vector<std::int64_t> out(in.size());
  for (auto _ : state) {
    exclusive_scan(std::span<const std::int64_t>(in),
                   std::span<std::int64_t>(out), Plus<std::int64_t>{});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * in.size() * sizeof(in[0]));
  set_scan_engine(prev);
}
BENCHMARK(BM_PlusScanTwoPhase)->Range(1 << 10, 1 << 22);

void BM_StdInclusiveScan(benchmark::State& state) {
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  std::vector<std::int64_t> out(in.size());
  for (auto _ : state) {
    std::inclusive_scan(in.begin(), in.end(), out.begin());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * in.size() * sizeof(in[0]));
}
BENCHMARK(BM_StdInclusiveScan)->Range(1 << 10, 1 << 22);

void BM_MaxScan(benchmark::State& state) {
  const auto in = make_input(static_cast<std::size_t>(state.range(0)));
  std::vector<std::int64_t> out(in.size());
  for (auto _ : state) {
    exclusive_scan(std::span<const std::int64_t>(in),
                   std::span<std::int64_t>(out), Max<std::int64_t>{});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * in.size() * sizeof(in[0]));
}
BENCHMARK(BM_MaxScan)->Range(1 << 12, 1 << 22);

void BM_SegPlusScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto in = make_input(n);
  Flags f(n, 0);
  std::mt19937_64 g(7);
  if (n > 0) f[0] = 1;
  for (std::size_t i = 1; i < n; ++i) f[i] = (g() % 16) == 0;
  std::vector<std::int64_t> out(n);
  for (auto _ : state) {
    seg_exclusive_scan(std::span<const std::int64_t>(in), FlagsView(f),
                       std::span<std::int64_t>(out), Plus<std::int64_t>{});
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(in[0]));
}
BENCHMARK(BM_SegPlusScan)->Range(1 << 12, 1 << 22);

void BM_Enumerate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Flags f(n, 0);
  std::mt19937_64 g(9);
  for (auto& x : f) x = g() & 1;
  for (auto _ : state) {
    auto e = enumerate(FlagsView(f));
    benchmark::DoNotOptimize(e.data());
  }
}
BENCHMARK(BM_Enumerate)->Range(1 << 12, 1 << 20);

void BM_Permute(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto in = make_input(n);
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::mt19937_64 g(11);
  std::shuffle(idx.begin(), idx.end(), g);
  std::vector<std::int64_t> out(n);
  for (auto _ : state) {
    permute(std::span<const std::int64_t>(in),
            std::span<const std::size_t>(idx), std::span<std::int64_t>(out));
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * n * sizeof(in[0]));
}
BENCHMARK(BM_Permute)->Range(1 << 12, 1 << 20);

void BM_Split(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto in = make_input(n);
  Flags f(n);
  for (std::size_t i = 0; i < n; ++i) f[i] = in[i] & 1;
  for (auto _ : state) {
    auto s = split(std::span<const std::int64_t>(in), FlagsView(f));
    benchmark::DoNotOptimize(s.data());
  }
}
BENCHMARK(BM_Split)->Range(1 << 12, 1 << 20);

// --- chained vs two-phase engine sweep ---------------------------------------
// Times each +-scan flavour under both engines at n = 2^20..2^26, counts
// actual pool dispatch rounds via ThreadPool::dispatch_count(), checks the
// engines agree bit-for-bit, and writes BENCH_scan_engine.json.

struct EngineRow {
  const char* op;
  std::size_t n;
  double chained_ms = 0;
  double twophase_ms = 0;
  std::uint64_t chained_dispatches = 0;
  std::uint64_t twophase_dispatches = 0;
  bool match = false;

  double speedup() const {
    return chained_ms > 0 ? twophase_ms / chained_ms : 0;
  }
};

template <class Run>
EngineRow compare_engines(const char* op, std::size_t n, int reps, Run run) {
  EngineRow r{op, n};
  std::vector<std::int64_t> chained(n), twophase(n);
  const ScanEngine prev = scan_engine();

  const auto timed = [&](ScanEngine e, std::span<std::int64_t> out) {
    set_scan_engine(e);
    return bench::time_once_ms([&] { run(out); });
  };
  // Warmup passes also count the dispatch rounds each engine needs.
  set_scan_engine(ScanEngine::kChained);
  const std::uint64_t d0 = thread::pool().dispatch_count();
  run(std::span<std::int64_t>(chained));
  r.chained_dispatches = thread::pool().dispatch_count() - d0;
  set_scan_engine(ScanEngine::kTwoPhase);
  const std::uint64_t d1 = thread::pool().dispatch_count();
  run(std::span<std::int64_t>(twophase));
  r.twophase_dispatches = thread::pool().dispatch_count() - d1;
  r.match = chained == twophase;
  // Interleave the engines rep by rep so drift in background host load
  // lands on both sides equally; report best-of.
  r.chained_ms = r.twophase_ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    r.chained_ms = std::min(
        r.chained_ms,
        timed(ScanEngine::kChained, std::span<std::int64_t>(chained)));
    r.twophase_ms = std::min(
        r.twophase_ms,
        timed(ScanEngine::kTwoPhase, std::span<std::int64_t>(twophase)));
  }
  set_scan_engine(prev);
  return r;
}

void run_engine_sweep(bench::JsonLog& json) {
  bench::header("scan engine: chained (single-pass) vs two-phase blocked");
  std::printf("workers=%zu  tile=%zu  simd=%s\n", thread::num_workers(),
              detail::chained_tile_elements<std::int64_t>(),
              simd::tier_name(simd::active_tier()));
  bench::row({"op", "n", "chained ms", "twophase ms", "speedup", "disp c/t",
              "match"});

  const std::size_t sizes[] = {std::size_t{1} << 20, std::size_t{1} << 22,
                               std::size_t{1} << 24, std::size_t{1} << 26};
  for (const std::size_t n : sizes) {
    const int reps = n >= (std::size_t{1} << 24) ? 5 : 7;
    const auto in = make_input(n);
    const std::span<const std::int64_t> s(in);
    Flags f(n, 0);
    std::mt19937_64 g(7);
    f[0] = 1;
    for (std::size_t i = 1; i < n; ++i) f[i] = (g() % 4096) == 0;

    std::vector<EngineRow> rows;
    rows.push_back(compare_engines("+-scan", n, reps, [&](auto out) {
      exclusive_scan(s, out, Plus<std::int64_t>{});
    }));
    rows.push_back(compare_engines("+-backscan", n, reps, [&](auto out) {
      backward_exclusive_scan(s, out, Plus<std::int64_t>{});
    }));
    rows.push_back(compare_engines("seg-+-scan", n, reps, [&](auto out) {
      seg_exclusive_scan(s, FlagsView(f), out, Plus<std::int64_t>{});
    }));

    for (const EngineRow& r : rows) {
      bench::row({r.op, bench::fmt_u(r.n), bench::fmt(r.chained_ms, 3),
                  bench::fmt(r.twophase_ms, 3), bench::fmt(r.speedup(), 2),
                  bench::fmt_u(r.chained_dispatches) + "/" +
                      bench::fmt_u(r.twophase_dispatches),
                  r.match ? "yes" : "NO"});
      json.field("op", r.op)
          .field("n", r.n)
          .field("workers", static_cast<std::uint64_t>(thread::num_workers()))
          .field("simd", simd::tier_name(simd::active_tier()))
          .field("chained_ms", r.chained_ms)
          .field("twophase_ms", r.twophase_ms)
          .field("speedup", r.speedup())
          .field("chained_dispatches", r.chained_dispatches)
          .field("twophase_dispatches", r.twophase_dispatches)
          .field("match", r.match)
          .end_object();
    }
  }
}

// --- chained tile-size sweep -------------------------------------------------
// The lookback protocol's one tunable: kChainedTileBytes trades rescan
// locality (small tiles re-read from L1/L2) against per-tile status-word
// traffic and lookback depth (large tiles amortise the protocol). This
// sweep runs the real p>1 configuration — SIMD tile kernels under the
// lookback protocol on the full worker pool — across tile sizes, verifying
// each result against the library scan. Rows land in BENCH_scan_engine.json
// (op = "tile-sweep") next to the engine comparison they explain.

void run_tile_sweep(bench::JsonLog& json) {
  bench::header("chained tile sweep: SIMD x lookback on the worker pool");
  std::printf("workers=%zu  simd=%s  current tile=%zu KiB\n",
              thread::num_workers(), simd::tier_name(simd::active_tier()),
              detail::kChainedTileBytes / 1024);
  bench::row({"tile KiB", "n", "ms", "GB/s", "vs current", "match"});

  const std::size_t sizes[] = {std::size_t{1} << 22, std::size_t{1} << 24,
                               std::size_t{1} << 26};
  const std::size_t tile_bytes[] = {8u << 10,   16u << 10, 32u << 10,
                                    64u << 10,  128u << 10, 256u << 10,
                                    512u << 10};
  for (const std::size_t n : sizes) {
    const int reps = n >= (std::size_t{1} << 26) ? 5 : 7;
    const auto in = make_input(n);
    const std::span<const std::int64_t> s(in);
    std::vector<std::int64_t> out(n), ref(n);
    exclusive_scan(s, std::span<std::int64_t>(ref), Plus<std::int64_t>{});

    double current_ms = 0;
    std::vector<std::pair<std::size_t, double>> timings;
    for (const std::size_t tb : tile_bytes) {
      const std::size_t tile = tb / sizeof(std::int64_t);
      const auto run = [&] {
        detail::chained_scan_run<std::int64_t>(
            n, tile, /*backward=*/false, std::int64_t{0},
            Plus<std::int64_t>{},
            [&](std::size_t, std::size_t b, std::size_t c, std::int64_t* agg) {
              *agg = detail::sequential_reduce(s.subspan(b, c),
                                               Plus<std::int64_t>{});
              return false;
            },
            [&](std::size_t, std::size_t b, std::size_t c, std::int64_t carry) {
              detail::sequential_exclusive_scan(
                  s.subspan(b, c),
                  std::span<std::int64_t>(out).subspan(b, c),
                  Plus<std::int64_t>{}, carry);
            });
      };
      run();  // warmup + correctness
      const bool match = out == ref;
      double ms = 1e300;
      for (int i = 0; i < reps; ++i) ms = std::min(ms, bench::time_once_ms(run));
      if (tb == detail::kChainedTileBytes) current_ms = ms;
      timings.emplace_back(tb, ms);
      if (!match) {
        bench::row({bench::fmt_u(tb / 1024), bench::fmt_u(n), bench::fmt(ms, 3),
                    "-", "-", "NO"});
        continue;
      }
      json.field("op", "tile-sweep")
          .field("n", n)
          .field("tile_bytes", tb)
          .field("workers", static_cast<std::uint64_t>(thread::num_workers()))
          .field("simd", simd::tier_name(simd::active_tier()))
          .field("chained_ms", ms)
          .field("match", match)
          .end_object();
    }
    for (const auto& [tb, ms] : timings) {
      const double gbs =
          static_cast<double>(n * sizeof(std::int64_t)) / (ms * 1e6);
      bench::row({bench::fmt_u(tb / 1024), bench::fmt_u(n), bench::fmt(ms, 3),
                  bench::fmt(gbs, 2),
                  current_ms > 0 ? bench::fmt(ms / current_ms, 2) : "-",
                  "yes"});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonLog json;
  run_engine_sweep(json);
  run_tile_sweep(json);
  if (!json.write("BENCH_scan_engine.json")) {
    std::fprintf(stderr, "failed to write BENCH_scan_engine.json\n");
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
