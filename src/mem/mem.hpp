// src/mem — the process-wide memory subsystem (docs/MEM.md).
//
// Scan is memory-bandwidth-bound: once the kernel is single-pass decoupled
// lookback, the remaining wins come from where the bytes live. This layer
// gives every hot allocation site in the stack — executor temporaries,
// chained tile descriptors, serve batch snapshots — one answer:
//
//   - Size-classed, THREAD-LOCAL arenas. Requests round up to a power-of-two
//     class (4 KiB .. 64 MiB); bigger blocks round to 2 MiB multiples and
//     recycle under a bounded best-fit (a block is only reused for a request
//     of at least half its size, so a tiny request can never pin a huge
//     recycled buffer). Freed blocks go to the CALLING thread's free list —
//     no lock anywhere on the alloc/free path — and every block carries a
//     self-describing header, so a block may be allocated on one thread and
//     freed on another.
//   - Huge pages. Blocks big enough to be mmap-backed take the policy of
//     SCANPRIM_HUGEPAGES={0,thp,hugetlb}: `thp` (the default) advises
//     MADV_HUGEPAGE, `hugetlb` tries an explicit MAP_HUGETLB mapping and
//     falls back to thp-advised anonymous memory when the pool is empty.
//     Grants and denials are counted.
//   - NUMA placement. First-touch is the default policy (the page lands on
//     the node of the worker that first writes it; SCANPRIM_PIN=1 pins pool
//     workers round-robin so that touch is stable). SCANPRIM_NUMA=interleave
//     spreads pages across nodes via libnuma when the build found it
//     (SCANPRIM_HAVE_NUMA; clean no-op otherwise). Per-node live bytes are
//     counted when the node can be determined.
//   - A trim / high-water policy: a thread's free list is capped
//     (SCANPRIM_MEM_TRIM bytes, default 256 MiB); crossing the cap releases
//     the largest free blocks back to the OS, and trim() does so on demand.
//   - Counters for all of it — live/peak/free-list bytes, hits/misses,
//     huge grants/denials, per-node bytes — exported through the obs
//     registry as scanprim_mem_* Prometheus series (docs/OBS.md).
//
// Allocation failures (including the injectable `mem.alloc` fault point,
// docs/FAULTS.md) throw std::bad_alloc or fault::Injected; both derive from
// paths the serve batcher's bisection recovery already isolates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

namespace scanprim::mem {

// --- policy ------------------------------------------------------------------

/// Large-block page-size policy (SCANPRIM_HUGEPAGES).
enum class HugePolicy : int {
  kOff = 0,      ///< plain 4 KiB pages, no advice
  kThp = 1,      ///< madvise(MADV_HUGEPAGE) on mmap-backed blocks (default)
  kHugetlb = 2,  ///< try MAP_HUGETLB, fall back to kThp behaviour on denial
};

/// Large-block placement policy (SCANPRIM_NUMA).
enum class NumaPolicy : int {
  kFirstTouch = 0,  ///< pages land where first written (default)
  kInterleave = 1,  ///< round-robin pages across nodes (libnuma; else no-op)
};

/// The active policies. Initialised from the environment on first use;
/// the setters override (benches compare THP on/off in one process, tests
/// pin a policy regardless of the ambient environment).
HugePolicy huge_policy();
void set_huge_policy(HugePolicy p);
NumaPolicy numa_policy();
void set_numa_policy(NumaPolicy p);

/// Whether ThreadPool workers pin themselves round-robin across CPUs
/// (SCANPRIM_PIN=1; default off). Read once by the pool at worker start.
bool pin_workers();

/// Per-thread free-list high water in bytes (SCANPRIM_MEM_TRIM). Crossing
/// it on a free releases largest-first until back under.
std::size_t trim_high_water();
void set_trim_high_water(std::size_t bytes);

/// Parse a SCANPRIM_HUGEPAGES-style spec: "0" / "off" / "false" / "none"
/// selects kOff, "hugetlb" kHugetlb; everything else — "thp", "1", "on",
/// null/unset, garbage — the kThp default.
HugePolicy sanitize_huge_spec(const char* spec);

/// Parse a SCANPRIM_NUMA-style spec: "interleave" selects kInterleave;
/// everything else (including null/unset) the kFirstTouch default.
NumaPolicy sanitize_numa_spec(const char* spec);

/// True when the build linked libnuma AND the running system supports it
/// (numa_available() >= 0). Interleave requests are silent no-ops otherwise.
bool numa_supported();

/// Configured NUMA nodes (always >= 1; 1 when libnuma is absent).
std::size_t numa_node_count();

/// Pin the calling thread to CPU `index % hardware_concurrency`. Returns
/// false (doing nothing) off-Linux or when the kernel refuses.
bool pin_thread_to_cpu(std::size_t index);

// --- arena -------------------------------------------------------------------

namespace detail {
struct BlockHeader;  // the 64-byte self-describing prefix of every block
}

/// One size-classed arena. NOT thread-safe: an instance belongs to one
/// thread (use local_arena() / the free functions for the calling thread's
/// instance; standalone instances are for tests). deallocate() accepts
/// blocks allocated by ANY arena — every block's header is self-describing —
/// and files them in this instance's free lists.
class Arena {
 public:
  Arena() = default;
  ~Arena();  ///< releases every free-listed block to the OS

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// A 64-byte-aligned block of at least `bytes` usable bytes. `*reused`
  /// (when non-null) reports whether a free-listed block was recycled (an
  /// arena hit) instead of mapped fresh. Throws std::bad_alloc when the OS
  /// refuses, fault::Injected when the `mem.alloc` point is armed.
  std::byte* allocate(std::size_t bytes, bool* reused = nullptr);

  /// Return `p` (a pointer allocate() returned, from this or any arena) to
  /// this arena's free list. Crossing the high water releases largest-first.
  void deallocate(std::byte* p) noexcept;

  /// Release free-listed blocks, largest first, until at most `keep_bytes`
  /// remain listed. Returns the bytes released to the OS.
  std::size_t trim(std::size_t keep_bytes = 0) noexcept;

  /// Bytes / blocks currently free-listed in this arena.
  std::size_t free_bytes() const noexcept { return free_bytes_; }
  std::size_t free_blocks() const noexcept;

 private:
  static constexpr std::size_t kClasses = 15;  // 2^12 .. 2^26

  detail::BlockHeader* pop_fit(std::size_t usable, std::size_t cls) noexcept;
  detail::BlockHeader* pop_largest() noexcept;
  void maybe_trim() noexcept;

  detail::BlockHeader* classes_[kClasses] = {};  ///< exact-class lists
  std::vector<detail::BlockHeader*> large_;      ///< > 64 MiB blocks, best-fit
  std::size_t free_bytes_ = 0;
};

/// The calling thread's arena (created on first use, free lists released at
/// thread exit). Blocks may outlive the thread: the header says how to
/// unmap, so another thread's deallocate() handles them.
Arena& local_arena();

/// allocate/deallocate/trim on the calling thread's arena.
std::byte* allocate(std::size_t bytes, bool* reused = nullptr);
void deallocate(std::byte* p) noexcept;
std::size_t trim_local(std::size_t keep_bytes = 0) noexcept;

/// Usable bytes of a live block returned by allocate() (its class size —
/// at least what was asked for). Asserts on a pointer the subsystem does
/// not own.
std::size_t usable_bytes(const std::byte* p) noexcept;

// --- counters ----------------------------------------------------------------

/// Process-wide snapshot of the subsystem's counters (the same numbers the
/// obs collector renders as scanprim_mem_* series).
struct Counters {
  std::uint64_t live_bytes = 0;      ///< usable bytes handed out, not yet freed
  std::uint64_t peak_bytes = 0;      ///< high-water of live_bytes
  std::uint64_t freelist_bytes = 0;  ///< usable bytes parked across all arenas
  std::uint64_t arena_hits = 0;      ///< allocations served from a free list
  std::uint64_t arena_misses = 0;    ///< allocations that went to the OS
  std::uint64_t os_allocs = 0;       ///< blocks mapped/newed from the OS
  std::uint64_t os_frees = 0;        ///< blocks released back to the OS
  std::uint64_t huge_grants = 0;     ///< MAP_HUGETLB or MADV_HUGEPAGE honoured
  std::uint64_t huge_denials = 0;    ///< ... refused (fell back gracefully)
  std::uint64_t trim_released = 0;   ///< bytes released by trim / high water
  /// Bytes currently held from the OS (live + free-listed) attributed to
  /// the NUMA node of the allocating CPU. One entry per node observed; all
  /// zero-attributed to node 0 when the node cannot be determined.
  std::vector<std::uint64_t> node_bytes;
};
Counters counters();

// --- typed helpers -----------------------------------------------------------

/// RAII typed array on the calling thread's arena. Elements are
/// default-constructed on reset() and destroyed (for non-trivial T) on
/// release; T may be at most 64-byte aligned. ChainedScratch keeps its
/// tile descriptors in one.
template <class T>
class ArenaArray {
  static_assert(alignof(T) <= 64, "arena blocks are 64-byte aligned");

 public:
  ArenaArray() = default;
  explicit ArenaArray(std::size_t n) { reset(n); }
  ~ArenaArray() { release(); }

  ArenaArray(ArenaArray&& o) noexcept : p_(o.p_), n_(o.n_) {
    o.p_ = nullptr;
    o.n_ = 0;
  }
  ArenaArray& operator=(ArenaArray&& o) noexcept {
    if (this != &o) {
      release();
      p_ = o.p_;
      n_ = o.n_;
      o.p_ = nullptr;
      o.n_ = 0;
    }
    return *this;
  }
  ArenaArray(const ArenaArray&) = delete;
  ArenaArray& operator=(const ArenaArray&) = delete;

  /// Replace the storage with `n` default-constructed elements. The old
  /// block goes back to the arena first, so growing re-uses it for the
  /// next caller of its class.
  void reset(std::size_t n) {
    release();
    if (n == 0) return;
    std::byte* raw = mem::allocate(n * sizeof(T));
    T* p = reinterpret_cast<T*>(raw);
    std::size_t built = 0;
    try {
      for (; built < n; ++built) ::new (static_cast<void*>(p + built)) T();
    } catch (...) {
      while (built > 0) p[--built].~T();
      mem::deallocate(raw);
      throw;
    }
    p_ = p;
    n_ = n;
  }

  void release() noexcept {
    if (p_ != nullptr) {
      if constexpr (!std::is_trivially_destructible_v<T>) {
        for (std::size_t i = n_; i > 0; --i) p_[i - 1].~T();
      }
      mem::deallocate(reinterpret_cast<std::byte*>(p_));
      p_ = nullptr;
      n_ = 0;
    }
  }

  T* data() noexcept { return p_; }
  const T* data() const noexcept { return p_; }
  std::size_t size() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  T& operator[](std::size_t i) noexcept { return p_[i]; }
  const T& operator[](std::size_t i) const noexcept { return p_[i]; }

 private:
  T* p_ = nullptr;
  std::size_t n_ = 0;
};

/// A std allocator over the calling thread's arena, for containers whose
/// backing store should recycle through the size classes (the serve
/// batcher's snapshot and staging vectors). All instances are
/// interchangeable: memory allocated through one may be deallocated through
/// another (it files into the then-calling thread's free list).
template <class T>
class ArenaAllocator {
  static_assert(alignof(T) <= 64, "arena blocks are 64-byte aligned");

 public:
  using value_type = T;
  using is_always_equal = std::true_type;

  ArenaAllocator() noexcept = default;
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return reinterpret_cast<T*>(mem::allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    mem::deallocate(reinterpret_cast<std::byte*>(p));
  }

  template <class U>
  bool operator==(const ArenaAllocator<U>&) const noexcept {
    return true;
  }
};

/// std::vector whose heap lives in the size-classed arenas.
template <class T>
using Vector = std::vector<T, ArenaAllocator<T>>;

}  // namespace scanprim::mem
