// Implementation notes (docs/MEM.md):
//
//   - Every block is [64-byte header][usable bytes]; the header records how
//     the block was obtained (aligned new / mmap / hugetlb mmap), its class,
//     its mapped length, and the NUMA node it was attributed to — so any
//     thread can free or unmap it without consulting the allocating arena.
//   - Classes 2^12..2^26 match exactly (pop the head, O(1)); bigger blocks
//     round to 2 MiB multiples and recycle under a bounded best-fit: the
//     smallest free block that fits, and only if it is at most twice the
//     request — a tiny request can never pin an arbitrarily large recycled
//     buffer (the first-fit bloat exec::BufferArena used to have).
//   - Blocks below 256 KiB come from aligned operator new (page policy is
//     irrelevant at that size and malloc's fast paths are fine); larger
//     blocks are mmap'd so huge-page advice and NUMA binding apply to whole
//     mappings.
//   - All counters are process-wide relaxed atomics; the obs collector
//     renders them under the registry mutex at scrape time.
#ifndef _GNU_SOURCE
#define _GNU_SOURCE 1  // sched_setaffinity / CPU_SET with -std=c++20
#endif

#include "src/mem/mem.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cctype>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

#include "src/core/env.hpp"
#include "src/core/runtime.hpp"
#include "src/fault/fault.hpp"
#include "src/obs/registry.hpp"

#if defined(__linux__)
#include <sched.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#if defined(SCANPRIM_HAVE_NUMA)
#include <numa.h>
#endif

namespace scanprim::mem {

namespace {

constexpr std::size_t kAlign = 64;
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kMinClassLog = 12;           // 4 KiB
constexpr std::size_t kMaxClassLog = 26;           // 64 MiB
constexpr std::size_t kMmapThreshold = 1u << 18;   // >= 256 KiB blocks mmap
constexpr std::size_t kHugeChunk = 2u << 20;       // 2 MiB
constexpr std::uint32_t kLargeClass = 0xffffffffu;
constexpr std::uint64_t kMagicLive = 0x6d656d4c49564531ull;  // "memLIVE1"
constexpr std::uint64_t kMagicFree = 0x6d656d4652454531ull;  // "memFREE1"

enum BlockKind : std::uint32_t {
  kKindNew = 0,      // aligned operator new
  kKindMmap = 1,     // anonymous mmap (THP-advised or plain)
  kKindHugetlb = 2,  // MAP_HUGETLB mmap
};

constexpr std::size_t kMaxNodes = 64;

// Process-wide counters (exported by the obs collector below).
std::atomic<std::uint64_t> g_live{0};
std::atomic<std::uint64_t> g_peak{0};
std::atomic<std::uint64_t> g_freelist{0};
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_misses{0};
std::atomic<std::uint64_t> g_os_allocs{0};
std::atomic<std::uint64_t> g_os_frees{0};
std::atomic<std::uint64_t> g_huge_grants{0};
std::atomic<std::uint64_t> g_huge_denials{0};
std::atomic<std::uint64_t> g_trim_released{0};
std::atomic<std::uint64_t> g_node_bytes[kMaxNodes] = {};
std::atomic<std::size_t> g_top_node{0};  ///< highest node index observed

void add_live(std::size_t usable) {
  const std::uint64_t now =
      g_live.fetch_add(usable, std::memory_order_relaxed) + usable;
  std::uint64_t peak = g_peak.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_peak.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

/// NUMA node of the CPU this thread runs on right now; 0 when the kernel
/// cannot say. Used only to attribute per-node byte counters.
std::size_t current_node() noexcept {
#if defined(__linux__) && defined(SYS_getcpu)
  unsigned cpu = 0, node = 0;
  if (::syscall(SYS_getcpu, &cpu, &node, nullptr) == 0) {
    return node < kMaxNodes ? node : kMaxNodes - 1;
  }
#endif
  return 0;
}

void track_node_alloc(std::size_t node, std::size_t usable) {
  g_node_bytes[node].fetch_add(usable, std::memory_order_relaxed);
  std::size_t top = g_top_node.load(std::memory_order_relaxed);
  while (node > top && !g_top_node.compare_exchange_weak(
                           top, node, std::memory_order_relaxed)) {
  }
}

std::string lowercase_trimmed(const char* spec) {
  if (spec == nullptr) return {};
  std::string s(spec);
  const auto is_ws = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_ws(static_cast<unsigned char>(s.front()))) {
    s.erase(s.begin());
  }
  while (!s.empty() && is_ws(static_cast<unsigned char>(s.back()))) s.pop_back();
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

struct MemConfig {
  std::atomic<int> huge{static_cast<int>(HugePolicy::kThp)};
  std::atomic<int> numa{static_cast<int>(NumaPolicy::kFirstTouch)};
  std::atomic<std::size_t> trim{std::size_t{256} << 20};
  bool pin = false;
};

MemConfig& cfg() {
  static MemConfig c;
  static std::once_flag once;
  std::call_once(once, [] {
    c.huge.store(env::choice_or("SCANPRIM_HUGEPAGES",
                                {{"0", static_cast<int>(HugePolicy::kOff)},
                                 {"off", static_cast<int>(HugePolicy::kOff)},
                                 {"false", static_cast<int>(HugePolicy::kOff)},
                                 {"none", static_cast<int>(HugePolicy::kOff)},
                                 {"thp", static_cast<int>(HugePolicy::kThp)},
                                 {"hugetlb",
                                  static_cast<int>(HugePolicy::kHugetlb)}},
                                static_cast<int>(HugePolicy::kThp)),
                 std::memory_order_relaxed);
    c.numa.store(
        env::choice_or("SCANPRIM_NUMA",
                       {{"firsttouch", static_cast<int>(NumaPolicy::kFirstTouch)},
                        {"interleave", static_cast<int>(NumaPolicy::kInterleave)},
                        {"interleaved",
                         static_cast<int>(NumaPolicy::kInterleave)}},
                       static_cast<int>(NumaPolicy::kFirstTouch)),
        std::memory_order_relaxed);
    c.trim.store(env::size_or("SCANPRIM_MEM_TRIM", std::size_t{256} << 20,
                              std::size_t{1} << 16, std::size_t{1} << 40),
                 std::memory_order_relaxed);
    c.pin = env::flag_or("SCANPRIM_PIN", false);
  });
  return c;
}

/// Register the scanprim_mem_* collector once, lazily (first allocation or
/// first counters() call). Never unregistered: the counters are process
/// globals and the registry is intentionally leaked.
void ensure_collector() {
  static std::once_flag once;
  std::call_once(once, [] {
    obs::register_collector([](std::string& out) {
      const auto c = [&](std::string_view name, std::uint64_t v) {
        obs::append_counter(out, name, v);
      };
      c("scanprim_mem_live_bytes", g_live.load(std::memory_order_relaxed));
      c("scanprim_mem_peak_bytes", g_peak.load(std::memory_order_relaxed));
      c("scanprim_mem_freelist_bytes",
        g_freelist.load(std::memory_order_relaxed));
      c("scanprim_mem_arena_hits_total",
        g_hits.load(std::memory_order_relaxed));
      c("scanprim_mem_arena_misses_total",
        g_misses.load(std::memory_order_relaxed));
      c("scanprim_mem_os_allocs_total",
        g_os_allocs.load(std::memory_order_relaxed));
      c("scanprim_mem_os_frees_total",
        g_os_frees.load(std::memory_order_relaxed));
      c("scanprim_mem_huge_grants_total",
        g_huge_grants.load(std::memory_order_relaxed));
      c("scanprim_mem_huge_denials_total",
        g_huge_denials.load(std::memory_order_relaxed));
      c("scanprim_mem_trim_released_bytes_total",
        g_trim_released.load(std::memory_order_relaxed));
      const std::size_t top = g_top_node.load(std::memory_order_relaxed);
      for (std::size_t n = 0; n <= top; ++n) {
        obs::append_counter(
            out, "scanprim_mem_node_bytes{node=\"" + std::to_string(n) + "\"}",
            g_node_bytes[n].load(std::memory_order_relaxed));
      }
    });
  });
}

std::size_t round_up(std::size_t v, std::size_t to) {
  return (v + to - 1) / to * to;
}

/// Class index and usable size for a request. kLargeClass for blocks above
/// the largest class; their usable size rounds to 2 MiB multiples.
void classify(std::size_t bytes, std::uint32_t* cls, std::size_t* usable) {
  std::size_t log = kMinClassLog;
  while (log <= kMaxClassLog && (std::size_t{1} << log) < bytes) ++log;
  if (log <= kMaxClassLog) {
    *cls = static_cast<std::uint32_t>(log - kMinClassLog);
    *usable = std::size_t{1} << log;
    return;
  }
  *cls = kLargeClass;
  *usable = round_up(bytes, kHugeChunk);
}

}  // namespace

namespace detail {

struct alignas(64) BlockHeader {
  std::uint64_t magic = 0;
  std::uint64_t usable = 0;  ///< bytes the caller may use (class size)
  std::uint64_t mapped = 0;  ///< bytes reserved from the OS, header included
  std::uint32_t kind = kKindNew;
  std::uint32_t cls = 0;  ///< class index, or kLargeClass
  std::int32_t node = 0;  ///< NUMA node attributed at OS allocation
  std::uint32_t pad = 0;
  BlockHeader* next = nullptr;  ///< free-list link
};
static_assert(sizeof(BlockHeader) == kHeaderBytes);

}  // namespace detail

using detail::BlockHeader;

namespace {

std::byte* data_of(BlockHeader* h) {
  return reinterpret_cast<std::byte*>(h) + kHeaderBytes;
}

BlockHeader* header_of(const std::byte* p) {
  return reinterpret_cast<BlockHeader*>(
      const_cast<std::byte*>(p - kHeaderBytes));
}

void numa_apply(void* base, std::size_t len) {
  (void)base;
  (void)len;
#if defined(SCANPRIM_HAVE_NUMA)
  if (numa_policy() == NumaPolicy::kInterleave && numa_supported() &&
      numa_node_count() > 1) {
    ::numa_interleave_memory(base, len, ::numa_all_nodes_ptr);
  }
#endif
}

/// Map (or new) a fresh block of exactly `usable` bytes plus the header,
/// applying the huge-page and NUMA policies. Throws std::bad_alloc when the
/// OS refuses the final fallback.
BlockHeader* os_alloc(std::size_t usable, std::uint32_t cls) {
  std::size_t mapped = usable + kHeaderBytes;
  void* base = nullptr;
  std::uint32_t kind = kKindNew;
#if defined(__linux__)
  if (mapped >= kMmapThreshold) {
    bool counted_huge = false;
    const HugePolicy hp = huge_policy();
    if (hp == HugePolicy::kHugetlb && mapped >= kHugeChunk) {
      const std::size_t hlen = round_up(mapped, kHugeChunk);
      void* m = ::mmap(nullptr, hlen, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
      if (m != MAP_FAILED) {
        base = m;
        mapped = hlen;
        kind = kKindHugetlb;
        g_huge_grants.fetch_add(1, std::memory_order_relaxed);
      } else {
        // No hugetlb pool (or exhausted): fall through to THP-advised
        // anonymous memory — the graceful degradation the policy promises.
        g_huge_denials.fetch_add(1, std::memory_order_relaxed);
      }
      counted_huge = true;
    }
    if (base == nullptr) {
      void* m = ::mmap(nullptr, mapped, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      if (m == MAP_FAILED) throw std::bad_alloc();
      base = m;
      kind = kKindMmap;
      if (hp != HugePolicy::kOff && mapped >= kHugeChunk) {
        const bool granted = ::madvise(m, mapped, MADV_HUGEPAGE) == 0;
        if (!counted_huge) {
          (granted ? g_huge_grants : g_huge_denials)
              .fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    numa_apply(base, mapped);
  }
#endif
  if (base == nullptr) {
    base = ::operator new(mapped, std::align_val_t{kAlign}, std::nothrow);
    if (base == nullptr) throw std::bad_alloc();
    kind = kKindNew;
  }
  auto* h = ::new (base) BlockHeader;
  h->magic = kMagicLive;
  h->usable = usable;
  h->mapped = mapped;
  h->kind = kind;
  h->cls = cls;
  const std::size_t node = current_node();
  h->node = static_cast<std::int32_t>(node);
  g_os_allocs.fetch_add(1, std::memory_order_relaxed);
  track_node_alloc(node, usable);
  return h;
}

void os_free(BlockHeader* h) noexcept {
  g_os_frees.fetch_add(1, std::memory_order_relaxed);
  g_node_bytes[static_cast<std::size_t>(h->node)].fetch_sub(
      h->usable, std::memory_order_relaxed);
  const std::uint32_t kind = h->kind;
  const std::size_t mapped = h->mapped;
  h->magic = 0;
  switch (kind) {
    case kKindNew:
      ::operator delete(static_cast<void*>(h), std::align_val_t{kAlign});
      break;
#if defined(__linux__)
    case kKindMmap:
    case kKindHugetlb:
      ::munmap(static_cast<void*>(h), mapped);
      break;
#endif
    default:
      assert(false && "corrupt block kind");
  }
}

}  // namespace

// --- policy ------------------------------------------------------------------

HugePolicy huge_policy() {
  return static_cast<HugePolicy>(cfg().huge.load(std::memory_order_relaxed));
}
void set_huge_policy(HugePolicy p) {
  cfg().huge.store(static_cast<int>(p), std::memory_order_relaxed);
}
NumaPolicy numa_policy() {
  return static_cast<NumaPolicy>(cfg().numa.load(std::memory_order_relaxed));
}
void set_numa_policy(NumaPolicy p) {
  cfg().numa.store(static_cast<int>(p), std::memory_order_relaxed);
}
bool pin_workers() { return cfg().pin; }
std::size_t trim_high_water() {
  return cfg().trim.load(std::memory_order_relaxed);
}
void set_trim_high_water(std::size_t bytes) {
  cfg().trim.store(bytes, std::memory_order_relaxed);
}

HugePolicy sanitize_huge_spec(const char* spec) {
  const std::string s = lowercase_trimmed(spec);
  if (s == "0" || s == "off" || s == "false" || s == "none") {
    return HugePolicy::kOff;
  }
  if (s == "hugetlb") return HugePolicy::kHugetlb;
  return HugePolicy::kThp;
}

NumaPolicy sanitize_numa_spec(const char* spec) {
  const std::string s = lowercase_trimmed(spec);
  if (s == "interleave" || s == "interleaved") return NumaPolicy::kInterleave;
  return NumaPolicy::kFirstTouch;
}

bool numa_supported() {
#if defined(SCANPRIM_HAVE_NUMA)
  static const bool ok = ::numa_available() >= 0;
  return ok;
#else
  return false;
#endif
}

std::size_t numa_node_count() {
#if defined(SCANPRIM_HAVE_NUMA)
  if (numa_supported()) {
    const int n = ::numa_num_configured_nodes();
    return n > 0 ? static_cast<std::size_t>(n) : 1;
  }
#endif
  return 1;
}

bool pin_thread_to_cpu(std::size_t index) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(index % hw), &set);
  return ::sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)index;
  return false;
#endif
}

// --- arena -------------------------------------------------------------------

Arena::~Arena() { trim(0); }

std::size_t Arena::free_blocks() const noexcept {
  std::size_t n = large_.size();
  for (const BlockHeader* h : classes_) {
    for (; h != nullptr; h = h->next) ++n;
  }
  return n;
}

BlockHeader* Arena::pop_fit(std::size_t usable, std::size_t cls) noexcept {
  if (cls != kLargeClass) {
    BlockHeader* h = classes_[cls];
    if (h != nullptr) classes_[cls] = h->next;
    return h;
  }
  // Bounded best-fit over the large list: the smallest block that fits, and
  // only if it is at most twice the request — reuse must not pin a much
  // larger buffer on a small ask.
  std::size_t best = large_.size();
  for (std::size_t i = 0; i < large_.size(); ++i) {
    BlockHeader* h = large_[i];
    if (h->usable < usable || h->usable > 2 * usable) continue;
    if (best == large_.size() || h->usable < large_[best]->usable) best = i;
  }
  if (best == large_.size()) return nullptr;
  BlockHeader* h = large_[best];
  large_[best] = large_.back();
  large_.pop_back();
  return h;
}

BlockHeader* Arena::pop_largest() noexcept {
  std::size_t best = large_.size();
  for (std::size_t i = 0; i < large_.size(); ++i) {
    if (best == large_.size() || large_[i]->usable > large_[best]->usable) {
      best = i;
    }
  }
  if (best != large_.size()) {
    BlockHeader* h = large_[best];
    large_[best] = large_.back();
    large_.pop_back();
    return h;
  }
  for (std::size_t c = kClasses; c-- > 0;) {
    if (classes_[c] != nullptr) {
      BlockHeader* h = classes_[c];
      classes_[c] = h->next;
      return h;
    }
  }
  return nullptr;
}

std::byte* Arena::allocate(std::size_t bytes, bool* reused) {
  SCANPRIM_FAULT_POINT("mem.alloc");
  ensure_collector();
  if (bytes == 0) bytes = 1;
  std::uint32_t cls = 0;
  std::size_t usable = 0;
  classify(bytes, &cls, &usable);
  if (BlockHeader* h = pop_fit(usable, cls)) {
    assert(h->magic == kMagicFree);
    h->magic = kMagicLive;
    free_bytes_ -= h->usable;
    g_freelist.fetch_sub(h->usable, std::memory_order_relaxed);
    g_hits.fetch_add(1, std::memory_order_relaxed);
    add_live(h->usable);
    if (reused != nullptr) *reused = true;
    return data_of(h);
  }
  BlockHeader* h = os_alloc(usable, cls);
  g_misses.fetch_add(1, std::memory_order_relaxed);
  add_live(h->usable);
  if (reused != nullptr) *reused = false;
  return data_of(h);
}

void Arena::deallocate(std::byte* p) noexcept {
  if (p == nullptr) return;
  BlockHeader* h = header_of(p);
  assert(h->magic == kMagicLive && "free of a pointer mem does not own");
  h->magic = kMagicFree;
  g_live.fetch_sub(h->usable, std::memory_order_relaxed);
  if (h->cls != kLargeClass) {
    h->next = classes_[h->cls];
    classes_[h->cls] = h;
  } else {
    try {
      large_.push_back(h);
    } catch (...) {
      // Could not even grow the bookkeeping list: give the block straight
      // back to the OS instead of losing it.
      os_free(h);
      return;
    }
  }
  free_bytes_ += h->usable;
  g_freelist.fetch_add(h->usable, std::memory_order_relaxed);
  maybe_trim();
}

void Arena::maybe_trim() noexcept {
  const std::size_t hw = trim_high_water();
  if (free_bytes_ > hw) trim(hw);
}

std::size_t Arena::trim(std::size_t keep_bytes) noexcept {
  std::size_t released = 0;
  while (free_bytes_ > keep_bytes) {
    BlockHeader* h = pop_largest();
    if (h == nullptr) break;
    free_bytes_ -= h->usable;
    released += h->usable;
    g_freelist.fetch_sub(h->usable, std::memory_order_relaxed);
    os_free(h);
  }
  if (released > 0) {
    g_trim_released.fetch_add(released, std::memory_order_relaxed);
  }
  return released;
}

Arena& local_arena() {
  thread_local Arena arena;
  return arena;
}

std::byte* allocate(std::size_t bytes, bool* reused) {
  return local_arena().allocate(bytes, reused);
}

void deallocate(std::byte* p) noexcept { local_arena().deallocate(p); }

std::size_t trim_local(std::size_t keep_bytes) noexcept {
  return local_arena().trim(keep_bytes);
}

std::size_t usable_bytes(const std::byte* p) noexcept {
  const BlockHeader* h = header_of(p);
  assert(h->magic == kMagicLive);
  return h->usable;
}

Counters counters() {
  ensure_collector();
  Counters c;
  c.live_bytes = g_live.load(std::memory_order_relaxed);
  c.peak_bytes = g_peak.load(std::memory_order_relaxed);
  c.freelist_bytes = g_freelist.load(std::memory_order_relaxed);
  c.arena_hits = g_hits.load(std::memory_order_relaxed);
  c.arena_misses = g_misses.load(std::memory_order_relaxed);
  c.os_allocs = g_os_allocs.load(std::memory_order_relaxed);
  c.os_frees = g_os_frees.load(std::memory_order_relaxed);
  c.huge_grants = g_huge_grants.load(std::memory_order_relaxed);
  c.huge_denials = g_huge_denials.load(std::memory_order_relaxed);
  c.trim_released = g_trim_released.load(std::memory_order_relaxed);
  const std::size_t top = g_top_node.load(std::memory_order_relaxed);
  c.node_bytes.resize(top + 1);
  for (std::size_t n = 0; n <= top; ++n) {
    c.node_bytes[n] = g_node_bytes[n].load(std::memory_order_relaxed);
  }
  return c;
}

}  // namespace scanprim::mem
