// The executable cost semantics of the paper.
//
// A `Machine` evaluates vector programs (the notation of §2.1) while charging
// *program steps* under one of three models:
//
//   Model::EREW — the exclusive-read exclusive-write P-RAM. A scan is not a
//     primitive: it costs the ⌈lg p⌉ steps of the standard two-sweep tree
//     simulation. Broadcasts and combining writes likewise cost ⌈lg p⌉.
//   Model::CRCW — the *extended* CRCW P-RAM of §2.3.3 (concurrent writes
//     combine with minimum / lowest-processor). Broadcasts and combining
//     writes cost one step; scans still cost ⌈lg p⌉.
//   Model::Scan — the paper's scan model: EREW plus unit-time scans.
//
// With p processors and n-element vectors every operation additionally pays
// the ⌈n/p⌉ long-vector factor of §2.5 / Figure 10.
//
// The machine also accumulates *bit cycles* under the bit-serial circuit
// cost model of §3 so that Table 4 (split radix sort vs bitonic sort on a
// 64K-processor bit-serial machine) can be regenerated; see `BitCostModel`.
//
// The actual element values are computed by the core library (src/core), so
// a Machine is also simply a convenient, instrumented front end to the
// parallel vector operations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/core/ops.hpp"
#include "src/core/primitives.hpp"
#include "src/core/scan.hpp"
#include "src/core/segmented.hpp"

namespace scanprim::machine {

enum class Model { EREW, CRCW, Scan };

std::string to_string(Model m);

/// ⌈lg n⌉ (0 for n <= 1).
constexpr std::uint64_t ceil_lg(std::uint64_t n) {
  std::uint64_t bits = 0;
  while ((std::uint64_t{1} << bits) < n) ++bits;
  return bits;
}

constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return b == 0 ? 0 : (a + b - 1) / b;
}

/// Charges for the bit-serial accounting of Table 4. Cycle counts for a
/// d-bit field on p processors:
///   scan              : d + 2·⌈lg p⌉     (the §3.2 pipelined tree circuit)
///   permute           : router_factor · d·⌈lg p⌉ (routing on a lg-stage net)
///   neighbor exchange : element_factor · d (a dedicated hypercube wire —
///                       what the CM-1's bitonic sort uses per merge stage)
///   element           : element_factor · d (local bit-serial ALU pass)
/// plus `op_overhead` cycles of per-vector-operation dispatch on every
/// charge. `router_factor` = 3 puts a 32-bit permute on 64K processors near
/// the CM's ~600-cycle route (Table 2); `op_overhead` = 60 reproduces the
/// microcode dispatch cost that dominates short operations and lands the
/// Table 4 sorts at the paper's near-parity (~20,000 vs ~19,000 cycles).
struct BitCostModel {
  unsigned field_bits = 32;
  double router_factor = 3.0;
  double element_factor = 1.0;
  double op_overhead = 60.0;
};

struct StepStats {
  std::uint64_t steps = 0;        ///< charged program steps
  std::uint64_t elementwise = 0;  ///< vector-op invocations by kind
  std::uint64_t permutes = 0;
  std::uint64_t scans = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t combines = 0;
  double bit_cycles = 0.0;  ///< bit-serial cycles (Table 4 accounting)
};

class Machine {
 public:
  /// `processors == 0` means "as many processors as vector elements", the
  /// default assumption of §2.1. A fixed count activates the long-vector
  /// charges of §2.5.
  explicit Machine(Model model = Model::Scan, std::size_t processors = 0)
      : model_(model), processors_(processors) {}

  Model model() const { return model_; }
  std::size_t processors() const { return processors_; }
  const StepStats& stats() const { return stats_; }
  void reset_stats() { stats_ = StepStats{}; }
  /// Restore a previously captured snapshot. The compiled-plan engine
  /// (src/plan) uses this to make a region attempt transactional: charges
  /// accumulated by an abandoned compiled region are rolled back before the
  /// region re-runs through the interpreter.
  void set_stats(const StepStats& s) { stats_ = s; }

  BitCostModel& bit_cost() { return bits_; }
  const BitCostModel& bit_cost() const { return bits_; }

  // --- charging (public so algorithm code can charge steps the vector API
  // --- does not capture, e.g. a serial base case) ---------------------------

  /// Processors available to an n-element operation.
  std::uint64_t procs_for(std::size_t n) const {
    return processors_ == 0 ? static_cast<std::uint64_t>(n)
                            : static_cast<std::uint64_t>(processors_);
  }

  /// The long-vector factor ⌈n/p⌉.
  std::uint64_t virt(std::size_t n) const {
    if (n == 0) return 0;
    return ceil_div(n, procs_for(n));
  }

  void charge_elementwise(std::size_t n) {
    if (n == 0) return;
    ++stats_.elementwise;
    stats_.steps += virt(n);
    stats_.bit_cycles += bits_.op_overhead + bits_.element_factor *
                                               bits_.field_bits *
                                               static_cast<double>(virt(n));
  }

  void charge_permute(std::size_t n) {
    if (n == 0) return;
    ++stats_.permutes;
    stats_.steps += virt(n);
    const std::uint64_t p = procs_for(n);
    stats_.bit_cycles += bits_.op_overhead + bits_.router_factor *
                                               bits_.field_bits *
                                               static_cast<double>(ceil_lg(p)) *
                                               static_cast<double>(virt(n));
  }

  /// A fixed-pattern exchange with a direct wire to the partner (the
  /// hypercube links Batcher's bitonic sort rides): one step, d bit cycles,
  /// no routing charge.
  void charge_neighbor_exchange(std::size_t n) {
    if (n == 0) return;
    ++stats_.permutes;
    stats_.steps += virt(n);
    stats_.bit_cycles += bits_.op_overhead + bits_.element_factor *
                                               bits_.field_bits *
                                               static_cast<double>(virt(n));
  }

  void charge_scan(std::size_t n) {
    if (n == 0) return;
    ++stats_.scans;
    const std::uint64_t p = procs_for(n);
    const std::uint64_t local = virt(n) > 0 ? virt(n) - 1 : 0;
    if (model_ == Model::Scan) {
      stats_.steps += local + 1;  // unit-time primitive (+ local pre/post pass)
    } else {
      stats_.steps += local + ceil_lg(p);  // two-sweep tree simulation
    }
    stats_.bit_cycles += bits_.op_overhead +
                         static_cast<double>(local) * bits_.field_bits +
                         bits_.field_bits + 2.0 * static_cast<double>(ceil_lg(p));
  }

  /// Copying one value to all processors (concurrent read in CRCW).
  void charge_broadcast(std::size_t n) {
    if (n == 0) return;
    ++stats_.broadcasts;
    const std::uint64_t p = procs_for(n);
    const std::uint64_t local = virt(n) > 0 ? virt(n) - 1 : 0;
    switch (model_) {
      case Model::CRCW: stats_.steps += local + 1; break;
      case Model::Scan: stats_.steps += local + 1; break;  // copy is a scan
      case Model::EREW: stats_.steps += local + ceil_lg(p); break;
    }
    stats_.bit_cycles += bits_.op_overhead +
                         static_cast<double>(local + 1) * bits_.field_bits +
                         2.0 * static_cast<double>(ceil_lg(p));
  }

  /// Combining many values into one (sum / min / max): a combining
  /// concurrent write in the extended CRCW, a reduction elsewhere.
  void charge_combine(std::size_t n) {
    if (n == 0) return;
    ++stats_.combines;
    const std::uint64_t p = procs_for(n);
    const std::uint64_t local = virt(n) > 0 ? virt(n) - 1 : 0;
    switch (model_) {
      case Model::CRCW: stats_.steps += local + 1; break;
      case Model::Scan: stats_.steps += local + 1; break;  // reduce is a scan
      case Model::EREW: stats_.steps += local + ceil_lg(p); break;
    }
    stats_.bit_cycles += bits_.op_overhead +
                         static_cast<double>(local + 1) * bits_.field_bits +
                         2.0 * static_cast<double>(ceil_lg(p));
  }

  // --- elementwise -----------------------------------------------------------

  template <class U, class T, class Fn>
  std::vector<U> map(std::span<const T> in, Fn fn) {
    charge_elementwise(in.size());
    return mapped<U>(in, fn);
  }

  template <class V, class T, class U, class Fn>
  std::vector<V> zip(std::span<const T> a, std::span<const U> b, Fn fn) {
    charge_elementwise(a.size());
    return zipped<V>(a, b, fn);
  }

  /// [0, 1, ..., n-1]; free of charge the way loading a processor's own
  /// address is on a real machine.
  std::vector<std::size_t> iota(std::size_t n) {
    std::vector<std::size_t> v(n);
    thread::parallel_for(n, [&](std::size_t i) { v[i] = i; });
    return v;
  }

  template <class T>
  std::vector<T> constant(std::size_t n, T value) {
    charge_elementwise(n);
    return std::vector<T>(n, value);
  }

  /// Neighbor access `out[i] = in[i - 1]` (out[0] = boundary): one EREW
  /// permute; used by sortedness checks and segment-boundary detection.
  template <class T>
  std::vector<T> shift_right(std::span<const T> in, T boundary) {
    charge_permute(in.size());
    std::vector<T> out(in.size());
    thread::parallel_for(in.size(), [&](std::size_t i) {
      out[i] = i == 0 ? boundary : in[i - 1];
    });
    return out;
  }

  // --- permute / gather -------------------------------------------------------

  template <class T>
  std::vector<T> permute(std::span<const T> in,
                         std::span<const std::size_t> index) {
    charge_permute(in.size());
    return permuted(in, index);
  }

  /// Permute into a destination of a different length.
  template <class T>
  std::vector<T> permute_into(std::span<const T> in,
                              std::span<const std::size_t> index,
                              std::size_t out_size, T fill = T{}) {
    charge_permute(in.size());
    std::vector<T> out(out_size, fill);
    scanprim::permute(in, index, std::span<T>(out));
    return out;
  }

  template <class T>
  std::vector<T> gather(std::span<const T> in,
                        std::span<const std::size_t> index) {
    charge_permute(index.size());
    return gathered(in, index);
  }

  /// In-place permute: writes `in[i]` to `out[index[i]]`, leaving the other
  /// positions of `out` untouched (an EREW permute whose source vector is
  /// shorter than its destination).
  template <class T>
  void scatter(std::span<const T> in, std::span<const std::size_t> index,
               std::span<T> out) {
    charge_permute(in.size());
    scanprim::permute(in, index, out);
  }

  // --- scans ------------------------------------------------------------------

  template <class T, ScanOperator<T> Op>
  std::vector<T> scan(std::span<const T> in, Op op) {
    charge_scan(in.size());
    std::vector<T> out(in.size());
    exclusive_scan(in, std::span<T>(out), op);
    return out;
  }

  template <class T, ScanOperator<T> Op>
  std::vector<T> backscan(std::span<const T> in, Op op) {
    charge_scan(in.size());
    std::vector<T> out(in.size());
    backward_exclusive_scan(in, std::span<T>(out), op);
    return out;
  }

  template <class T, ScanOperator<T> Op>
  std::vector<T> inclusive(std::span<const T> in, Op op) {
    charge_scan(in.size());
    std::vector<T> out(in.size());
    inclusive_scan(in, std::span<T>(out), op);
    return out;
  }

  template <class T, ScanOperator<T> Op>
  std::vector<T> back_inclusive(std::span<const T> in, Op op) {
    charge_scan(in.size());
    std::vector<T> out(in.size());
    backward_inclusive_scan(in, std::span<T>(out), op);
    return out;
  }

  template <class T>
  std::vector<T> plus_scan(std::span<const T> in) { return scan(in, Plus<T>{}); }
  template <class T>
  std::vector<T> max_scan(std::span<const T> in) { return scan(in, Max<T>{}); }
  template <class T>
  std::vector<T> min_scan(std::span<const T> in) { return scan(in, Min<T>{}); }

  template <class T, ScanOperator<T> Op>
  T reduce(std::span<const T> in, Op op) {
    charge_combine(in.size());
    return scanprim::reduce(in, op);
  }

  // --- segmented scans ---------------------------------------------------------

  template <class T, ScanOperator<T> Op>
  std::vector<T> seg_scan(std::span<const T> in, FlagsView flags, Op op) {
    charge_scan(in.size());
    std::vector<T> out(in.size());
    seg_exclusive_scan(in, flags, std::span<T>(out), op);
    return out;
  }

  template <class T, ScanOperator<T> Op>
  std::vector<T> seg_backscan(std::span<const T> in, FlagsView flags, Op op) {
    charge_scan(in.size());
    std::vector<T> out(in.size());
    seg_backward_exclusive_scan(in, flags, std::span<T>(out), op);
    return out;
  }

  template <class T, ScanOperator<T> Op>
  std::vector<T> seg_inclusive(std::span<const T> in, FlagsView flags, Op op) {
    charge_scan(in.size());
    std::vector<T> out(in.size());
    seg_inclusive_scan(in, flags, std::span<T>(out), op);
    return out;
  }

  template <class T, ScanOperator<T> Op>
  std::vector<T> seg_back_inclusive(std::span<const T> in, FlagsView flags,
                                    Op op) {
    charge_scan(in.size());
    std::vector<T> out(in.size());
    seg_backward_inclusive_scan(in, flags, std::span<T>(out), op);
    return out;
  }

  // --- enumerate / copy / distribute (§2.2) -------------------------------------

  std::vector<std::size_t> enumerate(FlagsView flags) {
    charge_elementwise(flags.size());
    charge_scan(flags.size());
    return scanprim::enumerate(flags);
  }

  std::vector<std::size_t> back_enumerate(FlagsView flags) {
    charge_elementwise(flags.size());
    charge_scan(flags.size());
    return scanprim::back_enumerate(flags);
  }

  std::size_t count_flags(FlagsView flags) {
    charge_combine(flags.size());
    return scanprim::count_flags(flags);
  }

  template <class T>
  std::vector<T> copy(std::span<const T> in) {
    charge_broadcast(in.size());
    return scanprim::copy(in);
  }

  template <class T>
  std::vector<T> seg_copy(std::span<const T> in, FlagsView flags) {
    charge_broadcast(in.size());
    return scanprim::seg_copy(in, flags);
  }

  template <class T, ScanOperator<T> Op>
  std::vector<T> distribute(std::span<const T> in, Op op) {
    charge_combine(in.size());
    charge_broadcast(in.size());
    return scanprim::distribute(in, op);
  }

  template <class T, ScanOperator<T> Op>
  std::vector<T> seg_distribute(std::span<const T> in, FlagsView flags,
                                Op op) {
    charge_combine(in.size());
    charge_broadcast(in.size());
    return scanprim::seg_distribute(in, flags, op);
  }

  // --- split / pack / allocate ---------------------------------------------------

  std::vector<std::size_t> split_index(FlagsView flags) {
    charge_elementwise(flags.size());  // flag inversion
    charge_scan(flags.size());         // enumerate (down)
    charge_scan(flags.size());         // back-enumerate (up)
    charge_elementwise(flags.size());  // select
    return scanprim::split_index(flags);
  }

  template <class T>
  std::vector<T> split(std::span<const T> in, FlagsView flags) {
    auto index = split_index(flags);
    return permute(in, std::span<const std::size_t>(index));
  }

  template <class T>
  std::vector<T> pack(std::span<const T> in, FlagsView flags) {
    charge_scan(in.size());
    charge_combine(in.size());
    charge_permute(in.size());
    return scanprim::pack(in, flags);
  }

  std::vector<std::size_t> pack_index(FlagsView flags) {
    charge_scan(flags.size());
    charge_combine(flags.size());
    charge_permute(flags.size());
    return scanprim::pack_index(flags);
  }

  Allocation allocate(std::span<const std::size_t> sizes) {
    charge_scan(sizes.size());
    charge_combine(sizes.size());
    charge_permute(sizes.size());  // flag placement
    return scanprim::allocate(sizes);
  }

  template <class T>
  std::vector<T> distribute_to_segments(std::span<const T> values,
                                        const Allocation& a) {
    charge_permute(values.size());
    charge_broadcast(a.total);
    return scanprim::distribute_to_segments(values, a);
  }

 private:
  Model model_;
  std::size_t processors_;
  BitCostModel bits_;
  StepStats stats_;
};

}  // namespace scanprim::machine
