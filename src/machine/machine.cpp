#include "src/machine/machine.hpp"

namespace scanprim::machine {

std::string to_string(Model m) {
  switch (m) {
    case Model::EREW: return "EREW";
    case Model::CRCW: return "CRCW";
    case Model::Scan: return "Scan";
  }
  return "?";
}

}  // namespace scanprim::machine
