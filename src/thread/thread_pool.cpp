#include "src/thread/thread_pool.hpp"

#include <chrono>
#include <cstdlib>
#include <string>

#include "src/core/env.hpp"
#include "src/core/runtime.hpp"
#include "src/fault/fault.hpp"
#include "src/mem/mem.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/registry.hpp"

namespace scanprim::thread {
namespace {

thread_local bool tls_inside_worker = false;

std::uint64_t busy_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t configured_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return env::size_or("SCANPRIM_THREADS", hw == 0 ? 1 : hw, 1, kMaxWorkers);
}

/// Set only by reinit_pool_after_fork (shard worker children); pool()
/// prefers it over the static parent pool, whose worker threads do not
/// survive fork.
std::atomic<ThreadPool*> g_pool_override{nullptr};

}  // namespace

ThreadPool::ThreadPool(std::size_t workers)
    : workers_(workers == 0 ? 1 : workers) {
  counters_.resize(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    const std::string label = "{worker=\"" + std::to_string(w) + "\"}";
    counters_[w].busy_ns =
        &obs::counter("scanprim_pool_busy_ns_total" + label);
    counters_[w].tasks = &obs::counter("scanprim_pool_tasks_total" + label);
    counters_[w].wakeups =
        &obs::counter("scanprim_pool_wakeups_total" + label);
  }
  threads_.reserve(workers_ - 1);
  for (std::size_t w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::execute(std::size_t index) {
  obs::Span span("pool.task");
  const std::uint64_t t0 = busy_now_ns();
  try {
    SCANPRIM_FAULT_POINT("thread.worker");
    (*job_)(index);
  } catch (...) {
    std::lock_guard lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  counters_[index].busy_ns->add(busy_now_ns() - t0);
  counters_[index].tasks->inc();
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_inside_worker = true;
  // SCANPRIM_PIN=1 (docs/MEM.md): pin each spawned worker to a fixed CPU,
  // round-robin, so first-touch NUMA placement is stable — a worker's pages
  // stay on the node of the core that faulted them in. Worker 0 is the
  // dispatching caller (the batcher, a request thread, main); its affinity
  // is not ours to change.
  if (mem::pin_workers()) mem::pin_thread_to_cpu(index);
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
    }
    counters_[index].wakeups->inc();
    execute(index);
    {
      std::lock_guard lock(mutex_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run(const std::function<void(std::size_t)>& fn) {
  if (workers_ == 1 || tls_inside_worker) {
    // Single worker, or a nested call from inside a parallel region: run
    // every index serially on this thread. Error semantics match the
    // parallel path exactly — every index runs, then the first error (in
    // index order, which here is also arrival order) is rethrown — so
    // algorithms cannot come to depend on a first-throw-stops-the-rest
    // behaviour that only exists on the serial path. Busy time and task
    // counts are attributed to worker 0, the slot the calling thread
    // occupies.
    obs::Span span("pool.dispatch");
    const std::uint64_t t0 = busy_now_ns();
    std::exception_ptr first_error;
    for (std::size_t w = 0; w < workers_; ++w) {
      try {
        SCANPRIM_FAULT_POINT("thread.worker");
        fn(w);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
      counters_[0].tasks->inc();
    }
    counters_[0].busy_ns->add(busy_now_ns() - t0);
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  // One external dispatch at a time: a second thread calling run() while a
  // fan-out is in flight would clobber job_/generation_. Workers never reach
  // here (the tls check above sends them down the serial path), so holding
  // run_mutex_ across the whole fork-join cannot deadlock. The span starts
  // before the lock so dispatch serialisation shows up as span time.
  obs::Span span("pool.dispatch");
  std::lock_guard run_lock(run_mutex_);
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    job_ = &fn;
    first_error_ = nullptr;
    remaining_ = workers_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  // The caller acts as worker 0. Mark it as inside the pool for the
  // duration so that a nested run() from the job itself degrades to the
  // serial path instead of clobbering the in-flight dispatch.
  tls_inside_worker = true;
  execute(0);
  tls_inside_worker = false;
  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    job_ = nullptr;
    if (first_error_) {
      auto err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
}

ThreadPool& pool() {
  if (ThreadPool* p = g_pool_override.load(std::memory_order_acquire)) {
    return *p;
  }
  static ThreadPool instance(configured_workers());
  return instance;
}

void reinit_pool_after_fork(std::size_t workers) {
  auto* fresh =
      new ThreadPool(workers == 0 ? configured_workers() : workers);
  // The previous override (there is none on the first call in a child) and
  // the inherited static pool are both leaked: their worker threads died
  // with the parent address space, so their destructors would join forever.
  g_pool_override.store(fresh, std::memory_order_release);
}

std::size_t num_workers() { return pool().size(); }

bool oversubscribed() {
  // Not cached: reinit_pool_after_fork can change the answer within a
  // process lifetime, and two loads per query are cheap.
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 && num_workers() > hw;
}

}  // namespace scanprim::thread
