// Fork-join thread pool used as the "parallel machine" substrate for the
// scan-vector library. The paper's algorithms assume a machine that applies
// one vector operation across all processors per program step; here each
// program step becomes one parallel_blocks dispatch across the pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scanprim::obs {
class Counter;  // obs/registry.hpp
}

namespace scanprim::thread {

/// A fixed-size work-sharing pool. `run(fn)` executes `fn(w)` once for every
/// worker index `w` in `[0, size())` and returns when all invocations have
/// finished; the calling thread acts as worker 0. Exceptions thrown by any
/// worker are captured and the first one is rethrown to the caller — and a
/// throwing worker never prevents the other indices from running, on either
/// the parallel or the serial-fallback path (callers may rely on every index
/// having been attempted when run() returns or throws).
///
/// Calls to `run` from inside a worker (nested parallelism) degrade to a
/// serial loop on the calling thread, which keeps composed algorithms safe.
/// Calls from *distinct external threads* (e.g. request threads running
/// scans while the serve batcher dispatches) serialize on an internal mutex:
/// each caller gets the whole pool for its dispatch, in arrival order.
class ThreadPool {
 public:
  /// Spawns `workers - 1` threads (worker 0 is the caller of `run`).
  /// `workers` is clamped to at least 1.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_; }

  /// Number of parallel FAN-OUTS `run` has performed — each counts once no
  /// matter how many workers it occupied, so this is NOT a task count (one
  /// dispatch executes `size()` per-worker tasks; serial fallbacks — one
  /// worker or nested calls — are neither dispatches nor counted here).
  /// Benches difference this around a workload to count its dispatch
  /// rounds; per-worker task counts live in the obs registry
  /// (scanprim_pool_tasks_total{worker="w"}, docs/OBS.md).
  std::uint64_t dispatch_count() const noexcept {
    return dispatches_.load(std::memory_order_relaxed);
  }

  void run(const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t index);
  void execute(std::size_t index);

  /// Per-worker utilisation, exported through the obs metrics registry
  /// (docs/OBS.md): scanprim_pool_{busy_ns,tasks,wakeups}_total{worker="w"}.
  /// Series are find-or-create, so several pools (tests build their own)
  /// aggregate into process-wide totals per worker index.
  struct WorkerCounters {
    obs::Counter* busy_ns = nullptr;  ///< ns spent inside task bodies
    obs::Counter* tasks = nullptr;    ///< task bodies executed
    obs::Counter* wakeups = nullptr;  ///< times a parked worker woke for work
  };

  std::size_t workers_;
  std::vector<WorkerCounters> counters_;
  std::vector<std::thread> threads_;

  std::mutex run_mutex_;  ///< serializes dispatches from external threads
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t remaining_ = 0;
  std::exception_ptr first_error_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> dispatches_{0};
};

/// The process-wide pool. Sized from the SCANPRIM_THREADS environment
/// variable when set, otherwise from std::thread::hardware_concurrency().
ThreadPool& pool();

/// Replace the process-wide pool with a freshly constructed one of
/// `workers` threads (0 means size from the environment as pool() would).
/// FOR CHILD PROCESSES ONLY: after fork() from a multithreaded parent, the
/// child inherits the parent's pool object but none of its worker threads,
/// so pool().run() would wait forever on workers that do not exist. A
/// shard worker calls this first thing after fork, before any scan runs.
/// The inherited pool object is intentionally leaked — joining its dead
/// threads would deadlock, and shard children exit via _exit() anyway.
void reinit_pool_after_fork(std::size_t workers);

/// Number of workers in the global pool.
std::size_t num_workers();

/// True when the pool has more workers than the host has hardware threads
/// (e.g. SCANPRIM_THREADS=8 on a one-core container). Spin-heavy protocols
/// like the chained engine's lookback degrade badly when workers time-share
/// cores; adaptive callers use this to fall back to a sequential pass.
bool oversubscribed();

/// Half-open index range assigned to one worker.
struct Block {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const noexcept { return end - begin; }
  bool empty() const noexcept { return begin == end; }
};

/// Contiguous block `b` of `n` items split across `nblocks` blocks, balanced
/// to within one element (the long-vector layout of the paper's Figure 10).
inline Block block_of(std::size_t n, std::size_t nblocks, std::size_t b) {
  const std::size_t base = n / nblocks;
  const std::size_t extra = n % nblocks;
  const std::size_t begin = b * base + (b < extra ? b : extra);
  return Block{begin, begin + base + (b < extra ? 1 : 0)};
}

/// Below this many elements a vector operation is not worth a dispatch.
inline constexpr std::size_t kSerialCutoff = 4096;

/// Runs `fn(block, worker)` over a balanced partition of `[0, n)`. Falls back
/// to one serial call when the pool has a single worker or `n` is small.
template <class Fn>
void parallel_blocks(std::size_t n, Fn&& fn) {
  const std::size_t workers = num_workers();
  if (workers == 1 || n < kSerialCutoff) {
    fn(Block{0, n}, std::size_t{0});
    return;
  }
  pool().run([&](std::size_t w) {
    const Block blk = block_of(n, workers, w);
    if (!blk.empty()) fn(blk, w);
  });
}

/// Element-wise parallel loop: runs `fn(i)` for each `i` in `[0, n)`.
template <class Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  parallel_blocks(n, [&](Block blk, std::size_t) {
    for (std::size_t i = blk.begin; i < blk.end; ++i) fn(i);
  });
}

}  // namespace scanprim::thread
