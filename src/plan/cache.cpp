// The process-wide plan cache (docs/PLAN.md).
//
// Lookup is a striped-mutex sharded hash: vm::fingerprint picks the shard
// and the bucket, exact structural equality guards against collisions, and
// each shard keeps its own LRU list so eviction under the byte budget
// (SCANPRIM_PLAN_CACHE_BYTES, default 64 MiB) never takes a global lock.
// Plans are shared immutably (shared_ptr<const CompiledProgram>), so an
// entry evicted mid-flight stays valid for every thread still executing it
// — eviction only drops the cache's reference (generation safety).
//
// Declined compiles are remembered as negative entries (repeated traffic
// for uncompilable programs skips re-analysis); *faulted* compiles — the
// plan.compile fault point, allocation failure — are not cached, so
// transient failures retry on the next request.
#include <chrono>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <pthread.h>
#endif

#include "src/core/env.hpp"
#include "src/core/runtime.hpp"
#include "src/fault/fault.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/registry.hpp"
#include "src/plan/plan.hpp"

namespace scanprim::plan {

namespace {

constexpr std::size_t kDefaultCapacity = 64u << 20;

std::size_t capacity_from_env() {
  return env::size_or("SCANPRIM_PLAN_CACHE_BYTES", kDefaultCapacity, 4096,
                      std::size_t{1} << 40);
}

struct Counters {
  obs::Counter& hits = obs::counter("scanprim_plan_hits_total");
  obs::Counter& misses = obs::counter("scanprim_plan_misses_total");
  obs::Counter& evictions = obs::counter("scanprim_plan_evictions_total");
  obs::Counter& failures = obs::counter("scanprim_plan_compile_failures_total");
  obs::Counter& compile_ns = obs::counter("scanprim_plan_compile_ns_total");
};

Counters& counters() {
  static Counters c;
  return c;
}

}  // namespace

bool enabled() {
  static const bool on = env::flag_or("SCANPRIM_PLAN", true);
  return on;
}

Cache::Cache() : capacity_(capacity_from_env()) {}

namespace {
Cache* g_cache = nullptr;
}

Cache& Cache::instance() {
  // Leaked, like the other process-wide registries, and fork-safe: the
  // hooks hold all shard mutexes across fork() so shard worker children
  // can compile and cache plans immediately.
  static Cache* cache = [] {
    g_cache = new Cache;
#if defined(__unix__) || defined(__APPLE__)
    ::pthread_atfork([] { g_cache->lock_shards_for_fork(); },
                     [] { g_cache->unlock_shards_after_fork(); },
                     [] { g_cache->unlock_shards_after_fork(); });
#endif
    return g_cache;
  }();
  return *cache;
}

void Cache::lock_shards_for_fork() {
  for (Shard& sh : shards_) sh.mu.lock();
}

void Cache::unlock_shards_after_fork() {
  for (Shard& sh : shards_) sh.mu.unlock();
}

std::size_t Cache::capacity_bytes() const {
  return capacity_.load(std::memory_order_relaxed);
}

void Cache::set_capacity_bytes(std::size_t bytes) {
  capacity_.store(bytes, std::memory_order_relaxed);
  const std::size_t budget = bytes / kShards;
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    evict_locked(sh, budget);
  }
}

void Cache::clear() {
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    sh.lru.clear();
    sh.index.clear();
    sh.bytes = 0;
  }
}

Cache::Stats Cache::stats() const {
  Stats out;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    out.hits += sh.hits;
    out.misses += sh.misses;
    out.evictions += sh.evictions;
    out.failures += sh.failures;
    out.compile_ns += sh.compile_ns;
    out.entries += sh.lru.size();
    out.bytes += sh.bytes;
  }
  return out;
}

void Cache::evict_locked(Shard& sh, std::size_t budget) {
  // Least-recently-used first; the most recent entry stays resident even
  // when it alone exceeds the shard budget (evicting it would make the
  // cache thrash on every dispatch of that one program).
  while (sh.bytes > budget && sh.lru.size() > 1) {
    const auto victim = std::prev(sh.lru.end());
    auto& bucket = sh.index[victim->key];
    for (auto it = bucket.begin(); it != bucket.end(); ++it) {
      if (*it == victim) {
        bucket.erase(it);
        break;
      }
    }
    if (bucket.empty()) sh.index.erase(victim->key);
    sh.bytes -= victim->bytes;
    sh.lru.erase(victim);
    ++sh.evictions;
    counters().evictions.inc();
  }
}

std::shared_ptr<const CompiledProgram> Cache::get(const vm::Program& program) {
  const std::uint64_t key = vm::fingerprint(program);
  Shard& sh = shards_[key % kShards];
  std::lock_guard<std::mutex> lock(sh.mu);

  if (const auto bucket = sh.index.find(key); bucket != sh.index.end()) {
    for (const auto& it : bucket->second) {
      if (vm::structural_equal(it->program, program)) {
        sh.lru.splice(sh.lru.begin(), sh.lru, it);
        ++sh.hits;
        counters().hits.inc();
        obs::instant("plan.hit", key);
        return it->prog;  // null for a remembered decline
      }
    }
  }
  ++sh.misses;
  counters().misses.inc();

  std::shared_ptr<const CompiledProgram> prog;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    obs::Span span("plan.compile");
    SCANPRIM_FAULT_POINT("plan.compile");
    Compiler compiler;
    if (auto cp = compiler.compile(program)) {
      prog = std::make_shared<const CompiledProgram>(std::move(*cp));
    }
  } catch (...) {
    ++sh.failures;
    counters().failures.inc();
    return nullptr;  // transient: interpret this dispatch, retry next miss
  }
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  sh.compile_ns += ns;
  counters().compile_ns.add(ns);

  Entry e;
  e.key = key;
  e.program = program;
  e.prog = prog;
  e.bytes = prog ? prog->bytes
                 : 128 + program.size() * sizeof(vm::Instruction);
  sh.bytes += e.bytes;
  sh.lru.push_front(std::move(e));
  sh.index[key].push_back(sh.lru.begin());
  evict_locked(sh, capacity_.load(std::memory_order_relaxed) / kShards);
  return prog;
}

}  // namespace scanprim::plan
