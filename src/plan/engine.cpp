// The compiled-plan execution engine (docs/PLAN.md).
//
// execute() walks the program pc by pc: instructions outside compiled
// regions run through Interpreter::step (ONE implementation of every op's
// semantics and charges), and each region evaluates its def graph against
// the interpreter's live stack, registers and machine. Region execution is
// transactional: the machine's StepStats are snapshotted, all side effects
// (prints, stores, pushes) are deferred to a commit, and ANY failure while
// binding or running — a shape the executor cannot express, a bad permute
// index, a missing register, an injected fault — rolls the snapshot back
// and re-runs the region through the interpreter. Compiled and interpreted
// runs therefore produce identical outputs, registers, integer charge
// counters and error messages by construction; only bit_cycles (a float
// accumulated in charge order) may differ in low bits, because a region
// charges its stages in dataflow rather than program order.
//
// Chains replay their compile-time exec::PreparedGroups, so a cache-hit
// dispatch does zero record/fuse analysis (exec::Stats::plan_reuses counts
// the runs; fuse_runs stays 0).
#include <cstring>

#include "src/obs/obs.hpp"
#include "src/plan/plan.hpp"
#include "src/thread/thread_pool.hpp"

namespace scanprim::plan {

namespace {

using vm::VmError;

/// Thrown when a region cannot bind at run time; never escapes run_region.
struct Abandon {};

/// Evaluates a region's defs in dependency order against the live machine.
class Evaluator {
 public:
  Evaluator(const Region& r, vm::Interpreter& interp, exec::Executor& ex,
            std::vector<Vec> popped)
      : r_(r),
        interp_(interp),
        m_(interp.machine()),
        ex_(ex),
        popped_(std::move(popped)),
        slots_(r.values.size()),
        done_(r.values.size(), 0) {}

  void eval_all() {
    for (std::uint32_t id = 0; id < slots_.size(); ++id) eval(id);
  }

  Vec& slot(std::uint32_t id) { return slots_[id]; }
  bool evaluated(std::uint32_t id) const { return done_[id] != 0; }
  const exec::Stats& exec_stats() const { return exec_stats_; }

  /// Stack values in pop order, for restoring on abandon.
  std::vector<Vec>& popped() { return popped_; }

 private:
  const Vec& eval(std::uint32_t id) {
    if (done_[id]) return slots_[id];
    done_[id] = 1;  // defs are acyclic: safe to mark before recursing
    const ValueDef& d = r_.values[id];
    switch (d.kind) {
      case ValueDef::Kind::kStackIn:
        slots_[id] = std::move(popped_[d.depth]);
        break;
      case ValueDef::Kind::kLiteral: {
        const auto n = static_cast<std::size_t>(d.len);
        m_.charge_elementwise(n);
        slots_[id] = Vec(n, d.fill);
        break;
      }
      case ValueDef::Kind::kIota: {
        const auto n = static_cast<std::size_t>(d.len);
        Vec v(n);
        thread::parallel_for(n,
                             [&](std::size_t i) { v[i] = static_cast<I64>(i); });
        slots_[id] = std::move(v);
        break;
      }
      case ValueDef::Kind::kRegIn:
        // Existence check only (throws VmError when absent -> abandon ->
        // the interpreter rerun reports it with the exact pc). The slot
        // stays empty: readers borrow the register's storage via view(),
        // and the commit materialises the interpreter's Load copy only
        // when the value escapes the region (see run_region). Registers
        // are stable until commit, so the borrow cannot dangle.
        (void)interp_.register_value(d.reg);
        break;
      case ValueDef::Kind::kChain:
        slots_[id] = eval_chain(d);
        break;
      case ValueDef::Kind::kDirect:
        slots_[id] = eval_direct(d);
        break;
    }
    return slots_[id];
  }

  /// Read-only view of a def's value. kRegIn defs hand out the register's
  /// own storage, skipping the Load copy the interpreter makes — the copy
  /// is unobservable (and uncharged) unless the value leaves the region.
  std::span<const I64> view(std::uint32_t id) {
    const ValueDef& d = r_.values[id];
    if (d.kind == ValueDef::Kind::kRegIn) {
      eval(id);  // existence check
      return std::span<const I64>(interp_.register_value(d.reg));
    }
    return std::span<const I64>(eval(id));
  }

  Vec eval_chain(const ValueDef& d) {
    const std::span<const I64> in = view(d.input);
    const std::size_t n = in.size();
    exec::Pipeline<I64> p = exec::source(in);
    // Converted flag / index operands must outlive the run; Flags and
    // index vectors own heap buffers, so growth here never moves the data
    // the recorded FlagsView / span point at.
    std::vector<Flags> flag_bufs;
    std::vector<std::vector<std::size_t>> index_bufs;
    flag_bufs.reserve(d.stages.size());
    index_bufs.reserve(d.stages.size());
    for (const StageRecipe& s : d.stages) {
      bind_stage(p, s, n, flag_bufs, index_bufs);
    }
    Vec out = ex_.run(p, d.groups);
    exec_stats_ += ex_.stats();
    return out;
  }

  template <class F>
  void bind_binary(exec::Pipeline<I64>& p, const StageRecipe& s,
                   std::size_t n, F fn) {
    const std::span<const I64> o = view(s.operand);
    if (o.size() == n) {
      const std::span<const I64> sp = o;
      if (!s.reversed) {
        p = std::move(p) | exec::zip(sp, [fn](I64 d, I64 x) { return fn(d, x); });
      } else {
        p = std::move(p) | exec::zip(sp, [fn](I64 d, I64 x) { return fn(x, d); });
      }
      m_.charge_elementwise(n);
      return;
    }
    if (o.size() == 1) {  // n != 1 here: the scalar side broadcasts up
      m_.charge_broadcast(n);
      const I64 sc = o[0];
      if (!s.reversed) {
        p = std::move(p) | exec::map([fn, sc](I64 d) { return fn(d, sc); });
      } else {
        p = std::move(p) | exec::map([fn, sc](I64 d) { return fn(sc, d); });
      }
      m_.charge_elementwise(n);
      return;
    }
    // Length mismatch, or a scalar chain against a vector operand (the
    // result would outgrow the pipeline): the interpreter's broadcast
    // handles both, with its error message when neither side is scalar.
    throw Abandon{};
  }

  template <template <class> class OpT>
  void bind_scan(exec::Pipeline<I64>& p, bool backward) {
    if (!backward) {
      p = std::move(p) | exec::scan<OpT>();
    } else {
      p = std::move(p) | exec::backscan<OpT>();
    }
  }

  template <template <class> class OpT>
  void bind_seg_scan(exec::Pipeline<I64>& p, const StageRecipe& s,
                     std::size_t n, std::vector<Flags>& flag_bufs,
                     bool backward) {
    const std::span<const I64> f = view(s.operand);
    if (f.size() != n) throw Abandon{};  // "segment flag length"
    flag_bufs.push_back(to_flags(f));
    const FlagsView fv(flag_bufs.back());
    if (!backward) {
      p = std::move(p) | exec::seg_scan<OpT>(fv);
    } else {
      p = std::move(p) | exec::seg_backscan<OpT>(fv);
    }
  }

  void bind_stage(exec::Pipeline<I64>& p, const StageRecipe& s, std::size_t n,
                  std::vector<Flags>& flag_bufs,
                  std::vector<std::vector<std::size_t>>& index_bufs) {
    switch (s.op) {
      case SOp::kAdd: bind_binary(p, s, n, [](I64 a, I64 b) { return a + b; }); return;
      case SOp::kSub: bind_binary(p, s, n, [](I64 a, I64 b) { return a - b; }); return;
      case SOp::kMul: bind_binary(p, s, n, [](I64 a, I64 b) { return a * b; }); return;
      case SOp::kDiv:
        bind_binary(p, s, n, [](I64 a, I64 b) {
          if (b == 0) throw VmError("div by 0");  // abandon reinterprets
          return a / b;
        });
        return;
      case SOp::kMod:
        bind_binary(p, s, n, [](I64 a, I64 b) {
          if (b == 0) throw VmError("mod by 0");
          return a % b;
        });
        return;
      case SOp::kMin: bind_binary(p, s, n, [](I64 a, I64 b) { return a < b ? a : b; }); return;
      case SOp::kMax: bind_binary(p, s, n, [](I64 a, I64 b) { return a > b ? a : b; }); return;
      case SOp::kBitAnd: bind_binary(p, s, n, [](I64 a, I64 b) { return a & b; }); return;
      case SOp::kBitOr: bind_binary(p, s, n, [](I64 a, I64 b) { return a | b; }); return;
      case SOp::kBitXor: bind_binary(p, s, n, [](I64 a, I64 b) { return a ^ b; }); return;
      case SOp::kShl:
        bind_binary(p, s, n, [](I64 a, I64 b) {
          return static_cast<I64>(static_cast<std::uint64_t>(a) << (b & 63));
        });
        return;
      case SOp::kShr:
        bind_binary(p, s, n, [](I64 a, I64 b) {
          return static_cast<I64>(static_cast<std::uint64_t>(a) >> (b & 63));
        });
        return;
      case SOp::kLt: bind_binary(p, s, n, [](I64 a, I64 b) -> I64 { return a < b; }); return;
      case SOp::kLe: bind_binary(p, s, n, [](I64 a, I64 b) -> I64 { return a <= b; }); return;
      case SOp::kEq: bind_binary(p, s, n, [](I64 a, I64 b) -> I64 { return a == b; }); return;
      case SOp::kNe: bind_binary(p, s, n, [](I64 a, I64 b) -> I64 { return a != b; }); return;
      case SOp::kGe: bind_binary(p, s, n, [](I64 a, I64 b) -> I64 { return a >= b; }); return;
      case SOp::kGt: bind_binary(p, s, n, [](I64 a, I64 b) -> I64 { return a > b; }); return;

      case SOp::kNeg:
        p = std::move(p) | exec::map([](I64 d) { return -d; });
        apply_charge(s.charge, n);
        return;
      case SOp::kFlag01:
        p = std::move(p) | exec::map([](I64 d) -> I64 { return d != 0; });
        apply_charge(s.charge, n);
        return;
      case SOp::kFlag10:
        p = std::move(p) | exec::map([](I64 d) -> I64 { return d == 0; });
        apply_charge(s.charge, n);
        return;

      case SOp::kSelect: {
        const std::span<const I64> x = view(s.operand);
        const std::span<const I64> y = view(s.operand2);
        const auto fits = [n](std::span<const I64> v) {
          return v.size() == n || v.size() == 1;
        };
        // A scalar flowing value with vector operands would broadcast up
        // past the pipeline's length; everything else binds here.
        if (!fits(x) || !fits(y) || (n == 1 && (x.size() != 1 || y.size() != 1))) {
          throw Abandon{};
        }
        if (x.size() == 1 && n > 1) m_.charge_broadcast(n);
        if (y.size() == 1 && n > 1) m_.charge_broadcast(n);
        struct Src {
          const I64* p;
          I64 s;
          I64 at(std::size_t i) const { return p ? p[i] : s; }
        };
        const Src sx = x.size() == 1 ? Src{nullptr, x[0]} : Src{x.data(), 0};
        const Src sy = y.size() == 1 ? Src{nullptr, y[0]} : Src{y.data(), 0};
        exec::Node<I64> node;
        node.kind = exec::StageKind::Zip;
        switch (s.select_role) {
          case 0:  // condition flows; x = then, y = else
            node.apply = [sx, sy](I64* d, std::size_t b, std::size_t c) {
              for (std::size_t j = 0; j < c; ++j) {
                d[j] = d[j] != 0 ? sx.at(b + j) : sy.at(b + j);
              }
            };
            break;
          case 1:  // then flows; x = condition, y = else
            node.apply = [sx, sy](I64* d, std::size_t b, std::size_t c) {
              for (std::size_t j = 0; j < c; ++j) {
                if (sx.at(b + j) == 0) d[j] = sy.at(b + j);
              }
            };
            break;
          default:  // else flows; x = condition, y = then
            node.apply = [sx, sy](I64* d, std::size_t b, std::size_t c) {
              for (std::size_t j = 0; j < c; ++j) {
                if (sx.at(b + j) != 0) d[j] = sy.at(b + j);
              }
            };
            break;
        }
        p.nodes.push_back(std::move(node));
        m_.charge_elementwise(n);
        return;
      }

      case SOp::kPlusScan: bind_scan<Plus>(p, false); apply_charge(s.charge, n); return;
      case SOp::kMaxScan: bind_scan<Max>(p, false); apply_charge(s.charge, n); return;
      case SOp::kMinScan: bind_scan<Min>(p, false); apply_charge(s.charge, n); return;
      case SOp::kOrScan: bind_scan<Or>(p, false); apply_charge(s.charge, n); return;
      case SOp::kAndScan: bind_scan<And>(p, false); apply_charge(s.charge, n); return;
      case SOp::kPlusBackscan: bind_scan<Plus>(p, true); apply_charge(s.charge, n); return;
      case SOp::kMaxBackscan: bind_scan<Max>(p, true); apply_charge(s.charge, n); return;
      case SOp::kMinBackscan: bind_scan<Min>(p, true); apply_charge(s.charge, n); return;
      case SOp::kSegPlusScan:
        bind_seg_scan<Plus>(p, s, n, flag_bufs, false);
        apply_charge(s.charge, n);
        return;
      case SOp::kSegMaxScan:
        bind_seg_scan<Max>(p, s, n, flag_bufs, false);
        apply_charge(s.charge, n);
        return;
      case SOp::kSegMinScan:
        bind_seg_scan<Min>(p, s, n, flag_bufs, false);
        apply_charge(s.charge, n);
        return;
      case SOp::kSegPlusBackscan:
        bind_seg_scan<Plus>(p, s, n, flag_bufs, true);
        apply_charge(s.charge, n);
        return;

      case SOp::kPack: {
        const std::span<const I64> f = view(s.operand);
        if (f.size() != n) throw Abandon{};  // "pack lengths"
        flag_bufs.push_back(to_flags(f));
        p = std::move(p) | exec::pack(FlagsView(flag_bufs.back()));
        // machine::Machine::pack: enumerate's scan + the kept count + scatter.
        m_.charge_scan(n);
        m_.charge_combine(n);
        m_.charge_permute(n);
        return;
      }

      case SOp::kPermute: {
        const std::span<const I64> iv = view(s.operand);
        if (iv.size() != n) throw Abandon{};  // "permute lengths"
        index_bufs.emplace_back(iv.size());
        std::vector<std::size_t>& idx = index_bufs.back();
        if (s.checked) {
          // The interpreter's bounds + EREW uniqueness checks, charge-free.
          std::vector<std::uint8_t> hit(n, 0);
          for (std::size_t i = 0; i < iv.size(); ++i) {
            if (iv[i] < 0 || static_cast<std::size_t>(iv[i]) >= n) {
              throw Abandon{};  // "index ... out of range"
            }
            idx[i] = static_cast<std::size_t>(iv[i]);
            if (hit[idx[i]]) throw Abandon{};  // "indices not unique"
            hit[idx[i]] = 1;
          }
        } else {
          // Split's indices are a permutation by construction (the machine
          // skips the checks the same way).
          for (std::size_t i = 0; i < iv.size(); ++i) {
            idx[i] = static_cast<std::size_t>(iv[i]);
          }
        }
        p = std::move(p) | exec::permute(std::span<const std::size_t>(idx));
        apply_charge(s.charge, n);
        return;
      }

      case SOp::kGather: {
        // The flowing value is the *index*; out-of-range entries surface
        // mid-run, abandon, and reinterpret into to_index's exact error.
        const std::span<const I64> src = view(s.operand);
        const I64* base = src.data();
        const auto bound = static_cast<I64>(src.size());
        p = std::move(p) | exec::map([base, bound](I64 d) -> I64 {
              if (d < 0 || d >= bound) throw VmError("gather index range");
              return base[d];
            });
        apply_charge(s.charge, n);
        return;
      }

      case SOp::kSplitTop: {
        const std::span<const I64> f = view(s.operand);
        if (f.size() != n) throw Abandon{};
        const I64* fp = f.data();
        const auto nn = static_cast<I64>(n);
        exec::Node<I64> node;
        node.kind = exec::StageKind::Zip;
        node.apply = [fp, nn](I64* d, std::size_t b, std::size_t c) {
          for (std::size_t j = 0; j < c; ++j) {
            d[j] = fp[b + j] != 0 ? nn - d[j] - 1 : kSplitTake;
          }
        };
        p.nodes.push_back(std::move(node));
        apply_charge(s.charge, n);
        return;
      }
      case SOp::kSplitMerge: {
        const std::span<const I64> down = view(s.operand);
        if (down.size() != n) throw Abandon{};
        p = std::move(p) |
            exec::zip(down, [](I64 d, I64 dn) {
              return d == kSplitTake ? dn : d;
            });
        apply_charge(s.charge, n);
        return;
      }
    }
    throw Abandon{};  // unreachable: every SOp is handled above
  }

  void apply_charge(Charge c, std::size_t n) {
    switch (c) {
      case Charge::kNone: return;
      case Charge::kElementwise: m_.charge_elementwise(n); return;
      case Charge::kScan: m_.charge_scan(n); return;
      case Charge::kPermute: m_.charge_permute(n); return;
    }
  }

  Vec eval_direct(const ValueDef& d) {
    switch (d.direct_op) {
      case vm::Op::Length: {
        return Vec{static_cast<I64>(view(d.input).size())};
      }
      case vm::Op::PlusReduce: return reduce_direct(d, Plus<I64>{});
      case vm::Op::MaxReduce: return reduce_direct(d, Max<I64>{});
      case vm::Op::MinReduce: return reduce_direct(d, Min<I64>{});
      case vm::Op::OrReduce: return reduce_direct(d, Or<I64>{});
      case vm::Op::AndReduce: return reduce_direct(d, And<I64>{});
      case vm::Op::SegCopy: {
        const std::span<const I64> a = view(d.input);
        const std::span<const I64> f = view(d.input2);
        if (f.size() != a.size()) throw Abandon{};
        const Flags fl = to_flags(f);
        return m_.seg_copy(a, FlagsView(fl));
      }
      case vm::Op::SegPlusDistribute: {
        const std::span<const I64> a = view(d.input);
        const std::span<const I64> f = view(d.input2);
        if (f.size() != a.size()) throw Abandon{};
        const Flags fl = to_flags(f);
        return m_.seg_distribute(a, FlagsView(fl), Plus<I64>{});
      }
      case vm::Op::Distribute: {
        const std::span<const I64> value = view(d.input);
        const std::span<const I64> len = view(d.input2);
        if (len.size() != 1 || value.size() != 1 || len[0] < 0) {
          throw Abandon{};  // scalar / negative-length errors
        }
        const auto n = static_cast<std::size_t>(len[0]);
        m_.charge_broadcast(n);
        return Vec(n, value[0]);
      }
      default:
        throw Abandon{};  // unreachable: the compiler only emits the above
    }
  }

  template <class OpT>
  Vec reduce_direct(const ValueDef& d, OpT op) {
    return Vec{m_.reduce(view(d.input), op)};
  }

  static Flags to_flags(std::span<const I64> v) {
    Flags f(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) f[i] = v[i] != 0;
    return f;
  }

  const Region& r_;
  vm::Interpreter& interp_;
  machine::Machine& m_;
  exec::Executor& ex_;
  std::vector<Vec> popped_;  ///< runtime stack values, pop order (top first)
  std::vector<Vec> slots_;
  std::vector<std::uint8_t> done_;
  exec::Stats exec_stats_;
};

/// Re-run [pc_begin, pc_end) through the interpreter, counting each
/// instruction. Straight-line by construction, so execution falls off the
/// region's end (or throws the interpreter's exact error mid-way).
void reinterpret_region(vm::Interpreter& interp, const vm::Program& program,
                        const Region& r) {
  for (std::size_t pc = r.pc_begin; pc < r.pc_end;) {
    interp.count_executed(1);
    pc = interp.step(program, pc);
  }
}

/// One region, transactionally. The caller has verified the instruction
/// budget covers the whole region.
void run_region(vm::Interpreter& interp, const vm::Program& program,
                const Region& r, exec::Executor& ex, exec::Stats* stats) {
  machine::Machine& m = interp.machine();
  if (interp.stack_depth() < r.pops) {
    // Underflow: the interpreter rerun throws it at the exact pc.
    reinterpret_region(interp, program, r);
    return;
  }
  const machine::StepStats snapshot = m.stats();
  std::vector<Vec> popped(r.pops);
  for (std::size_t i = 0; i < r.pops; ++i) popped[i] = interp.pop_value();

  Evaluator ev(r, interp, ex, std::move(popped));
  try {
    ev.eval_all();
  } catch (...) {
    // Roll back: restore charges and the stack (kStackIn slots may have
    // been moved out — put whichever copy survives back), then replay the
    // region interpreted for exact semantics, charges and error messages.
    m.set_stats(snapshot);
    for (std::uint32_t id = 0; id < r.values.size(); ++id) {
      const ValueDef& d = r.values[id];
      if (d.kind == ValueDef::Kind::kStackIn && ev.evaluated(id)) {
        ev.popped()[d.depth] = std::move(ev.slot(id));
      }
    }
    for (std::size_t i = r.pops; i-- > 0;) {
      interp.push_value(std::move(ev.popped()[i]));
    }
    reinterpret_region(interp, program, r);
    return;
  }

  // Commit: prints, register stores, then the exit stack (bottom first).
  // Values move on their last use, mirroring the interpreter's moves.
  std::vector<std::uint32_t> refs(r.values.size(), 0);
  for (const std::uint32_t id : r.prints) ++refs[id];
  for (const auto& [name, id] : r.stores) ++refs[id];
  for (const std::uint32_t id : r.pushes) ++refs[id];
  // kRegIn slots stay empty during evaluation (readers borrow the register's
  // storage); an escaping register value materialises its Load copy here,
  // BEFORE any store commits — a later store to the same register must not
  // change what an earlier Load put on the stack.
  for (std::uint32_t id = 0; id < r.values.size(); ++id) {
    const ValueDef& d = r.values[id];
    if (refs[id] > 0 && d.kind == ValueDef::Kind::kRegIn) {
      ev.slot(id) = Vec(interp.register_value(d.reg));
    }
  }
  const auto take = [&](std::uint32_t id) -> Vec {
    if (--refs[id] == 0) return std::move(ev.slot(id));
    return Vec(ev.slot(id));
  };
  for (const std::uint32_t id : r.prints) interp.append_output(take(id));
  for (const auto& [name, id] : r.stores) interp.set_register(name, take(id));
  for (const std::uint32_t id : r.pushes) interp.push_value(take(id));
  interp.count_executed(r.instructions);
  if (stats) *stats += ev.exec_stats();
}

}  // namespace

void execute(vm::Interpreter& interp, const vm::Program& program,
             const CompiledProgram& plan, std::size_t max_instructions,
             exec::Executor& ex, exec::Stats* stats) {
  const std::size_t size = program.size();
  std::size_t pc = 0;
  while (pc < size) {
    const std::int32_t ri = plan.region_at[pc];
    if (ri >= 0) {
      const Region& r = plan.regions[static_cast<std::size_t>(ri)];
      if (interp.instructions_executed() + r.instructions > max_instructions) {
        // The budget runs out mid-region: step interpreted so the budget
        // error fires at the interpreter's exact pc.
        for (std::size_t ipc = r.pc_begin; ipc < r.pc_end;) {
          interp.count_executed(1);
          if (interp.instructions_executed() > max_instructions) {
            throw VmError("instruction budget exceeded at pc " +
                          std::to_string(ipc));
          }
          ipc = interp.step(program, ipc);
        }
      } else {
        interp.set_pc(r.pc_begin);
        run_region(interp, program, r, ex, stats);
      }
      pc = r.pc_end;
      continue;
    }
    interp.count_executed(1);
    if (interp.instructions_executed() > max_instructions) {
      throw VmError("instruction budget exceeded at pc " + std::to_string(pc));
    }
    pc = interp.step(program, pc);
  }
}

namespace {

bool plan_hook(vm::Interpreter& interp, const vm::Program& program,
               std::size_t max_instructions) {
  if (!enabled()) return false;
  const std::shared_ptr<const CompiledProgram> plan =
      Cache::instance().get(program);
  if (!plan) return false;  // declined or faulted: pure interpretation
  // One executor (and arena working set) per thread: the serve batcher and
  // tests may dispatch programs from many threads concurrently.
  static thread_local exec::Executor tl_executor;
  execute(interp, program, *plan, max_instructions, tl_executor);
  return true;
}

const bool g_hook_installed = [] {
  vm::Interpreter::set_run_hook(&plan_hook);
  return true;
}();

}  // namespace

bool ensure_hook() { return g_hook_installed; }

}  // namespace scanprim::plan
