// Lowering vm::Program straight-line regions onto exec pipeline shapes.
//
// The compiler runs an abstract interpretation of the stack: every value is
// a def id, ops combine def ids into chains (consecutive ops over the same
// flowing value extend one chain, so `load a | +scan | const.. | add | pack`
// becomes a single fused pipeline), and anything the executor cannot express
// ends up as a direct machine op or declines the region. Control flow is
// never compiled: jump targets and the instructions after jumps start new
// regions, and Jump/Jz/Jnz/Halt themselves stay with the interpreter.
//
// Charge parity: every stage carries the charge the interpreter would have
// made for its op (src/vm/interpreter.cpp and machine::Machine's compound
// ops), so a compiled run debits the machine::Machine identically — only
// the order of charges within a region may differ, which leaves all integer
// StepStats fields exact (bit_cycles, a float accumulator, can permute).
#include <map>
#include <utility>

#include "src/plan/plan.hpp"

namespace scanprim::plan {

namespace {

using vm::Op;

bool is_control(Op op) {
  return op == Op::Jump || op == Op::Jz || op == Op::Jnz || op == Op::Halt;
}

bool binary_sop(Op op, SOp* out) {
  switch (op) {
    case Op::Add: *out = SOp::kAdd; return true;
    case Op::Sub: *out = SOp::kSub; return true;
    case Op::Mul: *out = SOp::kMul; return true;
    case Op::Div: *out = SOp::kDiv; return true;
    case Op::Mod: *out = SOp::kMod; return true;
    case Op::MinOp: *out = SOp::kMin; return true;
    case Op::MaxOp: *out = SOp::kMax; return true;
    case Op::BitAnd: *out = SOp::kBitAnd; return true;
    case Op::BitOr: *out = SOp::kBitOr; return true;
    case Op::BitXor: *out = SOp::kBitXor; return true;
    case Op::Shl: *out = SOp::kShl; return true;
    case Op::Shr: *out = SOp::kShr; return true;
    case Op::Lt: *out = SOp::kLt; return true;
    case Op::Le: *out = SOp::kLe; return true;
    case Op::Eq: *out = SOp::kEq; return true;
    case Op::Ne: *out = SOp::kNe; return true;
    case Op::Ge: *out = SOp::kGe; return true;
    case Op::Gt: *out = SOp::kGt; return true;
    default: return false;
  }
}

bool scan_sop(Op op, SOp* out) {
  switch (op) {
    case Op::PlusScan: *out = SOp::kPlusScan; return true;
    case Op::MaxScan: *out = SOp::kMaxScan; return true;
    case Op::MinScan: *out = SOp::kMinScan; return true;
    case Op::OrScan: *out = SOp::kOrScan; return true;
    case Op::AndScan: *out = SOp::kAndScan; return true;
    case Op::PlusBackscan: *out = SOp::kPlusBackscan; return true;
    case Op::MaxBackscan: *out = SOp::kMaxBackscan; return true;
    case Op::MinBackscan: *out = SOp::kMinBackscan; return true;
    default: return false;
  }
}

bool seg_scan_sop(Op op, SOp* out) {
  switch (op) {
    case Op::SegPlusScan: *out = SOp::kSegPlusScan; return true;
    case Op::SegMaxScan: *out = SOp::kSegMaxScan; return true;
    case Op::SegMinScan: *out = SOp::kSegMinScan; return true;
    case Op::SegPlusBackscan: *out = SOp::kSegPlusBackscan; return true;
    default: return false;
  }
}

bool reduce_op(Op op) {
  switch (op) {
    case Op::PlusReduce:
    case Op::MaxReduce:
    case Op::MinReduce:
    case Op::OrReduce:
    case Op::AndReduce: return true;
    default: return false;
  }
}

/// The exec stage kind a recipe lowers to, for shape preparation. Scalar
/// operands bind as Map instead of Zip at run time, but the fuser treats
/// Map and Zip identically, so preparing with either gives the same groups.
exec::StageKind stage_kind(SOp op) {
  switch (op) {
    case SOp::kPlusScan: case SOp::kMaxScan: case SOp::kMinScan:
    case SOp::kOrScan: case SOp::kAndScan:
    case SOp::kPlusBackscan: case SOp::kMaxBackscan: case SOp::kMinBackscan:
      return exec::StageKind::Scan;
    case SOp::kSegPlusScan: case SOp::kSegMaxScan: case SOp::kSegMinScan:
    case SOp::kSegPlusBackscan:
      return exec::StageKind::SegScan;
    case SOp::kPack: return exec::StageKind::Pack;
    case SOp::kPermute: return exec::StageKind::Permute;
    default: return exec::StageKind::Zip;
  }
}

/// Abstract interpretation of one straight-line run [begin, end).
class RegionBuilder {
 public:
  RegionBuilder(const vm::Program& program, std::size_t begin, std::size_t end)
      : program_(program), begin_(begin), end_(end) {}

  /// False declines the region (it interprets instead).
  bool build() {
    for (std::size_t pc = begin_; pc < end_; ++pc) {
      if (!lower(program_[pc])) return false;
    }
    prepare_chains();
    return true;
  }

  Region take() {
    Region r;
    r.pc_begin = begin_;
    r.pc_end = end_;
    r.instructions = end_ - begin_;
    r.pops = pops_;
    r.values = std::move(defs_);
    r.prints = std::move(prints_);
    for (auto& [name, id] : regs_) r.stores.emplace_back(name, id);
    r.pushes = std::move(stack_);
    return r;
  }

 private:
  std::uint32_t add(ValueDef d) {
    defs_.push_back(std::move(d));
    ext_.push_back(0);
    return static_cast<std::uint32_t>(defs_.size() - 1);
  }

  std::uint32_t stack_in() {
    ValueDef d;
    d.kind = ValueDef::Kind::kStackIn;
    d.depth = pops_++;
    return add(std::move(d));
  }

  std::uint32_t pop_val() {
    if (!stack_.empty()) {
      const std::uint32_t id = stack_.back();
      stack_.pop_back();
      return id;
    }
    return stack_in();
  }

  /// Peek `depth` from the top, synthesising runtime slots below the
  /// symbolic stack as needed (they re-push at commit, a net no-op).
  std::uint32_t peek_val(std::size_t depth) {
    while (stack_.size() <= depth) {
      stack_.insert(stack_.begin(), stack_in());
    }
    return stack_[stack_.size() - 1 - depth];
  }

  void push_val(std::uint32_t id) { stack_.push_back(id); }

  bool extendable_chain(std::uint32_t id) const {
    return defs_[id].kind == ValueDef::Kind::kChain && ext_[id];
  }

  /// Route a stage onto `id`: extend its chain in place when the value has
  /// a single live reference, otherwise start a new chain reading it.
  std::uint32_t flow(std::uint32_t id, StageRecipe s) {
    if (extendable_chain(id)) {
      defs_[id].stages.push_back(std::move(s));
      return id;
    }
    ValueDef d;
    d.kind = ValueDef::Kind::kChain;
    d.input = id;
    d.stages.push_back(std::move(s));
    return add(std::move(d));
  }

  void push_chain(std::uint32_t id) {
    push_val(id);
    ext_[id] = 1;
  }

  bool lower(const vm::Instruction& ins) {
    SOp sop;
    if (binary_sop(ins.op, &sop)) {
      const std::uint32_t b = pop_val();
      const std::uint32_t a = pop_val();
      StageRecipe s;
      s.op = sop;
      if (extendable_chain(b)) {
        s.operand = a;
        s.reversed = true;
        push_chain(flow(b, std::move(s)));
      } else {
        s.operand = b;
        push_chain(flow(a, std::move(s)));
      }
      return true;
    }
    if (scan_sop(ins.op, &sop)) {
      StageRecipe s;
      s.op = sop;
      s.charge = Charge::kScan;
      push_chain(flow(pop_val(), std::move(s)));
      return true;
    }
    if (seg_scan_sop(ins.op, &sop)) {
      const std::uint32_t f = pop_val();
      const std::uint32_t a = pop_val();
      StageRecipe s;
      s.op = sop;
      s.operand = f;
      s.charge = Charge::kScan;
      push_chain(flow(a, std::move(s)));
      return true;
    }
    if (reduce_op(ins.op)) {
      ValueDef d;
      d.kind = ValueDef::Kind::kDirect;
      d.direct_op = ins.op;
      d.input = pop_val();
      push_val(add(std::move(d)));
      return true;
    }
    switch (ins.op) {
      case Op::PushConst: {
        if (ins.imm0 < 0) return false;  // interpreter territory (bad_alloc)
        ValueDef d;
        d.kind = ValueDef::Kind::kLiteral;
        d.len = ins.imm0;
        d.fill = ins.imm1;
        push_val(add(std::move(d)));
        return true;
      }
      case Op::PushIndex: {
        if (ins.imm0 < 0) return false;
        ValueDef d;
        d.kind = ValueDef::Kind::kIota;
        d.len = ins.imm0;
        push_val(add(std::move(d)));
        return true;
      }
      case Op::Dup: {
        const std::uint32_t id = peek_val(0);
        push_val(id);
        ext_[id] = 0;  // two live references: the chain may not mutate
        return true;
      }
      case Op::Pop:
        pop_val();  // the value still evaluates (charge parity), unused
        return true;
      case Op::Swap: {
        const std::uint32_t b = pop_val();
        const std::uint32_t a = pop_val();
        push_val(b);
        push_val(a);
        return true;
      }
      case Op::Over: {
        const std::uint32_t id = peek_val(1);
        push_val(id);
        ext_[id] = 0;
        return true;
      }
      case Op::Load: {
        if (const auto it = regs_.find(ins.name); it != regs_.end()) {
          push_val(it->second);
          ext_[it->second] = 0;  // aliased by the register from here on
          return true;
        }
        if (const auto it = reads_.find(ins.name); it != reads_.end()) {
          push_val(it->second);
          return true;
        }
        ValueDef d;
        d.kind = ValueDef::Kind::kRegIn;
        d.reg = ins.name;
        const std::uint32_t id = add(std::move(d));
        reads_.emplace(ins.name, id);
        push_val(id);
        return true;
      }
      case Op::Store: {
        const std::uint32_t id = pop_val();
        regs_[ins.name] = id;
        ext_[id] = 0;  // a later Load may re-reference it
        return true;
      }
      case Op::Length: {
        const std::uint32_t id = peek_val(0);
        // Freeze the peeked chain: a later in-place Pack extension would
        // shrink it and retroactively change this length.
        ext_[id] = 0;
        ValueDef d;
        d.kind = ValueDef::Kind::kDirect;
        d.direct_op = Op::Length;
        d.input = id;
        push_val(add(std::move(d)));
        return true;
      }
      case Op::Print:
        prints_.push_back(pop_val());
        return true;
      case Op::Neg: {
        StageRecipe s;
        s.op = SOp::kNeg;
        push_chain(flow(pop_val(), std::move(s)));
        return true;
      }
      case Op::Not: {
        StageRecipe s;
        s.op = SOp::kFlag10;
        push_chain(flow(pop_val(), std::move(s)));
        return true;
      }
      case Op::Select: {
        const std::uint32_t e = pop_val();
        const std::uint32_t t = pop_val();
        const std::uint32_t c = pop_val();
        StageRecipe s;
        s.op = SOp::kSelect;
        if (extendable_chain(e)) {
          s.operand = c;
          s.operand2 = t;
          s.select_role = 2;
          push_chain(flow(e, std::move(s)));
        } else if (extendable_chain(t)) {
          s.operand = c;
          s.operand2 = e;
          s.select_role = 1;
          push_chain(flow(t, std::move(s)));
        } else {
          s.operand = t;
          s.operand2 = e;
          s.select_role = 0;
          push_chain(flow(c, std::move(s)));
        }
        return true;
      }
      case Op::SegCopy:
      case Op::SegPlusDistribute: {
        ValueDef d;
        d.kind = ValueDef::Kind::kDirect;
        d.direct_op = ins.op;
        d.input2 = pop_val();  // flags
        d.input = pop_val();
        push_val(add(std::move(d)));
        return true;
      }
      case Op::SegEnumerate: {
        const std::uint32_t segs = pop_val();
        const std::uint32_t fv = pop_val();
        StageRecipe conv;
        conv.op = SOp::kFlag01;
        const std::uint32_t c1 = flow(fv, std::move(conv));
        ext_[c1] = 1;
        StageRecipe scan;
        scan.op = SOp::kSegPlusScan;
        scan.operand = segs;
        scan.charge = Charge::kScan;
        push_chain(flow(c1, std::move(scan)));
        return true;
      }
      case Op::Enumerate: {
        StageRecipe conv;
        conv.op = SOp::kFlag01;
        const std::uint32_t c1 = flow(pop_val(), std::move(conv));
        ext_[c1] = 1;
        StageRecipe scan;
        scan.op = SOp::kPlusScan;
        scan.charge = Charge::kScan;
        push_chain(flow(c1, std::move(scan)));
        return true;
      }
      case Op::Permute: {
        const std::uint32_t iv = pop_val();
        StageRecipe s;
        s.op = SOp::kPermute;
        s.operand = iv;
        s.charge = Charge::kPermute;
        push_chain(flow(pop_val(), std::move(s)));
        return true;
      }
      case Op::Gather: {
        const std::uint32_t iv = pop_val();
        const std::uint32_t a = pop_val();
        StageRecipe s;  // the *index* flows; the source is looked into
        s.op = SOp::kGather;
        s.operand = a;
        s.charge = Charge::kPermute;
        push_chain(flow(iv, std::move(s)));
        return true;
      }
      case Op::Pack: {
        const std::uint32_t f = pop_val();
        StageRecipe s;
        s.op = SOp::kPack;
        s.operand = f;
        s.charge = Charge::kNone;  // engine charges scan+combine+permute
        const std::uint32_t id = flow(pop_val(), std::move(s));
        push_val(id);
        ext_[id] = 0;  // the length changed: the chain must not extend
        return true;
      }
      case Op::SplitOp: {
        // machine::Machine::split (Fig. 3): down-enumerate of the inverted
        // flags, fused up-enumerate + top-index + merge, unchecked permute.
        // Charges mirror split_index exactly: ew, scan, scan, ew + permute.
        const std::uint32_t f = pop_val();
        const std::uint32_t a = pop_val();
        ValueDef down;
        down.kind = ValueDef::Kind::kChain;
        down.input = f;
        down.stages.resize(2);
        down.stages[0].op = SOp::kFlag10;  // the charged flag inversion
        down.stages[1].op = SOp::kPlusScan;
        down.stages[1].charge = Charge::kScan;
        const std::uint32_t down_id = add(std::move(down));
        ValueDef up;
        up.kind = ValueDef::Kind::kChain;
        up.input = f;
        up.stages.resize(4);
        up.stages[0].op = SOp::kFlag01;
        up.stages[0].charge = Charge::kNone;  // inversion charged once above
        up.stages[1].op = SOp::kPlusBackscan;
        up.stages[1].charge = Charge::kScan;
        up.stages[2].op = SOp::kSplitTop;
        up.stages[2].operand = f;
        up.stages[2].charge = Charge::kNone;
        up.stages[3].op = SOp::kSplitMerge;  // the charged select
        up.stages[3].operand = down_id;
        const std::uint32_t up_id = add(std::move(up));
        StageRecipe pm;
        pm.op = SOp::kPermute;
        pm.operand = up_id;
        pm.charge = Charge::kPermute;
        pm.checked = false;  // correct by construction, as in the machine
        push_chain(flow(a, std::move(pm)));
        return true;
      }
      case Op::Distribute: {
        ValueDef d;
        d.kind = ValueDef::Kind::kDirect;
        d.direct_op = Op::Distribute;
        d.input2 = pop_val();  // length scalar (popped first)
        d.input = pop_val();   // value scalar
        push_val(add(std::move(d)));
        return true;
      }
      default:
        return false;  // control flow (never in a region) / unknown op
    }
  }

  /// Fuse every chain's shape once. Groups depend only on stage kinds, so
  /// the prepared shape replays for any vector length (and for either
  /// Map/Zip binding of scalar-vs-vector operands).
  void prepare_chains() {
    for (ValueDef& d : defs_) {
      if (d.kind != ValueDef::Kind::kChain) continue;
      std::vector<exec::StageKind> kinds;
      kinds.reserve(d.stages.size() + 1);
      kinds.push_back(exec::StageKind::Source);
      for (const StageRecipe& s : d.stages) kinds.push_back(stage_kind(s.op));
      exec::FuseOptions fo;
      fo.tile = scanprim::detail::chained_tile_elements<I64>();
      d.groups.groups =
          exec::fuse(std::span<const exec::StageKind>(kinds), fo);
      d.groups.tile = fo.tile;
      d.groups.stages = kinds.size();
    }
  }

  const vm::Program& program_;
  std::size_t begin_, end_;
  std::vector<ValueDef> defs_;
  std::vector<std::uint8_t> ext_;      ///< def id -> chain may extend in place
  std::vector<std::uint32_t> stack_;   ///< symbolic stack, bottom first
  std::map<std::string, std::uint32_t> regs_;   ///< in-region register writes
  std::map<std::string, std::uint32_t> reads_;  ///< memoised register reads
  std::uint32_t pops_ = 0;
  std::vector<std::uint32_t> prints_;
};

std::size_t estimate_bytes(const CompiledProgram& cp) {
  std::size_t b = 512 + cp.program.size() * (sizeof(vm::Instruction) + 16) +
                  cp.region_at.size() * sizeof(std::int32_t);
  for (const Region& r : cp.regions) {
    b += sizeof(Region) + r.values.size() * (sizeof(ValueDef) + 32);
    for (const ValueDef& d : r.values) {
      b += d.stages.size() * sizeof(StageRecipe) +
           d.groups.groups.size() * sizeof(exec::Group) + d.reg.size();
    }
    b += (r.prints.size() + r.pushes.size()) * sizeof(std::uint32_t);
    for (const auto& [name, id] : r.stores) b += name.size() + 16;
  }
  return b;
}

}  // namespace

std::optional<CompiledProgram> Compiler::compile(
    const vm::Program& program) const {
  if (program.empty()) return std::nullopt;
  const std::size_t n = program.size();

  // Region leaders: pc 0, every static jump target, and the instruction
  // after each control op. Targets can only be leaders (never region
  // interiors), so no branch ever lands mid-region.
  std::vector<std::uint8_t> leader(n + 1, 0);
  leader[0] = 1;
  for (std::size_t pc = 0; pc < n; ++pc) {
    const Op op = program[pc].op;
    if (op == Op::Jump || op == Op::Jz || op == Op::Jnz) {
      const std::int64_t t = program[pc].imm0;
      if (t >= 0 && static_cast<std::size_t>(t) <= n) leader[t] = 1;
    }
    if (is_control(op)) leader[pc + 1] = 1;
  }

  CompiledProgram cp;
  cp.key = vm::fingerprint(program);
  cp.program = program;
  cp.total_instructions = n;
  cp.region_at.assign(n, -1);

  std::size_t pc = 0;
  while (pc < n) {
    if (is_control(program[pc].op)) {
      ++pc;
      continue;
    }
    std::size_t end = pc + 1;
    while (end < n && !leader[end] && !is_control(program[end].op)) ++end;
    RegionBuilder rb(program, pc, end);
    if (rb.build()) {
      cp.region_at[pc] = static_cast<std::int32_t>(cp.regions.size());
      Region r = rb.take();
      cp.compiled_instructions += r.instructions;
      cp.regions.push_back(std::move(r));
    }
    pc = end;
  }
  if (cp.regions.empty()) return std::nullopt;
  cp.bytes = estimate_bytes(cp);
  return cp;
}

}  // namespace scanprim::plan
