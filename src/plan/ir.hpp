// Intermediate representation for compiled VM plans (docs/PLAN.md).
//
// The compiler (compiler.cpp) walks a vm::Program's straight-line regions by
// abstract stack interpretation and lowers each into a dataflow graph of
// `ValueDef`s. A def is either an input (a runtime stack slot or register),
// a generated vector (const / iota), a *chain* — a flowing value with a list
// of `StageRecipe`s that map one-for-one onto exec pipeline stages — or a
// *direct* op (reductions, segment copies) evaluated straight against the
// machine. Chains carry their exec::PreparedGroups, computed once at compile
// time: fusion depends only on the stage-kind sequence, never on vector
// lengths, so one compiled region serves any n (shape polymorphism).
//
// Everything here is immutable after compilation and shared across threads
// via shared_ptr<const CompiledProgram> — the engine (engine.cpp) keeps all
// run state (slots, stacks, machines) on its own frame.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/exec/executor.hpp"
#include "src/vm/isa.hpp"

namespace scanprim::plan {

using Vec = std::vector<std::int64_t>;
using I64 = std::int64_t;

inline constexpr std::uint32_t kNoValue = 0xffffffffu;

/// Stage micro-ops a chain is built from. Binary ops name the VM semantics;
/// the synthetic ops at the bottom are the pieces SplitOp / Enumerate lower
/// into (mirroring machine::Machine::split_index, Fig. 3 of the paper).
enum class SOp : std::uint8_t {
  // elementwise binary: flowing value combined with `operand`
  kAdd, kSub, kMul, kDiv, kMod, kMin, kMax,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kLt, kLe, kEq, kNe, kGe, kGt,
  // elementwise unary
  kNeg,
  kFlag01,  ///< d = d != 0 ? 1 : 0   (Enumerate's flag load; also Not^-1)
  kFlag10,  ///< d = d != 0 ? 0 : 1   (Not; split's down-flag inversion)
  // ternary
  kSelect,  ///< cond ? then : else; `select_role` says which operand flows
  // scans (one per fused group; the fuser splits chains as needed)
  kPlusScan, kMaxScan, kMinScan, kOrScan, kAndScan,
  kPlusBackscan, kMaxBackscan, kMinBackscan,
  kSegPlusScan, kSegMaxScan, kSegMinScan, kSegPlusBackscan,
  // data movement
  kPack,     ///< keep flagged elements (ends chain extension: length changes)
  kPermute,  ///< EREW scatter by `operand` (fusion barrier, same pipeline)
  kGather,   ///< d = operand[d]; the *index* is the flowing value
  // SplitOp micro-ops (up-enumerate side)
  kSplitTop,    ///< d = operand[i] != 0 ? n - d - 1 : kSplitTake
  kSplitMerge,  ///< d = d == kSplitTake ? operand[i] : d
};

/// Sentinel the split lowering threads through kSplitTop/kSplitMerge; it can
/// never collide with a real target index (those live in [0, n)).
inline constexpr I64 kSplitTake = -1;

/// What the machine is charged when a stage binds. Mirrors the interpreter's
/// charges exactly (src/vm/interpreter.cpp); stages of compound lowerings
/// that the machine does not charge for individually use kNone.
enum class Charge : std::uint8_t { kNone, kElementwise, kScan, kPermute };

struct StageRecipe {
  SOp op{};
  /// Second input def: zip partner, segment/pack flags, permute index,
  /// gather source. kNoValue for unary stages and plain scans.
  std::uint32_t operand = kNoValue;
  std::uint32_t operand2 = kNoValue;  ///< select only: the third input
  /// Binary only: the flowing value was the *second* popped operand, so the
  /// zip lambda runs fn(operand, flowing) instead of fn(flowing, operand).
  bool reversed = false;
  /// Select only: which VM operand flows through the chain
  /// (0 = condition, 1 = then-value, 2 = else-value).
  std::uint8_t select_role = 0;
  Charge charge = Charge::kElementwise;
  /// Permute only: run the interpreter's bounds + EREW-uniqueness checks.
  /// False for the split lowering, whose indices are correct by construction
  /// (the interpreter's SplitOp skips the checks the same way).
  bool checked = true;
};

struct ValueDef {
  enum class Kind : std::uint8_t {
    kStackIn,  ///< runtime stack slot: depth 0 = top at region entry
    kLiteral,  ///< PushConst: `len` copies of `fill`
    kIota,     ///< PushIndex: [0, len)
    kRegIn,    ///< register read (memoised per region)
    kChain,    ///< pipeline over `input` with `stages`
    kDirect,   ///< machine-evaluated op (`direct_op`) over input / input2
  };
  Kind kind = Kind::kStackIn;

  std::uint32_t depth = 0;          // kStackIn
  I64 len = 0, fill = 0;            // kLiteral / kIota
  std::string reg;                  // kRegIn
  std::uint32_t input = kNoValue;   // kChain / kDirect
  std::uint32_t input2 = kNoValue;  // kDirect: flags / length operand
  vm::Op direct_op{};               // kDirect

  // kChain: the recipe list plus the fused shape, prepared at compile time
  // so cache-hit dispatch does zero fuse work (exec::Stats::plan_reuses
  // counts such runs; fuse_runs stays 0).
  std::vector<StageRecipe> stages;
  exec::PreparedGroups groups;
};

/// One straight-line run of compilable instructions. The engine pops `pops`
/// runtime values, evaluates every def, then commits prints, stores and
/// pushes — or abandons wholesale (restoring the stat snapshot and stack)
/// and re-runs [pc_begin, pc_end) through the interpreter.
struct Region {
  std::size_t pc_begin = 0;
  std::size_t pc_end = 0;
  std::size_t instructions = 0;  ///< == pc_end - pc_begin
  std::uint32_t pops = 0;        ///< runtime stack slots consumed
  std::vector<ValueDef> values;
  std::vector<std::uint32_t> prints;  ///< output log appends, in order
  std::vector<std::pair<std::string, std::uint32_t>> stores;  ///< final writes
  std::vector<std::uint32_t> pushes;  ///< stack at exit, bottom first
};

/// A compiled plan: the regions plus a pc -> region map. Shared, immutable.
struct CompiledProgram {
  std::uint64_t key = 0;  ///< vm::fingerprint of `program`
  vm::Program program;    ///< the exact program (cache collision guard)
  std::vector<Region> regions;
  /// region_at[pc] indexes `regions` at each region's first pc, -1 elsewhere
  /// (interior region pcs and interpreted instructions).
  std::vector<std::int32_t> region_at;
  std::size_t bytes = 0;  ///< cache accounting estimate
  std::size_t compiled_instructions = 0;
  std::size_t total_instructions = 0;
};

}  // namespace scanprim::plan
