// Merged execution of one plan over many jobs' registers (coalesce.hpp).
//
// The evaluator below is engine.cpp's Evaluator transposed: instead of one
// job's registers it works over the CONCATENATION of every job's registers,
// tracking each def's per-job lengths so printed vectors split back exactly.
// The transposition table:
//   - kRegIn        -> concatenate the jobs' registers (missing one: bail)
//   - elementwise   -> unchanged (position-local, so concat-invariant)
//   - binary / select operands must match the flowing value's per-job
//     lengths EXACTLY — scalar broadcast inside a merged run would need one
//     scalar per job, which a single pipeline stage cannot express, so any
//     mismatch bails to per-job execution instead
//   - forward scan  -> segmented scan over the job-boundary flags
//   - segmented forward scan -> segmented scan over the operand's flags OR'd
//     with the job boundaries (each job's first element starts a segment,
//     which is exactly the per-job semantics of "a segmented scan restarts
//     at the vector start")
// Each chain replays the plan's compile-time exec::PreparedGroups: the fuser
// treats Scan and SegScan identically (a group holds at most one of either)
// and the executor reads segment flags off the node, not the groups, so the
// swap leaves the prepared shape valid — and counted as ONE plan_reuse per
// chain for the whole merged batch.
//
// No machine, no interpreter, no charges: the serving layer only surfaces a
// PlanJob's printed vectors, and every failure path returns false so the
// caller's per-job fallback reproduces exact outputs, charges and errors.
#include "src/plan/coalesce.hpp"

#include <cstddef>
#include <utility>

#include "src/core/ops.hpp"
#include "src/core/segmented.hpp"
#include "src/obs/obs.hpp"
#include "src/vm/interpreter.hpp"

namespace scanprim::plan {

namespace {

using vm::VmError;

/// Thrown when the merged form cannot bind; never escapes execute_coalesced.
struct Bail {};

using RegMap = std::map<std::string, Vec>;
/// A def's length in each job (defs keep per-job lengths: nothing admitted
/// by coalescable() changes a vector's length).
using Lens = std::vector<std::size_t>;

bool stage_ok(SOp op) {
  switch (op) {
    case SOp::kAdd:
    case SOp::kSub:
    case SOp::kMul:
    case SOp::kDiv:
    case SOp::kMod:
    case SOp::kMin:
    case SOp::kMax:
    case SOp::kBitAnd:
    case SOp::kBitOr:
    case SOp::kBitXor:
    case SOp::kShl:
    case SOp::kShr:
    case SOp::kLt:
    case SOp::kLe:
    case SOp::kEq:
    case SOp::kNe:
    case SOp::kGe:
    case SOp::kGt:
    case SOp::kNeg:
    case SOp::kFlag01:
    case SOp::kFlag10:
    case SOp::kSelect:
    case SOp::kPlusScan:
    case SOp::kMaxScan:
    case SOp::kMinScan:
    case SOp::kOrScan:
    case SOp::kAndScan:
    case SOp::kSegPlusScan:
    case SOp::kSegMaxScan:
    case SOp::kSegMinScan:
      return true;
    // Backward scans would need a boundary convention this pass does not
    // prove; pack/permute/gather/split move data across positions, which is
    // not concat-invariant.
    case SOp::kPlusBackscan:
    case SOp::kMaxBackscan:
    case SOp::kMinBackscan:
    case SOp::kSegPlusBackscan:
    case SOp::kPack:
    case SOp::kPermute:
    case SOp::kGather:
    case SOp::kSplitTop:
    case SOp::kSplitMerge:
      return false;
  }
  return false;
}

/// Evaluates the region's defs over the jobs' concatenated registers.
class Merged {
 public:
  Merged(const Region& r, std::span<const RegMap* const> jobs,
         exec::Executor& ex)
      : r_(r),
        jobs_(jobs),
        ex_(ex),
        slots_(r.values.size()),
        lens_(r.values.size()),
        done_(r.values.size(), 0) {}

  void eval_all() {
    for (std::uint32_t id = 0; id < slots_.size(); ++id) eval(id);
  }

  const Vec& slot(std::uint32_t id) const { return slots_[id]; }
  const Lens& lens(std::uint32_t id) const { return lens_[id]; }
  const exec::Stats& exec_stats() const { return exec_stats_; }

 private:
  const Vec& eval(std::uint32_t id) {
    if (done_[id]) return slots_[id];
    done_[id] = 1;  // defs are acyclic: safe to mark before recursing
    const ValueDef& d = r_.values[id];
    switch (d.kind) {
      case ValueDef::Kind::kRegIn: {
        Lens lens(jobs_.size());
        std::size_t total = 0;
        for (std::size_t j = 0; j < jobs_.size(); ++j) {
          const auto it = jobs_[j]->find(d.reg);
          if (it == jobs_[j]->end()) throw Bail{};  // per-job run reports it
          lens[j] = it->second.size();
          total += lens[j];
        }
        Vec merged;
        merged.reserve(total);
        for (std::size_t j = 0; j < jobs_.size(); ++j) {
          const Vec& v = jobs_[j]->at(d.reg);
          merged.insert(merged.end(), v.begin(), v.end());
        }
        slots_[id] = std::move(merged);
        lens_[id] = std::move(lens);
        break;
      }
      case ValueDef::Kind::kChain:
        slots_[id] = eval_chain(d);
        lens_[id] = lens_[d.input];  // nothing admitted changes lengths
        break;
      default:
        throw Bail{};  // coalescable() admits only the kinds above
    }
    return slots_[id];
  }

  Vec eval_chain(const ValueDef& d) {
    const Vec& in = eval(d.input);
    const Lens& lens = lens_[d.input];
    const std::size_t n = in.size();
    exec::Pipeline<I64> p = exec::source(std::span<const I64>(in));
    // Segment-flag buffers must outlive the run (the recorded FlagsViews
    // point into them); Flags owns a heap buffer, so vector growth here
    // never moves the flagged data.
    std::vector<Flags> flag_bufs;
    flag_bufs.reserve(d.stages.size());
    for (const StageRecipe& s : d.stages) {
      bind_stage(p, s, n, lens, flag_bufs);
    }
    Vec out = ex_.run(p, d.groups);
    exec_stats_ += ex_.stats();
    return out;
  }

  /// The operand must be the same shape as the flowing value in EVERY job;
  /// see the file comment for why scalar broadcast cannot merge.
  const Vec& matched_operand(std::uint32_t id, std::size_t n,
                             const Lens& lens) {
    const Vec& o = eval(id);
    if (o.size() != n || lens_[id] != lens) throw Bail{};
    return o;
  }

  template <class F>
  void bind_binary(exec::Pipeline<I64>& p, const StageRecipe& s,
                   std::size_t n, const Lens& lens, F fn) {
    const std::span<const I64> sp(matched_operand(s.operand, n, lens));
    if (!s.reversed) {
      p = std::move(p) | exec::zip(sp, [fn](I64 d, I64 x) { return fn(d, x); });
    } else {
      p = std::move(p) | exec::zip(sp, [fn](I64 d, I64 x) { return fn(x, d); });
    }
  }

  /// Job-boundary segment flags: each job's first element starts a segment.
  static Flags boundaries(const Lens& lens, std::size_t n) {
    Flags f(n, 0);
    std::size_t at = 0;
    for (const std::size_t l : lens) {
      if (l > 0) f[at] = 1;
      at += l;
    }
    return f;
  }

  /// A plain forward scan becomes a segmented scan over the job boundaries.
  template <template <class> class OpT>
  void bind_boundary_scan(exec::Pipeline<I64>& p, std::size_t n,
                          const Lens& lens, std::vector<Flags>& flag_bufs) {
    flag_bufs.push_back(boundaries(lens, n));
    p = std::move(p) | exec::seg_scan<OpT>(FlagsView(flag_bufs.back()));
  }

  /// A segmented forward scan keeps its own flags, OR'd with the boundaries.
  template <template <class> class OpT>
  void bind_merged_seg_scan(exec::Pipeline<I64>& p, const StageRecipe& s,
                            std::size_t n, const Lens& lens,
                            std::vector<Flags>& flag_bufs) {
    const Vec& f = matched_operand(s.operand, n, lens);
    Flags fl(n);
    for (std::size_t i = 0; i < n; ++i) fl[i] = f[i] != 0;
    std::size_t at = 0;
    for (const std::size_t l : lens) {
      if (l > 0) fl[at] = 1;
      at += l;
    }
    flag_bufs.push_back(std::move(fl));
    p = std::move(p) | exec::seg_scan<OpT>(FlagsView(flag_bufs.back()));
  }

  void bind_stage(exec::Pipeline<I64>& p, const StageRecipe& s, std::size_t n,
                  const Lens& lens, std::vector<Flags>& flag_bufs) {
    switch (s.op) {
      case SOp::kAdd: bind_binary(p, s, n, lens, [](I64 a, I64 b) { return a + b; }); return;
      case SOp::kSub: bind_binary(p, s, n, lens, [](I64 a, I64 b) { return a - b; }); return;
      case SOp::kMul: bind_binary(p, s, n, lens, [](I64 a, I64 b) { return a * b; }); return;
      case SOp::kDiv:
        bind_binary(p, s, n, lens, [](I64 a, I64 b) {
          if (b == 0) throw VmError("div by 0");  // bail: per-job rerun
          return a / b;
        });
        return;
      case SOp::kMod:
        bind_binary(p, s, n, lens, [](I64 a, I64 b) {
          if (b == 0) throw VmError("mod by 0");
          return a % b;
        });
        return;
      case SOp::kMin: bind_binary(p, s, n, lens, [](I64 a, I64 b) { return a < b ? a : b; }); return;
      case SOp::kMax: bind_binary(p, s, n, lens, [](I64 a, I64 b) { return a > b ? a : b; }); return;
      case SOp::kBitAnd: bind_binary(p, s, n, lens, [](I64 a, I64 b) { return a & b; }); return;
      case SOp::kBitOr: bind_binary(p, s, n, lens, [](I64 a, I64 b) { return a | b; }); return;
      case SOp::kBitXor: bind_binary(p, s, n, lens, [](I64 a, I64 b) { return a ^ b; }); return;
      case SOp::kShl:
        bind_binary(p, s, n, lens, [](I64 a, I64 b) {
          return static_cast<I64>(static_cast<std::uint64_t>(a) << (b & 63));
        });
        return;
      case SOp::kShr:
        bind_binary(p, s, n, lens, [](I64 a, I64 b) {
          return static_cast<I64>(static_cast<std::uint64_t>(a) >> (b & 63));
        });
        return;
      case SOp::kLt: bind_binary(p, s, n, lens, [](I64 a, I64 b) -> I64 { return a < b; }); return;
      case SOp::kLe: bind_binary(p, s, n, lens, [](I64 a, I64 b) -> I64 { return a <= b; }); return;
      case SOp::kEq: bind_binary(p, s, n, lens, [](I64 a, I64 b) -> I64 { return a == b; }); return;
      case SOp::kNe: bind_binary(p, s, n, lens, [](I64 a, I64 b) -> I64 { return a != b; }); return;
      case SOp::kGe: bind_binary(p, s, n, lens, [](I64 a, I64 b) -> I64 { return a >= b; }); return;
      case SOp::kGt: bind_binary(p, s, n, lens, [](I64 a, I64 b) -> I64 { return a > b; }); return;

      case SOp::kNeg:
        p = std::move(p) | exec::map([](I64 d) { return -d; });
        return;
      case SOp::kFlag01:
        p = std::move(p) | exec::map([](I64 d) -> I64 { return d != 0; });
        return;
      case SOp::kFlag10:
        p = std::move(p) | exec::map([](I64 d) -> I64 { return d == 0; });
        return;

      case SOp::kSelect: {
        const I64* xp = matched_operand(s.operand, n, lens).data();
        const I64* yp = matched_operand(s.operand2, n, lens).data();
        exec::Node<I64> node;
        node.kind = exec::StageKind::Zip;
        switch (s.select_role) {
          case 0:  // condition flows; x = then, y = else
            node.apply = [xp, yp](I64* d, std::size_t b, std::size_t c) {
              for (std::size_t j = 0; j < c; ++j) {
                d[j] = d[j] != 0 ? xp[b + j] : yp[b + j];
              }
            };
            break;
          case 1:  // then flows; x = condition, y = else
            node.apply = [xp, yp](I64* d, std::size_t b, std::size_t c) {
              for (std::size_t j = 0; j < c; ++j) {
                if (xp[b + j] == 0) d[j] = yp[b + j];
              }
            };
            break;
          default:  // else flows; x = condition, y = then
            node.apply = [xp, yp](I64* d, std::size_t b, std::size_t c) {
              for (std::size_t j = 0; j < c; ++j) {
                if (xp[b + j] != 0) d[j] = yp[b + j];
              }
            };
            break;
        }
        p.nodes.push_back(std::move(node));
        return;
      }

      case SOp::kPlusScan: bind_boundary_scan<Plus>(p, n, lens, flag_bufs); return;
      case SOp::kMaxScan: bind_boundary_scan<Max>(p, n, lens, flag_bufs); return;
      case SOp::kMinScan: bind_boundary_scan<Min>(p, n, lens, flag_bufs); return;
      case SOp::kOrScan: bind_boundary_scan<Or>(p, n, lens, flag_bufs); return;
      case SOp::kAndScan: bind_boundary_scan<And>(p, n, lens, flag_bufs); return;
      case SOp::kSegPlusScan: bind_merged_seg_scan<Plus>(p, s, n, lens, flag_bufs); return;
      case SOp::kSegMaxScan: bind_merged_seg_scan<Max>(p, s, n, lens, flag_bufs); return;
      case SOp::kSegMinScan: bind_merged_seg_scan<Min>(p, s, n, lens, flag_bufs); return;

      default:
        throw Bail{};  // coalescable() admits only the stages above
    }
  }

  const Region& r_;
  std::span<const RegMap* const> jobs_;
  exec::Executor& ex_;
  std::vector<Vec> slots_;
  std::vector<Lens> lens_;
  std::vector<std::uint8_t> done_;
  exec::Stats exec_stats_;
};

}  // namespace

bool coalescable(const CompiledProgram& plan) {
  if (plan.regions.size() != 1) return false;
  const Region& r = plan.regions.front();
  // The region must BE the program: an interpreted instruction outside it
  // could print or store, which the merged run has no machine to replay.
  // (Halt never joins a region, so a trailing run of Halts is the one
  // interpreted tail that is provably side-effect-free.)
  if (r.pc_begin != 0) return false;
  for (std::size_t pc = r.pc_end; pc < plan.program.size(); ++pc) {
    if (plan.program[pc].op != vm::Op::Halt) return false;
  }
  if (r.pops != 0) return false;  // no runtime stack to concatenate
  for (const ValueDef& d : r.values) {
    switch (d.kind) {
      case ValueDef::Kind::kRegIn:
        break;
      case ValueDef::Kind::kChain:
        for (const StageRecipe& s : d.stages) {
          if (!stage_ok(s.op)) return false;
        }
        break;
      default:
        // Literals and iotas have a fixed compile-time length — one copy,
        // not one per job — and directs/stack inputs need a machine.
        return false;
    }
  }
  return true;
}

bool execute_coalesced(
    const CompiledProgram& plan,
    std::span<const std::map<std::string, Vec>* const> jobs,
    exec::Executor& ex, std::vector<std::vector<Vec>>& outputs,
    exec::Stats* stats) {
  if (jobs.empty() || plan.regions.size() != 1) return false;
  const Region& r = plan.regions.front();
  obs::Span span("plan.coalesce");
  Merged m(r, jobs, ex);
  try {
    m.eval_all();
    outputs.assign(jobs.size(), {});
    for (const std::uint32_t id : r.prints) {
      const Vec& v = m.slot(id);
      const Lens& lens = m.lens(id);
      std::size_t at = 0;
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        outputs[j].emplace_back(
            v.begin() + static_cast<std::ptrdiff_t>(at),
            v.begin() + static_cast<std::ptrdiff_t>(at + lens[j]));
        at += lens[j];
      }
    }
  } catch (...) {
    // Bail, VmError (div/mod by zero), allocation failure: the caller's
    // per-job fallback reproduces exact results and error messages.
    return false;
  }
  if (stats) *stats += m.exec_stats();
  return true;
}

}  // namespace scanprim::plan
