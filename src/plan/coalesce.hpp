// Same-plan job coalescing (docs/PLAN.md "Coalescing").
//
// The serving layer (src/serve) often sees a batching window full of PlanJobs
// naming the SAME registered plan over different registers — exactly the
// paper's "many independent scans ARE one segmented scan" situation (§2.3),
// one level up: a plan whose program is a single straight-line region of
// register-fed chains can run ONCE over the jobs' concatenated registers,
// with every forward scan swapped for its segmented variant over the job
// boundaries. The swap is free to prepare: Scan and SegScan fuse identically
// (exec::Group::has_scan covers both, and the segment flags live on the node,
// not in the groups), so the merged run replays the plan's compile-time
// exec::PreparedGroups unchanged — k coalesced jobs cost one chained dispatch
// per chain instead of k, and exec::Stats::plan_reuses moves once per chain.
//
// Correctness posture: coalescing is an OPTIMISATION with a total fallback.
// coalescable() admits only shapes whose merged execution is provably
// equivalent per job (no cross-job data motion, no length changes, no
// broadcasts); execute_coalesced() additionally bails — returning false
// without partial effects — on anything it meets at run time that per-job
// execution would handle differently (missing registers, length mismatches,
// div/mod by zero, allocation failure). The caller then runs the jobs
// individually and gets exact per-job results and error messages.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/exec/executor.hpp"
#include "src/plan/ir.hpp"

namespace scanprim::plan {

/// Whether `plan` qualifies for merged execution: one region covering the
/// whole program, no runtime stack inputs, every def a register read or a
/// chain of elementwise stages / selects / FORWARD scans (plain or
/// segmented). Backward scans are excluded — their concatenated form would
/// need boundary conventions this pass does not prove — as is anything that
/// moves or reshapes data across positions (pack, permute, gather, split).
bool coalescable(const CompiledProgram& plan);

/// Runs `plan` once over the concatenated registers of `jobs` (one register
/// map per job), splitting each printed vector back per job:
/// `outputs[j]` = job j's printed vectors, in program order — byte-identical
/// to running the plan per job. Returns false (leaving `outputs`
/// unspecified and `stats` untouched) when the merged form cannot bind; the
/// caller must then fall back to per-job execution. Requires
/// coalescable(plan).
bool execute_coalesced(
    const CompiledProgram& plan,
    std::span<const std::map<std::string, Vec>* const> jobs,
    exec::Executor& ex, std::vector<std::vector<Vec>>& outputs,
    exec::Stats* stats);

}  // namespace scanprim::plan
