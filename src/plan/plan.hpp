// VM-to-executor compilation with a shape-polymorphic plan cache
// (docs/PLAN.md).
//
// The compiler lowers a vm::Program's straight-line regions onto fused exec
// pipelines; the process-wide cache keys compiled plans on program structure
// (vm::fingerprint — opcode + immediates + names; the dtype is fixed by the
// ISA and lengths bind at run time, so one plan serves any n). The engine
// installs itself as the interpreter's run hook from a static initialiser in
// engine.cpp, so linking the plan objects is all it takes: every
// Interpreter::run() first consults the cache, executes the plan when one
// exists, and falls back to pure interpretation per instruction — and, on
// any in-region failure, per *region*, transactionally — so compiled and
// interpreted runs produce identical outputs, registers, charges and error
// messages.
//
// Knobs: SCANPRIM_PLAN=off disables the hook (pure interpretation);
// SCANPRIM_PLAN_CACHE_BYTES bounds the cache (default 64 MiB, LRU).
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/exec/executor.hpp"
#include "src/plan/ir.hpp"
#include "src/vm/interpreter.hpp"

namespace scanprim::plan {

/// Whether compiled-plan dispatch is active (SCANPRIM_PLAN; default on,
/// "0" / "off" / "false" disable). Read once per process.
bool enabled();

/// Lowers programs into CompiledPrograms. Stateless; the cache owns one.
class Compiler {
 public:
  /// Compile every straight-line region of `program`. Returns nullopt when
  /// nothing compiles (e.g. an all-control program) — the cache remembers
  /// the decline so repeated traffic skips re-analysis.
  std::optional<CompiledProgram> compile(const vm::Program& program) const;
};

/// Process-wide plan cache: striped-mutex sharded lookup keyed on
/// vm::fingerprint (exact program equality verified behind the hash), LRU
/// eviction under SCANPRIM_PLAN_CACHE_BYTES. Declined compiles are cached
/// as negative entries; faulted compiles (plan.compile fault point, OOM)
/// are *not* cached, so transient failures retry.
class Cache {
 public:
  /// The process cache the interpreter hook consults.
  static Cache& instance();

  Cache();  ///< an isolated cache (tests); capacity from the environment

  /// Look up `program`, compiling on miss. Null means "interpret": the
  /// program declined compilation or the compile faulted.
  std::shared_ptr<const CompiledProgram> get(const vm::Program& program);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t failures = 0;    ///< faulted compiles (not cached)
    std::uint64_t compile_ns = 0;  ///< total wall time spent compiling
    std::size_t entries = 0;       ///< resident entries (incl. negative)
    std::size_t bytes = 0;
  };
  Stats stats() const;

  std::size_t capacity_bytes() const;
  void set_capacity_bytes(std::size_t bytes);  ///< tests; evicts immediately
  void clear();

  /// pthread_atfork support: instance() installs hooks that hold every
  /// shard mutex across fork(), so a shard worker child (which serves
  /// PlanJobs through this same process-wide cache) never inherits one
  /// locked mid-insert. Not for any other use.
  void lock_shards_for_fork();
  void unlock_shards_after_fork();

 private:
  struct Entry {
    std::uint64_t key = 0;
    vm::Program program;  ///< collision guard: exact structural match
    std::shared_ptr<const CompiledProgram> prog;  ///< null = negative entry
    std::size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::uint64_t, std::vector<std::list<Entry>::iterator>>
        index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0, misses = 0, evictions = 0, failures = 0;
    std::uint64_t compile_ns = 0;
  };
  static constexpr std::size_t kShards = 16;

  void evict_locked(Shard& sh, std::size_t budget);

  std::array<Shard, kShards> shards_;
  std::atomic<std::size_t> capacity_;
};

/// Runs `plan` against the interpreter's live state (stack, registers,
/// output log, machine charges), exactly as interp.run(program) would.
/// Compiled regions that cannot bind at run time (shape mismatches, bad
/// indices, missing registers) roll back and re-run through the
/// interpreter, so outputs AND error messages match by construction.
/// `stats`, when given, accumulates exec::Stats across every pipeline run.
void execute(vm::Interpreter& interp, const vm::Program& program,
             const CompiledProgram& plan, std::size_t max_instructions,
             exec::Executor& ex, exec::Stats* stats = nullptr);

/// The interpreter hook engine.cpp registers from a static initialiser.
/// Touching this symbol forces the engine object to link (and the hook to
/// install) even under aggressive dead-stripping; returns true.
bool ensure_hook();

}  // namespace scanprim::plan
