// The lazy pipeline graph: `pipeline = source(v) | map(f) | scan<Plus>() |
// map(g) | pack(flags)` records nodes instead of executing. Nothing runs
// until an `Executor` (executor.hpp) is handed the pipeline; the fuser
// (fuser.hpp) then merges producer-consumer chains into single blocked
// passes.
//
// All spans recorded into a pipeline (source data, zip operands, pack flags,
// permute indices, segment flags) must stay alive until the pipeline runs.
#pragma once

#include <cassert>
#include <utility>

#include "src/exec/node.hpp"

namespace scanprim::exec {

/// A recorded scan-vector program over element type T. Built with `source`
/// and `operator|`; executed by `exec::Executor` or `exec::run`.
template <class T>
class Pipeline {
 public:
  std::vector<Node<T>> nodes;

  /// Length of the source vector (stage outputs keep this length until a
  /// pack stage shrinks it).
  std::size_t source_length() const { return nodes.front().length; }

  std::vector<StageKind> kinds() const {
    std::vector<StageKind> out;
    out.reserve(nodes.size());
    for (const auto& n : nodes) out.push_back(n.kind);
    return out;
  }
};

/// Pipeline head reading an existing vector (zero conversion: tiles are
/// memcpy'd or, where possible, consumed in place).
template <class T>
Pipeline<T> source(std::span<const T> in) {
  Pipeline<T> p;
  Node<T> n;
  n.kind = StageKind::Source;
  n.length = in.size();
  const T* base = in.data();
  n.direct = base;
  n.load = [base](std::size_t b, std::size_t c, T* dst) {
    std::memcpy(dst, base + b, c * sizeof(T));
  };
  p.nodes.push_back(std::move(n));
  return p;
}

/// Pipeline head reading a span of a different element type through a
/// converting load (`dst[i] = fn(in[i])`) — the conversion is fused into the
/// first pass over the data.
template <class T, class U, class F>
Pipeline<T> source_as(std::span<const U> in, F fn) {
  Pipeline<T> p;
  Node<T> n;
  n.kind = StageKind::Source;
  n.length = in.size();
  const U* base = in.data();
  n.load = [base, fn](std::size_t b, std::size_t c, T* dst) {
    for (std::size_t j = 0; j < c; ++j) dst[j] = fn(base[b + j]);
  };
  p.nodes.push_back(std::move(n));
  return p;
}

/// Pipeline head generating `fn(i)` for i in [0, n) — no input vector at all
/// (e.g. a vector of ones, or iota).
template <class T, class F>
Pipeline<T> source_fn(std::size_t n, F fn) {
  Pipeline<T> p;
  Node<T> node;
  node.kind = StageKind::Source;
  node.length = n;
  node.load = [fn](std::size_t b, std::size_t c, T* dst) {
    for (std::size_t j = 0; j < c; ++j) dst[j] = fn(b + j);
  };
  p.nodes.push_back(std::move(node));
  return p;
}

// --- stage recording ---------------------------------------------------------

template <class T, class F>
Pipeline<T> operator|(Pipeline<T> p, MapStage<F> s) {
  Node<T> n;
  n.kind = StageKind::Map;
  n.apply = [fn = std::move(s.fn)](T* d, std::size_t, std::size_t c) {
    for (std::size_t j = 0; j < c; ++j) d[j] = fn(d[j]);
  };
  p.nodes.push_back(std::move(n));
  return p;
}

template <class T, class U, class F>
Pipeline<T> operator|(Pipeline<T> p, ZipStage<U, F> s) {
  Node<T> n;
  n.kind = StageKind::Zip;
  const U* other = s.other.data();
  const std::size_t limit = s.other.size();
  n.apply = [other, limit, fn = std::move(s.fn)](T* d, std::size_t b,
                                                 std::size_t c) {
    assert(b + c <= limit);
    (void)limit;
    for (std::size_t j = 0; j < c; ++j) d[j] = fn(d[j], other[b + j]);
  };
  p.nodes.push_back(std::move(n));
  return p;
}

namespace detail {

template <class T, template <class> class Op, ScanDir Dir, bool Inclusive>
Node<T> make_scan_node() {
  using OpT = Op<T>;
  constexpr bool backward = Dir == ScanDir::Backward;
  Node<T> n;
  n.kind = StageKind::Scan;
  n.dir = Dir;
  n.inclusive = Inclusive;
  n.identity = OpT::identity();
  n.combine = [](T a, T b) { return OpT{}(a, b); };
  n.reduce_tile = [](const T* d, const std::uint8_t* f, std::size_t c, T carry,
                     bool* saw) {
    return tile_reduce<T, OpT, backward>(d, f, c, carry, saw);
  };
  n.scan_tile = [](T* d, const std::uint8_t* f, std::size_t c, T carry) {
    return tile_scan<T, OpT, Inclusive, backward>(d, f, c, carry);
  };
  return n;
}

}  // namespace detail

template <class T, template <class> class Op, ScanDir Dir, bool Inclusive>
Pipeline<T> operator|(Pipeline<T> p, ScanStage<Op, Dir, Inclusive>) {
  p.nodes.push_back(detail::make_scan_node<T, Op, Dir, Inclusive>());
  return p;
}

template <class T, template <class> class Op, ScanDir Dir, bool Inclusive>
Pipeline<T> operator|(Pipeline<T> p, SegScanStage<Op, Dir, Inclusive> s) {
  Node<T> n = detail::make_scan_node<T, Op, Dir, Inclusive>();
  n.kind = StageKind::SegScan;
  n.segmented = true;
  n.segments = s.segments;
  p.nodes.push_back(std::move(n));
  return p;
}

template <class T>
Pipeline<T> operator|(Pipeline<T> p, PackStage s) {
  Node<T> n;
  n.kind = StageKind::Pack;
  n.flags = s.flags;
  p.nodes.push_back(std::move(n));
  return p;
}

template <class T>
Pipeline<T> operator|(Pipeline<T> p, PermuteStage s) {
  Node<T> n;
  n.kind = StageKind::Permute;
  n.index = s.index;
  p.nodes.push_back(std::move(n));
  return p;
}

}  // namespace scanprim::exec
