// Expression-graph nodes for the fusing pipeline executor.
//
// A pipeline stage is recorded, not executed: `map(f)`, `scan<Plus>()`,
// `pack(flags)` build small tag objects that `operator|` (graph.hpp) turns
// into `Node<T>`s. Each node carries *tile kernels* — type-erased
// `std::function`s whose bodies were compiled with the user's lambda and the
// scan operator inlined — so the executor pays one indirect call per tile
// (kTileElements elements), not per element, when it fuses a chain of stages
// into a single blocked pass.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "src/core/ops.hpp"
#include "src/core/segmented.hpp"

namespace scanprim::exec {

enum class StageKind : std::uint8_t {
  Source,   ///< loads tiles from an external span or generator
  Map,      ///< elementwise T -> T
  Zip,      ///< elementwise combine with a second, positionally aligned span
  Scan,     ///< exclusive/inclusive, forward/backward scan (one per group)
  SegScan,  ///< segmented scan: restarts at flag positions
  Pack,     ///< keeps flagged elements, compacting; ends its fused group
  Permute,  ///< out[index[i]] = in[i]; always its own group (fusion barrier)
};

enum class ScanDir : std::uint8_t { Forward, Backward };

namespace detail {

// --- tile kernels ------------------------------------------------------------
// `f` is the segment-flag pointer for segmented scans, null otherwise. The
// segmented reset placement mirrors the sequential kernels in
// core/segmented.hpp exactly (reset *before* combining going forward, *after*
// combining going backward) so fused results bit-match the eager scans.

template <class T, class Op, bool Backward>
T tile_reduce(const T* d, const std::uint8_t* f, std::size_t n, T carry,
              bool* saw_flag) {
  if constexpr (simd::vectorizable_v<Op, T>) {
    if constexpr (!Backward) {
      return simd::reduce_fwd<T, Op>(d, f, n, carry, saw_flag);
    } else {
      return simd::reduce_bwd<T, Op>(d, f, n, carry, saw_flag);
    }
  }
  Op op;
  if constexpr (!Backward) {
    for (std::size_t i = 0; i < n; ++i) {
      if (f && f[i]) {
        carry = Op::identity();
        *saw_flag = true;
      }
      carry = op(carry, d[i]);
    }
  } else {
    for (std::size_t i = n; i-- > 0;) {
      carry = op(carry, d[i]);
      if (f && f[i]) {
        carry = Op::identity();
        *saw_flag = true;
      }
    }
  }
  return carry;
}

template <class T, class Op, bool Inclusive, bool Backward>
T tile_scan(T* d, const std::uint8_t* f, std::size_t n, T carry) {
  if constexpr (simd::vectorizable_v<Op, T>) {
    if constexpr (!Backward) {
      return simd::scan_fwd<T, Op, Inclusive>(d, f, d, n, carry);
    } else {
      return simd::scan_bwd<T, Op, Inclusive>(d, f, d, n, carry);
    }
  }
  Op op;
  if constexpr (!Backward) {
    for (std::size_t i = 0; i < n; ++i) {
      if (f && f[i]) carry = Op::identity();
      if constexpr (Inclusive) {
        carry = op(carry, d[i]);
        d[i] = carry;
      } else {
        const T next = op(carry, d[i]);
        d[i] = carry;
        carry = next;
      }
    }
  } else {
    for (std::size_t i = n; i-- > 0;) {
      if constexpr (Inclusive) {
        carry = op(carry, d[i]);
        d[i] = carry;
      } else {
        const T next = op(carry, d[i]);
        d[i] = carry;
        carry = next;
      }
      if (f && f[i]) carry = Op::identity();
    }
  }
  return carry;
}

}  // namespace detail

/// One recorded stage. Only the members of the node's kind are populated;
/// the executor never consults the others.
template <class T>
struct Node {
  StageKind kind = StageKind::Source;
  ScanDir dir = ScanDir::Forward;
  bool inclusive = false;
  bool segmented = false;

  // Source: `load(begin, n, dst)` materialises input[begin, begin+n).
  // `direct` is set when the source is a plain same-type span, letting the
  // executor read it in place instead of copying tiles.
  std::size_t length = 0;
  std::function<void(std::size_t begin, std::size_t n, T* dst)> load;
  const T* direct = nullptr;

  // Map / Zip: in-place tile transform; `begin` is the tile's offset in the
  // stage's input vector (zip indexes its second operand with it).
  std::function<void(T* data, std::size_t begin, std::size_t n)> apply;

  // Scan / SegScan tile kernels (operator inlined at record time).
  T identity{};
  std::function<T(T, T)> combine;
  std::function<T(const T* d, const std::uint8_t* f, std::size_t n, T carry,
                  bool* saw_flag)>
      reduce_tile;
  std::function<T(T* d, const std::uint8_t* f, std::size_t n, T carry)>
      scan_tile;
  FlagsView segments{};

  // Pack.
  FlagsView flags{};

  // Permute.
  std::span<const std::size_t> index{};
};

// --- stage tags (what the user writes on the right of `|`) -------------------

template <class F>
struct MapStage {
  F fn;
};

/// Elementwise stage: `out[i] = fn(in[i])`. Fuses freely.
template <class F>
MapStage<F> map(F fn) {
  return {std::move(fn)};
}

template <class U, class F>
struct ZipStage {
  std::span<const U> other;
  F fn;
};

/// Elementwise combine with a second span of the same length:
/// `out[i] = fn(in[i], other[i])`. Fuses freely.
template <class U, class F>
ZipStage<U, F> zip(std::span<const U> other, F fn) {
  return {other, std::move(fn)};
}

template <template <class> class Op, ScanDir Dir, bool Inclusive>
struct ScanStage {};

/// The paper's scan: exclusive, forward.
template <template <class> class Op>
constexpr ScanStage<Op, ScanDir::Forward, false> scan() {
  return {};
}

template <template <class> class Op>
constexpr ScanStage<Op, ScanDir::Forward, true> inclusive_scan() {
  return {};
}

template <template <class> class Op>
constexpr ScanStage<Op, ScanDir::Backward, false> backscan() {
  return {};
}

template <template <class> class Op>
constexpr ScanStage<Op, ScanDir::Backward, true> back_inclusive_scan() {
  return {};
}

template <template <class> class Op, ScanDir Dir, bool Inclusive>
struct SegScanStage {
  FlagsView segments;
};

/// Segmented exclusive forward scan: restarts at set flags.
template <template <class> class Op>
SegScanStage<Op, ScanDir::Forward, false> seg_scan(FlagsView segments) {
  return {segments};
}

template <template <class> class Op>
SegScanStage<Op, ScanDir::Forward, true> seg_inclusive_scan(
    FlagsView segments) {
  return {segments};
}

template <template <class> class Op>
SegScanStage<Op, ScanDir::Backward, false> seg_backscan(FlagsView segments) {
  return {segments};
}

template <template <class> class Op>
SegScanStage<Op, ScanDir::Backward, true> seg_back_inclusive_scan(
    FlagsView segments) {
  return {segments};
}

struct PackStage {
  FlagsView flags;
};

/// Keep the flagged elements, compacted and in order. Ends its fused group
/// (the vector length changes).
inline PackStage pack(FlagsView flags) { return {flags}; }

struct PermuteStage {
  std::span<const std::size_t> index;
};

/// EREW permute `out[index[i]] = in[i]`; a fusion barrier.
inline PermuteStage permute(std::span<const std::size_t> index) {
  return {index};
}

}  // namespace scanprim::exec
