// Observability for the fusing pipeline executor (src/exec). Every
// `Executor::run` fills one `Stats` record; future PRs (adaptive fusion,
// scheduling heuristics, perf regression gates) build on these counters.
#pragma once

#include <cstddef>
#include <cstdint>

namespace scanprim::exec {

/// Counters for one pipeline run (and, accumulated, for an Executor's
/// lifetime). Byte counts are analytic estimates — each pass is charged the
/// elements it streams, not measured hardware traffic. `elapsed_ns` is
/// measured wall-clock: executor runs and serve batches (src/serve) both
/// report their latency through this same record.
struct Stats {
  std::size_t stages_recorded = 0;  ///< nodes in the pipeline, source included
  std::size_t groups = 0;           ///< execution groups after fusion
  std::size_t fused_groups = 0;     ///< groups that merged >= 2 compute stages
  std::size_t pool_dispatches = 0;  ///< fork-join rounds (passes) executed;
                                    ///< a pass degraded to serial by a small
                                    ///< input or a 1-worker pool still counts
  std::size_t bytes_read = 0;       ///< estimated bytes streamed in
  std::size_t bytes_written = 0;    ///< estimated bytes streamed out
  std::size_t arena_hits = 0;       ///< temporaries served from a reused buffer
  std::size_t arena_misses = 0;     ///< temporaries that had to allocate
  std::size_t fuse_runs = 0;        ///< runs that invoked the fuser
  std::size_t plan_reuses = 0;      ///< runs that reused pre-fused groups
                                    ///< (src/plan cache hits: zero record/
                                    ///< fuse work in the dispatch)
  std::uint64_t elapsed_ns = 0;     ///< wall-clock time of the run (summed
                                    ///< across runs when accumulated)

  Stats& operator+=(const Stats& o) {
    stages_recorded += o.stages_recorded;
    groups += o.groups;
    fused_groups += o.fused_groups;
    pool_dispatches += o.pool_dispatches;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    arena_hits += o.arena_hits;
    arena_misses += o.arena_misses;
    fuse_runs += o.fuse_runs;
    plan_reuses += o.plan_reuses;
    elapsed_ns += o.elapsed_ns;
    return *this;
  }
};

}  // namespace scanprim::exec
