// The pipeline executor: runs a fused plan (fuser.hpp) over the existing
// ThreadPool, one blocked kernel per fused group.
//
// A group with a scan runs the same engines as core/scan.hpp, selected by
// scan_engine(). Under the default chained engine a fused group without a
// pack is genuinely one pass: tiles resolve their carries through the
// lookback protocol of core/chained_scan.hpp in a single dispatch, with the
// group's map/zip lambdas carried into the summarise and rescan loops. The
// two-phase decomposition — per-block reduce, serial scan of block
// summaries, per-block rescan with a carry — remains for pack groups (the
// packed output offset needs the barrier) and as the SCANPRIM_SCAN_ENGINE=
// twophase fallback; there a chain like `map | +-scan | map | map` touches
// memory twice (once per phase) instead of once per stage, and with one
// worker (or below the serial cutoff) the reduce phase is skipped entirely.
//
// Intermediate buffers between groups come from a BufferArena that reuses
// previous temporaries instead of allocating per stage.
#pragma once

#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/core/chained_scan.hpp"
#include "src/core/runtime.hpp"
#include "src/exec/fuser.hpp"
#include "src/fault/fault.hpp"
#include "src/exec/graph.hpp"
#include "src/exec/stats.hpp"
#include "src/obs/obs.hpp"
#include "src/thread/thread_pool.hpp"

namespace scanprim::exec {

namespace detail {

/// Inter-group temporaries, served by the size-classed thread-local arenas
/// of src/mem (docs/MEM.md): acquire takes from the calling thread's free
/// lists (so an executor shares recycled buffers with everything else on
/// its thread — the serve batcher's snapshots, chained scratch), release
/// files the buffer back, and the arena's high-water trim policy bounds
/// retained memory instead of the old grow-forever buffer list. Blocks are
/// 64-byte aligned, which covers every trivially copyable element type the
/// executor accepts.
class BufferArena {
 public:
  /// A buffer of at least `bytes`; `*reused` reports whether a free-listed
  /// block was recycled (an arena hit).
  std::byte* acquire(std::size_t bytes, bool* reused);
  void release(std::byte* p);
};

// Visit the tiles of [lo, hi) in scan order (forward, or back-to-front for
// backward scans), calling fn(begin, count). Tiles are aligned from `lo` so
// both directions visit identical tile boundaries.
template <class Fn>
void for_tiles(std::size_t lo, std::size_t hi, std::size_t tile, bool backward,
               Fn&& fn) {
  if (lo >= hi) return;
  if (!backward) {
    for (std::size_t b = lo; b < hi; b += tile) {
      fn(b, hi - b < tile ? hi - b : tile);
    }
  } else {
    std::size_t count = (hi - lo + tile - 1) / tile;
    while (count-- > 0) {
      const std::size_t b = lo + count * tile;
      fn(b, hi - b < tile ? hi - b : tile);
    }
  }
}

/// Runs one group over input of length n, writing to `out` (length n, or the
/// pack count when the group packs — returned). `prev` is the previous
/// group's buffer, or null when the group reads through the source node.
template <class T>
std::size_t execute_group(const std::vector<Node<T>>& nodes, const Group& g,
                          const T* prev, std::size_t n, T* out,
                          std::size_t tile, Stats& s) {
  const Node<T>& src = nodes[0];
  const T* direct_in = prev ? prev : src.direct;
  const auto load = [&](std::size_t begin, std::size_t c, T* dst) {
    if (direct_in) {
      std::memcpy(dst, direct_in + begin, c * sizeof(T));
    } else {
      src.load(begin, c, dst);
    }
  };

  const std::size_t workers = thread::num_workers();
  const std::size_t nblocks =
      (workers == 1 || n < thread::kSerialCutoff) ? 1 : workers;

  // --- permute: always a singleton group, one scatter pass -------------------
  if (g.is_permute) {
    const Node<T>& pm = nodes[g.first];
    assert(pm.index.size() == n);
    const std::size_t* idx = pm.index.data();
    thread::parallel_blocks(n, [&](thread::Block blk, std::size_t) {
      if (direct_in) {
        for (std::size_t i = blk.begin; i < blk.end; ++i) {
          out[idx[i]] = direct_in[i];
        }
        return;
      }
      std::vector<T> scratch(tile);
      for_tiles(blk.begin, blk.end, tile, false, [&](std::size_t b,
                                                     std::size_t c) {
        src.load(b, c, scratch.data());
        for (std::size_t j = 0; j < c; ++j) out[idx[b + j]] = scratch[j];
      });
    });
    s.pool_dispatches += 1;
    s.bytes_read += n * (sizeof(T) + sizeof(std::size_t));
    s.bytes_written += n * sizeof(T);
    return n;
  }

  // Elementwise stage range: pre-scan stages [g.first, pre_end), post-scan
  // stages [post_begin, ew_end). For scan-less groups pre covers everything.
  const std::size_t ew_end = g.has_pack ? g.last : g.last + 1;
  const std::size_t pre_end = g.has_scan ? g.scan_at : ew_end;
  const std::size_t post_begin = g.has_scan ? g.scan_at + 1 : ew_end;
  const auto apply_range = [&](std::size_t from, std::size_t to, T* d,
                               std::size_t begin, std::size_t c) {
    for (std::size_t i = from; i < to; ++i) nodes[i].apply(d, begin, c);
  };

  const Node<T>* sc = g.has_scan ? &nodes[g.scan_at] : nullptr;
  const std::uint8_t* segf = nullptr;
  if (sc && sc->segmented) {
    assert(sc->segments.size() == n);
    segf = sc->segments.data();
  }
  const bool backward = sc && sc->dir == ScanDir::Backward;
  const std::uint8_t* pf = nullptr;
  if (g.has_pack) {
    assert(nodes[g.last].flags.size() == n);
    pf = nodes[g.last].flags.data();
  }
  const auto seg_at = [&](std::size_t b) -> const std::uint8_t* {
    return segf ? segf + b : nullptr;
  };

  // --- elementwise-only group: one pass, in place in `out` -------------------
  if (!g.has_scan && !g.has_pack) {
    thread::parallel_blocks(n, [&](thread::Block blk, std::size_t) {
      for_tiles(blk.begin, blk.end, tile, false,
                [&](std::size_t b, std::size_t c) {
                  load(b, c, out + b);
                  apply_range(g.first, ew_end, out + b, b, c);
                });
    });
    s.pool_dispatches += 1;
    s.bytes_read += n * sizeof(T);
    s.bytes_written += n * sizeof(T);
    return n;
  }

  // --- single block: no reduce phase needed ----------------------------------
  if (nblocks == 1) {
    if (!g.has_pack) {
      // Scan group, full length: scan in place in `out`.
      T carry = sc->identity;
      for_tiles(0, n, tile, backward, [&](std::size_t b, std::size_t c) {
        load(b, c, out + b);
        apply_range(g.first, pre_end, out + b, b, c);
        carry = sc->scan_tile(out + b, seg_at(b), c, carry);
        apply_range(post_begin, ew_end, out + b, b, c);
      });
      s.pool_dispatches += 1;
      s.bytes_read += n * sizeof(T) + (segf ? n : 0);
      s.bytes_written += n * sizeof(T);
      return n;
    }
    std::vector<T> scratch(tile);
    T carry = sc ? sc->identity : T{};
    std::size_t total = 0;
    if (!backward) {
      // Forward (or scan-less) pack: append as flags pass by. One pass.
      std::size_t pos = 0;
      for_tiles(0, n, tile, false, [&](std::size_t b, std::size_t c) {
        load(b, c, scratch.data());
        apply_range(g.first, pre_end, scratch.data(), b, c);
        if (sc) carry = sc->scan_tile(scratch.data(), seg_at(b), c, carry);
        apply_range(post_begin, ew_end, scratch.data(), b, c);
        for (std::size_t j = 0; j < c; ++j) {
          if (pf[b + j]) out[pos++] = scratch[j];
        }
      });
      total = pos;
      s.pool_dispatches += 1;
    } else {
      // Backward scan + pack: the output offset of the *last* kept element
      // is the total count, so count first, then fill top-down.
      for (std::size_t i = 0; i < n; ++i) total += pf[i] ? 1 : 0;
      std::size_t pos = total;
      for_tiles(0, n, tile, true, [&](std::size_t b, std::size_t c) {
        load(b, c, scratch.data());
        apply_range(g.first, pre_end, scratch.data(), b, c);
        carry = sc->scan_tile(scratch.data(), seg_at(b), c, carry);
        apply_range(post_begin, ew_end, scratch.data(), b, c);
        for (std::size_t j = c; j-- > 0;) {
          if (pf[b + j]) out[--pos] = scratch[j];
        }
      });
      s.pool_dispatches += 2;
    }
    s.bytes_read += n * sizeof(T) + (segf ? n : 0) + n;
    s.bytes_written += total * sizeof(T);
    return total;
  }

  // --- chained single-pass kernel (core/chained_scan.hpp) --------------------
  // A fused scan group without a trailing pack resolves tile carries through
  // the lookback protocol in ONE dispatch: summarise the tile (pre-scan
  // lambdas applied on the way), publish the aggregate, look back for the
  // carry, then rescan the still-cached tile with the post-scan lambdas into
  // `out`. Pack groups stay on the two-phase path: the packed output offset
  // needs a full prefix of the kept counts, which the two-phase barrier
  // already provides.
  if (sc && !pf && scan_engine() == ScanEngine::kChained) {
    const bool no_pre = pre_end == g.first;
    std::vector<std::vector<T>> scratch(workers);
    scanprim::detail::chained_scan_run<T>(
        n, tile, backward, sc->identity,
        [&](T a, T b) { return sc->combine(a, b); },
        [&](std::size_t w, std::size_t b, std::size_t c, T* agg) {
          bool saw = false;
          const T* d;
          if (no_pre && direct_in) {
            d = direct_in + b;
          } else {
            if (scratch[w].size() < tile) scratch[w].resize(tile);
            load(b, c, scratch[w].data());
            apply_range(g.first, pre_end, scratch[w].data(), b, c);
            d = scratch[w].data();
          }
          *agg = sc->reduce_tile(d, seg_at(b), c, sc->identity, &saw);
          return saw;
        },
        [&](std::size_t, std::size_t b, std::size_t c, T carry) {
          load(b, c, out + b);
          apply_range(g.first, pre_end, out + b, b, c);
          carry = sc->scan_tile(out + b, seg_at(b), c, carry);
          apply_range(post_begin, ew_end, out + b, b, c);
        });
    s.pool_dispatches += 1;
    // The rescan's reload of the tile hits cache, not DRAM: account one read.
    s.bytes_read += n * sizeof(T) + (segf ? n : 0);
    s.bytes_written += n * sizeof(T);
    return n;
  }

  // --- two-phase blocked kernel ----------------------------------------------
  // Phase 1: per-block scan summaries (carrying the pre-scan lambdas into the
  // reduce loop) and per-block pack counts, in one dispatch.
  std::vector<T> sums(nblocks, sc ? sc->identity : T{});
  std::vector<std::uint8_t> flagged(nblocks, 0);
  std::vector<std::size_t> base(nblocks, 0), cnt(nblocks, 0);
  thread::pool().run([&](std::size_t w) {
    const thread::Block blk = thread::block_of(n, nblocks, w);
    if (blk.empty()) return;
    if (pf) {
      std::size_t c = 0;
      for (std::size_t i = blk.begin; i < blk.end; ++i) c += pf[i] ? 1 : 0;
      cnt[w] = c;
    }
    if (!sc) return;
    std::vector<T> scratch(tile);
    T carry = sc->identity;
    bool saw = false;
    const bool no_pre = pre_end == g.first;
    for_tiles(blk.begin, blk.end, tile, backward,
              [&](std::size_t b, std::size_t c) {
                const T* d;
                if (no_pre && direct_in) {
                  d = direct_in + b;
                } else {
                  load(b, c, scratch.data());
                  apply_range(g.first, pre_end, scratch.data(), b, c);
                  d = scratch.data();
                }
                carry = sc->reduce_tile(d, seg_at(b), c, carry, &saw);
              });
    sums[w] = carry;
    flagged[w] = saw ? 1 : 0;
  });

  // Serial combine: each block's carry-in. The `flagged` reset logic makes
  // this the segmented combination of core/segmented.hpp; with no segment
  // flags it degenerates to the plain exclusive scan of block sums.
  if (sc) {
    T run = sc->identity;
    if (!backward) {
      for (std::size_t b = 0; b < nblocks; ++b) {
        const T mine = run;
        run = flagged[b] ? sums[b] : sc->combine(run, sums[b]);
        sums[b] = mine;
      }
    } else {
      for (std::size_t b = nblocks; b-- > 0;) {
        const T mine = run;
        run = flagged[b] ? sums[b] : sc->combine(run, sums[b]);
        sums[b] = mine;
      }
    }
  }
  std::size_t total = 0;
  if (pf) {
    for (std::size_t b = 0; b < nblocks; ++b) {
      base[b] = total;
      total += cnt[b];
    }
  }

  // Phase 2: rescan with carries, post-scan lambdas applied in the same
  // loop, output written dense or packed.
  thread::pool().run([&](std::size_t w) {
    const thread::Block blk = thread::block_of(n, nblocks, w);
    if (blk.empty()) return;
    T carry = sc ? sums[w] : T{};
    if (!pf) {
      for_tiles(blk.begin, blk.end, tile, backward,
                [&](std::size_t b, std::size_t c) {
                  load(b, c, out + b);
                  apply_range(g.first, pre_end, out + b, b, c);
                  carry = sc->scan_tile(out + b, seg_at(b), c, carry);
                  apply_range(post_begin, ew_end, out + b, b, c);
                });
      return;
    }
    std::vector<T> scratch(tile);
    std::size_t pos = backward ? base[w] + cnt[w] : base[w];
    for_tiles(blk.begin, blk.end, tile, backward,
              [&](std::size_t b, std::size_t c) {
                load(b, c, scratch.data());
                apply_range(g.first, pre_end, scratch.data(), b, c);
                if (sc) {
                  carry = sc->scan_tile(scratch.data(), seg_at(b), c, carry);
                }
                apply_range(post_begin, ew_end, scratch.data(), b, c);
                if (!backward) {
                  for (std::size_t j = 0; j < c; ++j) {
                    if (pf[b + j]) out[pos++] = scratch[j];
                  }
                } else {
                  for (std::size_t j = c; j-- > 0;) {
                    if (pf[b + j]) out[--pos] = scratch[j];
                  }
                }
              });
  });
  s.pool_dispatches += 2;
  s.bytes_read += (sc ? 2 : 1) * n * sizeof(T) + (segf ? 2 * n : 0) +
                  (pf ? 2 * n : 0);
  s.bytes_written += (pf ? total : n) * sizeof(T);
  return pf ? total : n;
}

}  // namespace detail

/// The fuser's output for one pipeline *shape*, computed once and replayed
/// across runs. Groups depend only on the stage-kind sequence — never on the
/// vector length — so one prepared shape serves any n (this is what makes
/// src/plan's cached plans shape-polymorphic).
struct PreparedGroups {
  std::vector<Group> groups;
  std::size_t tile = 0;    ///< elements per fused tile
  std::size_t stages = 0;  ///< stage count the shape was prepared for
};

/// Runs recorded pipelines over the global ThreadPool, reusing intermediate
/// buffers across groups and across runs.
class Executor {
 public:
  struct Options {
    bool fuse = true;      ///< false: eager op-by-op plan (bench baseline)
    std::size_t tile = 0;  ///< elements per fused tile; 0 sizes by bytes
                           ///< (kChainedTileBytes / sizeof(T)), so 1-byte
                           ///< flag pipelines don't run 4 KiB tiles
  };

  Executor() = default;
  explicit Executor(Options opts) : opts_(opts) {}

  template <class T>
  std::vector<T> run(const Pipeline<T>& p) {
    const auto kinds = p.kinds();
    FuseOptions fo;
    fo.enabled = opts_.fuse;
    fo.tile = opts_.tile != 0 ? opts_.tile
                              : scanprim::detail::chained_tile_elements<T>();
    const auto groups = fuse(std::span<const StageKind>(kinds), fo);
    return run_grouped(p, groups, fo.tile, /*prepared=*/false);
  }

  /// Fuse a pipeline's shape once; the result can be replayed by the
  /// two-argument run() below on any pipeline with the same stage kinds
  /// (and any length). src/plan stores these inside cached compiled plans.
  template <class T>
  PreparedGroups prepare(const Pipeline<T>& p) const {
    const auto kinds = p.kinds();
    FuseOptions fo;
    fo.enabled = opts_.fuse;
    fo.tile = opts_.tile != 0 ? opts_.tile
                              : scanprim::detail::chained_tile_elements<T>();
    PreparedGroups pg;
    pg.groups = fuse(std::span<const StageKind>(kinds), fo);
    pg.tile = fo.tile;
    pg.stages = p.nodes.size();
    return pg;
  }

  /// Run with pre-fused groups: no fuser invocation, no shape analysis.
  /// The pipeline must have the same stage-kind sequence the groups were
  /// prepared from (checked by stage count in debug builds).
  template <class T>
  std::vector<T> run(const Pipeline<T>& p, const PreparedGroups& pg) {
    assert(pg.stages == p.nodes.size());
    return run_grouped(p, pg.groups, pg.tile, /*prepared=*/true);
  }

 private:
  template <class T>
  std::vector<T> run_grouped(const Pipeline<T>& p,
                             const std::vector<Group>& groups,
                             std::size_t tile, bool prepared) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "pipeline elements flow through raw arena buffers");
    assert(!p.nodes.empty() && p.nodes.front().kind == StageKind::Source);
    obs::Span run_span("exec.run");
    const auto t0 = std::chrono::steady_clock::now();
    Stats s;
    s.stages_recorded = p.nodes.size();
    (prepared ? s.plan_reuses : s.fuse_runs) += 1;
    s.groups = groups.size();
    for (const Group& g : groups) {
      if (g.stages() >= 2) ++s.fused_groups;
    }

    std::size_t cur_len = p.nodes.front().length;
    const T* prev = nullptr;
    std::byte* prev_raw = nullptr;
    std::byte* out_raw = nullptr;
    std::vector<T> result;
    // Release held arena buffers even when a group throws: the executor is
    // long-lived (the serve batcher reuses one across batches), and a buffer
    // stranded in-use by an unwind would be unreusable for the rest of the
    // executor's life.
    try {
      for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        obs::Span group_span("exec.group");
        SCANPRIM_FAULT_POINT("exec.group");
        const Group& g = groups[gi];
        const bool last = gi + 1 == groups.size();
        T* out_ptr = nullptr;
        if (last) {
          result.resize(cur_len);
          out_ptr = result.data();
        } else {
          bool reused = false;
          out_raw = arena_.acquire(cur_len * sizeof(T), &reused);
          (reused ? s.arena_hits : s.arena_misses) += 1;
          out_ptr = reinterpret_cast<T*>(out_raw);
        }
        cur_len = detail::execute_group<T>(p.nodes, g, prev, cur_len, out_ptr,
                                           tile, s);
        if (prev_raw) arena_.release(prev_raw);
        prev_raw = out_raw;
        out_raw = nullptr;
        prev = out_ptr;
      }
    } catch (...) {
      if (out_raw) arena_.release(out_raw);
      if (prev_raw) arena_.release(prev_raw);
      throw;
    }
    if (prev_raw) arena_.release(prev_raw);
    result.resize(cur_len);  // a pack in the final group shrinks the result
    s.elapsed_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    last_ = s;
    total_ += s;
    return result;
  }

 public:
  /// Stats of the most recent run.
  const Stats& stats() const { return last_; }
  /// Stats accumulated over the executor's lifetime.
  const Stats& total_stats() const { return total_; }
  void reset_stats() {
    last_ = Stats{};
    total_ = Stats{};
  }

 private:
  Options opts_{};
  detail::BufferArena arena_;
  Stats last_{};
  Stats total_{};
};

/// One-shot convenience: run `p` on a fresh executor.
template <class T>
std::vector<T> run(const Pipeline<T>& p, Stats* stats = nullptr) {
  Executor ex;
  auto out = ex.run(p);
  if (stats) *stats = ex.stats();
  return out;
}

// --- fused formulations of the paper's compound operations -------------------
// These are the pipeline ports the algorithm layer uses (radix sort's split,
// quicksort's segmented ranking); they are also golden-tested against the
// eager primitives in tests/test_exec_pipeline.cpp.
namespace fused {

/// split_index (Fig. 3) as two fused pipelines: the down-enumerate is one
/// scan group, and the up-enumerate, top-index arithmetic, and final select
/// all fuse into a single backward-scan group.
inline std::vector<std::size_t> split_index(Executor& ex, FlagsView flags) {
  const std::size_t n = flags.size();
  const auto down = ex.run(
      source_as<std::size_t>(flags,
                             [](std::uint8_t f) -> std::size_t {
                               return f ? 0 : 1;
                             }) |
      exec::scan<Plus>());
  constexpr std::size_t kTakeDown = static_cast<std::size_t>(-1);
  return ex.run(
      source_as<std::size_t>(flags,
                             [](std::uint8_t f) -> std::size_t {
                               return f ? 1 : 0;
                             }) |
      exec::backscan<Plus>() |
      exec::zip(flags,
                [n](std::size_t up, std::uint8_t f) -> std::size_t {
                  return f ? n - up - 1 : kTakeDown;
                }) |
      exec::zip(std::span<const std::size_t>(down),
                [](std::size_t top, std::size_t d) {
                  return top == kTakeDown ? d : top;
                }));
}

/// split (Fig. 3) through the pipeline path.
template <class T>
std::vector<T> split(Executor& ex, std::span<const T> in, FlagsView flags) {
  assert(in.size() == flags.size());
  const auto index = split_index(ex, flags);
  return ex.run(exec::source(in) |
                exec::permute(std::span<const std::size_t>(index)));
}

/// pack (Fig. 11) through the pipeline path.
template <class T>
std::vector<T> pack(Executor& ex, std::span<const T> in, FlagsView flags) {
  assert(in.size() == flags.size());
  return ex.run(exec::source(in) | exec::pack(flags));
}

}  // namespace fused

}  // namespace scanprim::exec
