// The fuser: turns a recorded stage sequence into execution groups, each of
// which the executor runs as one (elementwise) or two (scan/pack) blocked
// passes over memory.
//
// Fusion legality (see docs/PIPELINE.md):
//   - Map/Zip stages fuse freely, before and after a scan.
//   - A group holds at most ONE scan (segmented or not): a second scan's
//     input depends on carries the two-phase kernel has not resolved yet.
//   - Pack ends its group: the vector length (and element positions) change.
//   - Permute is always a group of its own: it breaks producer-consumer
//     locality, so nothing fuses across it.
//   - A segmented scan fuses like a scan; its segment flags travel with the
//     group, so any stage that would change segment boundaries (a pack or a
//     permute) has already closed the group.
//
// This layer is purely structural (stage kinds in, index ranges out) so it
// lives in a .cpp and is shared by every pipeline element type.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/exec/node.hpp"

namespace scanprim::exec {

struct FuseOptions {
  bool enabled = true;  ///< false: every stage becomes its own group (the
                        ///< eager op-by-op plan, used as a bench baseline)
  std::size_t tile = 4096;  ///< elements per fused tile
};

/// A run of node indices [first, last] executed as one blocked kernel.
/// `first == 1 && last == 0` encodes the source-only pipeline (a pure copy).
struct Group {
  std::size_t first = 0;
  std::size_t last = 0;
  bool has_scan = false;    ///< Scan or SegScan present
  std::size_t scan_at = 0;  ///< node index of the scan when has_scan
  bool has_pack = false;    ///< group ends with a pack
  bool is_permute = false;  ///< singleton permute group

  std::size_t stages() const { return last < first ? 0 : last - first + 1; }
};

/// True when `k` may never share a group with a neighbouring stage.
bool breaks_fusion(StageKind k);

/// Group the stage sequence (kinds[0] must be Source). With fusion disabled
/// every stage is its own group; the source always loads as part of the
/// first group either way.
std::vector<Group> fuse(std::span<const StageKind> kinds,
                        const FuseOptions& opts);

}  // namespace scanprim::exec
