#include "src/exec/fuser.hpp"

#include <cassert>

namespace scanprim::exec {

bool breaks_fusion(StageKind k) { return k == StageKind::Permute; }

namespace {

bool is_elementwise(StageKind k) {
  return k == StageKind::Map || k == StageKind::Zip;
}

bool is_scan(StageKind k) {
  return k == StageKind::Scan || k == StageKind::SegScan;
}

}  // namespace

std::vector<Group> fuse(std::span<const StageKind> kinds,
                        const FuseOptions& opts) {
  assert(!kinds.empty() && kinds[0] == StageKind::Source);
  std::vector<Group> out;
  Group cur;
  bool open = false;
  const auto close = [&] {
    if (open) {
      out.push_back(cur);
      open = false;
    }
  };
  const auto start = [&](std::size_t i) {
    cur = Group{};
    cur.first = i;
    cur.last = i;
    open = true;
  };

  for (std::size_t i = 1; i < kinds.size(); ++i) {
    const StageKind k = kinds[i];
    if (breaks_fusion(k)) {
      close();
      Group g;
      g.first = i;
      g.last = i;
      g.is_permute = true;
      out.push_back(g);
      continue;
    }
    if (!opts.enabled) close();
    if (is_elementwise(k)) {
      if (open) {
        cur.last = i;
      } else {
        start(i);
      }
      if (!opts.enabled) close();
      continue;
    }
    if (is_scan(k)) {
      if (open && cur.has_scan) close();  // one scan per group
      if (!open) start(i);
      cur.last = i;
      cur.has_scan = true;
      cur.scan_at = i;
      if (!opts.enabled) close();
      continue;
    }
    // Pack: joins the open group and ends it.
    assert(k == StageKind::Pack);
    if (!open) start(i);
    cur.last = i;
    cur.has_pack = true;
    close();
  }
  close();

  if (out.empty()) {
    // Source-only pipeline: one pure copy pass.
    Group g;
    g.first = 1;
    g.last = 0;
    out.push_back(g);
  }
  return out;
}

}  // namespace scanprim::exec
