#include "src/exec/executor.hpp"

#include "src/mem/mem.hpp"

namespace scanprim::exec::detail {

std::byte* BufferArena::acquire(std::size_t bytes, bool* reused) {
  return mem::allocate(bytes, reused);
}

void BufferArena::release(std::byte* p) { mem::deallocate(p); }

}  // namespace scanprim::exec::detail
