#include "src/exec/executor.hpp"

namespace scanprim::exec::detail {

std::byte* BufferArena::acquire(std::size_t bytes, bool* reused) {
  if (bytes == 0) bytes = 1;
  // Best fit among free buffers: the smallest one that is large enough.
  Buf* best = nullptr;
  for (Buf& b : bufs_) {
    if (b.in_use || b.cap < bytes) continue;
    if (!best || b.cap < best->cap) best = &b;
  }
  if (best) {
    best->in_use = true;
    *reused = true;
    return best->data.get();
  }
  Buf b;
  b.data = std::make_unique<std::byte[]>(bytes);
  b.cap = bytes;
  b.in_use = true;
  bufs_.push_back(std::move(b));
  *reused = false;
  return bufs_.back().data.get();
}

void BufferArena::release(std::byte* p) {
  for (Buf& b : bufs_) {
    if (b.data.get() == p) {
      b.in_use = false;
      return;
    }
  }
  assert(false && "release of a pointer the arena does not own");
}

}  // namespace scanprim::exec::detail
