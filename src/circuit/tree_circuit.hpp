// The clocked, bit-pipelined tree-scan circuit of §3.2 (Figures 13–14).
//
// n leaves (a power of two) feed operand bits serially into lg n levels of
// units. Each unit holds two sum state machines (up sweep and down sweep),
// a FIFO shift register that delays the left child's bits by exactly the
// round trip to the root and back (length 2i at level i from the top), and a
// one-bit register that re-times the value passed to the left child. The
// root's parent input is tied low, and its zero-length register reflects the
// up sweep into the down sweep. After m + 2 lg n − 1 cycles the exclusive
// scan results stream out of the leaves, one bit per cycle.
//
// For +-scan, bits enter least-significant first; for max-scan,
// most-significant first (§3.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/circuit/shift_register.hpp"
#include "src/circuit/state_machine.hpp"

namespace scanprim::circuit {

/// Gate-level inventory of a circuit instance (the "hardware" half of
/// Table 2).
struct HardwareInventory {
  std::size_t leaves = 0;
  std::size_t units = 0;               ///< n - 1
  std::size_t state_machines = 0;      ///< 2 (n - 1)
  std::size_t shift_register_bits = 0; ///< Σ levels 2i · 2^i
  std::size_t wires = 0;               ///< 2 unidirectional bit wires per edge
};

/// §3.3's packaging claim: cut the tree into chips of `leaves_per_chip`
/// consecutive leaves (a power of two) plus combiner chips above, and
/// "only a pair of wires [is] needed to leave" each one. Returns the chip
/// count and the total off-chip wire count; off-chip wires per chip is
/// exactly 2 (its root's up/down pair) except the whole machine's root.
struct ChipPartition {
  std::size_t chips = 0;
  std::size_t off_chip_wires = 0;
  std::size_t state_machines_per_leaf_chip = 0;  ///< 126 for 64 inputs
  std::size_t shift_registers_per_leaf_chip = 0; ///< 63 for 64 inputs
};

ChipPartition partition_into_chips(std::size_t leaves,
                                   std::size_t leaves_per_chip);

class TreeScanCircuit {
 public:
  /// Builds the tree for `leaves` inputs (must be a power of two ≥ 1) that
  /// scans `field_bits`-bit unsigned operands.
  TreeScanCircuit(std::size_t leaves, unsigned field_bits);

  std::size_t leaves() const { return n_; }
  unsigned field_bits() const { return m_; }
  std::size_t levels() const { return levels_; }

  HardwareInventory inventory() const;

  /// Runs a complete scan: asserts clear, sets the op line, clocks the
  /// circuit until every result bit has streamed out, and returns the
  /// exclusive scan of `values` (each masked to field_bits). Also records
  /// the number of clock cycles consumed (see `last_cycle_count`).
  std::vector<std::uint64_t> scan(std::span<const std::uint64_t> values,
                                  ScanOpKind op);

  /// Segmented scan on the same tree — the "implemented directly with
  /// little additional hardware" claim of §3 / [7], at the logic level. The
  /// extra hardware per unit: two static flag bits (the OR of each child
  /// subtree's segment flags — combinational, settled before the bits
  /// stream) and two multiplexers that bypass the sum state machines when a
  /// segment boundary separates the operands:
  ///     up    = f_right ? right      : left ⊕ right
  ///     right = f_left  ? stored-left : parent ⊕ stored-left   (down sweep)
  /// Same m + 2 lg n cycle count as the unsegmented scan. Flagged leaves
  /// receive the identity (the exclusive value cannot see its own flag).
  std::vector<std::uint64_t> seg_scan(std::span<const std::uint64_t> values,
                                      std::span<const std::uint8_t> flags,
                                      ScanOpKind op);

  /// Clock cycles consumed by the most recent `scan` call.
  std::size_t last_cycle_count() const { return cycles_; }

  /// The cycle count formula of §3.2: m + 2 lg n (up to the register
  /// conventions; the simulator's exact count is m + 2 lg n − 1 plus one
  /// flush cycle, reported by `last_cycle_count`).
  static std::size_t predicted_cycles(std::size_t leaves, unsigned field_bits);

 private:
  struct Unit {
    SumStateMachine up;
    SumStateMachine down;
    ShiftRegister fifo;
    // Registered outputs (the state of the unit's output flip-flops).
    bool up_out = false;
    bool down_left_out = false;  ///< the one-bit register of Fig. 14
    bool down_right_out = false;
  };

  std::vector<std::uint64_t> run(std::span<const std::uint64_t> values,
                                 ScanOpKind op,
                                 const std::vector<std::uint8_t>* seg);

  std::size_t n_;        ///< number of leaves
  unsigned m_;           ///< field width in bits
  std::size_t levels_;   ///< lg n
  std::vector<Unit> units_;  ///< heap order; units_[u] for u in [1, n)
  std::size_t cycles_ = 0;
};

}  // namespace scanprim::circuit
