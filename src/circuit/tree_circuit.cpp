#include "src/circuit/tree_circuit.hpp"

#include <cassert>
#include <stdexcept>

namespace scanprim::circuit {

namespace {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t lg(std::size_t n) {
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  return bits;
}

std::size_t level_from_top(std::size_t unit) {
  std::size_t level = 0;
  while (unit > 1) {
    unit >>= 1;
    ++level;
  }
  return level;
}

}  // namespace

TreeScanCircuit::TreeScanCircuit(std::size_t leaves, unsigned field_bits)
    : n_(leaves), m_(field_bits), levels_(lg(leaves)) {
  if (!is_power_of_two(leaves)) {
    throw std::invalid_argument("TreeScanCircuit: leaves must be a power of two");
  }
  if (field_bits == 0 || field_bits > 64) {
    throw std::invalid_argument("TreeScanCircuit: field_bits must be 1..64");
  }
  units_.resize(n_);  // index 0 unused; units 1 .. n-1
  for (std::size_t u = 1; u < n_; ++u) {
    units_[u].fifo = ShiftRegister(2 * level_from_top(u));
  }
}

HardwareInventory TreeScanCircuit::inventory() const {
  HardwareInventory hw;
  hw.leaves = n_;
  hw.units = n_ >= 1 ? n_ - 1 : 0;
  hw.state_machines = 2 * hw.units;
  for (std::size_t u = 1; u < n_; ++u) {
    hw.shift_register_bits += units_[u].fifo.length();
  }
  // Two unidirectional single-bit wires along every tree edge, plus the
  // root's external pair.
  hw.wires = n_ >= 2 ? 2 * (2 * n_ - 1) : 2;
  return hw;
}

ChipPartition partition_into_chips(std::size_t leaves,
                                   std::size_t leaves_per_chip) {
  if (!is_power_of_two(leaves) || !is_power_of_two(leaves_per_chip) ||
      leaves_per_chip > leaves) {
    throw std::invalid_argument("partition_into_chips: powers of two, "
                                "leaves_per_chip <= leaves");
  }
  ChipPartition p;
  // Each chip implements a complete subtree with k inputs and one output:
  // k - 1 units = 2(k - 1) state machines, k - 1 shift registers.
  p.state_machines_per_leaf_chip = 2 * (leaves_per_chip - 1);
  p.shift_registers_per_leaf_chip = leaves_per_chip - 1;
  // Layers of chips: leaves/k leaf chips, then the same structure over
  // their outputs, until one chip remains.
  for (std::size_t width = leaves; width > 1; width /= leaves_per_chip) {
    const std::size_t layer = (width + leaves_per_chip - 1) / leaves_per_chip;
    p.chips += layer;
    if (width <= leaves_per_chip) break;
  }
  // Every chip's root sends one up wire and receives one down wire.
  p.off_chip_wires = 2 * p.chips;
  return p;
}

std::size_t TreeScanCircuit::predicted_cycles(std::size_t leaves,
                                              unsigned field_bits) {
  if (leaves <= 1) return 0;
  return field_bits + 2 * lg(leaves) - 1;
}

std::vector<std::uint64_t> TreeScanCircuit::seg_scan(
    std::span<const std::uint64_t> values, std::span<const std::uint8_t> flags,
    ScanOpKind op) {
  assert(flags.size() == n_);
  // The extra hardware: one static flag bit per child subtree, the OR-tree
  // of the leaf segment flags (combinational; settles before the bits
  // stream). Heap order: entry c covers node c's subtree.
  std::vector<std::uint8_t> subtree(2 * n_, 0);
  for (std::size_t j = 0; j < n_; ++j) subtree[n_ + j] = flags[j] ? 1 : 0;
  for (std::size_t u = n_; u-- > 1;) {
    subtree[u] = subtree[2 * u] | subtree[2 * u + 1];
  }
  std::vector<std::uint64_t> out = run(values, op, &subtree);
  // A flagged leaf starts its segment: its exclusive value is the identity.
  for (std::size_t j = 0; j < n_; ++j) {
    if (flags[j]) out[j] = 0;
  }
  return out;
}

std::vector<std::uint64_t> TreeScanCircuit::scan(
    std::span<const std::uint64_t> values, ScanOpKind op) {
  return run(values, op, nullptr);
}

std::vector<std::uint64_t> TreeScanCircuit::run(
    std::span<const std::uint64_t> values, ScanOpKind op,
    const std::vector<std::uint8_t>* seg) {
  assert(values.size() == n_);
  const std::uint64_t mask =
      m_ == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << m_) - 1);

  if (n_ == 1) {
    cycles_ = 0;
    return {0};  // exclusive scan of one element: the identity (0 for
                 // unsigned + and unsigned max alike)
  }

  // Assert the clear line and set the op line on every unit.
  for (std::size_t u = 1; u < n_; ++u) {
    Unit& unit = units_[u];
    unit.up.set_op(op);
    unit.down.set_op(op);
    unit.up.clear();
    unit.down.clear();
    unit.fifo.clear();
    unit.up_out = unit.down_left_out = unit.down_right_out = false;
  }

  // Bit k of leaf j's operand enters at cycle k (LSB first for Add,
  // MSB first for Max); zeros afterwards.
  const auto leaf_bit = [&](std::size_t j, std::size_t t) -> bool {
    if (t >= m_) return false;
    const unsigned bit = op == ScanOpKind::Add ? static_cast<unsigned>(t)
                                               : m_ - 1 - static_cast<unsigned>(t);
    return ((values[j] & mask) >> bit) & 1;
  };

  // The up output of heap node c as currently registered (a unit's output
  // flip-flop, or a leaf's live operand bit).
  const auto up_of = [&](std::size_t c, std::size_t t) -> bool {
    return c < n_ ? units_[c].up_out : leaf_bit(c - n_, t);
  };

  // The down output feeding heap node c from its parent.
  const auto down_into = [&](std::size_t c) -> bool {
    if (c == 1) return false;  // root's parent input is tied low
    const Unit& parent = units_[c / 2];
    return (c % 2 == 0) ? parent.down_left_out : parent.down_right_out;
  };

  std::vector<std::uint64_t> result(n_, 0);
  const std::size_t first_out = 2 * levels_ - 1;
  const std::size_t total_cycles = m_ + first_out;

  // Scratch for the synchronous update: inputs are sampled from the current
  // registers before any unit commits its next state.
  std::vector<std::uint8_t> in_left(n_), in_right(n_), in_down(n_);

  for (std::size_t t = 0; t < total_cycles; ++t) {
    // Result bits stream out of the leaves' down inputs.
    if (t >= first_out) {
      const std::size_t k = t - first_out;
      const unsigned bit = op == ScanOpKind::Add
                               ? static_cast<unsigned>(k)
                               : m_ - 1 - static_cast<unsigned>(k);
      for (std::size_t j = 0; j < n_; ++j) {
        if (down_into(n_ + j)) result[j] |= std::uint64_t{1} << bit;
      }
    }
    // Sample every wire.
    for (std::size_t u = 1; u < n_; ++u) {
      in_left[u] = up_of(2 * u, t);
      in_right[u] = up_of(2 * u + 1, t);
      in_down[u] = down_into(u);
    }
    // Clock edge: every unit commits simultaneously. With segment flags,
    // two static multiplexers bypass the sum machines across segment
    // boundaries: a flagged right subtree passes straight up, a flagged
    // left subtree reflects straight down.
    for (std::size_t u = 1; u < n_; ++u) {
      Unit& unit = units_[u];
      const bool f_left = seg != nullptr && (*seg)[2 * u] != 0;
      const bool f_right = seg != nullptr && (*seg)[2 * u + 1] != 0;
      const bool sum_up = unit.up.step(in_left[u], in_right[u]);
      unit.up_out = f_right ? in_right[u] : sum_up;
      const bool delayed_left = unit.fifo.step(in_left[u]);
      const bool sum_down = unit.down.step(in_down[u], delayed_left);
      unit.down_right_out = f_left ? delayed_left : sum_down;
      unit.down_left_out = in_down[u];  // the one-bit register
    }
  }

  cycles_ = total_cycles;
  return result;
}

}  // namespace scanprim::circuit
