#include "src/circuit/prefix_networks.hpp"

#include <algorithm>
#include <numeric>

namespace scanprim::circuit {

std::size_t PrefixNetwork::depth() const {
  std::vector<std::size_t> d(inputs + gates.size(), 0);
  std::size_t deepest = 0;
  for (std::size_t g = 0; g < gates.size(); ++g) {
    d[inputs + g] = 1 + std::max(d[gates[g].left], d[gates[g].right]);
    deepest = std::max(deepest, d[inputs + g]);
  }
  return deepest;
}

std::size_t PrefixNetwork::max_fanout() const {
  std::vector<std::size_t> uses(inputs + gates.size(), 0);
  for (const PrefixGate& g : gates) {
    ++uses[g.left];
    ++uses[g.right];
  }
  return uses.empty() ? 0 : *std::max_element(uses.begin(), uses.end());
}

namespace {

// Shared builder state: cur[i] = node currently holding a prefix ending at i.
struct Builder {
  PrefixNetwork net;
  std::vector<std::size_t> cur;

  explicit Builder(std::size_t n, std::string name) {
    net.inputs = n;
    net.name = std::move(name);
    cur.resize(n);
    std::iota(cur.begin(), cur.end(), std::size_t{0});
  }

  std::size_t combine(std::size_t left_node, std::size_t right_node) {
    net.gates.push_back({left_node, right_node});
    return net.inputs + net.gates.size() - 1;
  }

  PrefixNetwork finish() {
    net.output = cur;
    return std::move(net);
  }
};

}  // namespace

PrefixNetwork serial_network(std::size_t n) {
  Builder b(n, "serial");
  for (std::size_t i = 1; i < n; ++i) {
    b.cur[i] = b.combine(b.cur[i - 1], b.cur[i]);
  }
  return b.finish();
}

PrefixNetwork sklansky_network(std::size_t n) {
  Builder b(n, "sklansky");
  for (std::size_t d = 0; (std::size_t{1} << d) < n; ++d) {
    for (std::size_t i = 0; i < n; ++i) {
      if ((i >> d) & 1) {
        const std::size_t j = ((i >> d) << d) - 1;
        b.cur[i] = b.combine(b.cur[j], b.cur[i]);
      }
    }
  }
  return b.finish();
}

PrefixNetwork kogge_stone_network(std::size_t n) {
  Builder b(n, "kogge-stone");
  for (std::size_t off = 1; off < n; off <<= 1) {
    const std::vector<std::size_t> prev = b.cur;  // level-synchronous
    for (std::size_t i = off; i < n; ++i) {
      b.cur[i] = b.combine(prev[i - off], prev[i]);
    }
  }
  return b.finish();
}

PrefixNetwork brent_kung_network(std::size_t n) {
  Builder b(n, "brent-kung");
  // Up sweep: power-of-two block sums.
  std::size_t top = 1;
  for (std::size_t d = 1; d < n; d <<= 1) {
    for (std::size_t i = 2 * d - 1; i < n; i += 2 * d) {
      b.cur[i] = b.combine(b.cur[i - d], b.cur[i]);
    }
    top = d;
  }
  // Down sweep: fill in the odd block boundaries.
  for (std::size_t d = top; d >= 2; d >>= 1) {
    const std::size_t half = d / 2;
    for (std::size_t i = d + half - 1; i < n; i += d) {
      b.cur[i] = b.combine(b.cur[i - half], b.cur[i]);
    }
  }
  return b.finish();
}

bool validate(const PrefixNetwork& net) {
  const std::size_t n = net.inputs;
  if (net.output.size() != n) return false;
  // Topological order: gates only read earlier nodes.
  for (std::size_t g = 0; g < net.gates.size(); ++g) {
    if (net.gates[g].left >= n + g || net.gates[g].right >= n + g) {
      return false;
    }
  }
  // Free-monoid check: track the index interval each node covers; a gate is
  // legal when its operands are adjacent intervals in order.
  struct Interval {
    std::size_t lo, hi;
    bool ok;
  };
  std::vector<Interval> iv(n + net.gates.size());
  for (std::size_t i = 0; i < n; ++i) iv[i] = {i, i, true};
  for (std::size_t g = 0; g < net.gates.size(); ++g) {
    const Interval& a = iv[net.gates[g].left];
    const Interval& b = iv[net.gates[g].right];
    iv[n + g] = {a.lo, b.hi, a.ok && b.ok && a.hi + 1 == b.lo};
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (net.output[i] >= iv.size()) return false;
    const Interval& o = iv[net.output[i]];
    if (!o.ok || o.lo != 0 || o.hi != i) return false;
  }
  return true;
}

}  // namespace scanprim::circuit
