// The variable-length shift register of Figure 14: a first-in first-out
// buffer of single bits, one bit shifted per clock. A unit at level i from
// the top of the tree carries a register of length 2i; the root's register
// has length zero, which is what reflects the up sweep into the down sweep
// "for free" (§3.2).
#pragma once

#include <cstddef>
#include <vector>

namespace scanprim::circuit {

class ShiftRegister {
 public:
  explicit ShiftRegister(std::size_t length = 0) : bits_(length, false) {}

  std::size_t length() const { return bits_.size(); }

  /// One clock: shifts `in` into the register and returns the bit that falls
  /// out the far end. A zero-length register is a wire: returns `in`.
  bool step(bool in) {
    if (bits_.empty()) return in;
    const bool out = bits_[pos_];
    bits_[pos_] = in;
    pos_ = (pos_ + 1) % bits_.size();
    return out;
  }

  /// The clear signal: zeroes the register contents.
  void clear() {
    bits_.assign(bits_.size(), false);
    pos_ = 0;
  }

 private:
  std::vector<bool> bits_;
  std::size_t pos_ = 0;
};

}  // namespace scanprim::circuit
