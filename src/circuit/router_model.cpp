#include "src/circuit/router_model.hpp"

#include <cmath>

#include "src/circuit/tree_circuit.hpp"

namespace scanprim::circuit {

namespace {

double lg(double n) { return std::log2(n); }

// Routing-overhead factor for the probabilistic multistage network: each of
// the lg n stages is traversed bit-serially and contention roughly triples
// the effective traversal count (calibrated so a 32-bit reference on 2^16
// processors lands near the CM-2's ~600 cycles reported in Table 2).
constexpr double kRouteOverhead = 1.2;

}  // namespace

std::vector<CostRow> theoretical_costs(std::size_t n) {
  const double dn = static_cast<double>(n);
  std::vector<CostRow> rows;
  rows.push_back({"VLSI time (bit times)", lg(dn), lg(dn),
                  "memory: O(lg n) [Leighton]; scan: O(lg n) [Leiserson]"});
  rows.push_back({"VLSI area", dn * dn / lg(dn), dn,
                  "memory: O(n^2/lg n); scan: O(n)"});
  rows.push_back({"circuit depth", lg(dn), lg(dn),
                  "memory: O(lg n) [AKS]; scan: O(lg n) [Fich]"});
  rows.push_back({"circuit size", dn * lg(dn), dn,
                  "memory: O(n lg n); scan: O(n)"});
  return rows;
}

BitSerialCosts bit_serial_costs(std::size_t n, unsigned field_bits) {
  const double stages = lg(static_cast<double>(n));
  BitSerialCosts c;
  // A d-bit message crosses lg n switch stages bit-serially; the head pays
  // the stage latency once and the remaining bits stream behind it, but
  // contention under random traffic costs roughly the overhead factor per
  // stage-bit.
  c.memory_reference_cycles =
      kRouteOverhead * static_cast<double>(field_bits) * stages;
  c.scan_cycles = static_cast<double>(
      TreeScanCircuit::predicted_cycles(n, field_bits));
  return c;
}

}  // namespace scanprim::circuit
