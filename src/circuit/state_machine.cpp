#include "src/circuit/state_machine.hpp"

namespace scanprim::circuit {

void SumStateMachine::clear() {
  q1_ = false;
  q2_ = false;
  s_ = false;
}

bool SumStateMachine::step(bool a, bool b) {
  if (op_ == ScanOpKind::Add) {
    // Full adder, LSB first: S = A ⊕ B ⊕ Q1, carry D1 = AB + AQ1 + BQ1.
    s_ = a ^ b ^ q1_;
    q1_ = (a && b) || (a && q1_) || (b && q1_);
  } else {
    // Maximum, MSB first. Until the operands diverge (Q1 = Q2 = 0) they are
    // equal so far and the output bit is A's (== B's == A|B). The first
    // position where they differ decides the winner and latches Q1 or Q2.
    const bool undecided = !q1_ && !q2_;
    s_ = (q1_ && a) || (q2_ && b) || (undecided && (a || b));
    if (undecided) {
      q1_ = a && !b;
      q2_ = !a && b;
    }
  }
  return s_;
}

}  // namespace scanprim::circuit
