// Cost model for the comparison of Table 2: a scan circuit versus a shared
// memory reference, in theory (VLSI area / circuit size and depth) and in
// "practice" (bit cycles on a bit-serial machine).
//
// The paper's practical column comes from the CM-2, whose router we cannot
// run; this model substitutes a deterministic multistage (butterfly-style)
// routing network and an AKS-style sorting-network bound for the
// deterministic case, with constants documented here and in DESIGN.md. The
// claims the table supports are *relative* (a scan is no slower than a
// memory reference and needs asymptotically less hardware), and those
// relations are preserved.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace scanprim::circuit {

struct CostRow {
  std::string quantity;     ///< e.g. "circuit depth"
  double memory_reference;  ///< cost of a parallel memory reference
  double scan;              ///< cost of the scan primitive
  std::string note;
};

/// Theoretical rows of Table 2 for n processors: VLSI time/area and circuit
/// depth/size, evaluated at a concrete n so the asymptotic gap is visible.
std::vector<CostRow> theoretical_costs(std::size_t n);

/// Bit-serial cycle estimates for d-bit operations on n processors — the
/// "actual" rows. Memory reference: d · lg n cycles per stage traversal with
/// a routing-overhead factor (probabilistic routing); scan: the pipelined
/// tree's d + 2 lg n (exact, from TreeScanCircuit::predicted_cycles).
struct BitSerialCosts {
  double memory_reference_cycles;
  double scan_cycles;
};
BitSerialCosts bit_serial_costs(std::size_t n, unsigned field_bits);

}  // namespace scanprim::circuit
