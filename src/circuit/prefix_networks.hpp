// Parallel-prefix networks as explicit gate graphs — the theory behind
// Table 2's circuit rows and the appendix's history: Ladner–Fischer [28]
// first gave general O(n)-size, O(lg n)-depth prefix circuits; Brent–Kung
// [10] the VLSI adder layout; Fich [15] tightened the bounds. This module
// *generates* the classical networks for any width, evaluates them with an
// arbitrary associative operator, and reports exact gate counts and depths,
// so the size/depth tradeoff the paper cites is measurable rather than
// quoted:
//
//   serial        size n-1          depth n-1
//   Sklansky      size ~(n/2)lg n   depth lg n      (minimum depth)
//   Brent–Kung    size ~2n          depth 2lg n - 1 (minimum size class)
//   Kogge–Stone   size ~n lg n      depth lg n      (minimum fanout)
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/core/ops.hpp"

namespace scanprim::circuit {

/// One ⊕-node: combines the outputs of two earlier nodes. Inputs are nodes
/// 0..n-1; gate k is node n+k.
struct PrefixGate {
  std::size_t left;   ///< node index of the left (earlier) operand
  std::size_t right;  ///< node index of the right operand
};

/// A prefix network over n inputs: evaluating all gates in order leaves the
/// inclusive prefix x0⊕…⊕xi in node output[i].
struct PrefixNetwork {
  std::size_t inputs = 0;
  std::vector<PrefixGate> gates;
  std::vector<std::size_t> output;  ///< per input position, the node holding
                                    ///< its inclusive prefix
  std::string name;

  std::size_t size() const { return gates.size(); }
  std::size_t depth() const;        ///< longest gate chain
  std::size_t max_fanout() const;   ///< widest node reuse
};

PrefixNetwork serial_network(std::size_t n);
PrefixNetwork sklansky_network(std::size_t n);      // Ladner-Fischer family
PrefixNetwork brent_kung_network(std::size_t n);
PrefixNetwork kogge_stone_network(std::size_t n);

/// Evaluates the network: returns the inclusive prefixes of `in`.
template <class T, scanprim::ScanOperator<T> Op>
std::vector<T> evaluate(const PrefixNetwork& net, std::span<const T> in,
                        Op op) {
  std::vector<T> node(net.inputs + net.gates.size());
  for (std::size_t i = 0; i < net.inputs; ++i) node[i] = in[i];
  for (std::size_t g = 0; g < net.gates.size(); ++g) {
    node[net.inputs + g] =
        op(node[net.gates[g].left], node[net.gates[g].right]);
  }
  std::vector<T> out(net.inputs);
  for (std::size_t i = 0; i < net.inputs; ++i) out[i] = node[net.output[i]];
  return out;
}

/// Structural validation: every gate reads earlier nodes; every output is
/// reachable; evaluating with a free monoid (index-interval concatenation)
/// yields exactly the prefix intervals.
bool validate(const PrefixNetwork& net);

}  // namespace scanprim::circuit
