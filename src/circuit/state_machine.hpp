// The sum state machine of Figure 15: three D-type flip-flops (Q1, Q2, and a
// registered output bit S) plus combinational logic, switchable between a
// bit-serial adder (+-scan, least-significant bit first) and a bit-serial
// maximum (max-scan, most-significant bit first).
#pragma once

namespace scanprim::circuit {

enum class ScanOpKind { Add, Max };

/// One sum state machine. `step(a, b)` models a clock edge: it returns the
/// output bit registered on the *previous* cycle and latches the bit computed
/// from the current inputs, so a chain of machines pipelines with one cycle
/// of latency per stage — the property §3.1's bit pipelining depends on.
class SumStateMachine {
 public:
  explicit SumStateMachine(ScanOpKind op = ScanOpKind::Add) : op_(op) {}

  void set_op(ScanOpKind op) { op_ = op; }
  ScanOpKind op() const { return op_; }

  /// The clear signal: resets Q1, Q2 and the output register.
  void clear();

  /// One clock edge: computes the output bit S from the current inputs and
  /// state, updates the state, and returns S. The caller latches S into the
  /// unit's output flip-flop (the third state bit of Fig. 15), which is what
  /// gives each tree level its one cycle of pipeline latency.
  bool step(bool a, bool b);

  bool q1() const { return q1_; }
  bool q2() const { return q2_; }

 private:
  ScanOpKind op_;
  bool q1_ = false;  ///< Add: carry.  Max: "A is already greater".
  bool q2_ = false;  ///< Max: "B is already greater" (unused by Add).
  bool s_ = false;   ///< registered output bit
};

}  // namespace scanprim::circuit
