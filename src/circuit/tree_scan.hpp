// The word-level balanced-binary-tree scan of §3.1 (Figure 13): an up sweep
// that leaves partial sums in the internal nodes (each node also remembers
// its left child's value), followed by a down sweep that delivers to each
// leaf the ⊕ of everything to its left. 2 lg n parallel steps.
//
// This is the algorithm the clocked circuit of tree_circuit.cpp pipelines;
// it also serves as an O(lg n)-depth scan backend in its own right and as a
// reference for the EREW charge (⌈lg p⌉ per scan) of the machine model.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/core/ops.hpp"

namespace scanprim::circuit {

/// Statistics from one tree-scan execution.
struct TreeScanTrace {
  std::size_t levels = 0;          ///< lg n (rounded up)
  std::size_t parallel_steps = 0;  ///< 2 · levels
  std::size_t applications = 0;    ///< total ⊕ applications (≈ 2n)
};

/// Exclusive scan via the two-sweep tree method. Handles any n (internally
/// pads to a power of two with the identity). Returns the trace so tests and
/// benches can check the step/work counts.
template <class T, scanprim::ScanOperator<T> Op>
TreeScanTrace tree_scan(std::span<const T> in, std::span<T> out, Op op) {
  TreeScanTrace trace;
  const std::size_t n = in.size();
  if (n == 0) return trace;

  std::size_t padded = 1;
  while (padded < n) {
    padded <<= 1;
    ++trace.levels;
  }
  trace.parallel_steps = 2 * trace.levels;

  // tree[1] is the root; leaves live at [padded, 2*padded).
  std::vector<T> tree(2 * padded, Op::identity());
  std::vector<T> left_memory(padded, Op::identity());
  for (std::size_t i = 0; i < n; ++i) tree[padded + i] = in[i];

  // Up sweep: each unit applies ⊕ to its children, keeps the left value.
  for (std::size_t u = padded; u-- > 1;) {
    left_memory[u] = tree[2 * u];
    tree[u] = op(tree[2 * u], tree[2 * u + 1]);
    ++trace.applications;
  }
  // Down sweep: the root receives the identity; each unit passes its own
  // down value left, and (down ⊕ stored-left) right.
  tree[1] = Op::identity();
  for (std::size_t u = 1; u < padded; ++u) {
    const T down = tree[u];
    tree[2 * u] = down;
    tree[2 * u + 1] = op(down, left_memory[u]);
    ++trace.applications;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = tree[padded + i];
  return trace;
}

/// Segmented scan on the same tree — the "implemented directly with little
/// additional hardware" remark of §3 (developed in the paper's companion
/// [7]). Each wire carries a (value, segment-started) pair and the units
/// apply the segmented combination
///     (a, fa) ⊕ (b, fb)  =  (fb ? b : a ⊕ b,  fa | fb),
/// which is associative; one fix-up pass writes the identity at flagged
/// positions (the exclusive prefix cannot see its own flag).
template <class T, scanprim::ScanOperator<T> Op>
TreeScanTrace seg_tree_scan(std::span<const T> in,
                            std::span<const std::uint8_t> flags,
                            std::span<T> out, Op op) {
  struct Item {
    T v;
    std::uint8_t f;
  };
  struct SegOp {
    Op op;
    static Item identity() { return {Op::identity(), 0}; }
    Item operator()(const Item& a, const Item& b) const {
      return {b.f ? b.v : op(a.v, b.v), static_cast<std::uint8_t>(a.f | b.f)};
    }
  };
  std::vector<Item> items(in.size()), scanned(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) items[i] = {in[i], flags[i]};
  const TreeScanTrace trace =
      tree_scan(std::span<const Item>(items), std::span<Item>(scanned),
                SegOp{op});
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = flags[i] ? Op::identity() : scanned[i].v;
  }
  return trace;
}

}  // namespace scanprim::circuit
