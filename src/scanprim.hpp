// Umbrella header: the complete public API of scanprim, the reproduction of
// Blelloch's "Scans as Primitive Parallel Operations".
//
//   core/      the scan primitives and vector operations (§2.1–§2.5, §3.4)
//   exec/      the lazy, fusing pipeline executor (docs/PIPELINE.md)
//   machine/   the instrumented EREW / CRCW / scan-model cost semantics
//   circuit/   the bit-pipelined tree-scan hardware of §3
//   graph/     the segmented graph representation and star-merge (§2.3)
//   algo/      the paper's algorithms, their baselines, and Table 1 extras
#pragma once

#include "src/core/ops.hpp"
#include "src/core/primitives.hpp"
#include "src/core/rng.hpp"
#include "src/core/runtime.hpp"
#include "src/core/scan.hpp"
#include "src/core/segmented.hpp"
#include "src/core/segvec.hpp"
#include "src/core/simulate.hpp"

#include "src/exec/executor.hpp"
#include "src/exec/fuser.hpp"
#include "src/exec/graph.hpp"
#include "src/exec/node.hpp"
#include "src/exec/stats.hpp"

#include "src/machine/machine.hpp"

#include "src/circuit/prefix_networks.hpp"
#include "src/circuit/router_model.hpp"
#include "src/circuit/shift_register.hpp"
#include "src/circuit/state_machine.hpp"
#include "src/circuit/tree_circuit.hpp"
#include "src/circuit/tree_scan.hpp"

#include "src/graph/seg_graph.hpp"
#include "src/graph/star_merge.hpp"
#include "src/graph/tree_rooting.hpp"

#include "src/algo/appendix.hpp"
#include "src/algo/biconnected.hpp"
#include "src/algo/bitonic_sort.hpp"
#include "src/algo/closest_pair.hpp"
#include "src/algo/connected_components.hpp"
#include "src/algo/convex_hull.hpp"
#include "src/algo/halving_merge.hpp"
#include "src/algo/independent_set.hpp"
#include "src/algo/kd_tree.hpp"
#include "src/algo/line_draw.hpp"
#include "src/algo/line_of_sight.hpp"
#include "src/algo/list_rank.hpp"
#include "src/algo/matrix.hpp"
#include "src/algo/max_flow.hpp"
#include "src/algo/mst.hpp"
#include "src/algo/quicksort.hpp"
#include "src/algo/radix_sort.hpp"
#include "src/algo/sparse.hpp"
#include "src/algo/tree_contract.hpp"

#include "src/vm/assembler.hpp"
#include "src/vm/interpreter.hpp"
#include "src/vm/isa.hpp"

#include "src/fault/fault.hpp"
#include "src/obs/histogram.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/registry.hpp"
#include "src/thread/thread_pool.hpp"
