// Shard coordinator (docs/SHARD.md): spawns the worker processes, routes
// requests into their shared-memory slot rings, harvests results, and —
// the robustness core — supervises the workers: waitpid for crashes,
// generation-stamped heartbeats for hangs, slot canaries for corruption,
// with automatic fail-over (re-route, then inline re-run) and bounded
// restart backoff. Cross-shard scans coordinate through the combine cells
// in the same region (worker.cpp runs the doubling rounds).
#include "src/shard/shard.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "src/core/env.hpp"
#include "src/shard/layout.hpp"

#if defined(__linux__)

#include <signal.h>
#include <sys/mman.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "src/obs/obs.hpp"
#include "src/obs/registry.hpp"

namespace scanprim::shard {

namespace {

using detail::RegionHeader;
using detail::ShardCtl;
using detail::Slot;
using detail::SlotKind;
using Clock = std::chrono::steady_clock;

std::atomic<std::uint64_t> g_coord_seq{0};

/// The serial reference execution (identical to the serve layer's
/// semantics): the last resort that lets EVERY request resolve
/// successfully even with zero live shards, and the path for requests too
/// large for a slot.
std::vector<Value> inline_scan(const std::vector<Value>& data,
                               const std::vector<std::uint8_t>& flags, Op op,
                               bool inclusive, bool backward) {
  const std::size_t n = data.size();
  std::vector<Value> out(n);
  const bool seg = !flags.empty();
  Value acc = batch::op_identity(op);
  if (!backward) {
    for (std::size_t i = 0; i < n; ++i) {
      if (seg && flags[i]) acc = batch::op_identity(op);
      if (inclusive) {
        acc = batch::op_apply(op, acc, data[i]);
        out[i] = acc;
      } else {
        out[i] = acc;
        acc = batch::op_apply(op, acc, data[i]);
      }
    }
  } else {
    for (std::size_t i = n; i-- > 0;) {
      if (inclusive) {
        acc = batch::op_apply(op, acc, data[i]);
        out[i] = acc;
      } else {
        out[i] = acc;
        acc = batch::op_apply(op, acc, data[i]);
      }
      if (seg && flags[i]) acc = batch::op_identity(op);
    }
  }
  return out;
}

std::size_t ceil_log2(std::size_t p) {
  std::size_t r = 0;
  while ((std::size_t{1} << r) < p) ++r;
  return r;
}

}  // namespace

Options Options::from_env() {
  Options o;
  o.shards = env::size_or("SCANPRIM_SHARDS", o.shards, 1, detail::kMaxShards);
  o.slots_per_shard =
      env::size_or("SCANPRIM_SHARD_SLOTS", o.slots_per_shard, 1, 4096);
  o.slot_bytes = env::size_or("SCANPRIM_SHARD_SLOT_BYTES", o.slot_bytes,
                              sizeof(Slot) + 256, std::size_t{64} << 20);
  o.heartbeat_ms =
      env::size_or("SCANPRIM_SHARD_HEARTBEAT_MS", o.heartbeat_ms, 1, 60'000);
  return o;
}

struct Coordinator::Impl {
  explicit Impl(Options o) : opts(o) {}

  Options opts;
  RegionHeader* region = nullptr;
  std::size_t region_size = 0;
  bool started = false;
  bool stopped = false;

  struct ShardState {
    pid_t pid = 0;
    bool live = false;
    std::uint32_t generation = 0;
    std::uint64_t last_beat = 0;   ///< last heartbeat word seen
    std::size_t missed = 0;        ///< consecutive watchdog ticks w/o a beat
    std::uint64_t restarts = 0;
    std::uint64_t completed_at_spawn = 0;
    std::size_t backoff_ms = 0;
    Clock::time_point restart_at{};
    bool want_restart = false;
    bool corrupt = false;  ///< canary tripped; watchdog must replace it
  };
  std::vector<ShardState> shards;

  struct Request {
    std::uint64_t id = 0;
    std::promise<serve::Result> promise;
    std::vector<Value> values;         ///< owned payload: re-routable
    std::vector<std::uint8_t> flags;
    Op op = Op::kPlus;
    bool inclusive = false;
    bool backward = false;
    bool global = false;               ///< cross-shard chunk: never re-routed
    std::uint8_t part = 0;             ///< global only
    std::uint8_t nparts = 0;
    std::uint64_t job_seq = 0;
    bool has_deadline = false;
    Clock::time_point deadline{};
    Clock::time_point submitted{};
    serve::CancelToken cancel;
    int shard = -1;
    std::size_t failovers = 0;
  };

  /// One mutex guards shard states, the request map, and every slot
  /// ownership transition the COORDINATOR makes. In particular a slot is
  /// only ever in kWriting inside this mutex, so fail-over (also under it)
  /// can never observe a half-written slot.
  mutable std::mutex mu;
  std::unordered_map<std::uint64_t, std::unique_ptr<Request>> requests;
  /// Admitted but not yet in a slot, FIFO. Ids whose request has since
  /// resolved (deadline, cancel) are skipped at placement time.
  std::deque<std::uint64_t> pending;
  std::atomic<std::uint64_t> next_id{1};
  std::atomic<bool> accepting{false};
  std::atomic<bool> stopping{false};

  std::mutex global_mu;  ///< one cross-shard job at a time
  std::atomic<std::uint64_t> global_inflight{0};

  std::thread harvest_thread;
  std::thread watchdog_thread;
  std::atomic<bool> stop_threads{false};

  // Counters, exported through the obs registry (scanprim_shard_*).
  std::atomic<std::uint64_t> c_submitted{0}, c_rejected{0}, c_completed{0},
      c_errors{0}, c_timeouts{0}, c_cancelled{0}, c_rerouted{0},
      c_inline{0}, c_failovers{0}, c_restarts{0}, c_stalls{0},
      c_corrupt{0}, c_global{0}, c_global_retries{0}, c_rounds{0};
  std::uint64_t collector_id = 0;

  using Resolution = std::pair<std::promise<serve::Result>, serve::Result>;

  // ---- region / worker lifecycle -------------------------------------

  void map_region() {
    region_size = detail::region_bytes(opts.shards, opts.slots_per_shard,
                                       opts.slot_bytes);
    void* p = ::mmap(nullptr, region_size, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) {
      throw std::runtime_error("shard: mmap of shared region failed");
    }
    region = new (p) RegionHeader();
    region->nshards = static_cast<std::uint32_t>(opts.shards);
    region->nslots = static_cast<std::uint32_t>(opts.slots_per_shard);
    region->slot_bytes = opts.slot_bytes;
    for (std::size_t sh = 0; sh < opts.shards; ++sh) {
      for (std::size_t i = 0; i < opts.slots_per_shard; ++i) {
        Slot* s = new (detail::slot_at(region, sh, i)) Slot();
        *detail::slot_tail_magic(region, s) = detail::kSlotMagic;
      }
    }
  }

  detail::WorkerConfig worker_config(std::size_t shard) const {
    detail::WorkerConfig cfg;
    cfg.shard = shard;
    cfg.heartbeat_ms = opts.heartbeat_ms;
    cfg.heartbeat_misses = opts.heartbeat_misses;
    if (opts.worker_threads != 0) {
      cfg.worker_threads = opts.worker_threads;
    } else {
      const unsigned hw = std::thread::hardware_concurrency();
      cfg.worker_threads =
          hw == 0 ? 1 : std::max<std::size_t>(1, hw / opts.shards);
    }
    return cfg;
  }

  /// Fork one worker. Requires mu (shard state) and a reset control block.
  bool spawn_locked(std::size_t i) {
    ShardState& st = shards[i];
    ShardCtl& ctl = region->shards[i];
    st.generation += 1;
    ctl.generation.store(st.generation, std::memory_order_relaxed);
    ctl.heartbeat.store(0, std::memory_order_relaxed);
    ctl.draining.store(0, std::memory_order_relaxed);
    const pid_t pid = ::fork();  // atfork hooks fence the global registries
    if (pid < 0) return false;
    if (pid == 0) {
      detail::worker_main(region, worker_config(i));  // never returns
    }
    st.pid = pid;
    st.live = true;
    st.last_beat = 0;
    st.missed = 0;
    st.corrupt = false;
    st.want_restart = false;
    st.completed_at_spawn = ctl.completed.load(std::memory_order_relaxed);
    return true;
  }

  // ---- request plumbing ----------------------------------------------

  void resolve_now(Resolution r) {
    const auto status = r.second.status;
    switch (status) {
      case serve::Status::kOk:
        c_completed.fetch_add(1, std::memory_order_relaxed);
        break;
      case serve::Status::kError:
        c_errors.fetch_add(1, std::memory_order_relaxed);
        break;
      case serve::Status::kTimeout:
        c_timeouts.fetch_add(1, std::memory_order_relaxed);
        break;
      case serve::Status::kCancelled:
        c_cancelled.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        break;
    }
    r.first.set_value(std::move(r.second));
  }

  serve::Result inline_result(const Request& r) const {
    serve::Result res;
    res.status = serve::Status::kOk;
    res.values = inline_scan(r.values, r.flags, r.op, r.inclusive, r.backward);
    res.latency_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             r.submitted)
            .count());
    return res;
  }

  /// Find a free slot on `shard` and queue `r` into it. mu held.
  bool place_on_shard_locked(Request& r, std::size_t shard) {
    if (!shards[shard].live) return false;
    ShardCtl& ctl = region->shards[shard];
    for (std::size_t i = 0; i < opts.slots_per_shard; ++i) {
      Slot* s = detail::slot_at(region, shard, i);
      std::uint32_t expect = detail::kFree;
      if (!s->state.compare_exchange_strong(expect, detail::kWriting,
                                            std::memory_order_acq_rel)) {
        continue;
      }
      const std::size_t n = r.values.size();
      s->kind = static_cast<std::uint8_t>(r.global ? SlotKind::kGlobalChunk
                                                   : SlotKind::kScan);
      s->op = static_cast<std::uint8_t>(r.op);
      s->inclusive = r.inclusive ? 1 : 0;
      s->backward = r.backward ? 1 : 0;
      s->has_flags = r.flags.empty() ? 0 : 1;
      s->part = r.part;
      s->nparts = r.nparts;
      s->generation = shards[shard].generation;
      s->req_id = r.id;
      s->job_seq = r.job_seq;
      s->n = n;
      s->magic = detail::kSlotMagic;
      *detail::slot_tail_magic(region, s) = detail::kSlotMagic;
      s->result_status = 0;
      s->result_n = 0;
      s->error[0] = '\0';
      std::memcpy(detail::slot_values(s), r.values.data(),
                  n * sizeof(Value));
      if (!r.flags.empty()) {
        std::memcpy(detail::slot_flags(s, n), r.flags.data(), n);
      }
      s->state.store(detail::kQueued, std::memory_order_release);
      r.shard = static_cast<int>(shard);
      ctl.queued.fetch_add(1, std::memory_order_release);
      detail::futex_wake_all(&ctl.queued);
      return true;
    }
    return false;
  }

  /// Route `r` across the live shards: home shard by id, then linear
  /// probe. mu held. `avoid` skips the shard the request just died on.
  bool place_locked(Request& r, int avoid = -1) {
    const std::size_t nsh = opts.shards;
    const std::size_t home = static_cast<std::size_t>(r.id) % nsh;
    for (std::size_t k = 0; k < nsh; ++k) {
      const std::size_t cand = (home + k) % nsh;
      if (static_cast<int>(cand) == avoid) continue;
      if (place_on_shard_locked(r, cand)) return true;
    }
    return false;
  }

  std::size_t pending_cap() const {
    return opts.max_pending != 0 ? opts.max_pending
                                 : 4 * opts.shards * opts.slots_per_shard;
  }

  /// Move as many waiting requests as slots allow, in admission order;
  /// head-of-line blocking keeps the FIFO honest. mu held. Called whenever
  /// slots free up: after a harvest sweep, after a shard restart.
  void place_pending_locked() {
    while (!pending.empty()) {
      const std::uint64_t id = pending.front();
      const auto it = requests.find(id);
      if (it == requests.end()) {  // resolved while waiting
        pending.pop_front();
        continue;
      }
      if (it->second->shard >= 0) {  // already re-placed by a fail-over
        pending.pop_front();
        continue;
      }
      if (!place_locked(*it->second)) return;
      pending.pop_front();
    }
  }

  /// Read a finished slot into a Result. mu held.
  serve::Result result_from_slot(Slot* s, const Request& r) {
    serve::Result res;
    res.status = static_cast<serve::Status>(s->result_status);
    if (res.status == serve::Status::kOk) {
      const std::size_t n = static_cast<std::size_t>(s->result_n);
      res.values.assign(detail::slot_values(s), detail::slot_values(s) + n);
    } else {
      s->error[sizeof(s->error) - 1] = '\0';
      res.error = s->error;
    }
    res.latency_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             r.submitted)
            .count());
    return res;
  }

  void reset_slot(Slot* s) {
    s->magic = detail::kSlotMagic;
    *detail::slot_tail_magic(region, s) = detail::kSlotMagic;
    s->error[0] = '\0';
    s->state.store(detail::kFree, std::memory_order_release);
  }

  bool slot_canary_ok(Slot* s) {
    return s->magic == detail::kSlotMagic &&
           *detail::slot_tail_magic(region, s) == detail::kSlotMagic;
  }

  /// Harvest one kDone slot. mu held; resolutions are returned so promises
  /// fire outside the lock.
  void harvest_slot_locked(std::size_t shard, Slot* s,
                           std::vector<Resolution>& out) {
    const bool canary_ok = slot_canary_ok(s);
    if (!canary_ok) {
      c_corrupt.fetch_add(1, std::memory_order_relaxed);
      shards[shard].corrupt = true;  // watchdog replaces the whole shard
    }
    const auto it = requests.find(s->req_id);
    if (it != requests.end()) {
      Request& r = *it->second;
      serve::Result res;
      if (canary_ok) {
        res = result_from_slot(s, r);
      } else {
        res.status = serve::Status::kError;
        res.error = "shard segment corrupted (canary mismatch)";
      }
      out.emplace_back(std::move(r.promise), std::move(res));
      requests.erase(it);
    }
    reset_slot(s);
  }

  // ---- harvest thread -------------------------------------------------

  void harvest_loop() {
    std::uint32_t seen = region->done_seq.load(std::memory_order_acquire);
    while (!stop_threads.load(std::memory_order_relaxed)) {
      detail::futex_wait(&region->done_seq, seen, 10);
      seen = region->done_seq.load(std::memory_order_acquire);
      std::vector<Resolution> ready;
      {
        std::lock_guard<std::mutex> lk(mu);
        obs::Span span("shard.harvest");
        for (std::size_t sh = 0; sh < opts.shards; ++sh) {
          for (std::size_t i = 0; i < opts.slots_per_shard; ++i) {
            Slot* s = detail::slot_at(region, sh, i);
            if (s->state.load(std::memory_order_acquire) == detail::kDone) {
              harvest_slot_locked(sh, s, ready);
            }
          }
        }
        sweep_expired_locked(ready);
        place_pending_locked();
      }
      for (auto& r : ready) resolve_now(std::move(r));
    }
  }

  /// Deadlines and cancellations, enforced parent-side so they hold even
  /// when the owning worker is dead or hung. mu held.
  void sweep_expired_locked(std::vector<Resolution>& out) {
    const auto now = Clock::now();
    for (auto it = requests.begin(); it != requests.end();) {
      Request& r = *it->second;
      serve::Status s = serve::Status::kOk;
      if (r.cancel && r.cancel->load(std::memory_order_relaxed)) {
        s = serve::Status::kCancelled;
      } else if (r.has_deadline && now >= r.deadline) {
        s = serve::Status::kTimeout;
      }
      if (s == serve::Status::kOk) {
        ++it;
        continue;
      }
      serve::Result res;
      res.status = s;
      res.error = s == serve::Status::kTimeout ? "deadline expired" : "";
      out.emplace_back(std::move(r.promise), std::move(res));
      // The slot (if any) stays with the worker; the harvest pass frees it
      // when the orphaned result lands and finds no request to resolve.
      it = requests.erase(it);
    }
  }

  // ---- watchdog / fail-over -------------------------------------------

  void watchdog_loop() {
    const auto tick = std::chrono::milliseconds(
        opts.heartbeat_ms == 0 ? 1 : opts.heartbeat_ms);
    while (!stop_threads.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(tick);
      std::vector<Resolution> ready;
      {
        std::lock_guard<std::mutex> lk(mu);
        for (std::size_t i = 0; i < opts.shards; ++i) {
          check_shard_locked(i, ready);
        }
      }
      for (auto& r : ready) resolve_now(std::move(r));
    }
  }

  void check_shard_locked(std::size_t i, std::vector<Resolution>& ready) {
    ShardState& st = shards[i];
    if (!st.live) {
      if (st.want_restart && !stopping.load(std::memory_order_relaxed) &&
          Clock::now() >= st.restart_at) {
        obs::Span span("shard.restart");
        if (spawn_locked(i)) {
          st.restarts += 1;
          c_restarts.fetch_add(1, std::memory_order_relaxed);
          place_pending_locked();  // a whole ring of slots just freed up
        } else {
          st.restart_at = Clock::now() + std::chrono::milliseconds(100);
        }
      }
      return;
    }

    // 1. Did the process exit (crash, SIGKILL, clean drain)?
    int wstatus = 0;
    const pid_t w = ::waitpid(st.pid, &wstatus, WNOHANG);
    if (w == st.pid) {
      st.pid = 0;
      failover_locked(i, ready);
      return;
    }

    // 2. Did the harvest pass flag its segment as corrupted?
    if (st.corrupt) {
      kill_and_reap_locked(st);
      failover_locked(i, ready);
      return;
    }

    // 3. Is it alive but not beating? The beat must carry the CURRENT
    // generation — an old incarnation's beats don't count.
    const std::uint64_t beat =
        region->shards[i].heartbeat.load(std::memory_order_relaxed);
    const bool valid_gen = (beat >> 32) == st.generation;
    if (valid_gen && beat != st.last_beat) {
      st.last_beat = beat;
      st.missed = 0;
      // An incarnation that beats AND completes work is healthy: restart
      // backoff starts over. (Without this, sustained churn — every
      // incarnation crashing after a little work — walks every shard to
      // the 1 s backoff cap and throughput collapses; with it, the cap is
      // reserved for workers that die without serving anything.)
      if (region->shards[i].completed.load(std::memory_order_relaxed) >
          st.completed_at_spawn) {
        st.backoff_ms = 0;
      }
    } else {
      st.missed += 1;
      if (st.missed >= opts.heartbeat_misses) {
        c_stalls.fetch_add(1, std::memory_order_relaxed);
        kill_and_reap_locked(st);
        failover_locked(i, ready);
      }
    }
  }

  void kill_and_reap_locked(ShardState& st) {
    ::kill(st.pid, SIGKILL);
    int wstatus = 0;
    ::waitpid(st.pid, &wstatus, 0);
    st.pid = 0;
  }

  /// The shard is dead and reaped. Reclaim its slots, re-route what was in
  /// flight, schedule the restart. mu held.
  void failover_locked(std::size_t i, std::vector<Resolution>& ready) {
    obs::Span span("shard.failover");
    ShardState& st = shards[i];
    st.live = false;
    c_failovers.fetch_add(1, std::memory_order_relaxed);
    // Poison any cross-shard job: a chunk this shard owned will never
    // publish its rounds, so every spinning peer must bail out now.
    if (global_inflight.load(std::memory_order_relaxed) != 0) {
      region->global_abort.store(1, std::memory_order_relaxed);
    }

    for (std::size_t k = 0; k < opts.slots_per_shard; ++k) {
      Slot* s = detail::slot_at(region, i, k);
      const std::uint32_t state = s->state.load(std::memory_order_acquire);
      switch (state) {
        case detail::kFree:
          break;
        case detail::kDone:
          // Finished before dying; the result is intact. Harvest it.
          harvest_slot_locked(i, s, ready);
          break;
        case detail::kQueued:
        case detail::kClaimed:
        default: {  // kWriting cannot appear: writers hold mu
          const auto it = requests.find(s->req_id);
          if (it == requests.end()) {
            reset_slot(s);
            break;
          }
          Request& r = *it->second;
          if (r.global) {
            // A combine chunk is pinned to its part; the whole job re-runs
            // (global_scan retries on any part error).
            serve::Result res;
            res.status = serve::Status::kError;
            res.error = "shard died during cross-shard scan";
            ready.emplace_back(std::move(r.promise), std::move(res));
            requests.erase(it);
            reset_slot(s);
            break;
          }
          reset_slot(s);
          r.shard = -1;
          r.failovers += 1;
          if (r.failovers <= opts.max_failovers &&
              place_locked(r, static_cast<int>(i))) {
            c_rerouted.fetch_add(1, std::memory_order_relaxed);
            obs::instant("shard.reroute", r.id);
          } else {
            // Out of fail-overs or out of live shards: the coordinator
            // runs it itself. Slower, never lost.
            c_inline.fetch_add(1, std::memory_order_relaxed);
            ready.emplace_back(std::move(r.promise), inline_result(r));
            requests.erase(it);
          }
          break;
        }
      }
    }

    // Fresh control block for the next incarnation; stale futex waiters
    // (none should exist — the worker is dead) are irrelevant.
    region->shards[i].heartbeat.store(0, std::memory_order_relaxed);
    region->shards[i].queued.store(0, std::memory_order_relaxed);

    if (stopping.load(std::memory_order_relaxed) ||
        st.restarts >= opts.max_restarts) {
      st.want_restart = false;
      return;
    }
    st.backoff_ms = st.backoff_ms == 0
                        ? opts.restart_backoff_ms
                        : std::min<std::size_t>(st.backoff_ms * 2, 1000);
    st.restart_at = Clock::now() + std::chrono::milliseconds(st.backoff_ms);
    st.want_restart = true;
  }

  // ---- metrics collector ----------------------------------------------

  void register_metrics() {
    const std::string label =
        "{coordinator=\"" +
        std::to_string(g_coord_seq.fetch_add(1, std::memory_order_relaxed)) +
        "\"}";
    collector_id = obs::register_collector([this, label](std::string& out) {
      const auto c = [&](const char* name, std::uint64_t v) {
        obs::append_counter(out, std::string(name) + label, v);
      };
      c("scanprim_shard_submitted_total", c_submitted.load());
      c("scanprim_shard_rejected_total", c_rejected.load());
      c("scanprim_shard_completed_total", c_completed.load());
      c("scanprim_shard_errors_total", c_errors.load());
      c("scanprim_shard_timeouts_total", c_timeouts.load());
      c("scanprim_shard_cancelled_total", c_cancelled.load());
      c("scanprim_shard_rerouted_total", c_rerouted.load());
      c("scanprim_shard_inline_runs_total", c_inline.load());
      c("scanprim_shard_failovers_total", c_failovers.load());
      c("scanprim_shard_restarts_total", c_restarts.load());
      c("scanprim_shard_heartbeat_stalls_total", c_stalls.load());
      c("scanprim_shard_corrupt_segments_total", c_corrupt.load());
      c("scanprim_shard_global_scans_total", c_global.load());
      c("scanprim_shard_global_retries_total", c_global_retries.load());
      c("scanprim_shard_combine_rounds_total", c_rounds.load());
      std::lock_guard<std::mutex> lk(mu);
      for (std::size_t i = 0; i < shards.size(); ++i) {
        obs::append_counter(out,
                            "scanprim_shard_worker_restarts_total{shard=\"" +
                                std::to_string(i) + "\"}",
                            shards[i].restarts);
      }
    });
  }
};

Coordinator::Coordinator(Options opts) : impl_(new Impl(opts)) {}

Coordinator::~Coordinator() {
  shutdown();
}

void Coordinator::start() {
  Impl& im = *impl_;
  if (im.started) return;
  // Touch every lazily initialised process-wide registry BEFORE the first
  // fork, so children inherit fully constructed (and atfork-fenced) state
  // instead of racing the parent's first-use initialisation.
  obs::counter("scanprim_shard_submitted_total").get();
  im.map_region();
  im.shards.resize(im.opts.shards);
  {
    std::lock_guard<std::mutex> lk(im.mu);
    for (std::size_t i = 0; i < im.opts.shards; ++i) {
      if (!im.spawn_locked(i)) {
        throw std::runtime_error("shard: fork failed while starting workers");
      }
    }
  }
  im.stop_threads.store(false);
  im.harvest_thread = std::thread([&im] { im.harvest_loop(); });
  im.watchdog_thread = std::thread([&im] { im.watchdog_loop(); });
  im.register_metrics();
  im.accepting.store(true);
  im.started = true;
}

std::future<serve::Result> Coordinator::submit(serve::ScanJob job,
                                               serve::SubmitOptions so) {
  Impl& im = *impl_;
  obs::Span span("shard.submit");
  std::promise<serve::Result> promise;
  std::future<serve::Result> fut = promise.get_future();

  const auto fail = [&](serve::Status st) {
    serve::Result r;
    r.status = st;
    promise.set_value(std::move(r));
    return std::move(fut);
  };
  if (!im.started || !im.accepting.load(std::memory_order_relaxed)) {
    return fail(serve::Status::kShutdown);
  }
  im.c_submitted.fetch_add(1, std::memory_order_relaxed);
  if (so.cancel && so.cancel->load(std::memory_order_relaxed)) {
    im.c_cancelled.fetch_add(1, std::memory_order_relaxed);
    return fail(serve::Status::kCancelled);
  }

  auto req = std::make_unique<Impl::Request>();
  req->id = im.next_id.fetch_add(1, std::memory_order_relaxed);
  req->values = std::move(job.data);
  req->flags = std::move(job.flags);
  req->op = job.op;
  req->inclusive = job.inclusive;
  req->backward = job.backward;
  req->submitted = Clock::now();
  if (so.deadline.count() > 0) {
    req->has_deadline = true;
    req->deadline = req->submitted + so.deadline;
  }
  req->cancel = so.cancel;
  req->promise = std::move(promise);

  const bool oversize =
      req->values.size() >
      detail::slot_capacity(*im.region, !req->flags.empty());
  if (oversize) {
    im.c_inline.fetch_add(1, std::memory_order_relaxed);
    im.resolve_now({std::move(req->promise), im.inline_result(*req)});
    return fut;
  }

  bool admitted = false;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    if (im.place_locked(*req)) {
      im.requests.emplace(req->id, std::move(req));
      admitted = true;
    } else if (im.pending.size() < im.pending_cap()) {
      // Every slot is busy: wait for one, in admission order.
      im.pending.push_back(req->id);
      im.requests.emplace(req->id, std::move(req));
      admitted = true;
    }
  }
  if (!admitted) {
    im.c_rejected.fetch_add(1, std::memory_order_relaxed);
    serve::Result r;
    r.status = serve::Status::kRejected;
    r.error = "request slots and pending queue are full";
    req->promise.set_value(std::move(r));
  }
  return fut;
}

serve::Result Coordinator::global_scan(const std::vector<Value>& data, Op op,
                                       bool inclusive) {
  Impl& im = *impl_;
  obs::Span span("shard.global_scan");
  serve::Result out;
  if (!im.started || !im.accepting.load(std::memory_order_relaxed)) {
    out.status = serve::Status::kShutdown;
    return out;
  }
  std::lock_guard<std::mutex> gl(im.global_mu);
  im.c_global.fetch_add(1, std::memory_order_relaxed);

  const std::size_t cap = detail::slot_capacity(*im.region, false);
  const auto run_inline_whole = [&] {
    im.c_inline.fetch_add(1, std::memory_order_relaxed);
    out.status = serve::Status::kOk;
    out.values = inline_scan(data, {}, op, inclusive, false);
    return out;
  };

  for (std::size_t attempt = 0; attempt < 4; ++attempt) {
    // Snapshot the live shards; the parts map round-robin onto them.
    std::vector<std::size_t> live;
    {
      std::lock_guard<std::mutex> lk(im.mu);
      for (std::size_t i = 0; i < im.opts.shards; ++i) {
        if (im.shards[i].live) live.push_back(i);
      }
    }
    if (live.empty()) return run_inline_whole();

    std::size_t nparts =
        std::max(live.size(), (data.size() + cap - 1) / std::max<std::size_t>(cap, 1));
    nparts = std::min(nparts, detail::kMaxShards);
    nparts = std::max<std::size_t>(nparts, 1);
    if ((data.size() + nparts - 1) / nparts > cap) {
      // Even 64 parts cannot fit the vector through the slots.
      return run_inline_whole();
    }

    const std::uint64_t job =
        im.region->global_job_seq.fetch_add(1, std::memory_order_relaxed) + 1;
    im.region->global_abort.store(0, std::memory_order_relaxed);

    std::vector<std::future<serve::Result>> parts;
    parts.reserve(nparts);
    bool placed_all = true;
    const std::size_t base = data.size() / nparts;
    const std::size_t extra = data.size() % nparts;
    std::size_t offset = 0;
    {
      std::lock_guard<std::mutex> lk(im.mu);
      for (std::size_t p = 0; p < nparts; ++p) {
        const std::size_t len = base + (p < extra ? 1 : 0);
        auto req = std::make_unique<Impl::Request>();
        req->id = im.next_id.fetch_add(1, std::memory_order_relaxed);
        req->values.assign(data.begin() + offset, data.begin() + offset + len);
        offset += len;
        req->op = op;
        req->inclusive = inclusive;
        req->global = true;
        req->part = static_cast<std::uint8_t>(p);
        req->nparts = static_cast<std::uint8_t>(nparts);
        req->job_seq = job;
        req->submitted = Clock::now();
        std::promise<serve::Result> promise;
        parts.push_back(promise.get_future());
        req->promise = std::move(promise);
        im.global_inflight.fetch_add(1, std::memory_order_relaxed);
        if (!im.place_on_shard_locked(*req, live[p % live.size()])) {
          // Its shard ring is full (or just died). Abort this attempt;
          // the placed parts unwind through the abort flag.
          im.global_inflight.fetch_sub(1, std::memory_order_relaxed);
          im.region->global_abort.store(1, std::memory_order_relaxed);
          serve::Result r;
          r.status = serve::Status::kRejected;
          req->promise.set_value(std::move(r));
          placed_all = false;
          break;
        }
        im.requests.emplace(req->id, std::move(req));
      }
    }

    bool all_ok = placed_all;
    std::vector<serve::Result> results;
    results.reserve(parts.size());
    for (auto& f : parts) {
      results.push_back(f.get());
      im.global_inflight.fetch_sub(1, std::memory_order_relaxed);
      if (results.back().status != serve::Status::kOk) all_ok = false;
    }

    if (all_ok) {
      out.status = serve::Status::kOk;
      out.values.clear();
      out.values.reserve(data.size());
      for (auto& r : results) {
        out.values.insert(out.values.end(), r.values.begin(), r.values.end());
      }
      im.c_rounds.fetch_add(ceil_log2(nparts), std::memory_order_relaxed);
      return out;
    }
    im.c_global_retries.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(5 * (attempt + 1)));
  }
  // Persistent casualties: the coordinator still owes an answer.
  return run_inline_whole();
}

void Coordinator::shutdown() {
  Impl& im = *impl_;
  if (!im.started || im.stopped) return;
  im.stopped = true;
  im.accepting.store(false);
  im.stopping.store(true);

  // Ask every live worker to drain: finish queued slots, then exit.
  {
    std::lock_guard<std::mutex> lk(im.mu);
    for (std::size_t i = 0; i < im.opts.shards; ++i) {
      if (!im.shards[i].live) continue;
      im.region->shards[i].draining.store(1, std::memory_order_release);
      detail::futex_wake_all(&im.region->shards[i].queued);
    }
  }

  // Wait for the request map to empty. The harvest and watchdog threads
  // stay up the whole time, so a worker dying mid-drain is still failed
  // over (its requests re-route to live draining shards or run inline).
  const auto drain_deadline = Clock::now() + std::chrono::seconds(60);
  for (;;) {
    {
      // Draining workers exit the moment their ring is empty, so requests
      // still waiting for a slot could strand: run them inline instead.
      std::vector<Impl::Resolution> waiting;
      std::lock_guard<std::mutex> lk(im.mu);
      for (auto it = im.requests.begin(); it != im.requests.end();) {
        Impl::Request& r = *it->second;
        if (r.shard < 0 && !r.global) {
          im.c_inline.fetch_add(1, std::memory_order_relaxed);
          waiting.emplace_back(std::move(r.promise), im.inline_result(r));
          it = im.requests.erase(it);
        } else {
          ++it;
        }
      }
      for (auto& r : waiting) im.resolve_now(std::move(r));
      if (im.requests.empty()) break;
    }
    if (Clock::now() > drain_deadline) {
      std::vector<Impl::Resolution> leftovers;
      std::lock_guard<std::mutex> lk(im.mu);
      for (auto& [id, req] : im.requests) {
        serve::Result r;
        r.status = serve::Status::kError;
        r.error = "shutdown drain timed out";
        leftovers.emplace_back(std::move(req->promise), std::move(r));
      }
      im.requests.clear();
      for (auto& r : leftovers) im.resolve_now(std::move(r));
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Reap the workers: grace period for the clean drain exit, then SIGKILL.
  {
    std::lock_guard<std::mutex> lk(im.mu);
    for (std::size_t i = 0; i < im.opts.shards; ++i) {
      Impl::ShardState& st = im.shards[i];
      if (!st.live || st.pid == 0) continue;
      const auto grace = Clock::now() + std::chrono::seconds(3);
      int wstatus = 0;
      for (;;) {
        const pid_t w = ::waitpid(st.pid, &wstatus, WNOHANG);
        if (w == st.pid) break;
        if (Clock::now() > grace) {
          ::kill(st.pid, SIGKILL);
          ::waitpid(st.pid, &wstatus, 0);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      st.pid = 0;
      st.live = false;
    }
  }

  im.stop_threads.store(true);
  if (im.harvest_thread.joinable()) im.harvest_thread.join();
  if (im.watchdog_thread.joinable()) im.watchdog_thread.join();
  if (im.collector_id != 0) {
    obs::unregister_collector(im.collector_id);
    im.collector_id = 0;
  }
  if (im.region != nullptr) {
    ::munmap(im.region, im.region_size);
    im.region = nullptr;
  }
}

Metrics Coordinator::metrics() const {
  const Impl& im = *impl_;
  Metrics m;
  m.submitted = im.c_submitted.load();
  m.rejected = im.c_rejected.load();
  m.completed = im.c_completed.load();
  m.errors = im.c_errors.load();
  m.timeouts = im.c_timeouts.load();
  m.cancelled = im.c_cancelled.load();
  m.rerouted = im.c_rerouted.load();
  m.inline_runs = im.c_inline.load();
  m.failovers = im.c_failovers.load();
  m.restarts = im.c_restarts.load();
  m.heartbeat_stalls = im.c_stalls.load();
  m.corrupt_segments = im.c_corrupt.load();
  m.global_scans = im.c_global.load();
  m.global_retries = im.c_global_retries.load();
  m.combine_rounds = im.c_rounds.load();
  return m;
}

std::size_t Coordinator::live_shards() const {
  const Impl& im = *impl_;
  std::lock_guard<std::mutex> lk(im.mu);
  std::size_t n = 0;
  for (const auto& s : im.shards) n += s.live ? 1 : 0;
  return n;
}

int Coordinator::shard_pid(std::size_t shard) const {
  const Impl& im = *impl_;
  std::lock_guard<std::mutex> lk(im.mu);
  return shard < im.shards.size() ? static_cast<int>(im.shards[shard].pid) : 0;
}

std::uint64_t Coordinator::shard_restarts(std::size_t shard) const {
  const Impl& im = *impl_;
  std::lock_guard<std::mutex> lk(im.mu);
  return shard < im.shards.size() ? im.shards[shard].restarts : 0;
}

}  // namespace scanprim::shard

#else  // !__linux__

// Multi-process sharding needs fork + futex; elsewhere the coordinator is
// an honest stub so the library still links and callers get a clear error.
namespace scanprim::shard {

Options Options::from_env() { return Options{}; }

struct Coordinator::Impl {};

Coordinator::Coordinator(Options) : impl_(new Impl) {}
Coordinator::~Coordinator() = default;

void Coordinator::start() {
  throw std::runtime_error("shard: multi-process sharding requires Linux");
}

std::future<serve::Result> Coordinator::submit(serve::ScanJob,
                                               serve::SubmitOptions) {
  std::promise<serve::Result> p;
  serve::Result r;
  r.status = serve::Status::kShutdown;
  p.set_value(std::move(r));
  return p.get_future();
}

serve::Result Coordinator::global_scan(const std::vector<Value>&, Op, bool) {
  serve::Result r;
  r.status = serve::Status::kShutdown;
  return r;
}

void Coordinator::shutdown() {}
Metrics Coordinator::metrics() const { return Metrics{}; }
std::size_t Coordinator::live_shards() const { return 0; }
int Coordinator::shard_pid(std::size_t) const { return 0; }
std::uint64_t Coordinator::shard_restarts(std::size_t) const { return 0; }

}  // namespace scanprim::shard

#endif
