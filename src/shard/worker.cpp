// Shard worker process body (docs/SHARD.md).
//
// Runs in a child forked by the Coordinator. The worker claims queued
// slots from its shard's ring, executes regular scans through its own
// serve::Service (so each shard gets the full batching/recovery stack),
// handles cross-shard chunks inline with the doubling combine, and writes
// results back into the same slots. All exits go through _exit(): the
// child must never run the parent's atexit chain, and a LeakSanitizer
// pass over inherited parent state would be meaningless.
//
// Fork hygiene, in order, before anything else can allocate or lock:
//   1. PR_SET_PDEATHSIG: a SIGKILLed coordinator takes its workers along.
//   2. fault::reinit_after_fork(): drop inherited armings, re-read
//      SCANPRIM_FAULT so process fault points arm per incarnation.
//   3. thread::reinit_pool_after_fork(): the inherited pool object has no
//      worker threads in this process; build a fresh one.
#include "src/shard/layout.hpp"

#if defined(__linux__)

#include <sys/prctl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/obs/obs.hpp"
#include "src/serve/service.hpp"
#include "src/thread/thread_pool.hpp"

namespace scanprim::shard::detail {

namespace {

void write_error(Slot* s, const char* what) {
  std::snprintf(s->error, sizeof(s->error), "%s", what);
}

/// Publish a finished slot and ring the coordinator's doorbell.
void finish_slot(RegionHeader* region, ShardCtl* ctl, Slot* s) {
  s->state.store(kDone, std::memory_order_release);
  ctl->completed.fetch_add(1, std::memory_order_relaxed);
  region->done_seq.fetch_add(1, std::memory_order_release);
  futex_wake_all(&region->done_seq);
}

/// Copy a Service result back into the slot. The shard.segment_corrupt
/// fault point simulates a worker scribbling over its segment: it breaks
/// the slot's canary, which the coordinator's harvest detects and treats
/// as a compromised shard.
void write_back(Slot* s, const serve::Result& r) {
  try {
    SCANPRIM_FAULT_POINT("shard.segment_corrupt");
  } catch (...) {
    s->magic = 0xdead'dead'dead'deadull;
  }
  s->result_status = static_cast<std::uint32_t>(r.status);
  if (r.status == serve::Status::kOk) {
    const std::size_t n = r.values.size();
    std::memcpy(slot_values(s), r.values.data(), n * sizeof(batch::Value));
    s->result_n = n;
  } else {
    s->result_n = 0;
    write_error(s, r.error.c_str());
  }
}

/// One part of a cross-shard scan: local inclusive scan, publish the part
/// total through the doubling rounds, fold in the prefixes of earlier
/// parts, then rewrite the chunk under the incoming prefix. Träff's
/// hypercube scheme: round r combines with the part 2^r below, so after
/// ceil(lg p) rounds every part holds the exclusive prefix of all parts
/// before it — the chained engine's aggregate/prefix protocol with shared
/// memory cells standing in for messages.
void run_global_chunk(RegionHeader* region, Slot* s) {
  const auto op = static_cast<batch::Op>(s->op);
  const std::size_t n = static_cast<std::size_t>(s->n);
  const std::size_t part = s->part;
  const std::size_t nparts = s->nparts;
  const std::uint64_t job = s->job_seq;
  batch::Value* d = slot_values(s);

  batch::Value acc = batch::op_identity(op);
  for (std::size_t i = 0; i < n; ++i) {
    acc = batch::op_apply(op, acc, d[i]);
    d[i] = acc;  // in place: d becomes the local inclusive scan
  }

  batch::Value running = acc;  // identity when the chunk is empty
  batch::Value prefix = batch::op_identity(op);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(2);
  std::size_t round = 0;
  for (std::size_t step = 1; step < nparts; step <<= 1, ++round) {
    CombineCell& mine = region->cells[part][round];
    mine.value.store(running, std::memory_order_relaxed);
    mine.tag.store(combine_tag(job, round), std::memory_order_release);
    if (part < step) continue;
    CombineCell& src = region->cells[part - step][round];
    const std::uint64_t want = combine_tag(job, round);
    while (src.tag.load(std::memory_order_acquire) != want) {
      if (region->global_abort.load(std::memory_order_relaxed) != 0) {
        s->result_status = static_cast<std::uint32_t>(serve::Status::kError);
        write_error(s, "cross-shard combine aborted");
        return;
      }
      if (std::chrono::steady_clock::now() > deadline) {
        // A peer stopped publishing (likely dead); poison the job so every
        // other part bails too, and let the coordinator re-run it.
        region->global_abort.store(1, std::memory_order_relaxed);
        s->result_status = static_cast<std::uint32_t>(serve::Status::kError);
        write_error(s, "cross-shard combine timed out waiting for a peer");
        return;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    const batch::Value v = src.value.load(std::memory_order_relaxed);
    prefix = batch::op_apply(op, v, prefix);
    running = batch::op_apply(op, v, running);
  }

  if (s->inclusive != 0) {
    for (std::size_t i = 0; i < n; ++i) d[i] = batch::op_apply(op, prefix, d[i]);
  } else {
    for (std::size_t i = n; i-- > 1;) d[i] = batch::op_apply(op, prefix, d[i - 1]);
    if (n > 0) d[0] = prefix;
  }
  s->result_status = static_cast<std::uint32_t>(serve::Status::kOk);
  s->result_n = n;
}

serve::ScanJob job_from_slot(Slot* s) {
  const std::size_t n = static_cast<std::size_t>(s->n);
  serve::ScanJob job;
  job.op = static_cast<batch::Op>(s->op);
  job.inclusive = s->inclusive != 0;
  job.backward = s->backward != 0;
  job.data.assign(slot_values(s), slot_values(s) + n);
  if (s->has_flags != 0) {
    const std::uint8_t* f = slot_flags(s, n);
    job.flags.assign(f, f + n);
  }
  return job;
}

}  // namespace

[[noreturn]] void worker_main(RegionHeader* region, WorkerConfig cfg) {
  // A coordinator that is SIGKILLed cannot drain us; die with it rather
  // than leak a busy-looping orphan. Covers the fork..prctl window too.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (::getppid() == 1) ::_exit(0);

  fault::reinit_after_fork();
  thread::reinit_pool_after_fork(cfg.worker_threads);

  ShardCtl& ctl = region->shards[cfg.shard];
  const std::uint32_t gen = ctl.generation.load(std::memory_order_relaxed);

  // Heartbeat thread: a beat every quarter period leaves the watchdog's
  // `misses` full periods of slack. Generation-stamped, so if this process
  // somehow survives its own replacement its beats are ignored as stale.
  std::atomic<bool> hb_stop{false};
  std::thread hb([&] {
    std::uint64_t count = 0;
    const auto period = std::chrono::milliseconds(
        cfg.heartbeat_ms < 4 ? 1 : cfg.heartbeat_ms / 4);
    while (!hb_stop.load(std::memory_order_relaxed)) {
      try {
        SCANPRIM_FAULT_POINT("shard.heartbeat_stall");
        ctl.heartbeat.store(
            (static_cast<std::uint64_t>(gen) << 32) | (++count & 0xffffffffu),
            std::memory_order_relaxed);
      } catch (...) {
        // Simulated hang: the process stays alive (waitpid sees nothing)
        // but stops beating, which is exactly what the watchdog's
        // heartbeat-stall detection exists to catch.
        std::this_thread::sleep_for(std::chrono::milliseconds(
            cfg.heartbeat_ms * cfg.heartbeat_misses * 20));
      }
      std::this_thread::sleep_for(period);
    }
  });

  // Each shard runs the full single-process serving stack: batching
  // window, bisection recovery, metrics. A short window keeps per-request
  // latency low; concurrent slots still coalesce into shared batches.
  serve::Service::Options sopts;
  sopts.window_us = 100;
  serve::Service service(sopts);

  std::vector<std::pair<Slot*, std::future<serve::Result>>> inflight;
  std::uint32_t doorbell = ctl.queued.load(std::memory_order_acquire);
  for (;;) {
    bool claimed_any = false;
    inflight.clear();
    for (std::size_t idx = 0; idx < region->nslots; ++idx) {
      Slot* s = slot_at(region, cfg.shard, idx);
      std::uint32_t st = s->state.load(std::memory_order_acquire);
      if (st != kQueued) continue;
      if (!s->state.compare_exchange_strong(st, kClaimed,
                                            std::memory_order_acq_rel)) {
        continue;
      }
      claimed_any = true;
      try {
        SCANPRIM_FAULT_POINT("shard.worker_exit");
      } catch (...) {
        // Simulated crash: leave the request exactly where a SIGKILL
        // would — claimed, unfinished — and vanish. The watchdog reaps
        // this exit status and fails the request over.
        ::_exit(42);
      }
      obs::Span span("shard.worker.request");
      if (static_cast<SlotKind>(s->kind) == SlotKind::kGlobalChunk) {
        run_global_chunk(region, s);
        finish_slot(region, &ctl, s);
      } else {
        inflight.emplace_back(s, service.submit(job_from_slot(s)));
      }
    }
    for (auto& [s, fut] : inflight) {
      write_back(s, fut.get());
      finish_slot(region, &ctl, s);
    }
    inflight.clear();

    if (ctl.draining.load(std::memory_order_acquire) != 0) {
      bool pending = false;
      for (std::size_t idx = 0; idx < region->nslots && !pending; ++idx) {
        const std::uint32_t st =
            slot_at(region, cfg.shard, idx)->state.load(
                std::memory_order_acquire);
        pending = st == kQueued || st == kWriting;
      }
      if (!pending) {
        service.shutdown();
        hb_stop.store(true, std::memory_order_relaxed);
        hb.join();
        ::_exit(0);
      }
      continue;  // drain what's left before checking again
    }

    if (!claimed_any) {
      const std::uint32_t cur = ctl.queued.load(std::memory_order_acquire);
      if (cur == doorbell) futex_wait(&ctl.queued, cur, 20);
      doorbell = ctl.queued.load(std::memory_order_acquire);
    } else {
      doorbell = ctl.queued.load(std::memory_order_acquire);
    }
  }
}

}  // namespace scanprim::shard::detail

#endif  // __linux__
