// Shared-memory layout between the shard coordinator and its worker
// processes (docs/SHARD.md). INTERNAL header: coordinator.cpp and
// worker.cpp include it; everything public lives in shard.hpp.
//
// One anonymous MAP_SHARED region is created by the coordinator before any
// fork, so every worker inherits the same physical pages:
//
//   [ RegionHeader | shard 0 slots | shard 1 slots | ... ]
//
// The header carries per-shard control words (heartbeat, doorbell,
// drain flag) plus the combine cells for the cross-shard exclusive scan.
// Each shard owns a fixed ring of request slots; a slot walks
//
//   kFree -> kWriting (submitter CAS) -> kQueued -> kClaimed (worker CAS)
//         -> kDone -> kFree (harvest)
//
// with release stores on every ownership hand-off. Crash robustness comes
// from the slots being plain shared state: when a worker dies at ANY point
// of that walk, the coordinator can read exactly how far each request got
// and re-route or re-run it — nothing lives only in the dead process.
//
// Every slot carries a magic canary on both sides of the payload; a worker
// that scribbles out of bounds (or a shard.segment_corrupt injection)
// trips it at harvest and the shard is treated as compromised.
//
// Doorbells are futex words (the non-PRIVATE flavour — waiter and waker
// are different processes). Heartbeats are generation-stamped,
// (generation << 32) | count, so a stale worker from a previous
// incarnation of the shard can never look alive.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/core/segmented.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>
#endif

namespace scanprim::shard::detail {

inline constexpr std::uint64_t kRegionMagic = 0x5343414e'53484152ull;
inline constexpr std::uint64_t kSlotMagic = 0x534c4f54'a55aa55aull;

/// Hard ceilings baked into the fixed-size header. 64 shards is far past
/// any container this targets; 8 doubling rounds covers 2^8 > 64 parts.
inline constexpr std::size_t kMaxShards = 64;
inline constexpr std::size_t kMaxRounds = 8;

enum SlotState : std::uint32_t {
  kFree = 0,     ///< owned by nobody; submitters CAS it to kWriting
  kWriting = 1,  ///< submitter filling the payload (parent-side only)
  kQueued = 2,   ///< ready for the shard; workers CAS it to kClaimed
  kClaimed = 3,  ///< worker executing
  kDone = 4,     ///< result written; harvest thread frees it
};

enum class SlotKind : std::uint8_t {
  kScan = 0,         ///< one serve::ScanJob, executed by the shard's Service
  kGlobalChunk = 1,  ///< one part of a cross-shard scan (doubling combine)
};

/// Fixed-size slot header; the payload (values then flags) follows in the
/// same slot, and the closing canary sits at the very end of the slot.
struct alignas(64) Slot {
  std::atomic<std::uint32_t> state{kFree};
  std::uint8_t kind = 0;       ///< SlotKind
  std::uint8_t op = 0;         ///< batch::Op
  std::uint8_t inclusive = 0;
  std::uint8_t backward = 0;
  std::uint8_t has_flags = 0;
  std::uint8_t part = 0;       ///< global chunk: part index in [0, nparts)
  std::uint8_t nparts = 0;     ///< global chunk: number of parts
  std::uint8_t pad0 = 0;
  std::uint32_t generation = 0;  ///< shard incarnation that queued it
  std::uint64_t req_id = 0;      ///< parent-side request key
  std::uint64_t job_seq = 0;     ///< global chunk: combine-job tag
  std::uint64_t n = 0;           ///< element count in the payload
  std::uint64_t magic = kSlotMagic;  ///< canary: checked at claim + harvest
  std::uint32_t result_status = 0;   ///< serve::Status of the execution
  std::uint32_t pad1 = 0;
  std::uint64_t result_n = 0;        ///< elements written back
  char error[120] = {};              ///< truncated what() when kError
};

/// Per-shard control block, in the region header.
struct alignas(64) ShardCtl {
  /// (generation << 32) | count, bumped by the worker's heartbeat thread.
  std::atomic<std::uint64_t> heartbeat{0};
  /// Incarnation number. The coordinator bumps it before every (re)start;
  /// workers stamp it into heartbeats and compare it on queued slots.
  std::atomic<std::uint32_t> generation{0};
  /// Doorbell: incremented per enqueue, futex-woken. Workers wait on it.
  std::atomic<std::uint32_t> queued{0};
  /// Non-zero once the coordinator wants this worker to drain and exit.
  std::atomic<std::uint32_t> draining{0};
  /// Requests this incarnation completed (routing diagnostics).
  std::atomic<std::uint64_t> completed{0};
};

/// One published partial in the hypercube/doubling combine:
/// tag = (job_seq << 8) | (round + 1), so a cell can never be confused
/// with a stale job's cell or with its cleared state (tag 0).
struct CombineCell {
  std::atomic<std::uint64_t> tag{0};
  std::atomic<batch::Value> value{0};
};

struct RegionHeader {
  std::uint64_t magic = kRegionMagic;
  std::uint32_t nshards = 0;
  std::uint32_t nslots = 0;       ///< slots per shard
  std::uint64_t slot_bytes = 0;   ///< full stride, header + payload + canary
  /// Doorbell: incremented per completed slot, futex-woken; the harvest
  /// thread waits on it.
  std::atomic<std::uint32_t> done_seq{0};
  /// Abort flag for the in-flight cross-shard job: a worker or the
  /// coordinator raises it when a part errors or a peer stops publishing,
  /// and every spinning worker bails out with an error result.
  std::atomic<std::uint32_t> global_abort{0};
  /// Tag base for the current cross-shard job (one at a time).
  std::atomic<std::uint64_t> global_job_seq{0};
  CombineCell cells[kMaxShards][kMaxRounds];
  ShardCtl shards[kMaxShards];
};

inline constexpr std::uint64_t combine_tag(std::uint64_t job_seq,
                                           std::size_t round) {
  return (job_seq << 8) | (round + 1);
}

/// Bytes the payload area of a slot can hold.
inline std::size_t slot_payload_bytes(const RegionHeader& h) {
  return static_cast<std::size_t>(h.slot_bytes) - sizeof(Slot) -
         sizeof(std::uint64_t);  // trailing canary
}

/// Elements a slot can carry: n values (8 bytes) plus, when segmented,
/// n flag bytes.
inline std::size_t slot_capacity(const RegionHeader& h, bool has_flags) {
  return slot_payload_bytes(h) / (sizeof(batch::Value) + (has_flags ? 1 : 0));
}

inline char* region_base(RegionHeader* h) {
  return reinterpret_cast<char*>(h);
}

inline Slot* slot_at(RegionHeader* h, std::size_t shard, std::size_t index) {
  return reinterpret_cast<Slot*>(region_base(h) + sizeof(RegionHeader) +
                                 (shard * h->nslots + index) * h->slot_bytes);
}

inline batch::Value* slot_values(Slot* s) {
  return reinterpret_cast<batch::Value*>(reinterpret_cast<char*>(s) +
                                         sizeof(Slot));
}

inline std::uint8_t* slot_flags(Slot* s, std::size_t n) {
  return reinterpret_cast<std::uint8_t*>(slot_values(s) + n);
}

/// The canary closing the slot, just before the next slot begins.
inline std::uint64_t* slot_tail_magic(RegionHeader* h, Slot* s) {
  return reinterpret_cast<std::uint64_t*>(
      reinterpret_cast<char*>(s) + h->slot_bytes - sizeof(std::uint64_t));
}

inline std::size_t region_bytes(std::size_t nshards, std::size_t nslots,
                                std::size_t slot_bytes) {
  return sizeof(RegionHeader) + nshards * nslots * slot_bytes;
}

#if defined(__linux__)

/// FUTEX_WAIT without the PRIVATE flag: waiter and waker are different
/// processes sharing the mapping. Returns when the word moved away from
/// `expect`, on a wake, on EINTR, or after `timeout_ms`.
inline void futex_wait(std::atomic<std::uint32_t>* word, std::uint32_t expect,
                       long timeout_ms) {
  struct timespec ts;
  ts.tv_sec = timeout_ms / 1000;
  ts.tv_nsec = (timeout_ms % 1000) * 1'000'000L;
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAIT,
            expect, &ts, nullptr, 0);
}

inline void futex_wake_all(std::atomic<std::uint32_t>* word) {
  ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(word), FUTEX_WAKE,
            INT32_MAX, nullptr, nullptr, 0);
}

/// What a worker needs to know about itself; passed by value across fork.
struct WorkerConfig {
  std::size_t shard = 0;
  std::size_t heartbeat_ms = 50;
  std::size_t heartbeat_misses = 4;
  std::size_t worker_threads = 1;
};

/// The child process body (worker.cpp). Never returns: exits via _exit()
/// so the parent's atexit handlers and leak checkers never run twice.
[[noreturn]] void worker_main(RegionHeader* region, WorkerConfig cfg);

#endif  // __linux__

}  // namespace scanprim::shard::detail
