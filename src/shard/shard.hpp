// Sharded scan service: crash-tolerant multi-process scale-out
// (docs/SHARD.md).
//
// serve::Service batches within one process; the ROADMAP's north star needs
// more than one. A Coordinator forks N worker processes, each running its
// own serve::Service, and hands requests across via a shared-memory region
// of request slots with futex doorbells (layout.hpp). Routing is by request
// id across the live shards; results come back through the same slots and
// resolve the caller's future.
//
// The robustness contract, which the kill-a-shard soak pins: every
// submitted request resolves — kOk, or kError/kTimeout/kRejected with a
// reason — no matter which worker is SIGKILLed, hangs, or corrupts its
// segment mid-flight. A liveness watchdog detects dead workers three ways
// (waitpid, generation-stamped heartbeat stalls, slot canaries), reclaims
// the dead shard's slots, re-routes its in-flight requests to live shards
// (or re-runs them inline in the coordinator when none remain — the PR 4
// recovery idea lifted to processes), and restarts the shard with bounded
// backoff. Drain survives a worker dying mid-drain the same way.
//
// Cross-shard scans: global_scan() splits one vector across the live
// shards; each computes a local scan, then the per-shard totals combine in
// O(lg p) rounds of the hypercube/doubling exclusive scan (Träff's scheme;
// the chained engine's aggregate/prefix protocol lifted to processes)
// through tagged cells in the shared region. Any casualty mid-combine
// aborts the round and the whole job re-runs on the surviving shards.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "src/serve/job.hpp"

namespace scanprim::shard {

using Value = serve::Value;
using Op = serve::Op;

struct Options {
  /// Worker processes (SCANPRIM_SHARDS). Clamped to [1, 64].
  std::size_t shards = 4;
  /// Request slots per shard (SCANPRIM_SHARD_SLOTS).
  std::size_t slots_per_shard = 32;
  /// Full slot stride in bytes, header included (SCANPRIM_SHARD_SLOT_BYTES).
  /// Requests too large for a slot run inline in the coordinator.
  std::size_t slot_bytes = 128 << 10;
  /// Heartbeat period (SCANPRIM_SHARD_HEARTBEAT_MS). The watchdog declares
  /// a shard hung after `heartbeat_misses` periods without a beat.
  std::size_t heartbeat_ms = 50;
  std::size_t heartbeat_misses = 4;
  /// Threads in each worker's pool; 0 divides the host's cores evenly.
  std::size_t worker_threads = 0;
  /// Requests that may wait for a free slot before submit() rejects
  /// (admission control, like the serve queue). 0 = 4 x shards x slots.
  std::size_t max_pending = 0;
  /// Times one request may be re-routed off dead shards before the
  /// coordinator runs it inline itself.
  std::size_t max_failovers = 2;
  /// Restarts per shard before it is left dead (requests re-route).
  std::size_t max_restarts = 16;
  /// First restart delay; doubles per consecutive restart, capped at 1 s.
  std::size_t restart_backoff_ms = 10;

  static Options from_env();
};

/// Snapshot of the coordinator's counters (also exported through the obs
/// registry as scanprim_shard_*; docs/SHARD.md).
struct Metrics {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;         ///< no slot anywhere (backpressure)
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rerouted = 0;         ///< requests moved off a dead shard
  std::uint64_t inline_runs = 0;      ///< oversize or out of fail-overs
  std::uint64_t failovers = 0;        ///< shard-death recoveries performed
  std::uint64_t restarts = 0;         ///< worker processes re-forked
  std::uint64_t heartbeat_stalls = 0; ///< hung (not exited) workers killed
  std::uint64_t corrupt_segments = 0; ///< slot canary trips
  std::uint64_t global_scans = 0;
  std::uint64_t global_retries = 0;   ///< cross-shard jobs re-run after abort
  std::uint64_t combine_rounds = 0;   ///< doubling rounds across all jobs
};

/// The coordinator. Construct, start(), submit()/global_scan() from any
/// thread, shutdown() (or destroy) to drain. Linux-only: start() reports
/// kShutdown-style failure by throwing std::runtime_error elsewhere.
class Coordinator {
 public:
  explicit Coordinator(Options opts = Options::from_env());
  ~Coordinator();  ///< calls shutdown()

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Maps the region and forks the workers. Throws std::runtime_error when
  /// the platform cannot shard (no fork/futex) or resources run out.
  void start();

  /// Route one scan to a shard. The future always resolves (see the
  /// contract above). Oversize jobs run inline and still resolve normally.
  std::future<serve::Result> submit(serve::ScanJob job,
                                    serve::SubmitOptions so = {});

  /// One scan over `data` split across every live shard, combined with the
  /// O(lg p) doubling exclusive scan of per-shard totals. Unsegmented,
  /// forward only (segmented/backward traffic routes through submit()).
  /// Retries on shard casualties; resolves kError only when the service is
  /// truly out of shards mid-job.
  serve::Result global_scan(const std::vector<Value>& data, Op op,
                            bool inclusive);

  /// Graceful drain: stop admissions, let every queued request finish
  /// (re-routing off any worker that dies mid-drain), then reap the
  /// workers. Idempotent.
  void shutdown();

  Metrics metrics() const;
  std::size_t live_shards() const;

  /// Test hooks: the worker pid of a shard (0 when dead/unstarted), and
  /// how many times it has been restarted.
  int shard_pid(std::size_t shard) const;
  std::uint64_t shard_restarts(std::size_t shard) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace scanprim::shard
