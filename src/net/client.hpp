// C++ client for the socket front end (docs/NET.md "Client").
//
// One TCP connection, pipelined: every call encodes a frame, registers a
// promise under the request id, and writes the frame under a send mutex (so
// frames never interleave); a reader thread decodes responses as they arrive
// — in whatever order the server finishes them — and resolves the matching
// promise. The futures API composes with however many requests the caller
// wants in flight; the sync wrappers are future + get().
//
// Thread safety: all request methods are callable from any thread. close()
// (or destruction) fails every outstanding future with Status::kError
// "connection closed" — futures never hang.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/protocol.hpp"

namespace scanprim::net {

/// Per-request knobs, mirroring the protocol header fields.
struct RequestOptions {
  Priority priority = Priority::kAuto;
  std::uint64_t deadline_ns = 0;  ///< relative; 0 = none
};

class Client {
 public:
  /// Connects (blocking) or throws std::runtime_error.
  Client(const std::string& host, std::uint16_t port, std::uint32_t tenant = 0);
  ~Client();  ///< close()

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // --- async API -------------------------------------------------------------

  std::future<Response> scan(std::vector<Value> data, ScanOp op,
                             bool inclusive = false, bool backward = false,
                             std::vector<std::uint8_t> segment_flags = {},
                             RequestOptions ro = {});
  std::future<Response> pack(std::vector<Value> data,
                             std::vector<std::uint8_t> keep,
                             RequestOptions ro = {});
  std::future<Response> enumerate(std::vector<std::uint8_t> keep,
                                  RequestOptions ro = {});
  std::future<Response> pipeline(std::vector<Value> source,
                                 std::vector<Stage> stages,
                                 RequestOptions ro = {});
  std::future<Response> plan(std::string name,
                             std::map<std::string, std::vector<Value>> regs,
                             RequestOptions ro = {});

  // --- sync wrappers ---------------------------------------------------------

  Response scan_sync(std::vector<Value> data, ScanOp op, bool inclusive = false,
                     bool backward = false,
                     std::vector<std::uint8_t> segment_flags = {},
                     RequestOptions ro = {}) {
    return scan(std::move(data), op, inclusive, backward,
                std::move(segment_flags), ro)
        .get();
  }
  Response pack_sync(std::vector<Value> data, std::vector<std::uint8_t> keep,
                     RequestOptions ro = {}) {
    return pack(std::move(data), std::move(keep), ro).get();
  }
  Response plan_sync(std::string name,
                     std::map<std::string, std::vector<Value>> regs,
                     RequestOptions ro = {}) {
    return plan(std::move(name), std::move(regs), ro).get();
  }

  /// Write raw bytes straight to the socket, bypassing the protocol encoder
  /// — the robustness tests' tool for truncated frames, garbage magic and
  /// version skew. Returns false once the connection is down.
  bool send_raw(const void* data, std::size_t n);

  /// Read one response frame off the wire synchronously. Only meaningful on
  /// a client used exclusively through send_raw (the reader thread owns the
  /// socket otherwise) — construct with `manual = true` for that.
  Client(const std::string& host, std::uint16_t port, std::uint32_t tenant,
         bool manual);
  Response read_response();

  bool connected() const { return fd_.load(std::memory_order_acquire) >= 0; }

  /// Close the socket and fail every outstanding future. Idempotent.
  void close();

 private:
  std::future<Response> dispatch(Request&& r, const RequestOptions& ro);
  void reader_loop();
  void fail_all(const std::string& why);

  std::uint32_t tenant_ = 0;
  std::atomic<int> fd_{-1};
  std::atomic<std::uint64_t> next_id_{1};
  std::mutex send_mu_;  ///< serialises whole frames onto the socket

  std::mutex pending_mu_;
  std::map<std::uint64_t, std::promise<Response>> pending_;
  bool failed_ = false;  ///< guarded by pending_mu_; fail_all already ran

  std::thread reader_;
  /// Leftover wire bytes between read_response() calls (manual mode):
  /// pipelined responses can land in one recv, and the tail must survive
  /// until the next call asks for it.
  std::vector<std::uint8_t> manual_buf_;
};

}  // namespace scanprim::net
