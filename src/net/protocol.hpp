// The wire protocol of the scan service's socket front end (docs/NET.md).
//
// Length-prefixed little-endian binary frames. A request frame:
//
//   u32  body_len      bytes after this field (bounded by the server's
//                      SCANPRIM_NET_MAX_FRAME; an oversized prefix is a
//                      protocol error BEFORE any buffering happens)
//   u32  magic         kMagic ("SCPN")
//   u16  version       kVersion
//   u8   op            Op below
//   u8   flags         bit 0 inclusive, bit 1 backward, bit 2 segmented
//   u64  request_id    echoed verbatim in the response; the client library
//                      matches futures on it, so it must be unique per
//                      connection among in-flight requests
//   u32  tenant        admission-quota bucket (docs/NET.md "Quotas")
//   u8   priority      Priority below (QoS lane selection)
//   u8x3 reserved      zero
//   u64  deadline_ns   relative deadline forwarded to the batcher; 0 = none
//   ...                op-specific payload (below)
//
// Payloads (vec = u32 count + count x i64; str = u16 length + bytes):
//   kScan       u8 scan_op (ScanOp) + vec data [+ count x u8 segment flags
//               when the segmented bit is set]
//   kPack       vec data + count x u8 keep flags
//   kEnumerate  u32 count + count x u8 keep flags
//   kPipeline   vec source + u16 nstages + nstages x { u8 stage_op, i64 arg }
//               (StageOp below — the remote subset of exec pipeline stages)
//   kPlan       str name + u16 nregs + nregs x { str reg_name, vec values }
//
// A response frame:
//
//   u32  body_len
//   u32  magic
//   u16  version
//   u8   status        Status below
//   u8   reserved
//   u64  request_id
//   u32  kept          pack/enumerate: number of set keep flags
//   u32  noutputs      + noutputs x vec (plan jobs: every printed vector;
//                      every other op: exactly one output on kOk)
//   str  error         empty unless status is an error
//
// The same port speaks HTTP GET for Prometheus scrapes: any connection whose
// first bytes are "GET " receives a text/plain obs::render_text() snapshot
// and is closed (docs/NET.md "Scraping").
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/serve/job.hpp"

namespace scanprim::net {

using Value = serve::Value;

inline constexpr std::uint32_t kMagic = 0x5343504e;  // "SCPN" (LE "NPCS")
inline constexpr std::uint16_t kVersion = 1;
/// Frame-length prefix + the fixed request/response header that follows it.
inline constexpr std::size_t kLenPrefix = 4;

/// Request operations, one per serve::Service job type.
enum class Op : std::uint8_t {
  kScan = 1,
  kPack = 2,
  kEnumerate = 3,
  kPipeline = 4,
  kPlan = 5,
};

/// Scan operators on the wire (ScanOp <-> batch::Op, stable numbering).
enum class ScanOp : std::uint8_t {
  kPlus = 0,
  kMax = 1,
  kMin = 2,
  kOr = 3,
  kAnd = 4,
};

/// Request flag bits.
inline constexpr std::uint8_t kFlagInclusive = 1u << 0;
inline constexpr std::uint8_t kFlagBackward = 1u << 1;
inline constexpr std::uint8_t kFlagSegmented = 1u << 2;

/// QoS lane request (docs/NET.md "Lanes"). kAuto lets the server classify
/// by payload size (small requests ride the latency lane when QoS is on).
enum class Priority : std::uint8_t {
  kAuto = 0,
  kLatency = 1,
  kBulk = 2,
};

/// The remote pipeline stage algebra — the subset of exec stages that
/// serialises as (op, one i64 argument). Scans take no argument.
enum class StageOp : std::uint8_t {
  kAddConst = 0,
  kMulConst = 1,
  kMinConst = 2,
  kMaxConst = 3,
  kScanPlus = 16,
  kScanMax = 17,
  kScanMin = 18,
};

/// Terminal status of a request, superset of serve::Status: the first six
/// values mirror it one-to-one; the rest are produced by the front end
/// itself, before (or instead of) touching the batcher.
enum class Status : std::uint8_t {
  kOk = 0,
  kRejected = 1,       ///< serve admission control: queue at capacity
  kTimeout = 2,
  kCancelled = 3,
  kShutdown = 4,
  kError = 5,          ///< execution failed; `error` carries the message
  kOverQuota = 6,      ///< tenant token bucket empty: never reached the batcher
  kProtocolError = 7,  ///< malformed frame; the connection is closed after it
  kVersionSkew = 8,    ///< wrong protocol version; connection closed
  kUnsupported = 9,    ///< op the backend cannot serve (docs/NET.md)
};

constexpr const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kTimeout: return "timeout";
    case Status::kCancelled: return "cancelled";
    case Status::kShutdown: return "shutdown";
    case Status::kError: return "error";
    case Status::kOverQuota: return "over_quota";
    case Status::kProtocolError: return "protocol_error";
    case Status::kVersionSkew: return "version_skew";
    case Status::kUnsupported: return "unsupported";
  }
  return "?";
}

constexpr Status from_serve(serve::Status s) {
  return static_cast<Status>(static_cast<std::uint8_t>(s));
}

/// Thrown by decoders on malformed input (truncation, bad counts, unknown
/// enum values). The server turns it into one kProtocolError response.
struct ProtocolError : std::runtime_error {
  explicit ProtocolError(const std::string& what)
      : std::runtime_error(what) {}
};

/// One remote pipeline stage.
struct Stage {
  StageOp op{};
  std::int64_t arg = 0;
};

/// A fully decoded request frame.
struct Request {
  Op op = Op::kScan;
  std::uint8_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint32_t tenant = 0;
  Priority priority = Priority::kAuto;
  std::uint64_t deadline_ns = 0;

  ScanOp scan_op = ScanOp::kPlus;           // kScan
  std::vector<Value> data;                  // kScan / kPack / kPipeline source
  std::vector<std::uint8_t> byte_flags;     // segment / keep flags
  std::vector<Stage> stages;                // kPipeline
  std::string plan;                         // kPlan
  std::map<std::string, std::vector<Value>> registers;  // kPlan

  bool inclusive() const { return (flags & kFlagInclusive) != 0; }
  bool backward() const { return (flags & kFlagBackward) != 0; }
  bool segmented() const { return (flags & kFlagSegmented) != 0; }

  /// Payload bytes for quota and lane-size accounting (mirrors
  /// serve's JobNode::cost_bytes closely enough for admission decisions).
  std::size_t payload_bytes() const;
};

/// A fully decoded response frame.
struct Response {
  Status status = Status::kOk;
  std::uint64_t request_id = 0;
  std::uint32_t kept = 0;
  std::vector<std::vector<Value>> outputs;
  std::string error;
};

// --- encoding ----------------------------------------------------------------
// Encoders append one complete frame (length prefix included) to `out`.

void encode_request(std::string& out, const Request& r);
void encode_response(std::string& out, const Response& r);

// --- decoding ----------------------------------------------------------------

/// Bytes of the complete frame (prefix included) at the head of `buf`, or 0
/// when more bytes are needed. Throws ProtocolError when the length prefix
/// alone exceeds `max_frame` — the caller must fail the connection rather
/// than buffer toward an attacker-chosen length.
std::size_t frame_size(std::span<const std::uint8_t> buf,
                       std::size_t max_frame);

/// Decode one complete request frame (as delimited by frame_size). Throws
/// ProtocolError on malformed bodies and garbage magic; a well-formed frame
/// whose version differs from kVersion throws VersionSkew (below) so the
/// server can answer with the distinct status.
struct VersionSkew : ProtocolError {
  explicit VersionSkew(std::uint16_t got)
      : ProtocolError("protocol version " + std::to_string(got) +
                      " (speak " + std::to_string(kVersion) + ")") {}
};
Request decode_request(std::span<const std::uint8_t> frame);

/// Decode one complete response frame. Throws ProtocolError when malformed.
Response decode_response(std::span<const std::uint8_t> frame);

/// True when `buf` starts like an HTTP GET (a Prometheus scrape on the
/// binary port). Needs at most 4 bytes to decide.
bool looks_like_http(std::span<const std::uint8_t> buf);

}  // namespace scanprim::net
