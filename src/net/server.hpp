// The epoll socket front end (docs/NET.md).
//
// One acceptor thread + SCANPRIM_NET_THREADS io threads, nonblocking
// edge-triggered epoll. Each connection is owned by exactly one io thread —
// every read, parse, write and close of a connection happens there, so
// connection state needs no locks; the only cross-thread traffic is the
// completion path (the backend finishes a job on its own thread, encodes
// nothing, and posts the encoded response frame to the owning io thread
// through an MPSC queue + eventfd wake).
//
// The request path, per frame:
//   read -> frame_size (oversized prefix fails fast) -> fault point
//   "net.frame_decode" -> decode -> per-tenant token buckets (over-quota
//   answers kOverQuota HERE, before the batcher sees anything) -> lane
//   classification (explicit priority, or size vs SCANPRIM_NET_SMALL_BYTES
//   when QoS is on) -> Backend::submit with a completion callback.
//
// QoS: latency-lane submissions cut the serve batching window immediately
// (serve::Lane); a controller thread ticks every SCANPRIM_NET_QOS_TICK_MS,
// compares the latency lane's windowed p99 against SCANPRIM_NET_SLO_US, and
// moves the live window through serve::Service::set_window_us — halve on
// breach, 3/2-regrow toward the configured base when comfortably clear
// (net::AdaptiveWindow).
//
// The same port answers HTTP GET with an obs::render_text() snapshot, so
// one Prometheus scrape covers net, serve, shard, plan, mem and the pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/protocol.hpp"
#include "src/net/qos.hpp"
#include "src/obs/histogram.hpp"
#include "src/serve/job.hpp"

namespace scanprim::serve {
class Service;
}
namespace scanprim::shard {
class Coordinator;
}

namespace scanprim::net {

/// What the front end submits decoded requests into. The completion
/// callback in `opts.on_complete` must be invoked exactly once, from any
/// thread; returning false means the backend cannot serve this op and the
/// server answers Status::kUnsupported (no callback).
class Backend {
 public:
  virtual ~Backend() = default;
  virtual bool submit(Request&& req, serve::SubmitOptions opts) = 0;
  /// The serve::Service whose batching window the QoS controller drives;
  /// null when the backend has no window hook.
  virtual serve::Service* service() { return nullptr; }
};

/// In-process serve::Service backend: every protocol op maps onto the
/// matching Service::submit overload through the callback completion path.
class ServiceBackend : public Backend {
 public:
  explicit ServiceBackend(serve::Service& s) : s_(s) {}
  bool submit(Request&& req, serve::SubmitOptions opts) override;
  serve::Service* service() override { return &s_; }

 private:
  serve::Service& s_;
};

/// shard::Coordinator backend: the front end on a multi-process deployment
/// (docs/SHARD.md). The Coordinator's API is future-based and scan-only, so
/// this backend pumps completions on its own thread (futures resolve in
/// FIFO submission order — head-of-line waits are bounded by the
/// coordinator's own deadline machinery) and declines every other op with
/// kUnsupported. No window hook: the QoS controller idles.
class CoordinatorBackend : public Backend {
 public:
  explicit CoordinatorBackend(shard::Coordinator& c);
  ~CoordinatorBackend() override;
  bool submit(Request&& req, serve::SubmitOptions opts) override;

 private:
  void pump();

  shard::Coordinator& c_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::pair<std::future<serve::Result>,
                       std::function<void(serve::Result&&)>>>
      q_;
  bool stop_ = false;
  std::thread pump_;
};

/// The server. Construct over a Backend, start(), drive with net::Client,
/// stop() (or destroy). The backend must outlive the server's stop().
class Server {
 public:
  struct Options {
    std::string bind = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral; port() reports the binding
    /// IO threads (SCANPRIM_NET_THREADS). Each owns a share of connections.
    std::size_t io_threads = 2;
    /// Largest accepted frame body (SCANPRIM_NET_MAX_FRAME). A length
    /// prefix beyond this is a protocol error before any buffering.
    std::size_t max_frame = std::size_t{16} << 20;
    /// Connections with a stalled partial frame older than this are closed
    /// (SCANPRIM_NET_IDLE_MS) — the slowloris bound. Idle connections with
    /// no partial frame are left alone.
    std::size_t idle_ms = 5000;
    /// Per-tenant admission quotas, enforced by token bucket with one
    /// second of burst (SCANPRIM_NET_TENANT_QPS / _BYTES). 0 = unlimited.
    std::size_t tenant_qps = 0;
    std::size_t tenant_bytes = 0;
    /// QoS master switch (SCANPRIM_NET_QOS). Off: every request rides the
    /// bulk lane and the window controller never moves the window — the
    /// bench's baseline.
    bool qos = true;
    /// Auto-lane threshold (SCANPRIM_NET_SMALL_BYTES): a kAuto request at
    /// or below this many payload bytes rides the latency lane.
    std::size_t small_bytes = 4096;
    /// Latency-lane p99 SLO (SCANPRIM_NET_SLO_US) the window controller
    /// enforces, and its tick period (SCANPRIM_NET_QOS_TICK_MS).
    std::size_t slo_us = 2000;
    std::size_t qos_tick_ms = 50;
    /// Smallest window the controller may shrink to
    /// (SCANPRIM_NET_WINDOW_MIN_US).
    std::size_t window_min_us = 1;

    static Options from_env();
  };

  /// Counters for tests and the bench (all also exported as Prometheus
  /// series through the obs registry; docs/NET.md "Metrics").
  struct Stats {
    std::uint64_t accepted = 0;        ///< connections accepted
    std::uint64_t open = 0;            ///< connections currently open
    std::uint64_t requests = 0;        ///< frames decoded and admitted
    std::uint64_t responses = 0;       ///< response frames produced
    std::uint64_t quota_rejected = 0;  ///< kOverQuota answers
    std::uint64_t protocol_errors = 0; ///< bad frames (incl. version skew)
    std::uint64_t idle_closed = 0;     ///< slowloris / stalled-frame closes
    std::uint64_t window_shrinks = 0;  ///< SLO-breach window cuts
    std::uint64_t window_regrows = 0;
    std::uint64_t http_scrapes = 0;
    std::uint64_t in_flight = 0;       ///< admitted, completion not yet posted
  };

  Server(Backend& backend, Options opts);
  explicit Server(Backend& backend) : Server(backend, Options::from_env()) {}
  ~Server();  ///< stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, spawn the acceptor + io + QoS threads. Throws
  /// std::runtime_error when the socket layer refuses.
  void start();

  /// Stop accepting, close every connection, drain in-flight completions,
  /// join all threads. Idempotent. The backend keeps running.
  void stop();

  std::uint16_t port() const { return port_; }
  const Options& options() const { return opts_; }
  Stats stats() const;

 private:
  struct Conn;
  struct IoThread;

  void accept_loop();
  void io_loop(IoThread& io);
  void qos_loop();

  void adopt(IoThread& io, int fd);
  void process_queue(IoThread& io);
  void handle_readable(IoThread& io, const std::shared_ptr<Conn>& c);
  void process_input(IoThread& io, const std::shared_ptr<Conn>& c);
  void handle_http(IoThread& io, const std::shared_ptr<Conn>& c);
  void handle_frame(IoThread& io, const std::shared_ptr<Conn>& c,
                    std::span<const std::uint8_t> frame);
  void respond_now(IoThread& io, const std::shared_ptr<Conn>& c,
                   const Response& resp);
  void complete(std::weak_ptr<Conn> wc, std::size_t io_index,
                std::uint64_t request_id, Op op, serve::Lane lane,
                std::uint64_t t0_ns, serve::Result&& r);
  void post(std::size_t io_index, std::weak_ptr<Conn> wc, std::string frame);
  void try_flush(IoThread& io, const std::shared_ptr<Conn>& c);
  void close_conn(IoThread& io, const std::shared_ptr<Conn>& c);
  void sweep_idle(IoThread& io);
  serve::Lane classify(const Request& req, std::size_t bytes) const;

  Backend& backend_;
  Options opts_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread acceptor_;
  std::vector<std::unique_ptr<IoThread>> io_;
  std::atomic<std::size_t> next_io_{0};

  // QoS controller.
  AdaptiveWindow adaptive_;
  std::thread qos_thread_;
  std::mutex qos_mu_;
  std::condition_variable qos_cv_;
  obs::Histogram window_hist_;  ///< latency-lane latencies since last tick

  // Counters (exported through obs; Stats mirrors them for tests).
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> open_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> quota_rejected_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> idle_closed_{0};
  std::atomic<std::uint64_t> window_shrinks_{0};
  std::atomic<std::uint64_t> window_regrows_{0};
  std::atomic<std::uint64_t> http_scrapes_{0};
  std::atomic<std::uint64_t> in_flight_{0};

  obs::Histogram lane_hist_[2];  ///< end-to-end latency by serve::Lane
  std::uint64_t collector_id_ = 0;
  std::uint64_t seq_ = 0;  ///< this server's {server="N"} label value
  struct Series;                   ///< cached obs::counter pointers
  std::unique_ptr<Series> series_;

  // Per-tenant admission state (token buckets + cached counters).
  struct TenantState;
  std::mutex tenants_mu_;
  std::map<std::uint32_t, std::unique_ptr<TenantState>> tenants_;
};

}  // namespace scanprim::net
