// Client implementation (client.hpp). Blocking connect + a reader thread;
// request methods are wait-free against each other except for the short
// send-mutex hold that keeps frames contiguous on the wire.
#include "src/net/client.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace scanprim::net {

namespace {

int connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("net: client socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("net: bad host address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("net: connect failed: ") +
                             std::strerror(err));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port,
               std::uint32_t tenant)
    : tenant_(tenant) {
  fd_.store(connect_to(host, port), std::memory_order_release);
  reader_ = std::thread([this] { reader_loop(); });
}

Client::Client(const std::string& host, std::uint16_t port,
               std::uint32_t tenant, bool manual)
    : tenant_(tenant) {
  fd_.store(connect_to(host, port), std::memory_order_release);
  if (!manual) reader_ = std::thread([this] { reader_loop(); });
}

Client::~Client() {
  close();
  if (reader_.joinable()) reader_.join();
}

void Client::close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);  // unblocks the reader
    ::close(fd);
  }
  fail_all("connection closed");
}

void Client::fail_all(const std::string& why) {
  std::map<std::uint64_t, std::promise<Response>> orphans;
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    if (failed_) return;
    failed_ = true;
    orphans.swap(pending_);
  }
  for (auto& [id, promise] : orphans) {
    Response r;
    r.status = Status::kError;
    r.request_id = id;
    r.error = why;
    promise.set_value(std::move(r));
  }
}

bool Client::send_raw(const void* data, std::size_t n) {
  std::lock_guard<std::mutex> lk(send_mu_);
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return false;
  const char* p = static_cast<const char*>(data);
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, p + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::future<Response> Client::dispatch(Request&& r, const RequestOptions& ro) {
  r.request_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  r.tenant = tenant_;
  r.priority = ro.priority;
  r.deadline_ns = ro.deadline_ns;

  std::promise<Response> promise;
  std::future<Response> fut = promise.get_future();
  {
    std::lock_guard<std::mutex> lk(pending_mu_);
    if (failed_) {
      Response dead;
      dead.status = Status::kError;
      dead.request_id = r.request_id;
      dead.error = "connection closed";
      promise.set_value(std::move(dead));
      return fut;
    }
    // Register BEFORE sending: the response can race back before the send
    // call even returns.
    pending_.emplace(r.request_id, std::move(promise));
  }

  std::string frame;
  encode_request(frame, r);
  if (!send_raw(frame.data(), frame.size())) {
    // Pull the promise back out (the reader may have resolved it already).
    std::promise<Response> orphan;
    bool mine = false;
    {
      std::lock_guard<std::mutex> lk(pending_mu_);
      auto it = pending_.find(r.request_id);
      if (it != pending_.end()) {
        orphan = std::move(it->second);
        pending_.erase(it);
        mine = true;
      }
    }
    if (mine) {
      Response dead;
      dead.status = Status::kError;
      dead.request_id = r.request_id;
      dead.error = "connection closed";
      orphan.set_value(std::move(dead));
    }
  }
  return fut;
}

std::future<Response> Client::scan(std::vector<Value> data, ScanOp op,
                                   bool inclusive, bool backward,
                                   std::vector<std::uint8_t> segment_flags,
                                   RequestOptions ro) {
  Request r;
  r.op = Op::kScan;
  r.scan_op = op;
  if (inclusive) r.flags |= kFlagInclusive;
  if (backward) r.flags |= kFlagBackward;
  if (!segment_flags.empty()) r.flags |= kFlagSegmented;
  r.data = std::move(data);
  r.byte_flags = std::move(segment_flags);
  return dispatch(std::move(r), ro);
}

std::future<Response> Client::pack(std::vector<Value> data,
                                   std::vector<std::uint8_t> keep,
                                   RequestOptions ro) {
  Request r;
  r.op = Op::kPack;
  r.data = std::move(data);
  r.byte_flags = std::move(keep);
  return dispatch(std::move(r), ro);
}

std::future<Response> Client::enumerate(std::vector<std::uint8_t> keep,
                                        RequestOptions ro) {
  Request r;
  r.op = Op::kEnumerate;
  r.byte_flags = std::move(keep);
  return dispatch(std::move(r), ro);
}

std::future<Response> Client::pipeline(std::vector<Value> source,
                                       std::vector<Stage> stages,
                                       RequestOptions ro) {
  Request r;
  r.op = Op::kPipeline;
  r.data = std::move(source);
  r.stages = std::move(stages);
  return dispatch(std::move(r), ro);
}

std::future<Response> Client::plan(
    std::string name, std::map<std::string, std::vector<Value>> regs,
    RequestOptions ro) {
  Request r;
  r.op = Op::kPlan;
  r.plan = std::move(name);
  r.registers = std::move(regs);
  return dispatch(std::move(r), ro);
}

void Client::reader_loop() {
  std::vector<std::uint8_t> buf;
  std::size_t off = 0;
  char chunk[65536];
  for (;;) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) break;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) break;  // server closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buf.insert(buf.end(), chunk, chunk + n);
    for (;;) {
      const std::span<const std::uint8_t> avail(buf.data() + off,
                                                buf.size() - off);
      std::size_t total = 0;
      try {
        // No decode-side cap: the server bounds what it sends.
        total = frame_size(avail, ~std::size_t{0} >> 1);
        if (total == 0) break;
        const Response resp = decode_response(avail.subspan(0, total));
        off += total;
        std::promise<Response> p;
        bool mine = false;
        {
          std::lock_guard<std::mutex> lk(pending_mu_);
          auto it = pending_.find(resp.request_id);
          if (it != pending_.end()) {
            p = std::move(it->second);
            pending_.erase(it);
            mine = true;
          }
        }
        // Unmatched ids (request-id-0 protocol errors for frames we never
        // numbered) are dropped; the connection-level failure below is what
        // resolves their futures.
        if (mine) p.set_value(std::move(resp));
      } catch (const ProtocolError&) {
        fail_all("malformed response frame");
        close();
        return;
      }
    }
    if (off == buf.size()) {
      buf.clear();
      off = 0;
    } else if (off >= (std::size_t{1} << 16)) {
      buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(off));
      off = 0;
    }
  }
  fail_all("connection closed");
}

Response Client::read_response() {
  std::vector<std::uint8_t>& buf = manual_buf_;
  char chunk[65536];
  for (;;) {
    const std::size_t total = frame_size(buf, ~std::size_t{0} >> 1);
    if (total != 0) {
      const Response r =
          decode_response(std::span<const std::uint8_t>(buf).subspan(0, total));
      buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(total));
      return r;
    }
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) throw std::runtime_error("net: connection closed");
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n == 0) throw std::runtime_error("net: connection closed");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("net: recv failed");
    }
    buf.insert(buf.end(), chunk, chunk + n);
  }
}

}  // namespace scanprim::net
