// The epoll socket front end (server.hpp, docs/NET.md).
//
// Threading recap: the acceptor blocks in accept4 and hands each new fd to
// an io thread; io threads own their connections exclusively (edge-triggered
// epoll, read-until-EAGAIN, write-until-EAGAIN with EPOLLOUT armed only
// while a flush is blocked); the QoS controller thread ticks the adaptive
// window. Completions arrive on backend threads, get encoded there (the
// heavy memcpy of result vectors happens off the io threads), and are posted
// to the owning io thread through its locked queue + eventfd.
//
// fd-reuse safety: a connection is only ever closed by its io thread, which
// erases it from the fd map and sets Conn::fd = -1 under that thread's
// ownership. A completion for a closed connection either fails the weak_ptr
// or finds fd < 0 in process_queue and is dropped — it can never write to a
// recycled descriptor.
#include "src/net/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "src/core/env.hpp"
#include "src/core/ops.hpp"
#include "src/fault/fault.hpp"
#include "src/obs/registry.hpp"
#include "src/serve/service.hpp"
#include "src/shard/shard.hpp"

namespace scanprim::net {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

batch::Op to_batch_op(ScanOp op) {
  switch (op) {
    case ScanOp::kPlus: return batch::Op::kPlus;
    case ScanOp::kMax: return batch::Op::kMax;
    case ScanOp::kMin: return batch::Op::kMin;
    case ScanOp::kOr: return batch::Op::kOr;
    case ScanOp::kAnd: return batch::Op::kAnd;
  }
  return batch::Op::kPlus;
}

/// The request id sits at a fixed offset in the header; error responses for
/// frames that fail decoding can still echo it when enough bytes exist.
std::uint64_t peek_request_id(std::span<const std::uint8_t> frame) {
  // len(4) + magic(4) + version(2) + op(1) + flags(1) = 12 bytes before it.
  if (frame.size() < 20) return 0;
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(frame[12 + i]) << (8 * i);
  }
  return v;
}

}  // namespace

// --- ServiceBackend ----------------------------------------------------------

bool ServiceBackend::submit(Request&& req, serve::SubmitOptions opts) {
  switch (req.op) {
    case Op::kScan: {
      serve::ScanJob job;
      job.data = std::move(req.data);
      job.op = to_batch_op(req.scan_op);
      job.inclusive = req.inclusive();
      job.backward = req.backward();
      if (req.segmented()) job.flags = std::move(req.byte_flags);
      s_.submit(std::move(job), std::move(opts));
      return true;
    }
    case Op::kPack: {
      serve::PackJob job;
      job.data = std::move(req.data);
      job.keep = std::move(req.byte_flags);
      s_.submit(std::move(job), std::move(opts));
      return true;
    }
    case Op::kEnumerate: {
      serve::EnumerateJob job;
      job.keep = std::move(req.byte_flags);
      s_.submit(std::move(job), std::move(opts));
      return true;
    }
    case Op::kPipeline: {
      // The pipeline records spans into the source vector, so the vector
      // must outlive execution: park it in a shared_ptr the completion
      // callback keeps alive until the result is delivered.
      auto src = std::make_shared<std::vector<Value>>(std::move(req.data));
      exec::Pipeline<Value> p =
          exec::source(std::span<const Value>(src->data(), src->size()));
      for (const Stage& st : req.stages) {
        switch (st.op) {
          case StageOp::kAddConst:
            p = std::move(p) | exec::map([a = st.arg](Value v) { return v + a; });
            break;
          case StageOp::kMulConst:
            p = std::move(p) | exec::map([a = st.arg](Value v) { return v * a; });
            break;
          case StageOp::kMinConst:
            p = std::move(p) |
                exec::map([a = st.arg](Value v) { return v < a ? v : a; });
            break;
          case StageOp::kMaxConst:
            p = std::move(p) |
                exec::map([a = st.arg](Value v) { return v > a ? v : a; });
            break;
          case StageOp::kScanPlus:
            p = std::move(p) | exec::scan<Plus>();
            break;
          case StageOp::kScanMax:
            p = std::move(p) | exec::scan<Max>();
            break;
          case StageOp::kScanMin:
            p = std::move(p) | exec::scan<Min>();
            break;
        }
      }
      opts.on_complete = [src, inner = std::move(opts.on_complete)](
                             serve::Result&& r) { inner(std::move(r)); };
      s_.submit(std::move(p), std::move(opts));
      return true;
    }
    case Op::kPlan: {
      serve::PlanJob job;
      job.plan = std::move(req.plan);
      job.registers = std::move(req.registers);
      s_.submit(std::move(job), std::move(opts));
      return true;
    }
  }
  return false;
}

// --- CoordinatorBackend ------------------------------------------------------

CoordinatorBackend::CoordinatorBackend(shard::Coordinator& c) : c_(c) {
  pump_ = std::thread([this] { pump(); });
}

CoordinatorBackend::~CoordinatorBackend() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (pump_.joinable()) pump_.join();
}

bool CoordinatorBackend::submit(Request&& req, serve::SubmitOptions opts) {
  if (req.op != Op::kScan) return false;  // the coordinator API is scan-only
  serve::ScanJob job;
  job.data = std::move(req.data);
  job.op = to_batch_op(req.scan_op);
  job.inclusive = req.inclusive();
  job.backward = req.backward();
  if (req.segmented()) job.flags = std::move(req.byte_flags);
  // The coordinator's delivery channel is a future; keep the callback here
  // and resolve it on the pump thread (FIFO, matching submission order).
  serve::SubmitOptions fwd;
  fwd.deadline = opts.deadline;
  fwd.cancel = opts.cancel;
  auto fut = c_.submit(std::move(job), fwd);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) {
      // Resolve inline: the pump is gone, but the callback contract stands.
      opts.on_complete(fut.get());
      return true;
    }
    q_.emplace_back(std::move(fut), std::move(opts.on_complete));
  }
  cv_.notify_one();
  return true;
}

void CoordinatorBackend::pump() {
  for (;;) {
    std::pair<std::future<serve::Result>,
              std::function<void(serve::Result&&)>>
        item;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !q_.empty(); });
      if (q_.empty()) return;  // stop_ and drained
      item = std::move(q_.front());
      q_.pop_front();
    }
    item.second(item.first.get());
  }
}

// --- Server plumbing ---------------------------------------------------------

Server::Options Server::Options::from_env() {
  Options o;
  if (const char* bind = std::getenv("SCANPRIM_NET_BIND");
      bind != nullptr && *bind != '\0') {
    o.bind = bind;
  }
  o.port = static_cast<std::uint16_t>(
      env::size_or("SCANPRIM_NET_PORT", 0, 1, 65535));
  o.io_threads = env::size_or("SCANPRIM_NET_THREADS", 2, 1, 64);
  o.max_frame = env::size_or("SCANPRIM_NET_MAX_FRAME", std::size_t{16} << 20,
                             4096, std::size_t{1} << 30);
  o.idle_ms = env::size_or("SCANPRIM_NET_IDLE_MS", 5000, 10, 3600000);
  o.tenant_qps =
      env::size_or("SCANPRIM_NET_TENANT_QPS", 0, 1, 1000000000);
  o.tenant_bytes = env::size_or("SCANPRIM_NET_TENANT_BYTES", 0, 1,
                                std::size_t{1} << 40);
  o.qos = env::flag_or("SCANPRIM_NET_QOS", true);
  o.small_bytes =
      env::size_or("SCANPRIM_NET_SMALL_BYTES", 4096, 1, std::size_t{1} << 20);
  o.slo_us = env::size_or("SCANPRIM_NET_SLO_US", 2000, 1, 60000000);
  o.qos_tick_ms = env::size_or("SCANPRIM_NET_QOS_TICK_MS", 50, 1, 60000);
  o.window_min_us = env::size_or("SCANPRIM_NET_WINDOW_MIN_US", 1, 1, 1000000);
  return o;
}

/// One connection, owned by exactly one io thread. Only `in_flight` is
/// touched cross-thread (completions decrement it).
struct Server::Conn : std::enable_shared_from_this<Server::Conn> {
  int fd = -1;
  std::size_t io_index = 0;
  std::vector<std::uint8_t> in;  ///< receive buffer; [in_off, size) is live
  std::size_t in_off = 0;
  std::string out;  ///< send buffer; [out_off, size) still to write
  std::size_t out_off = 0;
  bool want_write = false;  ///< EPOLLOUT armed
  bool http = false;        ///< Prometheus scrape connection
  bool closing = false;     ///< close once the send buffer drains
  std::atomic<std::uint32_t> in_flight{0};
  std::chrono::steady_clock::time_point last_activity{};
};

struct Server::IoThread {
  std::size_t index = 0;
  int epfd = -1;
  int wakefd = -1;
  std::thread th;
  /// MPSC queue: new fds from the acceptor, response frames from
  /// completions. Drained after every epoll wake.
  struct Delivery {
    std::weak_ptr<Conn> conn;
    std::string frame;
    int new_fd = -1;
    /// True for response deliveries: the io thread, not the completion
    /// thread, retires the connection's in-flight slot so the "close a
    /// `closing` connection only once its responses are delivered" decision
    /// in try_flush can never race the decrement.
    bool completion = false;
  };
  std::mutex mu;
  std::vector<Delivery> q;
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  std::chrono::steady_clock::time_point last_sweep{};
};

struct Server::TenantState {
  TokenBucket qps;
  TokenBucket bytes;
  obs::Counter* lane_requests[2] = {nullptr, nullptr};
};

/// Cached registry counters (find-or-create is a map lookup under a mutex;
/// the hot path must not pay it per request).
struct Server::Series {
  obs::Counter* accepted = nullptr;
  obs::Counter* rejected_protocol = nullptr;
  obs::Counter* rejected_version = nullptr;
  obs::Counter* rejected_quota_qps = nullptr;
  obs::Counter* rejected_quota_bytes = nullptr;
  obs::Counter* rejected_fault = nullptr;
  obs::Counter* cuts_shrink = nullptr;
  obs::Counter* cuts_regrow = nullptr;
  obs::Counter* http_scrapes = nullptr;
  obs::Counter* idle_closed = nullptr;
  obs::Counter* responses[10] = {};
  std::string label;  ///< `server="N"`
};

Server::Server(Backend& backend, Options opts)
    : backend_(backend), opts_(std::move(opts)) {
  static std::atomic<std::uint64_t> g_seq{0};
  seq_ = g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
}

Server::~Server() { stop(); }

Server::Stats Server::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.open = open_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.quota_rejected = quota_rejected_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  s.window_shrinks = window_shrinks_.load(std::memory_order_relaxed);
  s.window_regrows = window_regrows_.load(std::memory_order_relaxed);
  s.http_scrapes = http_scrapes_.load(std::memory_order_relaxed);
  s.in_flight = in_flight_.load(std::memory_order_relaxed);
  return s;
}

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  stopping_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error("net: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("net: bad bind address " + opts_.bind);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("net: bind failed: ") +
                             std::strerror(err));
  }
  if (::listen(listen_fd_, 256) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("net: listen failed: ") +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  series_ = std::make_unique<Series>();
  series_->label = "server=\"" + std::to_string(seq_) + "\"";
  const std::string& lb = series_->label;
  series_->accepted =
      &obs::counter("scanprim_net_accepted_total{" + lb + "}");
  series_->rejected_protocol = &obs::counter(
      "scanprim_net_rejected_total{" + lb + ",reason=\"protocol\"}");
  series_->rejected_version = &obs::counter(
      "scanprim_net_rejected_total{" + lb + ",reason=\"version_skew\"}");
  series_->rejected_quota_qps = &obs::counter(
      "scanprim_net_rejected_total{" + lb + ",reason=\"quota_qps\"}");
  series_->rejected_quota_bytes = &obs::counter(
      "scanprim_net_rejected_total{" + lb + ",reason=\"quota_bytes\"}");
  series_->rejected_fault = &obs::counter(
      "scanprim_net_rejected_total{" + lb + ",reason=\"fault\"}");
  series_->cuts_shrink = &obs::counter(
      "scanprim_net_window_cuts_total{" + lb + ",cause=\"slo_shrink\"}");
  series_->cuts_regrow = &obs::counter(
      "scanprim_net_window_cuts_total{" + lb + ",cause=\"regrow\"}");
  series_->http_scrapes =
      &obs::counter("scanprim_net_http_scrapes_total{" + lb + "}");
  series_->idle_closed =
      &obs::counter("scanprim_net_idle_closed_total{" + lb + "}");
  for (int s = 0; s <= 9; ++s) {
    series_->responses[s] = &obs::counter(
        "scanprim_net_responses_total{" + lb + ",status=\"" +
        status_name(static_cast<Status>(s)) + "\"}");
  }

  // The adaptive window regrows toward the serve layer's configured window;
  // with no window hook (coordinator backend) the controller never runs.
  std::uint64_t base_us = 200;
  if (serve::Service* s = backend_.service()) base_us = s->window_us();
  adaptive_ = AdaptiveWindow(base_us, opts_.window_min_us,
                             static_cast<std::uint64_t>(opts_.slo_us) * 1000);

  io_.clear();
  for (std::size_t i = 0; i < opts_.io_threads; ++i) {
    auto io = std::make_unique<IoThread>();
    io->index = i;
    io->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    io->wakefd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (io->epfd < 0 || io->wakefd < 0) {
      throw std::runtime_error("net: epoll/eventfd setup failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;  // level-triggered wake: never misses queued work
    ev.data.fd = io->wakefd;
    ::epoll_ctl(io->epfd, EPOLL_CTL_ADD, io->wakefd, &ev);
    io_.push_back(std::move(io));
  }

  collector_id_ = obs::register_collector([this](std::string& out) {
    const std::string& lb = series_->label;
    obs::append_counter(out, "scanprim_net_connections{" + lb + "}",
                        open_.load(std::memory_order_relaxed));
    obs::append_counter(out, "scanprim_net_in_flight{" + lb + "}",
                        in_flight_.load(std::memory_order_relaxed));
    obs::append_counter(out, "scanprim_net_window_us{" + lb + "}",
                        adaptive_.window_us());
    for (int l = 0; l < 2; ++l) {
      obs::append_histogram(
          out,
          "scanprim_net_lane_latency_ns{" + lb + ",lane=\"" +
              serve::lane_name(static_cast<serve::Lane>(l)) + "\"}",
          lane_hist_[l]);
    }
  });

  for (auto& io : io_) {
    io->th = std::thread([this, p = io.get()] { io_loop(*p); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  qos_thread_ = std::thread([this] { qos_loop(); });
  running_.store(true, std::memory_order_release);
}

void Server::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);

  // Acceptor first: shutdown unblocks accept4.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  qos_cv_.notify_all();
  if (qos_thread_.joinable()) qos_thread_.join();

  // IO threads close their connections on the way out.
  for (auto& io : io_) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t r = ::write(io->wakefd, &one, sizeof one);
  }
  for (auto& io : io_) {
    if (io->th.joinable()) io->th.join();
  }

  // In-flight completions still post into the (now unread) queues; wait for
  // them so no callback outlives the server.
  while (in_flight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  obs::unregister_collector(collector_id_);
  collector_id_ = 0;
  for (auto& io : io_) {
    ::close(io->epfd);
    ::close(io->wakefd);
  }
  io_.clear();
  {
    std::lock_guard<std::mutex> lk(tenants_mu_);
    tenants_.clear();
  }
  running_.store(false, std::memory_order_release);
}

// --- acceptor ----------------------------------------------------------------

void Server::accept_loop() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // listen socket gone
    }
    try {
      SCANPRIM_FAULT_POINT("net.accept");
    } catch (const std::exception&) {
      series_->rejected_fault->inc();
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_.fetch_add(1, std::memory_order_relaxed);
    series_->accepted->inc();
    IoThread& io =
        *io_[next_io_.fetch_add(1, std::memory_order_relaxed) % io_.size()];
    {
      std::lock_guard<std::mutex> lk(io.mu);
      io.q.push_back(IoThread::Delivery{{}, {}, fd});
    }
    const std::uint64_t wake = 1;
    [[maybe_unused]] ssize_t r = ::write(io.wakefd, &wake, sizeof wake);
  }
}

// --- io threads --------------------------------------------------------------

void Server::io_loop(IoThread& io) {
  epoll_event evs[64];
  for (;;) {
    const int n = ::epoll_wait(io.epfd, evs, 64, 100);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (evs[i].data.fd == io.wakefd) {
        std::uint64_t drain = 0;
        [[maybe_unused]] ssize_t r =
            ::read(io.wakefd, &drain, sizeof drain);
        continue;
      }
      auto it = io.conns.find(evs[i].data.fd);
      if (it == io.conns.end()) continue;
      std::shared_ptr<Conn> c = it->second;
      if ((evs[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(io, c);
        continue;
      }
      if ((evs[i].events & EPOLLIN) != 0) handle_readable(io, c);
      if (c->fd >= 0 && (evs[i].events & EPOLLOUT) != 0) try_flush(io, c);
    }
    process_queue(io);
    sweep_idle(io);
  }
  // Close everything this thread owns; late completions drop harmlessly.
  std::vector<std::shared_ptr<Conn>> all;
  all.reserve(io.conns.size());
  for (auto& [fd, c] : io.conns) all.push_back(c);
  for (auto& c : all) close_conn(io, c);
}

void Server::adopt(IoThread& io, int fd) {
  auto c = std::make_shared<Conn>();
  c->fd = fd;
  c->io_index = io.index;
  c->last_activity = std::chrono::steady_clock::now();
  io.conns.emplace(fd, c);
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
  ev.data.fd = fd;
  if (::epoll_ctl(io.epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    io.conns.erase(fd);
    ::close(fd);
    open_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  // Data may have landed before the epoll ADD; poll once to catch the edge.
  handle_readable(io, c);
}

void Server::process_queue(IoThread& io) {
  std::vector<IoThread::Delivery> q;
  {
    std::lock_guard<std::mutex> lk(io.mu);
    q.swap(io.q);
  }
  for (auto& d : q) {
    if (d.new_fd >= 0) {
      adopt(io, d.new_fd);
      continue;
    }
    std::shared_ptr<Conn> c = d.conn.lock();
    if (!c) continue;  // connection already gone: drop
    if (d.completion) c->in_flight.fetch_sub(1, std::memory_order_relaxed);
    if (c->fd < 0) continue;  // closed but not yet reaped: drop the frame
    c->out += d.frame;
    try_flush(io, c);
  }
}

void Server::handle_readable(IoThread& io, const std::shared_ptr<Conn>& c) {
  bool eof = false;
  char buf[65536];
  for (;;) {
    const ssize_t r = ::read(c->fd, buf, sizeof buf);
    if (r > 0) {
      c->in.insert(c->in.end(), buf, buf + r);
      c->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (r == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(io, c);
    return;
  }
  process_input(io, c);
  // Peer closed its end: whatever we still owe it is undeliverable in
  // practice (clients close the whole socket), so drop the connection —
  // in-flight completions resolve against the dead weak_ptr.
  if (eof && c->fd >= 0) close_conn(io, c);
}

void Server::process_input(IoThread& io, const std::shared_ptr<Conn>& c) {
  for (;;) {
    if (c->fd < 0 || c->closing) break;
    const std::span<const std::uint8_t> avail(c->in.data() + c->in_off,
                                              c->in.size() - c->in_off);
    if (avail.empty()) break;
    if (!c->http && looks_like_http(avail)) c->http = true;
    if (c->http) {
      handle_http(io, c);
      break;
    }
    std::size_t total = 0;
    try {
      total = frame_size(avail, opts_.max_frame);
    } catch (const ProtocolError& e) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      series_->rejected_protocol->inc();
      Response resp;
      resp.status = Status::kProtocolError;
      resp.error = e.what();
      c->closing = true;
      respond_now(io, c, resp);
      return;
    }
    if (total == 0) break;  // wait for the rest of the frame
    handle_frame(io, c, avail.subspan(0, total));
    if (c->fd < 0) return;
    c->in_off += total;
  }
  if (c->fd < 0) return;
  // Compact the consumed prefix so a chatty connection doesn't grow forever.
  if (c->in_off == c->in.size()) {
    c->in.clear();
    c->in_off = 0;
  } else if (c->in_off >= (std::size_t{1} << 16)) {
    c->in.erase(c->in.begin(),
                c->in.begin() + static_cast<std::ptrdiff_t>(c->in_off));
    c->in_off = 0;
  }
}

void Server::handle_http(IoThread& io, const std::shared_ptr<Conn>& c) {
  // Serve the scrape once the request head is complete (blank line).
  static constexpr char kEnd[] = "\r\n\r\n";
  const auto begin = c->in.begin() + static_cast<std::ptrdiff_t>(c->in_off);
  const bool complete =
      std::search(begin, c->in.end(), kEnd, kEnd + 4) != c->in.end() ||
      c->in.size() - c->in_off > 16384;
  if (!complete) return;  // partial head; the idle sweep bounds the wait
  const std::string body = obs::render_text();
  c->out += "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            "Content-Length: " +
            std::to_string(body.size()) +
            "\r\n"
            "Connection: close\r\n\r\n";
  c->out += body;
  c->in.clear();
  c->in_off = 0;
  c->closing = true;
  http_scrapes_.fetch_add(1, std::memory_order_relaxed);
  series_->http_scrapes->inc();
  try_flush(io, c);
}

void Server::handle_frame(IoThread& io, const std::shared_ptr<Conn>& c,
                          std::span<const std::uint8_t> frame) {
  Request req;
  try {
    SCANPRIM_FAULT_POINT("net.frame_decode");
    req = decode_request(frame);
  } catch (const VersionSkew& e) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    series_->rejected_version->inc();
    Response resp;
    resp.status = Status::kVersionSkew;
    resp.request_id = peek_request_id(frame);
    resp.error = e.what();
    c->closing = true;
    respond_now(io, c, resp);
    return;
  } catch (const ProtocolError& e) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    series_->rejected_protocol->inc();
    Response resp;
    resp.status = Status::kProtocolError;
    resp.request_id = peek_request_id(frame);
    resp.error = e.what();
    c->closing = true;
    respond_now(io, c, resp);
    return;
  } catch (const std::exception& e) {  // fault::Injected, bad_alloc
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    series_->rejected_fault->inc();
    Response resp;
    resp.status = Status::kProtocolError;
    resp.request_id = peek_request_id(frame);
    resp.error = e.what();
    c->closing = true;
    respond_now(io, c, resp);
    return;
  }

  const std::size_t bytes = req.payload_bytes();
  const std::uint64_t t0 = now_ns();
  serve::Lane lane;
  {
    std::lock_guard<std::mutex> lk(tenants_mu_);
    auto it = tenants_.find(req.tenant);
    if (it == tenants_.end()) {
      auto t = std::make_unique<TenantState>();
      t->qps = TokenBucket(opts_.tenant_qps, t0);
      t->bytes = TokenBucket(opts_.tenant_bytes, t0);
      for (int l = 0; l < 2; ++l) {
        t->lane_requests[l] = &obs::counter(
            "scanprim_net_requests_total{" + series_->label + ",tenant=\"" +
            std::to_string(req.tenant) + "\",lane=\"" +
            serve::lane_name(static_cast<serve::Lane>(l)) + "\"}");
      }
      it = tenants_.emplace(req.tenant, std::move(t)).first;
    }
    TenantState& t = *it->second;
    if (!t.qps.admit(1, t0)) {
      quota_rejected_.fetch_add(1, std::memory_order_relaxed);
      series_->rejected_quota_qps->inc();
      Response resp;
      resp.status = Status::kOverQuota;
      resp.request_id = req.request_id;
      resp.error = "tenant request quota exhausted";
      respond_now(io, c, resp);
      return;
    }
    if (!t.bytes.admit(bytes, t0)) {
      quota_rejected_.fetch_add(1, std::memory_order_relaxed);
      series_->rejected_quota_bytes->inc();
      Response resp;
      resp.status = Status::kOverQuota;
      resp.request_id = req.request_id;
      resp.error = "tenant byte quota exhausted";
      respond_now(io, c, resp);
      return;
    }
    lane = classify(req, bytes);
    t.lane_requests[static_cast<int>(lane)]->inc();
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  c->in_flight.fetch_add(1, std::memory_order_relaxed);

  const std::uint64_t rid = req.request_id;
  serve::SubmitOptions so;
  so.deadline = std::chrono::nanoseconds(req.deadline_ns);
  so.lane = lane;
  std::weak_ptr<Conn> wc = c;
  so.on_complete = [this, wc, idx = io.index, rid, op = req.op, lane,
                    t0](serve::Result&& r) {
    complete(wc, idx, rid, op, lane, t0, std::move(r));
  };
  if (!backend_.submit(std::move(req), std::move(so))) {
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    c->in_flight.fetch_sub(1, std::memory_order_relaxed);
    Response resp;
    resp.status = Status::kUnsupported;
    resp.request_id = rid;
    resp.error = "backend does not serve this op";
    respond_now(io, c, resp);
  }
}

void Server::respond_now(IoThread& io, const std::shared_ptr<Conn>& c,
                         const Response& resp) {
  encode_response(c->out, resp);
  responses_.fetch_add(1, std::memory_order_relaxed);
  series_->responses[static_cast<int>(resp.status)]->inc();
  try_flush(io, c);
}

void Server::complete(std::weak_ptr<Conn> wc, std::size_t io_index,
                      std::uint64_t request_id, Op op, serve::Lane lane,
                      std::uint64_t t0_ns, serve::Result&& r) {
  Response resp;
  resp.request_id = request_id;
  resp.status = from_serve(r.status);
  resp.error = std::move(r.error);
  resp.kept = static_cast<std::uint32_t>(r.kept);
  if (r.status == serve::Status::kOk) {
    if (op == Op::kPlan) {
      resp.outputs = std::move(r.outputs);
    } else {
      resp.outputs.push_back(std::move(r.values));
    }
  }
  std::string frame;
  encode_response(frame, resp);

  const std::uint64_t lat = now_ns() - t0_ns;
  lane_hist_[static_cast<int>(lane)].record(lat);
  if (lane == serve::Lane::kLatency && opts_.qos) window_hist_.record(lat);
  responses_.fetch_add(1, std::memory_order_relaxed);
  series_->responses[static_cast<int>(resp.status)]->inc();

  post(io_index, wc, std::move(frame));
  in_flight_.fetch_sub(1, std::memory_order_release);  // LAST: stop() gates on it
}

void Server::post(std::size_t io_index, std::weak_ptr<Conn> wc,
                  std::string frame) {
  IoThread& io = *io_[io_index];
  {
    std::lock_guard<std::mutex> lk(io.mu);
    io.q.push_back(
        IoThread::Delivery{std::move(wc), std::move(frame), -1, true});
  }
  const std::uint64_t wake = 1;
  [[maybe_unused]] ssize_t r = ::write(io.wakefd, &wake, sizeof wake);
}

void Server::try_flush(IoThread& io, const std::shared_ptr<Conn>& c) {
  if (c->fd < 0) return;
  while (c->out_off < c->out.size()) {
    const ssize_t w = ::write(c->fd, c->out.data() + c->out_off,
                              c->out.size() - c->out_off);
    if (w > 0) {
      c->out_off += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!c->want_write) {
        c->want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP | EPOLLOUT;
        ev.data.fd = c->fd;
        ::epoll_ctl(io.epfd, EPOLL_CTL_MOD, c->fd, &ev);
      }
      return;
    }
    if (errno == EINTR) continue;
    close_conn(io, c);
    return;
  }
  c->out.clear();
  c->out_off = 0;
  if (c->want_write) {
    c->want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    ev.data.fd = c->fd;
    ::epoll_ctl(io.epfd, EPOLL_CTL_MOD, c->fd, &ev);
  }
  // A closing connection still owes responses for frames it got in before
  // the offending one; hold the socket open until they are delivered.
  if (c->closing && c->in_flight.load(std::memory_order_relaxed) == 0) {
    close_conn(io, c);
  }
}

void Server::close_conn(IoThread& io, const std::shared_ptr<Conn>& c) {
  if (c->fd < 0) return;
  const int fd = c->fd;
  c->fd = -1;
  ::epoll_ctl(io.epfd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  io.conns.erase(fd);
  open_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::sweep_idle(IoThread& io) {
  const auto now = std::chrono::steady_clock::now();
  if (now - io.last_sweep < std::chrono::milliseconds(200)) return;
  io.last_sweep = now;
  const auto limit = std::chrono::milliseconds(opts_.idle_ms);
  std::vector<std::shared_ptr<Conn>> victims;
  for (auto& [fd, c] : io.conns) {
    // Only stalled *partial* frames are slowloris suspects; a quiet
    // connection with an empty buffer is a legitimate idle client.
    if (c->in.size() > c->in_off && now - c->last_activity > limit) {
      victims.push_back(c);
    }
  }
  for (auto& c : victims) {
    idle_closed_.fetch_add(1, std::memory_order_relaxed);
    series_->idle_closed->inc();
    close_conn(io, c);
  }
}

serve::Lane Server::classify(const Request& req, std::size_t bytes) const {
  if (!opts_.qos) return serve::Lane::kBulk;
  if (req.priority == Priority::kLatency) return serve::Lane::kLatency;
  if (req.priority == Priority::kBulk) return serve::Lane::kBulk;
  return bytes <= opts_.small_bytes ? serve::Lane::kLatency
                                    : serve::Lane::kBulk;
}

// --- QoS controller ----------------------------------------------------------

void Server::qos_loop() {
  std::unique_lock<std::mutex> lk(qos_mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    qos_cv_.wait_for(lk, std::chrono::milliseconds(opts_.qos_tick_ms));
    if (stopping_.load(std::memory_order_acquire)) break;
    serve::Service* s = backend_.service();
    if (s == nullptr || !opts_.qos) continue;
    const std::uint64_t cnt = window_hist_.count();
    const std::uint64_t p99 =
        cnt > 0 ? window_hist_.value_at_quantile(0.99) : 0;
    window_hist_.reset();
    switch (adaptive_.tick(p99, cnt)) {
      case AdaptiveWindow::Move::kShrink:
        s->set_window_us(adaptive_.window_us());
        window_shrinks_.fetch_add(1, std::memory_order_relaxed);
        series_->cuts_shrink->inc();
        break;
      case AdaptiveWindow::Move::kRegrow:
        s->set_window_us(adaptive_.window_us());
        window_regrows_.fetch_add(1, std::memory_order_relaxed);
        series_->cuts_regrow->inc();
        break;
      case AdaptiveWindow::Move::kNone:
        break;
    }
  }
}

}  // namespace scanprim::net
