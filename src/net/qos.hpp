// QoS policy pieces of the socket front end (docs/NET.md): per-tenant
// token-bucket admission quotas and the SLO-driven adaptive batching window.
// Both are pure, clock-parameterised state machines — the server feeds them
// steady_clock nanoseconds; tests feed them synthetic time and assert exact
// admit/reject and shrink/regrow sequences without sockets or sleeps.
#pragma once

#include <cstddef>
#include <cstdint>

namespace scanprim::net {

/// Classic token bucket: `rate` tokens per second refill, `burst` capacity
/// (burst = one second of rate here — quotas are per-second by contract).
/// rate == 0 means unlimited: admit() always grants. Not thread-safe; the
/// server serialises each tenant's buckets under its tenant-table mutex.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(std::uint64_t rate_per_s, std::uint64_t now_ns)
      : rate_(rate_per_s),
        tokens_(static_cast<double>(rate_per_s)),
        last_ns_(now_ns) {}

  bool unlimited() const { return rate_ == 0; }

  /// Take `cost` tokens at time `now_ns`. Grants when the refilled balance
  /// covers the cost; a denial consumes nothing.
  bool admit(std::uint64_t cost, std::uint64_t now_ns) {
    if (rate_ == 0) return true;
    refill(now_ns);
    const auto c = static_cast<double>(cost);
    if (tokens_ < c) return false;
    tokens_ -= c;
    return true;
  }

 private:
  void refill(std::uint64_t now_ns) {
    if (now_ns <= last_ns_) return;
    const double dt_s =
        static_cast<double>(now_ns - last_ns_) * 1e-9;
    last_ns_ = now_ns;
    tokens_ += dt_s * static_cast<double>(rate_);
    const auto burst = static_cast<double>(rate_);  // 1 s of rate
    if (tokens_ > burst) tokens_ = burst;
  }

  std::uint64_t rate_ = 0;
  double tokens_ = 0.0;
  std::uint64_t last_ns_ = 0;
};

/// The SLO controller for the batching window (docs/NET.md "Adaptive
/// window"). Each tick the server hands it the latency lane's windowed p99;
/// a breach halves the window (multiplicative decrease, floor `min_us`), a
/// comfortable margin (p99 below half the SLO) regrows it by 3/2
/// (multiplicative increase, ceiling `base_us` — the window never grows past
/// what the operator configured). Returns whether the window moved so the
/// server can count scanprim_net_window_cuts_total by cause.
class AdaptiveWindow {
 public:
  enum class Move : std::uint8_t { kNone, kShrink, kRegrow };

  AdaptiveWindow() = default;
  AdaptiveWindow(std::uint64_t base_us, std::uint64_t min_us,
                 std::uint64_t slo_ns)
      : base_us_(base_us ? base_us : 1),
        min_us_(min_us ? min_us : 1),
        slo_ns_(slo_ns),
        window_us_(base_us ? base_us : 1) {}

  std::uint64_t window_us() const { return window_us_; }

  /// One controller tick. `p99_ns` is the latency lane's windowed p99;
  /// `samples` its request count (zero samples: no evidence, no move).
  Move tick(std::uint64_t p99_ns, std::uint64_t samples) {
    if (samples == 0 || slo_ns_ == 0) return Move::kNone;
    if (p99_ns > slo_ns_) {
      const std::uint64_t next = window_us_ / 2;
      const std::uint64_t clamped = next < min_us_ ? min_us_ : next;
      if (clamped == window_us_) return Move::kNone;
      window_us_ = clamped;
      return Move::kShrink;
    }
    if (p99_ns < slo_ns_ / 2 && window_us_ < base_us_) {
      std::uint64_t next = window_us_ + window_us_ / 2 + 1;
      if (next > base_us_) next = base_us_;
      window_us_ = next;
      return Move::kRegrow;
    }
    return Move::kNone;
  }

 private:
  std::uint64_t base_us_ = 1;
  std::uint64_t min_us_ = 1;
  std::uint64_t slo_ns_ = 0;
  std::uint64_t window_us_ = 1;
};

}  // namespace scanprim::net
