// Frame encoders/decoders for the socket front end (protocol.hpp).
//
// Decoding is cursor-based over a complete frame: every read checks the
// remaining byte count first and throws ProtocolError on truncation, so a
// malicious or corrupted frame can never read past its own body — and the
// decoded vectors' counts are validated against the bytes actually present
// BEFORE any allocation sized from them (an attacker-chosen count that does
// not match the frame fails fast instead of driving a giant reserve).
#include "src/net/protocol.hpp"

namespace scanprim::net {

namespace {

// --- little-endian primitives ------------------------------------------------

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

template <class T>
void put_le(std::string& out, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<char>((static_cast<std::uint64_t>(v) >> (8 * i)) &
                                    0xff));
  }
}

void put_str(std::string& out, const std::string& s) {
  if (s.size() > 0xffff) throw ProtocolError("string too long to encode");
  put_le<std::uint16_t>(out, static_cast<std::uint16_t>(s.size()));
  out.append(s);
}

void put_vec(std::string& out, const std::vector<Value>& v) {
  if (v.size() > 0xffffffffu) throw ProtocolError("vector too long to encode");
  put_le<std::uint32_t>(out, static_cast<std::uint32_t>(v.size()));
  const std::size_t at = out.size();
  out.resize(at + v.size() * sizeof(Value));
  std::memcpy(out.data() + at, v.data(), v.size() * sizeof(Value));
}

void put_bytes(std::string& out, const std::vector<std::uint8_t>& v) {
  out.append(reinterpret_cast<const char*>(v.data()), v.size());
}

/// Cursor over one complete frame body.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  std::size_t remaining() const { return buf_.size() - at_; }

  std::uint8_t u8() { return take(1)[0]; }

  template <class T>
  T le() {
    const std::uint8_t* p = take(sizeof(T));
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    return static_cast<T>(v);
  }

  std::string str() {
    const std::size_t n = le<std::uint16_t>();
    const std::uint8_t* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }

  std::vector<Value> vec() {
    const std::size_t n = le<std::uint32_t>();
    // Validate the count against the bytes present before allocating.
    const std::uint8_t* p = take(n * sizeof(Value));
    std::vector<Value> v(n);
    std::memcpy(v.data(), p, n * sizeof(Value));
    return v;
  }

  std::vector<std::uint8_t> bytes(std::size_t n) {
    const std::uint8_t* p = take(n);
    return std::vector<std::uint8_t>(p, p + n);
  }

  void expect_drained() const {
    if (at_ != buf_.size()) throw ProtocolError("trailing bytes in frame");
  }

 private:
  const std::uint8_t* take(std::size_t n) {
    if (remaining() < n) throw ProtocolError("truncated frame");
    const std::uint8_t* p = buf_.data() + at_;
    at_ += n;
    return p;
  }

  std::span<const std::uint8_t> buf_;
  std::size_t at_ = 0;
};

/// Retro-fills the body-length prefix reserved at `len_at`.
void seal(std::string& out, std::size_t len_at) {
  const std::size_t body = out.size() - (len_at + 4);
  if (body > 0xffffffffu) throw ProtocolError("frame too long to encode");
  const auto v = static_cast<std::uint32_t>(body);
  for (std::size_t i = 0; i < 4; ++i) {
    out[len_at + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

}  // namespace

std::size_t Request::payload_bytes() const {
  std::size_t bytes = data.size() * sizeof(Value) + byte_flags.size() +
                      stages.size() * (sizeof(std::int64_t) + 1);
  for (const auto& [name, v] : registers) bytes += v.size() * sizeof(Value);
  return bytes;
}

void encode_request(std::string& out, const Request& r) {
  const std::size_t len_at = out.size();
  put_le<std::uint32_t>(out, 0);  // sealed below
  put_le<std::uint32_t>(out, kMagic);
  put_le<std::uint16_t>(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(r.op));
  put_u8(out, r.flags);
  put_le<std::uint64_t>(out, r.request_id);
  put_le<std::uint32_t>(out, r.tenant);
  put_u8(out, static_cast<std::uint8_t>(r.priority));
  put_u8(out, 0);
  put_u8(out, 0);
  put_u8(out, 0);
  put_le<std::uint64_t>(out, r.deadline_ns);
  switch (r.op) {
    case Op::kScan:
      put_u8(out, static_cast<std::uint8_t>(r.scan_op));
      put_vec(out, r.data);
      if (r.segmented()) put_bytes(out, r.byte_flags);
      break;
    case Op::kPack:
      put_vec(out, r.data);
      put_bytes(out, r.byte_flags);
      break;
    case Op::kEnumerate:
      put_le<std::uint32_t>(out,
                            static_cast<std::uint32_t>(r.byte_flags.size()));
      put_bytes(out, r.byte_flags);
      break;
    case Op::kPipeline:
      put_vec(out, r.data);
      put_le<std::uint16_t>(out, static_cast<std::uint16_t>(r.stages.size()));
      for (const Stage& s : r.stages) {
        put_u8(out, static_cast<std::uint8_t>(s.op));
        put_le<std::int64_t>(out, s.arg);
      }
      break;
    case Op::kPlan:
      put_str(out, r.plan);
      put_le<std::uint16_t>(out,
                            static_cast<std::uint16_t>(r.registers.size()));
      for (const auto& [name, v] : r.registers) {
        put_str(out, name);
        put_vec(out, v);
      }
      break;
  }
  seal(out, len_at);
}

void encode_response(std::string& out, const Response& r) {
  const std::size_t len_at = out.size();
  put_le<std::uint32_t>(out, 0);
  put_le<std::uint32_t>(out, kMagic);
  put_le<std::uint16_t>(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(r.status));
  put_u8(out, 0);
  put_le<std::uint64_t>(out, r.request_id);
  put_le<std::uint32_t>(out, r.kept);
  put_le<std::uint32_t>(out, static_cast<std::uint32_t>(r.outputs.size()));
  for (const auto& v : r.outputs) put_vec(out, v);
  put_str(out, r.error);
  seal(out, len_at);
}

std::size_t frame_size(std::span<const std::uint8_t> buf,
                       std::size_t max_frame) {
  if (buf.size() < kLenPrefix) return 0;
  std::uint32_t body = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    body |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  }
  if (body > max_frame) {
    throw ProtocolError("frame length " + std::to_string(body) +
                        " exceeds limit " + std::to_string(max_frame));
  }
  const std::size_t total = kLenPrefix + body;
  return buf.size() >= total ? total : 0;
}

namespace {

/// Common header checks; returns the cursor positioned after magic+version.
Reader open_frame(std::span<const std::uint8_t> frame) {
  Reader rd(frame.subspan(kLenPrefix));
  const auto magic = rd.le<std::uint32_t>();
  if (magic != kMagic) throw ProtocolError("bad magic");
  const auto version = rd.le<std::uint16_t>();
  if (version != kVersion) throw VersionSkew(version);
  return rd;
}

}  // namespace

Request decode_request(std::span<const std::uint8_t> frame) {
  Reader rd = open_frame(frame);
  Request r;
  const std::uint8_t op = rd.u8();
  if (op < 1 || op > 5) {
    throw ProtocolError("unknown op " + std::to_string(op));
  }
  r.op = static_cast<Op>(op);
  r.flags = rd.u8();
  r.request_id = rd.le<std::uint64_t>();
  r.tenant = rd.le<std::uint32_t>();
  const std::uint8_t prio = rd.u8();
  if (prio > 2) throw ProtocolError("unknown priority " + std::to_string(prio));
  r.priority = static_cast<Priority>(prio);
  rd.u8();
  rd.u8();
  rd.u8();
  r.deadline_ns = rd.le<std::uint64_t>();
  switch (r.op) {
    case Op::kScan: {
      const std::uint8_t sop = rd.u8();
      if (sop > 4) {
        throw ProtocolError("unknown scan op " + std::to_string(sop));
      }
      r.scan_op = static_cast<ScanOp>(sop);
      r.data = rd.vec();
      if (r.segmented()) r.byte_flags = rd.bytes(r.data.size());
      break;
    }
    case Op::kPack:
      r.data = rd.vec();
      r.byte_flags = rd.bytes(r.data.size());
      break;
    case Op::kEnumerate: {
      const std::size_t n = rd.le<std::uint32_t>();
      r.byte_flags = rd.bytes(n);
      break;
    }
    case Op::kPipeline: {
      r.data = rd.vec();
      const std::size_t nstages = rd.le<std::uint16_t>();
      r.stages.reserve(nstages);
      for (std::size_t i = 0; i < nstages; ++i) {
        const std::uint8_t sop = rd.u8();
        const auto arg = rd.le<std::int64_t>();
        switch (static_cast<StageOp>(sop)) {
          case StageOp::kAddConst:
          case StageOp::kMulConst:
          case StageOp::kMinConst:
          case StageOp::kMaxConst:
          case StageOp::kScanPlus:
          case StageOp::kScanMax:
          case StageOp::kScanMin:
            break;
          default:
            throw ProtocolError("unknown stage op " + std::to_string(sop));
        }
        r.stages.push_back(Stage{static_cast<StageOp>(sop), arg});
      }
      break;
    }
    case Op::kPlan: {
      r.plan = rd.str();
      const std::size_t nregs = rd.le<std::uint16_t>();
      for (std::size_t i = 0; i < nregs; ++i) {
        std::string name = rd.str();
        std::vector<Value> v = rd.vec();
        r.registers.emplace(std::move(name), std::move(v));
      }
      break;
    }
  }
  rd.expect_drained();
  return r;
}

Response decode_response(std::span<const std::uint8_t> frame) {
  Reader rd = open_frame(frame);
  Response r;
  const std::uint8_t status = rd.u8();
  if (status > 9) {
    throw ProtocolError("unknown status " + std::to_string(status));
  }
  r.status = static_cast<Status>(status);
  rd.u8();
  r.request_id = rd.le<std::uint64_t>();
  r.kept = rd.le<std::uint32_t>();
  const std::size_t nout = rd.le<std::uint32_t>();
  r.outputs.reserve(nout <= 64 ? nout : 0);  // count validated by the reads
  for (std::size_t i = 0; i < nout; ++i) r.outputs.push_back(rd.vec());
  r.error = rd.str();
  rd.expect_drained();
  return r;
}

bool looks_like_http(std::span<const std::uint8_t> buf) {
  static constexpr char kGet[] = {'G', 'E', 'T', ' '};
  const std::size_t n = buf.size() < 4 ? buf.size() : 4;
  for (std::size_t i = 0; i < n; ++i) {
    if (buf[i] != static_cast<std::uint8_t>(kGet[i])) return false;
  }
  return n > 0;  // a strict prefix of "GET " still looks like HTTP
}

}  // namespace scanprim::net
