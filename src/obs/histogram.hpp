// Log-bucketed histogram for latency and size distributions (docs/OBS.md).
//
// The serve reservoir this replaces kept a bounded sample of recent request
// latencies, so its percentiles drifted with load and forgot the tail. This
// histogram records EVERY value exactly once into a power-of-2 bucket with
// sub-bucket resolution (HdrHistogram's indexing): values below 2^(kSubBits+1)
// land in unit-width buckets (exact), larger values in buckets of relative
// width 2^-kSubBits (~3% with the default 5 sub-bits). Counts are exact, so
// rank selection — value_at_quantile — is exact over all recorded values; only
// the reported value is quantised to its bucket.
//
// Concurrency: record() is wait-free relaxed fetch_adds, safe from any
// thread; readers (quantiles, render) see a racy-but-monotone snapshot,
// which is the usual contract for live metrics. merge() is associative and
// commutative, so per-shard histograms can be combined in any order.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace scanprim::obs {

class Histogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits buckets per octave. 5 bits keeps the
  /// relative quantisation error at or below 1/32 ≈ 3.1%.
  static constexpr unsigned kSubBits = 5;
  static constexpr std::uint64_t kSubCount = std::uint64_t{1} << kSubBits;
  /// Bucket count covering the full uint64 range: 2*kSubCount unit buckets
  /// for [0, 2*kSubCount), then one run of kSubCount sub-buckets per shift
  /// 1..(63-kSubBits) — the highest index is bucket_index(~0) =
  /// ((64-kSubBits)<<kSubBits) + (kSubCount-1), hence the +1 octave here.
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>((64 - kSubBits + 1) << kSubBits);

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bucket index of `v`. Values below 2*kSubCount map to themselves.
  static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < 2 * kSubCount) return static_cast<std::size_t>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = msb - kSubBits;
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(shift + 1) << kSubBits) +
        ((v >> shift) & (kSubCount - 1)));
  }

  /// Smallest value that maps to bucket `i`.
  static constexpr std::uint64_t bucket_lower(std::size_t i) noexcept {
    if (i < 2 * kSubCount) return static_cast<std::uint64_t>(i);
    const unsigned shift = static_cast<unsigned>(i >> kSubBits) - 1;
    const std::uint64_t sub = i & (kSubCount - 1);
    return (kSubCount + sub) << shift;
  }

  /// Largest value that maps to bucket `i`.
  static constexpr std::uint64_t bucket_upper(std::size_t i) noexcept {
    if (i < 2 * kSubCount) return static_cast<std::uint64_t>(i);
    const unsigned shift = static_cast<unsigned>(i >> kSubBits) - 1;
    const std::uint64_t sub = i & (kSubCount - 1);
    return (((kSubCount + sub + 1) << shift) - 1);
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_min(v);
    update_max(v);
  }

  /// Adds `o`'s recordings into this histogram. Associative and commutative
  /// up to the quantisation both sides already share.
  void merge(const Histogram& o) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t c = o.buckets_[i].load(std::memory_order_relaxed);
      if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
    const std::uint64_t oc = o.count_.load(std::memory_order_relaxed);
    if (oc == 0) return;
    count_.fetch_add(oc, std::memory_order_relaxed);
    sum_.fetch_add(o.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    update_min(o.min_.load(std::memory_order_relaxed));
    update_max(o.max_.load(std::memory_order_relaxed));
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t min() const noexcept {  ///< 0 when empty
    const std::uint64_t m = min_.load(std::memory_order_relaxed);
    return m == kEmptyMin ? 0 : m;
  }
  std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  std::uint64_t mean() const noexcept {  ///< 0 when empty
    const std::uint64_t c = count();
    return c == 0 ? 0 : sum() / c;
  }
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Value at quantile `q` in [0, 1]: the upper bound of the bucket holding
  /// the ceil(q * count)-th smallest recording (rank selection over exact
  /// counts), clamped into [min(), max()] so q=0 / q=1 report the true
  /// extremes. 0 when empty.
  std::uint64_t value_at_quantile(double q) const noexcept {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(n) + 0.5);
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cum += buckets_[i].load(std::memory_order_relaxed);
      if (cum >= rank) {
        std::uint64_t v = bucket_upper(i);
        const std::uint64_t lo = min(), hi = max();
        if (v < lo) v = lo;
        if (v > hi) v = hi;
        return v;
      }
    }
    return max();
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(kEmptyMin, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kEmptyMin = ~std::uint64_t{0};

  void update_min(std::uint64_t v) noexcept {
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(std::uint64_t v) noexcept {
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{kEmptyMin};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace scanprim::obs
