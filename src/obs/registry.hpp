// Process-wide metrics registry with Prometheus-style text exposition
// (docs/OBS.md).
//
// Every layer of the stack reports through one of three shapes:
//
//   - Counter: a named monotonic atomic the producer increments directly
//     (the thread pool's per-worker busy-ns / tasks / wakeups live here).
//     find-or-create by full series name, so hot paths hold a Counter* and
//     never touch the registry mutex again.
//   - Histogram (obs/histogram.hpp): find-or-create like counters, rendered
//     as a cumulative-bucket Prometheus histogram.
//   - Collector: a callback that appends exposition text for object-scoped
//     metrics (each serve::Service registers one labelled with its own
//     service id, and unregisters on shutdown). Collectors run under the
//     registry mutex, so unregistering synchronises with any in-flight
//     render.
//
// Series names follow Prometheus conventions and may carry inline labels:
//   scanprim_pool_busy_ns_total{worker="3"}
// render_text() groups series by family (the part before '{') and emits one
// `# TYPE` line per family.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/obs/histogram.hpp"

namespace scanprim::obs {

/// A monotonic counter. Stable address for the life of the process.
class Counter {
 public:
  void add(std::uint64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  std::uint64_t get() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Find-or-create the counter for `series` (full name, labels included).
/// The same series name always returns the same counter, so independent
/// instruments aggregate; the returned reference never invalidates.
Counter& counter(std::string_view series);

/// Find-or-create a registry-owned histogram for `series`.
Histogram& histogram(std::string_view series);

/// Register a collector that appends Prometheus text lines to `out` at every
/// render_text(). Returns an id for unregister_collector(). The callback
/// runs under the registry mutex: keep it allocation-light, and never call
/// back into the registry from inside it.
std::uint64_t register_collector(std::function<void(std::string& out)> fn);

/// Remove a collector. Blocks until any in-flight render_text() has
/// finished with it, so the callback's captures may be destroyed after
/// this returns.
void unregister_collector(std::uint64_t id);

/// One Prometheus text-exposition snapshot: owned counters (grouped by
/// family with `# TYPE` lines), owned histograms (cumulative `_bucket{le=}`
/// series plus `_sum` / `_count`), then every registered collector.
std::string render_text();

// --- exposition helpers (for collectors) -------------------------------------

/// Appends `name value\n`.
void append_counter(std::string& out, std::string_view series,
                    std::uint64_t value);

/// Appends a full Prometheus histogram: non-empty buckets as cumulative
/// `<family>_bucket{...,le="<upper>"}` series, then `_sum` and `_count`.
/// `series` may carry labels; they are merged into the bucket labels.
void append_histogram(std::string& out, std::string_view series,
                      const Histogram& h);

}  // namespace scanprim::obs
