#include "src/obs/registry.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <pthread.h>
#endif

namespace scanprim::obs {

namespace {

struct Registry {
  std::mutex mu;
  // std::map keeps render output deterministically sorted; node-based, so
  // Counter/Histogram addresses are stable across inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
  std::map<std::uint64_t, std::function<void(std::string&)>> collectors;
  std::uint64_t next_collector = 1;
};

Registry* g_registry = nullptr;

/// Intentionally leaked, like the fault registry: instruments are held by
/// objects (the global pool, static locals) whose destruction order against
/// a registry static is unknowable. Fork-safe via atfork hooks: shard
/// worker children create counters (fresh pool, fresh Service) immediately
/// after fork, so the mutex must never be inherited locked.
Registry& registry() {
  static Registry* r = [] {
    g_registry = new Registry;
#if defined(__unix__) || defined(__APPLE__)
    ::pthread_atfork([] { g_registry->mu.lock(); },
                     [] { g_registry->mu.unlock(); },
                     [] { g_registry->mu.unlock(); });
#endif
    return g_registry;
  }();
  return *r;
}

/// The metric family: the series name up to its label block.
std::string_view family_of(std::string_view series) {
  const std::size_t brace = series.find('{');
  return brace == std::string_view::npos ? series : series.substr(0, brace);
}

/// Splits `series` into family and label block (no braces; may be empty).
void split_series(std::string_view series, std::string_view* fam,
                  std::string_view* labels) {
  const std::size_t brace = series.find('{');
  if (brace == std::string_view::npos) {
    *fam = series;
    *labels = {};
    return;
  }
  *fam = series.substr(0, brace);
  std::string_view rest = series.substr(brace + 1);
  if (!rest.empty() && rest.back() == '}') rest.remove_suffix(1);
  *labels = rest;
}

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

}  // namespace

Counter& counter(std::string_view series) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto it = r.counters.find(series);
  if (it == r.counters.end()) {
    it = r.counters
             .emplace(std::string(series), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& histogram(std::string_view series) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto it = r.histograms.find(series);
  if (it == r.histograms.end()) {
    it = r.histograms
             .emplace(std::string(series), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::uint64_t register_collector(std::function<void(std::string&)> fn) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  const std::uint64_t id = r.next_collector++;
  r.collectors.emplace(id, std::move(fn));
  return id;
}

void unregister_collector(std::uint64_t id) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.collectors.erase(id);
}

void append_counter(std::string& out, std::string_view series,
                    std::uint64_t value) {
  out += series;
  out += ' ';
  append_u64(out, value);
  out += '\n';
}

void append_histogram(std::string& out, std::string_view series,
                      const Histogram& h) {
  std::string_view fam, labels;
  split_series(series, &fam, &labels);
  const auto bucket_series = [&](std::string_view le) {
    out += fam;
    out += "_bucket{";
    if (!labels.empty()) {
      out += labels;
      out += ',';
    }
    out += "le=\"";
    out += le;
    out += "\"} ";
  };
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t c = h.bucket_count(i);
    if (c == 0) continue;
    cum += c;
    bucket_series(std::to_string(Histogram::bucket_upper(i)));
    append_u64(out, cum);
    out += '\n';
  }
  bucket_series("+Inf");
  append_u64(out, h.count());
  out += '\n';
  out += fam;
  out += "_sum";
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  append_u64(out, h.sum());
  out += '\n';
  out += fam;
  out += "_count";
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  append_u64(out, h.count());
  out += '\n';
}

std::string render_text() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::string out;
  out.reserve(4096);
  std::string_view last_family{};
  for (const auto& [name, c] : r.counters) {
    const std::string_view fam = family_of(name);
    if (fam != last_family) {
      out += "# TYPE ";
      out += fam;
      out += " counter\n";
      last_family = fam;
    }
    append_counter(out, name, c->get());
  }
  for (const auto& [name, h] : r.histograms) {
    out += "# TYPE ";
    out += family_of(name);
    out += " histogram\n";
    append_histogram(out, name, *h);
  }
  for (const auto& [id, fn] : r.collectors) {
    (void)id;
    fn(out);
  }
  return out;
}

}  // namespace scanprim::obs
