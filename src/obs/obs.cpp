#include "src/obs/obs.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <pthread.h>
#endif

#include "src/core/env.hpp"
#include "src/core/runtime.hpp"
#include "src/obs/registry.hpp"

namespace scanprim::obs {

namespace detail {

std::atomic<bool> g_armed{false};

}  // namespace detail

namespace {

/// Ring capacity for rings created from now on. Power of two.
std::atomic<std::size_t> g_ring_capacity{std::size_t{1} << 15};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Trace epoch: timestamps are exported relative to the first arming so the
/// Perfetto timeline starts near zero.
std::atomic<std::uint64_t> g_epoch_ns{0};

/// One per-thread event ring. Single producer (the owning thread); the
/// single consumer is whoever holds the writer mutex. Every slot is a tiny
/// seqlock: the producer brackets its four payload words with generation
/// stores, and a consumer that observes a generation mismatch skips the
/// slot and counts it dropped — so the producer NEVER waits, and a flush
/// racing live emission is safe under TSan (every access is atomic).
///
/// Overflow drops the oldest events: the producer always writes at head and
/// the consumer starts from max(cursor, head - capacity), counting what the
/// window skipped.
class Ring {
 public:
  Ring(std::size_t capacity_pow2, std::uint32_t tid)
      : slots_(std::make_unique<Slot[]>(capacity_pow2)),
        mask_(capacity_pow2 - 1),
        tid_(tid) {}

  std::uint32_t tid() const noexcept { return tid_; }

  /// Producer side (owning thread only). Fence-free seqlock (the shape TSan
  /// models): the payload stores are RELEASE, so a consumer whose acquire
  /// payload load observes a new (torn) value also observes the preceding
  /// odd generation store and fails its recheck — standalone fences would
  /// say the same thing but are unsupported under -fsanitize=thread.
  void push(EventKind kind, const char* name, std::uint64_t value,
            std::uint64_t ts) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[h & mask_];
    s.seq.store(2 * h + 1, std::memory_order_relaxed);
    s.ts.store(ts, std::memory_order_release);
    s.name.store(reinterpret_cast<std::uintptr_t>(name),
                 std::memory_order_release);
    s.value.store(value, std::memory_order_release);
    s.kind.store(static_cast<std::uint64_t>(kind), std::memory_order_release);
    s.seq.store(2 * h + 2, std::memory_order_release);
    head_.store(h + 1, std::memory_order_release);
  }

  /// Consumer side (writer mutex held). Appends drained events to `out` and
  /// returns how many events were dropped (overflowed past the window, or
  /// observed mid-write).
  std::uint64_t drain(std::vector<TraceEvent>& out) {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::size_t cap = mask_ + 1;
    std::uint64_t start = cursor_;
    std::uint64_t dropped = 0;
    if (h > cap && h - cap > start) {
      dropped += (h - cap) - start;
      start = h - cap;
    }
    for (std::uint64_t i = start; i < h; ++i) {
      Slot& s = slots_[i & mask_];
      const std::uint64_t q1 = s.seq.load(std::memory_order_acquire);
      if (q1 != 2 * i + 2) {
        // In-progress or already overwritten by a wrapped producer.
        ++dropped;
        continue;
      }
      // Acquire payload loads: if any of them reads a value from a wrapped
      // producer's release store, the recheck below is guaranteed to see
      // that producer's odd generation and reject the copy.
      TraceEvent ev;
      ev.ts_ns = s.ts.load(std::memory_order_acquire);
      ev.name = reinterpret_cast<const char*>(
          s.name.load(std::memory_order_acquire));
      ev.value = s.value.load(std::memory_order_acquire);
      ev.kind = static_cast<EventKind>(
          static_cast<std::uint32_t>(s.kind.load(std::memory_order_acquire)));
      ev.tid = tid_;
      if (s.seq.load(std::memory_order_relaxed) != q1) {
        ++dropped;  // overwritten while we copied
        continue;
      }
      out.push_back(ev);
    }
    cursor_ = h;
    return dropped;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> ts{0};
    std::atomic<std::uintptr_t> name{0};
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> kind{0};
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::uint64_t cursor_ = 0;  ///< consumer progress; writer mutex only
  std::uint32_t tid_;
};

struct Writer {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;  ///< leaked with the writer;
                                             ///< rings outlive their threads
  std::vector<TraceEvent> events;            ///< drained, in per-ring order
  std::uint64_t dropped = 0;
  std::string path;
  bool ever_armed = false;
};

Writer* g_writer = nullptr;

/// Intentionally leaked (same reasoning as the fault registry): emitting
/// threads may outlive any static destruction order we could arrange. The
/// atfork hooks pin the writer mutex across fork() so a shard worker child
/// never inherits it locked (its first new thread registers a ring under
/// this mutex).
Writer& writer() {
  static Writer* w = [] {
    g_writer = new Writer;
#if defined(__unix__) || defined(__APPLE__)
    ::pthread_atfork([] { g_writer->mu.lock(); },
                     [] { g_writer->mu.unlock(); },
                     [] { g_writer->mu.unlock(); });
#endif
    return g_writer;
  }();
  return *w;
}

thread_local Ring* tls_ring = nullptr;

Ring* ring_for_this_thread() {
  Ring* r = tls_ring;
  if (r != nullptr) return r;
  Writer& w = writer();
  std::lock_guard<std::mutex> lk(w.mu);
  std::size_t cap = g_ring_capacity.load(std::memory_order_relaxed);
  cap = std::bit_ceil(cap < 64 ? std::size_t{64} : cap);
  w.rings.push_back(std::make_unique<Ring>(
      cap, static_cast<std::uint32_t>(w.rings.size())));
  tls_ring = w.rings.back().get();
  return tls_ring;
}

void flush_locked(Writer& w) {
  for (const auto& r : w.rings) {
    const std::uint64_t d = r->drain(w.events);
    if (d != 0) {
      w.dropped += d;
      counter("scanprim_obs_dropped_events_total").add(d);
    }
  }
}

/// JSON string escaping for event names (probe names are plain literals,
/// but fault-point names are user-suppliable through fault::arm).
void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_ts_us(std::string& out, std::uint64_t ns) {
  // Microseconds with nanosecond fraction, without going through double
  // (a 64-bit ns count does not round-trip a double past ~104 days).
  out += std::to_string(ns / 1000);
  out += '.';
  const std::uint64_t frac = ns % 1000;
  if (frac < 100) out += '0';
  if (frac < 10) out += '0';
  out += std::to_string(frac);
}

/// Serialises the drained events as Chrome-trace JSON. Span begin/end pairs
/// are matched per thread into balanced "X" complete events (emission order
/// within a ring is program order, and RAII spans nest, so a per-tid stack
/// pairs them exactly; ring overflow only ever removes a prefix, so an end
/// whose begin was dropped surfaces as an empty stack and is discarded).
bool write_json(const Writer& w) {
  // Partition event indices per tid, preserving order.
  std::uint32_t max_tid = 0;
  for (const TraceEvent& e : w.events) max_tid = std::max(max_tid, e.tid);
  std::vector<std::vector<std::size_t>> by_tid(
      static_cast<std::size_t>(max_tid) + 1);
  for (std::size_t i = 0; i < w.events.size(); ++i) {
    by_tid[w.events[i].tid].push_back(i);
  }

  std::string out;
  out.reserve(w.events.size() * 96 + 1024);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"scanprim\"}}";

  const auto common = [&](const TraceEvent& e) {
    out += "\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"name\":\"";
    append_json_escaped(out, e.name == nullptr ? "?" : e.name);
    out += "\",\"ts\":";
    append_ts_us(out, e.ts_ns);
  };

  for (std::uint32_t tid = 0; tid < by_tid.size(); ++tid) {
    if (by_tid[tid].empty()) continue;
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"scanprim-";
    out += std::to_string(tid);
    out += "\"}}";
    std::vector<std::size_t> open;  // indices of unmatched begins
    std::uint64_t last_ts = 0;
    const auto emit_x = [&](const TraceEvent& b, std::uint64_t end_ns) {
      out += ",\n{\"ph\":\"X\",\"cat\":\"scanprim\",";
      common(b);
      out += ",\"dur\":";
      append_ts_us(out, end_ns >= b.ts_ns ? end_ns - b.ts_ns : 0);
      out += '}';
    };
    for (const std::size_t i : by_tid[tid]) {
      const TraceEvent& e = w.events[i];
      last_ts = std::max(last_ts, e.ts_ns);
      switch (e.kind) {
        case EventKind::kSpanBegin:
          open.push_back(i);
          break;
        case EventKind::kSpanEnd:
          if (!open.empty()) {
            emit_x(w.events[open.back()], e.ts_ns);
            open.pop_back();
          }
          break;
        case EventKind::kInstant:
        case EventKind::kFault:
          out += ",\n{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"";
          out += e.kind == EventKind::kFault ? "fault" : "scanprim";
          out += "\",";
          common(e);
          out += ",\"args\":{\"value\":";
          out += std::to_string(e.value);
          out += "}}";
          break;
        case EventKind::kCounter:
          out += ",\n{\"ph\":\"C\",";
          common(e);
          out += ",\"args\":{\"value\":";
          out += std::to_string(e.value);
          out += "}}";
          break;
      }
    }
    // Spans still open when the trace ended (e.g. a worker parked inside a
    // dispatch at flush time) close at the last timestamp seen, keeping the
    // file balanced.
    while (!open.empty()) {
      emit_x(w.events[open.back()], last_ts);
      open.pop_back();
    }
  }
  out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":"
         "\"scanprim_dropped_events\",\"args\":{\"value\":";
  out += std::to_string(w.dropped);
  out += "}}\n]}\n";

  std::FILE* f = std::fopen(w.path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(out.data(), 1, out.size(), f);
  const bool ok = n == out.size() && std::fclose(f) == 0;
  if (n != out.size()) std::fclose(f);
  return ok;
}

/// Env-driven startup, run at this translation unit's dynamic
/// initialisation: SCANPRIM_OBS=0 is a process-wide kill switch;
/// SCANPRIM_TRACE arms tracing and registers the exit-time export.
bool g_killed = false;

const bool g_env_init = [] {
  g_killed = !env::flag_or("SCANPRIM_OBS", true);
  g_ring_capacity.store(
      std::bit_ceil(env::size_or("SCANPRIM_TRACE_EVENTS",
                                 g_ring_capacity.load(), 64,
                                 std::size_t{1} << 24)),
      std::memory_order_relaxed);
  if (const char* path = std::getenv("SCANPRIM_TRACE")) {
    if (path[0] != '\0' && start_tracing(path)) {
      std::atexit([] { stop_tracing(); });
    }
  }
  return true;
}();

}  // namespace

namespace detail {

void emit(EventKind kind, const char* name, std::uint64_t value) noexcept {
  const std::uint64_t ts =
      now_ns() - g_epoch_ns.load(std::memory_order_relaxed);
  ring_for_this_thread()->push(kind, name, value, ts);
}

}  // namespace detail

bool tracing() noexcept { return detail::armed(); }

bool start_tracing(std::string path) {
  if (g_killed) return false;
  Writer& w = writer();
  std::lock_guard<std::mutex> lk(w.mu);
  if (detail::armed()) return false;
  w.path = std::move(path);
  w.ever_armed = true;
  g_epoch_ns.store(now_ns(), std::memory_order_relaxed);
  detail::g_armed.store(true, std::memory_order_relaxed);
  return true;
}

void flush() {
  Writer& w = writer();
  std::lock_guard<std::mutex> lk(w.mu);
  flush_locked(w);
}

bool stop_tracing() {
  Writer& w = writer();
  std::lock_guard<std::mutex> lk(w.mu);
  if (!w.ever_armed) return false;
  detail::g_armed.store(false, std::memory_order_relaxed);
  flush_locked(w);
  const bool ok = write_json(w);
  w.events.clear();
  w.ever_armed = false;
  return ok;
}

std::uint64_t dropped_events() {
  Writer& w = writer();
  std::lock_guard<std::mutex> lk(w.mu);
  return w.dropped;
}

void set_ring_capacity(std::size_t events) {
  g_ring_capacity.store(std::bit_ceil(events < 64 ? std::size_t{64} : events),
                        std::memory_order_relaxed);
}

std::vector<TraceEvent> events_snapshot() {
  Writer& w = writer();
  std::lock_guard<std::mutex> lk(w.mu);
  return w.events;
}

}  // namespace scanprim::obs
